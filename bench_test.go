package s3sched_test

// One benchmark per table and figure of the paper's evaluation (§V),
// plus the DESIGN.md ablations and micro-benchmarks of the hot paths.
// The figure benches report the measured TET/ART as custom metrics so
// `go test -bench` output doubles as the experiment record; see
// EXPERIMENTS.md for paper-vs-measured commentary.

import (
	"fmt"
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/experiments"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// BenchmarkTable1WordcountDetails regenerates Table I: the normal
// wordcount workload profile on the real engine.
func BenchmarkTable1WordcountDetails(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(experiments.DefaultTable1Config())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.MapOutputRecords), "mapOutRecords")
			b.ReportMetric(float64(res.ReduceOutRecords), "reduceOutRecords")
		}
	}
}

// BenchmarkFig3CombinedJobCost regenerates Figure 3 on the real
// engine: n jobs merged into one shared-scan batch, n = 1..10.
func BenchmarkFig3CombinedJobCost(b *testing.B) {
	cfg := experiments.DefaultFig3Config()
	for n := 1; n <= cfg.MaxJobs; n++ {
		b.Run(fmt.Sprintf("jobs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				point, err := experiments.Fig3Single(cfg, n)
				if err != nil {
					b.Fatal(err)
				}
				if point.BlockReads != int64(cfg.Blocks) {
					b.Fatalf("block reads = %d, want %d (shared scan)", point.BlockReads, cfg.Blocks)
				}
			}
		})
	}
}

// BenchmarkFig3SimPaperScale regenerates Figure 3's magnitudes with
// the calibrated cost model at full 2560-block scale (paper: +25.5%
// at n=10).
func BenchmarkFig3SimPaperScale(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig3Sim(experiments.DefaultParams(), 10)
		if err != nil {
			b.Fatal(err)
		}
		ratio = points[9].VsSingle
	}
	b.ReportMetric(ratio, "n10/n1")
}

// benchPanel runs one Figure 4 panel and reports each scheme's
// absolute and S^3-normalized metrics.
func benchPanel(b *testing.B, panel string) {
	b.Helper()
	var res experiments.PanelResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig4Panel(panel, experiments.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Report.Rows {
		b.ReportMetric(row.NormTET, row.Scheme+"-TET/s3")
		b.ReportMetric(row.NormART, row.Scheme+"-ART/s3")
	}
}

// BenchmarkFig4aSparseNormal64 — Figure 4(a): sparse pattern, normal
// workload, 64 MB blocks.
func BenchmarkFig4aSparseNormal64(b *testing.B) { benchPanel(b, "a") }

// BenchmarkFig4bDenseNormal64 — Figure 4(b): dense pattern, normal
// workload, 64 MB blocks.
func BenchmarkFig4bDenseNormal64(b *testing.B) { benchPanel(b, "b") }

// BenchmarkFig4cSparseHeavy64 — Figure 4(c): sparse pattern, heavy
// workload (10x map output, 200x reduce output), 64 MB blocks.
func BenchmarkFig4cSparseHeavy64(b *testing.B) { benchPanel(b, "c") }

// BenchmarkFig4dSparseNormal128 — Figure 4(d): sparse pattern, normal
// workload, 128 MB blocks.
func BenchmarkFig4dSparseNormal128(b *testing.B) { benchPanel(b, "d") }

// BenchmarkFig4eSparseNormal32 — Figure 4(e): sparse pattern, normal
// workload, 32 MB blocks.
func BenchmarkFig4eSparseNormal32(b *testing.B) { benchPanel(b, "e") }

// BenchmarkFig4fSelection — Figure 4(f): selection workload over the
// 400 GB TPC-H lineitem table.
func BenchmarkFig4fSelection(b *testing.B) { benchPanel(b, "f") }

// benchPipeline runs the stage-pipelining study in one mode and
// reports the measured TETs (serial or pipelined depending on mode).
func benchPipeline(b *testing.B, pipelined bool) {
	b.Helper()
	var res experiments.PipelineResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.PipelineStudyModes(experiments.DefaultParams(), !pipelined, pipelined)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		tet := row.SerialTET
		if pipelined {
			tet = row.PipelinedTET
		}
		b.ReportMetric(tet.Seconds(), row.Workload+"-TET")
	}
}

// BenchmarkDriverPipelineOff — the serial round loop (reduce blocks
// the next scan), all PipelineStudy workloads.
func BenchmarkDriverPipelineOff(b *testing.B) { benchPipeline(b, false) }

// BenchmarkDriverPipelineOn — the stage-pipelined runtime (reduce of
// round N under scan of round N+1), all PipelineStudy workloads.
func BenchmarkDriverPipelineOn(b *testing.B) { benchPipeline(b, true) }

// BenchmarkExamplesAnalytic regenerates the §III Examples 1-3 analytic
// scenarios (the sim package asserts the exact values in tests).
func BenchmarkExamplesAnalytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		store := dfs.MustStore(1, 1)
		f, err := store.AddMetaFile("input", 10, 64<<20)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := dfs.PlanSegments(f, 1)
		if err != nil {
			b.Fatal(err)
		}
		exec := sim.NewExecutor(sim.NewCluster(1, 1), store, sim.CostModel{ScanMBps: 6.4})
		res, err := driver.Run(core.New(plan, nil), exec, []driver.Arrival{
			{Job: scheduler.JobMeta{ID: 1, File: "input"}, At: 0},
			{Job: scheduler.JobMeta{ID: 2, File: "input"}, At: 20},
		})
		if err != nil {
			b.Fatal(err)
		}
		if tet, _ := res.Metrics.TET(); tet != 120 {
			b.Fatalf("TET = %v, want 120", tet)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationSlotChecking — X1: slow-node exclusion (§IV-D1).
func BenchmarkAblationSlotChecking(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationSlotChecking(experiments.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, res)
}

// BenchmarkAblationDynAdjust — X2: dynamic sub-job adjustment (§IV-D2).
func BenchmarkAblationDynAdjust(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationDynAdjust(experiments.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, res)
}

// BenchmarkAblationPartialAgg — X3: per-round partial aggregation
// (§V-G), real engine.
func BenchmarkAblationPartialAgg(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationPartialAgg()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Extra["reduceInputRecords"], row.Name+"-reduceIn")
	}
}

// BenchmarkAblationSegmentSize — X4: segment width vs the ideal
// one-block-per-slot (§IV-B).
func BenchmarkAblationSegmentSize(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationSegmentSize(experiments.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, res)
}

// BenchmarkAblationCircularScan — X5: circular scan vs
// restart-at-beginning (§IV-B).
func BenchmarkAblationCircularScan(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationCircularScan(experiments.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, res)
}

func reportAblation(b *testing.B, res experiments.AblationResult) {
	b.Helper()
	for _, row := range res.Rows {
		b.ReportMetric(row.TET.Seconds(), row.Name+"-TET")
		b.ReportMetric(row.ART.Seconds(), row.Name+"-ART")
	}
}

// BenchmarkDistributedSharedScan measures the shared-scan saving on
// the real RPC substrate: cluster-wide block reads under S^3 vs FIFO.
func BenchmarkDistributedSharedScan(b *testing.B) {
	var res experiments.DistributedResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.DistributedScanSavings(experiments.DefaultDistributedConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.S3Reads), "s3-reads")
	b.ReportMetric(float64(res.FIFOReads), "fifo-reads")
}

// --- Beyond-paper studies ---

// BenchmarkWindowStudy — time-window MRShare vs S^3 under unknown
// arrival patterns.
func BenchmarkWindowStudy(b *testing.B) {
	var rows []experiments.WindowStudyRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.WindowStudy(experiments.DefaultParams(), []vclock.Duration{30, 120, 480})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ART.Seconds(), r.Name+"-ART")
	}
}

// BenchmarkJitterStudy — S^3's advantage under ±15% arrival
// perturbation.
func BenchmarkJitterStudy(b *testing.B) {
	var res []experiments.JitterSummary
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.JitterStudy(experiments.DefaultParams(), 10, 0.15, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res {
		b.ReportMetric(s.MeanART, s.Scheme+"-meanART/s3")
	}
}

// BenchmarkPoissonSweep — queueing behaviour under Poisson arrivals.
func BenchmarkPoissonSweep(b *testing.B) {
	var points []experiments.PoissonPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.PoissonStudy(experiments.DefaultParams(), []float64{0.5, 1.0, 1.5}, 12, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.ARTRatio, fmt.Sprintf("rho%.1f-ARTratio", p.Rho))
	}
}

// BenchmarkTaxonomyStudy — §II-B's scheduler categories, measured.
func BenchmarkTaxonomyStudy(b *testing.B) {
	var rows []experiments.TaxonomyRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.TaxonomyStudy(experiments.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ART.Seconds(), r.Scheme+"-ART")
	}
}

// BenchmarkEstimatorStudy — §IV-D1 completion-prediction accuracy.
func BenchmarkEstimatorStudy(b *testing.B) {
	var res experiments.EstimatorResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.EstimatorStudy(experiments.DefaultParams(), 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MAPE*100, "MAPE-pct")
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkEngineSharedMapRound measures one real shared-scan round:
// 16 blocks feeding 4 jobs.
func BenchmarkEngineSharedMapRound(b *testing.B) {
	store := dfs.MustStore(4, 1)
	if _, err := workload.AddTextFile(store, "corpus", 16, 4<<10, 1); err != nil {
		b.Fatal(err)
	}
	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	f, err := store.File("corpus")
	if err != nil {
		b.Fatal(err)
	}
	blocks := f.Blocks()
	prefixes := workload.DistinctPrefixes(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs := make([]*mapreduce.Running, 4)
		for j := range jobs {
			jobs[j], err = mapreduce.NewRunning(workload.WordCountJob("wc", "corpus", prefixes[j], 2))
			if err != nil {
				b.Fatal(err)
			}
		}
		if _, err := engine.MapRound(blocks, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkS3SchedulerThroughput measures raw JQM decision cost: one
// Submit + k NextRound/RoundDone cycles over a 64-segment plan.
func BenchmarkS3SchedulerThroughput(b *testing.B) {
	store := dfs.MustStore(40, 1)
	f, err := store.AddMetaFile("input", 2560, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, 40)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.New(plan, nil)
		if err := s.Submit(scheduler.JobMeta{ID: 1, File: "input"}, 0); err != nil {
			b.Fatal(err)
		}
		for {
			r, ok := s.NextRound(0)
			if !ok {
				break
			}
			s.RoundDone(r, 0)
		}
	}
}

// BenchmarkSimExecutorRound measures the cost-model pricing of one
// 40-block round with a 10-job batch.
func BenchmarkSimExecutorRound(b *testing.B) {
	env, err := experiments.NewEnv(experiments.WordcountGB, 64, experiments.NormalModel())
	if err != nil {
		b.Fatal(err)
	}
	exec := sim.NewExecutor(env.Cluster, env.Store, env.Model)
	metas := workload.WordCountMetas(10, "input", 1, 1)
	r := scheduler.Round{Segment: 0, Blocks: env.Plan.Blocks(0), Jobs: metas, FreshJobs: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.ExecRound(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTextGeneration measures corpus block generation (the
// synthetic stand-in for disk scan).
func BenchmarkTextGeneration(b *testing.B) {
	g := workload.NewTextGen(1)
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		g.Block(i, 64<<10)
	}
}

// BenchmarkLineitemGeneration measures lineitem block generation.
func BenchmarkLineitemGeneration(b *testing.B) {
	g := workload.NewLineitemGen(1)
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		g.Block(i, 64<<10)
	}
}

// Keep vclock referenced for the analytic benches' literal times.
var _ vclock.Time
