package dfs

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzBlockCache drives the cache with a byte-encoded op sequence —
// each byte selects (block, node, fault) for one read — and checks the
// structural invariants after every step: accounting identity
// hits+misses == reads, per-shard budgets respected, faulted reads
// never cached, and correct bytes on every successful read.
func FuzzBlockCache(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x42, 0x81, 0x01, 0xff, 0x42})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80}) // repeated fault on one block
	f.Add([]byte{0x00, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x00})

	f.Fuzz(func(t *testing.T, ops []byte) {
		const (
			numBlocks = 8
			blockSize = 32
			budget    = 3 * blockSize // forces eviction pressure
		)
		c, err := NewBlockCache(budget)
		if err != nil {
			t.Fatal(err)
		}
		content := func(i int) []byte {
			b := make([]byte, blockSize)
			for j := range b {
				b[j] = byte(i*13 + 1)
			}
			return b
		}
		fault := errors.New("injected")
		var reads int64
		for _, op := range ops {
			id := BlockID{File: "f", Index: int(op & 0x07)}
			node := NodeID((op >> 3) & 0x03)
			failThis := op&0x80 != 0
			data, err := c.Read(id, node, func() ([]byte, error) {
				if failThis {
					return nil, fault
				}
				return content(id.Index), nil
			})
			reads++
			if err != nil {
				if !errors.Is(err, fault) {
					t.Fatalf("unexpected error: %v", err)
				}
				if c.Contains(id, node) {
					t.Fatalf("faulted read of %v cached on node %d", id, node)
				}
			} else if !bytes.Equal(data, content(id.Index)) {
				t.Fatalf("wrong bytes for %v", id)
			}
			st := c.Stats()
			if st.Hits+st.Misses != reads {
				t.Fatalf("hits(%d)+misses(%d) != reads(%d)", st.Hits, st.Misses, reads)
			}
			if st.Bytes < 0 || st.Bytes > 4*budget {
				t.Fatalf("aggregate bytes %d outside [0, 4*budget]", st.Bytes)
			}
		}
		// Per-shard budget check at the end of the sequence.
		c.mu.Lock()
		for node, nc := range c.nodes {
			if nc.bytes > budget {
				t.Errorf("node %d shard holds %d bytes > budget %d", node, nc.bytes, budget)
			}
		}
		c.mu.Unlock()
	})
}
