package dfs

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// FuzzBlockCache drives the cache with a byte-encoded op sequence and
// checks the invariants shared by every eviction policy. The first
// byte selects the policy; each following byte is either a read op
// (block, node, fault bit) or — with bit 0x40 set — a scheduler hint
// (pin a two-block window, demote the block behind it). After the
// sequence: accounting identity hits+misses == reads, per-shard budgets
// respected, faulted reads never cached, pinned blocks never evicted
// (cursor policy), correct bytes on every successful read, and a
// single-flight check (N concurrent cold readers → one source read)
// on a fresh cache of the same policy.
func FuzzBlockCache(f *testing.F) {
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0x01, 0x01, 0x42, 0x81, 0x01, 0xff, 0x42})
	f.Add([]byte{0x02, 0x80, 0x80, 0x80, 0x80})                   // cursor policy, repeated fault
	f.Add([]byte{0x02, 0x41, 0x01, 0x02, 0x45, 0x03, 0x04, 0x05}) // hints interleaved with reads
	f.Add([]byte{0x01, 0x00, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x00})

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 {
			return
		}
		policy := Policies()[int(ops[0])%len(Policies())]
		ops = ops[1:]
		const (
			numBlocks = 8
			blockSize = 32
			budget    = 3 * blockSize // forces eviction pressure
		)
		c, err := NewBlockCachePolicy(budget, policy)
		if err != nil {
			t.Fatal(err)
		}
		content := func(i int) []byte {
			b := make([]byte, blockSize)
			for j := range b {
				b[j] = byte(i*13 + 1)
			}
			return b
		}
		// Mirror the pin set the cursor policy should honor; the op
		// stream is single-threaded, so observer callbacks interleave
		// deterministically with pin updates.
		pinned := make(map[BlockID]bool)
		var pinMu sync.Mutex
		c.SetObserver(func(ev CacheEvent) {
			if ev.Kind != CacheEvict || policy != PolicyCursor {
				return
			}
			pinMu.Lock()
			bad := pinned[ev.Block]
			pinMu.Unlock()
			if bad {
				t.Errorf("pinned block %v evicted", ev.Block)
			}
		})
		fault := errors.New("injected")
		var reads int64
		for _, op := range ops {
			if op&0x40 != 0 {
				at := int(op & 0x07)
				pin := []BlockID{
					{File: "f", Index: at},
					{File: "f", Index: (at + 1) % numBlocks},
				}
				demote := BlockID{File: "f", Index: (at + numBlocks - 1) % numBlocks}
				pinMu.Lock()
				pinned = map[BlockID]bool{pin[0]: true, pin[1]: true}
				pinMu.Unlock()
				c.Hint(ScanHint{File: "f", Pin: [][]BlockID{pin}, Demote: []BlockID{demote}})
				continue
			}
			id := BlockID{File: "f", Index: int(op & 0x07)}
			node := NodeID((op >> 3) & 0x03)
			failThis := op&0x80 != 0
			data, err := c.Read(id, node, func() ([]byte, error) {
				if failThis {
					return nil, fault
				}
				return content(id.Index), nil
			})
			reads++
			if err != nil {
				if !errors.Is(err, fault) {
					t.Fatalf("unexpected error: %v", err)
				}
				if c.Contains(id, node) {
					t.Fatalf("faulted read of %v cached on node %d", id, node)
				}
			} else if !bytes.Equal(data, content(id.Index)) {
				t.Fatalf("wrong bytes for %v", id)
			}
			st := c.Stats()
			if st.Hits+st.Misses != reads {
				t.Fatalf("hits(%d)+misses(%d) != reads(%d)", st.Hits, st.Misses, reads)
			}
			if st.Bytes < 0 || st.Bytes > 4*budget {
				t.Fatalf("aggregate bytes %d outside [0, 4*budget]", st.Bytes)
			}
		}
		// Per-shard budget check at the end of the sequence.
		c.mu.Lock()
		for node, nc := range c.nodes {
			if nc.meta.bytes > budget {
				t.Errorf("node %d shard holds %d bytes > budget %d", node, nc.meta.bytes, budget)
			}
		}
		c.mu.Unlock()

		// Single-flight invariant on a fresh cache of the same policy:
		// concurrent cold readers of one block coalesce into one source
		// read, and each still counts as exactly one hit or miss.
		sf, err := NewBlockCachePolicy(budget, policy)
		if err != nil {
			t.Fatal(err)
		}
		const readers = 4
		var loads atomic.Int64
		var wg sync.WaitGroup
		id := BlockID{File: "f", Index: 0}
		for i := 0; i < readers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				data, err := sf.Read(id, 0, func() ([]byte, error) {
					loads.Add(1)
					return content(0), nil
				})
				if err != nil || !bytes.Equal(data, content(0)) {
					t.Errorf("concurrent read: err=%v", err)
				}
			}()
		}
		wg.Wait()
		if got := loads.Load(); got != 1 {
			t.Fatalf("%d source loads for %d concurrent readers, want 1 (single-flight)", got, readers)
		}
		if st := sf.Stats(); st.Hits+st.Misses != readers {
			t.Fatalf("hits(%d)+misses(%d) != %d concurrent reads", st.Hits, st.Misses, readers)
		}
	})
}
