package dfs

import (
	"bytes"
	"fmt"
	"testing"
)

func mkBlocks(n int, size int64) [][]byte {
	blocks := make([][]byte, n)
	for i := range blocks {
		b := make([]byte, size)
		for j := range b {
			b[j] = byte(i + j)
		}
		blocks[i] = b
	}
	return blocks
}

func TestAddFileAndRead(t *testing.T) {
	s := MustStore(4, 1)
	blocks := mkBlocks(6, 64)
	f, err := s.AddFile("data", 64, blocks)
	if err != nil {
		t.Fatalf("AddFile: %v", err)
	}
	if f.NumBlocks != 6 || f.BlockSize != 64 || f.LastSize != 64 {
		t.Fatalf("file metadata = %+v", f)
	}
	if got := f.Size(); got != 6*64 {
		t.Fatalf("Size() = %d, want %d", got, 6*64)
	}
	for i := 0; i < 6; i++ {
		data, err := s.ReadBlock(BlockID{File: "data", Index: i})
		if err != nil {
			t.Fatalf("ReadBlock(%d): %v", i, err)
		}
		if !bytes.Equal(data, blocks[i]) {
			t.Fatalf("block %d contents mismatch", i)
		}
	}
	st := s.Stats()
	if st.BlockReads != 6 || st.BytesScanned != 6*64 {
		t.Fatalf("stats = %+v, want 6 reads / %d bytes", st, 6*64)
	}
}

func TestAddFileShortLastBlock(t *testing.T) {
	s := MustStore(2, 1)
	blocks := mkBlocks(3, 64)
	blocks[2] = blocks[2][:10]
	f, err := s.AddFile("data", 64, blocks)
	if err != nil {
		t.Fatalf("AddFile: %v", err)
	}
	if f.LastSize != 10 {
		t.Fatalf("LastSize = %d, want 10", f.LastSize)
	}
	if got := f.Size(); got != 2*64+10 {
		t.Fatalf("Size() = %d, want %d", got, 2*64+10)
	}
	if got := f.BlockLen(2); got != 10 {
		t.Fatalf("BlockLen(2) = %d, want 10", got)
	}
	if got := f.BlockLen(0); got != 64 {
		t.Fatalf("BlockLen(0) = %d, want 64", got)
	}
}

func TestAddFileRejectsBadBlocks(t *testing.T) {
	s := MustStore(2, 1)
	if _, err := s.AddFile("empty", 64, nil); err == nil {
		t.Error("AddFile with no blocks should fail")
	}
	bad := mkBlocks(3, 64)
	bad[1] = bad[1][:32] // non-final short block
	if _, err := s.AddFile("ragged", 64, bad); err == nil {
		t.Error("AddFile with short middle block should fail")
	}
	over := mkBlocks(2, 64)
	over[1] = make([]byte, 100)
	if _, err := s.AddFile("over", 64, over); err == nil {
		t.Error("AddFile with oversized last block should fail")
	}
}

func TestDuplicateFileRejected(t *testing.T) {
	s := MustStore(2, 1)
	if _, err := s.AddMetaFile("f", 4, 64); err != nil {
		t.Fatalf("AddMetaFile: %v", err)
	}
	if _, err := s.AddMetaFile("f", 4, 64); err == nil {
		t.Error("duplicate file name should be rejected")
	}
}

func TestMetaFileHasNoContents(t *testing.T) {
	s := MustStore(2, 1)
	if _, err := s.AddMetaFile("meta", 8, 1<<20); err != nil {
		t.Fatalf("AddMetaFile: %v", err)
	}
	if _, err := s.ReadBlock(BlockID{File: "meta", Index: 0}); err == nil {
		t.Error("reading a metadata-only block should fail")
	}
	if s.Stats().BlockReads != 0 {
		t.Error("failed read must not be counted as a scan")
	}
}

func TestGeneratedFile(t *testing.T) {
	s := MustStore(3, 1)
	_, err := s.AddGeneratedFile("gen", 5, 16, func(i int) ([]byte, error) {
		return []byte(fmt.Sprintf("block-%08d....", i))[:16], nil
	})
	if err != nil {
		t.Fatalf("AddGeneratedFile: %v", err)
	}
	d0, err := s.ReadBlock(BlockID{File: "gen", Index: 0})
	if err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	d0again, _ := s.ReadBlock(BlockID{File: "gen", Index: 0})
	if !bytes.Equal(d0, d0again) {
		t.Error("generated blocks must be deterministic")
	}
	if _, err := s.ReadBlock(BlockID{File: "gen", Index: 9}); err == nil {
		t.Error("out-of-range generated block should fail")
	}
}

func TestReadUnknownFile(t *testing.T) {
	s := MustStore(2, 1)
	if _, err := s.ReadBlock(BlockID{File: "nope", Index: 0}); err == nil {
		t.Error("reading unknown file should fail")
	}
	if _, err := s.File("nope"); err == nil {
		t.Error("File on unknown name should fail")
	}
}

func TestPlacementRoundRobin(t *testing.T) {
	s := MustStore(4, 1)
	if _, err := s.AddMetaFile("f", 10, 64); err != nil {
		t.Fatalf("AddMetaFile: %v", err)
	}
	for i := 0; i < 10; i++ {
		locs := s.Locations(BlockID{File: "f", Index: i})
		if len(locs) != 1 {
			t.Fatalf("block %d has %d replicas, want 1", i, len(locs))
		}
		if want := NodeID(i % 4); locs[0] != want {
			t.Fatalf("block %d on node %d, want %d", i, locs[0], want)
		}
	}
}

func TestPlacementReplication(t *testing.T) {
	s := MustStore(5, 3)
	if _, err := s.AddMetaFile("f", 7, 64); err != nil {
		t.Fatalf("AddMetaFile: %v", err)
	}
	for i := 0; i < 7; i++ {
		id := BlockID{File: "f", Index: i}
		locs := s.Locations(id)
		if len(locs) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", i, len(locs))
		}
		seen := map[NodeID]bool{}
		for _, n := range locs {
			if seen[n] {
				t.Fatalf("block %d replicated twice on node %d", i, n)
			}
			seen[n] = true
			if !s.HasLocal(id, n) {
				t.Fatalf("HasLocal(%v,%d) = false for a replica holder", id, n)
			}
		}
	}
	if s.HasLocal(BlockID{File: "f", Index: 0}, NodeID(4)) {
		t.Error("node 4 should not hold block 0 (replicas on 0,1,2)")
	}
}

func TestStoreConstructorValidation(t *testing.T) {
	for _, tc := range []struct{ nodes, reps int }{{0, 1}, {-1, 1}, {3, 0}, {3, 4}} {
		if _, err := NewStore(tc.nodes, tc.reps); err == nil {
			t.Errorf("NewStore(%d,%d) should return an error", tc.nodes, tc.reps)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustStore(%d,%d) should panic", tc.nodes, tc.reps)
				}
			}()
			MustStore(tc.nodes, tc.reps)
		}()
	}
	if s, err := NewStore(3, 2); err != nil || s == nil {
		t.Errorf("NewStore(3,2) = %v, %v; want a store", s, err)
	}
}

func TestResetStats(t *testing.T) {
	s := MustStore(2, 1)
	_, err := s.AddFile("f", 8, mkBlocks(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadBlock(BlockID{File: "f", Index: 0}); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	if st := s.Stats(); st.BlockReads != 0 || st.BytesScanned != 0 {
		t.Fatalf("stats after reset = %+v, want zero", st)
	}
}
