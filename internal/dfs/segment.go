package dfs

import "fmt"

// SegmentPlan partitions a file's block chain into k segments of m
// consecutive blocks each (paper §IV-B). m should equal the number of
// concurrent map slots in the cluster so that one segment is exactly
// one round of cluster work; the final segment may be short when the
// block count is not a multiple of m.
//
// A plan is immutable once built. S^3's dynamic segment resizing is
// realized by building a fresh plan for the *remaining* work, never by
// mutating an existing one.
type SegmentPlan struct {
	file        *File
	perSegment  int
	numSegments int
}

// PlanSegments builds the segment plan for file with blocksPerSegment
// blocks per segment.
func PlanSegments(file *File, blocksPerSegment int) (*SegmentPlan, error) {
	if file == nil {
		return nil, fmt.Errorf("dfs: nil file")
	}
	if blocksPerSegment <= 0 {
		return nil, fmt.Errorf("dfs: blocksPerSegment must be positive, got %d", blocksPerSegment)
	}
	k := (file.NumBlocks + blocksPerSegment - 1) / blocksPerSegment
	return &SegmentPlan{file: file, perSegment: blocksPerSegment, numSegments: k}, nil
}

// File returns the file the plan covers.
func (p *SegmentPlan) File() *File { return p.file }

// NumSegments returns k, the number of segments.
func (p *SegmentPlan) NumSegments() int { return p.numSegments }

// BlocksPerSegment returns m, the nominal segment width in blocks.
func (p *SegmentPlan) BlocksPerSegment() int { return p.perSegment }

// Blocks returns the block ids in segment seg (0-based).
func (p *SegmentPlan) Blocks(seg int) []BlockID {
	if seg < 0 || seg >= p.numSegments {
		panic(fmt.Sprintf("dfs: segment %d out of range [0,%d)", seg, p.numSegments))
	}
	lo := seg * p.perSegment
	hi := lo + p.perSegment
	if hi > p.file.NumBlocks {
		hi = p.file.NumBlocks
	}
	out := make([]BlockID, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, BlockID{File: p.file.Name, Index: i})
	}
	return out
}

// SegmentOf returns the segment that contains block index blockIdx.
func (p *SegmentPlan) SegmentOf(blockIdx int) int {
	if blockIdx < 0 || blockIdx >= p.file.NumBlocks {
		panic(fmt.Sprintf("dfs: block index %d out of range [0,%d)", blockIdx, p.file.NumBlocks))
	}
	return blockIdx / p.perSegment
}

// SegmentBytes returns the total bytes in segment seg.
func (p *SegmentPlan) SegmentBytes(seg int) int64 {
	var total int64
	for _, b := range p.Blocks(seg) {
		total += p.file.BlockLen(b.Index)
	}
	return total
}

// CircularOrder returns the segments in the order a job admitted at
// segment start processes them: start, start+1, …, k-1, 0, …, start-1
// (paper §IV-B round-robin data scan).
func (p *SegmentPlan) CircularOrder(start int) []int {
	if start < 0 || start >= p.numSegments {
		panic(fmt.Sprintf("dfs: start segment %d out of range [0,%d)", start, p.numSegments))
	}
	out := make([]int, p.numSegments)
	for i := range out {
		out[i] = (start + i) % p.numSegments
	}
	return out
}

// Next returns the segment after seg in circular order.
func (p *SegmentPlan) Next(seg int) int {
	if seg < 0 || seg >= p.numSegments {
		panic(fmt.Sprintf("dfs: segment %d out of range [0,%d)", seg, p.numSegments))
	}
	return (seg + 1) % p.numSegments
}

// Distance returns how many forward steps separate segment from target
// in circular order (0 when equal). A job admitted at segment s
// finishes after processing the segment at distance k-1 from s.
func (p *SegmentPlan) Distance(from, to int) int {
	if from < 0 || from >= p.numSegments || to < 0 || to >= p.numSegments {
		panic(fmt.Sprintf("dfs: segment pair (%d,%d) out of range [0,%d)", from, to, p.numSegments))
	}
	return (to - from + p.numSegments) % p.numSegments
}
