package dfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: under an arbitrary interleaving of reads, faults, node
// attributions and scheduler hints, the cache preserves its core
// invariants for every eviction policy:
//
//  1. every shard's footprint stays within the byte budget (and the
//     aggregate Bytes counter matches the sum of live entries, whose
//     recorded sizes match the stored contents),
//  2. hits + misses equals the number of Read calls,
//  3. a read that faulted leaves nothing behind in the cache,
//  4. successful reads always return the block's true contents.
func TestBlockCacheInvariantsProperty(t *testing.T) {
	const (
		numBlocks = 12
		numNodes  = 3
		blockSize = 64
	)
	for _, policy := range Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			prop := func(seed int64, budgetBlocks uint8, ops uint8, faultEvery uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				budget := (int64(budgetBlocks%6) + 1) * blockSize
				c, err := NewBlockCachePolicy(budget, policy)
				if err != nil {
					t.Log(err)
					return false
				}
				content := func(i int) []byte {
					b := make([]byte, blockSize)
					for j := range b {
						b[j] = byte(i * 7)
					}
					return b
				}
				fault := errors.New("injected")
				var reads, faulted int64
				for op := 0; op < 20+int(ops); op++ {
					if rng.Intn(8) == 0 {
						// Scheduler hint: pin a two-block window, demote the
						// window behind it. Only the cursor policy acts on
						// it; for lru/2q it must be a harmless no-op.
						at := rng.Intn(numBlocks)
						c.Hint(ScanHint{
							File: "f",
							Pin: [][]BlockID{{
								{File: "f", Index: at},
								{File: "f", Index: (at + 1) % numBlocks},
							}},
							Demote: []BlockID{
								{File: "f", Index: (at + numBlocks - 1) % numBlocks},
							},
						})
					}
					id := BlockID{File: "f", Index: rng.Intn(numBlocks)}
					node := NodeID(rng.Intn(numNodes))
					failThis := faultEvery > 0 && rng.Intn(int(faultEvery)+1) == 0
					wasCached := c.Contains(id, node)
					data, err := c.Read(id, node, func() ([]byte, error) {
						if failThis {
							return nil, fault
						}
						return content(id.Index), nil
					})
					reads++
					if wasCached {
						// Hit: load must not have run, so the injected fault
						// is irrelevant and the data must be right.
						if err != nil || !bytes.Equal(data, content(id.Index)) {
							t.Logf("hit returned err=%v", err)
							return false
						}
					} else if failThis {
						faulted++
						if !errors.Is(err, fault) {
							t.Logf("fault swallowed: err=%v", err)
							return false
						}
						if c.Contains(id, node) {
							t.Log("faulted read was cached")
							return false
						}
					} else {
						if err != nil || !bytes.Equal(data, content(id.Index)) {
							t.Logf("miss returned err=%v", err)
							return false
						}
					}
				}
				st := c.Stats()
				if st.Hits+st.Misses != reads {
					t.Logf("hits(%d)+misses(%d) != reads(%d)", st.Hits, st.Misses, reads)
					return false
				}
				if st.Hits > reads-faulted {
					t.Logf("more hits (%d) than successful reads (%d)", st.Hits, reads-faulted)
					return false
				}
				// Per-shard budget and aggregate-bytes consistency.
				var sum int64
				c.mu.Lock()
				for node, nc := range c.nodes {
					if nc.meta.bytes > budget {
						t.Logf("node %d shard holds %d bytes > budget %d", node, nc.meta.bytes, budget)
						c.mu.Unlock()
						return false
					}
					var shardSum int64
					for id, size := range nc.meta.sizes {
						shardSum += size
						if data, ok := nc.data[id]; !ok || int64(len(data)) != size {
							t.Logf("node %d block %v: recorded size %d, stored %d bytes", node, id, size, len(data))
							c.mu.Unlock()
							return false
						}
					}
					if len(nc.data) != len(nc.meta.sizes) {
						t.Logf("node %d holds %d data entries but %d size records", node, len(nc.data), len(nc.meta.sizes))
						c.mu.Unlock()
						return false
					}
					if shardSum != nc.meta.bytes {
						t.Logf("node %d shard bytes %d != live entries %d", node, nc.meta.bytes, shardSum)
						c.mu.Unlock()
						return false
					}
					sum += nc.meta.bytes
				}
				c.mu.Unlock()
				if st.Bytes != sum {
					t.Logf("aggregate Bytes %d != shard sum %d", st.Bytes, sum)
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: the cache is a transparent layer over a Store regardless of
// eviction policy — for any random access sequence, every byte returned
// with the cache enabled is identical to the uncached store's answer,
// and physical source reads never exceed the uncached count.
func TestBlockCacheTransparencyProperty(t *testing.T) {
	for _, policy := range Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			prop := func(seed int64, accesses uint8) bool {
				const (
					nodes     = 3
					numBlocks = 8
					blockSize = int64(128)
				)
				mk := func() *Store {
					s := MustStore(nodes, 1)
					if _, err := addPseudoText(s, seed); err != nil {
						t.Log(err)
						return nil
					}
					return s
				}
				plain, cached := mk(), mk()
				if plain == nil || cached == nil {
					return false
				}
				if _, err := cached.EnableCachePolicy(numBlocks*blockSize, policy); err != nil {
					t.Log(err)
					return false
				}
				rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
				for i := 0; i < 10+int(accesses); i++ {
					id := BlockID{File: "p", Index: rng.Intn(numBlocks)}
					node := NodeID(rng.Intn(nodes))
					a, errA := plain.ReadBlockAt(id, node)
					b, errB := cached.ReadBlockAt(id, node)
					if (errA == nil) != (errB == nil) {
						t.Logf("error divergence: %v vs %v", errA, errB)
						return false
					}
					if errA == nil && !bytes.Equal(a, b) {
						t.Logf("byte divergence at %v node %d", id, node)
						return false
					}
				}
				if cached.Stats().BlockReads > plain.Stats().BlockReads {
					t.Logf("cache increased physical reads: %d > %d",
						cached.Stats().BlockReads, plain.Stats().BlockReads)
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: MetaCache is a faithful stat twin of BlockCache — the same
// access sequence (reads and hints) through both produces identical
// hit/miss/eviction counters and identical residency, for every policy.
// This is the structural guarantee the simulator's cache pricing rests
// on.
func TestMetaCacheTwinProperty(t *testing.T) {
	const (
		numBlocks = 12
		numNodes  = 3
		blockSize = int64(64)
	)
	for _, policy := range Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			prop := func(seed int64, budgetBlocks uint8, ops uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				budget := (int64(budgetBlocks%6) + 1) * blockSize
				real, err := NewBlockCachePolicy(budget, policy)
				if err != nil {
					t.Log(err)
					return false
				}
				meta, err := NewMetaCache(budget, policy)
				if err != nil {
					t.Log(err)
					return false
				}
				content := make([]byte, blockSize)
				for op := 0; op < 20+int(ops); op++ {
					if rng.Intn(8) == 0 {
						at := rng.Intn(numBlocks)
						h := ScanHint{
							File: "f",
							Pin: [][]BlockID{{
								{File: "f", Index: at},
								{File: "f", Index: (at + 1) % numBlocks},
							}},
							Demote: []BlockID{
								{File: "f", Index: (at + numBlocks - 1) % numBlocks},
							},
						}
						real.Hint(h)
						meta.Hint(h)
						continue
					}
					id := BlockID{File: "f", Index: rng.Intn(numBlocks)}
					node := NodeID(rng.Intn(numNodes))
					if _, err := real.Read(id, node, func() ([]byte, error) { return content, nil }); err != nil {
						t.Log(err)
						return false
					}
					meta.Access(id, node, blockSize)
					if real.Contains(id, node) != meta.Contains(id, node) {
						t.Logf("residency divergence at %v node %d after op %d", id, node, op)
						return false
					}
				}
				rs, ms := real.Stats(), meta.Stats()
				if rs != ms {
					t.Logf("stat divergence: real %+v, meta %+v", rs, ms)
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// addPseudoText registers a deterministic 8-block generated file used by
// the transparency property: same seed, same bytes, on any store.
func addPseudoText(s *Store, seed int64) (*File, error) {
	return s.AddGeneratedFile("p", 8, 128, func(i int) ([]byte, error) {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		b := make([]byte, 128)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		return b, nil
	})
}
