package dfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: under an arbitrary interleaving of reads, faults, and node
// attributions, the cache preserves its core invariants:
//
//  1. every shard's footprint stays within the byte budget (and the
//     aggregate Bytes counter matches the sum of live entries),
//  2. hits + misses equals the number of Read calls,
//  3. a read that faulted leaves nothing behind in the cache,
//  4. successful reads always return the block's true contents.
func TestBlockCacheInvariantsProperty(t *testing.T) {
	const (
		numBlocks = 12
		numNodes  = 3
		blockSize = 64
	)
	prop := func(seed int64, budgetBlocks uint8, ops uint8, faultEvery uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := (int64(budgetBlocks%6) + 1) * blockSize
		c, err := NewBlockCache(budget)
		if err != nil {
			t.Log(err)
			return false
		}
		content := func(i int) []byte {
			b := make([]byte, blockSize)
			for j := range b {
				b[j] = byte(i * 7)
			}
			return b
		}
		fault := errors.New("injected")
		var reads, faulted int64
		for op := 0; op < 20+int(ops); op++ {
			id := BlockID{File: "f", Index: rng.Intn(numBlocks)}
			node := NodeID(rng.Intn(numNodes))
			failThis := faultEvery > 0 && rng.Intn(int(faultEvery)+1) == 0
			wasCached := c.Contains(id, node)
			data, err := c.Read(id, node, func() ([]byte, error) {
				if failThis {
					return nil, fault
				}
				return content(id.Index), nil
			})
			reads++
			if wasCached {
				// Hit: load must not have run, so the injected fault is
				// irrelevant and the data must be right.
				if err != nil || !bytes.Equal(data, content(id.Index)) {
					t.Logf("hit returned err=%v", err)
					return false
				}
			} else if failThis {
				faulted++
				if !errors.Is(err, fault) {
					t.Logf("fault swallowed: err=%v", err)
					return false
				}
				if c.Contains(id, node) {
					t.Log("faulted read was cached")
					return false
				}
			} else {
				if err != nil || !bytes.Equal(data, content(id.Index)) {
					t.Logf("miss returned err=%v", err)
					return false
				}
			}
		}
		st := c.Stats()
		if st.Hits+st.Misses != reads {
			t.Logf("hits(%d)+misses(%d) != reads(%d)", st.Hits, st.Misses, reads)
			return false
		}
		if st.Hits > reads-faulted {
			t.Logf("more hits (%d) than successful reads (%d)", st.Hits, reads-faulted)
			return false
		}
		// Per-shard budget and aggregate-bytes consistency.
		var sum int64
		c.mu.Lock()
		for node, nc := range c.nodes {
			if nc.bytes > budget {
				t.Logf("node %d shard holds %d bytes > budget %d", node, nc.bytes, budget)
				c.mu.Unlock()
				return false
			}
			var shardSum int64
			for el := nc.lru.Front(); el != nil; el = el.Next() {
				shardSum += int64(len(el.Value.(*cacheEntry).data))
			}
			if shardSum != nc.bytes {
				t.Logf("node %d shard bytes %d != live entries %d", node, nc.bytes, shardSum)
				c.mu.Unlock()
				return false
			}
			sum += nc.bytes
		}
		c.mu.Unlock()
		if st.Bytes != sum {
			t.Logf("aggregate Bytes %d != shard sum %d", st.Bytes, sum)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache is a transparent layer over a Store — for any
// random access sequence, every byte returned with the cache enabled is
// identical to the uncached store's answer, and physical source reads
// never exceed the uncached count.
func TestBlockCacheTransparencyProperty(t *testing.T) {
	prop := func(seed int64, accesses uint8) bool {
		const (
			nodes     = 3
			numBlocks = 8
			blockSize = int64(128)
		)
		mk := func() *Store {
			s := MustStore(nodes, 1)
			if _, err := addPseudoText(s, seed); err != nil {
				t.Log(err)
				return nil
			}
			return s
		}
		plain, cached := mk(), mk()
		if plain == nil || cached == nil {
			return false
		}
		if _, err := cached.EnableCache(numBlocks * blockSize); err != nil {
			t.Log(err)
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
		for i := 0; i < 10+int(accesses); i++ {
			id := BlockID{File: "p", Index: rng.Intn(numBlocks)}
			node := NodeID(rng.Intn(nodes))
			a, errA := plain.ReadBlockAt(id, node)
			b, errB := cached.ReadBlockAt(id, node)
			if (errA == nil) != (errB == nil) {
				t.Logf("error divergence: %v vs %v", errA, errB)
				return false
			}
			if errA == nil && !bytes.Equal(a, b) {
				t.Logf("byte divergence at %v node %d", id, node)
				return false
			}
		}
		if cached.Stats().BlockReads > plain.Stats().BlockReads {
			t.Logf("cache increased physical reads: %d > %d",
				cached.Stats().BlockReads, plain.Stats().BlockReads)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// addPseudoText registers a deterministic 8-block generated file used by
// the transparency property: same seed, same bytes, on any store.
func addPseudoText(s *Store, seed int64) (*File, error) {
	return s.AddGeneratedFile("p", 8, 128, func(i int) ([]byte, error) {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		b := make([]byte, 128)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		return b, nil
	})
}
