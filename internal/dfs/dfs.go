// Package dfs implements the distributed-file-system substrate the
// schedulers operate on: files split into fixed-size blocks, block
// placement across nodes, and the segment organization that S^3 layers
// on top of the block list (paper §IV-B).
//
// The store is in-memory and single-process, but it preserves exactly
// the properties the scheduling problem depends on: a file is an
// ordered chain of blocks, each block lives on specific nodes, reading
// a block costs a scan, and a segment is a set of consecutive blocks
// sized to one round of cluster work. Every block read is counted, so
// experiments *measure* the scan savings of shared scheduling rather
// than assuming them.
package dfs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// NodeID identifies a storage/compute node in the cluster.
type NodeID int

// BlockID identifies one block of one file.
type BlockID struct {
	File  string // file name
	Index int    // 0-based position of the block within the file
}

// String renders the block id as "file#index".
func (b BlockID) String() string { return fmt.Sprintf("%s#%d", b.File, b.Index) }

// BlockSource supplies block contents on demand. Experiments at paper
// scale register metadata-only files and never read contents; the real
// execution engine registers materialized or generated sources.
type BlockSource interface {
	// ReadBlock returns the contents of block i. It must be safe for
	// concurrent use and must return the same bytes on every call.
	ReadBlock(i int) ([]byte, error)
}

// bytesSource is a BlockSource over pre-materialized block data.
type bytesSource struct{ blocks [][]byte }

func (s bytesSource) ReadBlock(i int) ([]byte, error) {
	if i < 0 || i >= len(s.blocks) {
		return nil, fmt.Errorf("dfs: block index %d out of range [0,%d)", i, len(s.blocks))
	}
	return s.blocks[i], nil
}

// funcSource adapts a generator function to BlockSource.
type funcSource struct {
	n   int
	gen func(i int) ([]byte, error)
}

func (s funcSource) ReadBlock(i int) ([]byte, error) {
	if i < 0 || i >= s.n {
		return nil, fmt.Errorf("dfs: block index %d out of range [0,%d)", i, s.n)
	}
	return s.gen(i)
}

// File describes one stored file: an ordered chain of equally sized
// blocks (the final block may be short), plus an optional content
// source.
type File struct {
	Name      string
	NumBlocks int
	BlockSize int64 // nominal block size in bytes
	LastSize  int64 // size of the final block (== BlockSize when exact)
	source    BlockSource
}

// Size returns the total file size in bytes.
func (f *File) Size() int64 {
	if f.NumBlocks == 0 {
		return 0
	}
	return int64(f.NumBlocks-1)*f.BlockSize + f.LastSize
}

// BlockLen returns the size in bytes of block i.
func (f *File) BlockLen(i int) int64 {
	if i == f.NumBlocks-1 {
		return f.LastSize
	}
	return f.BlockSize
}

// Blocks returns the ordered list of the file's block ids.
func (f *File) Blocks() []BlockID {
	out := make([]BlockID, f.NumBlocks)
	for i := range out {
		out[i] = BlockID{File: f.Name, Index: i}
	}
	return out
}

// Stats holds cumulative scan accounting for a store.
type Stats struct {
	BlockReads   int64 // physical source scans (cache hits are not charged)
	BytesScanned int64 // total bytes returned by physical scans
	FailedReads  int64 // read attempts failed by the fault hook or the source
}

// ReadFault decides whether a read attempt of block id served by node
// should fail before touching the data. A nil hook never fails reads.
// Fault injectors (internal/faults) plug in here; production stores
// leave it unset.
type ReadFault func(id BlockID, node NodeID) error

// Store is the in-memory distributed block store.
type Store struct {
	mu        sync.RWMutex
	nodes     int
	replicas  int
	racks     int // 0 or 1 = no topology
	files     map[string]*File
	placement map[BlockID][]NodeID
	readFault ReadFault
	cache     *BlockCache

	blockReads   atomic.Int64
	bytesScanned atomic.Int64
	failedReads  atomic.Int64
}

// ErrNoSuchFile is returned when a file name is not registered.
var ErrNoSuchFile = errors.New("dfs: no such file")

// NewStore creates a store spanning the given number of nodes with the
// given replication factor (the paper uses 1). Blocks are placed
// round-robin with replicas on consecutive nodes, which mirrors how a
// rack-unaware HDFS placement spreads a large sequentially written
// file. Invalid arguments return an error so callers wiring the store
// from user input (flags, configs) can report them cleanly.
func NewStore(nodes, replicas int) (*Store, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("dfs: store needs at least one node, got %d", nodes)
	}
	if replicas <= 0 || replicas > nodes {
		return nil, fmt.Errorf("dfs: replication factor %d invalid for %d nodes (want 1..%d)", replicas, nodes, nodes)
	}
	return &Store{
		nodes:     nodes,
		replicas:  replicas,
		files:     make(map[string]*File),
		placement: make(map[BlockID][]NodeID),
	}, nil
}

// MustStore is NewStore for static configurations known to be valid
// (tests, examples); it panics on error.
func MustStore(nodes, replicas int) *Store {
	s, err := NewStore(nodes, replicas)
	if err != nil {
		panic(err)
	}
	return s
}

// SetReadFault installs a fault hook consulted on every block read.
// Pass nil to clear. Install before execution starts; the hook must be
// safe for concurrent use.
func (s *Store) SetReadFault(f ReadFault) {
	s.mu.Lock()
	s.readFault = f
	s.mu.Unlock()
}

// EnableCache installs a node-local block cache giving every node
// shard bytesPerNode of budget, and returns it. Subsequent ReadBlock/
// ReadBlockAt calls are served through the cache: hits skip the source
// (and the fault hook) entirely and are not charged to the scan
// counters. Install before execution starts. The cache uses the
// baseline LRU policy; use EnableCachePolicy to pick another.
func (s *Store) EnableCache(bytesPerNode int64) (*BlockCache, error) {
	return s.EnableCachePolicy(bytesPerNode, PolicyLRU)
}

// EnableCachePolicy is EnableCache with an explicit eviction policy
// (see Policies). Wire the scheduler's hint stream to HandleScanHint to
// activate the cursor policy's pinning and prefetch.
func (s *Store) EnableCachePolicy(bytesPerNode int64, policy string) (*BlockCache, error) {
	c, err := NewBlockCachePolicy(bytesPerNode, policy)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cache = c
	s.mu.Unlock()
	return c, nil
}

// Cache returns the installed block cache, or nil when caching is off.
func (s *Store) Cache() *BlockCache {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cache
}

// CacheStats returns a snapshot of the cache counters (zero when
// caching is off).
func (s *Store) CacheStats() CacheStats {
	if c := s.Cache(); c != nil {
		return c.Stats()
	}
	return CacheStats{}
}

// CachedBytes reports how many bytes of the given blocks are currently
// cached anywhere (0 when caching is off). Schedulers use this to
// prefer segments that are already warm.
func (s *Store) CachedBytes(blocks []BlockID) int64 {
	if c := s.Cache(); c != nil {
		return c.CachedBytes(blocks)
	}
	return 0
}

// AdvisedBytes is the arbitration signal fed to cache-aware
// schedulers: CachedBytes plus bytes committed to in-flight prefetches
// of the given blocks — strictly stronger than CachedBytes alone,
// because a segment whose readahead is mid-flight will be warm by
// dispatch time. Returns 0 when caching is off.
func (s *Store) AdvisedBytes(blocks []BlockID) int64 {
	if c := s.Cache(); c != nil {
		return c.AdvisedBytes(blocks)
	}
	return 0
}

// Nodes returns the number of nodes the store spans.
func (s *Store) Nodes() int { return s.nodes }

// Replicas returns the store's replication factor.
func (s *Store) Replicas() int { return s.replicas }

// AddFile registers a file from pre-materialized block data. Every
// block except the last must be the same length.
func (s *Store) AddFile(name string, blockSize int64, blocks [][]byte) (*File, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("dfs: file %q has no blocks", name)
	}
	for i, b := range blocks[:len(blocks)-1] {
		if int64(len(b)) != blockSize {
			return nil, fmt.Errorf("dfs: file %q block %d has %d bytes, want %d", name, i, len(b), blockSize)
		}
	}
	last := int64(len(blocks[len(blocks)-1]))
	if last > blockSize || last == 0 {
		return nil, fmt.Errorf("dfs: file %q last block has %d bytes, want 1..%d", name, last, blockSize)
	}
	f := &File{
		Name:      name,
		NumBlocks: len(blocks),
		BlockSize: blockSize,
		LastSize:  last,
		source:    bytesSource{blocks: blocks},
	}
	return f, s.register(f)
}

// AddGeneratedFile registers a file whose block contents are produced
// on demand by gen. All blocks report the nominal block size.
func (s *Store) AddGeneratedFile(name string, numBlocks int, blockSize int64, gen func(i int) ([]byte, error)) (*File, error) {
	if numBlocks <= 0 {
		return nil, fmt.Errorf("dfs: file %q has no blocks", name)
	}
	f := &File{
		Name:      name,
		NumBlocks: numBlocks,
		BlockSize: blockSize,
		LastSize:  blockSize,
		source:    funcSource{n: numBlocks, gen: gen},
	}
	return f, s.register(f)
}

// AddMetaFile registers a metadata-only file (no readable contents).
// The discrete-event simulator uses these: it needs block and segment
// structure but never block bytes.
func (s *Store) AddMetaFile(name string, numBlocks int, blockSize int64) (*File, error) {
	if numBlocks <= 0 {
		return nil, fmt.Errorf("dfs: file %q has no blocks", name)
	}
	f := &File{Name: name, NumBlocks: numBlocks, BlockSize: blockSize, LastSize: blockSize}
	return f, s.register(f)
}

func (s *Store) register(f *File) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.files[f.Name]; dup {
		return fmt.Errorf("dfs: file %q already exists", f.Name)
	}
	s.files[f.Name] = f
	for i := 0; i < f.NumBlocks; i++ {
		id := BlockID{File: f.Name, Index: i}
		s.placement[id] = s.placeLocked(i)
	}
	return nil
}

// File returns the registered file with the given name.
func (s *Store) File(name string) (*File, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchFile, name)
	}
	return f, nil
}

// Inventory lists the store's files and their block counts — the block
// inventory a worker advertises when registering with a master.
func (s *Store) Inventory() map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int, len(s.files))
	for name, f := range s.files {
		out[name] = f.NumBlocks
	}
	return out
}

// Locations returns the nodes holding replicas of the block, or nil if
// the block is unknown.
func (s *Store) Locations(id BlockID) []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	locs := s.placement[id]
	out := make([]NodeID, len(locs))
	copy(out, locs)
	return out
}

// HasLocal reports whether node holds a replica of the block.
func (s *Store) HasLocal(id BlockID, node NodeID) bool {
	for _, n := range s.Locations(id) {
		if n == node {
			return true
		}
	}
	return false
}

// ReadBlock returns the contents of a block and charges the scan to the
// store's counters. One call == one physical scan of the block; shared
// scheduling shows up directly as fewer ReadBlock calls. Reads via
// ReadBlock are not attributed to a node; use ReadBlockAt when the
// serving node matters (fault injection, locality accounting).
func (s *Store) ReadBlock(id BlockID) ([]byte, error) {
	return s.ReadBlockAt(id, NodeID(-1))
}

// ReadBlockAt is ReadBlock attributed to the node serving the read.
// The installed ReadFault hook (if any) sees the block and node and may
// fail the attempt before any data is touched; failed attempts are not
// charged to the scan counters. When a cache is installed, hits are
// served from memory — skipping both the fault hook and the scan
// counters — while misses take the full disk path, so fault-injection
// semantics are unchanged for anything that actually touches disk.
func (s *Store) ReadBlockAt(id BlockID, node NodeID) ([]byte, error) {
	s.mu.RLock()
	f, ok := s.files[id.File]
	fault := s.readFault
	cache := s.cache
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchFile, id.File)
	}
	load := s.loadFunc(f, id, node, fault)
	if cache == nil {
		return load()
	}
	return cache.Read(id, node, load)
}

// loadFunc builds the physical-scan closure for one block read: fault
// hook, source read, scan accounting. Demand reads and prefetches share
// it, so a prefetched block is charged exactly like a cold read.
func (s *Store) loadFunc(f *File, id BlockID, node NodeID, fault ReadFault) func() ([]byte, error) {
	return func() ([]byte, error) {
		if fault != nil {
			if err := fault(id, node); err != nil {
				s.failedReads.Add(1)
				return nil, err
			}
		}
		if f.source == nil {
			return nil, fmt.Errorf("dfs: file %q is metadata-only; block %d has no contents", id.File, id.Index)
		}
		data, err := f.source.ReadBlock(id.Index)
		if err != nil {
			s.failedReads.Add(1)
			return nil, err
		}
		s.blockReads.Add(1)
		s.bytesScanned.Add(int64(len(data)))
		return data, nil
	}
}

// HandleScanHint feeds one scheduler hint to the cache: the policy
// learns the new pin window, and — under the cursor policy on an
// unreplicated store — the hinted prefetch blocks start loading in the
// background on their primary holders. Prefetch is restricted to
// replicas == 1 because the readahead lands on Locations(b)[0]; with
// replication the engine's least-loaded replica choice may serve the
// block elsewhere and the speculative read would be charged without
// ever being consumed. Prefetch loads run through the same fault hook
// and scan counters as demand reads, but a block whose load fails is
// simply not cached (never retried, never an error to readers).
//
// The signature matches core.ScanHinter, so wire it directly:
// sched.SetScanHinter(store.HandleScanHint).
func (s *Store) HandleScanHint(h ScanHint) {
	s.mu.RLock()
	cache := s.cache
	fault := s.readFault
	f := s.files[h.File]
	s.mu.RUnlock()
	if cache == nil {
		return
	}
	cache.Hint(h)
	if cache.Policy() != PolicyCursor || s.replicas != 1 || f == nil {
		return
	}
	for _, id := range h.Prefetch {
		locs := s.Locations(id)
		if len(locs) == 0 {
			continue
		}
		node := locs[0]
		cache.PrefetchAsync(id, node, f.BlockLen(id.Index), s.loadFunc(f, id, node, fault))
	}
}

// Stats returns a snapshot of cumulative scan accounting.
func (s *Store) Stats() Stats {
	return Stats{
		BlockReads:   s.blockReads.Load(),
		BytesScanned: s.bytesScanned.Load(),
		FailedReads:  s.failedReads.Load(),
	}
}

// ResetStats zeroes all counters — scans, failed reads, and (when a
// cache is installed) the cache's hit/miss/eviction counters — so
// back-to-back experiment runs start from a clean slate. Cached block
// contents are kept; call Cache().Purge() to drop them too.
func (s *Store) ResetStats() {
	s.blockReads.Store(0)
	s.bytesScanned.Store(0)
	s.failedReads.Store(0)
	if c := s.Cache(); c != nil {
		c.ResetStats()
	}
}
