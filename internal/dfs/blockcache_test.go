package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// cacheStore builds a store over one generated file whose gen calls are
// counted, so tests can assert how many physical reads happened.
func cacheStore(t *testing.T, nodes, blocks int, blockSize int64) (*Store, *atomic.Int64) {
	t.Helper()
	s := MustStore(nodes, 1)
	var gens atomic.Int64
	_, err := s.AddGeneratedFile("f", blocks, blockSize, func(i int) ([]byte, error) {
		gens.Add(1)
		b := make([]byte, blockSize)
		for j := range b {
			b[j] = byte(i)
		}
		return b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, &gens
}

func TestCacheHitSkipsSource(t *testing.T) {
	s, gens := cacheStore(t, 2, 4, 64)
	if _, err := s.EnableCache(1 << 20); err != nil {
		t.Fatal(err)
	}
	id := BlockID{File: "f", Index: 1}
	a, err := s.ReadBlockAt(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.ReadBlockAt(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("cached read returned different bytes")
	}
	if got := gens.Load(); got != 1 {
		t.Fatalf("source read %d times, want 1", got)
	}
	cs := s.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", cs)
	}
	// Hits are not physical scans.
	if st := s.Stats(); st.BlockReads != 1 || st.BytesScanned != 64 {
		t.Fatalf("store stats = %+v, want 1 read / 64 bytes", st)
	}
}

func TestCachePerNodeShards(t *testing.T) {
	s, gens := cacheStore(t, 4, 4, 64)
	if _, err := s.EnableCache(1 << 20); err != nil {
		t.Fatal(err)
	}
	id := BlockID{File: "f", Index: 0}
	// The same block read on two nodes is two independent cold reads.
	if _, err := s.ReadBlockAt(id, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadBlockAt(id, 1); err != nil {
		t.Fatal(err)
	}
	if got := gens.Load(); got != 2 {
		t.Fatalf("source read %d times, want 2 (one per node shard)", got)
	}
	if !s.Cache().Contains(id, 0) || !s.Cache().Contains(id, 1) {
		t.Fatal("block missing from a node shard")
	}
	if s.Cache().Contains(id, 2) {
		t.Fatal("block cached on a node that never read it")
	}
}

// Satellite: the -race single-flight test. N goroutines read the same
// cold block; exactly one must reach the source, and every goroutine
// must see identical bytes.
func TestCacheSingleFlight(t *testing.T) {
	s, gens := cacheStore(t, 2, 4, 256)
	if _, err := s.EnableCache(1 << 20); err != nil {
		t.Fatal(err)
	}
	const readers = 32
	id := BlockID{File: "f", Index: 2}
	want, err := s.ReadBlockAt(id, 1) // warm a reference copy on node 1
	if err != nil {
		t.Fatal(err)
	}
	gens.Store(0)

	var wg sync.WaitGroup
	results := make([][]byte, readers)
	errs := make([]error, readers)
	start := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = s.ReadBlockAt(id, 0) // node 0 shard is cold
		}(i)
	}
	close(start)
	wg.Wait()

	if got := gens.Load(); got != 1 {
		t.Fatalf("source read %d times, want 1 (single-flight)", got)
	}
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], want) {
			t.Fatalf("reader %d got torn/garbled bytes", i)
		}
	}
	cs := s.Cache().Stats()
	if cs.Hits+cs.Misses != readers+1 {
		t.Fatalf("hits+misses = %d, want %d (one per read)", cs.Hits+cs.Misses, readers+1)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	s, _ := cacheStore(t, 1, 4, 100)
	c, err := s.EnableCache(250) // room for two 100-byte blocks
	if err != nil {
		t.Fatal(err)
	}
	var events []CacheEvent
	c.SetObserver(func(ev CacheEvent) { events = append(events, ev) })
	read := func(i int) {
		t.Helper()
		if _, err := s.ReadBlockAt(BlockID{File: "f", Index: i}, 0); err != nil {
			t.Fatal(err)
		}
	}
	read(0)
	read(1)
	read(0) // promote block 0: block 1 is now LRU
	read(2) // over budget: evicts block 1
	if c.Contains(BlockID{File: "f", Index: 1}, 0) {
		t.Fatal("LRU block 1 still cached after eviction")
	}
	if !c.Contains(BlockID{File: "f", Index: 0}, 0) || !c.Contains(BlockID{File: "f", Index: 2}, 0) {
		t.Fatal("recently used blocks were evicted")
	}
	cs := c.Stats()
	if cs.Evictions != 1 || cs.Bytes != 200 {
		t.Fatalf("stats = %+v, want 1 eviction / 200 bytes", cs)
	}
	var sawEvict bool
	for _, ev := range events {
		if ev.Kind == CacheEvict && ev.Block.Index == 1 {
			sawEvict = true
		}
	}
	if !sawEvict {
		t.Fatal("observer saw no eviction event for block 1")
	}
}

func TestCacheOversizedBlockNotCached(t *testing.T) {
	s, gens := cacheStore(t, 1, 2, 512)
	if _, err := s.EnableCache(100); err != nil {
		t.Fatal(err)
	}
	id := BlockID{File: "f", Index: 0}
	for i := 0; i < 2; i++ {
		if _, err := s.ReadBlockAt(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := gens.Load(); got != 2 {
		t.Fatalf("source read %d times, want 2 (block exceeds budget, never cached)", got)
	}
	if cs := s.CacheStats(); cs.Bytes != 0 {
		t.Fatalf("cached %d bytes, want 0", cs.Bytes)
	}
}

func TestCacheFaultedReadNeverCached(t *testing.T) {
	s, gens := cacheStore(t, 1, 2, 64)
	if _, err := s.EnableCache(1 << 20); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected")
	var attempts atomic.Int64
	s.SetReadFault(func(id BlockID, node NodeID) error {
		if attempts.Add(1) == 1 {
			return injected
		}
		return nil
	})
	id := BlockID{File: "f", Index: 0}
	if _, err := s.ReadBlockAt(id, 0); !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if s.Cache().Contains(id, 0) {
		t.Fatal("failed read was cached")
	}
	if st := s.Stats(); st.FailedReads != 1 || st.BlockReads != 0 {
		t.Fatalf("stats = %+v, want 1 failed / 0 reads", st)
	}
	// The retry takes the cold path again (fault hook fires on misses).
	if _, err := s.ReadBlockAt(id, 0); err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("fault hook fired %d times, want 2", got)
	}
	if got := gens.Load(); got != 1 {
		t.Fatalf("source read %d times, want 1", got)
	}
	// Now cached: the hook must NOT fire on the hit.
	if _, err := s.ReadBlockAt(id, 0); err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("fault hook fired on a cache hit (%d calls)", got)
	}
}

func TestCacheMetadataOnlyFileStaysUnreadable(t *testing.T) {
	s := MustStore(1, 1)
	if _, err := s.AddMetaFile("meta", 2, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnableCache(1 << 20); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadBlock(BlockID{File: "meta", Index: 0}); err == nil {
		t.Fatal("metadata-only read succeeded through the cache")
	}
	if cs := s.CacheStats(); cs.Bytes != 0 {
		t.Fatalf("cached %d bytes of a metadata-only file", cs.Bytes)
	}
}

// cacheGauges names the CacheStats fields that are point-in-time
// footprints rather than cumulative counters: they survive ResetStats
// (only Purge drops them). Every field NOT listed here is a counter
// that ResetStats must zero — the reflection test below fails the
// moment someone adds a counter without extending ResetStats, the bug
// class PR 4 fixed for hits/misses/evictions.
var cacheGauges = map[string]bool{"Bytes": true, "PinnedBytes": true}

// Satellite regression: ResetStats must cover every counter — the scan
// counters, the failed-read counter fed by SetReadFault, and every
// cache counter including the prefetch pair. The setup drives each
// counter nonzero first, so a newly added field that the setup does not
// exercise also fails loudly (forcing this test to stay complete).
func TestResetStatsCoversAllCounters(t *testing.T) {
	s, _ := cacheStore(t, 1, 4, 64)
	c, err := s.EnableCachePolicy(3*64, PolicyCursor)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	var fail atomic.Bool
	fail.Store(true)
	s.SetReadFault(func(id BlockID, node NodeID) error {
		if fail.CompareAndSwap(true, false) {
			return boom
		}
		return nil
	})
	id := BlockID{File: "f", Index: 0}
	if _, err := s.ReadBlock(id); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.ReadBlock(id); err != nil {
			t.Fatal(err)
		}
	}
	// Evictions: read past the 3-block budget.
	for i := 1; i < 4; i++ {
		if _, err := s.ReadBlock(BlockID{File: "f", Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Prefetches: one that fails, one that succeeds. The follow-up Read
	// waits on the in-flight prefetch, so both outcomes are settled (and
	// their counters visible) once it returns.
	pid := BlockID{File: "f", Index: 0}
	if !c.PrefetchAsync(pid, 1, 64, func() ([]byte, error) { return nil, boom }) {
		t.Fatal("failing prefetch not issued")
	}
	if _, err := s.ReadBlockAt(pid, 1); err != nil {
		t.Fatal(err)
	}
	if !c.PrefetchAsync(BlockID{File: "f", Index: 1}, 1, 64, func() ([]byte, error) { return make([]byte, 64), nil }) {
		t.Fatal("prefetch not issued")
	}
	if _, err := s.ReadBlockAt(BlockID{File: "f", Index: 1}, 1); err != nil {
		t.Fatal(err)
	}
	// Pin something so the PinnedBytes gauge is live too.
	c.Hint(ScanHint{File: "f", Pin: [][]BlockID{{{File: "f", Index: 1}}}})

	st := reflect.ValueOf(s.Stats())
	for i := 0; i < st.NumField(); i++ {
		if st.Field(i).Int() == 0 {
			t.Fatalf("setup left store counter %s zero", st.Type().Field(i).Name)
		}
	}
	cs := reflect.ValueOf(s.CacheStats())
	for i := 0; i < cs.NumField(); i++ {
		if cs.Field(i).Int() == 0 {
			t.Fatalf("setup left cache field %s zero — extend the setup for new counters", cs.Type().Field(i).Name)
		}
	}

	s.ResetStats()
	if got := s.Stats(); got != (Stats{}) {
		t.Fatalf("after ResetStats, store stats = %+v, want zeros", got)
	}
	cs = reflect.ValueOf(s.CacheStats())
	for i := 0; i < cs.NumField(); i++ {
		name := cs.Type().Field(i).Name
		if cacheGauges[name] {
			if cs.Field(i).Int() == 0 {
				t.Fatalf("ResetStats dropped gauge %s (cached contents must survive)", name)
			}
			continue
		}
		if got := cs.Field(i).Int(); got != 0 {
			t.Fatalf("after ResetStats, cache counter %s = %d, want 0 — ResetStats missed it", name, got)
		}
	}
	s.Cache().Purge()
	if cs := s.CacheStats(); cs.Bytes != 0 || cs.PinnedBytes != 0 {
		t.Fatalf("after Purge, %d bytes (%d pinned) cached", cs.Bytes, cs.PinnedBytes)
	}
}

func TestCacheCachedBytes(t *testing.T) {
	s, _ := cacheStore(t, 3, 6, 64)
	if _, err := s.EnableCache(1 << 20); err != nil {
		t.Fatal(err)
	}
	// Block 0 on two nodes (counts once), block 1 on one node.
	for _, r := range []struct {
		idx  int
		node NodeID
	}{{0, 0}, {0, 1}, {1, 2}} {
		if _, err := s.ReadBlockAt(BlockID{File: "f", Index: r.idx}, r.node); err != nil {
			t.Fatal(err)
		}
	}
	blocks := []BlockID{{File: "f", Index: 0}, {File: "f", Index: 1}, {File: "f", Index: 5}}
	if got := s.CachedBytes(blocks); got != 128 {
		t.Fatalf("CachedBytes = %d, want 128 (two distinct cached blocks)", got)
	}
	// No cache installed: always zero.
	bare := MustStore(1, 1)
	if got := bare.CachedBytes(blocks); got != 0 {
		t.Fatalf("CachedBytes without a cache = %d, want 0", got)
	}
}

func TestEnableCacheRejectsBadBudget(t *testing.T) {
	s := MustStore(1, 1)
	for _, budget := range []int64{0, -5} {
		if _, err := s.EnableCache(budget); err == nil {
			t.Fatalf("EnableCache(%d) succeeded, want error", budget)
		}
	}
	if _, err := NewBlockCache(0); err == nil {
		t.Fatal("NewBlockCache(0) succeeded, want error")
	}
	c, err := s.EnableCache(4096)
	if err != nil {
		t.Fatal(err)
	}
	if c.Budget() != 4096 {
		t.Fatalf("Budget = %d, want 4096", c.Budget())
	}
}

func TestCacheSingleFlightErrorPropagates(t *testing.T) {
	// All coalesced waiters of a failing load must see the error, and
	// nothing may be cached.
	s := MustStore(1, 1)
	boom := errors.New("disk gone")
	release := make(chan struct{})
	var gens atomic.Int64
	if _, err := s.AddGeneratedFile("f", 1, 64, func(i int) ([]byte, error) {
		gens.Add(1)
		<-release
		return nil, boom
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnableCache(1 << 20); err != nil {
		t.Fatal(err)
	}
	const readers = 8
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.ReadBlock(BlockID{File: "f", Index: 0})
		}(i)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("reader %d: err = %v, want boom", i, err)
		}
	}
	if got := gens.Load(); got < 1 || got > readers {
		t.Fatalf("gen calls = %d, want within [1,%d]", got, readers)
	}
	if cs := s.CacheStats(); cs.Bytes != 0 {
		t.Fatal("failed load was cached")
	}
	if st := s.Stats(); int(st.FailedReads) != int(gens.Load()) {
		t.Fatalf("failed reads = %d, want %d", st.FailedReads, gens.Load())
	}
}

func TestCacheStatsHitRatio(t *testing.T) {
	if r := (CacheStats{}).HitRatio(); r != 0 {
		t.Fatalf("empty hit ratio = %v, want 0", r)
	}
	if r := (CacheStats{Hits: 3, Misses: 1}).HitRatio(); r != 0.75 {
		t.Fatalf("hit ratio = %v, want 0.75", r)
	}
}

func ExampleStore_EnableCache() {
	s := MustStore(2, 1)
	blocks := [][]byte{[]byte("aaaa"), []byte("bbbb")}
	if _, err := s.AddFile("f", 4, blocks); err != nil {
		panic(err)
	}
	if _, err := s.EnableCache(1 << 10); err != nil {
		panic(err)
	}
	id := BlockID{File: "f", Index: 0}
	s.ReadBlockAt(id, 0)
	s.ReadBlockAt(id, 0)
	cs := s.CacheStats()
	fmt.Printf("hits=%d misses=%d physical=%d\n", cs.Hits, cs.Misses, s.Stats().BlockReads)
	// Output: hits=1 misses=1 physical=1
}
