package dfs

import "fmt"

// Rack topology. The paper's cluster is organized in three racks of
// 10-15 nodes (§V-A); rack placement matters because a block fetched
// across racks crosses the aggregation switch. The store's default is
// a single rack; SetRacks splits the nodes into contiguous,
// near-equal groups and re-places existing replicas rack-aware.
//
// Placement policy with topology (HDFS's default):
//
//	replica 1: the block's home node;
//	replica 2: a node on a *different* rack;
//	replica 3: a different node on replica 2's rack;
//	further replicas: spread round-robin.

// SetRacks organizes the store's nodes into numRacks contiguous racks
// and re-places all existing blocks rack-aware. It must be called
// before files are added for placement to matter; calling it later
// re-places everything (cheap — placement is metadata).
func (s *Store) SetRacks(numRacks int) error {
	if numRacks <= 0 || numRacks > s.nodes {
		return fmt.Errorf("dfs: %d racks invalid for %d nodes", numRacks, s.nodes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.racks = numRacks
	for id := range s.placement {
		s.placement[id] = s.placeLocked(id.Index)
	}
	return nil
}

// Racks returns the number of racks (1 when no topology is set).
func (s *Store) Racks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.racks == 0 {
		return 1
	}
	return s.racks
}

// Rack returns the rack index of a node.
func (s *Store) Rack(node NodeID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rackLocked(node)
}

func (s *Store) rackLocked(node NodeID) int {
	if s.racks <= 1 {
		return 0
	}
	// Contiguous near-equal split: rack r holds nodes
	// [r*n/racks, (r+1)*n/racks).
	return int(node) * s.racks / s.nodes
}

// rackPeers returns the nodes on the given rack.
func (s *Store) rackPeersLocked(rack int) []NodeID {
	var out []NodeID
	for n := 0; n < s.nodes; n++ {
		if s.rackLocked(NodeID(n)) == rack {
			out = append(out, NodeID(n))
		}
	}
	return out
}

// placeLocked computes the replica list for block index i under the
// current topology.
func (s *Store) placeLocked(i int) []NodeID {
	home := NodeID(i % s.nodes)
	if s.replicas == 1 || s.racks <= 1 {
		// No topology: consecutive nodes (the original policy).
		out := make([]NodeID, s.replicas)
		for r := 0; r < s.replicas; r++ {
			out[r] = NodeID((i + r) % s.nodes)
		}
		return out
	}
	out := []NodeID{home}
	used := map[NodeID]bool{home: true}
	homeRack := s.rackLocked(home)

	// Replica 2: a node on a different rack, chosen deterministically
	// from the block index.
	otherRack := (homeRack + 1 + i%(s.racks-1)) % s.racks
	peers := s.rackPeersLocked(otherRack)
	second := peers[i%len(peers)]
	out = append(out, second)
	used[second] = true

	// Replica 3: another node on replica 2's rack if possible.
	if s.replicas >= 3 {
		for off := 1; off <= len(peers); off++ {
			cand := peers[(i+off)%len(peers)]
			if !used[cand] {
				out = append(out, cand)
				used[cand] = true
				break
			}
		}
	}
	// Any further replicas: round-robin over remaining nodes.
	for n := 0; len(out) < s.replicas && n < s.nodes; n++ {
		cand := NodeID((i + n) % s.nodes)
		if !used[cand] {
			out = append(out, cand)
			used[cand] = true
		}
	}
	return out
}
