package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// hintStore builds an n-block single-file store with numbered block
// contents, so tests can assert byte-identity after cache operations.
func hintStore(t *testing.T, nodes, replicas, numBlocks int, blockSize int64) (*Store, *File) {
	t.Helper()
	s := MustStore(nodes, replicas)
	blocks := make([][]byte, numBlocks)
	for i := range blocks {
		blocks[i] = bytes.Repeat([]byte{byte('a' + i%26)}, int(blockSize))
	}
	f, err := s.AddFile("input", blockSize, blocks)
	if err != nil {
		t.Fatal(err)
	}
	return s, f
}

// waitCache polls the store's cache counters until pred holds or the
// deadline passes, returning the final snapshot either way — the
// pattern for asserting on asynchronous prefetch results.
func waitCache(s *Store, pred func(CacheStats) bool) CacheStats {
	deadline := time.Now().Add(5 * time.Second)
	for {
		cs := s.CacheStats()
		if pred(cs) || time.Now().After(deadline) {
			return cs
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPolicyRegistry(t *testing.T) {
	for _, name := range Policies() {
		if !ValidPolicy(name) {
			t.Errorf("Policies() lists %q but ValidPolicy rejects it", name)
		}
		p, err := NewPolicy(name, 1<<20)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
		// Exercise the shared contract once through every
		// implementation, including the no-op Hint of lru and 2q.
		id := BlockID{File: "f", Index: 0}
		p.Admit(id, 64)
		p.Touch(id)
		p.Hint(ScanHint{File: "f", Pin: [][]BlockID{{id}}, Demote: []BlockID{id}})
		if p.Name() == PolicyCursor != p.Pinned(id) {
			t.Errorf("%s: Pinned(%v) = %v after pin hint", name, id, p.Pinned(id))
		}
		if v, ok := p.Victim(); ok {
			p.Remove(v)
		} else if p.Name() != PolicyCursor {
			t.Errorf("%s: no victim with one unpinned resident block", name)
		}
	}
	for _, bad := range []string{"", "clock", "LRU"} {
		if ValidPolicy(bad) {
			t.Errorf("ValidPolicy(%q) = true", bad)
		}
		if _, err := NewPolicy(bad, 1<<20); err == nil {
			t.Errorf("NewPolicy(%q) did not fail", bad)
		}
	}
	if c, err := NewBlockCachePolicy(1<<20, Policy2Q); err != nil || c.Policy() != Policy2Q {
		t.Fatalf("NewBlockCachePolicy: cache %v, err %v", c, err)
	}
}

func TestHandleScanHintPrefetchesNextSegment(t *testing.T) {
	const blockSize = 512
	s, f := hintStore(t, 2, 1, 8, blockSize)
	if _, err := s.EnableCachePolicy(8*blockSize, PolicyCursor); err != nil {
		t.Fatal(err)
	}
	ids := f.Blocks()
	s.HandleScanHint(ScanHint{
		File:     f.Name,
		Pin:      [][]BlockID{ids[2:4]},
		Demote:   ids[0:2],
		Prefetch: ids[2:4],
	})
	cs := waitCache(s, func(cs CacheStats) bool { return cs.Bytes == 2*blockSize })
	if cs.Prefetches != 2 || cs.PrefetchFailed != 0 || cs.Bytes != 2*blockSize {
		t.Fatalf("prefetch did not warm the hinted segment: %+v", cs)
	}
	if cs.PinnedBytes != 2*blockSize {
		t.Fatalf("prefetched blocks not pinned: %+v", cs)
	}
	if got := s.AdvisedBytes(ids[2:4]); got != 2*blockSize {
		t.Fatalf("AdvisedBytes = %d, want %d", got, 2*blockSize)
	}
	// The warmed blocks now hit without a physical scan, byte-identical
	// to the source.
	physical := s.Stats().BlockReads
	for _, id := range ids[2:4] {
		data, err := s.ReadBlockAt(id, s.Locations(id)[0])
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != blockSize || data[0] != byte('a'+id.Index) {
			t.Fatalf("block %v corrupted by prefetch path", id)
		}
	}
	if got := s.Stats().BlockReads; got != physical {
		t.Fatalf("warm reads hit the source: %d physical scans, want %d", got, physical)
	}
	if hits := s.CacheStats().Hits; hits != 2 {
		t.Fatalf("warm reads recorded %d hits, want 2", hits)
	}
	// A repeated hint declines to re-prefetch resident blocks.
	s.HandleScanHint(ScanHint{File: f.Name, Prefetch: ids[2:4]})
	if cs := s.CacheStats(); cs.Prefetches != 2 {
		t.Fatalf("resident blocks re-prefetched: %+v", cs)
	}
}

func TestHandleScanHintGuards(t *testing.T) {
	const blockSize = 512
	t.Run("no cache", func(t *testing.T) {
		s, f := hintStore(t, 2, 1, 4, blockSize)
		s.HandleScanHint(ScanHint{File: f.Name, Prefetch: f.Blocks()}) // must not panic
		if cs := s.CacheStats(); cs != (CacheStats{}) {
			t.Fatalf("uncached store reported cache stats %+v", cs)
		}
		if got := s.AdvisedBytes(f.Blocks()); got != 0 {
			t.Fatalf("AdvisedBytes without a cache = %d", got)
		}
	})
	t.Run("replicated store skips prefetch", func(t *testing.T) {
		s, f := hintStore(t, 2, 2, 4, blockSize)
		if _, err := s.EnableCachePolicy(4*blockSize, PolicyCursor); err != nil {
			t.Fatal(err)
		}
		s.HandleScanHint(ScanHint{File: f.Name, Prefetch: f.Blocks()})
		if cs := s.CacheStats(); cs.Prefetches != 0 {
			t.Fatalf("prefetch issued on a replicated store: %+v", cs)
		}
	})
	t.Run("non-cursor policy skips prefetch", func(t *testing.T) {
		s, f := hintStore(t, 2, 1, 4, blockSize)
		if _, err := s.EnableCachePolicy(4*blockSize, Policy2Q); err != nil {
			t.Fatal(err)
		}
		s.HandleScanHint(ScanHint{File: f.Name, Prefetch: f.Blocks()})
		if cs := s.CacheStats(); cs.Prefetches != 0 {
			t.Fatalf("prefetch issued under 2q: %+v", cs)
		}
	})
	t.Run("unknown file", func(t *testing.T) {
		s, f := hintStore(t, 2, 1, 4, blockSize)
		if _, err := s.EnableCachePolicy(4*blockSize, PolicyCursor); err != nil {
			t.Fatal(err)
		}
		s.HandleScanHint(ScanHint{File: "nope", Prefetch: f.Blocks()})
		if cs := s.CacheStats(); cs.Prefetches != 0 {
			t.Fatalf("prefetch issued for an unknown file: %+v", cs)
		}
	})
}

func TestHandleScanHintFaultedPrefetchNeverCached(t *testing.T) {
	const blockSize = 512
	s, f := hintStore(t, 1, 1, 4, blockSize)
	if _, err := s.EnableCachePolicy(4*blockSize, PolicyCursor); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected")
	s.SetReadFault(func(BlockID, NodeID) error { return boom })
	id := f.Blocks()[0]
	s.HandleScanHint(ScanHint{File: f.Name, Prefetch: []BlockID{id}})
	cs := waitCache(s, func(cs CacheStats) bool { return cs.PrefetchFailed == 1 })
	if cs.Prefetches != 1 || cs.PrefetchFailed != 1 || cs.Bytes != 0 {
		t.Fatalf("faulted prefetch was cached or miscounted: %+v", cs)
	}
	if s.Cache().Contains(id, s.Locations(id)[0]) {
		t.Fatal("faulted prefetch left the block resident")
	}
	// The next demand read retries cold through the normal fault path
	// and, once the fault clears, caches normally.
	if _, err := s.ReadBlockAt(id, s.Locations(id)[0]); !errors.Is(err, boom) {
		t.Fatalf("demand read after faulted prefetch: err %v, want %v", err, boom)
	}
	s.SetReadFault(nil)
	if _, err := s.ReadBlockAt(id, s.Locations(id)[0]); err != nil {
		t.Fatal(err)
	}
	if cs := s.CacheStats(); cs.Bytes != blockSize {
		t.Fatalf("recovered read not cached: %+v", cs)
	}
}

func TestMetaCacheMirrorsBlockCacheSemantics(t *testing.T) {
	const blockSize = int64(512)
	if _, err := NewMetaCache(0, PolicyLRU); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewMetaCache(blockSize, "clock"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	m, err := NewMetaCache(2*blockSize, PolicyCursor)
	if err != nil {
		t.Fatal(err)
	}
	if m.Budget() != 2*blockSize || m.Policy() != PolicyCursor {
		t.Fatalf("budget %d policy %q", m.Budget(), m.Policy())
	}
	ids := make([]BlockID, 4)
	for i := range ids {
		ids[i] = BlockID{File: "f", Index: i}
	}
	// A hint delivered before any shard exists must still apply to
	// shards created later (the lastHints replay).
	m.Hint(ScanHint{File: "f", Pin: [][]BlockID{ids[0:2]}})
	if m.Access(ids[0], 0, blockSize) {
		t.Fatal("cold access hit")
	}
	if !m.Access(ids[0], 0, blockSize) {
		t.Fatal("warm access missed")
	}
	if !m.Prefetch(ids[1], 0, blockSize) {
		t.Fatal("prefetch of absent block declined")
	}
	if m.Prefetch(ids[1], 0, blockSize) {
		t.Fatal("resident block re-prefetched")
	}
	if m.Prefetch(ids[2], 0, 3*blockSize) {
		t.Fatal("over-budget block prefetched")
	}
	// Both resident blocks are pinned and fill the budget, so a further
	// prefetch would crowd out pinned bytes and must decline.
	if m.Prefetch(ids[2], 0, blockSize) {
		t.Fatal("prefetch crowded out pinned bytes")
	}
	if !m.Contains(ids[1], 0) || m.Contains(ids[1], 1) {
		t.Fatal("Contains wrong about residency")
	}
	if got := m.CachedBytes(ids); got != 2*blockSize {
		t.Fatalf("CachedBytes = %d, want %d", got, 2*blockSize)
	}
	st := m.Stats()
	want := CacheStats{Hits: 1, Misses: 1, Prefetches: 1, Bytes: 2 * blockSize, PinnedBytes: 2 * blockSize}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
	m.ResetStats()
	st = m.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Prefetches != 0 {
		t.Fatalf("ResetStats left counters: %+v", st)
	}
	if st.Bytes != 2*blockSize || st.PinnedBytes != 2*blockSize {
		t.Fatalf("ResetStats dropped residency gauges: %+v", st)
	}
}

func TestStoreShapeAccessors(t *testing.T) {
	s, f := hintStore(t, 3, 2, 4, 512)
	if s.Nodes() != 3 || s.Replicas() != 2 {
		t.Fatalf("Nodes/Replicas = %d/%d", s.Nodes(), s.Replicas())
	}
	inv := s.Inventory()
	if inv[f.Name] != 4 {
		t.Fatalf("Inventory = %v", inv)
	}
	if got := fmt.Sprint(f.Blocks()[1]); got != "input#1" {
		t.Fatalf("BlockID.String() = %q", got)
	}
	if f.Size() != 4*512 {
		t.Fatalf("Size = %d", f.Size())
	}
}
