// Eviction policies: the pluggable replacement layer under BlockCache
// and MetaCache.
//
// The S^3 access pattern — a circular scan that returns to every block
// exactly one cycle later — is the textbook adversary for LRU: when the
// budget is smaller than the cycle, LRU evicts each block just before
// the cursor comes back to it and the hit ratio collapses to zero
// (bench/cache-sweep.json's 2GB cliff). The fix is not a bigger cache but a
// scan-aware policy, so the replacement decision is factored out behind
// EvictionPolicy and three implementations ship:
//
//	lru    — the original behavior, kept as the baseline.
//	2q     — the classic two-queue policy (Johnson & Shasha): new
//	         blocks enter a probationary FIFO (A1in) and only blocks
//	         re-referenced after leaving it — remembered by a ghost
//	         list of ids (A1out) — are promoted to the protected LRU
//	         (Am). A one-shot sequential flood churns through A1in
//	         without displacing the warm set, so a cyclic scan
//	         stabilizes a protected fraction of the cycle instead of
//	         losing everything.
//	cursor — segment-granular pinning driven by ScanHint from the JQM
//	         cursor: the next-to-be-scanned segments are pinned
//	         (Victim never selects them), just-scanned segments are
//	         demoted to evict-first. With readahead this approximates
//	         Belady for the circular scan: keep exactly what the
//	         cursor will want next.
//
// Policies are metadata-only — they see block ids and sizes, never
// contents — so the identical implementations drive both the real
// BlockCache and the simulator's MetaCache pricing twin. That sharing
// is what keeps sim and engine cache cells comparable by construction.
package dfs

import (
	"container/list"
	"fmt"
	"strings"
)

// Policy names accepted by NewBlockCachePolicy, Store.EnableCachePolicy
// and the workload schema's cachePolicy field.
const (
	PolicyLRU    = "lru"
	Policy2Q     = "2q"
	PolicyCursor = "cursor"
)

// Policies returns the supported eviction policy names in canonical
// order (baseline first).
func Policies() []string { return []string{PolicyLRU, Policy2Q, PolicyCursor} }

// ValidPolicy reports whether name is a supported eviction policy.
func ValidPolicy(name string) bool {
	switch name {
	case PolicyLRU, Policy2Q, PolicyCursor:
		return true
	}
	return false
}

// ScanHint is the scheduler's cache guidance, emitted by the JQM each
// time its circular cursor advances (core.S3.SetScanHinter). One hint
// carries the full picture for one file, so applying it is idempotent:
//
//   - Pin lists the upcoming segments in cursor order (typically the
//     cursor segment and the one after it). It *replaces* the previous
//     pin set for File — segments that left the window unpin
//     implicitly.
//   - Demote lists the just-scanned segment's blocks: under S^3 every
//     active job has consumed them, so they are the least valuable
//     bytes in the cache and drop to evict-first order.
//   - Prefetch lists the blocks worth reading ahead (the segment after
//     the cursor) — empty when the scheduler cannot guarantee the
//     segment will actually be scanned. Only the cursor policy acts on
//     it; pins and demotes are advice any policy may use.
type ScanHint struct {
	File     string
	Pin      [][]BlockID
	Demote   []BlockID
	Prefetch []BlockID
}

// EvictionPolicy decides which resident block a cache shard discards
// next. Implementations track residency metadata only (ids and sizes);
// the cache owns the bytes, the budget arithmetic and the locking —
// every method is called with the owning cache's lock held.
//
// The contract shared by all policies (fuzzed in FuzzBlockCache):
//
//   - Admit/Remove bracket residency: a block is resident from Admit
//     until Remove, and Touch/Victim only ever see resident blocks.
//   - Victim returns a resident block, never one that Pinned reports
//     true for; ok=false means every resident block is pinned.
//   - Hint is advisory: a policy may ignore it entirely (lru, 2q).
type EvictionPolicy interface {
	// Name returns the policy's registry name.
	Name() string
	// Touch records a read of a resident block.
	Touch(id BlockID)
	// Admit records a block becoming resident with the given size.
	Admit(id BlockID, size int64)
	// Victim returns the next block to evict, or ok=false when no
	// resident block may be evicted (all pinned).
	Victim() (BlockID, bool)
	// Remove records a block leaving residency (eviction or purge).
	Remove(id BlockID)
	// Hint applies scheduler guidance (pins, demotions).
	Hint(h ScanHint)
	// Pinned reports whether the block is pin-protected right now.
	Pinned(id BlockID) bool
}

// NewPolicy builds the named eviction policy for a shard with the
// given byte budget (the 2Q queue thresholds derive from it).
func NewPolicy(name string, budget int64) (EvictionPolicy, error) {
	switch name {
	case PolicyLRU:
		return newLRUPolicy(), nil
	case Policy2Q:
		return new2QPolicy(budget), nil
	case PolicyCursor:
		return newCursorPolicy(), nil
	}
	return nil, fmt.Errorf("dfs: unknown cache policy %q (want %s)", name, strings.Join(Policies(), "|"))
}

// lruPolicy is the baseline: strict least-recently-used.
type lruPolicy struct {
	entries map[BlockID]*list.Element
	order   *list.List // front = most recently used
}

func newLRUPolicy() *lruPolicy {
	return &lruPolicy{entries: make(map[BlockID]*list.Element), order: list.New()}
}

func (p *lruPolicy) Name() string { return PolicyLRU }

func (p *lruPolicy) Touch(id BlockID) {
	if el, ok := p.entries[id]; ok {
		p.order.MoveToFront(el)
	}
}

func (p *lruPolicy) Admit(id BlockID, size int64) {
	p.entries[id] = p.order.PushFront(id)
}

func (p *lruPolicy) Victim() (BlockID, bool) {
	back := p.order.Back()
	if back == nil {
		return BlockID{}, false
	}
	return back.Value.(BlockID), true
}

func (p *lruPolicy) Remove(id BlockID) {
	if el, ok := p.entries[id]; ok {
		p.order.Remove(el)
		delete(p.entries, id)
	}
}

func (p *lruPolicy) Hint(ScanHint)       {}
func (p *lruPolicy) Pinned(BlockID) bool { return false }

// twoQEntry is one resident block's 2Q metadata.
type twoQEntry struct {
	el        *list.Element
	size      int64
	protected bool // true = Am, false = A1in
}

// ghostEntry is one remembered (non-resident) block id in A1out.
type ghostEntry struct {
	id   BlockID
	size int64
}

// twoQPolicy implements the full 2Q algorithm. Queue sizing follows
// the paper's recommendations translated to bytes: Kin (the
// probationary share) is a quarter of the budget, and the ghost list
// remembers up to twice the budget's worth of evicted ids — enough to
// recognize a cyclic re-reference whose period is up to 2× the shard
// budget after the probationary transit.
type twoQPolicy struct {
	kin      int64 // evict from A1in while it holds at least this much
	ghostCap int64 // bytes of evicted blocks A1out remembers

	resident  map[BlockID]*twoQEntry
	a1in      *list.List // probationary FIFO, front = newest
	am        *list.List // protected LRU, front = most recent
	a1inBytes int64

	ghost      map[BlockID]*list.Element
	ghostList  *list.List // front = most recently evicted
	ghostBytes int64
}

func new2QPolicy(budget int64) *twoQPolicy {
	return &twoQPolicy{
		kin:       budget / 4,
		ghostCap:  2 * budget,
		resident:  make(map[BlockID]*twoQEntry),
		a1in:      list.New(),
		am:        list.New(),
		ghost:     make(map[BlockID]*list.Element),
		ghostList: list.New(),
	}
}

func (p *twoQPolicy) Name() string { return Policy2Q }

// Touch promotes only protected blocks: a re-read while still in A1in
// is correlated access and does not prove reuse (the 2Q insight).
func (p *twoQPolicy) Touch(id BlockID) {
	if ent, ok := p.resident[id]; ok && ent.protected {
		p.am.MoveToFront(ent.el)
	}
}

// Admit places ghost-remembered blocks straight into Am — a reference
// after the probationary transit is the reuse proof — and everything
// else into A1in.
func (p *twoQPolicy) Admit(id BlockID, size int64) {
	if el, ok := p.ghost[id]; ok {
		p.ghostBytes -= el.Value.(ghostEntry).size
		p.ghostList.Remove(el)
		delete(p.ghost, id)
		p.resident[id] = &twoQEntry{el: p.am.PushFront(id), size: size, protected: true}
		return
	}
	p.resident[id] = &twoQEntry{el: p.a1in.PushFront(id), size: size}
	p.a1inBytes += size
}

// Victim drains A1in while it holds at least Kin bytes, protecting Am
// from one-shot floods; otherwise the protected LRU tail goes.
func (p *twoQPolicy) Victim() (BlockID, bool) {
	if p.a1in.Len() > 0 && (p.a1inBytes >= p.kin || p.am.Len() == 0) {
		return p.a1in.Back().Value.(BlockID), true
	}
	if p.am.Len() > 0 {
		return p.am.Back().Value.(BlockID), true
	}
	if p.a1in.Len() > 0 {
		return p.a1in.Back().Value.(BlockID), true
	}
	return BlockID{}, false
}

// Remove ghosts probationary blocks (so a later re-reference proves
// reuse) and forgets protected ones.
func (p *twoQPolicy) Remove(id BlockID) {
	ent, ok := p.resident[id]
	if !ok {
		return
	}
	delete(p.resident, id)
	if ent.protected {
		p.am.Remove(ent.el)
		return
	}
	p.a1in.Remove(ent.el)
	p.a1inBytes -= ent.size
	p.ghost[id] = p.ghostList.PushFront(ghostEntry{id: id, size: ent.size})
	p.ghostBytes += ent.size
	for p.ghostBytes > p.ghostCap {
		back := p.ghostList.Back()
		ge := back.Value.(ghostEntry)
		p.ghostList.Remove(back)
		delete(p.ghost, ge.id)
		p.ghostBytes -= ge.size
	}
}

func (p *twoQPolicy) Hint(ScanHint)       {}
func (p *twoQPolicy) Pinned(BlockID) bool { return false }

// cursorPolicy keeps an LRU order modulated by scheduler hints: blocks
// of the pinned (upcoming) segments are never selected as victims, and
// demoted (just-scanned) blocks drop to the back of the order, making
// them the first to go. Without hints it degenerates to plain LRU, so
// schedulers that never emit ScanHints (fifo, mrshare) still behave
// sanely under it.
type cursorPolicy struct {
	entries map[BlockID]*list.Element
	order   *list.List // front = most recently used / admitted
	// pins holds the pinned block set per file; a hint replaces its
	// file's set wholesale.
	pins map[string]map[BlockID]struct{}
}

func newCursorPolicy() *cursorPolicy {
	return &cursorPolicy{
		entries: make(map[BlockID]*list.Element),
		order:   list.New(),
		pins:    make(map[string]map[BlockID]struct{}),
	}
}

func (p *cursorPolicy) Name() string { return PolicyCursor }

func (p *cursorPolicy) Touch(id BlockID) {
	if el, ok := p.entries[id]; ok {
		p.order.MoveToFront(el)
	}
}

func (p *cursorPolicy) Admit(id BlockID, size int64) {
	p.entries[id] = p.order.PushFront(id)
}

// Victim walks from the LRU end skipping pinned blocks. The walk is
// linear, but the pinned window is at most two segments, so in
// practice the first unpinned candidate sits at or near the back.
func (p *cursorPolicy) Victim() (BlockID, bool) {
	for el := p.order.Back(); el != nil; el = el.Prev() {
		id := el.Value.(BlockID)
		if !p.Pinned(id) {
			return id, true
		}
	}
	return BlockID{}, false
}

func (p *cursorPolicy) Remove(id BlockID) {
	if el, ok := p.entries[id]; ok {
		p.order.Remove(el)
		delete(p.entries, id)
	}
}

// Hint replaces the file's pin set with the hinted upcoming segments
// and demotes the just-scanned blocks to evict-first order.
func (p *cursorPolicy) Hint(h ScanHint) {
	pinned := make(map[BlockID]struct{})
	for _, seg := range h.Pin {
		for _, id := range seg {
			pinned[id] = struct{}{}
		}
	}
	p.pins[h.File] = pinned
	for _, id := range h.Demote {
		if _, still := pinned[id]; still {
			continue
		}
		if el, ok := p.entries[id]; ok {
			p.order.MoveToBack(el)
		}
	}
}

func (p *cursorPolicy) Pinned(id BlockID) bool {
	_, ok := p.pins[id.File][id]
	return ok
}

// cacheShard is the metadata half of one cache shard: residency, byte
// accounting and the eviction loop, shared verbatim between the real
// BlockCache (which additionally holds contents) and the simulator's
// MetaCache pricing twin — so the two cannot drift apart on *which*
// blocks are warm.
type cacheShard struct {
	policy EvictionPolicy
	sizes  map[BlockID]int64
	bytes  int64
}

func newCacheShard(policy EvictionPolicy) *cacheShard {
	return &cacheShard{policy: policy, sizes: make(map[BlockID]int64)}
}

// has reports residency without touching recency state.
func (s *cacheShard) has(id BlockID) bool {
	_, ok := s.sizes[id]
	return ok
}

// access records a read; it returns true (and updates recency) when the
// block is resident.
func (s *cacheShard) access(id BlockID) bool {
	if !s.has(id) {
		return false
	}
	s.policy.Touch(id)
	return true
}

// admit makes id resident and evicts victims until the shard fits
// budget. kept=false means the incoming block itself was discarded:
// either it exceeds the whole budget, or every other resident block is
// pinned — pinned residents are never evicted, and the budget is never
// exceeded, so the newcomer is the one to go.
func (s *cacheShard) admit(id BlockID, size, budget int64) (evicted []BlockID, kept bool) {
	if size > budget {
		return nil, false
	}
	if s.has(id) {
		// Another path cached it already (a faulted read retrying while
		// an earlier load completes); keep the existing entry.
		return nil, true
	}
	s.policy.Admit(id, size)
	s.sizes[id] = size
	s.bytes += size
	for s.bytes > budget {
		v, ok := s.policy.Victim()
		if !ok || v == id {
			s.remove(id)
			return evicted, false
		}
		s.remove(v)
		evicted = append(evicted, v)
	}
	return evicted, true
}

// remove drops id from residency (no-op when absent).
func (s *cacheShard) remove(id BlockID) {
	size, ok := s.sizes[id]
	if !ok {
		return
	}
	s.policy.Remove(id)
	delete(s.sizes, id)
	s.bytes -= size
}

// pinnedBytes sums the sizes of pin-protected resident blocks.
func (s *cacheShard) pinnedBytes() int64 {
	var total int64
	for id, size := range s.sizes {
		if s.policy.Pinned(id) {
			total += size
		}
	}
	return total
}
