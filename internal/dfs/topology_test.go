package dfs

import (
	"testing"
	"testing/quick"
)

func TestSetRacksValidation(t *testing.T) {
	s := MustStore(6, 1)
	if err := s.SetRacks(0); err == nil {
		t.Error("0 racks should fail")
	}
	if err := s.SetRacks(7); err == nil {
		t.Error("more racks than nodes should fail")
	}
	if err := s.SetRacks(3); err != nil {
		t.Fatal(err)
	}
	if s.Racks() != 3 {
		t.Errorf("Racks = %d", s.Racks())
	}
}

func TestRackAssignmentContiguous(t *testing.T) {
	s := MustStore(12, 1)
	if err := s.SetRacks(3); err != nil {
		t.Fatal(err)
	}
	// 12 nodes over 3 racks: 0-3, 4-7, 8-11.
	for n := 0; n < 12; n++ {
		want := n / 4
		if got := s.Rack(NodeID(n)); got != want {
			t.Errorf("Rack(%d) = %d, want %d", n, got, want)
		}
	}
	// No topology: everything rack 0.
	s2 := MustStore(4, 1)
	if s2.Rack(3) != 0 || s2.Racks() != 1 {
		t.Error("default topology should be a single rack")
	}
}

func TestRackAwarePlacement(t *testing.T) {
	s := MustStore(12, 3)
	if err := s.SetRacks(3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddMetaFile("f", 24, 64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		locs := s.Locations(BlockID{File: "f", Index: i})
		if len(locs) != 3 {
			t.Fatalf("block %d has %d replicas", i, len(locs))
		}
		if locs[0] != NodeID(i%12) {
			t.Errorf("block %d first replica on %d, want home %d", i, locs[0], i%12)
		}
		homeRack := s.Rack(locs[0])
		secondRack := s.Rack(locs[1])
		thirdRack := s.Rack(locs[2])
		if secondRack == homeRack {
			t.Errorf("block %d second replica on home rack", i)
		}
		if thirdRack != secondRack {
			t.Errorf("block %d third replica on rack %d, want %d (same as second)", i, thirdRack, secondRack)
		}
		// All distinct nodes.
		seen := map[NodeID]bool{}
		for _, n := range locs {
			if seen[n] {
				t.Errorf("block %d repeats node %d", i, n)
			}
			seen[n] = true
		}
	}
}

func TestSetRacksReplacesExistingFiles(t *testing.T) {
	s := MustStore(12, 3)
	if _, err := s.AddMetaFile("f", 6, 64); err != nil {
		t.Fatal(err)
	}
	before := s.Locations(BlockID{File: "f", Index: 0})
	if err := s.SetRacks(3); err != nil {
		t.Fatal(err)
	}
	after := s.Locations(BlockID{File: "f", Index: 0})
	if s.Rack(after[1]) == s.Rack(after[0]) {
		t.Errorf("re-placement not rack-aware: %v (racks %d,%d)", after, s.Rack(after[0]), s.Rack(after[1]))
	}
	_ = before
}

// Property: under any topology, every block keeps exactly `replicas`
// distinct replica holders and replica 2 is always off the home rack
// when more than one rack exists.
func TestRackPlacementProperty(t *testing.T) {
	prop := func(nodes8, racks8, reps8, blocks8 uint8) bool {
		nodes := int(nodes8%20) + 2
		racks := int(racks8%uint8(nodes)) + 1
		reps := int(reps8%3) + 1
		if reps > nodes {
			reps = nodes
		}
		blocks := int(blocks8%40) + 1

		s := MustStore(nodes, reps)
		if err := s.SetRacks(racks); err != nil {
			return false
		}
		if _, err := s.AddMetaFile("f", blocks, 64); err != nil {
			return false
		}
		for i := 0; i < blocks; i++ {
			locs := s.Locations(BlockID{File: "f", Index: i})
			if len(locs) != reps {
				return false
			}
			seen := map[NodeID]bool{}
			for _, n := range locs {
				if seen[n] || int(n) < 0 || int(n) >= nodes {
					return false
				}
				seen[n] = true
			}
			if reps >= 2 && racks >= 2 && s.Rack(locs[1]) == s.Rack(locs[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
