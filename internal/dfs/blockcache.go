// Block cache: a per-node, byte-budgeted LRU over block contents.
//
// The S^3 premise is that a segment scanned once serves every
// co-scheduled job, but closely spaced arrivals that just miss a batch
// — and rounds requeued after faults — still re-read the same blocks
// from disk. A node-local cache absorbs exactly those repeats: each
// node keeps the most recently served blocks up to a byte budget, and
// concurrent readers of a cold block coalesce into one disk read
// (single-flight), so a burst of mappers never stampedes the source.
//
// Fault interaction is deliberate: the ReadFault hook fires on cache
// misses only (a cached block never touches the disk path, so it cannot
// fail), and a block whose load fails is never cached — the error
// propagates to every coalesced waiter and the next read retries cold.
package dfs

import (
	"container/list"
	"fmt"
	"sync"
)

// CacheEventKind labels a cache observer callback.
type CacheEventKind int

const (
	// CacheHit fires when a read is served from the cache.
	CacheHit CacheEventKind = iota
	// CacheEvict fires when the LRU discards a block to fit the budget.
	CacheEvict
)

// CacheEvent describes one cache hit or eviction for observers (trace
// wiring, tests).
type CacheEvent struct {
	Kind  CacheEventKind
	Block BlockID
	Node  NodeID // node whose cache shard the event occurred on
	Bytes int64  // size of the block involved
}

// CacheStats is a snapshot of cumulative cache accounting.
type CacheStats struct {
	Hits      int64 // reads served from cache
	Misses    int64 // reads that went to the underlying source (incl. coalesced waiters)
	Evictions int64 // blocks discarded to fit the byte budget
	Bytes     int64 // bytes currently cached across all nodes
}

// HitRatio returns hits / (hits + misses), or 0 when no reads occurred.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cacheEntry is one cached block on one node's shard.
type cacheEntry struct {
	block BlockID
	data  []byte
}

// inflightLoad coalesces concurrent loads of the same cold block.
type inflightLoad struct {
	done chan struct{}
	data []byte
	err  error
}

// nodeCache is one node's shard: an LRU list (front = most recent)
// plus the in-flight loads for blocks currently being read from the
// source.
type nodeCache struct {
	entries  map[BlockID]*list.Element
	lru      *list.List
	bytes    int64
	inflight map[BlockID]*inflightLoad
}

// BlockCache is a per-node, byte-budgeted LRU block cache with
// single-flight loading. Each node gets an independent shard with the
// same byte budget, mirroring node-local page caches: a block cached on
// node 3 does not occupy budget on node 5. Reads not attributed to a
// node (Store.ReadBlock) share one pseudo-node shard.
//
// Cached reads return the stored slice without copying — the same
// aliasing contract as BlockSource — so callers must not mutate
// returned data.
type BlockCache struct {
	budget int64 // per-node byte budget

	mu        sync.Mutex
	nodes     map[NodeID]*nodeCache
	bytes     int64 // total cached bytes across shards
	hits      int64
	misses    int64
	evictions int64
	obs       func(CacheEvent) // fired outside mu; set before use
}

// NewBlockCache creates a cache giving every node shard the same byte
// budget.
func NewBlockCache(bytesPerNode int64) (*BlockCache, error) {
	if bytesPerNode <= 0 {
		return nil, fmt.Errorf("dfs: cache budget must be positive, got %d bytes", bytesPerNode)
	}
	return &BlockCache{
		budget: bytesPerNode,
		nodes:  make(map[NodeID]*nodeCache),
	}, nil
}

// Budget returns the per-node byte budget.
func (c *BlockCache) Budget() int64 { return c.budget }

// SetObserver installs a callback fired on every hit and eviction.
// Install before the cache is in use; the callback runs outside the
// cache lock and must be safe for concurrent use.
func (c *BlockCache) SetObserver(obs func(CacheEvent)) {
	c.mu.Lock()
	c.obs = obs
	c.mu.Unlock()
}

func (c *BlockCache) shard(node NodeID) *nodeCache {
	nc, ok := c.nodes[node]
	if !ok {
		nc = &nodeCache{
			entries:  make(map[BlockID]*list.Element),
			lru:      list.New(),
			inflight: make(map[BlockID]*inflightLoad),
		}
		c.nodes[node] = nc
	}
	return nc
}

// Read returns the block's contents from node's shard, calling load on
// a miss. Concurrent misses of the same (block, node) coalesce: one
// caller runs load, the rest wait for its result. Every call counts as
// exactly one hit or one miss (coalesced waiters are misses), so
// hits + misses always equals the number of Read calls. A failed load
// is never cached; the error reaches every coalesced waiter.
func (c *BlockCache) Read(id BlockID, node NodeID, load func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	nc := c.shard(node)
	if el, ok := nc.entries[id]; ok {
		nc.lru.MoveToFront(el)
		c.hits++
		ent := el.Value.(*cacheEntry)
		data, obs := ent.data, c.obs
		c.mu.Unlock()
		if obs != nil {
			obs(CacheEvent{Kind: CacheHit, Block: id, Node: node, Bytes: int64(len(data))})
		}
		return data, nil
	}
	c.misses++
	if fl, ok := nc.inflight[id]; ok {
		c.mu.Unlock()
		<-fl.done
		return fl.data, fl.err
	}
	fl := &inflightLoad{done: make(chan struct{})}
	nc.inflight[id] = fl
	c.mu.Unlock()

	fl.data, fl.err = load()

	c.mu.Lock()
	delete(nc.inflight, id)
	var evicted []CacheEvent
	if fl.err == nil {
		evicted = c.insertLocked(nc, node, id, fl.data)
	}
	obs := c.obs
	c.mu.Unlock()
	close(fl.done)
	if obs != nil {
		for _, ev := range evicted {
			obs(ev)
		}
	}
	return fl.data, fl.err
}

// insertLocked caches data on nc, evicting LRU entries until the shard
// fits its budget. Blocks larger than the whole budget are served but
// never cached. Returns the eviction events to fire once the lock is
// released.
func (c *BlockCache) insertLocked(nc *nodeCache, node NodeID, id BlockID, data []byte) []CacheEvent {
	n := int64(len(data))
	if n > c.budget {
		return nil
	}
	if _, dup := nc.entries[id]; dup {
		// Another path already cached it (possible when a faulted read
		// retries while an earlier load completes); keep the existing
		// entry.
		return nil
	}
	nc.entries[id] = nc.lru.PushFront(&cacheEntry{block: id, data: data})
	nc.bytes += n
	c.bytes += n
	var events []CacheEvent
	for nc.bytes > c.budget {
		back := nc.lru.Back()
		ent := back.Value.(*cacheEntry)
		nc.lru.Remove(back)
		delete(nc.entries, ent.block)
		sz := int64(len(ent.data))
		nc.bytes -= sz
		c.bytes -= sz
		c.evictions++
		events = append(events, CacheEvent{Kind: CacheEvict, Block: ent.block, Node: node, Bytes: sz})
	}
	return events
}

// Contains reports whether the block is currently cached on node's
// shard (without touching LRU order).
func (c *BlockCache) Contains(id BlockID, node NodeID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	nc, ok := c.nodes[node]
	if !ok {
		return false
	}
	_, ok = nc.entries[id]
	return ok
}

// CachedBytes returns how many bytes of the given blocks are cached
// anywhere in the cluster. Each block counts at most once even when
// replicated across shards — the JQM uses this to size the scan a
// candidate segment would actually save.
func (c *BlockCache) CachedBytes(blocks []BlockID) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, b := range blocks {
		for _, nc := range c.nodes {
			if el, ok := nc.entries[b]; ok {
				total += int64(len(el.Value.(*cacheEntry).data))
				break
			}
		}
	}
	return total
}

// Stats returns a snapshot of cumulative cache accounting.
func (c *BlockCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Bytes: c.bytes}
}

// ResetStats zeroes the hit/miss/eviction counters (between experiment
// runs). Cached contents are kept; use Purge to drop them.
func (c *BlockCache) ResetStats() {
	c.mu.Lock()
	c.hits, c.misses, c.evictions = 0, 0, 0
	c.mu.Unlock()
}

// Purge drops every cached block without counting evictions.
func (c *BlockCache) Purge() {
	c.mu.Lock()
	c.nodes = make(map[NodeID]*nodeCache)
	c.bytes = 0
	c.mu.Unlock()
}
