// Block cache: a per-node, byte-budgeted block-content cache with
// pluggable eviction policies and scheduler-driven prefetch.
//
// The S^3 premise is that a segment scanned once serves every
// co-scheduled job, but closely spaced arrivals that just miss a batch
// — and rounds requeued after faults — still re-read the same blocks
// from disk. A node-local cache absorbs exactly those repeats: each
// node keeps the most recently served blocks up to a byte budget, and
// concurrent readers of a cold block coalesce into one disk read
// (single-flight), so a burst of mappers never stampedes the source.
//
// Replacement is delegated to an EvictionPolicy (policy.go): plain LRU
// collapses to zero hits when the circular scan's cycle exceeds the
// budget, so scan-resistant policies (2q, cursor) can be selected per
// cache. The cursor policy additionally accepts ScanHints from the JQM
// and supports PrefetchAsync: reading the next segment ahead of the
// cursor during the reduce stage, coalesced with demand reads through
// the same in-flight table.
//
// Fault interaction is deliberate: the ReadFault hook fires on cache
// misses only (a cached block never touches the disk path, so it cannot
// fail), and a block whose load fails is never cached — a failed demand
// load propagates its error to every coalesced waiter and the next read
// retries cold; a failed prefetch is counted, dropped, and never seen
// by readers (a waiter coalesced onto it falls through to its own cold
// load).
package dfs

import (
	"fmt"
	"sync"
)

// CacheEventKind labels a cache observer callback.
type CacheEventKind int

const (
	// CacheHit fires when a read is served from the cache.
	CacheHit CacheEventKind = iota
	// CacheEvict fires when the policy discards a block to fit the budget.
	CacheEvict
	// CachePrefetch fires when a prefetched block lands in the cache.
	CachePrefetch
)

// CacheEvent describes one cache hit, eviction or prefetch completion
// for observers (trace wiring, tests).
type CacheEvent struct {
	Kind  CacheEventKind
	Block BlockID
	Node  NodeID // node whose cache shard the event occurred on
	Bytes int64  // size of the block involved
}

// CacheStats is a snapshot of cumulative cache accounting. Hits,
// Misses, Evictions, Prefetches and PrefetchFailed are monotonic
// counters (zeroed by ResetStats); Bytes and PinnedBytes are gauges of
// the current footprint.
type CacheStats struct {
	Hits           int64 // reads served from cache (incl. prefetched blocks)
	Misses         int64 // reads that went to the underlying source (incl. coalesced waiters)
	Evictions      int64 // blocks discarded to fit the byte budget
	Prefetches     int64 // prefetch loads issued
	PrefetchFailed int64 // prefetch loads that failed (block not cached)
	Bytes          int64 // bytes currently cached across all nodes
	PinnedBytes    int64 // bytes currently pin-protected across all nodes
}

// HitRatio returns hits / (hits + misses), or 0 when no reads occurred.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// inflightLoad coalesces concurrent loads of the same cold block.
// Demand loads and prefetch loads share the table, so a demand read
// arriving while the prefetcher is mid-flight waits for that one source
// read instead of issuing its own.
type inflightLoad struct {
	done     chan struct{}
	data     []byte
	err      error
	prefetch bool  // speculative load: errors are swallowed, waiters re-check
	size     int64 // declared size (prefetch only; counted by AdvisedBytes)
}

// nodeCache is one node's shard: the policy-managed residency metadata
// (shared with MetaCache via cacheShard), the cached contents, and the
// in-flight loads for blocks currently being read from the source.
type nodeCache struct {
	meta     *cacheShard
	data     map[BlockID][]byte
	inflight map[BlockID]*inflightLoad
}

// BlockCache is a per-node, byte-budgeted block cache with
// single-flight loading and a pluggable eviction policy. Each node gets
// an independent shard with the same byte budget, mirroring node-local
// page caches: a block cached on node 3 does not occupy budget on node
// 5. Reads not attributed to a node (Store.ReadBlock) share one
// pseudo-node shard.
//
// Cached reads return the stored slice without copying — the same
// aliasing contract as BlockSource — so callers must not mutate
// returned data.
type BlockCache struct {
	budget int64  // per-node byte budget
	policy string // eviction policy name (validated at construction)

	mu             sync.Mutex
	nodes          map[NodeID]*nodeCache
	lastHints      map[string]ScanHint // per file; replayed onto fresh shards
	bytes          int64               // total cached bytes across shards
	hits           int64
	misses         int64
	evictions      int64
	prefetches     int64
	prefetchFailed int64
	obs            func(CacheEvent) // fired outside mu; set before use
}

// NewBlockCache creates a cache giving every node shard the same byte
// budget, using the baseline LRU policy.
func NewBlockCache(bytesPerNode int64) (*BlockCache, error) {
	return NewBlockCachePolicy(bytesPerNode, PolicyLRU)
}

// NewBlockCachePolicy creates a cache giving every node shard the same
// byte budget and the named eviction policy (see Policies).
func NewBlockCachePolicy(bytesPerNode int64, policy string) (*BlockCache, error) {
	if bytesPerNode <= 0 {
		return nil, fmt.Errorf("dfs: cache budget must be positive, got %d bytes", bytesPerNode)
	}
	if _, err := NewPolicy(policy, bytesPerNode); err != nil {
		return nil, err
	}
	return &BlockCache{
		budget:    bytesPerNode,
		policy:    policy,
		nodes:     make(map[NodeID]*nodeCache),
		lastHints: make(map[string]ScanHint),
	}, nil
}

// Budget returns the per-node byte budget.
func (c *BlockCache) Budget() int64 { return c.budget }

// Policy returns the eviction policy name the cache was built with.
func (c *BlockCache) Policy() string { return c.policy }

// SetObserver installs a callback fired on every hit, eviction and
// prefetch completion. Install before the cache is in use; the callback
// runs outside the cache lock and must be safe for concurrent use.
func (c *BlockCache) SetObserver(obs func(CacheEvent)) {
	c.mu.Lock()
	c.obs = obs
	c.mu.Unlock()
}

func (c *BlockCache) shard(node NodeID) *nodeCache {
	nc, ok := c.nodes[node]
	if !ok {
		pol, err := NewPolicy(c.policy, c.budget)
		if err != nil {
			panic(err) // unreachable: name validated at construction
		}
		// Replay the newest hint per file so a shard created mid-pass
		// starts with the current pin window. Demotes only act on
		// resident blocks, so replay order across files is irrelevant.
		for _, h := range c.lastHints {
			pol.Hint(h)
		}
		nc = &nodeCache{
			meta:     newCacheShard(pol),
			data:     make(map[BlockID][]byte),
			inflight: make(map[BlockID]*inflightLoad),
		}
		c.nodes[node] = nc
	}
	return nc
}

// Read returns the block's contents from node's shard, calling load on
// a miss. Concurrent misses of the same (block, node) coalesce: one
// caller runs load, the rest wait for its result. Every call counts as
// exactly one hit or one miss (coalesced waiters on a demand load are
// misses), so hits + misses always equals the number of Read calls. A
// failed load is never cached; the error reaches every coalesced
// waiter of a demand load, while a reader that coalesced onto a failed
// prefetch retries with its own cold load.
func (c *BlockCache) Read(id BlockID, node NodeID, load func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	nc := c.shard(node)
	for {
		if data, ok := nc.data[id]; ok {
			nc.meta.access(id)
			c.hits++
			obs := c.obs
			c.mu.Unlock()
			if obs != nil {
				obs(CacheEvent{Kind: CacheHit, Block: id, Node: node, Bytes: int64(len(data))})
			}
			return data, nil
		}
		fl, ok := nc.inflight[id]
		if !ok {
			break
		}
		if !fl.prefetch {
			c.misses++
			c.mu.Unlock()
			<-fl.done
			return fl.data, fl.err
		}
		// Prefetch in flight: wait for that one source read, then
		// re-examine the shard. Success turns this read into a hit;
		// failure falls through to a cold demand load.
		c.mu.Unlock()
		<-fl.done
		c.mu.Lock()
	}
	c.misses++
	fl := &inflightLoad{done: make(chan struct{})}
	nc.inflight[id] = fl
	c.mu.Unlock()

	fl.data, fl.err = load()

	c.mu.Lock()
	delete(nc.inflight, id)
	var events []CacheEvent
	if fl.err == nil {
		events, _ = c.insertLocked(nc, node, id, fl.data)
	}
	obs := c.obs
	c.mu.Unlock()
	close(fl.done)
	if obs != nil {
		for _, ev := range events {
			obs(ev)
		}
	}
	return fl.data, fl.err
}

// PrefetchAsync starts a speculative background load of the block into
// node's shard, returning true when a load was issued. It declines —
// without side effects — when the block is already resident or in
// flight, when it exceeds the whole budget, or when the shard's pinned
// bytes plus this block would overflow the budget (prefetch must never
// force pinned data out). The load is registered in the in-flight
// table before returning, so demand reads arriving afterwards coalesce
// onto it instead of reading the source again. Errors are swallowed:
// the block simply is not cached and PrefetchFailed is incremented.
func (c *BlockCache) PrefetchAsync(id BlockID, node NodeID, size int64, load func() ([]byte, error)) bool {
	c.mu.Lock()
	nc := c.shard(node)
	if _, ok := nc.data[id]; ok {
		c.mu.Unlock()
		return false
	}
	if _, ok := nc.inflight[id]; ok {
		c.mu.Unlock()
		return false
	}
	if size > c.budget || nc.meta.pinnedBytes()+size > c.budget {
		c.mu.Unlock()
		return false
	}
	c.prefetches++
	fl := &inflightLoad{done: make(chan struct{}), prefetch: true, size: size}
	nc.inflight[id] = fl
	c.mu.Unlock()

	go func() {
		fl.data, fl.err = load()
		c.mu.Lock()
		delete(nc.inflight, id)
		var events []CacheEvent
		if fl.err != nil {
			c.prefetchFailed++
		} else if evicted, kept := c.insertLocked(nc, node, id, fl.data); kept {
			events = append(evicted, CacheEvent{Kind: CachePrefetch, Block: id, Node: node, Bytes: int64(len(fl.data))})
		} else {
			events = evicted
		}
		obs := c.obs
		c.mu.Unlock()
		close(fl.done)
		if obs != nil {
			for _, ev := range events {
				obs(ev)
			}
		}
	}()
	return true
}

// Hint forwards scheduler guidance to every shard's policy and
// remembers the newest hint per file for shards created later.
func (c *BlockCache) Hint(h ScanHint) {
	c.mu.Lock()
	c.lastHints[h.File] = h
	for _, nc := range c.nodes {
		nc.meta.policy.Hint(h)
	}
	c.mu.Unlock()
}

// insertLocked caches data on nc via the shard's policy, evicting
// victims until the shard fits its budget. Blocks larger than the whole
// budget — or squeezed out because every other resident block is
// pinned — are served but not kept. Returns the eviction events to
// fire once the lock is released and whether the block stayed cached.
func (c *BlockCache) insertLocked(nc *nodeCache, node NodeID, id BlockID, data []byte) ([]CacheEvent, bool) {
	before := nc.meta.bytes
	evicted, kept := nc.meta.admit(id, int64(len(data)), c.budget)
	var events []CacheEvent
	for _, v := range evicted {
		sz := int64(len(nc.data[v]))
		delete(nc.data, v)
		c.evictions++
		events = append(events, CacheEvent{Kind: CacheEvict, Block: v, Node: node, Bytes: sz})
	}
	if kept {
		nc.data[id] = data
	}
	c.bytes += nc.meta.bytes - before
	return events, kept
}

// Contains reports whether the block is currently cached on node's
// shard (without touching recency order).
func (c *BlockCache) Contains(id BlockID, node NodeID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	nc, ok := c.nodes[node]
	if !ok {
		return false
	}
	_, ok = nc.data[id]
	return ok
}

// CachedBytes returns how many bytes of the given blocks are cached
// anywhere in the cluster. Each block counts at most once even when
// replicated across shards — the JQM uses this to size the scan a
// candidate segment would actually save.
func (c *BlockCache) CachedBytes(blocks []BlockID) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, b := range blocks {
		for _, nc := range c.nodes {
			if sz, ok := nc.meta.sizes[b]; ok {
				total += sz
				break
			}
		}
	}
	return total
}

// AdvisedBytes is the strictly-stronger arbitration signal: cached
// bytes of the given blocks plus bytes already committed to in-flight
// prefetches of them. A segment whose prefetch is mid-flight is as good
// as warm by the time the round dispatches, so the JQM may prefer it
// even though CachedBytes still reads low.
func (c *BlockCache) AdvisedBytes(blocks []BlockID) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, b := range blocks {
		found := false
		for _, nc := range c.nodes {
			if sz, ok := nc.meta.sizes[b]; ok {
				total += sz
				found = true
				break
			}
		}
		if found {
			continue
		}
		for _, nc := range c.nodes {
			if fl, ok := nc.inflight[b]; ok && fl.prefetch {
				total += fl.size
				break
			}
		}
	}
	return total
}

// Stats returns a snapshot of cumulative cache accounting.
func (c *BlockCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var pinned int64
	for _, nc := range c.nodes {
		pinned += nc.meta.pinnedBytes()
	}
	return CacheStats{
		Hits:           c.hits,
		Misses:         c.misses,
		Evictions:      c.evictions,
		Prefetches:     c.prefetches,
		PrefetchFailed: c.prefetchFailed,
		Bytes:          c.bytes,
		PinnedBytes:    pinned,
	}
}

// ResetStats zeroes every cumulative counter (between experiment runs):
// hits, misses, evictions, prefetches and prefetch failures. Cached
// contents — and thus the Bytes/PinnedBytes gauges — are kept; use
// Purge to drop them.
func (c *BlockCache) ResetStats() {
	c.mu.Lock()
	c.hits, c.misses, c.evictions = 0, 0, 0
	c.prefetches, c.prefetchFailed = 0, 0
	c.mu.Unlock()
}

// Purge drops every cached block without counting evictions. Remembered
// scan hints survive, so rebuilt shards keep the current pin window.
func (c *BlockCache) Purge() {
	c.mu.Lock()
	c.nodes = make(map[NodeID]*nodeCache)
	c.bytes = 0
	c.mu.Unlock()
}
