// MetaCache: the metadata-only twin of BlockCache.
//
// The simulator must price cache hits without holding block contents,
// and differential tests must prove that pricing tracks the real cache
// block-for-block. Both needs are served by running the *same*
// policy/shard machinery (cacheShard, EvictionPolicy) over ids and
// sizes only: a MetaCache configured like a BlockCache makes identical
// hit/miss/evict decisions on the same access sequence by
// construction, because the decisions come from the same code.
//
// MetaCache is single-threaded by contract (the sim executor and tests
// drive it from one goroutine), so it has no lock and no in-flight
// table — a Prefetch lands instantly, modelling the engine's ideal case
// where the readahead completes during the overlapped reduce stage.
package dfs

import "fmt"

// MetaCache mirrors BlockCache's admission, eviction and prefetch
// decisions over block metadata alone. Not safe for concurrent use.
type MetaCache struct {
	budget int64
	policy string

	nodes          map[NodeID]*cacheShard
	lastHints      map[string]ScanHint
	bytes          int64
	hits           int64
	misses         int64
	evictions      int64
	prefetches     int64
	prefetchFailed int64
}

// NewMetaCache creates a metadata-only cache with the same per-node
// budget and policy semantics as NewBlockCachePolicy.
func NewMetaCache(bytesPerNode int64, policy string) (*MetaCache, error) {
	if bytesPerNode <= 0 {
		return nil, fmt.Errorf("dfs: cache budget must be positive, got %d bytes", bytesPerNode)
	}
	if _, err := NewPolicy(policy, bytesPerNode); err != nil {
		return nil, err
	}
	return &MetaCache{
		budget:    bytesPerNode,
		policy:    policy,
		nodes:     make(map[NodeID]*cacheShard),
		lastHints: make(map[string]ScanHint),
	}, nil
}

// Budget returns the per-node byte budget.
func (m *MetaCache) Budget() int64 { return m.budget }

// Policy returns the eviction policy name.
func (m *MetaCache) Policy() string { return m.policy }

func (m *MetaCache) shard(node NodeID) *cacheShard {
	s, ok := m.nodes[node]
	if !ok {
		pol, err := NewPolicy(m.policy, m.budget)
		if err != nil {
			panic(err) // unreachable: name validated at construction
		}
		for _, h := range m.lastHints {
			pol.Hint(h)
		}
		s = newCacheShard(pol)
		m.nodes[node] = s
	}
	return s
}

// Access records a read of the block on node's shard and reports
// whether it hit. On a miss the block is admitted with the given size,
// evicting victims exactly as BlockCache would.
func (m *MetaCache) Access(id BlockID, node NodeID, size int64) bool {
	s := m.shard(node)
	if s.access(id) {
		m.hits++
		return true
	}
	m.misses++
	before := s.bytes
	evicted, _ := s.admit(id, size, m.budget)
	m.evictions += int64(len(evicted))
	m.bytes += s.bytes - before
	return false
}

// Prefetch models PrefetchAsync: it admits the block speculatively
// under the same issue conditions (not resident, fits the budget,
// does not crowd out pinned bytes) and reports whether a prefetch was
// issued. There is no in-flight state — the block is warm immediately,
// the ideal the engine's readahead approaches when the load finishes
// within the overlapped reduce stage.
func (m *MetaCache) Prefetch(id BlockID, node NodeID, size int64) bool {
	s := m.shard(node)
	if s.has(id) {
		return false
	}
	if size > m.budget || s.pinnedBytes()+size > m.budget {
		return false
	}
	m.prefetches++
	before := s.bytes
	evicted, _ := s.admit(id, size, m.budget)
	m.evictions += int64(len(evicted))
	m.bytes += s.bytes - before
	return true
}

// Hint forwards scheduler guidance to every shard's policy, remembering
// it for shards created later (same semantics as BlockCache.Hint).
func (m *MetaCache) Hint(h ScanHint) {
	m.lastHints[h.File] = h
	for _, s := range m.nodes {
		s.policy.Hint(h)
	}
}

// Contains reports whether the block is resident on node's shard.
func (m *MetaCache) Contains(id BlockID, node NodeID) bool {
	s, ok := m.nodes[node]
	return ok && s.has(id)
}

// CachedBytes returns how many bytes of the given blocks are resident
// anywhere, each block counted at most once (BlockCache.CachedBytes
// semantics).
func (m *MetaCache) CachedBytes(blocks []BlockID) int64 {
	var total int64
	for _, b := range blocks {
		for _, s := range m.nodes {
			if sz, ok := s.sizes[b]; ok {
				total += sz
				break
			}
		}
	}
	return total
}

// Stats returns a snapshot of cumulative accounting, directly
// comparable with BlockCache.Stats.
func (m *MetaCache) Stats() CacheStats {
	var pinned int64
	for _, s := range m.nodes {
		pinned += s.pinnedBytes()
	}
	return CacheStats{
		Hits:           m.hits,
		Misses:         m.misses,
		Evictions:      m.evictions,
		Prefetches:     m.prefetches,
		PrefetchFailed: m.prefetchFailed,
		Bytes:          m.bytes,
		PinnedBytes:    pinned,
	}
}

// ResetStats zeroes every cumulative counter, keeping residency.
func (m *MetaCache) ResetStats() {
	m.hits, m.misses, m.evictions = 0, 0, 0
	m.prefetches, m.prefetchFailed = 0, 0
}
