package dfs_test

import (
	"fmt"

	"s3sched/internal/dfs"
)

// ExampleSegmentPlan_CircularOrder shows the round-robin data scan of
// §IV-B: a job admitted at segment 2 of a 5-segment file processes
// 2, 3, 4 and then wraps to 0, 1.
func ExampleSegmentPlan_CircularOrder() {
	store := dfs.MustStore(4, 1)
	f, _ := store.AddMetaFile("input", 20, 64<<20)
	plan, _ := dfs.PlanSegments(f, 4) // 5 segments of 4 blocks

	fmt.Println("segments:", plan.NumSegments())
	fmt.Println("order from 2:", plan.CircularOrder(2))
	fmt.Println("blocks of segment 2:", plan.Blocks(2))
	// Output:
	// segments: 5
	// order from 2: [2 3 4 0 1]
	// blocks of segment 2: [input#8 input#9 input#10 input#11]
}
