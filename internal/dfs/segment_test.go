package dfs

import (
	"testing"
	"testing/quick"
)

func mustPlan(t *testing.T, numBlocks, perSegment int) *SegmentPlan {
	t.Helper()
	s := MustStore(4, 1)
	f, err := s.AddMetaFile("f", numBlocks, 64)
	if err != nil {
		t.Fatalf("AddMetaFile: %v", err)
	}
	p, err := PlanSegments(f, perSegment)
	if err != nil {
		t.Fatalf("PlanSegments: %v", err)
	}
	return p
}

func TestPlanExactDivision(t *testing.T) {
	p := mustPlan(t, 12, 3)
	if p.NumSegments() != 4 {
		t.Fatalf("NumSegments = %d, want 4", p.NumSegments())
	}
	for seg := 0; seg < 4; seg++ {
		blocks := p.Blocks(seg)
		if len(blocks) != 3 {
			t.Fatalf("segment %d has %d blocks, want 3", seg, len(blocks))
		}
		for j, b := range blocks {
			if b.Index != seg*3+j {
				t.Fatalf("segment %d block %d = index %d, want %d", seg, j, b.Index, seg*3+j)
			}
		}
	}
}

func TestPlanRaggedTail(t *testing.T) {
	p := mustPlan(t, 10, 4)
	if p.NumSegments() != 3 {
		t.Fatalf("NumSegments = %d, want 3", p.NumSegments())
	}
	if got := len(p.Blocks(2)); got != 2 {
		t.Fatalf("last segment has %d blocks, want 2", got)
	}
}

func TestPlanSingleSegment(t *testing.T) {
	p := mustPlan(t, 3, 10)
	if p.NumSegments() != 1 {
		t.Fatalf("NumSegments = %d, want 1", p.NumSegments())
	}
	if got := len(p.Blocks(0)); got != 3 {
		t.Fatalf("segment 0 has %d blocks, want 3", got)
	}
}

func TestPlanRejectsBadInput(t *testing.T) {
	if _, err := PlanSegments(nil, 3); err == nil {
		t.Error("nil file should fail")
	}
	s := MustStore(2, 1)
	f, _ := s.AddMetaFile("f", 4, 64)
	if _, err := PlanSegments(f, 0); err == nil {
		t.Error("zero blocksPerSegment should fail")
	}
	if _, err := PlanSegments(f, -1); err == nil {
		t.Error("negative blocksPerSegment should fail")
	}
}

func TestSegmentOf(t *testing.T) {
	p := mustPlan(t, 10, 4)
	want := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for i, w := range want {
		if got := p.SegmentOf(i); got != w {
			t.Fatalf("SegmentOf(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestCircularOrder(t *testing.T) {
	p := mustPlan(t, 12, 3) // 4 segments
	got := p.CircularOrder(2)
	want := []int{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CircularOrder(2) = %v, want %v", got, want)
		}
	}
}

func TestNextWraps(t *testing.T) {
	p := mustPlan(t, 12, 3)
	if p.Next(3) != 0 {
		t.Fatalf("Next(3) = %d, want 0", p.Next(3))
	}
	if p.Next(1) != 2 {
		t.Fatalf("Next(1) = %d, want 2", p.Next(1))
	}
}

func TestDistance(t *testing.T) {
	p := mustPlan(t, 12, 3) // 4 segments
	cases := []struct{ from, to, want int }{
		{0, 0, 0}, {0, 3, 3}, {3, 0, 1}, {2, 1, 3}, {1, 2, 1},
	}
	for _, c := range cases {
		if got := p.Distance(c.from, c.to); got != c.want {
			t.Fatalf("Distance(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestSegmentBytes(t *testing.T) {
	s := MustStore(2, 1)
	blocks := mkBlocks(5, 64)
	blocks[4] = blocks[4][:16]
	f, err := s.AddFile("f", 64, blocks)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlanSegments(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.SegmentBytes(0); got != 128 {
		t.Fatalf("SegmentBytes(0) = %d, want 128", got)
	}
	if got := p.SegmentBytes(2); got != 16 {
		t.Fatalf("SegmentBytes(2) = %d, want 16", got)
	}
}

// Property: a segment plan partitions the block list — every block
// appears in exactly one segment, in order.
func TestPlanPartitionProperty(t *testing.T) {
	prop := func(nBlocks8, per8 uint8) bool {
		nBlocks := int(nBlocks8%200) + 1
		per := int(per8%50) + 1
		s := MustStore(4, 1)
		f, err := s.AddMetaFile("f", nBlocks, 64)
		if err != nil {
			return false
		}
		p, err := PlanSegments(f, per)
		if err != nil {
			return false
		}
		var all []BlockID
		for seg := 0; seg < p.NumSegments(); seg++ {
			blocks := p.Blocks(seg)
			if seg < p.NumSegments()-1 && len(blocks) != per {
				return false
			}
			all = append(all, blocks...)
		}
		if len(all) != nBlocks {
			return false
		}
		for i, b := range all {
			if b.Index != i || p.SegmentOf(i) > seg(len(all), per, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func seg(_, per, i int) int { return i / per }

// Property: CircularOrder visits every segment exactly once from any
// starting point, beginning at the start segment.
func TestCircularOrderProperty(t *testing.T) {
	prop := func(nBlocks8, per8, start8 uint8) bool {
		nBlocks := int(nBlocks8%200) + 1
		per := int(per8%50) + 1
		s := MustStore(4, 1)
		f, err := s.AddMetaFile("f", nBlocks, 64)
		if err != nil {
			return false
		}
		p, err := PlanSegments(f, per)
		if err != nil {
			return false
		}
		start := int(start8) % p.NumSegments()
		order := p.CircularOrder(start)
		if len(order) != p.NumSegments() || order[0] != start {
			return false
		}
		seen := make(map[int]bool, len(order))
		for i, sgt := range order {
			if seen[sgt] {
				return false
			}
			seen[sgt] = true
			if i > 0 && sgt != p.Next(order[i-1]) {
				return false
			}
		}
		return len(seen) == p.NumSegments()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Distance is consistent with walking the circular order.
func TestDistanceProperty(t *testing.T) {
	prop := func(k8, from8, to8 uint8) bool {
		k := int(k8%30) + 1
		s := MustStore(4, 1)
		f, err := s.AddMetaFile("f", k, 64)
		if err != nil {
			return false
		}
		p, err := PlanSegments(f, 1) // k segments of 1 block
		if err != nil {
			return false
		}
		from := int(from8) % k
		to := int(to8) % k
		d := p.Distance(from, to)
		cur := from
		for i := 0; i < d; i++ {
			cur = p.Next(cur)
		}
		return cur == to && d >= 0 && d < k
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSegmentPanicsOnBadIndex(t *testing.T) {
	p := mustPlan(t, 8, 4)
	for _, fn := range []func(){
		func() { p.Blocks(-1) },
		func() { p.Blocks(2) },
		func() { p.SegmentOf(8) },
		func() { p.CircularOrder(2) },
		func() { p.Next(-1) },
		func() { p.Distance(0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range segment index")
				}
			}()
			fn()
		}()
	}
}
