package comms

import "fmt"

// FrameKind tags an Envelope's payload.
type FrameKind int

const (
	// FrameRegister is a worker announcing itself to the master.
	FrameRegister FrameKind = iota
	// FrameHeartbeat is a worker's periodic liveness proof.
	FrameHeartbeat
	// FrameAck is the master's reply to either, carrying acceptance.
	FrameAck
)

var frameNames = map[FrameKind]string{
	FrameRegister:  "register",
	FrameHeartbeat: "heartbeat",
	FrameAck:       "ack",
}

// String returns the stable lowercase frame name.
func (k FrameKind) String() string {
	if n, ok := frameNames[k]; ok {
		return n
	}
	return fmt.Sprintf("frame(%d)", int(k))
}

// Capabilities describes what a worker brings to the cluster.
type Capabilities struct {
	// CacheBytes is the worker's block-cache budget (0 = caching off).
	CacheBytes int64
	// Factories lists the job factories the worker's registry can build.
	Factories []string
}

// RegisterFrame is a worker's join request: identity, where the master
// can dial its task RPC server, what blocks it holds, and what it can
// run.
type RegisterFrame struct {
	// ID is the worker's stable self-chosen identity. Re-registering
	// the same ID replaces the previous incarnation (restart), it does
	// not add a second worker.
	ID string
	// TaskAddr is the address the master dials back for task RPCs.
	TaskAddr string
	// Blocks is the worker's block inventory: file name → block count.
	Blocks map[string]int
	// Capabilities describes cache budget and runnable factories.
	Capabilities Capabilities
}

// HeartbeatFrame is a worker's periodic liveness proof plus its
// streamed task ledger.
type HeartbeatFrame struct {
	// Seq increments per heartbeat within one registration.
	Seq int64
	// Stats is the worker's cumulative task/scan ledger.
	Stats WireStats
}

// AckFrame is the master's reply to a register or heartbeat.
type AckFrame struct {
	OK bool
	// Msg explains a rejection (unknown corpus shape, dial-back
	// failure); empty on success.
	Msg string
}

// Envelope is the one wire struct: exactly the field matching Kind is
// set. A single concrete struct keeps gob simple (no interface
// registration) and lets Conn count frames uniformly.
type Envelope struct {
	Kind      FrameKind
	Register  *RegisterFrame
	Heartbeat *HeartbeatFrame
	Ack       *AckFrame
}
