package comms

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrameSize bounds one control frame. Control traffic is tiny
// (registrations and heartbeats); a frame this large means a corrupt
// length prefix or a non-protocol peer, and is rejected before any
// allocation.
const MaxFrameSize = 4 << 20

// Conn is a persistent control-plane connection carrying
// length-prefixed gob frames. Each frame is a self-contained gob
// stream (4-byte big-endian length, then the encoded Envelope), so a
// reader can resynchronize per frame and traffic is countable per
// peer. Send is safe for concurrent use; Recv must be called from one
// goroutine at a time.
type Conn struct {
	c net.Conn

	wmu sync.Mutex // serializes writes
	rmu sync.Mutex // serializes reads

	framesSent atomic.Int64
	framesRecv atomic.Int64
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
}

// NewConn wraps an established net.Conn.
func NewConn(c net.Conn) *Conn {
	if c == nil {
		panic("comms: NewConn on nil net.Conn")
	}
	return &Conn{c: c}
}

// Send encodes env as one length-prefixed frame and writes it.
func (c *Conn) Send(env Envelope) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		return fmt.Errorf("comms: encoding %s frame: %w", env.Kind, err)
	}
	if buf.Len() > MaxFrameSize {
		return fmt.Errorf("comms: %s frame of %d bytes exceeds limit %d", env.Kind, buf.Len(), MaxFrameSize)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.c.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.c.Write(buf.Bytes()); err != nil {
		return err
	}
	c.framesSent.Add(1)
	c.bytesSent.Add(int64(len(hdr) + buf.Len()))
	return nil
}

// Recv reads one frame. io.EOF means the peer closed cleanly between
// frames; a net.Error with Timeout() means the read deadline expired.
func (c *Conn) Recv() (Envelope, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.c, hdr[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameSize {
		return Envelope{}, fmt.Errorf("comms: invalid frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.c, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // EOF mid-frame is not a clean close
		}
		return Envelope{}, err
	}
	var env Envelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return Envelope{}, fmt.Errorf("comms: decoding frame: %w", err)
	}
	c.framesRecv.Add(1)
	c.bytesRecv.Add(int64(len(hdr)) + int64(n))
	return env, nil
}

// SetReadDeadline bounds the next Recv.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.c.SetReadDeadline(t) }

// RemoteAddr returns the peer's address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// Close tears the connection down; blocked Sends/Recvs fail.
func (c *Conn) Close() error { return c.c.Close() }

// Stats snapshots the connection's traffic counters.
func (c *Conn) Stats() ConnStats {
	return ConnStats{
		FramesSent: c.framesSent.Load(),
		FramesRecv: c.framesRecv.Load(),
		BytesSent:  c.bytesSent.Load(),
		BytesRecv:  c.bytesRecv.Load(),
	}
}
