package comms

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// pair returns two ends of a live TCP connection.
func pair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	accepted := <-ch
	if accepted.err != nil {
		t.Fatal(accepted.err)
	}
	a, b := NewConn(dialed), NewConn(accepted.c)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := pair(t)
	want := Envelope{Kind: FrameRegister, Register: &RegisterFrame{
		ID:       "w1",
		TaskAddr: "127.0.0.1:7001",
		Blocks:   map[string]int{"corpus": 24},
		Capabilities: Capabilities{
			CacheBytes: 1 << 20,
			Factories:  []string{"wordcount", "selection"},
		},
	}}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	hb := Envelope{Kind: FrameHeartbeat, Heartbeat: &HeartbeatFrame{Seq: 3, Stats: WireStats{MapTasks: 7, FailedReads: 1}}}
	if err := a.Send(hb); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != FrameRegister || got.Register == nil {
		t.Fatalf("got %+v, want register frame", got)
	}
	if got.Register.ID != "w1" || got.Register.Blocks["corpus"] != 24 || got.Register.Capabilities.CacheBytes != 1<<20 {
		t.Errorf("register frame corrupted: %+v", got.Register)
	}
	got2, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got2.Kind != FrameHeartbeat || got2.Heartbeat.Seq != 3 || got2.Heartbeat.Stats.MapTasks != 7 {
		t.Errorf("heartbeat frame corrupted: %+v", got2.Heartbeat)
	}
}

func TestConnStatsCountBothDirections(t *testing.T) {
	a, b := pair(t)
	if err := a.Send(Envelope{Kind: FrameAck, Ack: &AckFrame{OK: true}}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(Envelope{Kind: FrameAck, Ack: &AckFrame{OK: true}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(); err != nil {
		t.Fatal(err)
	}
	as, bs := a.Stats(), b.Stats()
	if as.FramesSent != 1 || as.FramesRecv != 1 || bs.FramesSent != 1 || bs.FramesRecv != 1 {
		t.Errorf("frame counts: a=%+v b=%+v", as, bs)
	}
	if as.BytesSent != bs.BytesRecv || as.BytesRecv != bs.BytesSent {
		t.Errorf("byte ledgers disagree: a=%+v b=%+v", as, bs)
	}
	if as.BytesSent <= 4 {
		t.Errorf("sent bytes = %d, want > header size", as.BytesSent)
	}
}

func TestRecvRejectsOversizedFrame(t *testing.T) {
	a, b := pair(t)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	// Write the bogus length header directly on the underlying conn.
	if _, err := a.c.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

func TestRecvCleanCloseIsEOF(t *testing.T) {
	a, b := pair(t)
	a.Close()
	if _, err := b.Recv(); err != io.EOF {
		t.Errorf("err = %v, want io.EOF on clean close", err)
	}
}

func TestRecvDeadline(t *testing.T) {
	_, b := pair(t)
	if err := b.SetReadDeadline(time.Now().Add(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err := b.Recv()
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Errorf("err = %v, want timeout net.Error", err)
	}
}

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	// Zero value falls back to defaults instead of busy-looping.
	var z Backoff
	if z.Delay(0) <= 0 {
		t.Error("zero-value backoff must not return non-positive delay")
	}
}

func TestDialBackoffWaitsForListener(t *testing.T) {
	// Reserve an address, close it, dial in the background, then bring
	// the listener up: the dialer must connect on a retry.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	stop := make(chan struct{})
	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := DialBackoff(addr, Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond}, 0, stop)
		ch <- res{c, err}
	}()
	time.Sleep(15 * time.Millisecond)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer ln2.Close()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("dial with backoff failed: %v", r.err)
		}
		r.c.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("dialer never connected after listener came up")
	}
}

func TestDialBackoffStops(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	if _, err := DialBackoff("127.0.0.1:1", DefaultBackoff, 0, stop); err == nil {
		t.Fatal("closed stop channel must abort the dial loop")
	}
	if _, err := DialBackoff("127.0.0.1:1", Backoff{Base: time.Millisecond, Max: time.Millisecond}, 2, nil); err == nil {
		t.Fatal("maxAttempts must bound the dial loop")
	}
}
