// Package comms is the cluster control-plane wire layer: persistent
// TCP connections carrying length-prefixed gob frames, a
// dial-with-exponential-backoff helper, and the membership vocabulary
// (states, events, per-worker info) shared by the master's membership
// table, the runtime engine that consumes its deltas, and the status
// server that publishes it.
//
// The control plane is deliberately separate from the task plane:
// workers dial the master here to register and heartbeat, while task
// RPCs keep flowing master→worker over net/rpc connections the master
// opens against each registered worker's advertised task address. A
// worker restart therefore needs no master-side configuration — the
// worker re-dials, re-registers, and the master re-opens its task
// client.
package comms

// MemberState is a worker's position in the membership lifecycle.
type MemberState int

const (
	// Joined means the worker registered and is heartbeating on time.
	Joined MemberState = iota
	// Suspect means the worker missed at least one heartbeat deadline
	// but has not yet been declared dead; it still receives tasks (a
	// transport failure will rotate them elsewhere).
	Suspect
	// Dead means the worker missed its final deadline or its control
	// connection broke; it receives no tasks until it re-registers.
	Dead
)

var stateNames = map[MemberState]string{
	Joined:  "joined",
	Suspect: "suspect",
	Dead:    "dead",
}

// String returns the stable lowercase state name.
func (s MemberState) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return "unknown"
}

// MemberEventKind classifies one membership delta.
type MemberEventKind int

const (
	// MemberRegistered records a never-before-seen worker joining.
	MemberRegistered MemberEventKind = iota
	// MemberRejoined records a previously known worker re-registering
	// after a restart or disconnect.
	MemberRejoined
	// MemberSuspect records a worker missing a heartbeat deadline.
	MemberSuspect
	// MemberRestored records a suspect worker heartbeating again
	// before being declared dead.
	MemberRestored
	// MemberLost records a worker being declared dead.
	MemberLost
)

var eventNames = map[MemberEventKind]string{
	MemberRegistered: "registered",
	MemberRejoined:   "rejoined",
	MemberSuspect:    "suspect",
	MemberRestored:   "restored",
	MemberLost:       "lost",
}

// String returns the stable lowercase event name.
func (k MemberEventKind) String() string {
	if n, ok := eventNames[k]; ok {
		return n
	}
	return "unknown"
}

// MemberEvent is one membership delta, drained in order by whoever
// watches the table (the runtime engine folds them into its trace and
// metrics).
type MemberEvent struct {
	// Worker is the worker's self-chosen identity.
	Worker string
	Kind   MemberEventKind
	// Misses is the worker's consecutive missed-heartbeat count at the
	// time of the event (meaningful for MemberSuspect/MemberLost).
	Misses int
	// Detail is a free-form human-readable annotation (the transport
	// error for losses, the advertised address for joins).
	Detail string
}

// WireStats is a worker's self-reported task/scan ledger, shipped in
// every heartbeat so the master sees per-worker progress without an
// extra stats poll.
type WireStats struct {
	BlockReads          int64
	BytesScanned        int64
	FailedReads         int64
	MapTasks            int64
	ReduceTasks         int64
	CacheHits           int64
	CacheMisses         int64
	CacheEvictions      int64
	CachePrefetches     int64
	CachePrefetchFailed int64
	CacheBytes          int64
	CachePinnedBytes    int64
}

// ConnStats counts one peer connection's traffic in both directions.
type ConnStats struct {
	FramesSent int64 `json:"framesSent"`
	FramesRecv int64 `json:"framesRecv"`
	BytesSent  int64 `json:"bytesSent"`
	BytesRecv  int64 `json:"bytesRecv"`
}

// WorkerInfo is one worker's row in the cluster view served at
// GET /cluster: identity, state, liveness timings, and both the
// control-plane traffic counters and the last heartbeat's task ledger.
type WorkerInfo struct {
	ID       string `json:"id"`
	TaskAddr string `json:"taskAddr"`
	State    string `json:"state"`
	// Static marks boot-time -workers members that never heartbeat.
	Static bool `json:"static,omitempty"`
	// SinceHeartbeat is seconds since the last heartbeat (or since
	// registration when none arrived yet); absent for static members.
	SinceHeartbeat float64 `json:"sinceHeartbeat,omitempty"`
	// HeartbeatMisses counts deadline misses over the worker's lifetime.
	HeartbeatMisses int64 `json:"heartbeatMisses"`
	// Reconnects counts re-registrations after the first.
	Reconnects int64 `json:"reconnects"`
	// Control is the master-side control connection's traffic ledger.
	Control ConnStats `json:"control"`
	// Tasks is the worker's last self-reported ledger.
	Tasks WireStats `json:"tasks"`
}
