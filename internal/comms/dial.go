package comms

import (
	"fmt"
	"net"
	"time"
)

// Backoff is a deterministic exponential backoff schedule. The zero
// value uses DefaultBackoff's parameters.
type Backoff struct {
	// Base is the delay after the first failure.
	Base time.Duration
	// Max caps the delay.
	Max time.Duration
}

// DefaultBackoff reconnects aggressively at first (a restarting master
// is back within seconds) and settles at a polite steady-state retry.
var DefaultBackoff = Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second}

// Delay returns the wait before retry attempt (0-based): Base·2^attempt
// capped at Max.
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		b = DefaultBackoff
	}
	max := b.Max
	if max <= 0 {
		max = DefaultBackoff.Max
	}
	d := b.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// DialBackoff dials addr until it succeeds, sleeping the backoff
// schedule between attempts. It returns early with an error when stop
// closes (clean shutdown) or after maxAttempts failures
// (maxAttempts <= 0 retries forever).
func DialBackoff(addr string, b Backoff, maxAttempts int, stop <-chan struct{}) (*Conn, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		select {
		case <-stop:
			return nil, fmt.Errorf("comms: dial %s aborted by shutdown", addr)
		default:
		}
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return NewConn(c), nil
		}
		lastErr = err
		if maxAttempts > 0 && attempt+1 >= maxAttempts {
			return nil, fmt.Errorf("comms: dialing %s: %d attempts failed: %w", addr, maxAttempts, lastErr)
		}
		select {
		case <-stop:
			return nil, fmt.Errorf("comms: dial %s aborted by shutdown", addr)
		case <-time.After(b.Delay(attempt)):
		}
	}
}
