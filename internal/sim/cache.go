package sim

import (
	"container/list"
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/metrics"
)

// Cache model: the simulator's analogue of dfs.BlockCache. The real
// engine caches block *contents* per node; the simulator only needs to
// know, at pricing time, whether a block would have been warm — so it
// keeps a metadata-only LRU over block ids with a cluster-aggregate
// byte budget (per-node budget × nodes), and prices a warm block's scan
// at a configurable fraction of its disk cost. Warm blocks are memory
// reads: they skip the remote and cross-rack penalties (nothing crosses
// the network) and are not counted as physical scans, mirroring how the
// engine's cache hits bypass dfs.Store's scan counters.

// simCacheEntry is one warm block in the pricing LRU.
type simCacheEntry struct {
	block dfs.BlockID
	bytes int64
}

// simCache is the executor's warm-set state. It has two modes:
//
//   - aggregate (EnableCache): one cluster-wide metadata LRU — the
//     original model, kept bit-for-bit so existing baselines reprice
//     identically.
//   - policy twin (EnableCachePolicy): a dfs.MetaCache sharded by each
//     block's primary holder, running the *same* policy code as the
//     real BlockCache, so per-policy sim pricing tracks the engine's
//     hit sequence block-for-block (the differential tests assert
//     equality of the stat counters).
type simCache struct {
	budget  int64   // cluster-aggregate byte budget (aggregate mode)
	frac    float64 // cached scan cost as a fraction of disk cost
	entries map[dfs.BlockID]*list.Element
	lru     *list.List // front = most recently scanned
	bytes   int64
	stats   metrics.CacheStats

	// meta switches the cache into policy-twin mode; the aggregate
	// fields above are unused when it is set.
	meta *dfs.MetaCache
	// prefetchSec accumulates the scan time of readahead issued since
	// the last priced round; the next round charges whatever part of it
	// the previous round's reduce stage could not hide.
	prefetchSec float64
	// prevRedSec is the last priced round's reduce duration — the
	// overlap window the readahead runs under.
	prevRedSec float64
}

// EnableCache turns on cache-aware pricing: totalBytes of warm-set
// budget cluster-wide, with cached reads costing frac of the disk scan
// (frac 0 = free memory reads, 1 = no benefit). Call before the run.
func (e *Executor) EnableCache(totalBytes int64, frac float64) error {
	if totalBytes <= 0 {
		return fmt.Errorf("sim: cache budget must be positive, got %d bytes", totalBytes)
	}
	if frac < 0 || frac > 1 {
		return fmt.Errorf("sim: cached scan fraction %v outside [0,1]", frac)
	}
	e.cache = &simCache{
		budget:  totalBytes,
		frac:    frac,
		entries: make(map[dfs.BlockID]*list.Element),
		lru:     list.New(),
	}
	return nil
}

// EnableCachePolicy turns on policy-twin cache pricing: every node
// gets bytesPerNode of warm-set budget under the named eviction policy
// (dfs.Policies), with warm reads costing frac of the disk scan. The
// warm set is a dfs.MetaCache — the same shard/policy machinery the
// real BlockCache runs — sharded by each block's *primary* holder,
// matching how the engine attributes reads on an unreplicated store.
// Wire the scheduler's hints to HandleScanHint to drive the cursor
// policy's pinning and modelled prefetch. Call before the run.
func (e *Executor) EnableCachePolicy(bytesPerNode int64, frac float64, policy string) error {
	if frac < 0 || frac > 1 {
		return fmt.Errorf("sim: cached scan fraction %v outside [0,1]", frac)
	}
	meta, err := dfs.NewMetaCache(bytesPerNode, policy)
	if err != nil {
		return err
	}
	e.cache = &simCache{frac: frac, meta: meta}
	return nil
}

// HandleScanHint feeds one scheduler hint to the policy-twin cache (a
// no-op in aggregate mode): pins and demotions reach the policy, and —
// for the cursor policy on an unreplicated store, mirroring
// dfs.Store.HandleScanHint — the hinted blocks are prefetched onto
// their primary holders. Each issued prefetch is charged as a physical
// scan now, and its scan time accumulates into a readahead bill the
// next priced round pays net of the previous round's reduce overlap.
// The signature matches core.ScanHinter.
func (e *Executor) HandleScanHint(h dfs.ScanHint) {
	c := e.cache
	if c == nil || c.meta == nil {
		return
	}
	c.meta.Hint(h)
	if c.meta.Policy() != dfs.PolicyCursor || e.store.Replicas() != 1 {
		return
	}
	// One node's readahead runs serially; different nodes prefetch in
	// parallel. The wall-clock bill is the slowest node's share.
	perNodeMB := make(map[dfs.NodeID]float64)
	for _, b := range h.Prefetch {
		f, err := e.store.File(b.File)
		if err != nil {
			continue
		}
		locs := e.store.Locations(b)
		if len(locs) == 0 {
			continue
		}
		size := f.BlockLen(b.Index)
		if !c.meta.Prefetch(b, locs[0], size) {
			continue
		}
		e.stats.BlocksScanned++
		perNodeMB[locs[0]] += float64(size) / (1 << 20)
	}
	var slowest float64
	for _, mb := range perNodeMB {
		if sec := mb / e.model.ScanMBps; sec > slowest {
			slowest = sec
		}
	}
	c.prefetchSec += slowest
}

// CacheStats implements driver.CacheStatsSource.
func (e *Executor) CacheStats() metrics.CacheStats {
	if e.cache == nil {
		return metrics.CacheStats{}
	}
	if e.cache.meta != nil {
		cs := e.cache.meta.Stats()
		return metrics.CacheStats{
			Hits:           cs.Hits,
			Misses:         cs.Misses,
			Evictions:      cs.Evictions,
			Prefetches:     cs.Prefetches,
			PrefetchFailed: cs.PrefetchFailed,
			Bytes:          cs.Bytes,
			PinnedBytes:    cs.PinnedBytes,
		}
	}
	s := e.cache.stats
	s.Bytes = e.cache.bytes
	return s
}

// CachedBytes reports how many bytes of the given blocks are currently
// warm (0 with caching off). Wire it into core.MultiFile.SetCacheAdvisor
// to make the JQM's file arbitration cache-aware.
func (e *Executor) CachedBytes(blocks []dfs.BlockID) int64 {
	if e.cache == nil {
		return 0
	}
	if e.cache.meta != nil {
		return e.cache.meta.CachedBytes(blocks)
	}
	var total int64
	for _, b := range blocks {
		if el, ok := e.cache.entries[b]; ok {
			total += el.Value.(*simCacheEntry).bytes
		}
	}
	return total
}

// cacheContains reports whether the block is warm without promoting it.
func (e *Executor) cacheContains(b dfs.BlockID) bool {
	if e.cache == nil {
		return false
	}
	if e.cache.meta != nil {
		return e.cache.meta.CachedBytes([]dfs.BlockID{b}) > 0
	}
	_, ok := e.cache.entries[b]
	return ok
}

// cacheAccess records one scan of block b of the given size and reports
// whether it was warm. A miss inserts the block and evicts LRU entries
// until the warm set fits the budget; blocks larger than the whole
// budget are never cached. Called only from price() on the driver's
// goroutine.
func (e *Executor) cacheAccess(b dfs.BlockID, size int64) bool {
	c := e.cache
	if c == nil {
		return false
	}
	if c.meta != nil {
		// Policy-twin mode: the access lands on the shard of the block's
		// primary holder, exactly where the engine's unreplicated demand
		// read is attributed.
		node := dfs.NodeID(-1)
		if locs := e.store.Locations(b); len(locs) > 0 {
			node = locs[0]
		}
		return c.meta.Access(b, node, size)
	}
	if el, ok := c.entries[b]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	if size > c.budget {
		return false
	}
	c.entries[b] = c.lru.PushFront(&simCacheEntry{block: b, bytes: size})
	c.bytes += size
	for c.bytes > c.budget {
		back := c.lru.Back()
		ent := back.Value.(*simCacheEntry)
		c.lru.Remove(back)
		delete(c.entries, ent.block)
		c.bytes -= ent.bytes
		c.stats.Evictions++
	}
	return false
}
