package sim

import (
	"container/list"
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/metrics"
)

// Cache model: the simulator's analogue of dfs.BlockCache. The real
// engine caches block *contents* per node; the simulator only needs to
// know, at pricing time, whether a block would have been warm — so it
// keeps a metadata-only LRU over block ids with a cluster-aggregate
// byte budget (per-node budget × nodes), and prices a warm block's scan
// at a configurable fraction of its disk cost. Warm blocks are memory
// reads: they skip the remote and cross-rack penalties (nothing crosses
// the network) and are not counted as physical scans, mirroring how the
// engine's cache hits bypass dfs.Store's scan counters.

// simCacheEntry is one warm block in the pricing LRU.
type simCacheEntry struct {
	block dfs.BlockID
	bytes int64
}

// simCache is the executor's warm-set state.
type simCache struct {
	budget  int64   // cluster-aggregate byte budget
	frac    float64 // cached scan cost as a fraction of disk cost
	entries map[dfs.BlockID]*list.Element
	lru     *list.List // front = most recently scanned
	bytes   int64
	stats   metrics.CacheStats
}

// EnableCache turns on cache-aware pricing: totalBytes of warm-set
// budget cluster-wide, with cached reads costing frac of the disk scan
// (frac 0 = free memory reads, 1 = no benefit). Call before the run.
func (e *Executor) EnableCache(totalBytes int64, frac float64) error {
	if totalBytes <= 0 {
		return fmt.Errorf("sim: cache budget must be positive, got %d bytes", totalBytes)
	}
	if frac < 0 || frac > 1 {
		return fmt.Errorf("sim: cached scan fraction %v outside [0,1]", frac)
	}
	e.cache = &simCache{
		budget:  totalBytes,
		frac:    frac,
		entries: make(map[dfs.BlockID]*list.Element),
		lru:     list.New(),
	}
	return nil
}

// CacheStats implements driver.CacheStatsSource.
func (e *Executor) CacheStats() metrics.CacheStats {
	if e.cache == nil {
		return metrics.CacheStats{}
	}
	s := e.cache.stats
	s.Bytes = e.cache.bytes
	return s
}

// CachedBytes reports how many bytes of the given blocks are currently
// warm (0 with caching off). Wire it into core.MultiFile.SetCacheAdvisor
// to make the JQM's file arbitration cache-aware.
func (e *Executor) CachedBytes(blocks []dfs.BlockID) int64 {
	if e.cache == nil {
		return 0
	}
	var total int64
	for _, b := range blocks {
		if el, ok := e.cache.entries[b]; ok {
			total += el.Value.(*simCacheEntry).bytes
		}
	}
	return total
}

// cacheContains reports whether the block is warm without promoting it.
func (e *Executor) cacheContains(b dfs.BlockID) bool {
	if e.cache == nil {
		return false
	}
	_, ok := e.cache.entries[b]
	return ok
}

// cacheAccess records one scan of block b of the given size and reports
// whether it was warm. A miss inserts the block and evicts LRU entries
// until the warm set fits the budget; blocks larger than the whole
// budget are never cached. Called only from price() on the driver's
// goroutine.
func (e *Executor) cacheAccess(b dfs.BlockID, size int64) bool {
	c := e.cache
	if c == nil {
		return false
	}
	if el, ok := c.entries[b]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	if size > c.budget {
		return false
	}
	c.entries[b] = c.lru.PushFront(&simCacheEntry{block: b, bytes: size})
	c.bytes += size
	for c.bytes > c.budget {
		back := c.lru.Back()
		ent := back.Value.(*simCacheEntry)
		c.lru.Remove(back)
		delete(c.entries, ent.block)
		c.bytes -= ent.bytes
		c.stats.Evictions++
	}
	return false
}
