package sim

import (
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// These tests reproduce the paper's analytic Examples 1–3 (§III)
// exactly: two identical I/O-bound jobs over the same file, each
// taking 100 s alone, with the second arriving 20 s (Examples 1/3) or
// 80 s (Example 2) after the first.
//
// Configuration: 10 segments of one 64 MB block on a 1-node cluster,
// pure scan cost, 10 s per segment.

type exampleEnv struct {
	store *dfs.Store
	plan  *dfs.SegmentPlan
	exec  *Executor
}

func exampleSetup(t *testing.T) exampleEnv {
	t.Helper()
	store := dfs.MustStore(1, 1)
	f, err := store.AddMetaFile("input", 10, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(1, 1)
	exec := NewExecutor(cluster, store, CostModel{ScanMBps: 6.4})
	return exampleEnv{store: store, plan: plan, exec: exec}
}

func twoJobs(offset vclock.Time) []driver.Arrival {
	return []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "input"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, File: "input"}, At: offset},
	}
}

func runScheme(t *testing.T, sched scheduler.Scheduler, exec driver.Executor, offset vclock.Time) (tet, art float64) {
	t.Helper()
	res, err := driver.Run(sched, exec, twoJobs(offset))
	if err != nil {
		t.Fatalf("%s: %v", sched.Name(), err)
	}
	tetD, err := res.Metrics.TET()
	if err != nil {
		t.Fatal(err)
	}
	artD, err := res.Metrics.ART()
	if err != nil {
		t.Fatal(err)
	}
	return tetD.Seconds(), artD.Seconds()
}

func TestExample1FIFO(t *testing.T) {
	env := exampleSetup(t)
	tet, art := runScheme(t, scheduler.NewFIFO(env.plan, nil), env.exec, 20)
	almost(t, "TET(FIFO)", tet, 200)
	almost(t, "ART(FIFO)", art, 140)
}

func TestExample1MRShare(t *testing.T) {
	env := exampleSetup(t)
	m, err := scheduler.NewMRShare(env.plan, []int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tet, art := runScheme(t, m, env.exec, 20)
	almost(t, "TET(MRShare)", tet, 120)
	almost(t, "ART(MRShare)", art, 110)
}

func TestExample2FIFO(t *testing.T) {
	env := exampleSetup(t)
	tet, art := runScheme(t, scheduler.NewFIFO(env.plan, nil), env.exec, 80)
	almost(t, "TET(FIFO)", tet, 200)
	almost(t, "ART(FIFO)", art, 110)
}

func TestExample2MRShare(t *testing.T) {
	env := exampleSetup(t)
	m, err := scheduler.NewMRShare(env.plan, []int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tet, art := runScheme(t, m, env.exec, 80)
	almost(t, "TET(MRShare)", tet, 180)
	almost(t, "ART(MRShare)", art, 140)
}

func TestExample3S3Offset20(t *testing.T) {
	env := exampleSetup(t)
	tet, art := runScheme(t, core.New(env.plan, nil), env.exec, 20)
	almost(t, "TET(S3)", tet, 120)
	almost(t, "ART(S3)", art, 100)
}

func TestExample3S3Offset80(t *testing.T) {
	env := exampleSetup(t)
	tet, art := runScheme(t, core.New(env.plan, nil), env.exec, 80)
	almost(t, "TET(S3)", tet, 180)
	almost(t, "ART(S3)", art, 100)
}

// The measured I/O savings behind the timings: for the 20 s offset, S^3
// scans 12 segment-blocks (10 + 2 re-scanned for job 2's missed
// prefix) where FIFO scans 20.
func TestExampleScanVolume(t *testing.T) {
	env := exampleSetup(t)
	if _, err := driver.Run(core.New(env.plan, nil), env.exec, twoJobs(20)); err != nil {
		t.Fatal(err)
	}
	s3Scans := env.exec.Stats().BlocksScanned

	env2 := exampleSetup(t)
	if _, err := driver.Run(scheduler.NewFIFO(env2.plan, nil), env2.exec, twoJobs(20)); err != nil {
		t.Fatal(err)
	}
	fifoScans := env2.exec.Stats().BlocksScanned

	if s3Scans != 12 {
		t.Errorf("S3 block scans = %d, want 12", s3Scans)
	}
	if fifoScans != 20 {
		t.Errorf("FIFO block scans = %d, want 20", fifoScans)
	}
}
