package sim_test

import (
	"testing"
	"time"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/metrics"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// Differential test: the simulator's metadata-only cache twin must
// track the real engine cache counter-for-counter when both sit behind
// the same S^3 scheduler. One scheduler instance drives both sides —
// its scan hints fan out to the real store (which pins and physically
// prefetches under the cursor policy) and to the sim executor (which
// models the same) — and every round's blocks are read on the real
// store at each block's primary holder, exactly where the sim
// attributes them. At the end of the run the two sides' hit, miss,
// eviction, prefetch, byte and pinned-byte counters must agree exactly,
// for every policy. The real side's prefetch loads land from
// goroutines, so the final comparison polls briefly to let in-flight
// readahead settle.
// settleTwin polls until the real store's cache counters match the sim
// twin's — i.e. until in-flight prefetch loads have landed — and
// returns the real side's last snapshot in the sim's stat type. On
// timeout it returns the (still diverged) snapshot for the caller to
// report.
func settleTwin(realStore *dfs.Store, exec *sim.Executor) metrics.CacheStats {
	deadline := time.Now().Add(5 * time.Second)
	for {
		cs := realStore.CacheStats()
		got := metrics.CacheStats{
			Hits:           cs.Hits,
			Misses:         cs.Misses,
			Evictions:      cs.Evictions,
			Prefetches:     cs.Prefetches,
			PrefetchFailed: cs.PrefetchFailed,
			Bytes:          cs.Bytes,
			PinnedBytes:    cs.PinnedBytes,
		}
		if got == exec.CacheStats() || time.Now().After(deadline) {
			return got
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSimEngineCacheTwinDifferential(t *testing.T) {
	const (
		nodes     = 6
		numBlocks = 24 // 4 segments × 6 blocks: one block per node per segment
		blockSize = int64(1 << 10)
		numJobs   = 3
		seed      = 31
		budget    = 3 * blockSize // per node: under a node's 4-block share
	)
	for _, policy := range dfs.Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			mk := func() (*dfs.Store, *dfs.File) {
				s := dfs.MustStore(nodes, 1)
				f, err := workload.AddTextFile(s, "input", numBlocks, blockSize, seed)
				if err != nil {
					t.Fatal(err)
				}
				return s, f
			}
			realStore, f := mk()
			if _, err := realStore.EnableCachePolicy(budget, policy); err != nil {
				t.Fatal(err)
			}
			simStore, _ := mk()
			exec := sim.NewExecutor(sim.NewCluster(nodes, 1), simStore, sim.CostModel{
				ScanMBps: 100, MapMBps: 100, TaskOverhead: 0.01,
			})
			if err := exec.EnableCachePolicy(budget, 0.1, policy); err != nil {
				t.Fatal(err)
			}

			plan, err := dfs.PlanSegments(f, nodes)
			if err != nil {
				t.Fatal(err)
			}
			sched := core.New(plan, nil)
			sched.SetScanHinter(func(h dfs.ScanHint) {
				realStore.HandleScanHint(h)
				exec.HandleScanHint(h)
			})

			// Manual driver loop with a fixed two-tick round duration, so
			// staggered arrivals join mid-scan and wrap around the file.
			metas := workload.WordCountMetas(numJobs, "input", 1, 1)
			arriveAt := []vclock.Time{0, 3, 6}
			next := 0
			now := vclock.Time(0)
			for rounds := 0; ; rounds++ {
				if rounds > 10*numJobs*numBlocks {
					t.Fatal("driver loop did not terminate")
				}
				for next < len(metas) && arriveAt[next] <= now {
					if err := sched.Submit(metas[next], now); err != nil {
						t.Fatal(err)
					}
					next++
				}
				r, ok := sched.NextRound(now)
				if !ok {
					if next < len(metas) {
						now = arriveAt[next]
						continue
					}
					if sched.PendingJobs() == 0 {
						break
					}
					t.Fatal("scheduler idle with pending jobs and no arrivals")
				}
				// Real side: one physical scan of the round's blocks, each
				// read at its primary holder — the engine's attribution on
				// an unreplicated store.
				for _, b := range r.Blocks {
					if _, err := realStore.ReadBlockAt(b, realStore.Locations(b)[0]); err != nil {
						t.Fatalf("read %v: %v", b, err)
					}
				}
				// Sim side: price the identical round through the twin.
				if _, err := exec.ExecRound(r); err != nil {
					t.Fatal(err)
				}
				now += 2
				sched.RoundDone(r, now)
				// RoundDone fired the cursor hint: the sim admitted any
				// prefetched blocks synchronously, the real store is
				// loading them on goroutines. Settle before the next
				// round's reads so both shards see the identical
				// operation order (hint, prefetch admit, then reads) —
				// otherwise a late-landing prefetch shifts the recency
				// order and a later eviction may pick a different victim.
				settleTwin(realStore, exec)
			}

			want := exec.CacheStats()
			got := settleTwin(realStore, exec)
			if got != want {
				t.Fatalf("cache stats diverged:\nengine %+v\nsim    %+v", got, want)
			}
			// The budget sits below each node's share of the file, so the
			// scan floods lru and 2q to (near) zero hits; only the
			// cursor policy, which pins the live segments, stays warm.
			if policy == dfs.PolicyCursor {
				if got.Hits == 0 {
					t.Fatal("cursor twin recorded no hits on the circular workload")
				}
				if got.Prefetches == 0 {
					t.Fatal("cursor twin issued no prefetches")
				}
			}
		})
	}
}
