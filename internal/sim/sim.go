// Package sim is the discrete-event cluster simulator used to
// reproduce the paper's 40-node timing experiments at full scale in
// milliseconds. It supplies a driver.Executor whose round durations
// come from a calibrated cost model instead of real computation.
//
// The model charges exactly the quantities the paper's discussion
// identifies as the levers: sequential scan cost per block (shared
// across a batch), per-job map computation, per-task launch and
// communication overhead (which penalizes small blocks, §V-F), a
// per-round sub-job initialization overhead (which penalizes S^3's
// extra rounds in dense patterns, §V-D), a sharing penalty for merged
// processing (Figure 3's combined-job overhead), and per-job reduce
// work.
package sim

import (
	"fmt"
	"math"

	"s3sched/internal/dfs"
	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// Node is one simulated worker machine.
type Node struct {
	ID int
	// Speed is the node's relative processing rate; 1.0 is nominal,
	// 0.5 takes twice as long per block.
	Speed float64
}

// Cluster is a set of simulated nodes, each contributing the same
// number of map slots (the paper configures one per node).
type Cluster struct {
	nodes        []*Node
	slotsPerNode int
}

// NewCluster builds n nominal-speed nodes with slotsPerNode map slots
// each.
func NewCluster(n, slotsPerNode int) *Cluster {
	if n <= 0 || slotsPerNode <= 0 {
		panic(fmt.Sprintf("sim: invalid cluster %d nodes x %d slots", n, slotsPerNode))
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{ID: i, Speed: 1.0}
	}
	return &Cluster{nodes: nodes, slotsPerNode: slotsPerNode}
}

// Nodes returns the cluster's nodes; callers may adjust Speed to model
// heterogeneity or degradation.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// SetSpeed adjusts one node's relative speed.
func (c *Cluster) SetSpeed(id int, speed float64) {
	if speed <= 0 {
		panic(fmt.Sprintf("sim: node %d speed must be positive, got %v", id, speed))
	}
	c.nodes[id].Speed = speed
}

// TotalSlots returns the cluster-wide concurrent map capacity.
func (c *Cluster) TotalSlots() int { return len(c.nodes) * c.slotsPerNode }

// CostModel holds the calibration knobs, all in seconds and megabytes.
// The JSON tags are the cost-model vocabulary of the versioned workload
// file format (internal/workload): a workload file can pin the exact
// calibration its timings were produced under, so a benchmark report is
// reproducible from the workload file alone.
type CostModel struct {
	// ScanMBps is the sequential scan rate of one map slot.
	ScanMBps float64 `json:"scanMBps"`
	// MapMBps is the map-function processing rate for a weight-1 job;
	// a job of weight w processes at MapMBps/w.
	MapMBps float64 `json:"mapMBps,omitempty"`
	// TaskOverhead is the fixed cost of launching one map task per
	// block (JVM/task setup, heartbeat latency). A merged batch runs
	// one physical task per block — all jobs share this cost — which
	// is why small blocks hurt every scheme (§V-F).
	TaskOverhead float64 `json:"taskOverhead,omitempty"`
	// DispatchPerJob is the per-job, per-block cost of dispatching a
	// block's records to one more mapper inside a merged task.
	DispatchPerJob float64 `json:"dispatchPerJob,omitempty"`
	// RoundOverhead is the fixed coordination cost of one wave of map
	// tasks, paid by every scheme on every round.
	RoundOverhead float64 `json:"roundOverhead,omitempty"`
	// JobSetup is the cost of submitting one MapReduce job to the
	// framework. FIFO pays it once per job, MRShare once per merged
	// batch, but S^3 pays it on *every* round, because each merged
	// sub-job is a freshly initialized job (§IV-D3); this is the
	// communication cost that lets MRShare beat S^3 in dense patterns
	// (§V-D).
	JobSetup float64 `json:"jobSetup,omitempty"`
	// SharePenalty is the extra fraction of a block's scan cost paid
	// per additional job sharing the scan (merged-record dispatch).
	SharePenalty float64 `json:"sharePenalty,omitempty"`
	// TagPenalty is the per-job per-block cost of MRShare's merged
	// meta-job pipeline: tagging each intermediate record with job ids
	// and demultiplexing them in reduce. Only Tagged rounds pay it.
	TagPenalty float64 `json:"tagPenalty,omitempty"`
	// ReducePerRound is the reduce-phase *work* one round's worth of a
	// weight-1 job's intermediate data costs. Every scheme processes
	// the same data, so every scheme pays it on every round.
	ReducePerRound float64 `json:"reducePerRound,omitempty"`
	// RemotePenalty is the extra fraction of a block's scan cost paid
	// when none of the block's replica holders participate in the
	// round — the data must cross the network (the locality issue
	// §II-C raises for HOD). Slot checking therefore has a real
	// trade-off: excluding a slow node strands its blocks.
	RemotePenalty float64 `json:"remotePenalty,omitempty"`
	// CrossRackPenalty is charged *in addition* to RemotePenalty when
	// no replica holder even shares a rack with a participating node,
	// so the fetch crosses the aggregation switch (the paper's cluster
	// is three racks, §V-A). Ignored unless the store has a topology.
	CrossRackPenalty float64 `json:"crossRackPenalty,omitempty"`
	// ReduceSetup is the fixed cost of running one reduce phase
	// (task setup, output commit) scaled by the job's reduce weight.
	// S^3 pays it per job on *every* round — each sub-job is a
	// complete MapReduce job with its own reduce (§IV-D3) — while
	// FIFO and MRShare pay it once, on the round that completes the
	// job. This asymmetry is why heavy reduce output (200x, §V-E)
	// erodes S^3's advantage.
	ReduceSetup float64 `json:"reduceSetup,omitempty"`
	// MaterializeSecPerMB is the cost of writing one megabyte of a
	// finished stage's reduce output back into the store as a derived
	// file (replication included) — the gap between a DAG stage
	// completing and its dependents becoming ready. Zero makes
	// materialization free, which keeps pre-DAG workload files priced
	// exactly as before.
	MaterializeSecPerMB float64 `json:"materializeSecPerMB,omitempty"`
}

// MaterializeDelay prices writing a derived file of the given size.
func (m CostModel) MaterializeDelay(bytes int64) vclock.Duration {
	if m.MaterializeSecPerMB <= 0 || bytes <= 0 {
		return 0
	}
	return vclock.Duration(float64(bytes) / (1 << 20) * m.MaterializeSecPerMB)
}

// Validate reports whether the model is usable.
func (m CostModel) Validate() error {
	if m.ScanMBps <= 0 {
		return fmt.Errorf("sim: ScanMBps must be positive, got %v", m.ScanMBps)
	}
	if m.MapMBps < 0 || m.TaskOverhead < 0 || m.DispatchPerJob < 0 || m.RoundOverhead < 0 ||
		m.JobSetup < 0 || m.SharePenalty < 0 || m.TagPenalty < 0 || m.RemotePenalty < 0 ||
		m.CrossRackPenalty < 0 || m.ReducePerRound < 0 || m.ReduceSetup < 0 ||
		m.MaterializeSecPerMB < 0 {
		return fmt.Errorf("sim: cost model has negative component: %+v", m)
	}
	return nil
}

// Stats accumulates the physical work the simulator charged.
type Stats struct {
	Rounds        int
	BlocksScanned int64 // physical block scans (cached reads excluded)
	MapTasks      int64 // per-job per-block tasks
	RemoteBlocks  int64 // blocks scanned with no replica holder in the round
	CachedBlocks  int64 // block reads served from the warm set
	SimTime       vclock.Duration
}

// Executor prices rounds with the cost model. It implements
// driver.Executor.
type Executor struct {
	cluster *Cluster
	store   *dfs.Store
	model   CostModel

	// slotCheck enables §IV-D1 periodic slot checking: nodes slower
	// than speedFloor × the fastest node are excluded from rounds,
	// trading extra waves for freedom from stragglers.
	slotCheck  bool
	speedFloor float64

	stats Stats

	// Failure-model state (see faults.go). fm is nil when no model is
	// installed; downNow holds the nodes crashed at the round being
	// priced, set only for the duration of an ExecRoundAt call.
	fm       *FaultModel
	roundSeq int
	fstats   metrics.FaultStats
	downNow  map[int]bool

	// cache is the warm-set pricing model (see cache.go); nil when
	// cache-aware pricing is off.
	cache *simCache
}

// NewExecutor builds a cost-model executor. It panics on an invalid
// model so experiment misconfiguration fails loudly at setup.
func NewExecutor(cluster *Cluster, store *dfs.Store, model CostModel) *Executor {
	if err := model.Validate(); err != nil {
		panic(err)
	}
	return &Executor{cluster: cluster, store: store, model: model}
}

// EnableSlotChecking turns on slow-node exclusion: nodes slower than
// floor × the fastest node's speed do not receive tasks.
func (e *Executor) EnableSlotChecking(floor float64) {
	if floor <= 0 || floor > 1 {
		panic(fmt.Sprintf("sim: slot-check floor %v outside (0,1]", floor))
	}
	e.slotCheck = true
	e.speedFloor = floor
}

// Stats returns the accumulated work counters.
func (e *Executor) Stats() Stats { return e.stats }

// ResetStats zeroes the work counters between runs, including the
// cache-model counters (the warm set itself is kept).
func (e *Executor) ResetStats() {
	e.stats = Stats{}
	if e.cache != nil {
		e.cache.stats = metrics.CacheStats{}
		if e.cache.meta != nil {
			e.cache.meta.ResetStats()
		}
	}
}

// ExecRound implements driver.Executor.
func (e *Executor) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	mapSec, redSec, err := e.price(r)
	if err != nil {
		return 0, err
	}
	return vclock.Duration(mapSec + redSec), nil
}

// ExecMapStage implements driver.StageExecutor (without importing
// driver: the stage is returned as the alias's underlying func type).
// The cost model prices both stages at map end — the reduce cost is a
// pure function of the round — so the returned stage only reports the
// precomputed duration. Stats are charged here, on the driver's
// goroutine; the closure touches no executor state and is safe to run
// concurrently with later rounds' pricing.
func (e *Executor) ExecMapStage(r scheduler.Round) (vclock.Duration, func() (vclock.Duration, error), error) {
	mapSec, redSec, err := e.price(r)
	if err != nil {
		return 0, nil, err
	}
	stage := func() (vclock.Duration, error) { return vclock.Duration(redSec), nil }
	return vclock.Duration(mapSec), stage, nil
}

// price computes the round's map-stage and reduce-stage costs in
// seconds and charges the work counters.
func (e *Executor) price(r scheduler.Round) (mapSec, redSec float64, err error) {
	if len(r.Jobs) == 0 || len(r.Blocks) == 0 {
		return 0, 0, fmt.Errorf("sim: empty round (jobs=%d blocks=%d)", len(r.Jobs), len(r.Blocks))
	}
	used := e.usableNodes()
	if len(r.Nodes) > 0 {
		// The scheduler restricted the round to specific nodes
		// (scheduler-side slot checking, §IV-D1).
		used = make([]*Node, 0, len(r.Nodes))
		for _, id := range r.Nodes {
			if int(id) < 0 || int(id) >= len(e.cluster.nodes) {
				return 0, 0, fmt.Errorf("sim: round names unknown node %d", id)
			}
			used = append(used, e.cluster.nodes[id])
		}
	}
	if len(e.downNow) > 0 {
		// Crashed nodes run no tasks this round (see faults.go).
		up := used[:0:0]
		for _, nd := range used {
			if !e.downNow[nd.ID] {
				up = append(up, nd)
			}
		}
		used = up
	}
	if len(used) == 0 {
		return 0, 0, fmt.Errorf("sim: no usable nodes")
	}

	usedSet := make(map[int]bool, len(used))
	for _, nd := range used {
		usedSet[nd.ID] = true
	}

	// All blocks of a segment share the nominal block size; price each
	// block individually anyway so ragged final segments are exact.
	n := float64(len(r.Jobs))
	var remote, cached int64
	var perBlockTotal float64 // summed nominal processing time of all blocks
	for _, b := range r.Blocks {
		f, ferr := e.store.File(b.File)
		if ferr != nil {
			return 0, 0, ferr
		}
		size := f.BlockLen(b.Index)
		mb := float64(size) / (1 << 20)
		scanMB := mb
		scanFactor := 1 + e.model.SharePenalty*(n-1)
		if e.cacheAccess(b, size) {
			// Warm block: a memory read at a fraction of the disk scan
			// cost, never remote (nothing crosses the network). The
			// share penalty still applies — merged-record dispatch
			// happens regardless of where the bytes came from.
			scanMB *= e.cache.frac
			cached++
		} else if e.model.RemotePenalty > 0 && !e.blockLocal(b, usedSet) {
			scanFactor += e.model.RemotePenalty
			remote++
			if e.model.CrossRackPenalty > 0 && !e.blockRackLocal(b, usedSet) {
				scanFactor += e.model.CrossRackPenalty
			}
		}
		t := scanMB/e.model.ScanMBps*scanFactor + e.model.TaskOverhead
		for _, j := range r.Jobs {
			if e.model.MapMBps > 0 {
				t += mb / e.model.MapMBps * j.Weight
			}
			t += e.model.DispatchPerJob
			if r.Tagged {
				t += e.model.TagPenalty
			}
		}
		perBlockTotal += t
	}
	perBlockAvg := perBlockTotal / float64(len(r.Blocks))

	// Spread blocks across the usable slots in waves; the slowest
	// participating node paces every wave (Hadoop's wave barrier).
	slots := len(used) * e.cluster.slotsPerNode
	waves := int(math.Ceil(float64(len(r.Blocks)) / float64(slots)))
	slowest := used[0].Speed
	for _, nd := range used {
		if nd.Speed < slowest {
			slowest = nd.Speed
		}
	}
	mapSec = e.model.RoundOverhead + e.model.JobSetup*float64(r.FreshJobs) + float64(waves)*perBlockAvg/slowest

	// Readahead bill (policy-twin mode): prefetch issued since the last
	// round runs under that round's reduce stage; only the part the
	// overlap window could not hide delays this round's start.
	if c := e.cache; c != nil && c.meta != nil {
		if spill := c.prefetchSec - c.prevRedSec; spill > 0 {
			mapSec += spill
		}
		c.prefetchSec = 0
	}

	// Reduce work: one round's worth of every job's intermediate data
	// is reduced, whenever its reduce phase eventually runs.
	for _, j := range r.Jobs {
		redSec += e.model.ReducePerRound * j.ReduceWeight
	}
	// Reduce-phase setup: per job per round for S^3 sub-jobs (each is
	// a full MapReduce job), once per job at completion otherwise.
	if r.SubJobReduce {
		for _, j := range r.Jobs {
			redSec += e.model.ReduceSetup * j.ReduceWeight
		}
	} else if len(r.Completes) > 0 {
		byID := make(map[scheduler.JobID]scheduler.JobMeta, len(r.Jobs))
		for _, j := range r.Jobs {
			byID[j.ID] = j
		}
		for _, id := range r.Completes {
			redSec += e.model.ReduceSetup * byID[id].ReduceWeight
		}
	}

	if c := e.cache; c != nil && c.meta != nil {
		c.prevRedSec = redSec
	}

	e.stats.Rounds++
	e.stats.BlocksScanned += int64(len(r.Blocks)) - cached
	e.stats.MapTasks += int64(len(r.Blocks) * len(r.Jobs))
	e.stats.RemoteBlocks += remote
	e.stats.CachedBlocks += cached
	e.stats.SimTime += vclock.Duration(mapSec + redSec)
	return mapSec, redSec, nil
}

// blockLocal reports whether any replica holder of b is in the round's
// node set.
func (e *Executor) blockLocal(b dfs.BlockID, usedSet map[int]bool) bool {
	for _, holder := range e.store.Locations(b) {
		if usedSet[int(holder)] {
			return true
		}
	}
	return false
}

// blockRackLocal reports whether any replica holder of b shares a rack
// with any participating node.
func (e *Executor) blockRackLocal(b dfs.BlockID, usedSet map[int]bool) bool {
	usedRacks := make(map[int]bool, e.store.Racks())
	for n := range usedSet {
		usedRacks[e.store.Rack(dfs.NodeID(n))] = true
	}
	for _, holder := range e.store.Locations(b) {
		if usedRacks[e.store.Rack(holder)] {
			return true
		}
	}
	return false
}

// usableNodes returns the nodes that receive tasks this round.
func (e *Executor) usableNodes() []*Node {
	if !e.slotCheck {
		return e.cluster.nodes
	}
	fastest := 0.0
	for _, nd := range e.cluster.nodes {
		if nd.Speed > fastest {
			fastest = nd.Speed
		}
	}
	var out []*Node
	for _, nd := range e.cluster.nodes {
		if nd.Speed >= e.speedFloor*fastest {
			out = append(out, nd)
		}
	}
	// If everything is "slow" the check is meaningless; use all nodes
	// rather than none.
	if len(out) == 0 {
		return e.cluster.nodes
	}
	return out
}
