package sim

import (
	"testing"
	"testing/quick"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
)

// Property: round duration is monotone non-decreasing in batch size,
// block count, and every job's weight — the cost model never rewards
// doing more work.
func TestCostMonotonicityProperty(t *testing.T) {
	model := CostModel{
		ScanMBps:       40,
		MapMBps:        2048,
		TaskOverhead:   2.5,
		DispatchPerJob: 0.05,
		RoundOverhead:  0.3,
		JobSetup:       0.2,
		SharePenalty:   0.01,
		ReducePerRound: 0.015,
		ReduceSetup:    0.02,
	}
	prop := func(n8, blocks8, w8 uint8) bool {
		n := int(n8%8) + 1
		blocks := int(blocks8%30) + 2
		w := float64(w8%10) + 1

		store := dfs.MustStore(blocks, 1)
		f, err := store.AddMetaFile("input", blocks, 64<<20)
		if err != nil {
			return false
		}
		plan, err := dfs.PlanSegments(f, blocks)
		if err != nil {
			return false
		}
		ex := NewExecutor(NewCluster(blocks, 1), store, model)

		mkRound := func(batch, nBlocks int, weight float64) scheduler.Round {
			jobs := make([]scheduler.JobMeta, batch)
			for i := range jobs {
				jobs[i] = scheduler.JobMeta{ID: scheduler.JobID(i + 1), File: "input", Weight: weight, ReduceWeight: 1}
			}
			return scheduler.Round{Segment: 0, Blocks: plan.Blocks(0)[:nBlocks], Jobs: jobs}
		}
		base, err := ex.ExecRound(mkRound(n, blocks-1, w))
		if err != nil {
			return false
		}
		moreJobs, err := ex.ExecRound(mkRound(n+1, blocks-1, w))
		if err != nil {
			return false
		}
		moreBlocks, err := ex.ExecRound(mkRound(n, blocks, w))
		if err != nil {
			return false
		}
		heavier, err := ex.ExecRound(mkRound(n, blocks-1, w+1))
		if err != nil {
			return false
		}
		// Epsilon absorbs float rounding in the per-block averaging
		// (e.g. a sum of 8 equal terms divided by 8 vs 7 by 7).
		const eps = 1e-9
		return moreJobs >= base-eps && moreBlocks >= base-eps && heavier >= base-eps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: splitting a round into stages conserves its cost — the
// map-stage duration plus the reduce-stage duration equals ExecRound's
// total, the reduce stage is non-negative, and the reduce closure is
// pure (same answer twice).
func TestStageSplitConservesCostProperty(t *testing.T) {
	model := CostModel{
		ScanMBps:       40,
		MapMBps:        2048,
		TaskOverhead:   2.5,
		DispatchPerJob: 0.05,
		RoundOverhead:  0.3,
		JobSetup:       0.2,
		SharePenalty:   0.01,
		ReducePerRound: 0.015,
		ReduceSetup:    0.02,
	}
	prop := func(n8, blocks8, w8 uint8, subJob bool) bool {
		n := int(n8%8) + 1
		blocks := int(blocks8%30) + 2
		w := float64(w8%10) + 1

		store := dfs.MustStore(blocks, 1)
		f, err := store.AddMetaFile("input", blocks, 64<<20)
		if err != nil {
			return false
		}
		plan, err := dfs.PlanSegments(f, blocks)
		if err != nil {
			return false
		}
		ex := NewExecutor(NewCluster(blocks, 1), store, model)

		jobs := make([]scheduler.JobMeta, n)
		for i := range jobs {
			jobs[i] = scheduler.JobMeta{ID: scheduler.JobID(i + 1), File: "input", Weight: w, ReduceWeight: 1}
		}
		r := scheduler.Round{Segment: 0, Blocks: plan.Blocks(0), Jobs: jobs, SubJobReduce: subJob}
		if !subJob {
			r.Completes = []scheduler.JobID{jobs[n-1].ID}
		}

		total, err := ex.ExecRound(r)
		if err != nil {
			return false
		}
		mapDur, stage, err := ex.ExecMapStage(r)
		if err != nil {
			return false
		}
		red1, err := stage()
		if err != nil {
			return false
		}
		red2, err := stage()
		if err != nil {
			return false
		}
		const eps = 1e-9
		sum := mapDur + red1
		return red1 >= 0 && red1 == red2 && mapDur >= 0 &&
			sum > total-eps && sum < total+eps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: slowing any node never makes a round faster.
func TestSlowdownNeverHelpsProperty(t *testing.T) {
	prop := func(node8, speed8 uint8) bool {
		const nodes = 6
		store := dfs.MustStore(nodes, 1)
		f, err := store.AddMetaFile("input", nodes, 64<<20)
		if err != nil {
			return false
		}
		plan, err := dfs.PlanSegments(f, nodes)
		if err != nil {
			return false
		}
		model := CostModel{ScanMBps: 40, TaskOverhead: 1}
		r := scheduler.Round{Segment: 0, Blocks: plan.Blocks(0),
			Jobs: []scheduler.JobMeta{{ID: 1, File: "input", Weight: 1, ReduceWeight: 1}}}

		healthy := NewExecutor(NewCluster(nodes, 1), store, model)
		base, err := healthy.ExecRound(r)
		if err != nil {
			return false
		}
		degradedCluster := NewCluster(nodes, 1)
		speed := 0.05 + float64(speed8%90)/100 // 0.05..0.94
		degradedCluster.SetSpeed(int(node8)%nodes, speed)
		degraded := NewExecutor(degradedCluster, store, model)
		d, err := degraded.ExecRound(r)
		if err != nil {
			return false
		}
		return d >= base
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
