package sim

import (
	"testing"

	"s3sched/internal/dfs"
	"s3sched/internal/vclock"
)

func TestEnableCacheValidation(t *testing.T) {
	cluster, store, _ := setup(t, 2, 4, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	for _, tc := range []struct {
		bytes int64
		frac  float64
	}{
		{0, 0.1},
		{-1, 0.1},
		{1 << 20, -0.5},
		{1 << 20, 1.5},
	} {
		if err := ex.EnableCache(tc.bytes, tc.frac); err == nil {
			t.Errorf("EnableCache(%d, %v) succeeded, want error", tc.bytes, tc.frac)
		}
	}
	if err := ex.EnableCache(1<<20, 0); err != nil {
		t.Errorf("EnableCache with frac 0: %v", err)
	}
	if err := ex.EnableCache(1<<20, 1); err != nil {
		t.Errorf("EnableCache with frac 1: %v", err)
	}
}

func TestCachedScanPricedAtFraction(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 6.4})
	if err := ex.EnableCache(8*64*mb, 0.1); err != nil {
		t.Fatal(err)
	}
	// Cold pass: full disk price (64 MB at 6.4 MB/s -> 10 s).
	d1, err := ex.ExecRound(round(plan, 0, meta(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "cold scan", d1.Seconds(), 10)
	// Warm pass over the same segment: frac of the disk price.
	d2, err := ex.ExecRound(round(plan, 0, meta(2, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "warm scan", d2.Seconds(), 1)

	st := ex.Stats()
	if st.BlocksScanned != 4 || st.CachedBlocks != 4 {
		t.Fatalf("stats = %+v, want 4 physical / 4 cached", st)
	}
	cs := ex.CacheStats()
	if cs.Hits != 4 || cs.Misses != 4 {
		t.Fatalf("cache stats = %+v, want 4 hits / 4 misses", cs)
	}
	if cs.Bytes != 4*64*mb {
		t.Fatalf("warm bytes = %d, want %d", cs.Bytes, 4*64*mb)
	}
}

func TestCacheEvictionUnderBudget(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 6.4})
	// Budget covers one segment (4 blocks) out of two: scanning segment
	// 1 evicts segment 0, so re-scanning segment 0 is cold again — the
	// sequential-flooding pathology the cache study documents.
	if err := ex.EnableCache(4*64*mb, 0.1); err != nil {
		t.Fatal(err)
	}
	for _, seg := range []int{0, 1, 0} {
		if _, err := ex.ExecRound(round(plan, seg, meta(1, 1, 1))); err != nil {
			t.Fatal(err)
		}
	}
	cs := ex.CacheStats()
	if cs.Hits != 0 {
		t.Fatalf("hits = %d, want 0 (working set exceeds budget)", cs.Hits)
	}
	if cs.Evictions != 8 {
		t.Fatalf("evictions = %d, want 8", cs.Evictions)
	}
}

func TestCachedBlocksSkipRemotePenalty(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	model := CostModel{ScanMBps: 6.4, RemotePenalty: 3}
	restricted := func(ex *Executor) (vclock.Duration, error) {
		// Run on nodes that hold no replica of segment 0's blocks so a
		// cold scan pays the remote penalty.
		r := round(plan, 0, meta(1, 1, 1))
		var nonHolders []dfs.NodeID
		holders := map[dfs.NodeID]bool{}
		for _, b := range r.Blocks {
			for _, n := range store.Locations(b) {
				holders[n] = true
			}
		}
		for i := 0; i < 4; i++ {
			if !holders[dfs.NodeID(i)] {
				nonHolders = append(nonHolders, dfs.NodeID(i))
			}
		}
		if len(nonHolders) == 0 {
			t.Skip("every node holds a replica; cannot form a remote round")
		}
		r.Nodes = nonHolders
		return ex.ExecRound(r)
	}

	ex := NewExecutor(cluster, store, model)
	if err := ex.EnableCache(8*64*mb, 0.5); err != nil {
		t.Fatal(err)
	}
	cold, err := restricted(ex)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := restricted(ex)
	if err != nil {
		t.Fatal(err)
	}
	// The warm pass reads from memory: no remote penalty, and the scan
	// costs frac of the disk price. Cold remote scan = base * (1+3);
	// warm = base * 0.5 with no penalty multiplier.
	if warm >= cold {
		t.Fatalf("warm remote round (%v) not cheaper than cold (%v)", warm, cold)
	}
	ratio := warm.Seconds() / cold.Seconds()
	almost(t, "warm/cold ratio", ratio, 0.5/4)
}

func TestCachedBlocksSkipTransientFaults(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	if err := ex.EnableCache(8*64*mb, 0.1); err != nil {
		t.Fatal(err)
	}
	// Near-certain transient block faults, one attempt: a cold round is
	// lost (deterministic for this seed/sequence).
	hostile := FaultModel{Seed: 1, BlockFailRate: 0.999, MaxAttempts: 1, RetrySec: 1}
	if err := ex.SetFaultModel(hostile); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.ExecRoundAt(round(plan, 0, meta(1, 1, 1)), 0); err == nil {
		t.Fatal("cold round under near-certain fault rate succeeded")
	}
	// Warm the segment with faults off, then go hostile again: warm
	// blocks are memory reads and must not roll transient faults.
	if err := ex.SetFaultModel(FaultModel{Seed: 1, MaxAttempts: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.ExecRoundAt(round(plan, 0, meta(2, 1, 1)), 1); err != nil {
		t.Fatal(err)
	}
	if err := ex.SetFaultModel(hostile); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.ExecRoundAt(round(plan, 0, meta(3, 1, 1)), 2); err != nil {
		t.Fatalf("warm round rolled a transient fault: %v", err)
	}
}

func TestCacheResetStats(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	if err := ex.EnableCache(8*64*mb, 0.1); err != nil {
		t.Fatal(err)
	}
	for _, seg := range []int{0, 0} {
		if _, err := ex.ExecRound(round(plan, seg, meta(1, 1, 1))); err != nil {
			t.Fatal(err)
		}
	}
	if cs := ex.CacheStats(); cs.Hits == 0 || cs.Misses == 0 {
		t.Fatalf("setup did not exercise the cache: %+v", cs)
	}
	ex.ResetStats()
	cs := ex.CacheStats()
	if cs.Hits != 0 || cs.Misses != 0 || cs.Evictions != 0 {
		t.Fatalf("after ResetStats, cache stats = %+v", cs)
	}
	// Warm set survives: the next pass over segment 0 is all hits.
	if _, err := ex.ExecRound(round(plan, 0, meta(2, 1, 1))); err != nil {
		t.Fatal(err)
	}
	if cs := ex.CacheStats(); cs.Hits != 4 || cs.Misses != 0 {
		t.Fatalf("post-reset pass = %+v, want 4 hits / 0 misses", cs)
	}
}

func TestCachedBytesAdvisor(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	if got := ex.CachedBytes(plan.Blocks(0)); got != 0 {
		t.Fatalf("CachedBytes with caching off = %d, want 0", got)
	}
	if err := ex.EnableCache(8*64*mb, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.ExecRound(round(plan, 0, meta(1, 1, 1))); err != nil {
		t.Fatal(err)
	}
	if got := ex.CachedBytes(plan.Blocks(0)); got != 4*64*mb {
		t.Fatalf("CachedBytes(seg 0) = %d, want %d", got, 4*64*mb)
	}
	if got := ex.CachedBytes(plan.Blocks(1)); got != 0 {
		t.Fatalf("CachedBytes(seg 1) = %d, want 0", got)
	}
}
