package sim

import (
	"math"
	"testing"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
)

const mb = 1 << 20

func setup(t *testing.T, nodes, blocks int, blockSize int64) (*Cluster, *dfs.Store, *dfs.SegmentPlan) {
	t.Helper()
	store := dfs.MustStore(nodes, 1)
	f, err := store.AddMetaFile("input", blocks, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return NewCluster(nodes, 1), store, plan
}

func meta(id int, w, rw float64) scheduler.JobMeta {
	return scheduler.JobMeta{ID: scheduler.JobID(id), File: "input", Weight: w, ReduceWeight: rw}
}

func round(plan *dfs.SegmentPlan, seg int, jobs ...scheduler.JobMeta) scheduler.Round {
	return scheduler.Round{Segment: seg, Blocks: plan.Blocks(seg), Jobs: jobs}
}

func almost(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestScanOnlyRoundDuration(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb) // 2 segments of 4
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 6.4})
	d, err := ex.ExecRound(round(plan, 0, meta(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	// 64 MB at 6.4 MB/s, one block per slot, one wave -> 10 s.
	almost(t, "duration", d.Seconds(), 10)
}

func TestSharedScanCostsOneScan(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 6.4})
	d1, err := ex.ExecRound(round(plan, 0, meta(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	d3, err := ex.ExecRound(round(plan, 0, meta(1, 1, 1), meta(2, 1, 1), meta(3, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	// Pure-scan model: sharing is free.
	almost(t, "shared duration", d3.Seconds(), d1.Seconds())
}

func TestMapCostScalesWithBatchAndWeight(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64, MapMBps: 128})
	d1, _ := ex.ExecRound(round(plan, 0, meta(1, 1, 1)))
	almost(t, "one job", d1.Seconds(), 1+0.5)
	d2, _ := ex.ExecRound(round(plan, 0, meta(1, 1, 1), meta(2, 1, 1)))
	almost(t, "two jobs", d2.Seconds(), 1+2*0.5)
	dHeavy, _ := ex.ExecRound(round(plan, 0, meta(1, 3, 1)))
	almost(t, "heavy job", dHeavy.Seconds(), 1+3*0.5)
}

func TestOverheadsAndSharePenalty(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{
		ScanMBps:       64,
		TaskOverhead:   0.4,
		DispatchPerJob: 0.25,
		RoundOverhead:  2,
		SharePenalty:   0.1,
		ReducePerRound: 3,
	})
	// n=2 jobs: scan 1s*(1+0.1) + task 0.4 (shared) + 2 dispatches*0.25
	// + round 2 + reduce 2*3.
	d, err := ex.ExecRound(round(plan, 0, meta(1, 1, 1), meta(2, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "duration", d.Seconds(), 1.1+0.4+0.5+2+6)
}

func TestTaskOverheadSharedAcrossBatch(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64, TaskOverhead: 2})
	d1, _ := ex.ExecRound(round(plan, 0, meta(1, 1, 1)))
	d5, _ := ex.ExecRound(round(plan, 0, meta(1, 1, 1), meta(2, 1, 1), meta(3, 1, 1), meta(4, 1, 1), meta(5, 1, 1)))
	// A merged batch runs one physical task per block: the task
	// overhead does not grow with batch size.
	almost(t, "shared task overhead", d5.Seconds(), d1.Seconds())
}

func TestJobSetupChargedOnFreshJobs(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64, JobSetup: 5})
	r := round(plan, 0, meta(1, 1, 1))
	r.FreshJobs = 1
	dFresh, err := ex.ExecRound(r)
	if err != nil {
		t.Fatal(err)
	}
	r.FreshJobs = 0
	dCont, err := ex.ExecRound(r)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "setup delta", dFresh.Seconds()-dCont.Seconds(), 5)
}

func TestReduceWeightScalesReduce(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64, ReducePerRound: 1})
	d, _ := ex.ExecRound(round(plan, 0, meta(1, 1, 5)))
	almost(t, "duration", d.Seconds(), 1+5)
}

func TestWavesWhenBlocksExceedSlots(t *testing.T) {
	// 2 nodes, segment of 5 blocks -> 3 waves.
	store := dfs.MustStore(2, 1)
	f, err := store.AddMetaFile("input", 5, 64*mb)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(2, 1)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	d, err := ex.ExecRound(round(plan, 0, meta(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "duration", d.Seconds(), 3)
}

func TestStragglerPacesRound(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	cluster.SetSpeed(2, 0.25)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	d, _ := ex.ExecRound(round(plan, 0, meta(1, 1, 1)))
	almost(t, "straggler round", d.Seconds(), 4)
}

func TestSlotCheckingExcludesStraggler(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	cluster.SetSpeed(2, 0.25)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	ex.EnableSlotChecking(0.5)
	// 3 usable nodes for 4 blocks -> 2 waves at nominal speed: 2 s,
	// beating the 4 s the straggler would impose.
	d, _ := ex.ExecRound(round(plan, 0, meta(1, 1, 1)))
	almost(t, "slot-checked round", d.Seconds(), 2)
}

func TestSlotCheckingKeepsAllWhenAllSlow(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	for i := 0; i < 4; i++ {
		cluster.SetSpeed(i, 0.5)
	}
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	ex.EnableSlotChecking(0.9)
	d, err := ex.ExecRound(round(plan, 0, meta(1, 1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	// All nodes equally slow: uniform 0.5 speed, 1 wave -> 2 s.
	almost(t, "uniform slow round", d.Seconds(), 2)
}

func TestStatsAccumulate(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	if _, err := ex.ExecRound(round(plan, 0, meta(1, 1, 1), meta(2, 1, 1))); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.ExecRound(round(plan, 1, meta(1, 1, 1))); err != nil {
		t.Fatal(err)
	}
	st := ex.Stats()
	if st.Rounds != 2 || st.BlocksScanned != 8 || st.MapTasks != 12 {
		t.Errorf("stats = %+v", st)
	}
	if st.SimTime <= 0 {
		t.Error("SimTime should accumulate")
	}
	ex.ResetStats()
	if ex.Stats().Rounds != 0 {
		t.Error("ResetStats failed")
	}
}

func TestExecRoundErrors(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	if _, err := ex.ExecRound(scheduler.Round{}); err == nil {
		t.Error("empty round should fail")
	}
	bad := round(plan, 0, meta(1, 1, 1))
	bad.Blocks = []dfs.BlockID{{File: "ghost", Index: 0}}
	if _, err := ex.ExecRound(bad); err == nil {
		t.Error("unknown file should fail")
	}
}

func TestModelValidation(t *testing.T) {
	if err := (CostModel{}).Validate(); err == nil {
		t.Error("zero ScanMBps should fail")
	}
	if err := (CostModel{ScanMBps: 1, TaskOverhead: -1}).Validate(); err == nil {
		t.Error("negative overhead should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewExecutor with invalid model should panic")
		}
	}()
	NewExecutor(NewCluster(1, 1), dfs.MustStore(1, 1), CostModel{})
}

func TestClusterValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCluster(0, 1) },
		func() { NewCluster(1, 0) },
		func() { NewCluster(2, 1).SetSpeed(0, 0) },
		func() {
			c := NewCluster(2, 1)
			ex := NewExecutor(c, dfs.MustStore(2, 1), CostModel{ScanMBps: 1})
			ex.EnableSlotChecking(0)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	if NewCluster(3, 2).TotalSlots() != 6 {
		t.Error("TotalSlots wrong")
	}
}

func TestRemotePenaltyChargedWhenHoldersExcluded(t *testing.T) {
	// 4 nodes, replication 1, blocks placed round-robin: block i lives
	// on node i%4. A round restricted to nodes {0,1,2} reads node 3's
	// block remotely.
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64, RemotePenalty: 0.5})

	rLocal := round(plan, 0, meta(1, 1, 1))
	dAll, err := ex.ExecRound(rLocal)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stats().RemoteBlocks != 0 {
		t.Fatalf("remote blocks = %d with all nodes used", ex.Stats().RemoteBlocks)
	}

	rRestricted := round(plan, 0, meta(1, 1, 1))
	rRestricted.Nodes = []dfs.NodeID{0, 1, 2}
	dRemote, err := ex.ExecRound(rRestricted)
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Stats().RemoteBlocks; got != 1 {
		t.Fatalf("remote blocks = %d, want 1 (node 3's block stranded)", got)
	}
	// 4 blocks on 3 slots: 2 waves; one block pays +50% scan.
	// perBlockAvg = (3*1 + 1.5)/4 = 1.125; 2 waves -> 2.25s.
	almost(t, "restricted round", dRemote.Seconds(), 2.25)
	if dRemote <= dAll {
		t.Fatal("restricted round should cost more than full-locality round")
	}
}

func TestRemotePenaltyZeroByDefault(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	r := round(plan, 0, meta(1, 1, 1))
	r.Nodes = []dfs.NodeID{0, 1, 2}
	if _, err := ex.ExecRound(r); err != nil {
		t.Fatal(err)
	}
	// Penalty disabled: nothing counted as remote.
	if ex.Stats().RemoteBlocks != 0 {
		t.Fatalf("remote blocks = %d, want 0 when penalty disabled", ex.Stats().RemoteBlocks)
	}
}

func TestRoundNodeRestriction(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	cluster.SetSpeed(3, 0.1)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	// Scheduler-side exclusion of the straggler: 4 blocks on 3 nodes,
	// 2 waves at nominal speed.
	r := round(plan, 0, meta(1, 1, 1))
	r.Nodes = []dfs.NodeID{0, 1, 2}
	d, err := ex.ExecRound(r)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "restricted round", d.Seconds(), 2)
	// Unknown node id is an error.
	r.Nodes = []dfs.NodeID{9}
	if _, err := ex.ExecRound(r); err == nil {
		t.Error("unknown node should fail")
	}
}

func TestCrossRackPenalty(t *testing.T) {
	// 8 nodes in 2 racks (0-3, 4-7), replication 1. Restricting a
	// round to rack-1 nodes makes rack-0 blocks remote AND cross-rack.
	store := dfs.MustStore(8, 1)
	if err := store.SetRacks(2); err != nil {
		t.Fatal(err)
	}
	f, err := store.AddMetaFile("input", 8, 64*mb)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(8, 1)
	ex := NewExecutor(cluster, store, CostModel{
		ScanMBps:         64,
		RemotePenalty:    0.5,
		CrossRackPenalty: 1.0,
	})
	r := round(plan, 0, meta(1, 1, 1))
	r.Nodes = []dfs.NodeID{4, 5, 6, 7}
	d, err := ex.ExecRound(r)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks 0-3 live on rack 0: remote+cross-rack -> factor 2.5.
	// Blocks 4-7 local -> factor 1. perBlockAvg = (4*2.5+4*1)/8 =
	// 1.75s; 8 blocks on 4 slots = 2 waves -> 3.5s.
	almost(t, "cross-rack round", d.Seconds(), 3.5)
	if got := ex.Stats().RemoteBlocks; got != 4 {
		t.Errorf("remote blocks = %d, want 4", got)
	}
}

func TestCrossRackAvoidedByReplicaOnRack(t *testing.T) {
	// Replication 2 with rack-aware placement: every block has a
	// replica on each rack, so restricting to one rack is remote but
	// never cross-rack.
	store := dfs.MustStore(8, 2)
	if err := store.SetRacks(2); err != nil {
		t.Fatal(err)
	}
	f, err := store.AddMetaFile("input", 8, 64*mb)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(8, 1)
	ex := NewExecutor(cluster, store, CostModel{
		ScanMBps:         64,
		RemotePenalty:    0.5,
		CrossRackPenalty: 1.0,
	})
	r := round(plan, 0, meta(1, 1, 1))
	r.Nodes = []dfs.NodeID{4, 5, 6, 7}
	d, err := ex.ExecRound(r)
	if err != nil {
		t.Fatal(err)
	}
	// With rack-aware replication every block has a holder on rack 1:
	// some blocks are node-local, the rest at most rack-remote
	// (factor <= 1.5). The round must beat the cross-rack case.
	if d.Seconds() >= 3.5 {
		t.Errorf("round = %v; rack-aware replicas should avoid cross-rack fetches", d)
	}
}
