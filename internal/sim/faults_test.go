package sim

import (
	"errors"
	"testing"

	"s3sched/internal/dfs"
	"s3sched/internal/faults"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

func setupReplicated(t *testing.T, nodes, replicas, blocks int, blockSize int64) (*Cluster, *dfs.Store, *dfs.SegmentPlan) {
	t.Helper()
	store, err := dfs.NewStore(nodes, replicas)
	if err != nil {
		t.Fatal(err)
	}
	f, err := store.AddMetaFile("input", blocks, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return NewCluster(nodes, 1), store, plan
}

// TestCrashWithoutReplicaLosesRound: with single replication, a crash
// window covering a block's only holder loses the round; Elapsed is
// the wait until the holder recovers.
func TestCrashWithoutReplicaLosesRound(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	r := round(plan, 0, meta(1, 1, 1))
	victim := store.Locations(r.Blocks[0])[0]
	err := ex.SetFaultModel(FaultModel{
		MaxAttempts: 1,
		Crashes:     []faults.Crash{{Node: victim, From: 100, To: 160}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := ex.ExecRoundAt(r, 120)
	var lost *scheduler.RoundLostError
	if !errors.As(rerr, &lost) {
		t.Fatalf("error = %v, want *RoundLostError", rerr)
	}
	almost(t, "elapsed", lost.Elapsed.Seconds(), 40) // 160 - 120

	// After the window the same round succeeds.
	if _, rerr := ex.ExecRoundAt(r, 160); rerr != nil {
		t.Fatalf("round still failing after recovery: %v", rerr)
	}
}

// TestCrashWithReplicaSurvives: with 2-way replication a single crash
// leaves a holder for every block, so the round completes — slower,
// because the cluster lost a node's slots and locality.
func TestCrashWithReplicaSurvives(t *testing.T) {
	cluster, store, plan := setupReplicated(t, 4, 2, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	r := round(plan, 0, meta(1, 1, 1))
	base, err := ex.ExecRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.SetFaultModel(FaultModel{
		MaxAttempts: 1,
		Crashes:     []faults.Crash{{Node: 0, From: 0, To: 1000}},
	}); err != nil {
		t.Fatal(err)
	}
	dur, rerr := ex.ExecRoundAt(r, 10)
	if rerr != nil {
		t.Fatalf("round lost despite surviving replicas: %v", rerr)
	}
	if dur < base {
		t.Errorf("crashed-node round took %v, want >= fault-free %v", dur, base)
	}
}

// TestTransientRetriesExtendRound: a high failure rate forces retried
// attempts which add RetrySec each to the round duration, and the
// stats count them.
func TestTransientRetriesExtendRound(t *testing.T) {
	cluster, store, plan := setup(t, 4, 16, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	r := round(plan, 0, meta(1, 1, 1))
	base, err := ex.ExecRound(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.SetFaultModel(FaultModel{
		Seed:          1,
		BlockFailRate: 0.5,
		MaxAttempts:   10,
		RetrySec:      5,
	}); err != nil {
		t.Fatal(err)
	}
	dur, rerr := ex.ExecRoundAt(r, 0)
	if rerr != nil {
		t.Fatalf("round lost: %v", rerr)
	}
	st := ex.FaultStats()
	if st.Retries == 0 {
		t.Fatal("rate 0.5 over 4 blocks rolled zero retries; schedule changed?")
	}
	almost(t, "duration", dur.Seconds(), base.Seconds()+float64(st.Retries)*5)
}

// TestExecRoundAtDeterministic: two executors with equal models replay
// identical durations, errors, and counters across a round sequence —
// the acceptance criterion for reproducible fault schedules.
func TestExecRoundAtDeterministic(t *testing.T) {
	run := func() ([]float64, []string, int) {
		cluster, store, plan := setup(t, 4, 16, 64*mb)
		ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64, MapMBps: 128})
		if err := ex.SetFaultModel(FaultModel{
			Seed:          42,
			BlockFailRate: 0.3,
			MaxAttempts:   3,
			RetrySec:      5,
			Crashes:       []faults.Crash{{Node: 1, From: 20, To: 60}},
		}); err != nil {
			t.Fatal(err)
		}
		var durs []float64
		var errs []string
		now := vclock.Time(0)
		for seg := 0; seg < 8; seg++ {
			r := round(plan, seg%4, meta(1, 1, 1), meta(2, 2, 1))
			d, err := ex.ExecRoundAt(r, now)
			if err != nil {
				errs = append(errs, err.Error())
				continue
			}
			durs = append(durs, d.Seconds())
			now = now.Add(d)
		}
		return durs, errs, ex.FaultStats().Retries
	}
	d1, e1, r1 := run()
	d2, e2, r2 := run()
	if len(d1) != len(d2) || len(e1) != len(e2) || r1 != r2 {
		t.Fatalf("shapes diverged: (%d,%d,%d) vs (%d,%d,%d)", len(d1), len(e1), r1, len(d2), len(e2), r2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Errorf("round %d duration %v vs %v", i, d1[i], d2[i])
		}
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Errorf("error %d %q vs %q", i, e1[i], e2[i])
		}
	}
}

// TestRequeuedRoundRerollsAttempts: the attempt chain is keyed on the
// round sequence number, so a round lost to transient failures rolls a
// fresh schedule when requeued instead of deterministically failing
// forever.
func TestRequeuedRoundRerollsAttempts(t *testing.T) {
	cluster, store, plan := setup(t, 4, 8, 64*mb)
	ex := NewExecutor(cluster, store, CostModel{ScanMBps: 64})
	if err := ex.SetFaultModel(FaultModel{
		Seed:          3,
		BlockFailRate: 0.45,
		MaxAttempts:   2,
		RetrySec:      1,
	}); err != nil {
		t.Fatal(err)
	}
	r := round(plan, 0, meta(1, 1, 1))
	lostOnce, succeeded := false, false
	for i := 0; i < 64 && !(lostOnce && succeeded); i++ {
		_, err := ex.ExecRoundAt(r, vclock.Time(float64(i)))
		if err != nil {
			var lost *scheduler.RoundLostError
			if !errors.As(err, &lost) {
				t.Fatalf("unexpected error kind: %v", err)
			}
			lostOnce = true
			continue
		}
		succeeded = true
	}
	if !lostOnce || !succeeded {
		t.Fatalf("over 64 replays lost=%v succeeded=%v; want both (re-roll per sequence)", lostOnce, succeeded)
	}
}
