package sim

import (
	"fmt"
	"math"

	"s3sched/internal/faults"
	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// FaultModel drives deterministic failure injection in the simulator:
// transient per-block scan failures (each retried attempt costs
// RetrySec of virtual time) and scheduled node crash windows (a round
// whose segment has a block with every replica holder down is lost and
// requeued until a holder recovers). The schedule is a pure function
// of (Seed, round sequence, block, attempt), so two runs with equal
// models produce identical fault histories.
type FaultModel struct {
	// Seed selects the transient-failure schedule.
	Seed int64
	// BlockFailRate is the probability in [0,1) that one block-scan
	// attempt fails transiently.
	BlockFailRate float64
	// MaxAttempts bounds scan attempts per block per round (>= 1).
	// When every attempt fails the round is lost and the scheduler may
	// requeue it (the requeued round rolls fresh attempts).
	MaxAttempts int
	// RetrySec is the virtual time one failed attempt costs (backoff
	// plus task relaunch). The wave barrier waits for retried tasks,
	// so the cost extends the round's map stage.
	RetrySec float64
	// Crashes schedules node-down windows: a node is down when any
	// window covers the round's launch time. Down nodes run no tasks
	// and their replicas are unreadable.
	Crashes []faults.Crash
}

// Validate reports whether the model is usable on a cluster of n nodes.
func (m FaultModel) Validate(n int) error {
	if m.BlockFailRate < 0 || m.BlockFailRate >= 1 {
		return fmt.Errorf("sim: BlockFailRate %v outside [0,1)", m.BlockFailRate)
	}
	if m.MaxAttempts < 1 {
		return fmt.Errorf("sim: MaxAttempts %d, want >= 1", m.MaxAttempts)
	}
	if m.RetrySec < 0 {
		return fmt.Errorf("sim: RetrySec %v is negative", m.RetrySec)
	}
	for i, c := range m.Crashes {
		if int(c.Node) < 0 || int(c.Node) >= n {
			return fmt.Errorf("sim: crash %d names node %d outside cluster of %d", i, c.Node, n)
		}
		if c.To <= c.From {
			return fmt.Errorf("sim: crash %d window [%v,%v) is empty", i, c.From, c.To)
		}
	}
	return nil
}

// SetFaultModel installs the failure model. Passing a zero-rate model
// with no crashes is equivalent to no model at all.
func (e *Executor) SetFaultModel(m FaultModel) error {
	if err := m.Validate(len(e.cluster.nodes)); err != nil {
		return err
	}
	e.fm = &m
	return nil
}

// FaultStats implements driver.FaultStatsSource.
func (e *Executor) FaultStats() metrics.FaultStats { return e.fstats }

// TimeDependent implements driver.TimeSensitive: pricing depends on
// the round's launch time only while a fault model is installed.
func (e *Executor) TimeDependent() bool { return e.fm != nil }

// downAt returns the nodes inside a crash window at time t.
func (e *Executor) downAt(t vclock.Time) map[int]bool {
	var down map[int]bool
	for _, c := range e.fm.Crashes {
		if c.From <= t && t < c.To {
			if down == nil {
				down = make(map[int]bool)
			}
			down[int(c.Node)] = true
		}
	}
	return down
}

// ExecRoundAt implements driver.TimedExecutor: ExecRound evaluated
// under the failure model at virtual time now.
func (e *Executor) ExecRoundAt(r scheduler.Round, now vclock.Time) (vclock.Duration, error) {
	if e.fm == nil {
		return e.ExecRound(r)
	}
	seq := e.roundSeq
	e.roundSeq++

	down := e.downAt(now)
	if len(down) > 0 {
		// A block with every replica holder down cannot be scanned or
		// fetched: the round is lost until the first holder recovers.
		for _, b := range r.Blocks {
			holders := e.store.Locations(b)
			wait := vclock.Duration(math.Inf(1))
			allDown := true
			for _, h := range holders {
				if !down[int(h)] {
					allDown = false
					break
				}
				if w := e.recoveryOf(int(h), now); w < wait {
					wait = w
				}
			}
			if allDown && len(holders) > 0 {
				return 0, &scheduler.RoundLostError{
					Round:   r,
					Elapsed: wait,
					Err:     fmt.Errorf("sim: every replica holder of block %v is down at %v", b, now),
				}
			}
		}
		// Down nodes run no tasks this round; price() sees the
		// shrunken cluster (fewer slots, lost locality).
		e.downNow = down
		defer func() { e.downNow = nil }()
	}

	// Transient scan failures: each block's attempt chain is rolled on
	// (seq, block, attempt) so requeued rounds re-roll. Warm blocks are
	// memory reads — they never touch the disk path, so they cannot fail
	// transiently (mirroring dfs.Store, whose fault hook fires on cache
	// misses only).
	retries := 0
	for _, b := range r.Blocks {
		if e.cacheContains(b) {
			continue
		}
		attempt := 1
		for faults.Roll(e.fm.Seed, uint64(seq), faults.HashBlock(b), uint64(attempt)) < e.fm.BlockFailRate {
			if attempt == e.fm.MaxAttempts {
				e.fstats.FailedAttempts += attempt
				e.fstats.Retries += attempt - 1
				return 0, &scheduler.RoundLostError{
					Round:   r,
					Elapsed: vclock.Duration(float64(attempt) * e.fm.RetrySec),
					Err:     fmt.Errorf("sim: block %v failed %d scan attempts", b, attempt),
				}
			}
			attempt++
		}
		retries += attempt - 1
	}
	e.fstats.Retries += retries
	e.fstats.FailedAttempts += retries

	dur, err := e.ExecRound(r)
	if err != nil {
		return 0, err
	}
	return dur + vclock.Duration(float64(retries)*e.fm.RetrySec), nil
}

// recoveryOf returns how long after now node id's current crash
// window ends (taking the latest end among windows covering now, since
// overlapping windows keep the node down).
func (e *Executor) recoveryOf(id int, now vclock.Time) vclock.Duration {
	end := now
	for _, c := range e.fm.Crashes {
		if int(c.Node) == id && c.From <= now && now < c.To && c.To > end {
			end = c.To
		}
	}
	return end.Sub(now)
}
