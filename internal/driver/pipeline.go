package driver

import (
	"errors"
	"fmt"

	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// ReduceStage runs a committed round's reduce work and reports how
// long it took. The driver may invoke it on a worker goroutine,
// concurrently with later rounds' map stages; everything the stage
// touches must have been committed (snapshotted or locked) by
// ExecMapStage before it returned.
//
// ReduceStage is a type alias, not a defined type, so executors in
// other packages can satisfy StageExecutor without importing driver.
type ReduceStage = func() (vclock.Duration, error)

// StageExecutor is implemented by executors that can split a round
// into its two stages: the scan/map stage (ending at shuffle-commit)
// and the reduce stage. Splitting lets the driver start round N+1's
// scan as soon as round N's map finishes, overlapping N's reduce with
// N+1's scan — the pipelining §V leaves on the table when every round
// blocks on its own reduce.
type StageExecutor interface {
	Executor
	// ExecMapStage runs the round's scan/map stage, commits the shuffle
	// (so later map output cannot bleed into this round's reduce input),
	// and returns the stage's duration plus the round's reduce stage.
	ExecMapStage(r scheduler.Round) (vclock.Duration, ReduceStage, error)
}

// DefaultReduceWorkers bounds concurrently draining reduce stages when
// Options.ReduceWorkers is unset.
const DefaultReduceWorkers = 2

// Options configures RunOpts.
type Options struct {
	// Pipeline requests stage-pipelined execution. It engages only when
	// both the scheduler (scheduler.StageAware) and the executor
	// (StageExecutor) support it; otherwise the serial loop runs.
	Pipeline bool
	// ReduceWorkers bounds concurrently running reduce stages
	// (default DefaultReduceWorkers). Also the number of virtual reduce
	// slots the timing model charges reduces against.
	ReduceWorkers int
	// MaxRequeues bounds consecutive requeues of one lost round before
	// the driver gives up (default DefaultMaxRequeues).
	MaxRequeues int
	Hooks       Hooks
	// Spans, when set, receives the run's hierarchical span tree
	// (run → round → scan/reduce stage → per-job subjob) in vclock
	// time. Export it with trace.WriteChromeTrace.
	Spans *trace.Log
	// Metrics, when set, receives live counter/gauge/histogram updates
	// as the run progresses (see metrics.NewRunMetrics). With either
	// sink set, the serial loop splits stage-capable executors into
	// scan+reduce to attribute time per stage; the composition is
	// semantically identical to ExecRound.
	Metrics *metrics.RunMetrics
}

// RunOpts is Run with explicit execution options.
func RunOpts(sched scheduler.Scheduler, exec Executor, arrivals []Arrival, opts Options) (*Result, error) {
	if opts.Pipeline {
		se, okExec := exec.(StageExecutor)
		sa, okSched := sched.(scheduler.StageAware)
		if okExec && okSched {
			return runPipelined(sched, sa, se, arrivals, opts)
		}
	}
	return runSerial(sched, exec, arrivals, opts)
}

type stageOutcome struct {
	dur vclock.Duration
	err error
}

// pendingRound is a round whose scan/map stage finished but which has
// not been retired yet: its reduce stage is queued, running, or done.
type pendingRound struct {
	r        scheduler.Round
	seq      int
	stage    ReduceStage
	mapStart vclock.Time
	mapEnd   vclock.Time
	mapDur   vclock.Duration
	outcome  chan stageOutcome
	// got/out stash a received outcome so non-blocking polls are not
	// lost when the round cannot retire yet.
	got bool
	out stageOutcome
}

// runPipelined is the stage-pipelined event loop. The virtual clock is
// driven by map stages: as soon as round N's map finishes the
// scheduler is told (MapDone) and round N+1 may form, while N's reduce
// drains on one of ReduceWorkers workers. Reduce time is charged
// against virtual reduce slots — a round's reduce starts at
// max(its map end, earliest slot free) — and rounds retire strictly in
// launch order (retire = max(own reduce end, previous retire)), which
// preserves the paper's Algorithm-1 completion semantics: RoundDone is
// still called once per round, in round order, with the reduce-end
// time.
func runPipelined(sched scheduler.Scheduler, sa scheduler.StageAware, exec StageExecutor, arrivals []Arrival, opts Options) (*Result, error) {
	evs, err := sortedArrivals(arrivals)
	if err != nil {
		return nil, err
	}
	workers := opts.ReduceWorkers
	if workers <= 0 {
		workers = DefaultReduceWorkers
	}
	maxRequeues := opts.MaxRequeues
	if maxRequeues <= 0 {
		maxRequeues = DefaultMaxRequeues
	}
	hooks := opts.Hooks

	clock := vclock.NewVirtual()
	coll := metrics.NewCollector()
	res := &Result{Metrics: coll}
	tele := newTelemetry(opts)
	tele.beginRun(sched.Name(), clock.Now())
	next := 0     // index of next undelivered arrival
	requeues := 0 // consecutive requeues of the current round
	failed := make(map[scheduler.JobID]bool)

	deliverDue := func(now vclock.Time) error {
		for next < len(evs) && evs[next].At <= now {
			a := evs[next]
			if err := sched.Submit(a.Job, a.At); err != nil {
				return err
			}
			coll.Submit(a.Job.ID, a.At)
			tele.jobSubmitted()
			next++
		}
		return nil
	}

	// Reduce workers drain stages in FIFO launch order. The buffer only
	// affects wall-clock batching, never virtual timing: measured reduce
	// durations come from inside the stages themselves.
	tasks := make(chan *pendingRound, 4*workers)
	defer close(tasks)
	for w := 0; w < workers; w++ {
		go func() {
			for t := range tasks {
				d, err := t.stage()
				t.outcome <- stageOutcome{dur: d, err: err}
			}
		}()
	}

	// Virtual reduce slots and the retirement frontier.
	slotFree := make([]vclock.Time, workers)
	var inflight []*pendingRound // launch order, head retires first
	var lastRetire vclock.Time

	// await fetches h's outcome, blocking or polling.
	await := func(h *pendingRound, block bool) bool {
		if h.got {
			return true
		}
		if block {
			h.out = <-h.outcome
			h.got = true
			return true
		}
		select {
		case h.out = <-h.outcome:
			h.got = true
			return true
		default:
			return false
		}
	}

	// drainOutstanding blocks until every in-flight reduce stage has
	// reported, so error returns never leak goroutines mid-stage.
	drainOutstanding := func() {
		for _, h := range inflight {
			await(h, true)
		}
	}

	// plan computes, without committing, where h's reduce runs and when
	// the round would retire. Valid only for the head of inflight (the
	// slot assignment assumes every earlier round has been planned).
	plan := func(h *pendingRound) (slot int, start, end, retire vclock.Time) {
		slot = 0
		for i := range slotFree {
			if slotFree[i] < slotFree[slot] {
				slot = i
			}
		}
		start = h.mapEnd
		if slotFree[slot] > start {
			start = slotFree[slot]
		}
		end = start.Add(h.out.dur)
		retire = end
		if lastRetire > retire {
			retire = lastRetire
		}
		return
	}

	// retire commits the head round: charges its reduce to a slot,
	// records the stage timeline, and reports RoundDone/completions at
	// the retirement time.
	retire := func() error {
		h := inflight[0]
		if h.out.err != nil {
			return fmt.Errorf("driver: reduce stage of round over segment %d failed: %w", h.r.Segment, h.out.err)
		}
		if h.out.dur < 0 {
			return fmt.Errorf("driver: executor returned negative reduce duration %v", h.out.dur)
		}
		slot, start, end, ret := plan(h)
		slotFree[slot] = end
		lastRetire = ret
		coll.AddRoundStages(metrics.RoundStages{
			Seq:         h.seq,
			Segment:     h.r.Segment,
			MapStart:    h.mapStart,
			MapEnd:      h.mapEnd,
			ReduceStart: start,
			ReduceEnd:   end,
			Retired:     ret,
		})
		// Record before settling so rounds-per-job counts include the
		// round a job completes in.
		tele.recordRound(h.r, h.seq, h.mapStart, h.mapEnd, start, end, ret, h.mapDur, h.out.dur, true)
		completed := sched.RoundDone(h.r, ret)
		if err := settleRound(sched, exec, coll, hooks, tele, h.r, ret, completed, failed); err != nil {
			return err
		}
		tele.queueDepth(sched.PendingJobs())
		inflight = inflight[1:]
		return nil
	}

	seq := 0
	for {
		now := clock.Now()
		if err := deliverDue(now); err != nil {
			drainOutstanding()
			return nil, err
		}
		// Opportunistically retire rounds whose reduce has both finished
		// running and finished within the current virtual time, keeping
		// completions (and hooks) as timely as in the serial loop.
		for len(inflight) > 0 && await(inflight[0], false) {
			h := inflight[0]
			if h.out.err == nil && h.out.dur >= 0 {
				if _, _, _, ret := plan(h); ret > now {
					break
				}
			}
			if err := retire(); err != nil {
				drainOutstanding()
				return nil, err
			}
		}
		r, ok := sched.NextRound(now)
		if !ok {
			// Idle scheduler: the next event is whichever comes first —
			// the next arrival, the scheduler's own timer, or the oldest
			// draining reduce.
			var target vclock.Time
			haveTarget := false
			if next < len(evs) {
				target = evs[next].At
				haveTarget = true
			}
			if w, isWaker := sched.(Waker); isWaker {
				if wake, wok := w.NextWake(now); wok && wake > now && (!haveTarget || wake < target) {
					target = wake
					haveTarget = true
				}
			}
			if len(inflight) > 0 {
				h := inflight[0]
				await(h, true)
				if h.out.err == nil && h.out.dur >= 0 {
					if _, _, _, ret := plan(h); haveTarget && target < ret {
						// An arrival or timer lands before the oldest
						// reduce retires; wake for it so the next round's
						// scan starts under the draining reduce.
						if target < now {
							target = now
						}
						clock.AdvanceTo(target)
						continue
					}
				}
				if err := retire(); err != nil {
					drainOutstanding()
					return nil, err
				}
				if lastRetire > clock.Now() {
					clock.AdvanceTo(lastRetire)
				}
				continue
			}
			if haveTarget {
				if target < now {
					target = now
				}
				clock.AdvanceTo(target)
				continue
			}
			// No work, no arrivals, no timers, nothing draining.
			if sched.PendingJobs() > 0 {
				if st, isSt := sched.(Stalled); isSt && st.Stalled() {
					return nil, fmt.Errorf("driver: scheduler %q stalled with %d pending job(s): %v",
						sched.Name(), sched.PendingJobs(), coll.Incomplete())
				}
				return nil, fmt.Errorf("driver: scheduler %q idle but %d job(s) incomplete: %v",
					sched.Name(), sched.PendingJobs(), coll.Incomplete())
			}
			break
		}
		for _, id := range r.JobIDs() {
			if coll.Start(id, now) {
				tele.jobStarted(coll, id)
			}
		}
		if hooks.OnRoundStart != nil {
			hooks.OnRoundStart(r, now)
		}
		mapDur, stage, err := exec.ExecMapStage(r)
		if err != nil {
			var lost *scheduler.RoundLostError
			if errors.As(err, &lost) {
				// The scheduler has not been told MapDone, so its state
				// still holds the round; return it to the queue and let
				// the next NextRound re-form the same batch.
				requeues++
				if lerr := handleRoundLoss(sched, clock, coll, r, lost, requeues, maxRequeues); lerr != nil {
					drainOutstanding()
					return nil, lerr
				}
				tele.roundLost(r)
				continue
			}
			drainOutstanding()
			return nil, fmt.Errorf("driver: map stage of round over segment %d failed: %w", r.Segment, err)
		}
		if mapDur < 0 {
			drainOutstanding()
			return nil, fmt.Errorf("driver: executor returned negative map duration %v", mapDur)
		}
		if stage == nil {
			drainOutstanding()
			return nil, fmt.Errorf("driver: executor returned a nil reduce stage for segment %d", r.Segment)
		}
		requeues = 0
		res.Rounds++
		clock.Advance(mapDur)
		mapEnd := clock.Now()
		// The scheduler's state (cursor, active set) advances at map end:
		// the next round may be formed while this round's reduce drains.
		sa.MapDone(r, mapEnd)
		h := &pendingRound{
			r:        r,
			seq:      seq,
			stage:    stage,
			mapStart: now,
			mapEnd:   mapEnd,
			mapDur:   mapDur,
			outcome:  make(chan stageOutcome, 1),
		}
		seq++
		inflight = append(inflight, h)
		tasks <- h
	}
	finishStats(exec, coll)
	res.End = clock.Now()
	tele.endRun(coll, res.End, res.Rounds)
	return res, nil
}
