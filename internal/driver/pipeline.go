package driver

import (
	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
)

// ReduceStage runs a committed round's reduce work. See
// runtime.ReduceStage.
type ReduceStage = runtime.ReduceStage

// StageExecutor is implemented by executors that can split a round
// into scan/map and reduce stages. See runtime.StageExecutor.
type StageExecutor = runtime.StageExecutor

// DefaultReduceWorkers bounds concurrently draining reduce stages when
// Options.ReduceWorkers is unset.
const DefaultReduceWorkers = runtime.DefaultReduceWorkers

// RunOpts is Run with explicit execution options. Pipelined execution
// engages only when both the scheduler (scheduler.StageAware) and the
// executor (StageExecutor) support it; otherwise the serial policy
// runs — the selection now lives in runtime.Run.
func RunOpts(sched scheduler.Scheduler, exec Executor, arrivals []Arrival, opts Options) (*Result, error) {
	return runtime.RunTrace(sched, exec, arrivals, opts)
}
