package driver

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/metrics"
	"s3sched/internal/sim"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// telemetryModel prices stages so both are non-trivial.
var telemetryModel = sim.CostModel{
	ScanMBps:       40,
	TaskOverhead:   0.5,
	RoundOverhead:  0.3,
	JobSetup:       0.2,
	SharePenalty:   0.01,
	ReducePerRound: 0.6,
	ReduceSetup:    0.2,
}

// telemetryRun executes a seeded sim workload with both sinks attached
// and returns everything observed.
func telemetryRun(t *testing.T, pipeline bool, n, segments int, staggered bool) (*Result, *trace.Log, *metrics.Registry) {
	t.Helper()
	store := dfs.MustStore(segments, 1)
	f, err := store.AddMetaFile("input", segments, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	exec := sim.NewExecutor(sim.NewCluster(segments, 1), store, telemetryModel)
	arrivals := make([]Arrival, n)
	for i := 0; i < n; i++ {
		var at vclock.Time
		if staggered {
			at = vclock.Time(i) * 3
		}
		arrivals[i] = Arrival{Job: job(i + 1), At: at}
	}
	log := trace.MustNew(4096)
	reg := metrics.NewRegistry()
	res, err := RunOpts(core.New(plan, nil), exec, arrivals, Options{
		Pipeline: pipeline,
		Spans:    log,
		Metrics:  metrics.NewRunMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, log, reg
}

func promText(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestMetricsSnapshotByteIdentical is the acceptance bar: an identical
// seeded workload yields byte-identical metric snapshots (and Chrome
// traces) across two runs, in both execution modes.
func TestMetricsSnapshotByteIdentical(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		render := func() (string, string) {
			_, log, reg := telemetryRun(t, pipeline, 4, 6, true)
			var chrome bytes.Buffer
			if err := log.WriteChromeTrace(&chrome); err != nil {
				t.Fatal(err)
			}
			return promText(t, reg), chrome.String()
		}
		prom1, chrome1 := render()
		prom2, chrome2 := render()
		if prom1 != prom2 {
			t.Errorf("pipeline=%v: metric snapshots differ between identical runs:\n%s\n----\n%s",
				pipeline, prom1, prom2)
		}
		if chrome1 != chrome2 {
			t.Errorf("pipeline=%v: chrome traces differ between identical runs", pipeline)
		}
	}
}

// spanPaths canonicalizes a span tree into sorted root-to-leaf labeled
// paths, discarding times — the "modulo wall ordering" view two
// execution modes of one workload must agree on.
func spanPaths(spans []trace.Span) []string {
	byID := make(map[trace.SpanID]trace.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	label := func(s trace.Span) string {
		args := ""
		for _, a := range s.Args {
			args += "," + a.Key + "=" + a.Value
		}
		return fmt.Sprintf("%s(job=%d,seg=%d%s)", s.Name, s.Job, s.Segment, args)
	}
	var path func(s trace.Span) string
	path = func(s trace.Span) string {
		if s.Parent == 0 {
			return label(s)
		}
		p, ok := byID[s.Parent]
		if !ok {
			return "?/" + label(s)
		}
		return path(p) + "/" + label(s)
	}
	out := make([]string, 0, len(spans))
	for _, s := range spans {
		out = append(out, path(s))
	}
	sort.Strings(out)
	return out
}

// stripLines drops exposition lines for metrics whose values
// legitimately depend on wall placement of stages (response times and
// the final clock), leaving everything both modes must agree on.
func stripLines(prom string, drop ...string) string {
	var keep []string
Line:
	for _, line := range strings.Split(prom, "\n") {
		for _, d := range drop {
			if strings.Contains(line, d) {
				continue Line
			}
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestSerialPipelinedTelemetryParity: with simultaneous arrivals the
// two modes form identical rounds, so everything but absolute
// completion times must match — identical span trees (modulo wall
// ordering) and identical job-level histograms: rounds-per-job, batch
// widths, per-round scan/reduce/total work, waiting times, and all
// counters. Response times and the final virtual clock differ (that
// is pipelining's whole point) and are excluded.
func TestSerialPipelinedTelemetryParity(t *testing.T) {
	for _, tc := range []struct{ n, segments int }{{1, 4}, {3, 5}, {5, 8}} {
		serialRes, serialLog, serialReg := telemetryRun(t, false, tc.n, tc.segments, false)
		pipedRes, pipedLog, pipedReg := telemetryRun(t, true, tc.n, tc.segments, false)

		if serialRes.Rounds != pipedRes.Rounds {
			t.Fatalf("n=%d k=%d: rounds %d (serial) != %d (pipelined)",
				tc.n, tc.segments, serialRes.Rounds, pipedRes.Rounds)
		}
		sp, pp := spanPaths(serialLog.Spans()), spanPaths(pipedLog.Spans())
		if fmt.Sprint(sp) != fmt.Sprint(pp) {
			t.Errorf("n=%d k=%d: span trees differ\nserial:\n  %s\npipelined:\n  %s",
				tc.n, tc.segments, strings.Join(sp, "\n  "), strings.Join(pp, "\n  "))
		}
		drop := []string{"s3_job_response_seconds", "s3_virtual_time_seconds"}
		sProm := stripLines(promText(t, serialReg), drop...)
		pProm := stripLines(promText(t, pipedReg), drop...)
		if sProm != pProm {
			t.Errorf("n=%d k=%d: job-level histograms differ\nserial:\n%s\npipelined:\n%s",
				tc.n, tc.segments, sProm, pProm)
		}
	}
}

// TestSerialStageSplitIsSemanticallyInert: attaching telemetry makes
// the serial loop drive the executor via ExecMapStage+stage instead of
// ExecRound; timings and results must not move.
func TestSerialStageSplitIsSemanticallyInert(t *testing.T) {
	run := func(withTelemetry bool) *Result {
		store := dfs.MustStore(5, 1)
		f, err := store.AddMetaFile("input", 5, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := dfs.PlanSegments(f, 1)
		if err != nil {
			t.Fatal(err)
		}
		exec := sim.NewExecutor(sim.NewCluster(5, 1), store, telemetryModel)
		arrivals := []Arrival{{Job: job(1), At: 0}, {Job: job(2), At: 4}}
		opts := Options{}
		if withTelemetry {
			opts.Spans = trace.MustNew(1024)
		}
		res, err := RunOpts(core.New(plan, nil), exec, arrivals, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, telem := run(false), run(true)
	pTET, _ := plain.Metrics.TET()
	tTET, _ := telem.Metrics.TET()
	pART, _ := plain.Metrics.ART()
	tART, _ := telem.Metrics.ART()
	if pTET != tTET || pART != tART || plain.Rounds != telem.Rounds {
		t.Fatalf("telemetry changed the run: TET %v→%v ART %v→%v rounds %d→%d",
			pTET, tTET, pART, tART, plain.Rounds, telem.Rounds)
	}
}

// TestTelemetrySpanHierarchy pins the recorded tree's shape: one run
// root; one round span per round, each with scan-stage, reduce-stage
// and one subjob per batched job.
func TestTelemetrySpanHierarchy(t *testing.T) {
	res, log, reg := telemetryRun(t, true, 2, 3, false)
	spans := log.Spans()
	byID := make(map[trace.SpanID]trace.Span)
	var runs, rounds, scans, reduces, subjobs int
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		switch s.Name {
		case "run":
			runs++
			if s.Parent != 0 {
				t.Errorf("run span has parent %d", s.Parent)
			}
			if !s.Ended {
				t.Error("run span never ended")
			}
		case "round":
			rounds++
			if byID[s.Parent].Name != "run" {
				t.Errorf("round span parented to %q", byID[s.Parent].Name)
			}
		case "scan-stage":
			scans++
		case "reduce-stage":
			reduces++
			if byID[s.Parent].Name != "round" {
				t.Errorf("reduce-stage parented to %q", byID[s.Parent].Name)
			}
		case "subjob":
			subjobs++
			if byID[s.Parent].Name != "round" {
				t.Errorf("subjob parented to %q", byID[s.Parent].Name)
			}
			if s.Job < 0 {
				t.Error("subjob span without a job id")
			}
		default:
			t.Errorf("unexpected span %q", s.Name)
		}
	}
	if runs != 1 {
		t.Errorf("run spans = %d, want 1", runs)
	}
	if rounds != res.Rounds || scans != res.Rounds || reduces != res.Rounds {
		t.Errorf("round/scan/reduce spans = %d/%d/%d, want %d each", rounds, scans, reduces, res.Rounds)
	}
	if subjobs < res.Rounds {
		t.Errorf("subjob spans = %d, want >= %d", subjobs, res.Rounds)
	}
	// The registry agrees with the result on totals.
	prom := promText(t, reg)
	if !strings.Contains(prom, fmt.Sprintf("s3_rounds_total %d", res.Rounds)) {
		t.Errorf("rounds counter disagrees with Result.Rounds=%d:\n%s", res.Rounds, prom)
	}
	if !strings.Contains(prom, "s3_jobs_completed_total 2") {
		t.Errorf("jobs completed counter wrong:\n%s", prom)
	}
	if !strings.Contains(prom, "s3_job_response_seconds_count 2") {
		t.Errorf("response histogram count wrong:\n%s", prom)
	}
}

// TestEngineSimTelemetrySignalParity runs the real engine and the
// simulator through the same telemetry plumbing and checks the two
// emit the same signals: an identical set of metric names (every HELP/
// TYPE line) and the same span vocabulary. Values differ — the engine
// measures wall time — but the traces are diffable signal-for-signal.
func TestEngineSimTelemetrySignalParity(t *testing.T) {
	// Simulator run.
	_, simLog, simReg := telemetryRun(t, false, 3, 4, true)

	// Engine run with the same telemetry sinks.
	plan, exec, metas := stagedSetup(t, 12, 3, 3)
	engLog := trace.MustNew(4096)
	engReg := metrics.NewRegistry()
	// Scheduler log stays nil to mirror telemetryRun: the comparison is
	// the driver-level signal set, which must not depend on executor.
	sched := core.New(plan, nil)
	arrivals := make([]Arrival, len(metas))
	for i, m := range metas {
		arrivals[i] = Arrival{Job: m, At: vclock.Time(i)}
	}
	if _, err := RunOpts(sched, exec, arrivals, Options{
		Spans:   engLog,
		Metrics: metrics.NewRunMetrics(engReg),
	}); err != nil {
		t.Fatal(err)
	}

	declared := func(reg *metrics.Registry) []string {
		var buf strings.Builder
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, "# ") {
				out = append(out, line)
			}
		}
		return out
	}
	simDecl, engDecl := declared(simReg), declared(engReg)
	if fmt.Sprint(simDecl) != fmt.Sprint(engDecl) {
		t.Errorf("metric declarations differ:\nsim: %v\nengine: %v", simDecl, engDecl)
	}

	names := func(log *trace.Log) []string {
		set := map[string]bool{}
		for _, s := range log.Spans() {
			set[s.Name] = true
		}
		var out []string
		for n := range set {
			out = append(out, n)
		}
		sort.Strings(out)
		return out
	}
	simNames, engNames := names(simLog), names(engLog)
	if fmt.Sprint(simNames) != fmt.Sprint(engNames) {
		t.Errorf("span vocabularies differ:\nsim: %v\nengine: %v", simNames, engNames)
	}
	for _, want := range []string{"run", "round", "scan-stage", "reduce-stage", "subjob"} {
		found := false
		for _, n := range engNames {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("engine run missing %q spans (got %v)", want, engNames)
		}
	}
}
