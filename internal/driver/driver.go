// Package driver is the historical entry point for running an arrival
// sequence of jobs through a scheduler and an executor. The round-loop
// state machine itself lives in internal/runtime — one engine shared
// by the serial and pipelined paths, with pluggable arrival sources —
// and this package retains only type aliases and thin wrappers so the
// pre-runtime API keeps working. New code that needs live admission
// (submitting jobs while a pass is in flight) should use
// internal/runtime directly.
package driver

import (
	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
)

// Executor runs one round of cluster work and reports how long it took.
type Executor = runtime.Executor

// ExecutorFunc adapts a function to Executor.
type ExecutorFunc = runtime.ExecutorFunc

// TimedExecutor is implemented by executors whose failure behavior
// depends on the current virtual time. See runtime.TimedExecutor.
type TimedExecutor = runtime.TimedExecutor

// TimeSensitive refines TimedExecutor. See runtime.TimeSensitive.
type TimeSensitive = runtime.TimeSensitive

// FailureReporter is implemented by executors that isolate per-job
// failures. See runtime.FailureReporter.
type FailureReporter = runtime.FailureReporter

// FaultStatsSource is implemented by executors that count fault
// handling. See runtime.FaultStatsSource.
type FaultStatsSource = runtime.FaultStatsSource

// CacheStatsSource is implemented by executors whose reads go through
// a block cache. See runtime.CacheStatsSource.
type CacheStatsSource = runtime.CacheStatsSource

// Stalled is implemented by schedulers that can report a permanent
// stall. See runtime.Stalled.
type Stalled = runtime.Stalled

// Waker is implemented by time-driven schedulers. See runtime.Waker.
type Waker = runtime.Waker

// Arrival is one job submission event.
type Arrival = runtime.Arrival

// Result is the outcome of one run.
type Result = runtime.Result

// Hooks observe the run loop.
type Hooks = runtime.Hooks

// Options configures RunOpts.
type Options = runtime.Options

// DefaultMaxRequeues bounds consecutive requeues of one round before
// the engine gives up.
const DefaultMaxRequeues = runtime.DefaultMaxRequeues

// Run feeds the arrivals through the scheduler, executing rounds until
// every submitted job completes. Arrivals may be given in any order;
// they are processed by time, ties by job id.
func Run(sched scheduler.Scheduler, exec Executor, arrivals []Arrival) (*Result, error) {
	return runtime.RunTrace(sched, exec, arrivals, Options{})
}

// RunWithHooks is Run with observation callbacks. It always runs the
// serial round loop; RunOpts selects the pipelined loop when asked to.
func RunWithHooks(sched scheduler.Scheduler, exec Executor, arrivals []Arrival, hooks Hooks) (*Result, error) {
	return runtime.RunTrace(sched, exec, arrivals, Options{Hooks: hooks})
}
