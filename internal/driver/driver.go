// Package driver runs an arrival sequence of jobs through a scheduler
// and an executor under a virtual clock, producing the per-job timings
// the paper's metrics are computed from.
//
// The same driver serves both execution substrates: the real
// in-process MapReduce engine (rounds take measured wall time) and the
// discrete-event cost model (rounds take computed time). Either way
// the loop is the paper's: the cluster runs one merged round at a
// time; jobs arriving while a round is in flight are submitted to the
// scheduler before the next round is formed, which is exactly the
// window S^3's sub-job alignment exploits.
package driver

import (
	"errors"
	"fmt"
	"sort"

	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// Executor runs one round of cluster work and reports how long it took.
type Executor interface {
	ExecRound(r scheduler.Round) (vclock.Duration, error)
}

// ExecutorFunc adapts a function to Executor.
type ExecutorFunc func(r scheduler.Round) (vclock.Duration, error)

// ExecRound calls f.
func (f ExecutorFunc) ExecRound(r scheduler.Round) (vclock.Duration, error) { return f(r) }

// TimedExecutor is implemented by executors whose failure behavior
// depends on the current virtual time (e.g. the simulator's crash
// windows). The serial driver calls ExecRoundAt with the round's
// launch time when available.
type TimedExecutor interface {
	ExecRoundAt(r scheduler.Round, now vclock.Time) (vclock.Duration, error)
}

// TimeSensitive refines TimedExecutor for executors whose ExecRoundAt
// only sometimes differs from ExecRound (the simulator is
// time-dependent only while a fault model is installed). When it
// reports false, the serial driver is free to use the telemetry
// stage-split path instead of ExecRoundAt.
type TimeSensitive interface {
	TimeDependent() bool
}

// FailureReporter is implemented by executors that isolate per-job
// failures: a round may succeed while individual jobs' map/reduce code
// failed. The driver drains the reports after each round, fails those
// jobs in the metrics, and aborts them in the scheduler.
type FailureReporter interface {
	// TakeJobFailures returns and clears the failures recorded since
	// the previous call.
	TakeJobFailures() []scheduler.JobFailure
}

// FaultStatsSource is implemented by executors that count fault
// handling (retries, failed attempts, blacklists); the driver folds
// the counters into the run's metrics at the end.
type FaultStatsSource interface {
	FaultStats() metrics.FaultStats
}

// CacheStatsSource is implemented by executors whose reads go through
// a block cache (real or modeled); the driver folds the hit/miss/
// eviction counters into the run's metrics at the end.
type CacheStatsSource interface {
	CacheStats() metrics.CacheStats
}

// DefaultMaxRequeues bounds consecutive requeues of one round before
// the driver gives up (a fault schedule that never lets the round
// complete would otherwise loop forever).
const DefaultMaxRequeues = 32

// Arrival is one job submission event.
type Arrival struct {
	Job scheduler.JobMeta
	At  vclock.Time
}

// Stalled is implemented by schedulers that can report a permanent
// stall (MRShare with an unfillable batch). The driver surfaces it as
// an error instead of spinning forever.
type Stalled interface {
	Stalled() bool
}

// Waker is implemented by time-driven schedulers (e.g. window-based
// batchers) that may have work at a future instant even with no
// arrivals left. The driver advances the clock to the wake time when
// the scheduler is otherwise idle.
type Waker interface {
	// NextWake returns the next time the scheduler should be polled
	// again, or ok=false when it has no timed work.
	NextWake(now vclock.Time) (vclock.Time, bool)
}

// Result is the outcome of one driver run.
type Result struct {
	Metrics *metrics.Collector
	Rounds  int
	// End is the virtual time when the last job completed.
	End vclock.Time
}

// Hooks observe the run loop. Both callbacks are invoked from the
// driver's goroutine, so they may read scheduler state safely but must
// not call back into it.
type Hooks struct {
	// OnRoundStart fires after a round is formed, before it executes.
	OnRoundStart func(r scheduler.Round, now vclock.Time)
	// OnRoundDone fires after the round is retired, with the jobs that
	// completed in it.
	OnRoundDone func(r scheduler.Round, now vclock.Time, completed []scheduler.JobID)
}

// Run feeds the arrivals through the scheduler, executing rounds until
// every submitted job completes. Arrivals may be given in any order;
// they are processed by time, ties by job id.
func Run(sched scheduler.Scheduler, exec Executor, arrivals []Arrival) (*Result, error) {
	return RunWithHooks(sched, exec, arrivals, Hooks{})
}

// sortedArrivals validates the arrivals and returns them ordered by
// time, ties by job id.
func sortedArrivals(arrivals []Arrival) ([]Arrival, error) {
	evs := make([]Arrival, len(arrivals))
	copy(evs, arrivals)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Job.ID < evs[j].Job.ID
	})
	for i, a := range evs {
		if a.At < 0 {
			return nil, fmt.Errorf("driver: arrival %d at negative time %v", i, a.At)
		}
	}
	return evs, nil
}

// RunWithHooks is Run with observation callbacks. It always runs the
// serial round loop; RunOpts selects the pipelined loop when asked to.
func RunWithHooks(sched scheduler.Scheduler, exec Executor, arrivals []Arrival, hooks Hooks) (*Result, error) {
	return runSerial(sched, exec, arrivals, Options{Hooks: hooks})
}

// handleRoundLoss processes a round-loss error: advance the clock by
// the time the failed execution consumed, then return the round to a
// Recoverable scheduler. Returns an error when the scheduler cannot
// recover or the consecutive-requeue bound is exhausted.
func handleRoundLoss(sched scheduler.Scheduler, clock *vclock.Virtual, coll *metrics.Collector,
	r scheduler.Round, lost *scheduler.RoundLostError, requeues, maxRequeues int) error {
	rec, ok := sched.(scheduler.Recoverable)
	if !ok {
		return fmt.Errorf("driver: round over segment %d lost and scheduler %q cannot requeue: %w", r.Segment, sched.Name(), lost)
	}
	if requeues > maxRequeues {
		return fmt.Errorf("driver: round over segment %d lost %d consecutive times, giving up: %w", r.Segment, requeues, lost)
	}
	if lost.Elapsed < 0 {
		return fmt.Errorf("driver: executor returned negative lost-round elapsed %v", lost.Elapsed)
	}
	clock.Advance(lost.Elapsed)
	rec.RequeueRound(r, clock.Now())
	coll.AddFaultStats(metrics.FaultStats{RequeuedRounds: 1, RequeuedSubJobs: len(r.Jobs)})
	return nil
}

// settleRound records a retired round's completions and drains the
// executor's per-job failure reports: failed jobs are marked failed
// (not completed) and aborted in the scheduler so no future round
// includes them. failedSoFar persists across rounds — under pipelining
// a failure drained at an earlier round's retire must not be
// double-counted when a later round reports the same job completed.
func settleRound(sched scheduler.Scheduler, exec Executor, coll *metrics.Collector, hooks Hooks, tele *telemetry,
	r scheduler.Round, now vclock.Time, completed []scheduler.JobID, failedSoFar map[scheduler.JobID]bool) error {
	var fresh []scheduler.JobID
	if fr, ok := exec.(FailureReporter); ok {
		for _, jf := range fr.TakeJobFailures() {
			if failedSoFar[jf.ID] {
				continue
			}
			failedSoFar[jf.ID] = true
			coll.Fail(jf.ID, now)
			tele.jobFailed()
			fresh = append(fresh, jf.ID)
		}
	}
	done := make(map[scheduler.JobID]bool, len(completed))
	for _, id := range completed {
		done[id] = true
		if failedSoFar[id] {
			continue // recorded as failed, and already retired by the scheduler
		}
		coll.Complete(id, now)
		tele.jobCompleted(coll, id)
	}
	var abort []scheduler.JobID
	for _, id := range fresh {
		if !done[id] {
			abort = append(abort, id)
		}
	}
	if len(abort) > 0 {
		rec, ok := sched.(scheduler.Recoverable)
		if !ok {
			return fmt.Errorf("driver: job(s) %v failed and scheduler %q cannot abort them", abort, sched.Name())
		}
		rec.AbortJobs(abort, now)
	}
	if hooks.OnRoundDone != nil {
		hooks.OnRoundDone(r, now, completed)
	}
	return nil
}

// finishStats folds the executor's fault and cache counters into the
// run's metrics once the loop ends.
func finishStats(exec Executor, coll *metrics.Collector) {
	if src, ok := exec.(FaultStatsSource); ok {
		coll.AddFaultStats(src.FaultStats())
	}
	if src, ok := exec.(CacheStatsSource); ok {
		coll.AddCacheStats(src.CacheStats())
	}
}

func runSerial(sched scheduler.Scheduler, exec Executor, arrivals []Arrival, opts Options) (*Result, error) {
	evs, err := sortedArrivals(arrivals)
	if err != nil {
		return nil, err
	}
	hooks := opts.Hooks
	maxRequeues := opts.MaxRequeues
	if maxRequeues <= 0 {
		maxRequeues = DefaultMaxRequeues
	}

	clock := vclock.NewVirtual()
	coll := metrics.NewCollector()
	res := &Result{Metrics: coll}
	tele := newTelemetry(opts)
	tele.beginRun(sched.Name(), clock.Now())
	next := 0     // index of next undelivered arrival
	requeues := 0 // consecutive requeues of the current round
	failed := make(map[scheduler.JobID]bool)

	deliverDue := func(now vclock.Time) error {
		for next < len(evs) && evs[next].At <= now {
			a := evs[next]
			if err := sched.Submit(a.Job, a.At); err != nil {
				return err
			}
			coll.Submit(a.Job.ID, a.At)
			tele.jobSubmitted()
			next++
		}
		return nil
	}

	for {
		now := clock.Now()
		if err := deliverDue(now); err != nil {
			return nil, err
		}
		r, ok := sched.NextRound(now)
		if !ok {
			// Idle: sleep until whichever comes first — the next
			// arrival or the scheduler's own timer (window batchers).
			var target vclock.Time
			haveTarget := false
			if next < len(evs) {
				target = evs[next].At
				haveTarget = true
			}
			if w, isWaker := sched.(Waker); isWaker {
				if wake, wok := w.NextWake(now); wok && wake > now && (!haveTarget || wake < target) {
					target = wake
					haveTarget = true
				}
			}
			if haveTarget {
				if target < now {
					target = now
				}
				clock.AdvanceTo(target)
				continue
			}
			// No work, no arrivals, no timers.
			if sched.PendingJobs() > 0 {
				if st, isSt := sched.(Stalled); isSt && st.Stalled() {
					return nil, fmt.Errorf("driver: scheduler %q stalled with %d pending job(s): %v",
						sched.Name(), sched.PendingJobs(), coll.Incomplete())
				}
				return nil, fmt.Errorf("driver: scheduler %q idle but %d job(s) incomplete: %v",
					sched.Name(), sched.PendingJobs(), coll.Incomplete())
			}
			break
		}
		// The launch of a round is each included job's transition
		// from waiting to processing (§III-B decomposition).
		for _, id := range r.JobIDs() {
			if coll.Start(id, now) {
				tele.jobStarted(coll, id)
			}
		}
		if hooks.OnRoundStart != nil {
			hooks.OnRoundStart(r, now)
		}
		launch := now
		var dur, mapDur, redDur vclock.Duration
		var err error
		split := false
		te, timed := exec.(TimedExecutor)
		if timed && tele.active() {
			// An executor that knows it is currently time-independent
			// frees the telemetry path to split stages.
			if ts, ok := exec.(TimeSensitive); ok && !ts.TimeDependent() {
				if _, staged := exec.(StageExecutor); staged {
					timed = false
				}
			}
		}
		if timed {
			dur, err = te.ExecRoundAt(r, now)
		} else if se, staged := exec.(StageExecutor); staged && tele.active() {
			// Telemetry wants per-stage timings. ExecMapStage + stage()
			// is the same computation ExecRound performs (the
			// StageExecutor contract), just with the boundary visible.
			var stage ReduceStage
			mapDur, stage, err = se.ExecMapStage(r)
			if err == nil {
				if stage == nil {
					return nil, fmt.Errorf("driver: executor returned a nil reduce stage for segment %d", r.Segment)
				}
				redDur, err = stage()
				if err == nil {
					dur = mapDur + redDur
					split = true
				}
			}
		} else {
			dur, err = exec.ExecRound(r)
		}
		if err != nil {
			var lost *scheduler.RoundLostError
			if errors.As(err, &lost) {
				requeues++
				if lerr := handleRoundLoss(sched, clock, coll, r, lost, requeues, maxRequeues); lerr != nil {
					return nil, lerr
				}
				tele.roundLost(r)
				// Arrivals during the failed attempt still join the
				// queue; the re-formed round aligns them too.
				continue
			}
			return nil, fmt.Errorf("driver: round over segment %d failed: %w", r.Segment, err)
		}
		if dur < 0 {
			return nil, fmt.Errorf("driver: executor returned negative duration %v", dur)
		}
		requeues = 0
		res.Rounds++
		clock.Advance(dur)
		now = clock.Now()
		// Jobs that arrived while the round ran join the queue before
		// the round is retired, so the very next round can include
		// them (S^3 dynamic sub-job adjustment, §IV-D2).
		if err := deliverDue(now); err != nil {
			return nil, err
		}
		// Record the round before settling so rounds-per-job counts
		// include the round a job completes in.
		mapEnd := launch.Add(mapDur)
		if !split {
			mapEnd, mapDur, redDur = now, dur, 0
		}
		tele.recordRound(r, res.Rounds-1, launch, mapEnd, mapEnd, now, now, mapDur, redDur, split)
		completed := sched.RoundDone(r, now)
		if err := settleRound(sched, exec, coll, hooks, tele, r, now, completed, failed); err != nil {
			return nil, err
		}
		tele.queueDepth(sched.PendingJobs())
	}
	finishStats(exec, coll)
	res.End = clock.Now()
	tele.endRun(coll, res.End, res.Rounds)
	return res, nil
}
