package driver

import (
	"fmt"

	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// OutputMode selects how an S^3 job's output accumulates across its
// sub-job rounds (§V-G's output collection schemes).
type OutputMode int

const (
	// AccumulateShuffle carries raw shuffle records between rounds and
	// runs one reduce phase when the job completes. Minimal reduce
	// work, but the carried state grows with the input.
	AccumulateShuffle OutputMode = iota
	// PerRoundReduce runs every merged sub-job's reduce at the end of
	// its round — the paper's actual execution, where each sub-job is
	// a complete MapReduce job producing a partial result — and folds
	// the partial outputs into the final answer at completion. The
	// fold applies the job's Reducer to the concatenated partials, so
	// the mode requires reducers whose outputs can be re-reduced
	// (sums, counts, min/max, or map-only jobs); this is the same
	// restriction §V-G places on its aggregation-query optimization.
	PerRoundReduce
)

// EngineExecutor runs rounds on the real in-process MapReduce engine:
// every block in a round is physically scanned once and fed to every
// job in the batch, and jobs' reduce phases run when their last round
// completes. Round duration is the measured wall time, scaled by
// TimeScale so scaled-down datasets can stand in for paper-sized ones
// without distorting the scheduler's relative timings.
type EngineExecutor struct {
	engine *mapreduce.Engine
	specs  map[scheduler.JobID]mapreduce.JobSpec
	// timeScale converts measured wall seconds into virtual seconds
	// (default 1).
	timeScale float64
	// compact, when non-nil, folds each job's accumulated intermediate
	// records through this combiner after every round — the §V-G
	// output-collection optimization for aggregation queries.
	compact mapreduce.Reducer

	mode OutputMode

	clock   *vclock.Wall
	running map[scheduler.JobID]*mapreduce.Running
	results map[scheduler.JobID]*mapreduce.Result
	// partials accumulates per-round reduced outputs in PerRoundReduce
	// mode.
	partials map[scheduler.JobID][]mapreduce.KV
	// peakCarried tracks the largest record count carried between
	// rounds per job — the state-size measurement §V-G's schemes trade
	// against.
	peakCarried map[scheduler.JobID]int
}

// NewEngineExecutor builds an executor over the engine. specs maps
// every job id the schedulers will see to its executable definition.
func NewEngineExecutor(engine *mapreduce.Engine, specs map[scheduler.JobID]mapreduce.JobSpec) *EngineExecutor {
	return &EngineExecutor{
		engine:      engine,
		specs:       specs,
		timeScale:   1,
		clock:       vclock.NewWall(),
		running:     make(map[scheduler.JobID]*mapreduce.Running),
		results:     make(map[scheduler.JobID]*mapreduce.Result),
		partials:    make(map[scheduler.JobID][]mapreduce.KV),
		peakCarried: make(map[scheduler.JobID]int),
	}
}

// SetOutputMode selects the output collection scheme. Must be called
// before the first round.
func (e *EngineExecutor) SetOutputMode(mode OutputMode) {
	if len(e.running) > 0 || len(e.results) > 0 {
		panic("driver: SetOutputMode after execution started")
	}
	e.mode = mode
}

// PeakCarriedRecords reports the largest intermediate record count the
// executor carried between rounds for the job.
func (e *EngineExecutor) PeakCarriedRecords(id scheduler.JobID) int {
	return e.peakCarried[id]
}

func (e *EngineExecutor) trackCarried(id scheduler.JobID, n int) {
	if n > e.peakCarried[id] {
		e.peakCarried[id] = n
	}
}

// SetTimeScale sets the virtual-seconds-per-wall-second factor.
func (e *EngineExecutor) SetTimeScale(scale float64) {
	if scale <= 0 {
		panic(fmt.Sprintf("driver: time scale must be positive, got %v", scale))
	}
	e.timeScale = scale
}

// EnablePartialAggregation folds every job's intermediate records
// through combiner after each round (§V-G): partial aggregates shrink
// the state carried between sub-jobs and let the final aggregation
// start from near-finished results.
func (e *EngineExecutor) EnablePartialAggregation(combiner mapreduce.Reducer) {
	e.compact = combiner
}

// Results returns the completed jobs' outputs keyed by job id.
func (e *EngineExecutor) Results() map[scheduler.JobID]*mapreduce.Result {
	return e.results
}

// ExecRound implements Executor.
func (e *EngineExecutor) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	start := e.clock.Now()
	jobs := make([]*mapreduce.Running, 0, len(r.Jobs))
	for _, meta := range r.Jobs {
		run, ok := e.running[meta.ID]
		if !ok {
			spec, have := e.specs[meta.ID]
			if !have {
				return 0, fmt.Errorf("driver: no JobSpec registered for job %d", meta.ID)
			}
			var err error
			run, err = mapreduce.NewRunning(spec)
			if err != nil {
				return 0, err
			}
			e.running[meta.ID] = run
		}
		jobs = append(jobs, run)
	}
	if _, err := e.engine.MapRound(r.Blocks, jobs); err != nil {
		return 0, err
	}
	if e.compact != nil {
		for _, run := range jobs {
			if err := run.Compact(e.compact); err != nil {
				return 0, err
			}
		}
	}
	if e.mode == PerRoundReduce {
		// Every merged sub-job is a complete MapReduce job: reduce its
		// round now and collect the partial output (§V-G).
		for i, run := range jobs {
			partial, err := e.engine.ReduceRound(run)
			if err != nil {
				return 0, err
			}
			id := r.Jobs[i].ID
			e.partials[id] = append(e.partials[id], partial...)
			e.trackCarried(id, len(e.partials[id]))
		}
	} else {
		for i, run := range jobs {
			e.trackCarried(r.Jobs[i].ID, run.IntermediateRecords())
		}
	}
	for _, id := range r.Completes {
		run, ok := e.running[id]
		if !ok {
			return 0, fmt.Errorf("driver: round completes unknown job %d", id)
		}
		res, err := e.engine.Finish(run)
		if err != nil {
			return 0, err
		}
		if e.mode == PerRoundReduce {
			// Final output collection: fold the per-round partials.
			// Finish consumed an empty shuffle space, so res.Output is
			// empty; the fold re-reduces the partial results, which is
			// exact for re-reducible reducers (and map-only jobs).
			folded, err := mapreduce.ReducePartition(e.partials[id], run.Spec.Reducer)
			if err != nil {
				return 0, fmt.Errorf("driver: folding job %d partials: %w", id, err)
			}
			res.Output = folded
			delete(e.partials, id)
		}
		e.results[id] = res
		delete(e.running, id)
	}
	elapsed := e.clock.Now().Sub(start)
	return vclock.Duration(elapsed.Seconds() * e.timeScale), nil
}
