package driver

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// OutputMode selects how an S^3 job's output accumulates across its
// sub-job rounds (§V-G's output collection schemes).
type OutputMode int

const (
	// AccumulateShuffle carries raw shuffle records between rounds and
	// runs one reduce phase when the job completes. Minimal reduce
	// work, but the carried state grows with the input.
	AccumulateShuffle OutputMode = iota
	// PerRoundReduce runs every merged sub-job's reduce at the end of
	// its round — the paper's actual execution, where each sub-job is
	// a complete MapReduce job producing a partial result — and folds
	// the partial outputs into the final answer at completion. The
	// fold applies the job's Reducer to the concatenated partials, so
	// the mode requires reducers whose outputs can be re-reduced
	// (sums, counts, min/max, or map-only jobs); this is the same
	// restriction §V-G places on its aggregation-query optimization.
	PerRoundReduce
)

// EngineExecutor runs rounds on the real in-process MapReduce engine:
// every block in a round is physically scanned once and fed to every
// job in the batch, and jobs' reduce phases run when their last round
// completes. Round duration is the measured wall time, scaled by
// TimeScale so scaled-down datasets can stand in for paper-sized ones
// without distorting the scheduler's relative timings.
type EngineExecutor struct {
	engine *mapreduce.Engine
	specs  map[scheduler.JobID]mapreduce.JobSpec
	// timeScale converts measured wall seconds into virtual seconds
	// (default 1).
	timeScale float64
	// compact, when non-nil, folds each job's accumulated intermediate
	// records through this combiner after every round — the §V-G
	// output-collection optimization for aggregation queries.
	compact mapreduce.Reducer

	mode OutputMode

	clock *vclock.Wall

	// mu guards the job-state maps below. Under staged execution a
	// round's reduce stage commits from a worker goroutine while the
	// driver's goroutine starts the next round's map stage.
	mu      sync.Mutex
	running map[scheduler.JobID]*mapreduce.Running
	results map[scheduler.JobID]*mapreduce.Result
	// partials accumulates per-round reduced outputs in PerRoundReduce
	// mode.
	partials map[scheduler.JobID][]mapreduce.KV
	// peakCarried tracks the largest record count carried between
	// rounds per job — the state-size measurement §V-G's schemes trade
	// against.
	peakCarried map[scheduler.JobID]int

	// Commit turnstile: concurrently draining reduce stages commit
	// their outputs strictly in round (map-launch) order, so the
	// partials a job accumulates — and therefore its final folded
	// output — are byte-identical to the serial loop's.
	turnMu     sync.Mutex
	turnCond   *sync.Cond
	nextTicket int
	commitTurn int

	// failMu guards per-job failure isolation state. A job whose own
	// map/reduce code errors is recorded here and excluded from every
	// later round, instead of aborting the batch it shared a scan with.
	failMu   sync.Mutex
	dead     map[scheduler.JobID]bool
	failures []scheduler.JobFailure
	faults   metrics.FaultStats
}

var (
	_ FailureReporter  = (*EngineExecutor)(nil)
	_ FaultStatsSource = (*EngineExecutor)(nil)
)

// NewEngineExecutor builds an executor over the engine. specs maps
// every job id the schedulers will see to its executable definition.
func NewEngineExecutor(engine *mapreduce.Engine, specs map[scheduler.JobID]mapreduce.JobSpec) *EngineExecutor {
	e := &EngineExecutor{
		engine:      engine,
		specs:       specs,
		timeScale:   1,
		clock:       vclock.NewWall(),
		running:     make(map[scheduler.JobID]*mapreduce.Running),
		results:     make(map[scheduler.JobID]*mapreduce.Result),
		partials:    make(map[scheduler.JobID][]mapreduce.KV),
		peakCarried: make(map[scheduler.JobID]int),
		dead:        make(map[scheduler.JobID]bool),
	}
	e.turnCond = sync.NewCond(&e.turnMu)
	return e
}

// recordFailure marks a job dead and queues a failure report for the
// driver. Only the first failure per job is reported. Safe from reduce
// worker goroutines.
func (e *EngineExecutor) recordFailure(id scheduler.JobID, err error) {
	e.failMu.Lock()
	if !e.dead[id] {
		e.dead[id] = true
		e.failures = append(e.failures, scheduler.JobFailure{ID: id, Err: err})
	}
	e.failMu.Unlock()
	e.mu.Lock()
	delete(e.running, id)
	delete(e.partials, id)
	e.mu.Unlock()
}

// isDead reports whether the job has failed.
func (e *EngineExecutor) isDead(id scheduler.JobID) bool {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.dead[id]
}

// TakeJobFailures implements FailureReporter.
func (e *EngineExecutor) TakeJobFailures() []scheduler.JobFailure {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	out := e.failures
	e.failures = nil
	return out
}

// FaultStats implements FaultStatsSource.
func (e *EngineExecutor) FaultStats() metrics.FaultStats {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.faults
}

// CacheStats implements CacheStatsSource: the counters of the block
// cache installed on the engine's store (all zeros with caching off).
func (e *EngineExecutor) CacheStats() metrics.CacheStats {
	cs := e.engine.Cluster().Store().CacheStats()
	return metrics.CacheStats{
		Hits:           cs.Hits,
		Misses:         cs.Misses,
		Evictions:      cs.Evictions,
		Prefetches:     cs.Prefetches,
		PrefetchFailed: cs.PrefetchFailed,
		Bytes:          cs.Bytes,
		PinnedBytes:    cs.PinnedBytes,
	}
}

// WireCacheTrace forwards the store's block-cache hit, eviction and
// prefetch events into the trace log, timestamped on the executor's
// wall clock. A no-op unless a cache is installed on the engine's
// store.
func (e *EngineExecutor) WireCacheTrace(log *trace.Log) {
	cache := e.engine.Cluster().Store().Cache()
	if cache == nil {
		return
	}
	cache.SetObserver(func(ev dfs.CacheEvent) {
		kind := trace.CacheHit
		switch ev.Kind {
		case dfs.CacheEvict:
			kind = trace.CacheEvict
		case dfs.CachePrefetch:
			kind = trace.CachePrefetch
		}
		log.Addf(e.clock.Now(), kind, -1, -1, "block %v node %d %d bytes", ev.Block, int(ev.Node), ev.Bytes)
	})
}

// WireFaultTrace forwards the engine's fault events (failed attempts,
// node blacklisting) into the trace log.
func (e *EngineExecutor) WireFaultTrace(log *trace.Log) {
	e.engine.SetFaultObserver(func(ev mapreduce.FaultEvent) {
		kind := trace.AttemptFailed
		if ev.Kind == mapreduce.FaultNodeDown {
			kind = trace.NodeDown
		}
		log.Addf(e.clock.Now(), kind, -1, -1, "block %v node %d attempt %d: %v", ev.Block, int(ev.Node), ev.Attempt, ev.Err)
	})
}

// WireTaskTrace forwards the engine's task lifecycle events (attempt
// commits, speculative launches) into the trace log, timestamped on
// the executor's wall clock.
func (e *EngineExecutor) WireTaskTrace(log *trace.Log) {
	e.engine.SetTaskObserver(func(ev mapreduce.TaskEvent) {
		kind := trace.TaskCommitted
		if ev.Kind == mapreduce.TaskSpeculated {
			kind = trace.TaskSpeculated
		}
		locality := "remote"
		if ev.Local {
			locality = "local"
		}
		log.Addf(e.clock.Now(), kind, -1, -1, "block %v node %d attempt %d %s jobs=%d dur=%v",
			ev.Block, int(ev.Node), ev.Attempt, locality, ev.Jobs, ev.Dur)
	})
}

// SetOutputMode selects the output collection scheme. Must be called
// before the first round.
func (e *EngineExecutor) SetOutputMode(mode OutputMode) {
	if len(e.running) > 0 || len(e.results) > 0 {
		panic("driver: SetOutputMode after execution started")
	}
	e.mode = mode
}

// PeakCarriedRecords reports the largest intermediate record count the
// executor carried between rounds for the job.
func (e *EngineExecutor) PeakCarriedRecords(id scheduler.JobID) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.peakCarried[id]
}

// trackCarried records a carried-state high-water mark. Callers hold
// e.mu.
func (e *EngineExecutor) trackCarried(id scheduler.JobID, n int) {
	if n > e.peakCarried[id] {
		e.peakCarried[id] = n
	}
}

// SetTimeScale sets the virtual-seconds-per-wall-second factor.
func (e *EngineExecutor) SetTimeScale(scale float64) {
	if scale <= 0 {
		panic(fmt.Sprintf("driver: time scale must be positive, got %v", scale))
	}
	e.timeScale = scale
}

// EnablePartialAggregation folds every job's intermediate records
// through combiner after each round (§V-G): partial aggregates shrink
// the state carried between sub-jobs and let the final aggregation
// start from near-finished results.
func (e *EngineExecutor) EnablePartialAggregation(combiner mapreduce.Reducer) {
	e.compact = combiner
}

// Results returns the completed jobs' outputs keyed by job id.
func (e *EngineExecutor) Results() map[scheduler.JobID]*mapreduce.Result {
	return e.results
}

// ExecRound implements Executor: the map stage followed immediately by
// its own reduce stage, which is exactly the serial semantics.
func (e *EngineExecutor) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	mapDur, stage, err := e.ExecMapStage(r)
	if err != nil {
		return 0, err
	}
	redDur, err := stage()
	if err != nil {
		return 0, err
	}
	return mapDur + redDur, nil
}

// roundCommit is one job's reduce-stage input, snapshotted at
// shuffle-commit.
type roundCommit struct {
	id      scheduler.JobID
	run     *mapreduce.Running
	drained [][]mapreduce.KV // this round's shuffle (PerRoundReduce)
}

// finishCommit is a completing job's sealed shuffle snapshot.
type finishCommit struct {
	id     scheduler.JobID
	run    *mapreduce.Running
	sealed [][]mapreduce.KV
}

var _ StageExecutor = (*EngineExecutor)(nil)

// ExecMapStage implements StageExecutor. It physically scans the
// round's blocks into every batched job, then performs the
// shuffle-commit: each job's shuffle space for this round is detached
// (DrainPartitions for mid-flight jobs, Seal for completing ones) so
// the returned reduce stage owns an immutable snapshot and the next
// round's map output accumulates separately. The reduce stage computes
// partial/final reduces off that snapshot and commits the outputs
// under a round-ordered turnstile, keeping results byte-identical to
// serial execution no matter how rounds' reduces interleave.
func (e *EngineExecutor) ExecMapStage(r scheduler.Round) (vclock.Duration, ReduceStage, error) {
	start := e.clock.Now()
	ids := make([]scheduler.JobID, 0, len(r.Jobs))
	jobs := make([]*mapreduce.Running, 0, len(r.Jobs))
	e.mu.Lock()
	for _, meta := range r.Jobs {
		if e.isDead(meta.ID) {
			// The job failed in an earlier round (or stage); its abort
			// may not have reached the scheduler yet. Skip it.
			continue
		}
		run, ok := e.running[meta.ID]
		if !ok {
			spec, have := e.specs[meta.ID]
			if !have {
				e.mu.Unlock()
				return 0, nil, fmt.Errorf("driver: no JobSpec registered for job %d", meta.ID)
			}
			var err error
			run, err = mapreduce.NewRunning(spec)
			if err != nil {
				e.mu.Unlock()
				return 0, nil, err
			}
			e.running[meta.ID] = run
		}
		ids = append(ids, meta.ID)
		jobs = append(jobs, run)
	}
	e.mu.Unlock()
	stats, jobErrs, roundErr := e.engine.MapRoundCtx(context.Background(), r.Blocks, jobs)
	e.failMu.Lock()
	e.faults.Retries += stats.Retries
	e.faults.FailedAttempts += stats.FailedAttempts
	e.faults.BlacklistedNodes += stats.Blacklisted
	e.failMu.Unlock()
	if roundErr != nil {
		var lost *mapreduce.BlockLostError
		if errors.As(roundErr, &lost) {
			// Every replica of a block was exhausted: the scan — not any
			// job's code — failed, so the whole round is lost and the
			// scheduler may requeue it.
			elapsed := vclock.Duration(e.clock.Now().Sub(start).Seconds() * e.timeScale)
			return 0, nil, &scheduler.RoundLostError{Round: r, Elapsed: elapsed, Err: roundErr}
		}
		return 0, nil, roundErr
	}
	// Per-job map errors kill only their own job (fault isolation); the
	// co-batched jobs' shared scan already committed their outputs.
	alive := ids[:0]
	aliveRuns := jobs[:0]
	for i, run := range jobs {
		if jobErrs[i] != nil {
			e.recordFailure(ids[i], jobErrs[i])
			continue
		}
		alive = append(alive, ids[i])
		aliveRuns = append(aliveRuns, run)
	}
	ids, jobs = alive, aliveRuns
	if e.compact != nil {
		alive, aliveRuns = ids[:0], jobs[:0]
		for i, run := range jobs {
			if err := run.Compact(e.compact); err != nil {
				e.recordFailure(ids[i], fmt.Errorf("driver: compacting job %d: %w", ids[i], err))
				continue
			}
			alive = append(alive, ids[i])
			aliveRuns = append(aliveRuns, run)
		}
		ids, jobs = alive, aliveRuns
	}
	// Shuffle-commit. Drain before Seal so a completing job's sealed
	// snapshot holds only what this round's reduce has not claimed,
	// mirroring the serial ReduceRound-then-Finish order.
	commits := make([]roundCommit, len(jobs))
	for i, run := range jobs {
		commits[i] = roundCommit{id: ids[i], run: run}
		if e.mode == PerRoundReduce {
			commits[i].drained = run.DrainPartitions()
		} else {
			e.mu.Lock()
			e.trackCarried(ids[i], run.IntermediateRecords())
			e.mu.Unlock()
		}
	}
	fins := make([]finishCommit, 0, len(r.Completes))
	e.mu.Lock()
	for _, id := range r.Completes {
		if e.isDead(id) {
			continue // failed jobs never finish
		}
		run, ok := e.running[id]
		if !ok {
			e.mu.Unlock()
			return 0, nil, fmt.Errorf("driver: round completes unknown job %d", id)
		}
		// The job had its last scan; later rounds never reference it.
		delete(e.running, id)
		fins = append(fins, finishCommit{id: id, run: run})
	}
	e.mu.Unlock()
	for i := range fins {
		fins[i].sealed = fins[i].run.Seal()
	}
	ticket := e.nextTicket
	e.nextTicket++
	mapDur := vclock.Duration(e.clock.Now().Sub(start).Seconds() * e.timeScale)
	return mapDur, e.reduceStage(ticket, commits, fins), nil
}

// reduceStage builds the round's reduce closure. The closure's
// duration covers reduce computation and commit work, excluding any
// time spent waiting for earlier rounds' commit turns (that wait is a
// pipelining artifact, not reduce work; it never occurs serially).
//
// A reduce error is a job-code error (the engine's own failures
// surfaced in the map stage), so it kills only its job: the failure is
// recorded for the driver and the round's other jobs commit normally.
func (e *EngineExecutor) reduceStage(ticket int, commits []roundCommit, fins []finishCommit) ReduceStage {
	return func() (vclock.Duration, error) {
		compStart := e.clock.Now()
		// Compute off the committed snapshots, no shared state touched.
		type partialOut struct {
			id  scheduler.JobID
			kvs []mapreduce.KV
		}
		var partials []partialOut
		if e.mode == PerRoundReduce {
			// Every merged sub-job is a complete MapReduce job: reduce
			// its round now and collect the partial output (§V-G).
			partials = make([]partialOut, 0, len(commits))
			for _, c := range commits {
				if e.isDead(c.id) {
					continue // failed in a later stage already drained
				}
				kvs, err := e.engine.ReduceDrained(c.run, c.drained)
				if err != nil {
					e.recordFailure(c.id, err)
					continue
				}
				partials = append(partials, partialOut{id: c.id, kvs: kvs})
			}
		}
		type finishOut struct {
			id  scheduler.JobID
			run *mapreduce.Running
			res *mapreduce.Result
		}
		finished := make([]finishOut, 0, len(fins))
		for _, f := range fins {
			if e.isDead(f.id) {
				continue
			}
			res, err := e.engine.FinishDrained(f.run, f.sealed)
			if err != nil {
				e.recordFailure(f.id, err)
				continue
			}
			finished = append(finished, finishOut{id: f.id, run: f.run, res: res})
		}
		compDur := e.clock.Now().Sub(compStart)

		// Wait for this round's commit turn. The turn must be taken and
		// released even on error, or every later round would block.
		e.turnMu.Lock()
		for e.commitTurn != ticket {
			e.turnCond.Wait()
		}
		e.turnMu.Unlock()

		commitStart := e.clock.Now()
		var foldFailed []scheduler.JobFailure
		e.mu.Lock()
		for _, p := range partials {
			e.partials[p.id] = append(e.partials[p.id], p.kvs...)
			e.trackCarried(p.id, len(e.partials[p.id]))
		}
		for _, f := range finished {
			if e.mode == PerRoundReduce {
				// Final output collection: fold the per-round
				// partials. FinishDrained consumed an empty sealed
				// shuffle, so f.res.Output is empty; the fold
				// re-reduces the partial results, which is exact for
				// re-reducible reducers (and map-only jobs).
				folded, err := mapreduce.ReducePartition(e.partials[f.id], f.run.Spec.Reducer)
				if err != nil {
					foldFailed = append(foldFailed, scheduler.JobFailure{
						ID: f.id, Err: fmt.Errorf("driver: folding job %d partials: %w", f.id, err)})
					continue
				}
				f.res.Output = folded
				delete(e.partials, f.id)
			}
			e.results[f.id] = f.res
		}
		e.mu.Unlock()
		for _, jf := range foldFailed {
			// Recorded outside e.mu: recordFailure takes the same lock.
			e.recordFailure(jf.ID, jf.Err)
		}
		commitDur := e.clock.Now().Sub(commitStart)

		e.turnMu.Lock()
		e.commitTurn++
		e.turnCond.Broadcast()
		e.turnMu.Unlock()

		return vclock.Duration((compDur + commitDur).Seconds() * e.timeScale), nil
	}
}
