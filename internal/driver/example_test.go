package driver_test

import (
	"fmt"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// ExampleRun reproduces the paper's Example 3 (§III): two 100-second
// jobs, the second arriving 20 seconds in, scheduled by S^3 — TET 120,
// ART 100.
func ExampleRun() {
	store := dfs.MustStore(1, 1)
	f, _ := store.AddMetaFile("input", 10, 64<<20)
	plan, _ := dfs.PlanSegments(f, 1) // 10 segments

	// Every segment round takes 10 virtual seconds.
	exec := driver.ExecutorFunc(func(scheduler.Round) (vclock.Duration, error) {
		return 10, nil
	})
	res, _ := driver.Run(core.New(plan, nil), exec, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "input"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, File: "input"}, At: 20},
	})

	tet, _ := res.Metrics.TET()
	art, _ := res.Metrics.ART()
	fmt.Printf("TET %v  ART %v  rounds %d\n", tet, art, res.Rounds)
	// Output:
	// TET 120.000s  ART 100.000s  rounds 12
}
