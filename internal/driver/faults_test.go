package driver

import (
	"errors"
	"strings"
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// flakyExec loses the first `lose` rounds, then runs every round in 10s.
type flakyExec struct {
	lose  int
	calls int
}

func (f *flakyExec) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	f.calls++
	if f.calls <= f.lose {
		return 0, &scheduler.RoundLostError{Round: r, Elapsed: 5, Err: errors.New("injected loss")}
	}
	return 10, nil
}

// TestRequeueRecoversLostRound: a lost round is requeued and the run
// still completes every job; the lost time and requeue count are
// accounted.
func TestRequeueRecoversLostRound(t *testing.T) {
	p := makePlan(t, 4, 2) // 2 segments
	s := core.New(p, nil)
	exec := &flakyExec{lose: 2}
	res, err := Run(s, exec, []Arrival{{Job: job(1), At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Metrics.Failed()); n != 0 {
		t.Fatalf("failed jobs = %d, want 0", n)
	}
	if res.Rounds != 2 {
		t.Errorf("successful rounds = %d, want 2", res.Rounds)
	}
	fs := res.Metrics.FaultStats()
	if fs.RequeuedRounds != 2 || fs.RequeuedSubJobs != 2 {
		t.Errorf("requeue stats = %+v, want 2 rounds / 2 sub-jobs", fs)
	}
	// 2 lost rounds x 5s + 2 good rounds x 10s.
	rt, err := res.Metrics.ResponseTime(1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Seconds() != 30 {
		t.Errorf("response time = %v, want 30s (lost-round time counts)", rt)
	}
}

// TestRequeueBoundGivesUp: a round lost more than MaxRequeues times in
// a row aborts the run instead of looping forever.
func TestRequeueBoundGivesUp(t *testing.T) {
	p := makePlan(t, 4, 2)
	s := core.New(p, nil)
	exec := &flakyExec{lose: 1 << 30}
	_, err := RunOpts(s, exec, []Arrival{{Job: job(1), At: 0}}, Options{MaxRequeues: 3})
	if err == nil {
		t.Fatal("run with a permanently lost round succeeded")
	}
	if !strings.Contains(err.Error(), "giving up") {
		t.Errorf("error %q does not mention giving up", err)
	}
	if exec.calls != 4 {
		t.Errorf("executor called %d times, want 4 (1 + 3 requeues)", exec.calls)
	}
}

// noRecover hides the Recoverable methods of the wrapped scheduler.
type noRecover struct{ scheduler.Scheduler }

// TestLostRoundNeedsRecoverable: a scheduler without Recoverable gets a
// clear error instead of a silent requeue.
func TestLostRoundNeedsRecoverable(t *testing.T) {
	p := makePlan(t, 4, 2)
	s := &noRecover{core.New(p, nil)}
	exec := &flakyExec{lose: 1}
	_, err := Run(s, exec, []Arrival{{Job: job(1), At: 0}})
	if err == nil || !strings.Contains(err.Error(), "cannot requeue") {
		t.Fatalf("error = %v, want cannot-requeue", err)
	}
}

// failingJobsExec runs rounds normally but reports the given jobs as
// failed after their first round, like EngineExecutor does for mapper
// errors.
type failingJobsExec struct {
	bad      map[scheduler.JobID]bool
	failures []scheduler.JobFailure
	reported map[scheduler.JobID]bool
	stats    metrics.FaultStats
}

func (f *failingJobsExec) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	for _, j := range r.Jobs {
		if f.bad[j.ID] && !f.reported[j.ID] {
			f.reported[j.ID] = true
			f.failures = append(f.failures, scheduler.JobFailure{ID: j.ID, Err: errors.New("mapper exploded")})
			f.stats.FailedAttempts++
		}
	}
	return 10, nil
}

func (f *failingJobsExec) TakeJobFailures() []scheduler.JobFailure {
	out := f.failures
	f.failures = nil
	return out
}

func (f *failingJobsExec) FaultStats() metrics.FaultStats { return f.stats }

// TestJobFailureIsIsolatedAndAborted: a failed job is marked failed,
// aborted out of future rounds, and the surviving job completes.
func TestJobFailureIsIsolatedAndAborted(t *testing.T) {
	p := makePlan(t, 8, 2) // 4 segments
	s := core.New(p, nil)
	exec := &failingJobsExec{
		bad:      map[scheduler.JobID]bool{2: true},
		reported: make(map[scheduler.JobID]bool),
	}
	res, err := Run(s, exec, []Arrival{
		{Job: job(1), At: 0},
		{Job: job(2), At: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	failed := res.Metrics.Failed()
	if len(failed) != 1 || failed[0] != 2 {
		t.Fatalf("failed = %v, want [2]", failed)
	}
	if n := len(res.Metrics.Incomplete()); n != 0 {
		t.Fatalf("incomplete jobs = %d, want 0 (job 1 must finish)", n)
	}
	if _, err := res.Metrics.ResponseTime(1); err != nil {
		t.Errorf("job 1 has no response time: %v", err)
	}
	// Job 2 shared only the first round before aborting: 4 rounds for
	// job 1, no extra rounds for job 2's remaining segments.
	if res.Rounds != 4 {
		t.Errorf("rounds = %d, want 4 (aborted job schedules no more scans)", res.Rounds)
	}
	fs := res.Metrics.FaultStats()
	if fs.FailedJobs != 1 {
		t.Errorf("FaultStats.FailedJobs = %d, want 1", fs.FailedJobs)
	}
	if fs.FailedAttempts != 1 {
		t.Errorf("FaultStats.FailedAttempts = %d, want 1 (executor stats folded in)", fs.FailedAttempts)
	}
}

// TestJobFailurePipelined: the same isolation holds under the
// stage-pipelined driver, where failures settle at reduce retirement.
func TestJobFailurePipelined(t *testing.T) {
	p := makePlan(t, 8, 2)
	s := core.New(p, nil)
	inner := &failingJobsExec{
		bad:      map[scheduler.JobID]bool{2: true},
		reported: make(map[scheduler.JobID]bool),
	}
	exec := &stagedFailExec{inner: inner}
	res, err := RunOpts(s, exec, []Arrival{
		{Job: job(1), At: 0},
		{Job: job(2), At: 0},
	}, Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	failed := res.Metrics.Failed()
	if len(failed) != 1 || failed[0] != 2 {
		t.Fatalf("failed = %v, want [2]", failed)
	}
	if n := len(res.Metrics.Incomplete()); n != 0 {
		t.Fatalf("incomplete jobs = %d, want 0", n)
	}
}

// stagedFailExec adapts failingJobsExec to the stage-pipelined
// protocol: the scan takes 6s, the reduce 4s.
type stagedFailExec struct {
	inner *failingJobsExec
}

func (s *stagedFailExec) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	return s.inner.ExecRound(r)
}

func (s *stagedFailExec) ExecMapStage(r scheduler.Round) (vclock.Duration, ReduceStage, error) {
	if _, err := s.inner.ExecRound(r); err != nil {
		return 0, nil, err
	}
	return 6, func() (vclock.Duration, error) { return 4, nil }, nil
}

func (s *stagedFailExec) TakeJobFailures() []scheduler.JobFailure { return s.inner.TakeJobFailures() }

func (s *stagedFailExec) FaultStats() metrics.FaultStats { return s.inner.FaultStats() }
