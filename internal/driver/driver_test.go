package driver

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

func makePlan(t *testing.T, numBlocks, perSegment int) *dfs.SegmentPlan {
	t.Helper()
	store := dfs.MustStore(4, 1)
	f, err := store.AddMetaFile("input", numBlocks, 64<<20)
	if err != nil {
		t.Fatalf("AddMetaFile: %v", err)
	}
	p, err := dfs.PlanSegments(f, perSegment)
	if err != nil {
		t.Fatalf("PlanSegments: %v", err)
	}
	return p
}

func job(id int) scheduler.JobMeta {
	return scheduler.JobMeta{ID: scheduler.JobID(id), File: "input", Weight: 1, ReduceWeight: 1}
}

// fixed returns an executor where every round takes d seconds.
func fixed(d vclock.Duration) Executor {
	return ExecutorFunc(func(scheduler.Round) (vclock.Duration, error) { return d, nil })
}

func TestRunFIFOSequential(t *testing.T) {
	p := makePlan(t, 10, 1) // 10 segments, 10s each -> 100s per job
	f := scheduler.NewFIFO(p, nil)
	res, err := Run(f, fixed(10), []Arrival{
		{Job: job(1), At: 0},
		{Job: job(2), At: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	tet, _ := res.Metrics.TET()
	art, _ := res.Metrics.ART()
	if tet != 200 || art != 140 {
		t.Errorf("FIFO TET/ART = %v/%v, want 200/140 (paper Example 1)", tet, art)
	}
	if res.Rounds != 20 {
		t.Errorf("rounds = %d, want 20", res.Rounds)
	}
}

func TestRunS3SharedScan(t *testing.T) {
	p := makePlan(t, 10, 1)
	s := core.New(p, nil)
	res, err := Run(s, fixed(10), []Arrival{
		{Job: job(1), At: 0},
		{Job: job(2), At: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	tet, _ := res.Metrics.TET()
	art, _ := res.Metrics.ART()
	if tet != 120 || art != 100 {
		t.Errorf("S3 TET/ART = %v/%v, want 120/100 (paper Example 3)", tet, art)
	}
	// 12 rounds: segments 0..9 for job 1, plus 0,1 again for job 2.
	if res.Rounds != 12 {
		t.Errorf("rounds = %d, want 12", res.Rounds)
	}
}

func TestRunIdleGapBetweenJobs(t *testing.T) {
	p := makePlan(t, 2, 1) // 2 segments, job takes 2 rounds
	s := core.New(p, nil)
	res, err := Run(s, fixed(5), []Arrival{
		{Job: job(1), At: 0},
		{Job: job(2), At: 100}, // long after job 1 finished
	})
	if err != nil {
		t.Fatal(err)
	}
	rt1, _ := res.Metrics.ResponseTime(1)
	rt2, _ := res.Metrics.ResponseTime(2)
	if rt1 != 10 || rt2 != 10 {
		t.Errorf("response times = %v/%v, want 10/10 (no interference)", rt1, rt2)
	}
	tet, _ := res.Metrics.TET()
	if tet != 110 {
		t.Errorf("TET = %v, want 110 (idle gap included)", tet)
	}
	if res.End != 110 {
		t.Errorf("End = %v, want 110", res.End)
	}
}

func TestRunArrivalsUnsorted(t *testing.T) {
	p := makePlan(t, 2, 1)
	s := core.New(p, nil)
	res, err := Run(s, fixed(1), []Arrival{
		{Job: job(2), At: 50},
		{Job: job(1), At: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Jobs() != 2 {
		t.Errorf("jobs = %d", res.Metrics.Jobs())
	}
}

func TestRunRejectsNegativeArrival(t *testing.T) {
	p := makePlan(t, 2, 1)
	s := core.New(p, nil)
	if _, err := Run(s, fixed(1), []Arrival{{Job: job(1), At: -5}}); err == nil {
		t.Error("negative arrival should fail")
	}
}

func TestRunExecutorErrorPropagates(t *testing.T) {
	p := makePlan(t, 2, 1)
	s := core.New(p, nil)
	boom := errors.New("exec-fail")
	exec := ExecutorFunc(func(scheduler.Round) (vclock.Duration, error) { return 0, boom })
	if _, err := Run(s, exec, []Arrival{{Job: job(1), At: 0}}); !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
}

func TestRunNegativeDurationRejected(t *testing.T) {
	p := makePlan(t, 2, 1)
	s := core.New(p, nil)
	exec := ExecutorFunc(func(scheduler.Round) (vclock.Duration, error) { return -1, nil })
	if _, err := Run(s, exec, []Arrival{{Job: job(1), At: 0}}); err == nil {
		t.Error("negative duration should fail")
	}
}

func TestRunMRShareStallSurfaces(t *testing.T) {
	p := makePlan(t, 2, 1)
	m, err := scheduler.NewMRShare(p, []int{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only 2 of 3 batch members ever arrive.
	_, err = Run(m, fixed(1), []Arrival{
		{Job: job(1), At: 0},
		{Job: job(2), At: 1},
	})
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Errorf("err = %v, want stall report", err)
	}
}

func TestRunSubmitErrorPropagates(t *testing.T) {
	p := makePlan(t, 2, 1)
	s := core.New(p, nil)
	_, err := Run(s, fixed(1), []Arrival{
		{Job: job(1), At: 0},
		{Job: job(1), At: 1}, // duplicate id
	})
	if !errors.Is(err, scheduler.ErrDuplicateJob) {
		t.Errorf("err = %v, want ErrDuplicateJob", err)
	}
}

func TestRunEmptyArrivals(t *testing.T) {
	p := makePlan(t, 2, 1)
	s := core.New(p, nil)
	res, err := Run(s, fixed(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.Metrics.Jobs() != 0 {
		t.Errorf("empty run = %+v", res)
	}
}

func TestRunMidRoundArrivalJoinsNextRound(t *testing.T) {
	p := makePlan(t, 4, 1) // 4 segments
	s := core.New(p, nil)
	var batchSizes []int
	exec := ExecutorFunc(func(r scheduler.Round) (vclock.Duration, error) {
		batchSizes = append(batchSizes, len(r.Jobs))
		return 10, nil
	})
	// Job 2 arrives at t=5, during job 1's first round (0..10). It
	// must share every round from the second on.
	_, err := Run(s, exec, []Arrival{
		{Job: job(1), At: 0},
		{Job: job(2), At: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint([]int{1, 2, 2, 2, 1}) // seg0 alone; 1..3 shared; seg0 again for job 2...
	// Job 2 needs 4 segments: 1,2,3,0 -> rounds: [1],[2],[2],[2],[1]
	if got := fmt.Sprint(batchSizes); got != want {
		t.Errorf("batch sizes = %v, want %v", got, want)
	}
}
