package driver

import (
	"fmt"
	"testing"
	"testing/quick"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
	"s3sched/internal/workload"
)

// stagedFixed is a StageExecutor whose stages take fixed durations.
type stagedFixed struct {
	mapD, redD vclock.Duration
}

func (s stagedFixed) ExecRound(scheduler.Round) (vclock.Duration, error) {
	return s.mapD + s.redD, nil
}

func (s stagedFixed) ExecMapStage(scheduler.Round) (vclock.Duration, ReduceStage, error) {
	return s.mapD, func() (vclock.Duration, error) { return s.redD, nil }, nil
}

func TestRunOptsFallsBackWithoutStageSupport(t *testing.T) {
	// ExecutorFunc is not a StageExecutor, so Pipeline:true must run the
	// serial loop and reproduce paper Example 3 exactly.
	p := makePlan(t, 10, 1)
	s := core.New(p, nil)
	res, err := RunOpts(s, fixed(10), []Arrival{
		{Job: job(1), At: 0},
		{Job: job(2), At: 20},
	}, Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	tet, _ := res.Metrics.TET()
	art, _ := res.Metrics.ART()
	if tet != 120 || art != 100 {
		t.Errorf("fallback TET/ART = %v/%v, want 120/100", tet, art)
	}
	if got := res.Metrics.RoundStages(); len(got) != 0 {
		t.Errorf("serial fallback recorded %d stage timelines, want 0", len(got))
	}
}

func TestPipelineOverlapsReduceWithNextScan(t *testing.T) {
	// One job, 10 per-segment rounds, map 6s + reduce 4s. Serially the
	// job takes 100s. Pipelined, maps run back to back (round k maps
	// over [6k, 6k+6]) and each reduce drains under the next map, so the
	// last round retires at 9*6+6+4 = 64s.
	p := makePlan(t, 10, 1)
	serial, err := Run(core.New(p, nil), stagedFixed{6, 4}, []Arrival{{Job: job(1), At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if tet, _ := serial.Metrics.TET(); tet != 100 {
		t.Fatalf("serial TET = %v, want 100", tet)
	}

	piped, err := RunOpts(core.New(p, nil), stagedFixed{6, 4}, []Arrival{{Job: job(1), At: 0}},
		Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	tet, _ := piped.Metrics.TET()
	if tet != 64 {
		t.Errorf("pipelined TET = %v, want 64", tet)
	}
	if piped.Rounds != 10 {
		t.Errorf("rounds = %d, want 10", piped.Rounds)
	}
	if piped.End != 64 {
		t.Errorf("End = %v, want 64", piped.End)
	}
	stages := piped.Metrics.RoundStages()
	if len(stages) != 10 {
		t.Fatalf("stage timelines = %d, want 10", len(stages))
	}
	for i, st := range stages {
		wantMapEnd := vclock.Time(6 * (i + 1))
		if st.MapEnd != wantMapEnd || st.ReduceEnd != wantMapEnd+4 {
			t.Errorf("round %d stages = %+v, want map end %v, reduce end %v",
				i, st, wantMapEnd, wantMapEnd+4)
		}
	}
	// Rounds 0..8 reduce entirely under round i+1's map: 9*4 = 36s.
	if ov := piped.Metrics.PipelineOverlap(); ov != 36 {
		t.Errorf("PipelineOverlap = %v, want 36", ov)
	}
}

func TestPipelineIdleGapBetweenJobs(t *testing.T) {
	// Two 2-segment jobs far apart: per-job response time is
	// 2*6+4 = 16s (the first reduce hides under the second map), and the
	// final reduce drains during otherwise idle time.
	p := makePlan(t, 2, 1)
	res, err := RunOpts(core.New(p, nil), stagedFixed{6, 4}, []Arrival{
		{Job: job(1), At: 0},
		{Job: job(2), At: 100},
	}, Options{Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	rt1, _ := res.Metrics.ResponseTime(1)
	rt2, _ := res.Metrics.ResponseTime(2)
	if rt1 != 16 || rt2 != 16 {
		t.Errorf("response times = %v/%v, want 16/16", rt1, rt2)
	}
	if tet, _ := res.Metrics.TET(); tet != 116 {
		t.Errorf("TET = %v, want 116", tet)
	}
	if res.End != 116 {
		t.Errorf("End = %v, want 116", res.End)
	}
}

func TestPipelineErrorInReduceStagePropagates(t *testing.T) {
	p := makePlan(t, 4, 1)
	exec := failingReduce{after: 2}
	_, err := RunOpts(core.New(p, nil), &exec, []Arrival{{Job: job(1), At: 0}},
		Options{Pipeline: true})
	if err == nil {
		t.Fatal("reduce-stage error should fail the run")
	}
}

type failingReduce struct {
	after int // fail the reduce of the (after+1)-th round
	calls int
}

func (f *failingReduce) ExecRound(scheduler.Round) (vclock.Duration, error) { return 1, nil }

func (f *failingReduce) ExecMapStage(scheduler.Round) (vclock.Duration, ReduceStage, error) {
	n := f.calls
	f.calls++
	return 1, func() (vclock.Duration, error) {
		if n == f.after {
			return 0, fmt.Errorf("reduce blew up at round %d", n)
		}
		return 1, nil
	}, nil
}

// completionOrder runs the scheduler/executor pair and returns the
// order job completions were reported in.
func completionOrder(t *testing.T, sch scheduler.Scheduler, exec Executor, arrivals []Arrival, opts Options) ([]scheduler.JobID, *Result) {
	t.Helper()
	var order []scheduler.JobID
	opts.Hooks = Hooks{
		OnRoundDone: func(_ scheduler.Round, _ vclock.Time, completed []scheduler.JobID) {
			order = append(order, completed...)
		},
	}
	res, err := RunOpts(sch, exec, arrivals, opts)
	if err != nil {
		t.Fatal(err)
	}
	return order, res
}

// Property: on randomized arrival sequences, the pipelined runtime
// completes jobs in exactly the serial order — S^3 admits jobs in
// arrival order and every active job advances one segment per round,
// so completion order equals admission order in both modes. And when
// all jobs arrive together (identical round composition in both
// modes), pipelining never increases TET: reduces hide under scans.
//
// TET is deliberately NOT compared under staggered arrivals: because
// the pipelined runtime launches the next scan at map end, a job
// arriving during what would serially still be round N can miss
// round N+1's batch and pay an extra round. That trade is inherent to
// scan/reduce overlap, and the benchmark shows it wins on aggregate.
func TestPipelineMatchesSerialOrderProperty(t *testing.T) {
	model := sim.CostModel{
		ScanMBps:       40,
		TaskOverhead:   0.5,
		RoundOverhead:  0.3,
		JobSetup:       0.2,
		SharePenalty:   0.01,
		ReducePerRound: 0.6, // reduce-heavy so pipelining matters
		ReduceSetup:    0.2,
	}
	prop := func(n8, k8 uint8, gaps [6]uint8, simultaneous bool) bool {
		n := int(n8%5) + 1
		k := int(k8%6) + 2 // segments

		mkRun := func(pipeline bool) ([]scheduler.JobID, *Result, bool) {
			store := dfs.MustStore(k, 1)
			f, err := store.AddMetaFile("input", k, 64<<20)
			if err != nil {
				return nil, nil, false
			}
			plan, err := dfs.PlanSegments(f, 1)
			if err != nil {
				return nil, nil, false
			}
			exec := sim.NewExecutor(sim.NewCluster(k, 1), store, model)
			arrivals := make([]Arrival, n)
			at := vclock.Time(0)
			for i := 0; i < n; i++ {
				if !simultaneous {
					at += vclock.Time(gaps[i%len(gaps)]%40) / 10
				}
				arrivals[i] = Arrival{Job: job(i + 1), At: at}
			}
			var order []scheduler.JobID
			res, err := RunOpts(core.New(plan, nil), exec, arrivals, Options{
				Pipeline: pipeline,
				Hooks: Hooks{OnRoundDone: func(_ scheduler.Round, _ vclock.Time, completed []scheduler.JobID) {
					order = append(order, completed...)
				}},
			})
			if err != nil {
				return nil, nil, false
			}
			return order, res, true
		}

		serialOrder, serialRes, ok := mkRun(false)
		if !ok {
			return false
		}
		pipedOrder, pipedRes, ok := mkRun(true)
		if !ok {
			return false
		}
		if fmt.Sprint(serialOrder) != fmt.Sprint(pipedOrder) {
			return false
		}
		if simultaneous {
			if serialRes.Rounds != pipedRes.Rounds {
				return false
			}
			serialTET, _ := serialRes.Metrics.TET()
			pipedTET, _ := pipedRes.Metrics.TET()
			return pipedTET <= serialTET+1e-9
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// stagedSetup is realSetup with a configurable segment granularity, so
// pipelined runs have many rounds in flight.
func stagedSetup(t *testing.T, blocks, perSegment, n int) (*dfs.SegmentPlan, *EngineExecutor, []scheduler.JobMeta) {
	t.Helper()
	store := dfs.MustStore(4, 1)
	if _, err := workload.AddTextFile(store, "corpus", blocks, 2048, 7); err != nil {
		t.Fatal(err)
	}
	f, err := store.File("corpus")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, perSegment)
	if err != nil {
		t.Fatal(err)
	}
	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	specs := make(map[scheduler.JobID]mapreduce.JobSpec, n)
	metas := make([]scheduler.JobMeta, n)
	prefixes := workload.DistinctPrefixes(n)
	for i := 0; i < n; i++ {
		id := scheduler.JobID(i + 1)
		specs[id] = workload.WordCountJob(fmt.Sprintf("wc%d", i), "corpus", prefixes[i], 2)
		metas[i] = scheduler.JobMeta{ID: id, File: "corpus"}
	}
	return plan, NewEngineExecutor(engine, specs), metas
}

// TestPipelineEngineMatchesSerial runs the same staggered workload on
// the real engine serially and pipelined: final outputs must be
// byte-identical and jobs must complete in the same order, in both
// output-collection modes. Under -race this also exercises round N's
// reduce committing concurrently with round N+1's map.
func TestPipelineEngineMatchesSerial(t *testing.T) {
	for _, mode := range []OutputMode{AccumulateShuffle, PerRoundReduce} {
		run := func(pipeline bool) (map[scheduler.JobID]string, []scheduler.JobID) {
			plan, exec, metas := stagedSetup(t, 8, 1, 3)
			exec.SetOutputMode(mode)
			exec.SetTimeScale(1e6)
			arrivals := []Arrival{
				{Job: metas[0], At: 0},
				{Job: metas[1], At: 1},
				{Job: metas[2], At: 2},
			}
			order, _ := completionOrder(t, core.New(plan, nil), exec, arrivals,
				Options{Pipeline: pipeline, ReduceWorkers: 2})
			out := map[scheduler.JobID]string{}
			for id, res := range exec.Results() {
				out[id] = fmt.Sprint(res.Output)
			}
			return out, order
		}
		serialOut, serialOrder := run(false)
		pipedOut, pipedOrder := run(true)
		if len(serialOut) != 3 || len(pipedOut) != 3 {
			t.Fatalf("mode %v: results missing (serial %d, piped %d)", mode, len(serialOut), len(pipedOut))
		}
		for id, want := range serialOut {
			if pipedOut[id] != want {
				t.Errorf("mode %v: job %d pipelined output differs from serial", mode, id)
			}
		}
		if fmt.Sprint(serialOrder) != fmt.Sprint(pipedOrder) {
			t.Errorf("mode %v: completion order %v (pipelined) != %v (serial)", mode, pipedOrder, serialOrder)
		}
	}
}

// TestPipelineEngineConcurrentReduces drives many single-block rounds
// with slow reduces through a wide worker pool, keeping several reduce
// stages in flight while maps continue — the scenario the commit
// turnstile orders. Primarily a -race target.
func TestPipelineEngineConcurrentReduces(t *testing.T) {
	plan, exec, metas := stagedSetup(t, 12, 1, 4)
	exec.SetOutputMode(PerRoundReduce)
	exec.SetTimeScale(1e6)
	arrivals := make([]Arrival, len(metas))
	for i, m := range metas {
		arrivals[i] = Arrival{Job: m, At: vclock.Time(i)}
	}
	res, err := RunOpts(core.New(plan, nil), exec, arrivals,
		Options{Pipeline: true, ReduceWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Jobs() != len(metas) {
		t.Fatalf("jobs = %d, want %d", res.Metrics.Jobs(), len(metas))
	}
	if len(exec.Results()) != len(metas) {
		t.Fatalf("results = %d, want %d", len(exec.Results()), len(metas))
	}
	if len(res.Metrics.RoundStages()) != res.Rounds {
		t.Errorf("stage timelines = %d, rounds = %d", len(res.Metrics.RoundStages()), res.Rounds)
	}
}
