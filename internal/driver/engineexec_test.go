package driver

import (
	"fmt"
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/workload"
)

// realSetup builds a small generated corpus, a cluster, and wordcount
// specs for n jobs.
func realSetup(t *testing.T, blocks, n int) (*dfs.Store, *dfs.SegmentPlan, *EngineExecutor, []scheduler.JobMeta) {
	t.Helper()
	store := dfs.MustStore(4, 1)
	if _, err := workload.AddTextFile(store, "corpus", blocks, 2048, 7); err != nil {
		t.Fatal(err)
	}
	f, err := store.File("corpus")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	specs := make(map[scheduler.JobID]mapreduce.JobSpec, n)
	metas := make([]scheduler.JobMeta, n)
	prefixes := workload.DistinctPrefixes(n)
	for i := 0; i < n; i++ {
		id := scheduler.JobID(i + 1)
		specs[id] = workload.WordCountJob(fmt.Sprintf("wc%d", i), "corpus", prefixes[i], 2)
		metas[i] = scheduler.JobMeta{ID: id, File: "corpus"}
	}
	return store, plan, NewEngineExecutor(engine, specs), metas
}

func TestEngineExecutorS3ProducesCorrectResults(t *testing.T) {
	store, plan, exec, metas := realSetup(t, 8, 2)
	// Reference: run each job alone on a fresh engine.
	refStore := dfs.MustStore(4, 1)
	if _, err := workload.AddTextFile(refStore, "corpus", 8, 2048, 7); err != nil {
		t.Fatal(err)
	}
	refEngine := mapreduce.NewEngine(mapreduce.MustCluster(refStore, 1))
	want := map[scheduler.JobID]string{}
	prefixes := workload.DistinctPrefixes(2)
	for i, meta := range metas {
		res, err := refEngine.RunJob(workload.WordCountJob("ref", "corpus", prefixes[i], 2))
		if err != nil {
			t.Fatal(err)
		}
		want[meta.ID] = fmt.Sprint(res.Output)
	}

	// Drive through S3 with a staggered arrival: job 2 joins after
	// round 1, so its scan order differs from block order.
	s := core.New(plan, nil)
	res, err := Run(s, exec, []Arrival{
		{Job: metas[0], At: 0},
		{Job: metas[1], At: 0.000001}, // arrives during round 1 (wall-timed)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Jobs() != 2 {
		t.Fatalf("jobs = %d", res.Metrics.Jobs())
	}
	for id, wantOut := range want {
		got, ok := exec.Results()[id]
		if !ok {
			t.Fatalf("no result for job %d", id)
		}
		if fmt.Sprint(got.Output) != wantOut {
			t.Errorf("job %d output differs from isolated run", id)
		}
	}
	// Shared scheduling must not have scanned more than 2 full passes.
	if reads := store.Stats().BlockReads; reads > 16 {
		t.Errorf("block reads = %d, want <= 16", reads)
	}
}

func TestEngineExecutorSharedScanSavesReads(t *testing.T) {
	// Both jobs at t=0: S3 batches every round -> exactly one pass.
	store, plan, exec, metas := realSetup(t, 8, 3)
	s := core.New(plan, nil)
	_, err := Run(s, exec, []Arrival{
		{Job: metas[0], At: 0},
		{Job: metas[1], At: 0},
		{Job: metas[2], At: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reads := store.Stats().BlockReads; reads != 8 {
		t.Errorf("block reads = %d, want 8 (one shared pass for 3 jobs)", reads)
	}

	// FIFO scans once per job.
	store2, plan2, exec2, metas2 := realSetup(t, 8, 3)
	f := scheduler.NewFIFO(plan2, nil)
	_, err = Run(f, exec2, []Arrival{
		{Job: metas2[0], At: 0},
		{Job: metas2[1], At: 0},
		{Job: metas2[2], At: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reads := store2.Stats().BlockReads; reads != 24 {
		t.Errorf("FIFO block reads = %d, want 24 (3 isolated passes)", reads)
	}
}

func TestEngineExecutorMRShareMatchesS3Output(t *testing.T) {
	_, plan, exec, metas := realSetup(t, 8, 2)
	m, err := scheduler.NewMRShare(plan, []int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(m, exec, []Arrival{
		{Job: metas[0], At: 0},
		{Job: metas[1], At: 0},
	})
	if err != nil {
		t.Fatal(err)
	}

	_, plan2, exec2, metas2 := realSetup(t, 8, 2)
	s := core.New(plan2, nil)
	_, err = Run(s, exec2, []Arrival{
		{Job: metas2[0], At: 0},
		{Job: metas2[1], At: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []scheduler.JobID{1, 2} {
		a := fmt.Sprint(exec.Results()[id].Output)
		b := fmt.Sprint(exec2.Results()[id].Output)
		if a != b {
			t.Errorf("job %d: MRShare and S3 outputs differ", id)
		}
	}
}

func TestEngineExecutorPartialAggregation(t *testing.T) {
	_, plan, exec, metas := realSetup(t, 8, 1)
	exec.EnablePartialAggregation(workload.SumReducer{})

	s := core.New(plan, nil)
	_, err := Run(s, exec, []Arrival{{Job: metas[0], At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	withAgg := fmt.Sprint(exec.Results()[1].Output)

	_, plan2, exec2, metas2 := realSetup(t, 8, 1)
	s2 := core.New(plan2, nil)
	if _, err := Run(s2, exec2, []Arrival{{Job: metas2[0], At: 0}}); err != nil {
		t.Fatal(err)
	}
	without := fmt.Sprint(exec2.Results()[1].Output)
	if withAgg != without {
		t.Error("partial aggregation changed the final result")
	}
}

func TestEngineExecutorUnknownJob(t *testing.T) {
	_, plan, exec, _ := realSetup(t, 4, 1)
	s := core.New(plan, nil)
	ghost := scheduler.JobMeta{ID: 99, File: "corpus"}
	if _, err := Run(s, exec, []Arrival{{Job: ghost, At: 0}}); err == nil {
		t.Error("job without a registered spec should fail")
	}
}

func TestEngineExecutorTimeScale(t *testing.T) {
	_, _, exec, _ := realSetup(t, 4, 1)
	exec.SetTimeScale(100)
	defer func() {
		if recover() == nil {
			t.Error("non-positive scale should panic")
		}
	}()
	exec.SetTimeScale(0)
}

func TestOutputModesAgree(t *testing.T) {
	// Wordcount (re-reducible sums) staggered across rounds: the
	// accumulate-shuffle and per-round-reduce schemes must produce
	// identical final outputs.
	var want map[scheduler.JobID]string
	for _, mode := range []OutputMode{AccumulateShuffle, PerRoundReduce} {
		_, plan, exec, metas := realSetup(t, 8, 2)
		exec.SetOutputMode(mode)
		exec.SetTimeScale(1e6)
		s := core.New(plan, nil)
		_, err := Run(s, exec, []Arrival{
			{Job: metas[0], At: 0},
			{Job: metas[1], At: 1},
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		got := map[scheduler.JobID]string{}
		for id, res := range exec.Results() {
			got[id] = fmt.Sprint(res.Output)
		}
		if want == nil {
			want = got
			continue
		}
		for id, w := range want {
			if got[id] != w {
				t.Errorf("mode %v: job %d output differs", mode, id)
			}
		}
	}
}

func TestPerRoundReduceShrinksCarriedState(t *testing.T) {
	_, plan, exec, metas := realSetup(t, 8, 1)
	exec.SetTimeScale(1e6)
	s := core.New(plan, nil)
	if _, err := Run(s, exec, []Arrival{{Job: metas[0], At: 0}}); err != nil {
		t.Fatal(err)
	}
	accumulated := exec.PeakCarriedRecords(1)

	_, plan2, exec2, metas2 := realSetup(t, 8, 1)
	exec2.SetOutputMode(PerRoundReduce)
	exec2.SetTimeScale(1e6)
	s2 := core.New(plan2, nil)
	if _, err := Run(s2, exec2, []Arrival{{Job: metas2[0], At: 0}}); err != nil {
		t.Fatal(err)
	}
	perRound := exec2.PeakCarriedRecords(1)
	if perRound >= accumulated {
		t.Errorf("per-round carried %d records, accumulate carried %d; expected shrink", perRound, accumulated)
	}
	if perRound == 0 || accumulated == 0 {
		t.Errorf("peaks not tracked: %d / %d", perRound, accumulated)
	}
}

func TestSetOutputModeAfterStartPanics(t *testing.T) {
	_, plan, exec, metas := realSetup(t, 4, 1)
	s := core.New(plan, nil)
	if _, err := Run(s, exec, []Arrival{{Job: metas[0], At: 0}}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetOutputMode after execution should panic")
		}
	}()
	exec.SetOutputMode(PerRoundReduce)
}

func TestPerRoundReduceMapOnlyJob(t *testing.T) {
	// Selection (nil reducer): the fold is a sorted concatenation and
	// must match the accumulate path.
	store := dfs.MustStore(4, 1)
	if _, err := workload.AddLineitemFile(store, "lineitem", 8, 8<<10, 3); err != nil {
		t.Fatal(err)
	}
	f, err := store.File("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, mode := range []OutputMode{AccumulateShuffle, PerRoundReduce} {
		engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
		exec := NewEngineExecutor(engine, map[scheduler.JobID]mapreduce.JobSpec{
			1: workload.SelectionJob("sel", "lineitem", 5),
		})
		exec.SetOutputMode(mode)
		exec.SetTimeScale(1e6)
		s := core.New(plan, nil)
		if _, err := Run(s, exec, []Arrival{{Job: scheduler.JobMeta{ID: 1, File: "lineitem"}, At: 0}}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		got := fmt.Sprint(exec.Results()[1].Output)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("map-only outputs differ between modes")
		}
	}
}
