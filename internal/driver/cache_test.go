package driver

import (
	"strings"
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/metrics"
	"s3sched/internal/sim"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// End-to-end cache telemetry: an engine run with a store cache must
// fold hit/miss counts into the run's Collector, export them through
// the registry instruments, and emit cache-hit span events when trace
// wiring is requested.
func TestEngineCacheTelemetry(t *testing.T) {
	store, plan, exec, metas := realSetup(t, 8, 2)
	if _, err := store.EnableCache(1 << 20); err != nil {
		t.Fatal(err)
	}
	log := trace.MustNew(4096)
	exec.WireCacheTrace(log)
	reg := metrics.NewRegistry()
	arrivals := []Arrival{
		{Job: metas[0], At: 0},
		{Job: metas[1], At: 1}, // staggered: job 2 wraps and re-reads
	}
	res, err := RunOpts(core.New(plan, nil), exec, arrivals, Options{
		Spans:   log,
		Metrics: metrics.NewRunMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Metrics.CacheStats()
	if cs.Hits == 0 || cs.Misses == 0 {
		t.Fatalf("collector cache stats = %+v, want activity folded from the store", cs)
	}
	prom := promText(t, reg)
	for _, want := range []string{"s3_cache_hits_total", "s3_cache_misses_total", "s3_cache_hit_ratio"} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus export missing %s", want)
		}
	}
	var hitEvents int
	for _, ev := range log.Events() {
		if ev.Kind == trace.CacheHit {
			hitEvents++
		}
	}
	if int64(hitEvents) != cs.Hits {
		t.Errorf("trace logged %d cache-hit events, collector counted %d", hitEvents, cs.Hits)
	}
}

// WireCacheTrace on an executor whose store has no cache is a no-op.
func TestWireCacheTraceWithoutCache(t *testing.T) {
	_, plan, exec, metas := realSetup(t, 4, 1)
	log := trace.MustNew(64)
	exec.WireCacheTrace(log)
	if _, err := Run(core.New(plan, nil), exec, []Arrival{{Job: metas[0], At: 0}}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range log.Events() {
		if ev.Kind == trace.CacheHit || ev.Kind == trace.CacheEvict {
			t.Fatalf("cache event logged with no cache installed: %+v", ev)
		}
	}
}

// The sim executor implements CacheStatsSource too: driver runs fold
// its warm-set accounting the same way.
func TestSimCacheStatsFolded(t *testing.T) {
	store := dfs.MustStore(4, 1)
	f, err := store.AddMetaFile("input", 8, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	exec := sim.NewExecutor(sim.NewCluster(4, 1), store, telemetryModel)
	if err := exec.EnableCache(8*64<<20, 0.1); err != nil {
		t.Fatal(err)
	}
	arrivals := []Arrival{
		{Job: job(1), At: 0},
		{Job: job(2), At: vclock.Time(3)},
	}
	res, err := Run(core.New(plan, nil), exec, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if cs := res.Metrics.CacheStats(); cs.Misses == 0 {
		t.Fatalf("collector cache stats = %+v, want sim misses folded", cs)
	}
}
