package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanLifecycle(t *testing.T) {
	l := MustNew(16)
	run := l.StartSpan(0, "run", SpanOpts{Cat: "driver", Job: -1, Segment: -1,
		Args: []Arg{{"scheme", "s3"}}})
	if run == 0 {
		t.Fatal("StartSpan returned 0 on a non-full log")
	}
	round := l.StartSpan(1, "round", SpanOpts{Cat: "driver", Parent: run, Job: -1, Segment: 2})
	sub := l.StartSpan(1, "subjob", SpanOpts{Cat: "driver", Parent: round, Job: 0, Segment: 2})
	l.EndSpan(sub, 3)
	l.EndSpan(round, 4, Arg{"batch", "1"})
	l.EndSpan(run, 5)

	spans := l.Spans()
	if len(spans) != 3 {
		t.Fatalf("Spans() = %d, want 3", len(spans))
	}
	if spans[0].Name != "run" || spans[0].Parent != 0 || !spans[0].Ended || spans[0].End != 5 {
		t.Fatalf("run span = %+v", spans[0])
	}
	if spans[1].Parent != run || spans[1].Segment != 2 {
		t.Fatalf("round span = %+v", spans[1])
	}
	if spans[2].Parent != round || spans[2].Job != 0 || spans[2].Start != 1 || spans[2].End != 3 {
		t.Fatalf("subjob span = %+v", spans[2])
	}
	// Args appended at end land after start args.
	if got := spans[1].Args; len(got) != 1 || got[0] != (Arg{"batch", "1"}) {
		t.Fatalf("round args = %+v", got)
	}
	if spans[0].Args[0] != (Arg{"scheme", "s3"}) {
		t.Fatalf("run args = %+v", spans[0].Args)
	}
}

func TestSpanNilAndZeroSafe(t *testing.T) {
	var l *Log
	if id := l.StartSpan(0, "x", SpanOpts{}); id != 0 {
		t.Fatalf("nil StartSpan = %d, want 0", id)
	}
	l.EndSpan(0, 1)
	l.EndSpan(7, 1) // unknown id on nil log
	if l.Spans() != nil || l.DroppedSpans() != 0 {
		t.Fatal("nil log should be inert")
	}

	real := MustNew(4)
	real.EndSpan(0, 1)  // absent span
	real.EndSpan(99, 1) // unknown id
	if len(real.Spans()) != 0 {
		t.Fatal("EndSpan should not create spans")
	}
}

func TestSpanOverflowDropsNewKeepsParents(t *testing.T) {
	l := MustNew(2)
	a := l.StartSpan(0, "a", SpanOpts{Job: -1, Segment: -1})
	b := l.StartSpan(1, "b", SpanOpts{Parent: a, Job: -1, Segment: -1})
	c := l.StartSpan(2, "c", SpanOpts{Parent: b, Job: -1, Segment: -1})
	if c != 0 {
		t.Fatalf("overflow StartSpan = %d, want 0", c)
	}
	if l.DroppedSpans() != 1 {
		t.Fatalf("DroppedSpans = %d, want 1", l.DroppedSpans())
	}
	// Retained spans are the OLDEST — parents stay for their children.
	spans := l.Spans()
	if len(spans) != 2 || spans[0].ID != a || spans[1].ID != b {
		t.Fatalf("spans = %+v", spans)
	}
	// Ending a retained span still works after overflow.
	l.EndSpan(b, 9)
	if got := l.Spans()[1]; !got.Ended || got.End != 9 {
		t.Fatalf("b after end = %+v", got)
	}
}

func TestSpansReturnsCopies(t *testing.T) {
	l := MustNew(4)
	id := l.StartSpan(0, "a", SpanOpts{Job: -1, Segment: -1, Args: []Arg{{"k", "v"}}})
	got := l.Spans()
	got[0].Name = "mutated"
	got[0].Args[0] = Arg{"x", "y"}
	l.EndSpan(id, 1)
	again := l.Spans()
	if again[0].Name != "a" || again[0].Args[0] != (Arg{"k", "v"}) {
		t.Fatalf("Spans() aliases internal state: %+v", again[0])
	}
}

// TestConcurrentSpansExactAccounting hammers StartSpan/EndSpan from
// writers while readers snapshot, then checks the books balance
// exactly: every attempted span was either retained or counted dropped.
func TestConcurrentSpansExactAccounting(t *testing.T) {
	const (
		writers  = 8
		perGorou = 50
		capacity = 100
	)
	l := MustNew(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGorou; i++ {
				id := l.StartSpan(0, "s", SpanOpts{Job: w, Segment: -1})
				l.EndSpan(id, 1)
			}
		}(w)
	}
	// Concurrent readers must not disturb accounting.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = l.Spans()
				_ = l.DroppedSpans()
			}
		}()
	}
	wg.Wait()
	got, dropped := len(l.Spans()), l.DroppedSpans()
	if got != capacity {
		t.Fatalf("retained %d spans, want %d", got, capacity)
	}
	if got+dropped != writers*perGorou {
		t.Fatalf("retained %d + dropped %d != attempted %d", got, dropped, writers*perGorou)
	}
	for _, s := range l.Spans() {
		if !s.Ended {
			t.Fatalf("span %d never ended: %+v", s.ID, s)
		}
	}
}

// TestConcurrentAddExactAccounting is the event-ring analogue: the
// ring evicts oldest, so retained + dropped must equal total adds.
func TestConcurrentAddExactAccounting(t *testing.T) {
	const (
		writers  = 8
		perGorou = 50
		capacity = 100
	)
	l := MustNew(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGorou; i++ {
				l.Addf(0, JobSubmitted, w, -1, "i=%d", i)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = l.Events()
				_ = l.Dropped()
			}
		}()
	}
	wg.Wait()
	if got := len(l.Events()); got != capacity {
		t.Fatalf("retained %d events, want %d", got, capacity)
	}
	if got, dropped := len(l.Events()), l.Dropped(); got+dropped != writers*perGorou {
		t.Fatalf("retained %d + dropped %d != added %d", got, dropped, writers*perGorou)
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	l := MustNew(16)
	run := l.StartSpan(0, "run", SpanOpts{Cat: "driver", Job: -1, Segment: -1})
	sub := l.StartSpan(0.5, "subjob", SpanOpts{Cat: "driver", Parent: run, Job: 2, Segment: 0})
	l.EndSpan(sub, 1.5)
	l.EndSpan(run, 2)
	l.Addf(1, RoundLaunched, -1, 0, "batch=1")
	open := l.StartSpan(1.8, "round", SpanOpts{Cat: "driver", Parent: run, Job: -1, Segment: 1})
	_ = open // deliberately left open

	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var phases []string
	var haveJobTrack, haveOpen bool
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases = append(phases, ph)
		if args, ok := ev["args"].(map[string]any); ok {
			if args["name"] == "job 2" {
				haveJobTrack = true
			}
			if args["open"] == true {
				haveOpen = true
			}
		}
		if ph == "X" {
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("X event without dur: %v", ev)
			}
		}
	}
	joined := strings.Join(phases, "")
	if !strings.Contains(joined, "M") || !strings.Contains(joined, "X") || !strings.Contains(joined, "i") {
		t.Fatalf("phases = %v, want metadata+complete+instant", phases)
	}
	if !haveJobTrack {
		t.Fatal("missing thread_name metadata for job 2's track")
	}
	if !haveOpen {
		t.Fatal("unended span should carry open=true")
	}
	// Microsecond conversion: subjob started at 0.5s → ts 500000.
	var found bool
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "subjob" && ev["ts"] == float64(500000) {
			found = true
		}
	}
	if !found {
		t.Fatal("subjob ts not in microseconds")
	}

	// Nil log still writes a valid document.
	buf.Reset()
	var nilLog *Log
	if err := nilLog.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatalf("nil log chrome trace = %q", buf.String())
	}
}
