package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestAddAndEvents(t *testing.T) {
	l := MustNew(10)
	l.Add(Event{At: 1, Kind: JobSubmitted, Job: 0, Segment: -1})
	l.Add(Event{At: 2, Kind: RoundLaunched, Job: -1, Segment: 3})
	ev := l.Events()
	if len(ev) != 2 {
		t.Fatalf("len(Events) = %d, want 2", len(ev))
	}
	if ev[0].Kind != JobSubmitted || ev[1].Segment != 3 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestRingEviction(t *testing.T) {
	l := MustNew(3)
	for i := 0; i < 5; i++ {
		l.Add(Event{At: 0, Kind: JobSubmitted, Job: i, Segment: -1})
	}
	ev := l.Events()
	if len(ev) != 3 {
		t.Fatalf("len = %d, want 3", len(ev))
	}
	if ev[0].Job != 2 || ev[2].Job != 4 {
		t.Fatalf("oldest events should be evicted, got %+v", ev)
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", l.Dropped())
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(Event{})
	l.Addf(0, JobCompleted, 1, 2, "x=%d", 1)
	if l.Events() != nil || l.Dropped() != 0 || len(l.OfKind(JobCompleted)) != 0 {
		t.Fatal("nil log should be inert")
	}
}

func TestAddf(t *testing.T) {
	l := MustNew(4)
	l.Addf(5, SubJobAligned, 2, 1, "batch=%d", 3)
	ev := l.Events()
	if len(ev) != 1 || ev[0].Detail != "batch=3" {
		t.Fatalf("events = %+v", ev)
	}
}

func TestOfKind(t *testing.T) {
	l := MustNew(10)
	l.Addf(0, JobSubmitted, 0, -1, "")
	l.Addf(1, RoundLaunched, -1, 0, "")
	l.Addf(2, JobSubmitted, 1, -1, "")
	got := l.OfKind(JobSubmitted)
	if len(got) != 2 || got[0].Job != 0 || got[1].Job != 1 {
		t.Fatalf("OfKind = %+v", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 1.5, Kind: RoundLaunched, Job: 2, Segment: 4, Detail: "n=3"}
	s := e.String()
	for _, want := range []string{"1.500s", "round-launched", "job=2", "seg=4", "n=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Event.String() = %q missing %q", s, want)
		}
	}
	// Negative job/segment are omitted.
	s2 := Event{At: 0, Kind: JobCompleted, Job: -1, Segment: -1}.String()
	if strings.Contains(s2, "job=") || strings.Contains(s2, "seg=") {
		t.Fatalf("Event.String() = %q should omit job/seg", s2)
	}
}

func TestLogString(t *testing.T) {
	l := MustNew(4)
	l.Addf(0, JobSubmitted, 0, -1, "")
	l.Addf(1, JobCompleted, 0, -1, "")
	s := l.String()
	if lines := strings.Count(s, "\n"); lines != 2 {
		t.Fatalf("String() has %d lines, want 2:\n%s", lines, s)
	}
}

func TestKindString(t *testing.T) {
	if JobSubmitted.String() != "job-submitted" {
		t.Fatalf("Kind.String = %q", JobSubmitted.String())
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestNewRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		if l, err := New(c); err == nil || l != nil {
			t.Errorf("New(%d) = (%v, %v), want (nil, error)", c, l, err)
		}
	}
	if l, err := New(1); err != nil || l == nil {
		t.Fatalf("New(1) = (%v, %v), want a log", l, err)
	}
}

func TestMustNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) should panic")
		}
	}()
	MustNew(0)
}

func TestConcurrentAdd(t *testing.T) {
	l := MustNew(1000)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Addf(0, JobSubmitted, id, -1, "j=%d", j)
			}
		}(i)
	}
	wg.Wait()
	if got := len(l.Events()); got != 400 {
		t.Fatalf("len(Events) = %d, want 400", got)
	}
}

func TestWriteJSON(t *testing.T) {
	l := MustNew(8)
	l.Addf(1.5, RoundLaunched, 0, 3, "n=2")
	l.Addf(2.0, JobCompleted, 1, -1, "")
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("events = %d, want 2", len(decoded))
	}
	if decoded[0]["kind"] != "round-launched" || decoded[0]["segment"] != float64(4) {
		t.Errorf("event 0 = %v", decoded[0])
	}
	if decoded[0]["job"] != float64(1) {
		t.Errorf("job id not shifted: %v", decoded[0])
	}
	if _, has := decoded[1]["segment"]; has {
		t.Errorf("absent segment should be omitted: %v", decoded[1])
	}
	// Nil log writes an empty array.
	var nilLog *Log
	buf.Reset()
	if err := nilLog.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" && s != "null" {
		t.Errorf("nil log JSON = %q", s)
	}
}

func TestRenderTimeline(t *testing.T) {
	l := MustNew(32)
	l.Addf(0, RoundLaunched, -1, 0, "batch 1")
	l.Addf(10, RoundFinished, -1, 0, "")
	l.Addf(10, RoundLaunched, -1, 1, "batch 2")
	l.Addf(30, RoundFinished, -1, 1, "")
	out := l.RenderTimeline(40)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline = %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "2 rounds") {
		t.Errorf("header = %q", lines[0])
	}
	// Round 2 is twice as long as round 1 and starts after it.
	r1hashes := strings.Count(lines[1], "#")
	r2hashes := strings.Count(lines[2], "#")
	if r2hashes < r1hashes {
		t.Errorf("round 2 bar (%d) should be wider than round 1 (%d):\n%s", r2hashes, r1hashes, out)
	}
	if !strings.Contains(lines[1], "seg 0") || !strings.Contains(lines[2], "seg 1") {
		t.Errorf("segment labels missing:\n%s", out)
	}
	if !strings.Contains(lines[1], "batch 1") {
		t.Errorf("detail missing:\n%s", out)
	}
}

func TestRenderTimelineEdgeCases(t *testing.T) {
	if out := MustNew(4).RenderTimeline(40); out != "" {
		t.Errorf("empty log timeline = %q", out)
	}
	// Unfinished round is ignored.
	l := MustNew(8)
	l.Addf(0, RoundLaunched, -1, 0, "")
	if out := l.RenderTimeline(40); out != "" {
		t.Errorf("open round timeline = %q", out)
	}
	// Zero-duration rounds still render a bar.
	l.Addf(0, RoundFinished, -1, 0, "")
	out := l.RenderTimeline(5) // tiny width is clamped
	if !strings.Contains(out, "#") {
		t.Errorf("zero-duration round has no bar:\n%s", out)
	}
}
