// Package trace records structured scheduler events into a bounded
// ring buffer. Tests assert on the decision sequence a scheduler made;
// cmd/s3demo prints it for humans. Tracing is always cheap enough to
// leave on: appending an event is a mutex-protected slice write.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"s3sched/internal/vclock"
)

// Kind classifies an event.
type Kind int

const (
	// JobSubmitted records a job entering a scheduler.
	JobSubmitted Kind = iota
	// JobCompleted records a job leaving a scheduler with all work done.
	JobCompleted
	// RoundLaunched records a batch of work handed to the execution engine.
	RoundLaunched
	// RoundFinished records the engine reporting a round complete.
	RoundFinished
	// SubJobAligned records a sub-job being aligned into a waiting batch.
	SubJobAligned
	// SegmentAdvanced records the circular cursor moving to a new segment.
	SegmentAdvanced
	// NodeExcluded records the slot checker removing a slow node.
	NodeExcluded
	// NodeRestored records a previously slow node rejoining the pool.
	NodeRestored
	// BatchAdjusted records dynamic sub-job adjustment rewriting a
	// waiting batch.
	BatchAdjusted
	// MapStageFinished records a pipelined round's scan/map stage
	// completing; the round's reduce stage is still draining when the
	// next round launches (RoundFinished marks the reduce end).
	MapStageFinished
	// AttemptFailed records one failed block-read attempt (injected or
	// real); the engine retries or fails over per its retry policy.
	AttemptFailed
	// NodeDown records a node leaving service — crashed, or blacklisted
	// after consecutive failures.
	NodeDown
	// SubJobRequeued records a sub-job returned to the queue after its
	// round was lost; the segment cursor does not advance past it.
	SubJobRequeued
	// JobAborted records a job removed from scheduling after a terminal
	// failure of its own map/reduce code.
	JobAborted
	// TaskCommitted records a map attempt winning its block's commit
	// race — the output every batched job sees for the block.
	TaskCommitted
	// TaskSpeculated records a straggler map attempt duplicated on
	// another node (speculative execution).
	TaskSpeculated
	// TaskDispatched records a master issuing an RPC task; its Detail
	// starts with "corr=<id>", matching the serving worker's TaskServed
	// event so distributed task lifetimes can be stitched together.
	TaskDispatched
	// TaskServed records a worker completing a dispatched RPC task;
	// Detail carries the same corr=<id> the master logged.
	TaskServed
	// CacheHit records a block read served from the node-local block
	// cache instead of disk.
	CacheHit
	// CacheEvict records the block cache discarding a block to fit its
	// byte budget.
	CacheEvict
	// JobAdmitted records the runtime engine admitting a live-submitted
	// job into the scheduler's current circular pass — the online
	// arrival window batch traces pre-record and a daemon serves over
	// HTTP.
	JobAdmitted
	// WorkerRegistered records a worker joining the cluster through the
	// control plane (or being installed by a static dial); Detail
	// carries the worker id and its task address.
	WorkerRegistered
	// WorkerLost records the master declaring a worker dead — broken
	// control connection or heartbeat silence past the dead deadline.
	WorkerLost
	// WorkerRejoined records a restarted worker re-registering under
	// its old identity, replacing the dead incarnation mid-run.
	WorkerRejoined
	// JournalRecovered records a master booting from a non-empty
	// write-ahead journal; Detail carries how many jobs were resumed
	// from the snapshot and how many were resubmitted from scratch.
	JournalRecovered
	// TaskDeadlineExceeded records a worker RPC cancelled by the
	// per-task deadline watchdog; the task fails over to the next live
	// worker exactly like a transport error.
	TaskDeadlineExceeded
	// CachePrefetch records a speculatively read-ahead block landing in
	// the node-local block cache before any job demanded it.
	CachePrefetch
)

var kindNames = map[Kind]string{
	JobSubmitted:     "job-submitted",
	JobCompleted:     "job-completed",
	RoundLaunched:    "round-launched",
	RoundFinished:    "round-finished",
	SubJobAligned:    "subjob-aligned",
	SegmentAdvanced:  "segment-advanced",
	NodeExcluded:     "node-excluded",
	NodeRestored:     "node-restored",
	BatchAdjusted:    "batch-adjusted",
	MapStageFinished: "mapstage-finished",
	AttemptFailed:    "attempt-failed",
	NodeDown:         "node-down",
	SubJobRequeued:   "subjob-requeued",
	JobAborted:       "job-aborted",
	TaskCommitted:    "task-committed",
	TaskSpeculated:   "task-speculated",
	TaskDispatched:   "task-dispatched",
	TaskServed:       "task-served",
	CacheHit:         "cache-hit",
	CacheEvict:       "cache-evict",
	JobAdmitted:      "job-admitted",
	WorkerRegistered: "worker-registered",
	WorkerLost:       "worker-lost",
	WorkerRejoined:   "worker-rejoined",

	JournalRecovered:     "journal-recovered",
	TaskDeadlineExceeded: "task-deadline-exceeded",
	CachePrefetch:        "cache-prefetch",
}

// String returns the stable lowercase name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one recorded scheduler decision.
type Event struct {
	At   vclock.Time
	Kind Kind
	// Job is the job the event concerns, or -1 when not job-specific.
	Job int
	// Segment is the segment index concerned, or -1.
	Segment int
	// Detail is a free-form human-readable annotation.
	Detail string
}

// String renders the event on one line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-17s", e.At, e.Kind)
	if e.Job >= 0 {
		fmt.Fprintf(&b, " job=%d", e.Job)
	}
	if e.Segment >= 0 {
		fmt.Fprintf(&b, " seg=%d", e.Segment)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// Log is a bounded ring buffer of events plus a bounded store of
// hierarchical spans (see span.go). The zero value is unusable; use
// New. A nil *Log is valid and discards all events and spans, so
// components can accept an optional trace without nil checks at every
// call site.
type Log struct {
	mu      sync.Mutex
	cap     int
	events  []Event
	dropped int

	spans        []Span
	spanIdx      map[SpanID]int
	nextSpan     SpanID
	droppedSpans int
}

// New returns a log that retains at most capacity events (discarding
// the oldest when full) and at most capacity spans (refusing new ones
// when full, so parents are never evicted from under their children).
// Capacity must be positive.
func New(capacity int) (*Log, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: capacity must be positive, got %d", capacity)
	}
	return &Log{cap: capacity, nextSpan: 1}, nil
}

// MustNew is New, panicking on error. For tests and static capacities.
func MustNew(capacity int) *Log {
	l, err := New(capacity)
	if err != nil {
		panic(err)
	}
	return l
}

// Add appends an event. Safe on a nil receiver (no-op).
func (l *Log) Add(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) == l.cap {
		copy(l.events, l.events[1:])
		l.events = l.events[:l.cap-1]
		l.dropped++
	}
	l.events = append(l.events, e)
}

// Addf records an event with a formatted detail string. Safe on nil.
func (l *Log) Addf(at vclock.Time, k Kind, job, segment int, format string, args ...any) {
	if l == nil {
		return
	}
	l.Add(Event{At: at, Kind: k, Job: job, Segment: segment, Detail: fmt.Sprintf(format, args...)})
}

// Events returns a copy of the retained events in order of recording.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Dropped reports how many events were discarded due to capacity.
func (l *Log) Dropped() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// OfKind returns the retained events of kind k, in order.
func (l *Log) OfKind(k Kind) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// String renders all retained events, one per line.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
