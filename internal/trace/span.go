package trace

import "s3sched/internal/vclock"

// SpanID names a recorded span. 0 is the absent span: the parent of a
// root, or the result of starting a span on a nil or full log. Every
// span operation accepts id 0 and does nothing, so callers never need
// to check whether a start succeeded.
type SpanID int

// Arg is one key/value tag on a span. Values are strings so exporters
// never have to guess at types; callers format numbers themselves.
type Arg struct {
	Key   string
	Value string
}

// Span is one timed operation in a run's hierarchy: run → round →
// scan-stage/reduce-stage → per-job sub-job. Start and End are vclock
// times (virtual for sims, wall-derived for engine runs), so span
// trees from a simulator and the real engine are diffable shape-for-
// shape even though their absolute times differ.
type Span struct {
	ID     SpanID
	Parent SpanID
	// Name is the operation ("run", "round", "scan-stage", ...).
	Name string
	// Cat groups spans for exporters ("driver", "jqm", "engine", ...).
	Cat   string
	Start vclock.Time
	End   vclock.Time
	// Ended reports whether EndSpan was called; an unended span is
	// exported as a zero-duration open span.
	Ended bool
	// Job is the job the span concerns, or -1 when not job-specific.
	Job int
	// Segment is the segment index concerned, or -1.
	Segment int
	Args    []Arg
}

// SpanOpts carries the optional fields of StartSpan. Job and Segment
// default to 0, which is a valid id; callers that do not mean job 0 or
// segment 0 must set them to -1 explicitly (every call site in this
// repo does).
type SpanOpts struct {
	Parent  SpanID
	Cat     string
	Job     int
	Segment int
	Args    []Arg
}

// StartSpan records the start of an operation and returns its id, or 0
// if the log is nil or its span store is full. A full store drops the
// new span (and counts it in DroppedSpans) rather than evicting an old
// one, so a retained span's parent chain is always intact.
func (l *Log) StartSpan(at vclock.Time, name string, o SpanOpts) SpanID {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.spans) >= l.cap {
		l.droppedSpans++
		return 0
	}
	id := l.nextSpan
	l.nextSpan++
	if l.spanIdx == nil {
		l.spanIdx = make(map[SpanID]int)
	}
	l.spanIdx[id] = len(l.spans)
	l.spans = append(l.spans, Span{
		ID:      id,
		Parent:  o.Parent,
		Name:    name,
		Cat:     o.Cat,
		Start:   at,
		End:     at,
		Job:     o.Job,
		Segment: o.Segment,
		Args:    append([]Arg(nil), o.Args...),
	})
	return id
}

// EndSpan closes span id at the given time, appending any extra args.
// Safe on a nil log, on id 0, on an unknown id, and on a span already
// ended (the later end wins, matching retry semantics).
func (l *Log) EndSpan(id SpanID, at vclock.Time, args ...Arg) {
	if l == nil || id == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	i, ok := l.spanIdx[id]
	if !ok {
		return
	}
	s := &l.spans[i]
	s.End = at
	s.Ended = true
	s.Args = append(s.Args, args...)
}

// Spans returns a copy of the retained spans in start order.
func (l *Log) Spans() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, len(l.spans))
	copy(out, l.spans)
	for i := range out {
		out[i].Args = append([]Arg(nil), l.spans[i].Args...)
	}
	return out
}

// DroppedSpans reports how many StartSpan calls were refused because
// the span store was full.
func (l *Log) DroppedSpans() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.droppedSpans
}
