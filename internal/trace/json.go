package trace

import (
	"encoding/json"
	"io"
)

// jsonEvent is the export shape of one event.
type jsonEvent struct {
	At      float64 `json:"at"`
	Kind    string  `json:"kind"`
	Job     int     `json:"job,omitempty"`
	Segment int     `json:"segment,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// WriteJSON serializes the retained events as a JSON array, one object
// per event, for external analysis tooling. Negative job/segment ids
// (meaning "not applicable") are omitted via omitempty... but zero is
// a valid id, so they are shifted: exported ids are 1-based, 0 means
// absent.
func (l *Log) WriteJSON(w io.Writer) error {
	events := l.Events()
	out := make([]jsonEvent, len(events))
	for i, e := range events {
		je := jsonEvent{
			At:     float64(e.At),
			Kind:   e.Kind.String(),
			Detail: e.Detail,
		}
		if e.Job >= 0 {
			je.Job = e.Job + 1
		}
		if e.Segment >= 0 {
			je.Segment = e.Segment + 1
		}
		out[i] = je
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
