package trace

import (
	"fmt"
	"strings"

	"s3sched/internal/vclock"
)

// Timeline rendering: an ASCII Gantt chart of a run's rounds, built
// from the RoundLaunched/RoundFinished event pairs a scheduler logged.
// Each row is one round; the bar's position and width are proportional
// to virtual time.

// span is one launched-finished round interval.
type span struct {
	start, end vclock.Time
	segment    int
	detail     string
}

// RenderTimeline draws the log's rounds as a Gantt chart width
// characters wide. It returns an empty string when the log holds no
// complete round.
func (l *Log) RenderTimeline(width int) string {
	if width < 20 {
		width = 20
	}
	events := l.Events()
	var spans []span
	var open *span
	for _, e := range events {
		switch e.Kind {
		case RoundLaunched:
			open = &span{start: e.At, segment: e.Segment, detail: e.Detail}
		case RoundFinished:
			if open != nil {
				open.end = e.At
				spans = append(spans, *open)
				open = nil
			}
		}
	}
	if len(spans) == 0 {
		return ""
	}
	t0 := spans[0].start
	t1 := spans[0].end
	for _, s := range spans {
		if s.start < t0 {
			t0 = s.start
		}
		if s.end > t1 {
			t1 = s.end
		}
	}
	total := float64(t1 - t0)
	if total <= 0 {
		total = 1
	}
	scale := float64(width) / total

	var b strings.Builder
	fmt.Fprintf(&b, "timeline %v .. %v (%d rounds)\n", t0, t1, len(spans))
	for i, s := range spans {
		lead := int(float64(s.start-t0) * scale)
		bar := int(float64(s.end-s.start) * scale)
		if bar < 1 {
			bar = 1
		}
		if lead+bar > width {
			bar = width - lead
			if bar < 1 {
				bar = 1
				lead = width - 1
			}
		}
		label := fmt.Sprintf("r%-3d seg %-3d", i+1, s.segment)
		if s.segment < 0 {
			label = fmt.Sprintf("r%-3d         ", i+1)
		}
		fmt.Fprintf(&b, "%s |%s%s%s| %s\n",
			label,
			strings.Repeat(" ", lead),
			strings.Repeat("#", bar),
			strings.Repeat(" ", width-lead-bar),
			s.detail)
	}
	return b.String()
}
