package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event exporter: WriteChromeTrace renders the log's
// spans and events in the Trace Event Format consumed by
// about://tracing and Perfetto (ui.perfetto.dev → "Open trace file").
// Spans become complete ("X") slices, flat events become instants
// ("i"), and each job gets its own named track so a run reads as a
// swim-lane diagram: driver rounds on track 0, one lane per job.

// chromeEvent is one object in the traceEvents array. Fields follow
// the Trace Event Format: ts/dur are microseconds, pid/tid pick the
// track, ph is the phase ("X" complete, "i" instant, "M" metadata).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object format ({"traceEvents":[...]}),
// which Perfetto prefers over the bare-array form.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1

// driverTID is the track for spans and events not tied to a job; job j
// lands on track j+1 (trace job ids start at 0).
const driverTID = 0

func chromeTID(job int) int {
	if job < 0 {
		return driverTID
	}
	return job + 1
}

// usec converts a vclock time or duration (seconds) to microseconds.
func usec(seconds float64) float64 { return seconds * 1e6 }

// WriteChromeTrace serializes the retained spans and events as Chrome
// trace-event JSON. Output is deterministic for a given log: metadata
// first (tracks sorted by tid), then spans in start order, then events
// in record order.
func (l *Log) WriteChromeTrace(w io.Writer) error {
	spans := l.Spans()
	events := l.Events()

	tids := map[int]string{driverTID: "driver"}
	for _, s := range spans {
		if s.Job >= 0 {
			tids[chromeTID(s.Job)] = fmt.Sprintf("job %d", s.Job)
		}
	}
	for _, e := range events {
		if e.Job >= 0 {
			tids[chromeTID(e.Job)] = fmt.Sprintf("job %d", e.Job)
		}
	}

	out := make([]chromeEvent, 0, 1+len(tids)+len(spans)+len(events))
	out = append(out, chromeEvent{
		Name: "process_name", Phase: "M", PID: chromePID, TID: driverTID,
		Args: map[string]any{"name": "s3sched"},
	})
	order := make([]int, 0, len(tids))
	for tid := range tids {
		order = append(order, tid)
	}
	sort.Ints(order)
	for _, tid := range order {
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: chromePID, TID: tid,
			Args: map[string]any{"name": tids[tid]},
		})
	}

	for _, s := range spans {
		dur := usec(float64(s.End) - float64(s.Start))
		args := map[string]any{}
		if s.Job >= 0 {
			args["job"] = s.Job
		}
		if s.Segment >= 0 {
			args["segment"] = s.Segment
		}
		if !s.Ended {
			args["open"] = true
		}
		for _, a := range s.Args {
			args[a.Key] = a.Value
		}
		out = append(out, chromeEvent{
			Name: s.Name, Cat: s.Cat, Phase: "X",
			TS: usec(float64(s.Start)), Dur: &dur,
			PID: chromePID, TID: chromeTID(s.Job), Args: args,
		})
	}

	for _, e := range events {
		args := map[string]any{}
		if e.Job >= 0 {
			args["job"] = e.Job
		}
		if e.Segment >= 0 {
			args["segment"] = e.Segment
		}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		out = append(out, chromeEvent{
			Name: e.Kind.String(), Cat: "event", Phase: "i",
			TS: usec(float64(e.At)), PID: chromePID, TID: chromeTID(e.Job),
			Scope: "t", Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}
