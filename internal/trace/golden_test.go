package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenLog builds a small fixed run — two rounds, two jobs, a requeue
// — exercising every export surface deterministically.
func goldenLog() *Log {
	l := MustNew(64)
	run := l.StartSpan(0, "run", SpanOpts{Cat: "driver", Job: -1, Segment: -1,
		Args: []Arg{{"scheme", "s3"}}})

	l.Addf(0, JobSubmitted, 0, -1, "wordcount weight=1")
	l.Addf(0, JobSubmitted, 1, -1, "wordcount weight=2")

	r0 := l.StartSpan(0, "round", SpanOpts{Cat: "driver", Parent: run, Job: -1, Segment: 0,
		Args: []Arg{{"seq", "0"}, {"batch", "2"}}})
	l.Addf(0, RoundLaunched, -1, 0, "s3 merged sub-job of 2 job(s)")
	scan0 := l.StartSpan(0, "scan-stage", SpanOpts{Cat: "driver", Parent: r0, Job: -1, Segment: 0})
	l.EndSpan(scan0, 6.5)
	red0 := l.StartSpan(6.5, "reduce-stage", SpanOpts{Cat: "driver", Parent: r0, Job: -1, Segment: 0})
	l.EndSpan(red0, 10)
	for job := 0; job < 2; job++ {
		sj := l.StartSpan(0, "subjob", SpanOpts{Cat: "driver", Parent: r0, Job: job, Segment: 0})
		l.EndSpan(sj, 10)
	}
	l.Addf(10, RoundFinished, -1, 0, "")
	l.EndSpan(r0, 10)

	r1 := l.StartSpan(10, "round", SpanOpts{Cat: "driver", Parent: run, Job: -1, Segment: 1,
		Args: []Arg{{"seq", "1"}, {"batch", "1"}}})
	l.Addf(10, RoundLaunched, -1, 1, "s3 merged sub-job of 1 job(s)")
	l.Addf(14, AttemptFailed, -1, 1, "node 3 read fault")
	l.Addf(14, SubJobRequeued, 1, 1, "round lost")
	l.Addf(30, RoundFinished, -1, 1, "")
	l.EndSpan(r1, 30, Arg{"requeued", "true"})

	l.Addf(30, JobCompleted, 0, -1, "")
	l.EndSpan(run, 30, Arg{"rounds", "2"})
	return l
}

func TestGolden(t *testing.T) {
	log := goldenLog()
	cases := []struct {
		name   string
		render func(l *Log) ([]byte, error)
	}{
		{"events.json", func(l *Log) ([]byte, error) {
			var buf bytes.Buffer
			err := l.WriteJSON(&buf)
			return buf.Bytes(), err
		}},
		{"chrome_trace.json", func(l *Log) ([]byte, error) {
			var buf bytes.Buffer
			err := l.WriteChromeTrace(&buf)
			return buf.Bytes(), err
		}},
		{"timeline.txt", func(l *Log) ([]byte, error) {
			return []byte(l.RenderTimeline(60)), nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.render(log)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/trace -update` to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s\nRe-run with -update if the change is intended.",
					tc.name, got, want)
			}
		})
	}
}

// TestGoldenStable renders twice and insists on byte identity — the
// exporters must be deterministic functions of the log, or the golden
// files (and the byte-identical-snapshot acceptance bar) are meaningless.
func TestGoldenStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenLog().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenLog().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteChromeTrace is not deterministic")
	}
}
