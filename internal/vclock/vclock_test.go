package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtZero(t *testing.T) {
	v := NewVirtual()
	if v.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", v.Now())
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	v.Advance(2.5)
	v.Advance(1.5)
	if got := v.Now(); got != 4 {
		t.Fatalf("Now() = %v, want 4", got)
	}
}

func TestVirtualAdvanceTo(t *testing.T) {
	v := NewVirtual()
	v.AdvanceTo(10)
	if v.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", v.Now())
	}
	v.AdvanceTo(10) // same time is fine
	if v.Now() != 10 {
		t.Fatalf("Now() = %v, want 10", v.Now())
	}
}

func TestVirtualRejectsBackwards(t *testing.T) {
	v := NewVirtual()
	v.Advance(5)
	for _, fn := range []func(){
		func() { v.Advance(-1) },
		func() { v.AdvanceTo(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on backwards time")
				}
			}()
			fn()
		}()
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.Advance(1)
			}
		}()
	}
	wg.Wait()
	if got := v.Now(); got != 800 {
		t.Fatalf("Now() = %v, want 800", got)
	}
}

func TestWallMovesForward(t *testing.T) {
	w := NewWall()
	t0 := w.Now()
	time.Sleep(5 * time.Millisecond)
	t1 := w.Now()
	if !t0.Before(t1) {
		t.Fatalf("wall clock did not advance: %v -> %v", t0, t1)
	}
}

func TestTimeArithmetic(t *testing.T) {
	var t0 Time = 10
	t1 := t0.Add(5)
	if t1 != 15 {
		t.Fatalf("Add = %v, want 15", t1)
	}
	if d := t1.Sub(t0); d != 5 {
		t.Fatalf("Sub = %v, want 5", d)
	}
	if !t0.Before(t1) || t1.Before(t0) {
		t.Fatal("Before is inconsistent")
	}
	if Duration(2.5).Seconds() != 2.5 {
		t.Fatal("Seconds() mismatch")
	}
}

func TestStringFormats(t *testing.T) {
	if got := Time(1.5).String(); got != "1.500s" {
		t.Fatalf("Time.String = %q", got)
	}
	if got := Duration(0.25).String(); got != "0.250s" {
		t.Fatalf("Duration.String = %q", got)
	}
}
