// Package vclock provides the clock abstraction shared by the real
// MapReduce engine and the discrete-event simulator.
//
// All scheduling components in this repository express time as
// vclock.Time (seconds, float64) instead of time.Time so that the same
// scheduler code can run under a wall clock (examples, live runs) or a
// virtual clock (deterministic experiments reproducing the paper's
// analytic examples exactly).
package vclock

import (
	"fmt"
	"sync"
	"time"
)

// Time is a point in time, in seconds since the clock's epoch.
type Time float64

// Duration is a span of time in seconds.
type Duration float64

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// String formats the duration as seconds with millisecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.3fs", float64(d)) }

// Seconds returns the duration as a plain float64 of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Clock is the minimal clock interface used across the repository.
type Clock interface {
	// Now returns the current time.
	Now() Time
}

// Wall is a Clock backed by the machine's monotonic wall clock.
// The epoch is the moment NewWall was called.
type Wall struct {
	start time.Time
}

// NewWall returns a wall clock whose epoch is now.
func NewWall() *Wall { return &Wall{start: time.Now()} }

// Now returns the seconds elapsed since the clock was created.
func (w *Wall) Now() Time { return Time(time.Since(w.start).Seconds()) }

// Virtual is a manually advanced Clock for deterministic simulation.
// It is safe for concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now Time
}

// NewVirtual returns a virtual clock starting at time 0.
func NewVirtual() *Virtual { return &Virtual{} }

// Now returns the current virtual time.
func (v *Virtual) Now() Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d. It panics if d is negative:
// simulated time never runs backwards, and a negative advance always
// indicates a bug in the event loop.
func (v *Virtual) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", d))
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// AdvanceTo moves the clock forward to t. It panics if t is in the past.
func (v *Virtual) AdvanceTo(t Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t < v.now {
		panic(fmt.Sprintf("vclock: AdvanceTo(%v) before now=%v", t, v.now))
	}
	v.now = t
}
