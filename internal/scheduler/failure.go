package scheduler

import (
	"fmt"

	"s3sched/internal/vclock"
)

// RoundLostError reports that a round's scan could not complete even
// after every retry and replica failover: some block had no surviving
// readable replica. The round consumed Elapsed of cluster time before
// being declared lost. Drivers recover by re-driving the round through
// a Recoverable scheduler; schedulers without recovery fail the run.
type RoundLostError struct {
	// Round is the lost round as the scheduler formed it.
	Round Round
	// Elapsed is how much virtual/wall time the failed execution
	// consumed — for crash-induced losses, typically the wait until the
	// earliest replica holder recovers, so a requeued round finds at
	// least one replica alive.
	Elapsed vclock.Duration
	// Err is the underlying failure (e.g. a *mapreduce.BlockLostError).
	Err error
}

func (e *RoundLostError) Error() string {
	return fmt.Sprintf("scheduler: round over segment %d lost after %v: %v", e.Round.Segment, e.Elapsed, e.Err)
}

func (e *RoundLostError) Unwrap() error { return e.Err }

// JobFailure is one job's terminal failure surfaced by an executor: the
// job's own map or reduce code failed, independent of infrastructure
// faults. The driver isolates it — the job is aborted, the rest of the
// workload continues.
type JobFailure struct {
	ID  JobID
	Err error
}

// Recoverable is implemented by schedulers that can recover from
// partial failure. S^3 extends its dynamic sub-job adjustment to
// failure: a lost segment round requeues the affected sub-jobs at the
// unchanged cursor; FIFO and MRShare resubmit the lost round whole.
type Recoverable interface {
	// RequeueRound returns the in-flight round returned by the last
	// NextRound to the queue after its execution was lost. The
	// scheduler must not treat the round's segment as consumed: the
	// next NextRound re-forms a round over the same segment (possibly
	// with newly aligned jobs). Called instead of RoundDone/MapDone.
	RequeueRound(r Round, now vclock.Time)
	// AbortJobs removes failed jobs from all future rounds. Called with
	// no round in flight. Aborted ids never complete.
	AbortJobs(ids []JobID, now vclock.Time)
}
