package scheduler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"s3sched/internal/dfs"
	"s3sched/internal/vclock"
)

// Property: WindowMRShare batches never exceed the size cap, and the
// members of one batch all arrived within one window of its first
// member. Every job completes exactly once.
func TestWindowBatchingProperty(t *testing.T) {
	prop := func(seed int64, n8, window8, cap8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%10) + 1
		window := vclock.Duration(window8%50) + 1
		maxBatch := int(cap8%5) + 1

		store := dfs.MustStore(2, 1)
		f, err := store.AddMetaFile("input", 2, 64)
		if err != nil {
			return false
		}
		plan, err := dfs.PlanSegments(f, 1) // 2 segments
		if err != nil {
			return false
		}
		w, err := NewWindowMRShare(plan, window, maxBatch, nil)
		if err != nil {
			return false
		}

		arrivalOf := map[JobID]vclock.Time{}
		now := vclock.Time(0)
		submitted, completed := 0, 0
		steps := 0
		for submitted < n || w.PendingJobs() > 0 {
			steps++
			if steps > 10000 {
				return false
			}
			if submitted < n && rng.Intn(2) == 0 {
				id := JobID(submitted + 1)
				if err := w.Submit(JobMeta{ID: id, File: "input"}, now); err != nil {
					return false
				}
				arrivalOf[id] = now
				submitted++
				now = now.Add(vclock.Duration(rng.Intn(20)))
				continue
			}
			r, ok := w.NextRound(now)
			if !ok {
				// Idle: advance to the wake time or push the clock.
				if wake, wok := w.NextWake(now); wok && wake > now {
					now = wake
				} else if submitted < n {
					now = now.Add(1)
				} else if w.PendingJobs() > 0 {
					return false // stuck with no timer
				}
				continue
			}
			if len(r.Jobs) > maxBatch {
				return false
			}
			// Batch members arrived within one window of the first.
			first := arrivalOf[r.Jobs[0].ID]
			for _, j := range r.Jobs {
				if arrivalOf[j.ID].Sub(first) > window {
					return false
				}
			}
			now = now.Add(vclock.Duration(rng.Intn(5)) + 1)
			completed += len(w.RoundDone(r, now))
		}
		return completed == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: Fair gives every job exactly k slices with segments in
// linear order, regardless of interleaved arrivals.
func TestFairSliceProperty(t *testing.T) {
	prop := func(seed int64, k8, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(k8%6) + 1
		n := int(n8%5) + 1

		store := dfs.MustStore(2, 1)
		f, err := store.AddMetaFile("input", k, 64)
		if err != nil {
			return false
		}
		plan, err := dfs.PlanSegments(f, 1)
		if err != nil {
			return false
		}
		fair := NewFair(plan, nil)

		segs := map[JobID][]int{}
		submitted := 0
		steps := 0
		for submitted < n || fair.PendingJobs() > 0 {
			steps++
			if steps > 10000 {
				return false
			}
			if submitted < n && (rng.Intn(2) == 0 || fair.PendingJobs() == 0) {
				id := JobID(submitted + 1)
				if err := fair.Submit(JobMeta{ID: id, File: "input"}, 0); err != nil {
					return false
				}
				submitted++
				continue
			}
			r, ok := fair.NextRound(0)
			if !ok {
				return false
			}
			if len(r.Jobs) != 1 {
				return false // fair never merges
			}
			segs[r.Jobs[0].ID] = append(segs[r.Jobs[0].ID], r.Segment)
			fair.RoundDone(r, 0)
		}
		if len(segs) != n {
			return false
		}
		for _, ss := range segs {
			if len(ss) != k {
				return false
			}
			for i, seg := range ss {
				if seg != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: MRShare with random batch splits completes every job, and
// every round's batch is exactly one configured batch.
func TestMRShareBatchProperty(t *testing.T) {
	prop := func(seed int64, n8, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%8) + 1
		k := int(k8%4) + 1
		// Random batch split summing to n.
		var sizes []int
		left := n
		for left > 0 {
			sz := rng.Intn(left) + 1
			sizes = append(sizes, sz)
			left -= sz
		}
		store := dfs.MustStore(2, 1)
		f, err := store.AddMetaFile("input", k, 64)
		if err != nil {
			return false
		}
		plan, err := dfs.PlanSegments(f, 1)
		if err != nil {
			return false
		}
		m, err := NewMRShare(plan, sizes, nil)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if err := m.Submit(JobMeta{ID: JobID(i + 1), File: "input"}, 0); err != nil {
				return false
			}
		}
		completed := 0
		batchIdx := 0
		roundsInBatch := 0
		for {
			r, ok := m.NextRound(0)
			if !ok {
				break
			}
			if len(r.Jobs) != sizes[batchIdx] {
				return false
			}
			roundsInBatch++
			if roundsInBatch == k {
				batchIdx++
				roundsInBatch = 0
			}
			completed += len(m.RoundDone(r, 0))
		}
		return completed == n && batchIdx == len(sizes)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
