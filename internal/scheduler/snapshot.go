package scheduler

import (
	"s3sched/internal/vclock"
)

// Scheduler snapshot/restore surface. A scheduler's whole durable
// state — per-queue circular cursor plus each active job's (start
// segment, remaining sub-jobs) — is small enough to persist after
// every round, so a restarted master resumes the pass instead of
// restarting it. The concrete S^3 implementations live in
// internal/core; the types live here so the journal and the runtime
// engine can speak snapshots without importing a scheme.

// JobSnapshot is one active job's persisted state.
type JobSnapshot struct {
	Meta         JobMeta     `json:"meta"`
	StartSegment int         `json:"startSegment"`
	Remaining    int         `json:"remaining"`
	SubmittedAt  vclock.Time `json:"submittedAt"`
}

// QueueSnapshot is one file queue's persisted state (a single-file
// scheduler has exactly one).
type QueueSnapshot struct {
	File     string        `json:"file"`
	Segments int           `json:"segments"`
	Cursor   int           `json:"cursor"`
	Jobs     []JobSnapshot `json:"jobs"`
}

// Snapshot is a scheduler's full persisted state.
type Snapshot struct {
	// Scheme is the scheduler's Name(); restore refuses a snapshot
	// taken by a different scheme.
	Scheme string `json:"scheme"`
	// Rotation is the multi-file round-robin pointer (0 for
	// single-queue schedulers).
	Rotation int `json:"rotation,omitempty"`
	// Queues holds one entry per registered file, in registration
	// order.
	Queues []QueueSnapshot `json:"queues"`
}

// Jobs returns every active job across all queues.
func (s Snapshot) Jobs() []JobSnapshot {
	var out []JobSnapshot
	for _, q := range s.Queues {
		out = append(out, q.Jobs...)
	}
	return out
}

// Snapshottable is implemented by schedulers whose state can be
// persisted and resumed — the surface crash recovery drives.
//
// Protocol: StateSnapshot is only valid between rounds (no round in
// flight); implementations return an error otherwise rather than
// guessing at half-advanced state. RestoreState is only valid on a
// freshly constructed scheduler with no submissions yet.
type Snapshottable interface {
	StateSnapshot() (Snapshot, error)
	RestoreState(Snapshot) error
}
