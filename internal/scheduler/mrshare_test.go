package scheduler

import (
	"errors"
	"testing"
)

func TestMRShareSingleBatchWaitsForAll(t *testing.T) {
	p := makePlan(t, 4, 2) // 2 segments
	m, err := NewMRShare(p, []int{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(job(2), 5); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.NextRound(5); ok {
		t.Fatal("batch of 3 must not run with only 2 jobs submitted")
	}
	if !m.Stalled() {
		t.Error("scheduler with a partial batch and nothing running should report Stalled")
	}
	if err := m.Submit(job(3), 9); err != nil {
		t.Fatal(err)
	}
	rounds, completed := drain(t, m)
	if len(rounds) != 2 {
		t.Fatalf("rounds = %d, want 2 (one merged pass over the file)", len(rounds))
	}
	for i, r := range rounds {
		if len(r.Jobs) != 3 {
			t.Errorf("round %d batch size = %d, want 3", i, len(r.Jobs))
		}
		if r.Segment != i {
			t.Errorf("round %d segment = %d, want %d (scan from beginning)", i, r.Segment, i)
		}
	}
	if len(completed) != 3 {
		t.Fatalf("completed = %v, want all 3 at once", completed)
	}
	if m.PendingJobs() != 0 {
		t.Errorf("pending = %d", m.PendingJobs())
	}
}

func TestMRShareTwoBatches(t *testing.T) {
	p := makePlan(t, 2, 2) // 1 segment -> 1 round per batch
	m, err := NewMRShare(p, []int{2, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := m.Submit(job(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	rounds, completed := drain(t, m)
	if len(rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(rounds))
	}
	if ids := rounds[0].JobIDs(); len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("batch 1 = %v, want [1 2]", ids)
	}
	if ids := rounds[1].JobIDs(); len(ids) != 2 || ids[0] != 3 || ids[1] != 4 {
		t.Errorf("batch 2 = %v, want [3 4]", ids)
	}
	if len(completed) != 4 {
		t.Errorf("completed = %v", completed)
	}
}

func TestMRShareSecondBatchReadyWhileFirstRuns(t *testing.T) {
	p := makePlan(t, 2, 1) // 2 segments
	m, err := NewMRShare(p, []int{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := m.NextRound(0)
	// Batch 2 fills while batch 1 is mid-flight.
	if err := m.Submit(job(2), 1); err != nil {
		t.Fatal(err)
	}
	m.RoundDone(r, 2)
	r2, _ := m.NextRound(2)
	if r2.Jobs[0].ID != 1 || r2.Segment != 1 {
		t.Fatalf("batch 1 should keep running, got %+v", r2)
	}
	done := m.RoundDone(r2, 3)
	if len(done) != 1 || done[0] != 1 {
		t.Fatalf("done = %v", done)
	}
	r3, _ := m.NextRound(3)
	if r3.Jobs[0].ID != 2 || r3.Segment != 0 {
		t.Fatalf("batch 2 should start from segment 0, got %+v", r3)
	}
}

func TestMRShareConfigValidation(t *testing.T) {
	p := makePlan(t, 2, 2)
	if _, err := NewMRShare(p, nil, nil); err == nil {
		t.Error("empty batch list should fail")
	}
	if _, err := NewMRShare(p, []int{2, 0}, nil); err == nil {
		t.Error("zero batch size should fail")
	}
	if _, err := NewMRShare(p, []int{-1}, nil); err == nil {
		t.Error("negative batch size should fail")
	}
}

func TestMRShareOverCapacityRejected(t *testing.T) {
	p := makePlan(t, 2, 2)
	m, err := NewMRShare(p, []int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(job(2), 0); err == nil {
		t.Error("submission beyond batch plan capacity should fail")
	}
}

func TestMRShareDuplicateAndWrongFile(t *testing.T) {
	p := makePlan(t, 2, 2)
	m, err := NewMRShare(p, []int{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(job(1), 0); !errors.Is(err, ErrDuplicateJob) {
		t.Errorf("err = %v, want ErrDuplicateJob", err)
	}
	bad := job(2)
	bad.File = "nope"
	if err := m.Submit(bad, 0); !errors.Is(err, ErrWrongFile) {
		t.Errorf("err = %v, want ErrWrongFile", err)
	}
}

func TestMRShareProtocolViolationsPanic(t *testing.T) {
	p := makePlan(t, 2, 2)
	m, err := NewMRShare(p, []int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := m.NextRound(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NextRound with round in flight should panic")
			}
		}()
		m.NextRound(0)
	}()
	m.RoundDone(r, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RoundDone without round in flight should panic")
			}
		}()
		m.RoundDone(r, 1)
	}()
}

func TestMRShareNameAndNotStalledWhenComplete(t *testing.T) {
	p := makePlan(t, 2, 2)
	m, err := NewMRShare(p, []int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "mrshare" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Stalled() {
		t.Error("fresh scheduler must not be stalled")
	}
	if err := m.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	drain(t, m)
	if m.Stalled() {
		t.Error("completed scheduler must not be stalled")
	}
}
