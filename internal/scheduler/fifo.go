package scheduler

import (
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// FIFO reproduces Hadoop's default scheduler (paper §II-B): jobs run
// one after another in submission order, each scanning the whole file
// from the beginning for itself. There is no sharing: a job arriving
// while another runs waits for every job ahead of it.
//
// Execution is still expressed in per-segment rounds so that all
// schemes pay identical per-round overheads in the cost model — FIFO
// is penalized only by its lack of sharing, not by bookkeeping
// differences.
type FIFO struct {
	plan  *dfs.SegmentPlan
	log   *trace.Log
	queue []JobMeta // waiting jobs, head first
	cur   *fifoRun  // job currently executing, nil when idle
	seen  map[JobID]bool
	// inFlight guards the serial-round protocol.
	inFlight bool
	pending  int
	// pendingDone queues completion lists for pipelined rounds whose
	// scan finished but whose reduce is still draining (see StageAware).
	pendingDone [][]JobID
}

var (
	_ Scheduler   = (*FIFO)(nil)
	_ StageAware  = (*FIFO)(nil)
	_ Recoverable = (*FIFO)(nil)
)

type fifoRun struct {
	job  JobMeta
	next int // next segment index to scan (linear 0..k-1)
}

// NewFIFO returns a FIFO scheduler over the segment plan. log may be
// nil.
func NewFIFO(plan *dfs.SegmentPlan, log *trace.Log) *FIFO {
	return &FIFO{plan: plan, log: log, seen: make(map[JobID]bool)}
}

// Name implements Scheduler.
func (f *FIFO) Name() string { return "fifo" }

// Submit implements Scheduler.
func (f *FIFO) Submit(job JobMeta, at vclock.Time) error {
	if f.seen[job.ID] {
		return fmt.Errorf("%w: %d", ErrDuplicateJob, job.ID)
	}
	if job.File != f.plan.File().Name {
		return fmt.Errorf("%w: job %d reads %q, plan is for %q", ErrWrongFile, job.ID, job.File, f.plan.File().Name)
	}
	f.seen[job.ID] = true
	f.pending++
	f.queue = append(f.queue, job.normalized())
	f.log.Addf(at, trace.JobSubmitted, int(job.ID), -1, "fifo queue depth %d", len(f.queue))
	return nil
}

// NextRound implements Scheduler.
func (f *FIFO) NextRound(now vclock.Time) (Round, bool) {
	if f.inFlight {
		panic("scheduler: FIFO.NextRound called with a round in flight")
	}
	if f.cur == nil {
		if len(f.queue) == 0 {
			return Round{}, false
		}
		f.cur = &fifoRun{job: f.queue[0]}
		f.queue = f.queue[1:]
	}
	seg := f.cur.next
	r := Round{
		Segment: seg,
		Blocks:  f.plan.Blocks(seg),
		Jobs:    []JobMeta{f.cur.job},
	}
	if seg == 0 {
		r.FreshJobs = 1 // the job is submitted once, at its first wave
	}
	if seg == f.plan.NumSegments()-1 {
		r.Completes = []JobID{f.cur.job.ID}
	}
	f.inFlight = true
	f.log.Addf(now, trace.RoundLaunched, int(f.cur.job.ID), seg, "fifo")
	return r, true
}

// MapDone implements StageAware: the scan of the round finished, so
// the job's segment progress advances now and the next round may form
// while the reduce stage drains; RoundDone later reports the queued
// completion list.
func (f *FIFO) MapDone(r Round, now vclock.Time) {
	if !f.inFlight {
		panic("scheduler: FIFO.MapDone without a round in flight")
	}
	f.inFlight = false
	f.log.Addf(now, trace.MapStageFinished, int(f.cur.job.ID), r.Segment, "fifo")
	f.pendingDone = append(f.pendingDone, f.retireScan(now))
}

// RoundDone implements Scheduler.
func (f *FIFO) RoundDone(r Round, now vclock.Time) []JobID {
	if len(f.pendingDone) > 0 {
		done := f.pendingDone[0]
		f.pendingDone = f.pendingDone[1:]
		f.log.Addf(now, trace.RoundFinished, int(r.Jobs[0].ID), r.Segment, "fifo")
		return done
	}
	if !f.inFlight {
		panic("scheduler: FIFO.RoundDone without a round in flight")
	}
	f.inFlight = false
	f.log.Addf(now, trace.RoundFinished, int(f.cur.job.ID), r.Segment, "fifo")
	return f.retireScan(now)
}

// retireScan advances the running job past its just-scanned segment,
// retiring it when that was the last one.
func (f *FIFO) retireScan(now vclock.Time) []JobID {
	f.cur.next++
	if f.cur.next == f.plan.NumSegments() {
		done := f.cur.job.ID
		f.cur = nil
		f.pending--
		f.log.Addf(now, trace.JobCompleted, int(done), -1, "fifo")
		return []JobID{done}
	}
	return nil
}

// RequeueRound implements Recoverable: FIFO has no sub-job structure,
// so a lost round is simply resubmitted — the running job's segment
// progress is unchanged and the next NextRound re-forms the same
// round.
func (f *FIFO) RequeueRound(r Round, now vclock.Time) {
	if !f.inFlight {
		panic("scheduler: FIFO.RequeueRound without a round in flight")
	}
	f.inFlight = false
	f.log.Addf(now, trace.SubJobRequeued, int(f.cur.job.ID), r.Segment, "fifo round lost; resubmitting")
}

// AbortJobs implements Recoverable: failed jobs leave the waiting
// queue, and a failed running job is dropped mid-file.
func (f *FIFO) AbortJobs(ids []JobID, now vclock.Time) {
	drop := make(map[JobID]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	queue := f.queue[:0]
	for _, j := range f.queue {
		if drop[j.ID] {
			f.pending--
			f.log.Addf(now, trace.JobAborted, int(j.ID), -1, "fifo (queued)")
			continue
		}
		queue = append(queue, j)
	}
	f.queue = queue
	if f.cur != nil && drop[f.cur.job.ID] {
		f.log.Addf(now, trace.JobAborted, int(f.cur.job.ID), f.cur.next, "fifo (running)")
		f.cur = nil
		f.pending--
	}
}

// PendingJobs implements Scheduler.
func (f *FIFO) PendingJobs() int { return f.pending }
