package scheduler

import (
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// WindowMRShare is an MRShare variant for the realistic setting the
// paper criticizes MRShare for not handling: job patterns unknown in
// advance (§II-C). Instead of predetermined batch sizes, a batch seals
// when either a time window has elapsed since its first member arrived
// or the batch reaches a size cap — whichever comes first. Sealed
// batches execute exactly like MRShare batches: one merged scan of the
// whole file from the beginning.
type WindowMRShare struct {
	plan     *dfs.SegmentPlan
	log      *trace.Log
	window   vclock.Duration
	maxBatch int

	seen    map[JobID]bool
	filling []JobMeta
	firstAt vclock.Time
	ready   [][]JobMeta
	cur     *mrshareRun
	// inFlight guards the serial-round protocol.
	inFlight bool
	pending  int
}

// NewWindowMRShare builds a window batcher: batches seal after window
// seconds or maxBatch jobs. log may be nil.
func NewWindowMRShare(plan *dfs.SegmentPlan, window vclock.Duration, maxBatch int, log *trace.Log) (*WindowMRShare, error) {
	if window <= 0 {
		return nil, fmt.Errorf("scheduler: WindowMRShare window must be positive, got %v", window)
	}
	if maxBatch <= 0 {
		return nil, fmt.Errorf("scheduler: WindowMRShare maxBatch must be positive, got %d", maxBatch)
	}
	return &WindowMRShare{
		plan:     plan,
		log:      log,
		window:   window,
		maxBatch: maxBatch,
		seen:     make(map[JobID]bool),
	}, nil
}

// Name implements Scheduler.
func (w *WindowMRShare) Name() string { return "mrshare-window" }

// sealIfDue moves the filling batch to the ready queue when its window
// has expired (as of time now) or it is full.
func (w *WindowMRShare) sealIfDue(now vclock.Time) {
	if len(w.filling) == 0 {
		return
	}
	if len(w.filling) >= w.maxBatch || now >= w.firstAt.Add(w.window) {
		w.log.Addf(now, trace.BatchAdjusted, -1, -1, "window batch of %d sealed", len(w.filling))
		w.ready = append(w.ready, w.filling)
		w.filling = nil
	}
}

// Submit implements Scheduler.
func (w *WindowMRShare) Submit(job JobMeta, at vclock.Time) error {
	if w.seen[job.ID] {
		return fmt.Errorf("%w: %d", ErrDuplicateJob, job.ID)
	}
	if job.File != w.plan.File().Name {
		return fmt.Errorf("%w: job %d reads %q, plan is for %q", ErrWrongFile, job.ID, job.File, w.plan.File().Name)
	}
	// The clock has reached `at`; a batch whose window expired before
	// this arrival must not absorb it.
	w.sealIfDue(at)
	w.seen[job.ID] = true
	w.pending++
	if len(w.filling) == 0 {
		w.firstAt = at
	}
	w.filling = append(w.filling, job.normalized())
	w.log.Addf(at, trace.JobSubmitted, int(job.ID), -1, "window batch (%d/%d, seals by %v)",
		len(w.filling), w.maxBatch, w.firstAt.Add(w.window))
	w.sealIfDue(at) // size cap may have been hit
	return nil
}

// NextRound implements Scheduler.
func (w *WindowMRShare) NextRound(now vclock.Time) (Round, bool) {
	if w.inFlight {
		panic("scheduler: WindowMRShare.NextRound called with a round in flight")
	}
	w.sealIfDue(now)
	if w.cur == nil {
		if len(w.ready) == 0 {
			return Round{}, false
		}
		w.cur = &mrshareRun{jobs: w.ready[0]}
		w.ready = w.ready[1:]
	}
	seg := w.cur.next
	r := Round{
		Segment: seg,
		Blocks:  w.plan.Blocks(seg),
		Jobs:    w.cur.jobs,
		Tagged:  true,
	}
	if seg == 0 {
		r.FreshJobs = 1
	}
	if seg == w.plan.NumSegments()-1 {
		r.Completes = r.JobIDs()
	}
	w.inFlight = true
	w.log.Addf(now, trace.RoundLaunched, -1, seg, "window batch of %d", len(w.cur.jobs))
	return r, true
}

// RoundDone implements Scheduler.
func (w *WindowMRShare) RoundDone(r Round, now vclock.Time) []JobID {
	if !w.inFlight {
		panic("scheduler: WindowMRShare.RoundDone without a round in flight")
	}
	w.inFlight = false
	w.cur.next++
	if w.cur.next == w.plan.NumSegments() {
		done := make([]JobID, len(w.cur.jobs))
		for i, j := range w.cur.jobs {
			done[i] = j.ID
			w.log.Addf(now, trace.JobCompleted, int(j.ID), -1, "window batch")
		}
		w.pending -= len(done)
		w.cur = nil
		return done
	}
	return nil
}

// PendingJobs implements Scheduler.
func (w *WindowMRShare) PendingJobs() int { return w.pending }

// NextWake reports when the filling batch's window expires, so the
// driver can wake the scheduler even with no arrivals left.
func (w *WindowMRShare) NextWake(now vclock.Time) (vclock.Time, bool) {
	if len(w.filling) == 0 {
		return 0, false
	}
	return w.firstAt.Add(w.window), true
}
