package scheduler

import (
	"errors"
	"testing"

	"s3sched/internal/dfs"
	"s3sched/internal/trace"
)

// makePlan builds a k-segment plan over a metadata file with m blocks
// per segment.
func makePlan(t *testing.T, numBlocks, perSegment int) *dfs.SegmentPlan {
	t.Helper()
	store := dfs.MustStore(4, 1)
	f, err := store.AddMetaFile("input", numBlocks, 64<<20)
	if err != nil {
		t.Fatalf("AddMetaFile: %v", err)
	}
	p, err := dfs.PlanSegments(f, perSegment)
	if err != nil {
		t.Fatalf("PlanSegments: %v", err)
	}
	return p
}

func job(id int) JobMeta {
	return JobMeta{ID: JobID(id), Name: "j", File: "input", Weight: 1, ReduceWeight: 1}
}

// drain runs the scheduler until idle, returning the rounds executed
// and the completion order.
func drain(t *testing.T, s Scheduler) (rounds []Round, completed []JobID) {
	t.Helper()
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("drain did not terminate")
		}
		r, ok := s.NextRound(0)
		if !ok {
			return rounds, completed
		}
		rounds = append(rounds, r)
		completed = append(completed, s.RoundDone(r, 0)...)
	}
}

func TestFIFOSingleJob(t *testing.T) {
	p := makePlan(t, 12, 3) // 4 segments
	f := NewFIFO(p, nil)
	if err := f.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	rounds, completed := drain(t, f)
	if len(rounds) != 4 {
		t.Fatalf("rounds = %d, want 4", len(rounds))
	}
	for i, r := range rounds {
		if r.Segment != i {
			t.Errorf("round %d segment = %d, want %d (FIFO scans from the beginning)", i, r.Segment, i)
		}
		if len(r.Jobs) != 1 || r.Jobs[0].ID != 1 {
			t.Errorf("round %d jobs = %v", i, r.Jobs)
		}
	}
	if len(rounds[3].Completes) != 1 || rounds[3].Completes[0] != 1 {
		t.Errorf("final round completes = %v", rounds[3].Completes)
	}
	if len(completed) != 1 || completed[0] != 1 {
		t.Errorf("completed = %v", completed)
	}
	if f.PendingJobs() != 0 {
		t.Errorf("pending = %d", f.PendingJobs())
	}
}

func TestFIFORunsJobsSequentially(t *testing.T) {
	p := makePlan(t, 6, 3) // 2 segments
	f := NewFIFO(p, nil)
	for i := 1; i <= 3; i++ {
		if err := f.Submit(job(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	rounds, completed := drain(t, f)
	if len(rounds) != 6 {
		t.Fatalf("rounds = %d, want 6 (3 jobs x 2 segments, no sharing)", len(rounds))
	}
	// Every round carries exactly one job; jobs run in order.
	wantJobs := []JobID{1, 1, 2, 2, 3, 3}
	for i, r := range rounds {
		if len(r.Jobs) != 1 || r.Jobs[0].ID != wantJobs[i] {
			t.Errorf("round %d jobs = %v, want [%d]", i, r.JobIDs(), wantJobs[i])
		}
	}
	if want := []JobID{1, 2, 3}; len(completed) != 3 || completed[0] != want[0] || completed[1] != want[1] || completed[2] != want[2] {
		t.Errorf("completion order = %v, want %v", completed, want)
	}
}

func TestFIFOLateArrivalQueues(t *testing.T) {
	p := makePlan(t, 4, 2) // 2 segments
	f := NewFIFO(p, nil)
	if err := f.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r1, _ := f.NextRound(0)
	// Job 2 arrives while job 1 runs; it must wait for both of job
	// 1's segments.
	if err := f.Submit(job(2), 1); err != nil {
		t.Fatal(err)
	}
	f.RoundDone(r1, 10)
	r2, _ := f.NextRound(10)
	if r2.Jobs[0].ID != 1 {
		t.Fatalf("round 2 runs job %d, want 1 (no preemption)", r2.Jobs[0].ID)
	}
	done := f.RoundDone(r2, 20)
	if len(done) != 1 || done[0] != 1 {
		t.Fatalf("done = %v", done)
	}
	r3, _ := f.NextRound(20)
	if r3.Jobs[0].ID != 2 || r3.Segment != 0 {
		t.Fatalf("job 2 should start from segment 0, got %+v", r3)
	}
}

func TestFIFODuplicateAndWrongFile(t *testing.T) {
	p := makePlan(t, 4, 2)
	f := NewFIFO(p, trace.MustNew(16))
	if err := f.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(job(1), 0); !errors.Is(err, ErrDuplicateJob) {
		t.Errorf("duplicate submit err = %v, want ErrDuplicateJob", err)
	}
	bad := job(2)
	bad.File = "other"
	if err := f.Submit(bad, 0); !errors.Is(err, ErrWrongFile) {
		t.Errorf("wrong-file submit err = %v, want ErrWrongFile", err)
	}
}

func TestFIFOProtocolViolationsPanic(t *testing.T) {
	p := makePlan(t, 4, 2)
	f := NewFIFO(p, nil)
	if err := f.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := f.NextRound(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NextRound with round in flight should panic")
			}
		}()
		f.NextRound(0)
	}()
	f.RoundDone(r, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RoundDone without round in flight should panic")
			}
		}()
		f.RoundDone(r, 1)
	}()
}

func TestFIFOIdleWhenEmpty(t *testing.T) {
	p := makePlan(t, 4, 2)
	f := NewFIFO(p, nil)
	if _, ok := f.NextRound(0); ok {
		t.Error("NextRound on empty scheduler should report no work")
	}
	if f.Name() != "fifo" {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestFIFOWeightNormalization(t *testing.T) {
	p := makePlan(t, 2, 2)
	f := NewFIFO(p, nil)
	j := JobMeta{ID: 1, File: "input"} // zero weights
	if err := f.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	r, _ := f.NextRound(0)
	if r.Jobs[0].Weight != 1 || r.Jobs[0].ReduceWeight != 1 {
		t.Errorf("weights not defaulted: %+v", r.Jobs[0])
	}
}
