package scheduler

import (
	"testing"
)

// TestFIFORequeueRepeatsSegment: a lost FIFO round is re-formed over
// the same segment with the same job; progress is unchanged.
func TestFIFORequeueRepeatsSegment(t *testing.T) {
	p := makePlan(t, 8, 2) // 4 segments
	f := NewFIFO(p, nil)
	if err := f.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r1, _ := f.NextRound(0)
	f.RoundDone(r1, 1) // segment 0 done
	r2, _ := f.NextRound(1)
	if r2.Segment != 1 {
		t.Fatalf("segment = %d, want 1", r2.Segment)
	}
	f.RequeueRound(r2, 2)
	r3, ok := f.NextRound(3)
	if !ok || r3.Segment != 1 || r3.Jobs[0].ID != 1 {
		t.Fatalf("requeued round = %+v, want segment 1 job 1", r3)
	}
	f.RoundDone(r3, 4)
	_, completed := drain(t, f)
	if len(completed) != 1 || completed[0] != 1 {
		t.Fatalf("completed = %v, want [1]", completed)
	}
}

// TestFIFOAbortRunningJob: aborting the mid-file job frees the slot for
// the next queued job, which starts from segment 0.
func TestFIFOAbortRunningJob(t *testing.T) {
	p := makePlan(t, 8, 2)
	f := NewFIFO(p, nil)
	for i := 1; i <= 2; i++ {
		if err := f.Submit(job(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	r1, _ := f.NextRound(0)
	if r1.Jobs[0].ID != 1 {
		t.Fatalf("first round runs job %d, want 1", r1.Jobs[0].ID)
	}
	f.RoundDone(r1, 1)
	f.AbortJobs([]JobID{1}, 1)
	if got := f.PendingJobs(); got != 1 {
		t.Fatalf("PendingJobs = %d after abort, want 1", got)
	}
	r2, ok := f.NextRound(2)
	if !ok || r2.Jobs[0].ID != 2 || r2.Segment != 0 {
		t.Fatalf("round after abort = %+v, want job 2 at segment 0", r2)
	}
}

// TestMRShareRequeueRepeatsBatchRound: a lost MRShare round re-forms
// with the whole merged batch over the same segment.
func TestMRShareRequeueRepeatsBatchRound(t *testing.T) {
	p := makePlan(t, 8, 2)
	m, err := NewMRShare(p, []int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := m.Submit(job(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	r1, ok := m.NextRound(0)
	if !ok || len(r1.Jobs) != 2 {
		t.Fatalf("round = %+v, want batch of 2", r1)
	}
	m.RequeueRound(r1, 1)
	r2, ok := m.NextRound(2)
	if !ok || r2.Segment != r1.Segment || len(r2.Jobs) != 2 {
		t.Fatalf("requeued round = %+v, want batch of 2 over segment %d", r2, r1.Segment)
	}
}

// TestMRShareAbortFillingKeepsBatchPlan: aborting a job that is still
// filling a batch must not strand the batch — it becomes ready at the
// same submission count, just smaller (fillAborted bookkeeping).
func TestMRShareAbortFillingKeepsBatchPlan(t *testing.T) {
	p := makePlan(t, 8, 2)
	m, err := NewMRShare(p, []int{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := m.Submit(job(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Batch of 3 is filling with jobs {1, 2}; job 2 fails elsewhere.
	m.AbortJobs([]JobID{2}, 1)
	if _, ok := m.NextRound(1); ok {
		t.Fatal("batch ran before reaching its planned size")
	}
	// The third submission still completes the batch — now {1, 3}.
	if err := m.Submit(job(3), 2); err != nil {
		t.Fatal(err)
	}
	r, ok := m.NextRound(2)
	if !ok {
		t.Fatal("batch did not become ready at its planned submission count")
	}
	ids := r.JobIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("batch jobs = %v, want [1 3]", ids)
	}
}

// TestMRShareAbortDissolvesEmptyRunningBatch: a running batch whose
// last member aborts dissolves, letting the next batch start.
func TestMRShareAbortDissolvesEmptyRunningBatch(t *testing.T) {
	p := makePlan(t, 8, 2)
	m, err := NewMRShare(p, []int{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := m.Submit(job(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	r1, _ := m.NextRound(0)
	if r1.Jobs[0].ID != 1 {
		t.Fatalf("first batch runs job %d, want 1", r1.Jobs[0].ID)
	}
	m.RoundDone(r1, 1)
	m.AbortJobs([]JobID{1}, 1)
	r2, ok := m.NextRound(2)
	if !ok || r2.Jobs[0].ID != 2 || r2.Segment != 0 {
		t.Fatalf("round after abort = %+v, want job 2 from segment 0", r2)
	}
}
