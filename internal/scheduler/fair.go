package scheduler

import (
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// Fair models the partial-utilization scheduler family of §II-B
// (Yahoo!'s capacity scheduler, Facebook's fair scheduler): every
// active job makes progress concurrently instead of queueing behind
// the job ahead. At this framework's round granularity that is
// processor sharing sliced by segment: rounds rotate round-robin over
// the active jobs, each round scanning the *next segment of that job
// alone* from the beginning of its file.
//
// The §II-B critique this baseline exists to demonstrate: jobs stop
// blocking each other (ART improves over FIFO when jobs overlap), but
// every job still runs its own scan — common operations are never
// shared, so total execution time stays at FIFO's level and both
// metrics lose to S^3 under shared-input workloads.
type Fair struct {
	plan *dfs.SegmentPlan
	log  *trace.Log

	seen map[JobID]bool
	// active jobs in round-robin order; next segment index per job.
	active []*fairJob
	rr     int // round-robin pointer into active

	inFlight    bool
	inFlightJob *fairJob
	pending     int
}

type fairJob struct {
	meta JobMeta
	next int // next segment (linear 0..k-1)
}

var _ Scheduler = (*Fair)(nil)

// NewFair returns a fair scheduler over the plan. log may be nil.
func NewFair(plan *dfs.SegmentPlan, log *trace.Log) *Fair {
	return &Fair{plan: plan, log: log, seen: make(map[JobID]bool)}
}

// Name implements Scheduler.
func (f *Fair) Name() string { return "fair" }

// Submit implements Scheduler.
func (f *Fair) Submit(job JobMeta, at vclock.Time) error {
	if f.seen[job.ID] {
		return fmt.Errorf("%w: %d", ErrDuplicateJob, job.ID)
	}
	if job.File != f.plan.File().Name {
		return fmt.Errorf("%w: job %d reads %q, plan is for %q", ErrWrongFile, job.ID, job.File, f.plan.File().Name)
	}
	f.seen[job.ID] = true
	f.pending++
	f.active = append(f.active, &fairJob{meta: job.normalized()})
	f.log.Addf(at, trace.JobSubmitted, int(job.ID), 0, "fair pool of %d", len(f.active))
	return nil
}

// NextRound implements Scheduler: the next job in round-robin order
// gets the cluster for one segment of its own scan.
func (f *Fair) NextRound(now vclock.Time) (Round, bool) {
	if f.inFlight {
		panic("scheduler: Fair.NextRound called with a round in flight")
	}
	if len(f.active) == 0 {
		return Round{}, false
	}
	if f.rr >= len(f.active) {
		f.rr = 0
	}
	j := f.active[f.rr]
	r := Round{
		Segment: j.next,
		Blocks:  f.plan.Blocks(j.next),
		Jobs:    []JobMeta{j.meta},
	}
	if j.next == 0 {
		r.FreshJobs = 1
	}
	if j.next == f.plan.NumSegments()-1 {
		r.Completes = []JobID{j.meta.ID}
	}
	f.inFlight = true
	f.inFlightJob = j
	f.log.Addf(now, trace.RoundLaunched, int(j.meta.ID), j.next, "fair slice")
	return r, true
}

// RoundDone implements Scheduler.
func (f *Fair) RoundDone(r Round, now vclock.Time) []JobID {
	if !f.inFlight {
		panic("scheduler: Fair.RoundDone without a round in flight")
	}
	f.inFlight = false
	j := f.inFlightJob
	f.inFlightJob = nil
	j.next++
	if j.next == f.plan.NumSegments() {
		// Retire the job; the round-robin pointer stays on the slot
		// that now holds the next job.
		for i, cand := range f.active {
			if cand == j {
				f.active = append(f.active[:i], f.active[i+1:]...)
				if f.rr > i {
					f.rr--
				}
				break
			}
		}
		f.pending--
		f.log.Addf(now, trace.JobCompleted, int(j.meta.ID), -1, "fair")
		return []JobID{j.meta.ID}
	}
	f.rr++
	return nil
}

// PendingJobs implements Scheduler.
func (f *Fair) PendingJobs() int { return f.pending }
