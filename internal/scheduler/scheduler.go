// Package scheduler defines the job-scheduling abstraction shared by
// every scheme in the paper's evaluation — FIFO (Hadoop default),
// MRShare-style whole-file batching, and S^3 (internal/core) — plus
// the FIFO and MRShare baseline implementations.
//
// A Scheduler turns submitted jobs into a serial stream of Rounds. A
// Round is one unit of cluster work: scan the listed blocks once and
// feed every listed job. This mirrors the paper's full-utilization
// execution model: the cluster runs one (possibly merged) wave of map
// tasks at a time, and the scheduler decides what the next wave is.
package scheduler

import (
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/vclock"
)

// JobID identifies a submitted job within one experiment run.
type JobID int

// JobMeta is the scheduler-visible description of a job. The actual
// map/reduce functions live with the executor; schedulers only need
// identity, input file and relative cost.
type JobMeta struct {
	ID   JobID
	Name string
	File string
	// Weight scales the job's per-block map cost relative to the
	// workload baseline (1.0 = paper's normal wordcount; the heavy
	// workload uses a larger value).
	Weight float64
	// ReduceWeight scales the job's reduce-phase cost (the heavy
	// workload produces 200x reduce output).
	ReduceWeight float64
	// Priority orders jobs when a scheduler must arbitrate between
	// queues (larger is more urgent; 0 is normal). Scan-sharing inside
	// one file's queue is unaffected — every active job shares every
	// round regardless of priority. This implements the "job
	// priorities" scheduling-policy extension of §VI.
	Priority int
}

// normalized returns meta with zero weights defaulted to 1.
func (m JobMeta) normalized() JobMeta {
	if m.Weight == 0 {
		m.Weight = 1
	}
	if m.ReduceWeight == 0 {
		m.ReduceWeight = 1
	}
	return m
}

// Round is one wave of cluster work: one shared scan of Blocks feeding
// every job in Jobs.
type Round struct {
	// Segment is the segment index this round scans, or -1 when the
	// round is not segment-aligned.
	Segment int
	// Blocks are scanned exactly once each.
	Blocks []dfs.BlockID
	// Jobs consume the scan; len(Jobs) is the batch size.
	Jobs []JobMeta
	// Completes lists the jobs whose final map work is in this round;
	// their reduce phase runs at the end of the round.
	Completes []JobID
	// FreshJobs counts the MapReduce job submissions this round
	// incurs. Each S^3 round is one freshly submitted merged sub-job;
	// FIFO and MRShare submit once per job/batch, so only their first
	// round carries the setup cost. This asymmetry — S^3 pays job
	// initialization per segment — is the "more sub-jobs initiated …
	// communication cost becomes a dominant factor" effect of §V-D.
	FreshJobs int
	// Tagged marks rounds executed as an MRShare merged meta-job:
	// every record is tagged with the ids of the jobs it belongs to
	// and demultiplexed in the reduce phase (Nykiel et al.). The
	// tagging pipeline costs extra per job; S^3's partial job
	// initialization keeps per-job pipelines separate and avoids it.
	Tagged bool
	// SubJobReduce marks rounds whose batch members each run their own
	// reduce phase at the end of the round — S^3 sub-jobs are complete
	// MapReduce jobs (§IV-D3), producing the per-round partial results
	// §V-G discusses collecting. FIFO and MRShare jobs instead reduce
	// once, when they complete, amortizing the reduce-phase setup.
	SubJobReduce bool
	// Nodes restricts the round to the listed nodes (nil = the whole
	// cluster). S^3's periodic slot checking (§IV-D1) excludes slow
	// nodes from the next round by setting this.
	Nodes []dfs.NodeID
}

// JobIDs returns the ids of the round's jobs.
func (r Round) JobIDs() []JobID {
	out := make([]JobID, len(r.Jobs))
	for i, j := range r.Jobs {
		out[i] = j.ID
	}
	return out
}

// Scheduler is the interface every scheduling scheme implements.
//
// Protocol: rounds are strictly serial. After NextRound returns a
// round, RoundDone must be called for it before the next NextRound.
// Submit may be called at any point — in particular while a round is
// in flight, which is exactly the case S^3's dynamic sub-job
// adjustment exploits.
//
// Schedulers that additionally implement StageAware relax the protocol
// for pipelined execution: see StageAware.
type Scheduler interface {
	// Name identifies the scheme ("fifo", "mrshare", "s3").
	Name() string
	// Submit registers a job that arrived at time at.
	Submit(job JobMeta, at vclock.Time) error
	// NextRound returns the next wave of work, or ok=false when the
	// scheduler has nothing runnable right now (idle, or waiting for
	// more arrivals to form a batch).
	NextRound(now vclock.Time) (r Round, ok bool)
	// RoundDone reports the round returned by the last NextRound as
	// complete and returns the jobs that finished with it.
	RoundDone(r Round, now vclock.Time) []JobID
	// PendingJobs reports how many submitted jobs have not completed.
	PendingJobs() int
}

// StageAware is implemented by schedulers that support pipelined
// (stage-overlapped) execution. A round is split into a scan/map stage
// that occupies the cluster's map slots and a reduce stage that drains
// concurrently with later rounds' maps.
//
// Pipelined protocol: after NextRound returns round N, the driver calls
// MapDone(N) when the scan/map stage finishes. From that point the
// scheduler must be able to form round N+1 via NextRound — the segment
// cursor advances at MapDone, because the scan is what consumes the
// segment — even though RoundDone(N) has not run yet. RoundDone calls
// still arrive exactly once per round and in round order, carrying each
// round's reduce-completion time; the jobs RoundDone reports finished
// are the ones whose last scan was in that round, identical to the
// serial protocol. A scheduler that never sees MapDone must keep the
// serial semantics unchanged.
type StageAware interface {
	// MapDone reports that the scan/map stage of the round returned by
	// the last NextRound finished at now.
	MapDone(r Round, now vclock.Time)
}

// ErrDuplicateJob is wrapped by Submit when a job id is reused.
var ErrDuplicateJob = fmt.Errorf("scheduler: duplicate job id")

// ErrWrongFile is wrapped by Submit when a job's input file does not
// match the segment plan the scheduler was built for. The paper's
// context is jobs sharing one input file (§III-A); multi-file support
// is layered on top via per-file scheduler instances.
var ErrWrongFile = fmt.Errorf("scheduler: job input file does not match plan")
