package scheduler

import (
	"fmt"
	"testing"
)

func TestFairRoundRobinsBetweenJobs(t *testing.T) {
	p := makePlan(t, 6, 2) // 3 segments
	f := NewFair(p, nil)
	if err := f.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(job(2), 0); err != nil {
		t.Fatal(err)
	}
	type slice struct{ job, seg int }
	var order []slice
	var completions []JobID
	for {
		r, ok := f.NextRound(0)
		if !ok {
			break
		}
		order = append(order, slice{int(r.Jobs[0].ID), r.Segment})
		completions = append(completions, f.RoundDone(r, 0)...)
	}
	want := []slice{{1, 0}, {2, 0}, {1, 1}, {2, 1}, {1, 2}, {2, 2}}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if len(completions) != 2 || completions[0] != 1 || completions[1] != 2 {
		t.Fatalf("completions = %v", completions)
	}
	if f.PendingJobs() != 0 {
		t.Fatalf("pending = %d", f.PendingJobs())
	}
}

func TestFairNoSharing(t *testing.T) {
	// Each job scans every segment for itself: 2 jobs over 3 segments
	// is 6 rounds, where S^3 would need 3.
	p := makePlan(t, 3, 1)
	f := NewFair(p, nil)
	if err := f.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(job(2), 0); err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for {
		r, ok := f.NextRound(0)
		if !ok {
			break
		}
		if len(r.Jobs) != 1 {
			t.Fatalf("fair round has batch %v; fair never merges", r.JobIDs())
		}
		rounds++
		f.RoundDone(r, 0)
	}
	if rounds != 6 {
		t.Fatalf("rounds = %d, want 6", rounds)
	}
}

func TestFairLateArrivalJoinsRotation(t *testing.T) {
	p := makePlan(t, 4, 2) // 2 segments
	f := NewFair(p, nil)
	if err := f.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := f.NextRound(0) // job 1 segment 0
	if err := f.Submit(job(2), 1); err != nil {
		t.Fatal(err)
	}
	f.RoundDone(r, 1)
	// Rotation now alternates: job 2 gets the next slice.
	r2, _ := f.NextRound(1)
	if r2.Jobs[0].ID != 2 || r2.Segment != 0 {
		t.Fatalf("round 2 = job %d seg %d, want job 2 seg 0", r2.Jobs[0].ID, r2.Segment)
	}
	f.RoundDone(r2, 2)
	r3, _ := f.NextRound(2)
	if r3.Jobs[0].ID != 1 || r3.Segment != 1 {
		t.Fatalf("round 3 = job %d seg %d, want job 1 seg 1", r3.Jobs[0].ID, r3.Segment)
	}
	done := f.RoundDone(r3, 3)
	if len(done) != 1 || done[0] != 1 {
		t.Fatalf("done = %v", done)
	}
	// Job 2 finishes its remaining segment.
	r4, _ := f.NextRound(3)
	if r4.Jobs[0].ID != 2 || r4.Segment != 1 {
		t.Fatalf("round 4 = %+v", r4)
	}
	if done := f.RoundDone(r4, 4); len(done) != 1 || done[0] != 2 {
		t.Fatalf("done = %v", done)
	}
}

func TestFairErrorsAndPanics(t *testing.T) {
	p := makePlan(t, 4, 2)
	f := NewFair(p, nil)
	if f.Name() != "fair" {
		t.Errorf("Name = %q", f.Name())
	}
	if _, ok := f.NextRound(0); ok {
		t.Error("empty scheduler should be idle")
	}
	if err := f.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(job(1), 0); err == nil {
		t.Error("duplicate should fail")
	}
	bad := job(2)
	bad.File = "x"
	if err := f.Submit(bad, 0); err == nil {
		t.Error("wrong file should fail")
	}
	r, _ := f.NextRound(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double NextRound should panic")
			}
		}()
		f.NextRound(0)
	}()
	f.RoundDone(r, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("stray RoundDone should panic")
			}
		}()
		f.RoundDone(r, 1)
	}()
}
