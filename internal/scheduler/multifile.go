package scheduler

import (
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// Multi-file wrappers for the baseline schedulers, closing the matrix
// gap: `s3compare` can run multi-file (and DAG) workloads through
// {s3, fifo, mrs1}, not just S^3's MultiFile. Both accept files
// registered mid-run via AddPlan — the hook DAG-stage materialization
// uses — with the same signature core.MultiFile exposes.

// PlanRegistrar is the dynamic-file registration surface shared by
// every multi-file scheduler: a derived file's segment plan can join a
// run in progress. expectJobs is how many jobs will read the file;
// batch schedulers use it to size the file's batch, continuous ones
// treat it as advisory.
type PlanRegistrar interface {
	AddPlan(plan *dfs.SegmentPlan, expectJobs int) error
}

// MultiFIFO is FIFO semantics over several files: one global queue,
// jobs execute strictly one at a time in submission order, each
// scanning its own file start to finish. No sharing, no reordering —
// exactly the Hadoop-default baseline, just with per-job file routing.
type MultiFIFO struct {
	log   *trace.Log
	plans map[string]*dfs.SegmentPlan
	order []string
	queue []JobMeta
	cur   *multiFifoRun
	seen  map[JobID]bool

	inFlight bool
	pending  int
}

type multiFifoRun struct {
	job  JobMeta
	plan *dfs.SegmentPlan
	next int
}

var (
	_ Scheduler     = (*MultiFIFO)(nil)
	_ Recoverable   = (*MultiFIFO)(nil)
	_ PlanRegistrar = (*MultiFIFO)(nil)
)

// NewMultiFIFO builds a FIFO scheduler over the given segment plans
// (one per file). log may be nil.
func NewMultiFIFO(plans []*dfs.SegmentPlan, log *trace.Log) (*MultiFIFO, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("scheduler: MultiFIFO needs at least one segment plan")
	}
	f := &MultiFIFO{
		log:   log,
		plans: make(map[string]*dfs.SegmentPlan, len(plans)),
		seen:  make(map[JobID]bool),
	}
	for _, p := range plans {
		if err := f.AddPlan(p, 0); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Name implements Scheduler.
func (f *MultiFIFO) Name() string { return "fifo-multifile" }

// AddPlan implements PlanRegistrar.
func (f *MultiFIFO) AddPlan(p *dfs.SegmentPlan, _ int) error {
	name := p.File().Name
	if _, dup := f.plans[name]; dup {
		return fmt.Errorf("scheduler: MultiFIFO already has a plan for file %q", name)
	}
	f.plans[name] = p
	f.order = append(f.order, name)
	return nil
}

// Files returns the registered file names in registration order.
func (f *MultiFIFO) Files() []string {
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// Submit implements Scheduler.
func (f *MultiFIFO) Submit(job JobMeta, at vclock.Time) error {
	if f.seen[job.ID] {
		return fmt.Errorf("%w: %d", ErrDuplicateJob, job.ID)
	}
	if _, ok := f.plans[job.File]; !ok {
		return fmt.Errorf("%w: job %d reads %q, no such file registered", ErrWrongFile, job.ID, job.File)
	}
	f.seen[job.ID] = true
	f.pending++
	f.queue = append(f.queue, job.normalized())
	f.log.Addf(at, trace.JobSubmitted, int(job.ID), -1, "fifo-multifile queue depth %d", len(f.queue))
	return nil
}

// NextRound implements Scheduler.
func (f *MultiFIFO) NextRound(now vclock.Time) (Round, bool) {
	if f.inFlight {
		panic("scheduler: MultiFIFO.NextRound called with a round in flight")
	}
	if f.cur == nil {
		if len(f.queue) == 0 {
			return Round{}, false
		}
		job := f.queue[0]
		f.queue = f.queue[1:]
		f.cur = &multiFifoRun{job: job, plan: f.plans[job.File]}
	}
	seg := f.cur.next
	r := Round{
		Segment: seg,
		Blocks:  f.cur.plan.Blocks(seg),
		Jobs:    []JobMeta{f.cur.job},
	}
	if seg == 0 {
		r.FreshJobs = 1
	}
	if seg == f.cur.plan.NumSegments()-1 {
		r.Completes = []JobID{f.cur.job.ID}
	}
	f.inFlight = true
	f.log.Addf(now, trace.RoundLaunched, int(f.cur.job.ID), seg, "fifo-multifile %s", f.cur.job.File)
	return r, true
}

// RoundDone implements Scheduler.
func (f *MultiFIFO) RoundDone(r Round, now vclock.Time) []JobID {
	if !f.inFlight {
		panic("scheduler: MultiFIFO.RoundDone without a round in flight")
	}
	f.inFlight = false
	f.log.Addf(now, trace.RoundFinished, int(f.cur.job.ID), r.Segment, "fifo-multifile")
	f.cur.next++
	if f.cur.next == f.cur.plan.NumSegments() {
		done := f.cur.job.ID
		f.cur = nil
		f.pending--
		f.log.Addf(now, trace.JobCompleted, int(done), -1, "fifo-multifile")
		return []JobID{done}
	}
	return nil
}

// RequeueRound implements Recoverable: segment progress is unchanged,
// the next NextRound re-forms the same round.
func (f *MultiFIFO) RequeueRound(r Round, now vclock.Time) {
	if !f.inFlight {
		panic("scheduler: MultiFIFO.RequeueRound without a round in flight")
	}
	f.inFlight = false
	f.log.Addf(now, trace.SubJobRequeued, int(f.cur.job.ID), r.Segment, "fifo-multifile round lost; resubmitting")
}

// AbortJobs implements Recoverable.
func (f *MultiFIFO) AbortJobs(ids []JobID, now vclock.Time) {
	drop := make(map[JobID]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	queue := f.queue[:0]
	for _, j := range f.queue {
		if drop[j.ID] {
			f.pending--
			f.log.Addf(now, trace.JobAborted, int(j.ID), -1, "fifo-multifile (queued)")
			continue
		}
		queue = append(queue, j)
	}
	f.queue = queue
	if f.cur != nil && drop[f.cur.job.ID] {
		f.log.Addf(now, trace.JobAborted, int(f.cur.job.ID), f.cur.next, "fifo-multifile (running)")
		f.cur = nil
		f.pending--
	}
}

// PendingJobs implements Scheduler.
func (f *MultiFIFO) PendingJobs() int { return f.pending }

// MultiMRShare is MRShare batching per file: each file has its own
// batch plan and merged-scan queue; files with runnable batches are
// served round-robin. Jobs are routed to their file's queue on
// submission; a file registered mid-run (a DAG stage's derived output)
// batches all of its expected consumers into one merged scan.
type MultiMRShare struct {
	log    *trace.Log
	queues map[string]*MRShare
	order  []string
	next   int
	seen   map[JobID]bool

	inFlight     bool
	inFlightFile string
}

var (
	_ Scheduler     = (*MultiMRShare)(nil)
	_ Recoverable   = (*MultiMRShare)(nil)
	_ PlanRegistrar = (*MultiMRShare)(nil)
	_ Stalled       = (*MultiMRShare)(nil)
)

// Stalled is the scheduler-side stall probe (mirrors runtime.Stalled
// without importing it, to keep this package dependency-free).
type Stalled interface {
	Stalled() bool
}

// NewMultiMRShare builds per-file MRShare queues: plans[i]'s file uses
// batch plan sizes[plans[i].File().Name]. Every file needs a batch
// plan. log may be nil.
func NewMultiMRShare(plans []*dfs.SegmentPlan, sizes map[string][]int, log *trace.Log) (*MultiMRShare, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("scheduler: MultiMRShare needs at least one segment plan")
	}
	m := &MultiMRShare{
		log:    log,
		queues: make(map[string]*MRShare, len(plans)),
		seen:   make(map[JobID]bool),
	}
	for _, p := range plans {
		name := p.File().Name
		batch, ok := sizes[name]
		if !ok {
			return nil, fmt.Errorf("scheduler: MultiMRShare has no batch plan for file %q", name)
		}
		if err := m.addQueue(p, batch); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *MultiMRShare) addQueue(p *dfs.SegmentPlan, sizes []int) error {
	name := p.File().Name
	if _, dup := m.queues[name]; dup {
		return fmt.Errorf("scheduler: MultiMRShare already has a plan for file %q", name)
	}
	q, err := NewMRShare(p, sizes, m.log)
	if err != nil {
		return err
	}
	m.queues[name] = q
	m.order = append(m.order, name)
	return nil
}

// Name implements Scheduler.
func (m *MultiMRShare) Name() string { return "mrshare-multifile" }

// AddPlan implements PlanRegistrar: the new file's expected readers
// form one merged batch (MRShare assumes the query pattern is known in
// advance; for a derived file it is — the workload's dependency edges
// name every consumer).
func (m *MultiMRShare) AddPlan(p *dfs.SegmentPlan, expectJobs int) error {
	if expectJobs < 1 {
		return fmt.Errorf("scheduler: MultiMRShare.AddPlan for %q needs the expected reader count, got %d", p.File().Name, expectJobs)
	}
	return m.addQueue(p, []int{expectJobs})
}

// Files returns the registered file names in registration order.
func (m *MultiMRShare) Files() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// Submit implements Scheduler: the job joins its file's batch.
func (m *MultiMRShare) Submit(job JobMeta, at vclock.Time) error {
	q, ok := m.queues[job.File]
	if !ok {
		return fmt.Errorf("%w: job %d reads %q, no such file registered", ErrWrongFile, job.ID, job.File)
	}
	if m.seen[job.ID] {
		return fmt.Errorf("%w: %d", ErrDuplicateJob, job.ID)
	}
	if err := q.Submit(job, at); err != nil {
		return err
	}
	m.seen[job.ID] = true
	return nil
}

// NextRound implements Scheduler: files are probed round-robin from
// the rotation pointer; the first with a runnable batch wins.
func (m *MultiMRShare) NextRound(now vclock.Time) (Round, bool) {
	if m.inFlight {
		panic("scheduler: MultiMRShare.NextRound called with a round in flight")
	}
	for off := 0; off < len(m.order); off++ {
		i := (m.next + off) % len(m.order)
		name := m.order[i]
		r, ok := m.queues[name].NextRound(now)
		if !ok {
			continue
		}
		m.next = (i + 1) % len(m.order)
		m.inFlight = true
		m.inFlightFile = name
		return r, true
	}
	return Round{}, false
}

// RoundDone implements Scheduler.
func (m *MultiMRShare) RoundDone(r Round, now vclock.Time) []JobID {
	if !m.inFlight {
		panic("scheduler: MultiMRShare.RoundDone without a round in flight")
	}
	m.inFlight = false
	return m.queues[m.inFlightFile].RoundDone(r, now)
}

// RequeueRound implements Recoverable.
func (m *MultiMRShare) RequeueRound(r Round, now vclock.Time) {
	if !m.inFlight {
		panic("scheduler: MultiMRShare.RequeueRound without a round in flight")
	}
	m.inFlight = false
	m.queues[m.inFlightFile].RequeueRound(r, now)
}

// AbortJobs implements Recoverable: every queue strips the failed jobs
// (ids a queue never saw are ignored by MRShare's strip).
func (m *MultiMRShare) AbortJobs(ids []JobID, now vclock.Time) {
	for _, name := range m.order {
		m.queues[name].AbortJobs(ids, now)
	}
}

// PendingJobs implements Scheduler.
func (m *MultiMRShare) PendingJobs() int {
	total := 0
	for _, q := range m.queues {
		total += q.PendingJobs()
	}
	return total
}

// Stalled reports whether the scheduler is permanently stuck: no file
// has a runnable batch, yet some file holds jobs that can only run
// through future submissions.
func (m *MultiMRShare) Stalled() bool {
	stuck := false
	for _, q := range m.queues {
		if q.cur != nil || len(q.ready) > 0 {
			return false // runnable work exists
		}
		if q.Stalled() {
			stuck = true
		}
	}
	return stuck
}
