package scheduler

import (
	"errors"
	"testing"

	"s3sched/internal/dfs"
	"s3sched/internal/trace"
)

// namedPlan is makePlan for a caller-chosen file name, so multi-file
// schedulers can register several distinct files.
func namedPlan(t *testing.T, name string, numBlocks, perSegment int) *dfs.SegmentPlan {
	t.Helper()
	store := dfs.MustStore(4, 1)
	f, err := store.AddMetaFile(name, numBlocks, 64<<20)
	if err != nil {
		t.Fatalf("AddMetaFile: %v", err)
	}
	p, err := dfs.PlanSegments(f, perSegment)
	if err != nil {
		t.Fatalf("PlanSegments: %v", err)
	}
	return p
}

func jobOn(id int, file string) JobMeta {
	return JobMeta{ID: JobID(id), Name: "j", File: file, Weight: 1, ReduceWeight: 1}
}

func TestMultiFIFORoutesJobsByFile(t *testing.T) {
	f, err := NewMultiFIFO([]*dfs.SegmentPlan{
		namedPlan(t, "a", 4, 2), // 2 segments
		namedPlan(t, "b", 6, 2), // 3 segments
	}, trace.MustNew(64))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Files(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Files() = %v, want [a b]", got)
	}
	if f.Name() != "fifo-multifile" {
		t.Fatalf("Name() = %q", f.Name())
	}
	if err := f.Submit(jobOn(1, "b"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(jobOn(2, "a"), 0); err != nil {
		t.Fatal(err)
	}
	if f.PendingJobs() != 2 {
		t.Fatalf("pending = %d, want 2", f.PendingJobs())
	}
	rounds, completed := drain(t, f)
	// Strict FIFO: job 1 scans b's 3 segments first, then job 2 scans
	// a's 2 — no interleaving across files.
	if len(rounds) != 5 {
		t.Fatalf("rounds = %d, want 5", len(rounds))
	}
	wantJobs := []JobID{1, 1, 1, 2, 2}
	for i, r := range rounds {
		if len(r.Jobs) != 1 || r.Jobs[0].ID != wantJobs[i] {
			t.Fatalf("round %d jobs = %v, want [%d]", i, r.JobIDs(), wantJobs[i])
		}
	}
	if rounds[0].FreshJobs != 1 || rounds[3].FreshJobs != 1 {
		t.Fatalf("fresh-job marks wrong: %+v", rounds)
	}
	if len(completed) != 2 || completed[0] != 1 || completed[1] != 2 {
		t.Fatalf("completed = %v, want [1 2]", completed)
	}
	if f.PendingJobs() != 0 {
		t.Fatalf("pending after drain = %d", f.PendingJobs())
	}
}

func TestMultiFIFOAddPlanMidRun(t *testing.T) {
	f, err := NewMultiFIFO([]*dfs.SegmentPlan{namedPlan(t, "a", 2, 2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(jobOn(1, "derived"), 0); !errors.Is(err, ErrWrongFile) {
		t.Fatalf("submit before AddPlan err = %v, want ErrWrongFile", err)
	}
	if err := f.AddPlan(namedPlan(t, "derived", 2, 2), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.AddPlan(namedPlan(t, "derived", 2, 2), 0); err == nil {
		t.Fatal("duplicate AddPlan accepted")
	}
	if err := f.Submit(jobOn(1, "derived"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(jobOn(1, "derived"), 0); !errors.Is(err, ErrDuplicateJob) {
		t.Fatalf("duplicate submit err = %v, want ErrDuplicateJob", err)
	}
	_, completed := drain(t, f)
	if len(completed) != 1 || completed[0] != 1 {
		t.Fatalf("completed = %v", completed)
	}
}

func TestMultiFIFOEmptyConstructor(t *testing.T) {
	if _, err := NewMultiFIFO(nil, nil); err == nil {
		t.Fatal("NewMultiFIFO accepted zero plans")
	}
}

func TestMultiFIFORequeueReformsRound(t *testing.T) {
	f, err := NewMultiFIFO([]*dfs.SegmentPlan{namedPlan(t, "a", 4, 2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(jobOn(1, "a"), 0); err != nil {
		t.Fatal(err)
	}
	r1, ok := f.NextRound(0)
	if !ok {
		t.Fatal("no round")
	}
	f.RequeueRound(r1, 1)
	r2, ok := f.NextRound(2)
	if !ok || r2.Segment != r1.Segment {
		t.Fatalf("requeued round = %+v, want segment %d again", r2, r1.Segment)
	}
	f.RoundDone(r2, 3)
}

func TestMultiFIFOAbortJobs(t *testing.T) {
	f, err := NewMultiFIFO([]*dfs.SegmentPlan{namedPlan(t, "a", 4, 2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := f.Submit(jobOn(i, "a"), 0); err != nil {
			t.Fatal(err)
		}
	}
	r, _ := f.NextRound(0) // job 1 running
	f.RoundDone(r, 1)
	// Abort the running job (1) and a queued job (3).
	f.AbortJobs([]JobID{1, 3}, 2)
	if f.PendingJobs() != 1 {
		t.Fatalf("pending = %d, want 1 (job 2)", f.PendingJobs())
	}
	_, completed := drain(t, f)
	if len(completed) != 1 || completed[0] != 2 {
		t.Fatalf("completed = %v, want [2]", completed)
	}
}

func TestMultiFIFOProtocolViolationsPanic(t *testing.T) {
	f, err := NewMultiFIFO([]*dfs.SegmentPlan{namedPlan(t, "a", 2, 2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(jobOn(1, "a"), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := f.NextRound(0)
	mustPanic(t, "NextRound in flight", func() { f.NextRound(0) })
	f.RoundDone(r, 1)
	mustPanic(t, "RoundDone idle", func() { f.RoundDone(r, 1) })
	mustPanic(t, "RequeueRound idle", func() { f.RequeueRound(r, 1) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s should panic", what)
		}
	}()
	fn()
}

func TestMultiMRShareBatchesPerFile(t *testing.T) {
	m, err := NewMultiMRShare([]*dfs.SegmentPlan{
		namedPlan(t, "a", 4, 2), // 2 segments
		namedPlan(t, "b", 4, 2),
	}, map[string][]int{"a": {2}, "b": {1}}, trace.MustNew(64))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Files(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Files() = %v", got)
	}
	if m.Name() != "mrshare-multifile" {
		t.Fatalf("Name() = %q", m.Name())
	}
	if err := m.Submit(jobOn(1, "a"), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(jobOn(1, "a"), 0); !errors.Is(err, ErrDuplicateJob) {
		t.Fatalf("duplicate err = %v", err)
	}
	if err := m.Submit(jobOn(2, "nope"), 0); !errors.Is(err, ErrWrongFile) {
		t.Fatalf("wrong-file err = %v", err)
	}
	// a's batch needs two jobs; with only one the scheduler is stalled.
	if _, ok := m.NextRound(0); ok {
		t.Fatal("half-filled batch produced a round")
	}
	if !m.Stalled() {
		t.Fatal("Stalled() = false with an unfillable batch and no other work")
	}
	if err := m.Submit(jobOn(3, "b"), 0); err != nil {
		t.Fatal(err)
	}
	if m.Stalled() {
		t.Fatal("Stalled() = true while b has a runnable batch")
	}
	if err := m.Submit(jobOn(2, "a"), 0); err != nil {
		t.Fatal(err)
	}
	if m.PendingJobs() != 3 {
		t.Fatalf("pending = %d, want 3", m.PendingJobs())
	}
	rounds, completed := drain(t, m)
	if len(rounds) != 4 {
		t.Fatalf("rounds = %d, want 4 (2 segments per file, a's jobs share)", len(rounds))
	}
	if len(completed) != 3 {
		t.Fatalf("completed = %v, want all three jobs", completed)
	}
	// a's batch of two shares one scan: some round carries both jobs.
	shared := false
	for _, r := range rounds {
		if len(r.Jobs) == 2 {
			shared = true
		}
	}
	if !shared {
		t.Fatal("a's batched jobs never shared a round")
	}
	if m.PendingJobs() != 0 {
		t.Fatalf("pending after drain = %d", m.PendingJobs())
	}
}

func TestMultiMRShareAddPlanMidRun(t *testing.T) {
	m, err := NewMultiMRShare([]*dfs.SegmentPlan{namedPlan(t, "a", 2, 2)},
		map[string][]int{"a": {1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddPlan(namedPlan(t, "derived", 2, 2), 0); err == nil {
		t.Fatal("AddPlan accepted expectJobs < 1")
	}
	if err := m.AddPlan(namedPlan(t, "derived", 2, 2), 2); err != nil {
		t.Fatal(err)
	}
	if err := m.AddPlan(namedPlan(t, "derived", 2, 2), 1); err == nil {
		t.Fatal("duplicate AddPlan accepted")
	}
	// The derived file's two expected readers form one merged batch.
	if err := m.Submit(jobOn(1, "derived"), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(jobOn(2, "derived"), 0); err != nil {
		t.Fatal(err)
	}
	rounds, completed := drain(t, m)
	if len(rounds) != 1 || len(rounds[0].Jobs) != 2 {
		t.Fatalf("rounds = %+v, want one shared scan", rounds)
	}
	if len(completed) != 2 {
		t.Fatalf("completed = %v", completed)
	}
}

func TestMultiMRShareConstructorErrors(t *testing.T) {
	if _, err := NewMultiMRShare(nil, nil, nil); err == nil {
		t.Fatal("accepted zero plans")
	}
	if _, err := NewMultiMRShare([]*dfs.SegmentPlan{namedPlan(t, "a", 2, 2)},
		map[string][]int{}, nil); err == nil {
		t.Fatal("accepted a file without a batch plan")
	}
}

func TestMultiMRShareRequeueAndAbort(t *testing.T) {
	m, err := NewMultiMRShare([]*dfs.SegmentPlan{namedPlan(t, "a", 4, 2)},
		map[string][]int{"a": {1, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(jobOn(1, "a"), 0); err != nil {
		t.Fatal(err)
	}
	r1, ok := m.NextRound(0)
	if !ok {
		t.Fatal("no round")
	}
	m.RequeueRound(r1, 1)
	r2, ok := m.NextRound(2)
	if !ok || r2.Segment != r1.Segment {
		t.Fatalf("requeued round = %+v, want segment %d", r2, r1.Segment)
	}
	m.RoundDone(r2, 3)
	m.AbortJobs([]JobID{1}, 4)
	if m.PendingJobs() != 0 {
		t.Fatalf("pending after abort = %d", m.PendingJobs())
	}
	if _, ok := m.NextRound(5); ok {
		t.Fatal("aborted job still scheduled")
	}

	mustPanic(t, "RoundDone idle", func() { m.RoundDone(r2, 6) })
	mustPanic(t, "RequeueRound idle", func() { m.RequeueRound(r2, 6) })
	if err := m.Submit(jobOn(2, "a"), 7); err != nil {
		t.Fatal(err)
	}
	r3, _ := m.NextRound(8)
	mustPanic(t, "NextRound in flight", func() { m.NextRound(8) })
	m.RoundDone(r3, 9)
}
