package scheduler

import (
	"testing"
)

func TestWindowSealsOnSizeCap(t *testing.T) {
	p := makePlan(t, 2, 2) // 1 segment
	w, err := NewWindowMRShare(p, 100, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.NextRound(1); ok {
		t.Fatal("batch of 1 inside window must not run yet")
	}
	if err := w.Submit(job(2), 2); err != nil {
		t.Fatal(err)
	}
	r, ok := w.NextRound(2)
	if !ok || len(r.Jobs) != 2 {
		t.Fatalf("size-capped batch should run: %+v ok=%v", r, ok)
	}
	done := w.RoundDone(r, 3)
	if len(done) != 2 {
		t.Fatalf("done = %v", done)
	}
	if w.PendingJobs() != 0 {
		t.Fatalf("pending = %d", w.PendingJobs())
	}
}

func TestWindowSealsOnExpiry(t *testing.T) {
	p := makePlan(t, 2, 2)
	w, err := NewWindowMRShare(p, 50, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Submit(job(1), 10); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.NextRound(40); ok {
		t.Fatal("window not expired at t=40 (first at 10, window 50)")
	}
	wake, ok := w.NextWake(40)
	if !ok || wake != 60 {
		t.Fatalf("NextWake = %v/%v, want 60/true", wake, ok)
	}
	r, ok := w.NextRound(60)
	if !ok || len(r.Jobs) != 1 {
		t.Fatalf("expired batch should run: ok=%v jobs=%v", ok, r.JobIDs())
	}
	w.RoundDone(r, 61)
}

func TestWindowLateArrivalStartsNewBatch(t *testing.T) {
	p := makePlan(t, 2, 2)
	w, err := NewWindowMRShare(p, 50, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	// Job 2 arrives after job 1's window expired but before the
	// driver polled: it must not join job 1's batch.
	if err := w.Submit(job(2), 70); err != nil {
		t.Fatal(err)
	}
	r, ok := w.NextRound(70)
	if !ok || len(r.Jobs) != 1 || r.Jobs[0].ID != 1 {
		t.Fatalf("first batch = %v, want job 1 alone", r.JobIDs())
	}
	w.RoundDone(r, 71)
	// Job 2's own window (70..120) has not expired at t=71.
	if _, ok := w.NextRound(71); ok {
		t.Fatal("job 2's batch should still be filling")
	}
	r, ok = w.NextRound(120)
	if !ok || len(r.Jobs) != 1 || r.Jobs[0].ID != 2 {
		t.Fatalf("second batch = %v, want job 2", r.JobIDs())
	}
	w.RoundDone(r, 121)
}

func TestWindowValidationAndErrors(t *testing.T) {
	p := makePlan(t, 2, 2)
	if _, err := NewWindowMRShare(p, 0, 2, nil); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := NewWindowMRShare(p, 10, 0, nil); err == nil {
		t.Error("zero maxBatch should fail")
	}
	w, err := NewWindowMRShare(p, 10, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "mrshare-window" {
		t.Errorf("Name = %q", w.Name())
	}
	if err := w.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Submit(job(1), 1); err == nil {
		t.Error("duplicate should fail")
	}
	bad := job(2)
	bad.File = "x"
	if err := w.Submit(bad, 1); err == nil {
		t.Error("wrong file should fail")
	}
	if _, ok := w.NextWake(0); !ok {
		t.Error("filling batch should report a wake time")
	}
}

func TestWindowProtocolPanics(t *testing.T) {
	p := makePlan(t, 2, 2)
	w, err := NewWindowMRShare(p, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := w.NextRound(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double NextRound should panic")
			}
		}()
		w.NextRound(0)
	}()
	w.RoundDone(r, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("stray RoundDone should panic")
			}
		}()
		w.RoundDone(r, 1)
	}()
	if _, ok := w.NextWake(2); ok {
		t.Error("no filling batch -> no wake time")
	}
}

func TestWindowFreshJobsAndTagged(t *testing.T) {
	p := makePlan(t, 4, 2) // 2 segments
	w, err := NewWindowMRShare(p, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r0, _ := w.NextRound(5)
	if r0.FreshJobs != 1 || !r0.Tagged {
		t.Errorf("first round = %+v, want FreshJobs=1 Tagged", r0)
	}
	w.RoundDone(r0, 6)
	r1, _ := w.NextRound(6)
	if r1.FreshJobs != 0 {
		t.Errorf("continuation round FreshJobs = %d, want 0", r1.FreshJobs)
	}
	w.RoundDone(r1, 7)
}
