package scheduler

import (
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// MRShare reproduces the file-based shared-scan baseline the paper
// compares against (§II-C, adapted from Nykiel et al., PVLDB 2010):
// jobs are grouped into predetermined batches; a batch waits until its
// last member has been submitted, then the whole batch runs as one
// merged job sharing a single scan of the entire file from the
// beginning.
//
// The batch composition is fixed up front (the paper's MRS1/MRS2/MRS3
// variants are batch-size lists [10], [6 4] and [3 3 4]), which mirrors
// MRShare's assumption that query patterns are known in advance.
type MRShare struct {
	plan  *dfs.SegmentPlan
	log   *trace.Log
	sizes []int

	seen      map[JobID]bool
	submitted int       // total jobs submitted so far
	filling   []JobMeta // members of the batch currently accumulating
	// fillAborted counts jobs aborted out of the filling batch; they
	// still occupy their slot in the batch plan so the batch becomes
	// ready at the same submission count.
	fillAborted int
	fillIdx     int         // index of the batch being filled
	ready       [][]JobMeta // complete batches awaiting execution, FIFO
	cur         *mrshareRun
	inFlight    bool
	pending     int
}

type mrshareRun struct {
	jobs []JobMeta
	next int // next segment (linear 0..k-1)
}

// NewMRShare returns an MRShare scheduler whose consecutive batch
// sizes are batchSizes (e.g. [6,4] groups the first six submissions,
// then the next four). log may be nil.
func NewMRShare(plan *dfs.SegmentPlan, batchSizes []int, log *trace.Log) (*MRShare, error) {
	if len(batchSizes) == 0 {
		return nil, fmt.Errorf("scheduler: MRShare needs at least one batch size")
	}
	for i, n := range batchSizes {
		if n <= 0 {
			return nil, fmt.Errorf("scheduler: MRShare batch %d has size %d, want positive", i, n)
		}
	}
	sizes := make([]int, len(batchSizes))
	copy(sizes, batchSizes)
	return &MRShare{plan: plan, log: log, sizes: sizes, seen: make(map[JobID]bool)}, nil
}

// Name implements Scheduler.
func (m *MRShare) Name() string { return "mrshare" }

// capacity returns the total number of jobs the batch plan covers.
func (m *MRShare) capacity() int {
	total := 0
	for _, n := range m.sizes {
		total += n
	}
	return total
}

// Submit implements Scheduler.
func (m *MRShare) Submit(job JobMeta, at vclock.Time) error {
	if m.seen[job.ID] {
		return fmt.Errorf("%w: %d", ErrDuplicateJob, job.ID)
	}
	if job.File != m.plan.File().Name {
		return fmt.Errorf("%w: job %d reads %q, plan is for %q", ErrWrongFile, job.ID, job.File, m.plan.File().Name)
	}
	if m.submitted >= m.capacity() {
		return fmt.Errorf("scheduler: MRShare batch plan %v covers %d jobs; job %d exceeds it", m.sizes, m.capacity(), job.ID)
	}
	m.seen[job.ID] = true
	m.submitted++
	m.pending++
	m.filling = append(m.filling, job.normalized())
	m.log.Addf(at, trace.JobSubmitted, int(job.ID), -1, "mrshare batch %d (%d/%d)", m.fillIdx, len(m.filling)+m.fillAborted, m.sizes[m.fillIdx])
	if len(m.filling)+m.fillAborted == m.sizes[m.fillIdx] {
		m.ready = append(m.ready, m.filling)
		m.filling = nil
		m.fillAborted = 0
		m.fillIdx++
	}
	return nil
}

// NextRound implements Scheduler.
func (m *MRShare) NextRound(now vclock.Time) (Round, bool) {
	if m.inFlight {
		panic("scheduler: MRShare.NextRound called with a round in flight")
	}
	if m.cur == nil {
		if len(m.ready) == 0 {
			return Round{}, false
		}
		m.cur = &mrshareRun{jobs: m.ready[0]}
		m.ready = m.ready[1:]
	}
	seg := m.cur.next
	r := Round{
		Segment: seg,
		Blocks:  m.plan.Blocks(seg),
		Jobs:    m.cur.jobs,
		Tagged:  true, // MRShare merges jobs via record tagging
	}
	if seg == 0 {
		r.FreshJobs = 1 // the merged batch is submitted as one job
	}
	if seg == m.plan.NumSegments()-1 {
		r.Completes = r.JobIDs()
	}
	m.inFlight = true
	m.log.Addf(now, trace.RoundLaunched, -1, seg, "mrshare batch of %d", len(m.cur.jobs))
	return r, true
}

// RoundDone implements Scheduler.
func (m *MRShare) RoundDone(r Round, now vclock.Time) []JobID {
	if !m.inFlight {
		panic("scheduler: MRShare.RoundDone without a round in flight")
	}
	m.inFlight = false
	m.log.Addf(now, trace.RoundFinished, -1, r.Segment, "mrshare")
	m.cur.next++
	if m.cur.next == m.plan.NumSegments() {
		done := make([]JobID, len(m.cur.jobs))
		for i, j := range m.cur.jobs {
			done[i] = j.ID
			m.log.Addf(now, trace.JobCompleted, int(j.ID), -1, "mrshare")
		}
		m.pending -= len(done)
		m.cur = nil
		return done
	}
	return nil
}

var _ Recoverable = (*MRShare)(nil)

// RequeueRound implements Recoverable: the lost round is resubmitted
// whole — the merged batch's segment progress is unchanged.
func (m *MRShare) RequeueRound(r Round, now vclock.Time) {
	if !m.inFlight {
		panic("scheduler: MRShare.RequeueRound without a round in flight")
	}
	m.inFlight = false
	m.log.Addf(now, trace.SubJobRequeued, -1, r.Segment, "mrshare batch round lost; resubmitting")
}

// AbortJobs implements Recoverable: failed jobs are removed from the
// running batch and from batches not yet started. A batch whose last
// member is aborted dissolves.
func (m *MRShare) AbortJobs(ids []JobID, now vclock.Time) {
	drop := make(map[JobID]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	strip := func(jobs []JobMeta, where string) []JobMeta {
		kept := jobs[:0]
		for _, j := range jobs {
			if drop[j.ID] {
				m.pending--
				m.log.Addf(now, trace.JobAborted, int(j.ID), -1, "mrshare (%s)", where)
				continue
			}
			kept = append(kept, j)
		}
		return kept
	}
	if m.cur != nil {
		m.cur.jobs = strip(m.cur.jobs, "running")
		if len(m.cur.jobs) == 0 {
			m.cur = nil
		}
	}
	ready := m.ready[:0]
	for _, batch := range m.ready {
		if batch = strip(batch, "ready"); len(batch) > 0 {
			ready = append(ready, batch)
		}
	}
	m.ready = ready
	// Jobs still filling a batch keep their slot in the batch plan: the
	// batch becomes ready at the same submission count, just smaller.
	before := len(m.filling)
	m.filling = strip(m.filling, "filling")
	m.fillAborted += before - len(m.filling)
}

// PendingJobs implements Scheduler.
func (m *MRShare) PendingJobs() int { return m.pending }

// Stalled reports whether the scheduler is permanently stuck: no
// runnable work, yet unfinished jobs are waiting in a batch that can
// only become ready through future submissions. The driver uses this
// to distinguish "idle until the next arrival" from a dead batch plan.
func (m *MRShare) Stalled() bool {
	return m.cur == nil && len(m.ready) == 0 && len(m.filling) > 0
}
