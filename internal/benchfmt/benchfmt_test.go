package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Version:        Version,
		Workload:       "tiny",
		WorkloadDigest: "aabbccddeeff00112233445566778899aabbccddeeff00112233445566778899",
		Cells: []Cell{
			{
				Key: CellKey{Scheduler: "fifo", Engine: EngineSim},
				TET: 200, ART: 120, P95: 190, Rounds: 12,
				OutputDigest: "d1d1d1d1d1d1",
				Jobs:         []JobTiming{{ID: 1, CompletedAt: 200, Response: 200}},
			},
			{
				Key: CellKey{Scheduler: "s3", Engine: EngineSim, Pipeline: true, Cache: true},
				TET: 100, ART: 60, P95: 95, Rounds: 8, CacheHitRatio: 0.685,
				OutputDigest: "d1d1d1d1d1d1",
				Jobs:         []JobTiming{{ID: 1, CompletedAt: 100, Response: 100}},
			},
		},
	}
}

func TestEncodeDecodeCanonical(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Encode sorts: fifo sorts after s3? No — canonical order is by
	// scheduler name, so "fifo" precedes "s3".
	if r.Cells[0].Key.Scheduler != "fifo" {
		t.Fatalf("cells not sorted: %v first", r.Cells[0].Key)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("encode∘decode not canonical:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestDecodeRejects(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"version":99,"workload":"w","workloadDigest":"d","cells":[]}`)); err == nil {
		t.Fatal("accepted wrong version")
	}
	if _, err := Decode(strings.NewReader(`{"version":1,"workload":"w","workloadDigest":"d","cells":[],"zorp":1}`)); err == nil {
		t.Fatal("accepted unknown field")
	}
	if _, err := Decode(strings.NewReader(`nope`)); err == nil {
		t.Fatal("accepted non-JSON")
	}
}

func TestCellKeyString(t *testing.T) {
	k := CellKey{Scheduler: "s3", Engine: EngineSim, Pipeline: true}
	if got := k.String(); got != "s3/sim/pipe/-" {
		t.Fatalf("String() = %q", got)
	}
}

func TestDigestConsensus(t *testing.T) {
	r := sampleReport()
	d, err := r.DigestConsensus()
	if err != nil || d != "d1d1d1d1d1d1" {
		t.Fatalf("DigestConsensus = %q, %v", d, err)
	}
	r.Cells[1].OutputDigest = "different"
	if _, err := r.DigestConsensus(); err == nil {
		t.Fatal("consensus accepted disagreeing digests")
	}
	// Digest-less cells (meta workloads) don't break consensus.
	r.Cells[1].OutputDigest = ""
	if d, err := r.DigestConsensus(); err != nil || d != "d1d1d1d1d1d1" {
		t.Fatalf("DigestConsensus with empty cell = %q, %v", d, err)
	}
}

func TestMarkdownTable(t *testing.T) {
	md := sampleReport().Markdown()
	for _, want := range []string{"| fifo/sim/-/- |", "| s3/sim/pipe/cache |", "100.00", "68.5%", "`d1d1d1d1d1d1`"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestSortOrder(t *testing.T) {
	r := &Report{
		Version: Version, Workload: "w", WorkloadDigest: "d",
		Cells: []Cell{
			{Key: CellKey{Scheduler: "s3", Engine: EngineSim, Pipeline: true}},
			{Key: CellKey{Scheduler: "s3", Engine: EngineSim, Pipeline: false, Cache: true}},
			{Key: CellKey{Scheduler: "s3", Engine: EngineSim, Pipeline: false, Cache: false}},
			{Key: CellKey{Scheduler: "s3", Engine: EngineReal}},
			{Key: CellKey{Scheduler: "fifo", Engine: EngineSim}},
		},
	}
	r.Sort()
	want := []string{
		"fifo/sim/-/-",
		"s3/engine/-/-",
		"s3/sim/-/-",
		"s3/sim/-/cache",
		"s3/sim/pipe/-",
	}
	for i, w := range want {
		if got := r.Cells[i].Key.String(); got != w {
			t.Fatalf("cell %d = %s, want %s", i, got, w)
		}
	}
}

// A zero-TET baseline cell can't be divided by; any nonzero current
// value must still read as a regression, and zero-vs-zero as clean.
func TestCompareZeroBaseline(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	base.Cells[0].TET = 0
	base.Cells[0].ART = 0
	cur.Cells[0].TET = 5
	cur.Cells[0].ART = 0
	d, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	regs := d.Regressions()
	if len(regs) != 1 || regs[0].Key.Scheduler != "fifo" {
		t.Fatalf("zero-baseline growth not flagged: %+v", d.Rows)
	}
	if regs[0].DART != 0 {
		t.Fatalf("zero-vs-zero ART delta = %v, want 0", regs[0].DART)
	}
}

func TestCompareGate(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	d, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(d.Rows) != 2 || len(d.Regressions()) != 0 {
		t.Fatalf("identical reports diffed: %+v", d)
	}

	// 20% TET regression on one cell trips the 10% gate.
	cur.Cell(CellKey{Scheduler: "s3", Engine: EngineSim, Pipeline: true, Cache: true}).TET = 120
	d, err = Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	regs := d.Regressions()
	if len(regs) != 1 || regs[0].Key.Scheduler != "s3" || regs[0].DTET < 0.19 || regs[0].DTET > 0.21 {
		t.Fatalf("regressions = %+v", regs)
	}
	if md := d.Markdown(); !strings.Contains(md, "REGRESSED") {
		t.Fatalf("diff markdown missing verdict:\n%s", md)
	}

	// ART-only regression also trips.
	cur = sampleReport()
	cur.Cells[0].ART = 150
	d, err = Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions()) != 1 {
		t.Fatalf("ART regression not caught: %+v", d.Rows)
	}

	// Improvements never trip the gate.
	cur = sampleReport()
	cur.Cells[0].TET = 50
	cur.Cells[0].ART = 30
	d, err = Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions()) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", d.Rows)
	}
}

func TestComparePartialMatrix(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Cells = cur.Cells[:1] // sim-only CI run vs full baseline
	d, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(d.Rows) != 1 || len(d.MissingInCurrent) != 1 {
		t.Fatalf("partial diff: %+v", d)
	}
	if md := d.Markdown(); !strings.Contains(md, "missing in current") {
		t.Fatalf("diff markdown missing note:\n%s", md)
	}
}

func TestCompareRefusals(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.WorkloadDigest = strings.Repeat("0", 64)
	if _, err := Compare(base, cur, 0.10); err == nil {
		t.Fatal("compared different workloads")
	}
	cur = sampleReport()
	cur.Cells[0].OutputDigest = "poisoned"
	if _, err := Compare(base, cur, 0.10); err == nil {
		t.Fatal("compared a digest-inconsistent report")
	}
	if _, err := Compare(base, sampleReport(), -1); err == nil {
		t.Fatal("accepted negative threshold")
	}
	empty := &Report{Version: Version, Workload: base.Workload, WorkloadDigest: base.WorkloadDigest}
	if _, err := Compare(base, empty, 0.10); err == nil {
		t.Fatal("compared reports sharing no cells")
	}
}
