// Package benchfmt is the interchange format of the differential
// benchmark harness: one Report per s3compare run, one Cell per
// {scheduler} × {sim|engine} × {pipeline} × {cache} configuration, all
// measured over the same workload file. The encoding is canonical
// (sorted cells, stable JSON field order, trailing newline), so a
// deterministic run produces byte-identical report files — which is
// itself one of the properties the harness's regression tests assert.
//
// The format is consumed by cmd/s3report, which diffs two report sets,
// checks the cross-cell output-digest invariant, renders a markdown
// comparison table, and gates CI on TET/ART regressions beyond a
// threshold.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Version is the report schema version.
const Version = 1

// Engine kinds a cell can run on.
const (
	EngineSim  = "sim"    // cost-model simulator timings
	EngineReal = "engine" // real in-process MapReduce, sim-priced timings
)

// CellKey identifies one configuration of the benchmark matrix.
type CellKey struct {
	// Scheduler is the scheme name ("s3", "fifo", "mrs1", ...).
	Scheduler string `json:"scheduler"`
	// Engine is EngineSim or EngineReal.
	Engine string `json:"engine"`
	// Pipeline requests stage-pipelined execution. Schedulers that are
	// not stage-aware (MRShare) run serially either way; the flag
	// records what was asked, not what engaged.
	Pipeline bool `json:"pipeline"`
	// Cache enables the block cache at the workload's budget.
	Cache bool `json:"cache"`
}

// String renders the key in the compact form used in tables and flags:
// "s3/sim/pipe/cache", with "-" for disabled toggles.
func (k CellKey) String() string {
	pipe, cache := "-", "-"
	if k.Pipeline {
		pipe = "pipe"
	}
	if k.Cache {
		cache = "cache"
	}
	return fmt.Sprintf("%s/%s/%s/%s", k.Scheduler, k.Engine, pipe, cache)
}

// less orders keys scheduler, engine, pipeline, cache — the canonical
// cell order within a report.
func (k CellKey) less(o CellKey) bool {
	if k.Scheduler != o.Scheduler {
		return k.Scheduler < o.Scheduler
	}
	if k.Engine != o.Engine {
		return k.Engine < o.Engine
	}
	if k.Pipeline != o.Pipeline {
		return !k.Pipeline
	}
	if k.Cache != o.Cache {
		return !k.Cache
	}
	return false
}

// JobTiming is one job's lifecycle in virtual seconds.
type JobTiming struct {
	ID          int     `json:"id"`
	SubmittedAt float64 `json:"submittedAt"`
	StartedAt   float64 `json:"startedAt"`
	CompletedAt float64 `json:"completedAt"`
	Response    float64 `json:"response"`
}

// Cell is one configuration's measured outcome.
type Cell struct {
	Key CellKey `json:"key"`
	// TET/ART/P95 are the paper's headline metrics, virtual seconds.
	TET float64 `json:"tet"`
	ART float64 `json:"art"`
	P95 float64 `json:"p95"`
	// Rounds is the number of scan waves the run took.
	Rounds int `json:"rounds"`
	// CacheHitRatio is hits/(hits+misses) over the run, 0 with cache
	// off.
	CacheHitRatio float64 `json:"cacheHitRatio"`
	// FaultRetries counts re-executed block attempts.
	FaultRetries int `json:"faultRetries"`
	// OutputDigest fingerprints the run's job outputs (sha256 over
	// per-job sorted key/value records). Every cell of one workload
	// must carry the same digest — schedulers may reorder work, never
	// change results. Empty when outputs were unavailable (meta-content
	// workloads).
	OutputDigest string `json:"outputDigest,omitempty"`
	// Jobs is the per-job completion table, sorted by id.
	Jobs []JobTiming `json:"jobs"`
}

// Report is one s3compare run over one workload file.
type Report struct {
	Version int `json:"version"`
	// Workload is the workload's header name; WorkloadDigest is the
	// sha256 of its canonical serialization. Diffing reports from
	// different workloads is meaningless, so s3report refuses it.
	Workload       string `json:"workload"`
	WorkloadDigest string `json:"workloadDigest"`
	Cells          []Cell `json:"cells"`
}

// Sort orders cells canonically.
func (r *Report) Sort() {
	sort.Slice(r.Cells, func(i, j int) bool { return r.Cells[i].Key.less(r.Cells[j].Key) })
}

// Cell returns the cell with the given key, nil if absent.
func (r *Report) Cell(k CellKey) *Cell {
	for i := range r.Cells {
		if r.Cells[i].Key == k {
			return &r.Cells[i]
		}
	}
	return nil
}

// Encode writes the canonical form: sorted cells, two-space indent,
// trailing newline.
func (r *Report) Encode(w io.Writer) error {
	r.Sort()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: encoding report: %w", err)
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// Decode reads a report, rejecting unknown fields and version
// mismatches.
func Decode(rd io.Reader) (*Report, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchfmt: decoding report: %w", err)
	}
	if r.Version != Version {
		return nil, fmt.Errorf("benchfmt: report version %d, this build supports %d", r.Version, Version)
	}
	return &r, nil
}

// DigestConsensus checks the cross-cell output invariant: every cell
// that carries an output digest carries the *same* one. It returns the
// consensus digest ("" when no cell carries one).
func (r *Report) DigestConsensus() (string, error) {
	digest := ""
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.OutputDigest == "" {
			continue
		}
		if digest == "" {
			digest = c.OutputDigest
			continue
		}
		if c.OutputDigest != digest {
			return "", fmt.Errorf("benchfmt: cell %s output digest %.12s disagrees with %.12s — a scheduler changed job outputs",
				c.Key, c.OutputDigest, digest)
		}
	}
	return digest, nil
}

// Markdown renders the report as a comparison table.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Benchmark report: %s\n\n", r.Workload)
	fmt.Fprintf(&b, "Workload digest `%.12s`, %d cells.\n\n", r.WorkloadDigest, len(r.Cells))
	b.WriteString("| cell | TET (s) | ART (s) | P95 (s) | rounds | cache hits | retries | output |\n")
	b.WriteString("|------|--------:|--------:|--------:|-------:|-----------:|--------:|--------|\n")
	for i := range r.Cells {
		c := &r.Cells[i]
		digest := "—"
		if c.OutputDigest != "" {
			digest = fmt.Sprintf("`%.12s`", c.OutputDigest)
		}
		fmt.Fprintf(&b, "| %s | %.2f | %.2f | %.2f | %d | %.1f%% | %d | %s |\n",
			c.Key, c.TET, c.ART, c.P95, c.Rounds, 100*c.CacheHitRatio, c.FaultRetries, digest)
	}
	return b.String()
}

// DiffRow is one cell's baseline-vs-current comparison.
type DiffRow struct {
	Key CellKey `json:"key"`
	// BaseTET/CurTET and BaseART/CurART are the two runs' metrics;
	// DTET/DART are the relative deltas ((cur-base)/base), positive
	// when the current run is slower.
	BaseTET float64 `json:"baseTET"`
	CurTET  float64 `json:"curTET"`
	DTET    float64 `json:"dTET"`
	BaseART float64 `json:"baseART"`
	CurART  float64 `json:"curART"`
	DART    float64 `json:"dART"`
	// Regressed marks rows whose TET or ART delta exceeds the diff
	// threshold.
	Regressed bool `json:"regressed"`
}

// Diff is the outcome of comparing a current report against a
// baseline.
type Diff struct {
	// Threshold is the relative regression gate the diff was taken at.
	Threshold float64   `json:"threshold"`
	Rows      []DiffRow `json:"rows"`
	// MissingInCurrent/MissingInBaseline list cells only one side has
	// (rendered as informational; a sim-only CI run legitimately
	// compares a subset of a full-matrix baseline).
	MissingInCurrent  []CellKey `json:"missingInCurrent,omitempty"`
	MissingInBaseline []CellKey `json:"missingInBaseline,omitempty"`
}

// Regressions returns the rows that exceeded the threshold.
func (d *Diff) Regressions() []DiffRow {
	var out []DiffRow
	for _, row := range d.Rows {
		if row.Regressed {
			out = append(out, row)
		}
	}
	return out
}

// Compare diffs current against baseline over the cells both carry,
// flagging any TET or ART that regressed by more than threshold
// (relative; 0.10 = 10% slower). It fails outright when the reports
// measured different workloads or when either report violates the
// output-digest consensus.
func Compare(baseline, current *Report, threshold float64) (*Diff, error) {
	if threshold < 0 {
		return nil, fmt.Errorf("benchfmt: negative threshold %v", threshold)
	}
	if baseline.WorkloadDigest != current.WorkloadDigest {
		return nil, fmt.Errorf("benchfmt: baseline measured workload %s (%.12s), current %s (%.12s) — refusing to diff different workloads",
			baseline.Workload, baseline.WorkloadDigest, current.Workload, current.WorkloadDigest)
	}
	if _, err := baseline.DigestConsensus(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if _, err := current.DigestConsensus(); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	baseline.Sort()
	current.Sort()
	d := &Diff{Threshold: threshold}
	for i := range current.Cells {
		cur := &current.Cells[i]
		base := baseline.Cell(cur.Key)
		if base == nil {
			d.MissingInBaseline = append(d.MissingInBaseline, cur.Key)
			continue
		}
		row := DiffRow{
			Key:     cur.Key,
			BaseTET: base.TET, CurTET: cur.TET, DTET: relDelta(base.TET, cur.TET),
			BaseART: base.ART, CurART: cur.ART, DART: relDelta(base.ART, cur.ART),
		}
		row.Regressed = row.DTET > threshold || row.DART > threshold
		d.Rows = append(d.Rows, row)
	}
	for i := range baseline.Cells {
		if current.Cell(baseline.Cells[i].Key) == nil {
			d.MissingInCurrent = append(d.MissingInCurrent, baseline.Cells[i].Key)
		}
	}
	if len(d.Rows) == 0 {
		return nil, fmt.Errorf("benchfmt: reports share no cells — nothing to compare")
	}
	return d, nil
}

// relDelta returns (cur-base)/base, treating a zero baseline as "any
// increase is infinite regression, no change is none".
func relDelta(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 1e9
	}
	return (cur - base) / base
}

// Markdown renders the diff as a comparison table.
func (d *Diff) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Benchmark diff (gate: ±%.0f%%)\n\n", 100*d.Threshold)
	b.WriteString("| cell | TET base → cur | ΔTET | ART base → cur | ΔART | verdict |\n")
	b.WriteString("|------|---------------:|-----:|---------------:|-----:|---------|\n")
	for _, row := range d.Rows {
		verdict := "ok"
		if row.Regressed {
			verdict = "**REGRESSED**"
		}
		fmt.Fprintf(&b, "| %s | %.2f → %.2f | %+.1f%% | %.2f → %.2f | %+.1f%% | %s |\n",
			row.Key, row.BaseTET, row.CurTET, 100*row.DTET, row.BaseART, row.CurART, 100*row.DART, verdict)
	}
	writeMissing := func(label string, keys []CellKey) {
		if len(keys) == 0 {
			return
		}
		names := make([]string, len(keys))
		for i, k := range keys {
			names[i] = k.String()
		}
		fmt.Fprintf(&b, "\nNot compared (%s): %s.\n", label, strings.Join(names, ", "))
	}
	writeMissing("missing in current", d.MissingInCurrent)
	writeMissing("missing in baseline", d.MissingInBaseline)
	return b.String()
}
