package workload

import (
	"strings"
	"testing"
)

func TestLoadArrivalTrace(t *testing.T) {
	trace := `# id,at,file,weight,reduceWeight,priority
1,0,corpus
2,12.5,corpus,2
3,30,lineitem,1,25,3
`
	entries, err := LoadArrivalTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Job.ID != 1 || entries[0].At != 0 || entries[0].Job.File != "corpus" {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[1].Job.Weight != 2 || entries[1].At != 12.5 {
		t.Errorf("entry 1 = %+v", entries[1])
	}
	if entries[2].Job.ReduceWeight != 25 || entries[2].Job.Priority != 3 {
		t.Errorf("entry 2 = %+v", entries[2])
	}
}

func TestLoadArrivalTraceErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"too few fields": "1,0\n",
		"bad id":         "x,0,f\n",
		"zero id":        "0,0,f\n",
		"dup id":         "1,0,f\n1,1,f\n",
		"bad time":       "1,x,f\n",
		"negative time":  "1,-5,f\n",
		"empty file":     "1,0,\n",
		"bad weight":     "1,0,f,zero\n",
		"neg weight":     "1,0,f,-1\n",
		"bad rweight":    "1,0,f,1,x\n",
		"bad priority":   "1,0,f,1,1,x\n",
	}
	for name, trace := range cases {
		if _, err := LoadArrivalTrace(strings.NewReader(trace)); err == nil {
			t.Errorf("%s: expected error for %q", name, trace)
		}
	}
}
