package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// CSV arrival traces: real deployments replay recorded submission logs
// rather than synthetic patterns. The format is one job per line:
//
//	id,arrival_seconds,file[,weight[,reduce_weight[,priority]]]
//
// Lines starting with '#' and blank lines are skipped. Arrival times
// must be non-negative; ids must be unique positive integers.

// TraceEntry is one parsed arrival.
type TraceEntry struct {
	Job scheduler.JobMeta
	At  vclock.Time
}

// LoadArrivalTrace parses a CSV arrival trace.
func LoadArrivalTrace(r io.Reader) ([]TraceEntry, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // variable: optional columns
	cr.Comment = '#'
	cr.TrimLeadingSpace = true

	var out []TraceEntry
	seen := map[scheduler.JobID]bool{}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("workload: arrival trace line %d: %w", line, err)
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("workload: arrival trace line %d has %d fields, want at least id,at,file", line, len(rec))
		}
		id64, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil || id64 <= 0 {
			return nil, fmt.Errorf("workload: arrival trace line %d: bad job id %q", line, rec[0])
		}
		id := scheduler.JobID(id64)
		if seen[id] {
			return nil, fmt.Errorf("workload: arrival trace line %d: duplicate job id %d", line, id)
		}
		seen[id] = true
		at, err := strconv.ParseFloat(rec[1], 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("workload: arrival trace line %d: bad arrival time %q", line, rec[1])
		}
		meta := scheduler.JobMeta{
			ID:   id,
			Name: fmt.Sprintf("trace-%d", id),
			File: rec[2],
		}
		if meta.File == "" {
			return nil, fmt.Errorf("workload: arrival trace line %d: empty file", line)
		}
		optFloat := func(idx int, dst *float64) error {
			if len(rec) > idx && rec[idx] != "" {
				v, err := strconv.ParseFloat(rec[idx], 64)
				if err != nil || v <= 0 {
					return fmt.Errorf("workload: arrival trace line %d: bad weight %q", line, rec[idx])
				}
				*dst = v
			}
			return nil
		}
		if err := optFloat(3, &meta.Weight); err != nil {
			return nil, err
		}
		if err := optFloat(4, &meta.ReduceWeight); err != nil {
			return nil, err
		}
		if len(rec) > 5 && rec[5] != "" {
			p, err := strconv.Atoi(rec[5])
			if err != nil {
				return nil, fmt.Errorf("workload: arrival trace line %d: bad priority %q", line, rec[5])
			}
			meta.Priority = p
		}
		out = append(out, TraceEntry{Job: meta, At: vclock.Time(at)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: arrival trace is empty")
	}
	return out, nil
}
