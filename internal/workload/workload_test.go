package workload

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
)

func TestTextGenDeterministic(t *testing.T) {
	g1 := NewTextGen(42)
	g2 := NewTextGen(42)
	if !bytes.Equal(g1.Block(3, 1024), g2.Block(3, 1024)) {
		t.Error("same seed should produce identical blocks")
	}
	g3 := NewTextGen(43)
	if bytes.Equal(g1.Block(3, 1024), g3.Block(3, 1024)) {
		t.Error("different seeds should produce different blocks")
	}
	if bytes.Equal(g1.Block(0, 1024), g1.Block(1, 1024)) {
		t.Error("different blocks should differ")
	}
}

func TestTextGenExactSize(t *testing.T) {
	g := NewTextGen(1)
	for _, size := range []int64{1, 17, 256, 4096} {
		if got := len(g.Block(0, size)); int64(got) != size {
			t.Errorf("Block size = %d, want %d", got, size)
		}
	}
}

func TestTextGenWordsFromVocabulary(t *testing.T) {
	g := NewTextGen(7)
	vocab := map[string]bool{}
	for _, w := range Vocabulary() {
		vocab[w] = true
	}
	words := strings.Fields(string(g.Block(0, 2048)))
	if len(words) < 100 {
		t.Fatalf("only %d words in 2 KiB block", len(words))
	}
	for _, w := range words[:len(words)-1] { // last word may be cut by size truncation
		if !vocab[w] {
			t.Fatalf("word %q not in vocabulary", w)
		}
	}
}

func TestTextGenZipfSkew(t *testing.T) {
	// "the" (rank 1) must be much more frequent than a tail word.
	g := NewTextGen(11)
	words := strings.Fields(string(g.Block(0, 64<<10)))
	counts := map[string]int{}
	for _, w := range words {
		counts[w]++
	}
	if counts["the"] < 5*counts["house"] {
		t.Errorf("Zipf skew missing: the=%d house=%d", counts["the"], counts["house"])
	}
}

func TestAddTextFile(t *testing.T) {
	store := dfs.MustStore(2, 1)
	f, err := AddTextFile(store, "corpus", 4, 512, 9)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks != 4 {
		t.Fatalf("NumBlocks = %d", f.NumBlocks)
	}
	data, err := store.ReadBlock(dfs.BlockID{File: "corpus", Index: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 512 {
		t.Fatalf("block len = %d", len(data))
	}
}

func TestForEachWord(t *testing.T) {
	var words []string
	forEachWord([]byte("  the quick\nbrown\tfox "), func(w string) { words = append(words, w) })
	want := []string{"the", "quick", "brown", "fox"}
	if strings.Join(words, ",") != strings.Join(want, ",") {
		t.Errorf("words = %v, want %v", words, want)
	}
	forEachWord(nil, func(string) { t.Error("empty input should yield no words") })
	// No trailing separator: final word still reported.
	words = nil
	forEachWord([]byte("abc"), func(w string) { words = append(words, w) })
	if len(words) != 1 || words[0] != "abc" {
		t.Errorf("words = %v", words)
	}
}

func TestPatternCountJobEndToEnd(t *testing.T) {
	store := dfs.MustStore(2, 1)
	if _, err := AddTextFile(store, "corpus", 4, 2048, 5); err != nil {
		t.Fatal(err)
	}
	e := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	res, err := e.RunJob(WordCountJob("wc-t", "corpus", "t", 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) == 0 {
		t.Fatal("prefix 't' matched nothing")
	}
	total := int64(0)
	for _, kv := range res.Output {
		if !strings.HasPrefix(kv.Key, "t") {
			t.Errorf("output word %q does not match prefix", kv.Key)
		}
		n, err := strconv.ParseInt(kv.Value, 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	// Cross-check against a direct scan of the corpus.
	want := int64(0)
	g := NewTextGen(5)
	for i := 0; i < 4; i++ {
		forEachWord(g.Block(i, 2048), func(w string) {
			if strings.HasPrefix(w, "t") {
				want++
			}
		})
	}
	if total != want {
		t.Errorf("counted %d words, direct scan says %d", total, want)
	}
}

func TestHeavyJobMultipliesMapOutput(t *testing.T) {
	store := dfs.MustStore(2, 1)
	if _, err := AddTextFile(store, "corpus", 2, 1024, 5); err != nil {
		t.Fatal(err)
	}
	e := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	normal, err := e.RunJob(WordCountJob("n", "corpus", "t", 1))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := e.RunJob(HeavyWordCountJob("h", "corpus", "t", 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	nOut := normal.Counters.Get(mapreduce.CounterMapOutputRecords)
	hOut := heavy.Counters.Get(mapreduce.CounterMapOutputRecords)
	if hOut != 10*nOut {
		t.Errorf("heavy map output = %d, want 10x normal (%d)", hOut, nOut)
	}
	// Counts are scaled by the factor too (each word counted 10x).
	if normal.Output[0].Key != heavy.Output[0].Key {
		t.Errorf("heavy output keys diverge: %v vs %v", normal.Output[0], heavy.Output[0])
	}
}

func TestSumReducerRejectsGarbage(t *testing.T) {
	err := SumReducer{}.Reduce("w", []string{"1", "x"}, func(mapreduce.KV) {})
	if err == nil {
		t.Error("non-numeric value should fail")
	}
}

func TestDistinctPrefixes(t *testing.T) {
	p := DistinctPrefixes(20)
	if len(p) != 20 {
		t.Fatalf("len = %d", len(p))
	}
	seen := map[string]bool{}
	for _, s := range p[:10] {
		if seen[s] {
			t.Errorf("prefix %q repeats within first 10", s)
		}
		seen[s] = true
	}
}

func TestLineitemDeterministicAndShaped(t *testing.T) {
	g1 := NewLineitemGen(3)
	g2 := NewLineitemGen(3)
	b1 := g1.Block(0, 4096)
	if !bytes.Equal(b1, g2.Block(0, 4096)) {
		t.Error("lineitem generation not deterministic")
	}
	if len(b1) != 4096 {
		t.Fatalf("block len = %d, want 4096 (padded)", len(b1))
	}
	rows := 0
	forEachLine(b1, func(line []byte) {
		if len(bytes.TrimSpace(line)) == 0 {
			return
		}
		rows++
		cols := bytes.Split(line, []byte{'|'})
		if len(cols) != 16 {
			t.Fatalf("row has %d columns, want 16: %q", len(cols), line)
		}
		qty, _, _, err := parseQuantity(line)
		if err != nil {
			t.Fatal(err)
		}
		if qty < 1 || qty > QuantityMax {
			t.Fatalf("quantity %d out of range", qty)
		}
	})
	if rows < 10 {
		t.Fatalf("only %d rows in 4 KiB block", rows)
	}
}

func TestSelectionJobSelectivity(t *testing.T) {
	store := dfs.MustStore(2, 1)
	if _, err := AddLineitemFile(store, "lineitem", 6, 16<<10, 17); err != nil {
		t.Fatal(err)
	}
	e := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	// MaxQuantity 5 of uniform 1..50 -> ~10% selectivity (paper §V-G).
	res, err := e.RunJob(SelectionJob("sel", "lineitem", 5))
	if err != nil {
		t.Fatal(err)
	}
	in := res.Counters.Get(mapreduce.CounterMapInputRecords)
	out := res.Counters.Get(mapreduce.CounterMapOutputRecords)
	if in == 0 {
		t.Fatal("no input rows")
	}
	sel := float64(out) / float64(in)
	if sel < 0.06 || sel > 0.14 {
		t.Errorf("selectivity = %.3f (%d/%d), want ~0.10", sel, out, in)
	}
	// Every selected row satisfies the predicate.
	for _, kv := range res.Output {
		qty, _, _, err := parseQuantity([]byte(kv.Value))
		if err != nil {
			t.Fatal(err)
		}
		if qty > 5 {
			t.Fatalf("selected row has quantity %d > 5", qty)
		}
	}
}

func TestSelectionMapperMalformedRow(t *testing.T) {
	m := SelectionMapper{MaxQuantity: 5}
	err := m.Map(dfs.BlockID{}, []byte("not|enough|columns\n"), func(mapreduce.KV) {})
	if err == nil {
		t.Error("malformed row should fail")
	}
	err = m.Map(dfs.BlockID{}, []byte("1|2|3|4|notanumber|x\n"), func(mapreduce.KV) {})
	if err == nil {
		t.Error("non-numeric quantity should fail")
	}
}

func TestDensePattern(t *testing.T) {
	times := DensePattern(4, 2)
	want := []float64{0, 2, 4, 6}
	for i, w := range want {
		if float64(times[i]) != w {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestSparseGroupsPaperShape(t *testing.T) {
	// 10 jobs in three groups of 3, 3, 4 (paper §V-D).
	times := SparseGroups([]int{3, 3, 4}, 5, 400)
	if len(times) != 10 {
		t.Fatalf("len = %d, want 10", len(times))
	}
	// Group starts at 0, 400, 800.
	if times[0] != 0 || times[3] != 400 || times[6] != 800 {
		t.Errorf("group starts = %v/%v/%v, want 0/400/800", times[0], times[3], times[6])
	}
	if times[2] != 10 || times[9] != 815 {
		t.Errorf("intra-group spacing wrong: %v", times)
	}
	// Monotone non-decreasing.
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("arrivals not monotone: %v", times)
		}
	}
}

func TestPatternPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { DensePattern(0, 1) },
		func() { DensePattern(3, -1) },
		func() { SparseGroups(nil, 1, 1) },
		func() { SparseGroups([]int{2, 0}, 1, 1) },
		func() { SparseGroups([]int{2}, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMetaBuilders(t *testing.T) {
	wc := WordCountMetas(3, "corpus", 1, 1)
	if len(wc) != 3 || wc[0].ID != 1 || wc[2].ID != 3 || wc[1].File != "corpus" {
		t.Errorf("WordCountMetas = %+v", wc)
	}
	sel := SelectionMetas(2, "lineitem", 2, 3)
	if len(sel) != 2 || sel[1].Weight != 2 || sel[1].ReduceWeight != 3 {
		t.Errorf("SelectionMetas = %+v", sel)
	}
}

// Property: every generated text block parses into vocabulary words
// (except a possibly truncated final token), at any size and seed.
func TestTextBlockProperty(t *testing.T) {
	vocab := map[string]bool{}
	for _, w := range Vocabulary() {
		vocab[w] = true
	}
	prop := func(seed int64, idx8 uint8, size16 uint16) bool {
		size := int64(size16%4096) + 64
		g := NewTextGen(seed)
		words := strings.Fields(string(g.Block(int(idx8), size)))
		if len(words) == 0 {
			return false
		}
		for _, w := range words[:len(words)-1] {
			if !vocab[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAggregationJobQ1Style(t *testing.T) {
	store := dfs.MustStore(2, 1)
	if _, err := AddLineitemFile(store, "lineitem", 6, 16<<10, 23); err != nil {
		t.Fatal(err)
	}
	e := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	res, err := e.RunJob(AggregationJob("q1", "lineitem", 2))
	if err != nil {
		t.Fatal(err)
	}
	// 3 return flags x 2 line statuses = 6 groups.
	if len(res.Output) != 6 {
		t.Fatalf("groups = %d, want 6: %v", len(res.Output), res.Output)
	}
	// Cross-check the total against a direct scan.
	var want int64
	g := NewLineitemGen(23)
	for i := 0; i < 6; i++ {
		forEachLine(g.Block(i, 16<<10), func(line []byte) {
			if len(bytes.TrimSpace(line)) == 0 {
				return
			}
			qty, _, _, err := parseQuantity(line)
			if err != nil {
				t.Fatal(err)
			}
			want += int64(qty)
		})
	}
	var got int64
	for _, kv := range res.Output {
		n, err := strconv.ParseInt(kv.Value, 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		got += n
	}
	if got != want {
		t.Fatalf("aggregated quantity %d != direct scan %d", got, want)
	}
}

func TestAggregationMapperMalformed(t *testing.T) {
	err := AggregationMapper{}.Map(dfs.BlockID{}, []byte("a|b|c\n"), func(mapreduce.KV) {})
	if err == nil {
		t.Error("short row should fail")
	}
}

func TestPoissonPattern(t *testing.T) {
	times := PoissonPattern(200, 10, 3)
	if len(times) != 200 || times[0] != 0 {
		t.Fatalf("times = %d entries, first %v", len(times), times[0])
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("arrivals not monotone")
		}
	}
	// Mean gap should be near 10 over 200 samples.
	meanGap := float64(times[len(times)-1]) / float64(len(times)-1)
	if meanGap < 7 || meanGap > 13 {
		t.Errorf("mean gap = %.2f, want ~10", meanGap)
	}
	// Deterministic per seed.
	again := PoissonPattern(200, 10, 3)
	for i := range times {
		if times[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
	for _, fn := range []func(){
		func() { PoissonPattern(0, 1, 1) },
		func() { PoissonPattern(3, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSyntheticVocabulary(t *testing.T) {
	v := SyntheticVocabulary(5000)
	if len(v) != 5000 {
		t.Fatalf("size = %d", len(v))
	}
	seen := map[string]bool{}
	for _, w := range v {
		if w == "" || seen[w] {
			t.Fatalf("duplicate or empty word %q", w)
		}
		seen[w] = true
	}
	// Head is the readable English list.
	if v[0] != "the" {
		t.Errorf("v[0] = %q", v[0])
	}
	// Small sizes truncate the built-in list.
	if got := SyntheticVocabulary(3); len(got) != 3 || got[0] != "the" {
		t.Errorf("small vocab = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("zero size should panic")
		}
	}()
	SyntheticVocabulary(0)
}

func TestTextGenVocabDistinctWords(t *testing.T) {
	g := NewTextGenVocab(5, 20000)
	words := map[string]bool{}
	for i := 0; i < 16; i++ {
		forEachWord(g.Block(i, 32<<10), func(w string) { words[w] = true })
	}
	// Zipf over a 20k vocabulary in ~100k tokens: thousands of
	// distinct words, like natural text — not the ~110 of the demo
	// vocabulary.
	if len(words) < 2000 {
		t.Errorf("distinct words = %d, want thousands", len(words))
	}
	// Determinism.
	g2 := NewTextGenVocab(5, 20000)
	if !bytes.Equal(g.Block(0, 1024), g2.Block(0, 1024)) {
		t.Error("vocab generator not deterministic")
	}
}
