package workload

import (
	"fmt"
	"math/rand"

	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// Arrival patterns reproduce Figure 1 (§III-B): dense patterns submit
// jobs nearly back-to-back; sparse patterns submit them in a few
// well-separated clumps. The paper's sparse experiments use 10 jobs in
// three groups of 3–4 dense jobs each (§V-D).

// DensePattern returns n arrival times spaced gap seconds apart
// starting at 0 — "J_{i+1} is submitted with no or a little fraction
// of time after J_i".
func DensePattern(n int, gap vclock.Duration) []vclock.Time {
	if n <= 0 {
		panic(fmt.Sprintf("workload: DensePattern needs positive n, got %d", n))
	}
	if gap < 0 {
		panic(fmt.Sprintf("workload: negative gap %v", gap))
	}
	out := make([]vclock.Time, n)
	for i := range out {
		out[i] = vclock.Time(0).Add(gap * vclock.Duration(i))
	}
	return out
}

// SparseGroups returns arrival times for groups of dense jobs: jobs
// within a group are intraGap apart; consecutive groups start interGap
// apart. groupSizes {3,3,4} with the paper's gaps reproduces Figure
// 1(b).
func SparseGroups(groupSizes []int, intraGap, interGap vclock.Duration) []vclock.Time {
	if len(groupSizes) == 0 {
		panic("workload: SparseGroups needs at least one group")
	}
	if intraGap < 0 || interGap < 0 {
		panic(fmt.Sprintf("workload: negative gaps %v/%v", intraGap, interGap))
	}
	var out []vclock.Time
	groupStart := vclock.Time(0)
	for gi, size := range groupSizes {
		if size <= 0 {
			panic(fmt.Sprintf("workload: group %d has size %d", gi, size))
		}
		for j := 0; j < size; j++ {
			out = append(out, groupStart.Add(intraGap*vclock.Duration(j)))
		}
		groupStart = groupStart.Add(interGap)
	}
	return out
}

// PoissonPattern returns n arrival times with exponentially
// distributed inter-arrival gaps of the given mean (a Poisson process
// — the standard model for independent user submissions). The seeded
// generator makes patterns reproducible.
func PoissonPattern(n int, meanGap vclock.Duration, seed int64) []vclock.Time {
	if n <= 0 {
		panic(fmt.Sprintf("workload: PoissonPattern needs positive n, got %d", n))
	}
	if meanGap <= 0 {
		panic(fmt.Sprintf("workload: PoissonPattern needs positive mean gap, got %v", meanGap))
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]vclock.Time, n)
	t := vclock.Time(0)
	for i := range out {
		out[i] = t
		t = t.Add(vclock.Duration(rng.ExpFloat64() * float64(meanGap)))
	}
	return out
}

// WordCountMetas builds n scheduler job descriptions for the given
// file with the given weights (paper: weight 1 for the normal
// workload; larger map/reduce weights for the heavy workload).
func WordCountMetas(n int, file string, weight, reduceWeight float64) []scheduler.JobMeta {
	prefixes := DistinctPrefixes(n)
	out := make([]scheduler.JobMeta, n)
	for i := range out {
		out[i] = scheduler.JobMeta{
			ID:           scheduler.JobID(i + 1),
			Name:         fmt.Sprintf("wordcount-%s-%d", prefixes[i], i+1),
			File:         file,
			Weight:       weight,
			ReduceWeight: reduceWeight,
		}
	}
	return out
}

// SelectionMetas builds n scheduler job descriptions for selection
// jobs over the lineitem table.
func SelectionMetas(n int, file string, weight, reduceWeight float64) []scheduler.JobMeta {
	out := make([]scheduler.JobMeta, n)
	for i := range out {
		out[i] = scheduler.JobMeta{
			ID:           scheduler.JobID(i + 1),
			Name:         fmt.Sprintf("selection-%d", i+1),
			File:         file,
			Weight:       weight,
			ReduceWeight: reduceWeight,
		}
	}
	return out
}
