package workload

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
)

// Lineitem generation mirrors the TPC-H lineitem table the paper's
// selection workload scans (§V-G): 16 pipe-separated columns with
// realistic domains. Rows are fixed within a block given the seed.
//
// Column order follows TPC-H:
//
//	l_orderkey|l_partkey|l_suppkey|l_linenumber|l_quantity|
//	l_extendedprice|l_discount|l_tax|l_returnflag|l_linestatus|
//	l_shipdate|l_commitdate|l_receiptdate|l_shipinstruct|l_shipmode|l_comment

var (
	returnFlags   = []string{"R", "A", "N"}
	lineStatuses  = []string{"O", "F"}
	shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipModes     = []string{"TRUCK", "MAIL", "SHIP", "AIR", "RAIL", "REG AIR", "FOB"}
	commentWords  = []string{"carefully", "quickly", "furiously", "packages", "deposits", "accounts", "requests", "ideas", "pending", "final"}
)

// LineitemGen deterministically generates lineitem blocks.
type LineitemGen struct {
	seed int64
}

// NewLineitemGen returns a generator for the given seed.
func NewLineitemGen(seed int64) *LineitemGen { return &LineitemGen{seed: seed} }

// QuantityMax is the exclusive upper bound of l_quantity (TPC-H uses
// 1..50); selection predicates use it to target a selectivity.
const QuantityMax = 50

// Row generates one lineitem row (no trailing newline).
func (g *LineitemGen) row(rng *rand.Rand, orderKey int64) string {
	qty := rng.Intn(QuantityMax) + 1
	price := float64(qty) * (900 + rng.Float64()*9100) / 10
	date := func() string {
		return fmt.Sprintf("199%d-%02d-%02d", rng.Intn(8), rng.Intn(12)+1, rng.Intn(28)+1)
	}
	comment := commentWords[rng.Intn(len(commentWords))] + " " + commentWords[rng.Intn(len(commentWords))]
	cols := []string{
		strconv.FormatInt(orderKey, 10),
		strconv.Itoa(rng.Intn(200000) + 1),
		strconv.Itoa(rng.Intn(10000) + 1),
		strconv.Itoa(rng.Intn(7) + 1),
		strconv.Itoa(qty),
		fmt.Sprintf("%.2f", price),
		fmt.Sprintf("%.2f", float64(rng.Intn(11))/100),
		fmt.Sprintf("%.2f", float64(rng.Intn(9))/100),
		returnFlags[rng.Intn(len(returnFlags))],
		lineStatuses[rng.Intn(len(lineStatuses))],
		date(), date(), date(),
		shipInstructs[rng.Intn(len(shipInstructs))],
		shipModes[rng.Intn(len(shipModes))],
		comment,
	}
	return strings.Join(cols, "|")
}

// Block produces block blockIdx: complete newline-terminated rows
// filling at most size bytes (the last row is never truncated, so a
// block may be slightly short of size; callers pad).
func (g *LineitemGen) Block(blockIdx int, size int64) []byte {
	rng := rand.New(rand.NewSource(g.seed*2_000_003 + int64(blockIdx)))
	var buf bytes.Buffer
	buf.Grow(int(size))
	orderKey := int64(blockIdx)*100000 + 1
	for {
		row := g.row(rng, orderKey)
		if int64(buf.Len()+len(row)+1) > size {
			break
		}
		buf.WriteString(row)
		buf.WriteByte('\n')
		orderKey++
	}
	// Pad with spaces so every block is exactly size bytes, keeping
	// dfs block-size invariants; the selection mapper skips blanks.
	for int64(buf.Len()) < size {
		buf.WriteByte(' ')
	}
	return buf.Bytes()
}

// AddLineitemFile registers a generated lineitem table with the store.
func AddLineitemFile(store *dfs.Store, name string, numBlocks int, blockSize int64, seed int64) (*dfs.File, error) {
	g := NewLineitemGen(seed)
	return store.AddGeneratedFile(name, numBlocks, blockSize, func(i int) ([]byte, error) {
		return g.Block(i, blockSize), nil
	})
}

// SelectionMapper implements the paper's SQL-like selection task: it
// parses lineitem rows and emits those whose l_quantity is at most
// MaxQuantity. With TPC-H's uniform 1..50 quantities, MaxQuantity=5
// selects 10% of the tuples — the paper's chosen selectivity.
type SelectionMapper struct {
	MaxQuantity int
}

var _ mapreduce.Mapper = SelectionMapper{}
var _ mapreduce.InputRecordCounter = SelectionMapper{}

// Map implements mapreduce.Mapper.
func (m SelectionMapper) Map(_ dfs.BlockID, data []byte, emit mapreduce.Emit) error {
	var err error
	forEachLine(data, func(line []byte) {
		if err != nil || len(bytes.TrimSpace(line)) == 0 {
			return
		}
		qty, orderKey, lineNo, perr := parseQuantity(line)
		if perr != nil {
			err = perr
			return
		}
		if qty <= m.MaxQuantity {
			emit(mapreduce.KV{Key: orderKey + "." + lineNo, Value: string(line)})
		}
	})
	return err
}

// CountInputRecords implements mapreduce.InputRecordCounter.
func (m SelectionMapper) CountInputRecords(data []byte) int64 {
	var n int64
	forEachLine(data, func(line []byte) {
		if len(bytes.TrimSpace(line)) > 0 {
			n++
		}
	})
	return n
}

// parseQuantity extracts (l_quantity, l_orderkey, l_linenumber) from a
// row without splitting all 16 columns.
func parseQuantity(line []byte) (qty int, orderKey, lineNo string, err error) {
	fields := bytes.SplitN(line, []byte{'|'}, 6)
	if len(fields) < 6 {
		return 0, "", "", fmt.Errorf("workload: malformed lineitem row %q", line)
	}
	q, err := strconv.Atoi(string(fields[4]))
	if err != nil {
		return 0, "", "", fmt.Errorf("workload: bad l_quantity in row %q: %w", line, err)
	}
	return q, string(fields[0]), string(fields[3]), nil
}

// forEachLine walks newline-separated lines.
func forEachLine(data []byte, fn func(line []byte)) {
	start := 0
	for i, b := range data {
		if b == '\n' {
			fn(data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		fn(data[start:])
	}
}

// AggregationMapper implements a TPC-H Q1-style aggregation over
// lineitem: it groups rows by (l_returnflag, l_linestatus) and emits
// the quantity, so the reduce phase produces per-group quantity sums.
// Aggregation queries are exactly the workload §V-G's output-collection
// discussion targets: sub-job partial sums can be folded as rounds
// complete, so the final aggregation starts from near-finished values.
type AggregationMapper struct{}

var _ mapreduce.Mapper = AggregationMapper{}
var _ mapreduce.InputRecordCounter = AggregationMapper{}

// Map implements mapreduce.Mapper.
func (AggregationMapper) Map(_ dfs.BlockID, data []byte, emit mapreduce.Emit) error {
	var err error
	forEachLine(data, func(line []byte) {
		if err != nil || len(bytes.TrimSpace(line)) == 0 {
			return
		}
		fields := bytes.SplitN(line, []byte{'|'}, 11)
		if len(fields) < 11 {
			err = fmt.Errorf("workload: malformed lineitem row %q", line)
			return
		}
		// fields[4]=l_quantity, [8]=l_returnflag, [9]=l_linestatus.
		key := string(fields[8]) + "|" + string(fields[9])
		emit(mapreduce.KV{Key: key, Value: string(fields[4])})
	})
	return err
}

// CountInputRecords implements mapreduce.InputRecordCounter.
func (AggregationMapper) CountInputRecords(data []byte) int64 {
	return SelectionMapper{}.CountInputRecords(data)
}

// AggregationJob builds a Q1-style "sum quantity group by returnflag,
// linestatus" job. The SumReducer doubles as the combiner, which is
// also the fold PartialAggregation uses between sub-jobs.
func AggregationJob(name, file string, numReduce int) mapreduce.JobSpec {
	return mapreduce.JobSpec{
		Name:      name,
		File:      file,
		Mapper:    AggregationMapper{},
		Reducer:   SumReducer{},
		Combiner:  SumReducer{},
		NumReduce: numReduce,
	}
}

// SelectionJob builds the spec for one selection job. Different
// maxQuantity values give distinct jobs over the same table, like the
// paper's user-specified selection conditions. Selection is map-only
// (SELECT * WHERE …), so Reducer is nil.
func SelectionJob(name, file string, maxQuantity int) mapreduce.JobSpec {
	return mapreduce.JobSpec{
		Name:      name,
		File:      file,
		Mapper:    SelectionMapper{MaxQuantity: maxQuantity},
		NumReduce: 1,
	}
}
