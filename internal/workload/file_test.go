package workload

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
)

// goodWorkload is a small valid v1 workload exercising every record
// kind and most optional fields.
const goodWorkload = `# canonical tiny workload
{"kind":"workload","version":1,"name":"tiny","nodes":2,"slotsPerNode":2,"replicas":2,"faultRate":0.01,"faultSeed":7,"cacheMBPerNode":4,"cacheFrac":0.5,"pipeline":true,"cost":{"scanMBps":50,"taskOverhead":0.1}}
{"kind":"file","name":"corpus","content":"text","blocks":8,"blockBytes":4096,"segmentBlocks":2,"seed":11,"vocab":200}

{"kind":"job","id":1,"at":0,"file":"corpus","factory":"wordcount","param":"t"}
{"kind":"job","id":2,"at":1.5,"file":"corpus","factory":"heavy-wordcount","param":"a","weight":2,"reduceWeight":3,"numReduce":2,"emitFactor":4}
`

func parseGood(t *testing.T) *File {
	t.Helper()
	wf, err := ParseFile(strings.NewReader(goodWorkload))
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	return wf
}

func TestParseFileGood(t *testing.T) {
	wf := parseGood(t)
	if wf.Header.Name != "tiny" || wf.Header.Nodes != 2 || !wf.Header.Pipeline {
		t.Fatalf("header mismatch: %+v", wf.Header)
	}
	if wf.Header.Cost == nil || wf.Header.Cost.ScanMBps != 50 || wf.Header.Cost.TaskOverhead != 0.1 {
		t.Fatalf("cost model mismatch: %+v", wf.Header.Cost)
	}
	if len(wf.Files) != 1 || wf.Files[0].Vocab != 200 || wf.Files[0].SegmentBlocks != 2 {
		t.Fatalf("file mismatch: %+v", wf.Files)
	}
	if len(wf.Jobs) != 2 || wf.Jobs[1].EmitFactor != 4 || wf.Jobs[1].At != 1.5 {
		t.Fatalf("jobs mismatch: %+v", wf.Jobs)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	wf := parseGood(t)
	var buf bytes.Buffer
	if err := wf.Serialize(&buf); err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	again, err := ParseFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\nserialized:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(wf, again) {
		t.Fatalf("round trip changed workload:\nbefore: %+v\nafter:  %+v", wf, again)
	}
	// Serialization is canonical: serializing the reparse is
	// byte-identical, so Digest is stable.
	var buf2 bytes.Buffer
	if err := again.Serialize(&buf2); err != nil {
		t.Fatalf("re-serialize: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("serialization not canonical:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
	if wf.Digest() != again.Digest() {
		t.Fatalf("digest unstable: %s vs %s", wf.Digest(), again.Digest())
	}
}

func TestParseFileErrors(t *testing.T) {
	header := `{"kind":"workload","version":1,"name":"w","nodes":2,"slotsPerNode":1,"replicas":1}` + "\n"
	file := `{"kind":"file","name":"f","content":"text","blocks":4,"blockBytes":64,"segmentBlocks":2}` + "\n"
	job := `{"kind":"job","id":1,"at":0,"file":"f","factory":"wordcount","param":"t"}` + "\n"

	cases := []struct {
		name     string
		in       string
		wantLine int    // 0 = not a LineError
		wantSub  string // substring of the error text
	}{
		{"empty", "", 0, "no \"workload\" header"},
		{"not json", "nope\n", 1, ""},
		{"unknown kind", header + `{"kind":"mystery"}` + "\n", 2, "unknown record kind"},
		{"unknown field", header + `{"kind":"file","name":"f","content":"text","blocks":4,"blockBytes":64,"segmentBlocks":2,"zorp":1}` + "\n", 2, "zorp"},
		{"record before header", file, 1, "before the \"workload\" header"},
		{"duplicate header", header + header, 2, "duplicate"},
		{"trailing data", header + `{"kind":"file","name":"f","content":"text","blocks":4,"blockBytes":64,"segmentBlocks":2}{"x":1}` + "\n", 2, "after top-level value"},
		{"bad version", strings.Replace(header, `"version":1`, `"version":99`, 1) + file + job, 0, "version"},
		{"no file", header + job, 0, "exactly one file"},
		{"two files", header + file + strings.Replace(file, `"name":"f"`, `"name":"g"`, 1) + job, 0, "exactly one file"},
		{"no jobs", header + file, 0, "no job records"},
		{"bad content", header + strings.Replace(file, `"content":"text"`, `"content":"parquet"`, 1) + job, 0, "unknown content"},
		{"bad segment", header + strings.Replace(file, `"segmentBlocks":2`, `"segmentBlocks":9`, 1) + job, 0, "segment size"},
		{"dup job id", header + file + job + job, 0, "duplicate job id"},
		{"negative at", header + file + strings.Replace(job, `"at":0`, `"at":-1`, 1), 0, "negative time"},
		{"wrong file ref", header + file + strings.Replace(job, `"file":"f"`, `"file":"x"`, 1), 3, "unknown file"},
		{"unknown factory", header + file + strings.Replace(job, `"factory":"wordcount"`, `"factory":"join"`, 1), 0, "unknown factory"},
		{"selection on text", header + file + `{"kind":"job","id":1,"at":0,"file":"f","factory":"selection","param":"5"}` + "\n", 0, "needs lineitem content"},
		{"selection bad param", header + strings.Replace(file, `"content":"text"`, `"content":"lineitem"`, 1) + `{"kind":"job","id":1,"at":0,"file":"f","factory":"selection","param":"five"}` + "\n", 0, "integer quantity"},
		{"emit factor on plain", header + file + strings.Replace(job, `"param":"t"`, `"param":"t","emitFactor":2`, 1), 0, "emitFactor"},
		{"bad replicas", strings.Replace(header, `"replicas":1`, `"replicas":3`, 1) + file + job, 0, "replicas"},
		{"bad fault rate", strings.Replace(header, `"nodes":2`, `"nodes":2,"faultRate":1.5`, 1) + file + job, 0, "fault rate"},
		{"bad cost", strings.Replace(header, `"nodes":2`, `"nodes":2,"cost":{"scanMBps":-1}`, 1) + file + job, 0, "ScanMBps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseFile(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ParseFile accepted %q", tc.in)
			}
			var le *LineError
			if tc.wantLine > 0 {
				if !errors.As(err, &le) {
					t.Fatalf("error %v is not a *LineError", err)
				}
				if le.Line != tc.wantLine {
					t.Fatalf("error on line %d, want %d: %v", le.Line, tc.wantLine, err)
				}
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	// Version mismatch is errors.Is-able.
	_, err := ParseFile(strings.NewReader(strings.Replace(header, `"version":1`, `"version":99`, 1) + file + job))
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("version error %v is not ErrUnsupportedVersion", err)
	}
}

// TestParseFileV3Errors pins the DAG schema rules: cycles, dangling
// dependsOn, duplicate ids and version gating are all rejected with
// typed *LineErrors pointing at the offending record.
func TestParseFileV3Errors(t *testing.T) {
	header := `{"kind":"workload","version":3,"name":"w","nodes":2,"slotsPerNode":1,"replicas":1}` + "\n"
	file := `{"kind":"file","name":"f","content":"text","blocks":4,"blockBytes":64,"segmentBlocks":2}` + "\n"
	job1 := `{"kind":"job","id":1,"at":0,"file":"f","factory":"wordcount","param":"t"}` + "\n"

	cases := []struct {
		name     string
		in       string
		wantLine int
		wantSub  string
	}{
		{"dependsOn on v1",
			strings.Replace(header, `"version":3`, `"version":1`, 1) + file + job1 +
				`{"kind":"job","id":2,"at":0,"file":"f","factory":"wordcount","param":"a","dependsOn":[1]}` + "\n",
			4, "needs schema v3"},
		{"self cycle",
			header + file + `{"kind":"job","id":1,"at":0,"file":"f","factory":"wordcount","param":"t","dependsOn":[1]}` + "\n",
			3, "depends on itself"},
		{"two-node cycle",
			header + file +
				`{"kind":"job","id":1,"at":0,"file":"f","factory":"wordcount","param":"t","dependsOn":[2]}` + "\n" +
				`{"kind":"job","id":2,"at":0,"file":"f","factory":"wordcount","param":"a","dependsOn":[1]}` + "\n",
			4, "dependency cycle"},
		{"dangling dependsOn",
			header + file + job1 +
				`{"kind":"job","id":2,"at":0,"file":"f","factory":"wordcount","param":"a","dependsOn":[7]}` + "\n",
			4, "depends on unknown job 7"},
		{"duplicate dependency",
			header + file + job1 +
				`{"kind":"job","id":2,"at":0,"file":"f","factory":"wordcount","param":"a","dependsOn":[1,1]}` + "\n",
			4, "dependency 1 twice"},
		{"duplicate id with deps",
			header + file + job1 +
				`{"kind":"job","id":1,"at":0,"file":"f","factory":"wordcount","param":"a","dependsOn":[1]}` + "\n",
			4, "duplicate job id"},
		{"derived without dep",
			header + file + job1 +
				`{"kind":"job","id":2,"at":0,"file":"job-1.out","factory":"topk","param":"3"}` + "\n",
			4, "without depending on job 1"},
		{"topk on raw corpus",
			header + file + job1 +
				`{"kind":"job","id":2,"at":0,"file":"f","factory":"topk","param":"3","dependsOn":[1]}` + "\n",
			4, "topk scans a dependency's derived output"},
		{"topk bad k",
			header + file + job1 +
				`{"kind":"job","id":2,"at":0,"file":"job-1.out","factory":"topk","param":"0","dependsOn":[1]}` + "\n",
			4, "positive integer k"},
		{"DAG over meta file",
			header + strings.Replace(file, `"content":"text"`, `"content":"meta"`, 1) + job1 +
				`{"kind":"job","id":2,"at":0,"file":"job-1.out","factory":"topk","param":"3","dependsOn":[1]}` + "\n",
			2, "need real bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseFile(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ParseFile accepted %q", tc.in)
			}
			var le *LineError
			if !errors.As(err, &le) {
				t.Fatalf("error %v is not a *LineError", err)
			}
			if le.Line != tc.wantLine {
				t.Fatalf("error on line %d, want %d: %v", le.Line, tc.wantLine, err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestParseFileV3Good pins the accepted DAG form: multiple files, a
// chained topk over a derived output, and round-trip stability.
func TestParseFileV3Good(t *testing.T) {
	in := `{"kind":"workload","version":3,"name":"dag","nodes":2,"slotsPerNode":1,"replicas":1}
{"kind":"file","name":"corpus","content":"text","blocks":4,"blockBytes":64,"segmentBlocks":2}
{"kind":"file","name":"lineitem","content":"lineitem","blocks":4,"blockBytes":64,"segmentBlocks":2}
{"kind":"job","id":1,"at":0,"file":"corpus","factory":"wordcount","param":"t"}
{"kind":"job","id":2,"at":0,"file":"job-1.out","factory":"topk","param":"3","dependsOn":[1]}
{"kind":"job","id":3,"at":1,"file":"lineitem","factory":"aggregation","dependsOn":[1,2]}
`
	wf, err := ParseFile(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if !wf.HasDAG() {
		t.Fatal("HasDAG() = false for a DAG workload")
	}
	if got, ok := wf.DerivedProducer("job-1.out"); !ok || got != 1 {
		t.Fatalf("DerivedProducer(job-1.out) = %d, %v", got, ok)
	}
	if c, ok := wf.ContentOf("job-1.out"); !ok || c != ContentDerived {
		t.Fatalf("ContentOf(job-1.out) = %q, %v", c, ok)
	}
	var buf bytes.Buffer
	if err := wf.Serialize(&buf); err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	again, err := ParseFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(wf, again) {
		t.Fatalf("round trip changed workload")
	}
	if !reflect.DeepEqual(again.Jobs[2].DependsOn, []scheduler.JobID{1, 2}) {
		t.Fatalf("dependsOn lost in round trip: %+v", again.Jobs[2])
	}
}

// TestCachePolicyVersioning pins the v2 schema rules: cachePolicy
// parses on a v2 header, is rejected on v1 (the field did not exist, so
// a v1 consumer would silently reprice the file under LRU), and must
// name a known policy.
func TestCachePolicyVersioning(t *testing.T) {
	v2header := `{"kind":"workload","version":2,"name":"w","nodes":2,"slotsPerNode":1,"replicas":1,"cacheMBPerNode":1,"cachePolicy":"cursor"}` + "\n"
	file := `{"kind":"file","name":"f","content":"text","blocks":4,"blockBytes":64,"segmentBlocks":2}` + "\n"
	job := `{"kind":"job","id":1,"at":0,"file":"f","factory":"wordcount","param":"t"}` + "\n"

	wf, err := ParseFile(strings.NewReader(v2header + file + job))
	if err != nil {
		t.Fatalf("v2 workload with cachePolicy rejected: %v", err)
	}
	if wf.Header.CachePolicy != "cursor" {
		t.Fatalf("cachePolicy = %q, want cursor", wf.Header.CachePolicy)
	}
	// Round trip preserves the declared version and the policy.
	var buf bytes.Buffer
	if err := wf.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := ParseFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if again.Header.Version != 2 || again.Header.CachePolicy != "cursor" {
		t.Fatalf("round trip lost v2 fields: %+v", again.Header)
	}

	v1policy := strings.Replace(v2header, `"version":2`, `"version":1`, 1)
	if _, err := ParseFile(strings.NewReader(v1policy + file + job)); err == nil || !strings.Contains(err.Error(), "schema v2") {
		t.Fatalf("v1 header with cachePolicy accepted (err=%v)", err)
	}
	badPolicy := strings.Replace(v2header, `"cachePolicy":"cursor"`, `"cachePolicy":"clock"`, 1)
	if _, err := ParseFile(strings.NewReader(badPolicy + file + job)); err == nil || !strings.Contains(err.Error(), "unknown cache policy") {
		t.Fatalf("unknown cachePolicy accepted (err=%v)", err)
	}
	// A bare v2 header without the new field is fine.
	v2plain := strings.Replace(v2header, `,"cachePolicy":"cursor"`, ``, 1)
	if _, err := ParseFile(strings.NewReader(v2plain + file + job)); err != nil {
		t.Fatalf("plain v2 workload rejected: %v", err)
	}
}

// TestV1DigestStable pins that the v2 schema change leaves v1 files
// byte-identical through Parse∘Serialize — existing baselines keyed by
// Digest stay valid.
func TestV1DigestStable(t *testing.T) {
	wf := parseGood(t)
	if wf.Header.Version != 1 {
		t.Fatalf("goodWorkload is v%d, want v1", wf.Header.Version)
	}
	var buf bytes.Buffer
	if err := wf.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "cachePolicy") {
		t.Fatalf("v1 serialization grew a cachePolicy field:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"version":1`) {
		t.Fatalf("v1 serialization lost its version:\n%s", buf.String())
	}
}

func TestFileJobMetaAndEntries(t *testing.T) {
	wf := parseGood(t)
	entries := wf.Entries()
	if len(entries) != 2 {
		t.Fatalf("got %d entries", len(entries))
	}
	if entries[0].Job.ID != 1 || entries[0].Job.Name != "wordcount-t-1" || entries[0].Job.File != "corpus" {
		t.Fatalf("entry 0 meta: %+v", entries[0].Job)
	}
	if entries[1].At != 1.5 || entries[1].Job.Weight != 2 || entries[1].Job.ReduceWeight != 3 {
		t.Fatalf("entry 1: %+v", entries[1])
	}
}

func TestEngineSpecs(t *testing.T) {
	wf := parseGood(t)
	specs, err := wf.EngineSpecs()
	if err != nil {
		t.Fatalf("EngineSpecs: %v", err)
	}
	wc := specs[scheduler.JobID(1)]
	if m, ok := wc.Mapper.(PatternCountMapper); !ok || m.Prefix != "t" || wc.Combiner == nil || wc.NumReduce != 1 {
		t.Fatalf("wordcount spec: %+v", wc)
	}
	hv := specs[scheduler.JobID(2)]
	if m, ok := hv.Mapper.(PatternCountMapper); !ok || m.EmitFactor != 4 || hv.Combiner != nil || hv.NumReduce != 2 {
		t.Fatalf("heavy spec: %+v", hv)
	}

	// Meta-content workloads have no bytes to execute.
	meta := parseGood(t)
	meta.Files[0].Content = ContentMeta
	meta.Files[0].Vocab = 0
	if _, err := meta.EngineSpecs(); err == nil {
		t.Fatal("EngineSpecs accepted a meta-content workload")
	}
}

func TestFileSpecAddTo(t *testing.T) {
	for _, content := range []string{ContentText, ContentLineitem, ContentMeta} {
		store, err := dfs.NewStore(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		fs := FileSpec{Kind: KindFile, Name: "f", Content: content, Blocks: 3, BlockBytes: 256, SegmentBlocks: 1, Seed: 5}
		f, err := fs.AddTo(store)
		if err != nil {
			t.Fatalf("AddTo(%s): %v", content, err)
		}
		if got := len(f.Blocks()); got != 3 {
			t.Fatalf("AddTo(%s): %d blocks, want 3", content, got)
		}
	}
}

func TestFileSummary(t *testing.T) {
	wf := parseGood(t)
	s := wf.Summary()
	for _, want := range []string{"tiny", "2 jobs", "corpus", "8×4KiB", "text", "2×2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Summary %q missing %q", s, want)
		}
	}
}
