package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
)

// The top-k job: the canonical second stage of a wordcount pipeline.
// Its input is another job's materialized reduce output ("word\tcount"
// lines, the framing mapreduce.StoreResult writes); it selects the k
// records with the highest counts. All candidates funnel through a
// single reduce key so one reducer sees the whole ranking — fine at
// derived-file scale, where the input is already an aggregate.

// topKKey is the single shuffle key every candidate is emitted under.
const topKKey = "top"

// TopKMapper parses "word\tcount" lines from a derived file and emits
// each record under topKKey with a "count word" value the reducer can
// rank. Malformed lines are errors, not skips: a derived file is
// machine-written, so damage means a real bug upstream.
type TopKMapper struct{}

var _ mapreduce.Mapper = TopKMapper{}

// Map implements mapreduce.Mapper.
func (TopKMapper) Map(id dfs.BlockID, data []byte, emit mapreduce.Emit) error {
	inner := mapreduce.KVLineMapper{Each: func(key, value string, _ mapreduce.Emit) error {
		if _, err := strconv.ParseInt(strings.TrimSpace(value), 10, 64); err != nil {
			return fmt.Errorf("workload: topk input %q=%q: count is not an integer", key, value)
		}
		emit(mapreduce.KV{Key: topKKey, Value: strings.TrimSpace(value) + " " + key})
		return nil
	}}
	return inner.Map(id, data, emit)
}

// TopKReducer ranks the candidates and keeps the K highest counts,
// breaking count ties by word so the selection is total-ordered and
// deterministic. Output records are KV{word, count}, the same shape a
// wordcount stage produces — a top-k stage's output is itself
// chainable.
type TopKReducer struct {
	K int
}

var _ mapreduce.Reducer = TopKReducer{}

// Reduce implements mapreduce.Reducer.
func (r TopKReducer) Reduce(_ string, values []string, emit mapreduce.Emit) error {
	if r.K < 1 {
		return fmt.Errorf("workload: topk reducer needs k >= 1, got %d", r.K)
	}
	// Re-sum per word: the same word can arrive from several map tasks
	// when the derived input was written by a multi-partition reduce.
	counts := make(map[string]int64, len(values))
	for _, v := range values {
		count, word, ok := strings.Cut(v, " ")
		if !ok {
			return fmt.Errorf("workload: topk shuffle value %q has no separator", v)
		}
		n, err := strconv.ParseInt(count, 10, 64)
		if err != nil {
			return fmt.Errorf("workload: topk shuffle value %q: %w", v, err)
		}
		counts[word] += n
	}
	type ranked struct {
		word  string
		count int64
	}
	all := make([]ranked, 0, len(counts))
	for w, c := range counts {
		all = append(all, ranked{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].word < all[j].word
	})
	k := r.K
	if k > len(all) {
		k = len(all)
	}
	for _, rec := range all[:k] {
		emit(mapreduce.KV{Key: rec.word, Value: strconv.FormatInt(rec.count, 10)})
	}
	return nil
}
