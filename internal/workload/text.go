// Package workload generates the paper's two evaluation workloads and
// its job arrival patterns.
//
// The paper uses 160 GB of Project Gutenberg text for the wordcount
// experiments and a 400 GB TPC-H lineitem table for the selection
// experiments (§V-B, §V-G). Neither dataset ships with this
// repository; instead the package produces deterministic synthetic
// equivalents — Zipf-distributed English-like word streams and
// lineitem rows with matching column structure — at any scale factor.
// Determinism (same seed, same bytes) is what makes the experiments
// reproducible.
package workload

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"

	"s3sched/internal/dfs"
)

// wordList is a small English vocabulary sampled with a Zipf
// distribution, approximating natural-language word frequencies in
// Gutenberg novels.
var wordList = []string{
	"the", "of", "and", "to", "a", "in", "that", "he", "was", "it",
	"his", "her", "she", "with", "as", "had", "for", "you", "not", "be",
	"is", "at", "on", "by", "him", "they", "this", "have", "from", "but",
	"which", "all", "were", "when", "we", "there", "can", "an", "your",
	"said", "one", "them", "some", "would", "other", "into", "has",
	"more", "two", "time", "like", "then", "little", "could", "out",
	"very", "upon", "about", "may", "its", "only", "now", "made", "man",
	"after", "also", "did", "many", "before", "must", "through", "years",
	"much", "where", "way", "well", "down", "should", "because", "each",
	"just", "those", "people", "how", "too", "any", "day", "most", "us",
	"water", "long", "find", "here", "thing", "great", "house", "world",
	"never", "night", "heart", "light", "father", "mother", "voice",
	"whisper", "thunder", "quarrel", "journey", "zephyr", "quixotic",
}

// TextGen deterministically generates English-like text blocks.
type TextGen struct {
	seed  int64
	vocab []string
	zipf  []float64 // cumulative Zipf weights over vocab
}

// NewTextGen returns a generator over the built-in ~110-word
// vocabulary; the same seed always produces the same corpus.
func NewTextGen(seed int64) *TextGen {
	return newTextGen(seed, wordList)
}

// NewTextGenVocab returns a generator over a synthetic vocabulary of
// vocabSize pseudo-words. Large vocabularies reproduce natural text's
// distinct-word statistics (the paper's corpus has 60-80 thousand
// distinct words reaching the reducers); the built-in list keeps
// outputs human-readable for demos.
func NewTextGenVocab(seed int64, vocabSize int) *TextGen {
	return newTextGen(seed, SyntheticVocabulary(vocabSize))
}

func newTextGen(seed int64, vocab []string) *TextGen {
	// Zipf with exponent 1: weight_i = 1/(i+1).
	cum := make([]float64, len(vocab))
	total := 0.0
	for i := range vocab {
		total += 1.0 / float64(i+1)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &TextGen{seed: seed, vocab: vocab, zipf: cum}
}

// SyntheticVocabulary deterministically builds size pronounceable
// pseudo-words ("zobaru", "kelita", …), most frequent first. The
// built-in English list seeds the head so common words stay realistic.
func SyntheticVocabulary(size int) []string {
	if size <= 0 {
		panic(fmt.Sprintf("workload: vocabulary size %d must be positive", size))
	}
	out := make([]string, 0, size)
	for _, w := range wordList {
		if len(out) == size {
			return out
		}
		out = append(out, w)
	}
	consonants := []string{"b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z"}
	vowels := []string{"a", "e", "i", "o", "u"}
	for i := 0; len(out) < size; i++ {
		// Enumerate CVCVCV... syllable strings in mixed radix so every
		// word is distinct.
		n := i
		var b strings.Builder
		for s := 0; s < 3 || n > 0; s++ {
			b.WriteString(consonants[n%len(consonants)])
			n /= len(consonants)
			b.WriteString(vowels[n%len(vowels)])
			n /= len(vowels)
		}
		out = append(out, b.String())
	}
	return out
}

// word samples one word from the Zipf distribution.
func (g *TextGen) word(rng *rand.Rand) string {
	u := rng.Float64()
	lo, hi := 0, len(g.zipf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.zipf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return g.vocab[lo]
}

// Block produces block blockIdx of the corpus, exactly size bytes of
// space- and newline-separated words. Each block is generated from an
// independent sub-seed so blocks can be produced in any order.
func (g *TextGen) Block(blockIdx int, size int64) []byte {
	rng := rand.New(rand.NewSource(g.seed*1_000_003 + int64(blockIdx)))
	var buf bytes.Buffer
	buf.Grow(int(size) + 16)
	col := 0
	for int64(buf.Len()) < size {
		w := g.word(rng)
		buf.WriteString(w)
		col += len(w) + 1
		if col >= 64 {
			buf.WriteByte('\n')
			col = 0
		} else {
			buf.WriteByte(' ')
		}
	}
	return buf.Bytes()[:size]
}

// Vocabulary returns the generator's word list (for choosing count
// patterns that are guaranteed to match).
func Vocabulary() []string {
	out := make([]string, len(wordList))
	copy(out, wordList)
	return out
}

// AddTextFile registers a generated text corpus with the store: name,
// numBlocks blocks of blockSize bytes each.
func AddTextFile(store *dfs.Store, name string, numBlocks int, blockSize int64, seed int64) (*dfs.File, error) {
	g := NewTextGen(seed)
	return store.AddGeneratedFile(name, numBlocks, blockSize, func(i int) ([]byte, error) {
		return g.Block(i, blockSize), nil
	})
}

// AddTextFileVocab is AddTextFile over a synthetic vocabulary of
// vocabSize words — use it when distinct-word statistics matter
// (Table I's reduce-output profile).
func AddTextFileVocab(store *dfs.Store, name string, numBlocks int, blockSize int64, seed int64, vocabSize int) (*dfs.File, error) {
	g := NewTextGenVocab(seed, vocabSize)
	return store.AddGeneratedFile(name, numBlocks, blockSize, func(i int) ([]byte, error) {
		return g.Block(i, blockSize), nil
	})
}
