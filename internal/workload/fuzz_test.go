package workload

import (
	"strings"
	"testing"

	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
)

// Fuzz targets: the parsers must never panic on arbitrary input — a
// malformed block is a job error, not a worker crash. Run with
// `go test -fuzz=FuzzSelectionMapper ./internal/workload` to explore;
// the seed corpus runs on every plain `go test`.

func FuzzSelectionMapper(f *testing.F) {
	f.Add([]byte("1|2|3|4|5|x|x|x|R|O|d|d|d|i|m|c\n"))
	f.Add([]byte("not a row at all"))
	f.Add([]byte("1|2|3|4|notanumber|x\n"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("a|b|c|d|e|f\nrow2|b|c|d|9|f\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m := SelectionMapper{MaxQuantity: 10}
		// Must not panic; errors are fine.
		_ = m.Map(dfs.BlockID{}, data, func(mapreduce.KV) {})
		_ = m.CountInputRecords(data)
	})
}

func FuzzAggregationMapper(f *testing.F) {
	f.Add([]byte("1|2|3|4|5|p|d|t|R|O|d1|d2|d3|i|m|comment\n"))
	f.Add([]byte("short|row"))
	f.Add([]byte("||||||||||||\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = AggregationMapper{}.Map(dfs.BlockID{}, data, func(mapreduce.KV) {})
	})
}

func FuzzPatternCountMapper(f *testing.F) {
	f.Add([]byte("the quick brown fox"), "t")
	f.Add([]byte(""), "")
	f.Add([]byte("\x00\xff\xfe"), "x")
	f.Fuzz(func(t *testing.T, data []byte, prefix string) {
		m := PatternCountMapper{Prefix: prefix}
		count := 0
		_ = m.Map(dfs.BlockID{}, data, func(kv mapreduce.KV) {
			if !strings.HasPrefix(kv.Key, prefix) {
				t.Fatalf("emitted %q without prefix %q", kv.Key, prefix)
			}
			count++
		})
		if got := m.CountInputRecords(data); int64(count) > got {
			t.Fatalf("emitted %d records from %d input words", count, got)
		}
	})
}

func FuzzKVLineMapper(f *testing.F) {
	f.Add([]byte("key\tvalue\n"))
	f.Add([]byte("no tab"))
	f.Add([]byte("\t\n\t\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m := mapreduce.KVLineMapper{Each: func(k, v string, emit mapreduce.Emit) error {
			emit(mapreduce.KV{Key: k, Value: v})
			return nil
		}}
		_ = m.Map(dfs.BlockID{}, data, func(mapreduce.KV) {})
	})
}

func FuzzTextGenSizes(f *testing.F) {
	f.Add(int64(1), 0, int64(64))
	f.Add(int64(42), 100, int64(1))
	f.Fuzz(func(t *testing.T, seed int64, idx int, size int64) {
		if size <= 0 || size > 1<<16 || idx < 0 {
			t.Skip()
		}
		g := NewTextGen(seed)
		b := g.Block(idx, size)
		if int64(len(b)) != size {
			t.Fatalf("block size %d, want %d", len(b), size)
		}
	})
}
