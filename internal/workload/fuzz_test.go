package workload

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"s3sched/internal/dfs"
	"s3sched/internal/faults"
	"s3sched/internal/mapreduce"
)

// Fuzz targets: the parsers must never panic on arbitrary input — a
// malformed block is a job error, not a worker crash. Run with
// `go test -fuzz=FuzzSelectionMapper ./internal/workload` to explore;
// the seed corpus runs on every plain `go test`.

func FuzzSelectionMapper(f *testing.F) {
	f.Add([]byte("1|2|3|4|5|x|x|x|R|O|d|d|d|i|m|c\n"))
	f.Add([]byte("not a row at all"))
	f.Add([]byte("1|2|3|4|notanumber|x\n"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("a|b|c|d|e|f\nrow2|b|c|d|9|f\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m := SelectionMapper{MaxQuantity: 10}
		// Must not panic; errors are fine.
		_ = m.Map(dfs.BlockID{}, data, func(mapreduce.KV) {})
		_ = m.CountInputRecords(data)
	})
}

func FuzzAggregationMapper(f *testing.F) {
	f.Add([]byte("1|2|3|4|5|p|d|t|R|O|d1|d2|d3|i|m|comment\n"))
	f.Add([]byte("short|row"))
	f.Add([]byte("||||||||||||\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = AggregationMapper{}.Map(dfs.BlockID{}, data, func(mapreduce.KV) {})
	})
}

func FuzzPatternCountMapper(f *testing.F) {
	f.Add([]byte("the quick brown fox"), "t")
	f.Add([]byte(""), "")
	f.Add([]byte("\x00\xff\xfe"), "x")
	f.Fuzz(func(t *testing.T, data []byte, prefix string) {
		m := PatternCountMapper{Prefix: prefix}
		count := 0
		_ = m.Map(dfs.BlockID{}, data, func(kv mapreduce.KV) {
			if !strings.HasPrefix(kv.Key, prefix) {
				t.Fatalf("emitted %q without prefix %q", kv.Key, prefix)
			}
			count++
		})
		if got := m.CountInputRecords(data); int64(count) > got {
			t.Fatalf("emitted %d records from %d input words", count, got)
		}
	})
}

func FuzzKVLineMapper(f *testing.F) {
	f.Add([]byte("key\tvalue\n"))
	f.Add([]byte("no tab"))
	f.Add([]byte("\t\n\t\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m := mapreduce.KVLineMapper{Each: func(k, v string, emit mapreduce.Emit) error {
			emit(mapreduce.KV{Key: k, Value: v})
			return nil
		}}
		_ = m.Map(dfs.BlockID{}, data, func(mapreduce.KV) {})
	})
}

func FuzzTextGenSizes(f *testing.F) {
	f.Add(int64(1), 0, int64(64))
	f.Add(int64(42), 100, int64(1))
	f.Fuzz(func(t *testing.T, seed int64, idx int, size int64) {
		if size <= 0 || size > 1<<16 || idx < 0 {
			t.Skip()
		}
		g := NewTextGen(seed)
		b := g.Block(idx, size)
		if int64(len(b)) != size {
			t.Fatalf("block size %d, want %d", len(b), size)
		}
	})
}

// FuzzWorkloadFile checks the workload file format's two contracts on
// arbitrary bytes: malformed input produces an error (a *LineError for
// per-line breakage) and never a panic, while accepted input
// round-trips exactly — parse → serialize → parse yields an identical
// workload and byte-identical canonical form, so Digest is stable.
func FuzzWorkloadFile(f *testing.F) {
	f.Add([]byte(goodWorkload))
	f.Add([]byte(`{"kind":"workload","version":1,"name":"w","nodes":1,"slotsPerNode":1,"replicas":1}
{"kind":"file","name":"f","content":"meta","blocks":2,"blockBytes":64,"segmentBlocks":1}
{"kind":"job","id":1,"at":0,"file":"f","factory":"aggregation"}`))
	f.Add([]byte("# comment only\n"))
	f.Add([]byte(`{"kind":"workload","version":99}`))
	f.Add([]byte(`{"kind":"job","id":1}`))
	f.Add([]byte("{\"kind\":\"workload\"\xff"))
	f.Add([]byte(`{"kind":"workload","version":1,"name":"w","nodes":1,"slotsPerNode":1,"replicas":1,"cost":{"scanMBps":1e309}}`))
	// v3 DAG seeds: a valid chain, a dependency cycle, a dangling
	// dependsOn, a duplicate id, and a dependsOn on a v1 header — the
	// rejects must all surface as typed *LineErrors, never panics.
	f.Add([]byte(`{"kind":"workload","version":3,"name":"dag","nodes":1,"slotsPerNode":1,"replicas":1}
{"kind":"file","name":"f","content":"text","blocks":2,"blockBytes":64,"segmentBlocks":1}
{"kind":"job","id":1,"at":0,"file":"f","factory":"wordcount","param":"t"}
{"kind":"job","id":2,"at":0,"file":"job-1.out","factory":"topk","param":"3","dependsOn":[1]}`))
	f.Add([]byte(`{"kind":"workload","version":3,"name":"cyc","nodes":1,"slotsPerNode":1,"replicas":1}
{"kind":"file","name":"f","content":"text","blocks":2,"blockBytes":64,"segmentBlocks":1}
{"kind":"job","id":1,"at":0,"file":"f","factory":"wordcount","param":"t","dependsOn":[2]}
{"kind":"job","id":2,"at":0,"file":"f","factory":"wordcount","param":"a","dependsOn":[1]}`))
	f.Add([]byte(`{"kind":"workload","version":3,"name":"dangling","nodes":1,"slotsPerNode":1,"replicas":1}
{"kind":"file","name":"f","content":"text","blocks":2,"blockBytes":64,"segmentBlocks":1}
{"kind":"job","id":1,"at":0,"file":"f","factory":"wordcount","param":"t","dependsOn":[9]}`))
	f.Add([]byte(`{"kind":"workload","version":3,"name":"dup","nodes":1,"slotsPerNode":1,"replicas":1}
{"kind":"file","name":"f","content":"text","blocks":2,"blockBytes":64,"segmentBlocks":1}
{"kind":"job","id":1,"at":0,"file":"f","factory":"wordcount","param":"t"}
{"kind":"job","id":1,"at":0,"file":"f","factory":"wordcount","param":"a","dependsOn":[1]}`))
	f.Add([]byte(`{"kind":"workload","version":1,"name":"old","nodes":1,"slotsPerNode":1,"replicas":1}
{"kind":"file","name":"f","content":"text","blocks":2,"blockBytes":64,"segmentBlocks":1}
{"kind":"job","id":1,"at":0,"file":"f","factory":"wordcount","param":"t","dependsOn":[1]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		wf, err := ParseFile(bytes.NewReader(data))
		if err != nil {
			var le *LineError
			if errors.As(err, &le) && le.Line <= 0 {
				t.Fatalf("LineError with non-positive line %d: %v", le.Line, err)
			}
			return
		}
		var buf bytes.Buffer
		if err := wf.Serialize(&buf); err != nil {
			t.Fatalf("Serialize of accepted workload failed: %v", err)
		}
		again, err := ParseFile(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of serialized workload failed: %v\nserialized:\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(wf, again) {
			t.Fatalf("round trip changed workload:\nbefore: %+v\nafter:  %+v", wf, again)
		}
		var buf2 bytes.Buffer
		if err := again.Serialize(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("serialization not canonical:\n%q\nvs\n%q", buf.String(), buf2.String())
		}
	})
}

// FuzzWorkload is the end-to-end target (the CI fuzz smoke runs it):
// arbitrary bytes become a DFS block and flow through the full
// wordcount pipeline — map, combine, shuffle, reduce — twice, once
// clean and once under deterministic read-fault injection with
// retries. Neither run may panic, and both must produce identical
// output: injected faults are recovered, never observable in results.
func FuzzWorkload(f *testing.F) {
	f.Add([]byte("the quick brown fox\tthe lazy dog\n"), int64(1))
	f.Add([]byte(""), int64(2))
	f.Add([]byte("\x00\xff|||\t\t\n\n"), int64(3))
	f.Add([]byte("a a a b b c"), int64(4))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		if len(data) == 0 || len(data) > 1<<12 {
			t.Skip()
		}
		run := func(inject bool) string {
			store, err := dfs.NewStore(2, 2)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := store.AddFile("input", int64(len(data)), [][]byte{data}); err != nil {
				t.Skip() // block shapes the store rejects are not workload bugs
			}
			if inject {
				inj, err := faults.New(faults.Config{
					Seed:                seed,
					ReadFailRate:        0.5,
					MaxInjectedPerBlock: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				store.SetReadFault(inj.FailRead)
			}
			e := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
			if err := e.SetRetryPolicy(mapreduce.RetryPolicy{MaxAttempts: 4, Backoff: time.Microsecond}); err != nil {
				t.Fatal(err)
			}
			job, err := mapreduce.NewRunning(WordCountJob("wc", "input", "", 2))
			if err != nil {
				t.Fatal(err)
			}
			file, err := store.File("input")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.MapRound(file.Blocks(), []*mapreduce.Running{job}); err != nil {
				t.Fatalf("MapRound (inject=%v): %v", inject, err)
			}
			res, err := e.Finish(job)
			if err != nil {
				t.Fatalf("Finish (inject=%v): %v", inject, err)
			}
			return fmt.Sprint(res.Output)
		}
		clean := run(false)
		faulty := run(true)
		if clean != faulty {
			t.Fatalf("fault injection changed output:\nclean:  %s\nfaulty: %s", clean, faulty)
		}
	})
}
