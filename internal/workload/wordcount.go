package workload

import (
	"fmt"
	"strconv"
	"strings"

	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
)

// PatternCountMapper is the paper's modified wordcount mapper (§V-B):
// it counts only the words matching a user-specified pattern, so
// different patterns make distinct jobs over the same input. The
// pattern is a prefix match, the simplest selective filter.
//
// EmitFactor models the heavy workload (§V-B item 2): each matching
// word is emitted EmitFactor times, multiplying map output volume the
// way the paper's heavy jobs produce 10x map output.
type PatternCountMapper struct {
	Prefix     string
	EmitFactor int
}

var _ mapreduce.Mapper = PatternCountMapper{}
var _ mapreduce.InputRecordCounter = PatternCountMapper{}

// Map implements mapreduce.Mapper.
func (m PatternCountMapper) Map(_ dfs.BlockID, data []byte, emit mapreduce.Emit) error {
	factor := m.EmitFactor
	if factor <= 0 {
		factor = 1
	}
	forEachWord(data, func(w string) {
		if strings.HasPrefix(w, m.Prefix) {
			for i := 0; i < factor; i++ {
				emit(mapreduce.KV{Key: w, Value: "1"})
			}
		}
	})
	return nil
}

// CountInputRecords implements mapreduce.InputRecordCounter: Hadoop's
// wordcount counts input words as records.
func (m PatternCountMapper) CountInputRecords(data []byte) int64 {
	var n int64
	forEachWord(data, func(string) { n++ })
	return n
}

// forEachWord walks whitespace-separated words without allocating a
// new string slice per block.
func forEachWord(data []byte, fn func(word string)) {
	start := -1
	for i, b := range data {
		isSpace := b == ' ' || b == '\n' || b == '\t' || b == '\r'
		if isSpace {
			if start >= 0 {
				fn(string(data[start:i]))
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		fn(string(data[start:]))
	}
}

// SumReducer sums integer-valued counts per key — wordcount's reducer
// and combiner.
type SumReducer struct{}

// Reduce implements mapreduce.Reducer.
func (SumReducer) Reduce(key string, values []string, emit mapreduce.Emit) error {
	total := int64(0)
	for _, v := range values {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("workload: non-numeric count %q for word %q: %w", v, key, err)
		}
		total += n
	}
	emit(mapreduce.KV{Key: key, Value: strconv.FormatInt(total, 10)})
	return nil
}

// WordCountJob builds the spec for one pattern-counting wordcount job
// over file. numReduce follows the paper's configuration (30 on the
// full cluster); pass a small value for scaled-down runs.
func WordCountJob(name, file, prefix string, numReduce int) mapreduce.JobSpec {
	return mapreduce.JobSpec{
		Name:      name,
		File:      file,
		Mapper:    PatternCountMapper{Prefix: prefix},
		Reducer:   SumReducer{},
		Combiner:  SumReducer{},
		NumReduce: numReduce,
	}
}

// HeavyWordCountJob builds a heavy-workload job: emitFactor-times the
// map output and no combiner, so both shuffle and reduce output grow
// the way the paper's heavy workload does (10x map output, 200x reduce
// output).
func HeavyWordCountJob(name, file, prefix string, numReduce, emitFactor int) mapreduce.JobSpec {
	return mapreduce.JobSpec{
		Name:      name,
		File:      file,
		Mapper:    PatternCountMapper{Prefix: prefix, EmitFactor: emitFactor},
		Reducer:   SumReducer{},
		NumReduce: numReduce,
	}
}

// DistinctPrefixes returns n single-letter prefixes that all occur in
// the generated corpus, cycling through the most frequent initials, so
// n wordcount jobs have similar (non-empty) outputs — the paper
// selects jobs "within the same scale of workload".
func DistinctPrefixes(n int) []string {
	letters := []string{"t", "a", "w", "h", "m", "s", "b", "o", "f", "n", "l", "d", "c", "p", "u", "y"}
	out := make([]string, n)
	for i := range out {
		out[i] = letters[i%len(letters)]
	}
	return out
}
