package workload

import (
	"reflect"
	"strings"
	"testing"

	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
)

func TestTopKMapperEmitsRankableCandidates(t *testing.T) {
	var got []mapreduce.KV
	data := []byte("the\t42\nfox\t7\nzebra\t42\n")
	if err := (TopKMapper{}).Map(dfs.BlockID{}, data, func(kv mapreduce.KV) {
		got = append(got, kv)
	}); err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KV{
		{Key: "top", Value: "42 the"},
		{Key: "top", Value: "7 fox"},
		{Key: "top", Value: "42 zebra"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Map emitted %v, want %v", got, want)
	}
}

func TestTopKMapperRejectsNonIntegerCounts(t *testing.T) {
	err := (TopKMapper{}).Map(dfs.BlockID{}, []byte("word\tnotanumber\n"), func(mapreduce.KV) {})
	if err == nil || !strings.Contains(err.Error(), "count is not an integer") {
		t.Fatalf("err = %v, want count parse failure (derived files are machine-written)", err)
	}
}

func TestTopKReducerRanksAndTruncates(t *testing.T) {
	values := []string{"7 fox", "42 zebra", "42 the", "3 dog", "1 the"}
	var got []mapreduce.KV
	if err := (TopKReducer{K: 3}).Reduce("top", values, func(kv mapreduce.KV) {
		got = append(got, kv)
	}); err != nil {
		t.Fatal(err)
	}
	// "the" re-sums to 43 across partitions; ties break by word.
	want := []mapreduce.KV{
		{Key: "the", Value: "43"},
		{Key: "zebra", Value: "42"},
		{Key: "fox", Value: "7"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Reduce emitted %v, want %v", got, want)
	}
}

func TestTopKReducerErrors(t *testing.T) {
	if err := (TopKReducer{}).Reduce("top", nil, func(mapreduce.KV) {}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if err := (TopKReducer{K: 1}).Reduce("top", []string{"noseparator"}, func(mapreduce.KV) {}); err == nil {
		t.Fatal("value without separator accepted")
	}
	if err := (TopKReducer{K: 1}).Reduce("top", []string{"x word"}, func(mapreduce.KV) {}); err == nil {
		t.Fatal("non-integer count accepted")
	}
	// K larger than the candidate set emits everything.
	var got []mapreduce.KV
	if err := (TopKReducer{K: 10}).Reduce("top", []string{"5 only"}, func(kv mapreduce.KV) {
		got = append(got, kv)
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != "only" {
		t.Fatalf("Reduce = %v", got)
	}
}

// The wordcount → top-k chain end to end at the mapreduce layer: a
// first stage's StoreResult output, fed through TopKMapper/TopKReducer,
// yields the k most frequent words.
func TestTopKOverStoredWordcountOutput(t *testing.T) {
	res := &mapreduce.Result{Output: []mapreduce.KV{
		{Key: "the", Value: "9"},
		{Key: "then", Value: "4"},
		{Key: "this", Value: "6"},
		{Key: "thus", Value: "2"},
	}}
	store := dfs.MustStore(2, 1)
	file, err := mapreduce.StoreResult(store, "job-1.out", 64, res)
	if err != nil {
		t.Fatal(err)
	}
	var candidates []mapreduce.KV
	for i := 0; i < file.NumBlocks; i++ {
		data, err := store.ReadBlock(dfs.BlockID{File: "job-1.out", Index: i})
		if err != nil {
			t.Fatal(err)
		}
		if err := (TopKMapper{}).Map(dfs.BlockID{File: "job-1.out", Index: i}, data, func(kv mapreduce.KV) {
			candidates = append(candidates, kv)
		}); err != nil {
			t.Fatal(err)
		}
	}
	values := make([]string, len(candidates))
	for i, kv := range candidates {
		values[i] = kv.Value
	}
	var got []mapreduce.KV
	if err := (TopKReducer{K: 2}).Reduce("top", values, func(kv mapreduce.KV) {
		got = append(got, kv)
	}); err != nil {
		t.Fatal(err)
	}
	want := []mapreduce.KV{{Key: "the", Value: "9"}, {Key: "this", Value: "6"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("top-2 = %v, want %v", got, want)
	}
}

func TestEngineSpecTopK(t *testing.T) {
	j := &FileJob{ID: 2, File: "job-1.out", Factory: FactoryTopK, Param: "3"}
	spec, err := j.EngineSpec(ContentDerived)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := spec.Mapper.(TopKMapper); !ok {
		t.Fatalf("mapper = %T", spec.Mapper)
	}
	if r, ok := spec.Reducer.(TopKReducer); !ok || r.K != 3 {
		t.Fatalf("reducer = %#v", spec.Reducer)
	}
	if spec.Combiner != nil {
		t.Fatal("topk must not combine: the single reduce key needs the full candidate set")
	}
	j.Param = "zero"
	if _, err := j.EngineSpec(ContentDerived); err == nil {
		t.Fatal("non-integer k accepted")
	}
	j.Param = "0"
	if _, err := j.EngineSpec(ContentDerived); err == nil {
		t.Fatal("k=0 accepted")
	}
	meta := &FileJob{ID: 3, File: "m", Factory: FactoryWordCount, Param: "t"}
	if _, err := meta.EngineSpec(ContentMeta); err == nil {
		t.Fatal("meta content accepted for engine run")
	}
	unknown := &FileJob{ID: 4, File: "f", Factory: "mystery"}
	if _, err := unknown.EngineSpec(ContentText); err == nil {
		t.Fatal("unknown factory accepted")
	}
}

func TestValidateAndSummaryDAG(t *testing.T) {
	wf := &File{
		Header: FileHeader{Kind: KindHeader, Version: 3, Name: "chain", Nodes: 2, SlotsPerNode: 2, Replicas: 1},
		Files: []FileSpec{
			{Kind: KindFile, Name: "corpus", Content: ContentText, Blocks: 4, BlockBytes: 1 << 10, SegmentBlocks: 2},
		},
		Jobs: []FileJob{
			{Kind: KindJob, ID: 1, File: "corpus", Factory: FactoryWordCount, Param: "t"},
			{Kind: KindJob, ID: 2, File: DerivedFileName(1), Factory: FactoryTopK, Param: "3", DependsOn: []scheduler.JobID{1}},
		},
	}
	if err := wf.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	sum := wf.Summary()
	if !strings.Contains(sum, "DAG") {
		t.Fatalf("Summary %q does not flag the DAG", sum)
	}
	if !strings.Contains(sum, "corpus") || !strings.Contains(sum, "2 jobs") {
		t.Fatalf("Summary %q missing basics", sum)
	}

	multi := &File{
		Header: FileHeader{Kind: KindHeader, Version: 3, Name: "multi", Nodes: 1, SlotsPerNode: 1, Replicas: 1},
		Files: []FileSpec{
			{Kind: KindFile, Name: "a", Content: ContentText, Blocks: 2, BlockBytes: 1 << 20, SegmentBlocks: 1},
			{Kind: KindFile, Name: "b", Content: ContentText, Blocks: 2, BlockBytes: 3 << 9, SegmentBlocks: 1},
		},
		Jobs: []FileJob{
			{Kind: KindJob, ID: 1, File: "a", Factory: FactoryWordCount, Param: "t"},
		},
	}
	if err := multi.Validate(); err != nil {
		t.Fatalf("Validate multi: %v", err)
	}
	msum := multi.Summary()
	if !strings.Contains(msum, "2 files") || strings.Contains(msum, "DAG") {
		t.Fatalf("Summary %q wrong for flat multi-file workload", msum)
	}

	bad := *wf
	bad.Header.Version = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("v1 workload with dependsOn validated")
	}

	// byteSize covers all three unit branches via Summary inputs above;
	// check the raw-bytes branch directly.
	if got := byteSize(3 << 9); got != "1536B" {
		t.Fatalf("byteSize = %q", got)
	}
	if got := byteSize(1 << 20); got != "1MiB" {
		t.Fatalf("byteSize = %q", got)
	}
}
