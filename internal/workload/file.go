package workload

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
)

// Versioned JSONL workload files are the benchmark harness's unit of
// reproducibility: one file pins everything a differential run depends
// on — cluster shape, input data (by generator seed), job arrivals,
// cost-model calibration, fault schedule and cache budget — so two
// runs of the same file are comparable byte for byte, across
// schedulers, machines and commits (the OS4M position: scheduler
// comparisons are only meaningful under a shared, reproducible
// workload description).
//
// The format is JSON Lines: every non-blank, non-'#' line is one JSON
// object tagged with a "kind" discriminator. The first record must be
// the header; "file" records describe generated inputs; "job" records
// are arrivals. Unknown fields are rejected so a typo'd knob cannot
// silently revert to a default and skew a benchmark.
//
//	{"kind":"workload","version":2,"name":"canonical","nodes":4,...}
//	{"kind":"file","name":"corpus","content":"text","blocks":32,...}
//	{"kind":"job","id":1,"at":0,"file":"corpus","factory":"wordcount","param":"t"}

// FileVersion is the newest workload schema version this package
// accepts; it also still reads every older version. v2 added the
// header's cachePolicy field (block-cache eviction policy for cache-on
// cells); v1 files — which cannot carry the field — parse, price and
// digest exactly as before and default to the LRU policy v1 semantics
// implied.
const FileVersion = 2

// Record kinds (the "kind" discriminator values).
const (
	KindHeader = "workload"
	KindFile   = "file"
	KindJob    = "job"
)

// Content kinds for generated input files.
const (
	// ContentText is the Zipf English-like corpus (wordcount family).
	ContentText = "text"
	// ContentLineitem is the TPC-H lineitem table (selection family).
	ContentLineitem = "lineitem"
	// ContentMeta is a metadata-only file: block placement without
	// bytes. Sim-only workloads use it; engine cells cannot run it.
	ContentMeta = "meta"
)

// Factory names jobs may reference. They mirror
// remote.NewStandardRegistry plus the heavy-workload variant.
const (
	FactoryWordCount      = "wordcount"       // param = prefix to count
	FactoryHeavyWordCount = "heavy-wordcount" // param = prefix; EmitFactor multiplies map output
	FactorySelection      = "selection"       // param = max l_quantity (integer); map-only
	FactoryAggregation    = "aggregation"     // param unused (Q1-style group-by sum)
)

// ErrUnsupportedVersion reports a workload file written by a newer (or
// corrupted) schema. errors.Is-able so callers can distinguish "your
// tool is old" from "your file is broken".
var ErrUnsupportedVersion = errors.New("unsupported workload file version")

// LineError is the typed parse error: every malformed line is reported
// with its 1-based line number and the underlying cause.
type LineError struct {
	Line int
	Err  error
}

// Error implements error.
func (e *LineError) Error() string {
	return fmt.Sprintf("workload: file line %d: %v", e.Line, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *LineError) Unwrap() error { return e.Err }

// FileHeader is the workload file's first record: the environment
// every cell of the benchmark matrix shares.
type FileHeader struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Cluster shape.
	Nodes        int `json:"nodes"`
	SlotsPerNode int `json:"slotsPerNode"`
	Replicas     int `json:"replicas"`
	// Fault model for fault-enabled runs: per-block-read failure
	// probability and the deterministic seed. Zero rate disables
	// injection.
	FaultRate float64 `json:"faultRate,omitempty"`
	FaultSeed int64   `json:"faultSeed,omitempty"`
	// Cache budget for cache-on cells, per node. CacheFrac is the
	// fraction of scanned blocks the sim's warm-set model expects to
	// retain (sim.Executor.EnableCache's second knob).
	CacheMBPerNode int     `json:"cacheMBPerNode,omitempty"`
	CacheFrac      float64 `json:"cacheFrac,omitempty"`
	// CachePolicy picks the block-cache eviction policy for cache-on
	// cells (dfs.Policies: lru, 2q, cursor; empty = lru). Requires
	// schema v2 — a v1 file carrying it is rejected rather than
	// silently repriced.
	CachePolicy string `json:"cachePolicy,omitempty"`
	// Pipeline is the default stage-pipelining setting for consumers
	// that run a single configuration rather than the full matrix.
	Pipeline bool `json:"pipeline,omitempty"`
	// Cost pins the sim calibration the file's timings were produced
	// under; nil means the consumer's default (experiments.NormalModel).
	Cost *sim.CostModel `json:"cost,omitempty"`
}

// FileSpec describes one generated input file.
type FileSpec struct {
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Content string `json:"content"`
	// Blocks × BlockBytes is the file size; SegmentBlocks is the
	// scheduler's segment granularity (dfs.PlanSegments).
	Blocks        int   `json:"blocks"`
	BlockBytes    int64 `json:"blockBytes"`
	SegmentBlocks int   `json:"segmentBlocks"`
	// Seed drives the deterministic generator.
	Seed int64 `json:"seed,omitempty"`
	// Vocab selects a synthetic vocabulary of this many pseudo-words
	// for text content (0 = the built-in ~110-word list).
	Vocab int `json:"vocab,omitempty"`
}

// FileJob is one job arrival.
type FileJob struct {
	Kind string          `json:"kind"`
	ID   scheduler.JobID `json:"id"`
	// At is the submission time in virtual seconds.
	At      float64 `json:"at"`
	File    string  `json:"file"`
	Factory string  `json:"factory"`
	Param   string  `json:"param,omitempty"`
	// Weight/ReduceWeight scale the job's map/reduce cost (0 = 1.0).
	Weight       float64 `json:"weight,omitempty"`
	ReduceWeight float64 `json:"reduceWeight,omitempty"`
	Priority     int     `json:"priority,omitempty"`
	// NumReduce is the engine's reduce partition count (0 = 1).
	NumReduce int `json:"numReduce,omitempty"`
	// EmitFactor multiplies heavy-wordcount map output (0 = 1).
	EmitFactor int `json:"emitFactor,omitempty"`
}

// File is one parsed workload.
type File struct {
	Header FileHeader
	Files  []FileSpec
	Jobs   []FileJob
}

// ParseFile reads a JSONL workload, rejecting malformed lines with
// *LineError and semantic violations via Validate. It never panics on
// malformed input.
func ParseFile(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	wf := &File{}
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 || raw[0] == '#' {
			continue
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, &LineError{Line: line, Err: err}
		}
		decode := func(dst any) error {
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(dst); err != nil {
				return &LineError{Line: line, Err: err}
			}
			if dec.More() {
				return &LineError{Line: line, Err: fmt.Errorf("trailing data after record")}
			}
			return nil
		}
		switch probe.Kind {
		case KindHeader:
			if sawHeader {
				return nil, &LineError{Line: line, Err: fmt.Errorf("duplicate %q record", KindHeader)}
			}
			if err := decode(&wf.Header); err != nil {
				return nil, err
			}
			sawHeader = true
		case KindFile:
			if !sawHeader {
				return nil, &LineError{Line: line, Err: fmt.Errorf("%q record before the %q header", KindFile, KindHeader)}
			}
			var fs FileSpec
			if err := decode(&fs); err != nil {
				return nil, err
			}
			wf.Files = append(wf.Files, fs)
		case KindJob:
			if !sawHeader {
				return nil, &LineError{Line: line, Err: fmt.Errorf("%q record before the %q header", KindJob, KindHeader)}
			}
			var j FileJob
			if err := decode(&j); err != nil {
				return nil, err
			}
			wf.Jobs = append(wf.Jobs, j)
		default:
			return nil, &LineError{Line: line, Err: fmt.Errorf("unknown record kind %q", probe.Kind)}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading file: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("workload: file has no %q header record", KindHeader)
	}
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	return wf, nil
}

// Validate checks the workload's semantic invariants.
func (wf *File) Validate() error {
	h := &wf.Header
	if h.Kind != KindHeader {
		return fmt.Errorf("workload: header kind is %q, want %q", h.Kind, KindHeader)
	}
	if h.Version < 1 || h.Version > FileVersion {
		return fmt.Errorf("workload: %w: got %d, this build supports 1..%d", ErrUnsupportedVersion, h.Version, FileVersion)
	}
	if h.Name == "" {
		return fmt.Errorf("workload: header has no name")
	}
	if h.Nodes <= 0 || h.SlotsPerNode <= 0 {
		return fmt.Errorf("workload %q: cluster must have positive nodes (%d) and slots per node (%d)", h.Name, h.Nodes, h.SlotsPerNode)
	}
	if h.Replicas < 1 || h.Replicas > h.Nodes {
		return fmt.Errorf("workload %q: replicas %d out of range [1, %d nodes]", h.Name, h.Replicas, h.Nodes)
	}
	if h.FaultRate < 0 || h.FaultRate >= 1 {
		return fmt.Errorf("workload %q: fault rate %v out of range [0, 1)", h.Name, h.FaultRate)
	}
	if h.CacheMBPerNode < 0 {
		return fmt.Errorf("workload %q: negative cache budget %d MB/node", h.Name, h.CacheMBPerNode)
	}
	if h.CacheFrac < 0 || h.CacheFrac > 1 {
		return fmt.Errorf("workload %q: cache fraction %v out of range [0, 1]", h.Name, h.CacheFrac)
	}
	if h.CachePolicy != "" {
		if h.Version < 2 {
			return fmt.Errorf("workload %q: cachePolicy needs schema v2, header says v%d", h.Name, h.Version)
		}
		if !dfs.ValidPolicy(h.CachePolicy) {
			return fmt.Errorf("workload %q: unknown cache policy %q (want one of %v)", h.Name, h.CachePolicy, dfs.Policies())
		}
	}
	if h.Cost != nil {
		if err := h.Cost.Validate(); err != nil {
			return fmt.Errorf("workload %q: %w", h.Name, err)
		}
	}
	// Workloads carry a single input file — the schedulers'
	// constructors take one segment plan. The schema keeps a file
	// *list* so multi-file workloads are a version bump, not a format
	// break.
	if len(wf.Files) != 1 {
		return fmt.Errorf("workload %q: v%d requires exactly one file record, got %d", h.Name, h.Version, len(wf.Files))
	}
	f := &wf.Files[0]
	if f.Name == "" {
		return fmt.Errorf("workload %q: file has no name", h.Name)
	}
	switch f.Content {
	case ContentText, ContentLineitem, ContentMeta:
	default:
		return fmt.Errorf("workload %q: file %q has unknown content %q (want %s|%s|%s)",
			h.Name, f.Name, f.Content, ContentText, ContentLineitem, ContentMeta)
	}
	if f.Blocks <= 0 || f.BlockBytes <= 0 {
		return fmt.Errorf("workload %q: file %q needs positive blocks (%d) and block bytes (%d)", h.Name, f.Name, f.Blocks, f.BlockBytes)
	}
	if f.SegmentBlocks < 1 || f.SegmentBlocks > f.Blocks {
		return fmt.Errorf("workload %q: file %q segment size %d out of range [1, %d blocks]", h.Name, f.Name, f.SegmentBlocks, f.Blocks)
	}
	if f.Vocab < 0 {
		return fmt.Errorf("workload %q: file %q has negative vocabulary %d", h.Name, f.Name, f.Vocab)
	}
	if f.Vocab > 0 && f.Content != ContentText {
		return fmt.Errorf("workload %q: file %q sets vocab for %s content (text only)", h.Name, f.Name, f.Content)
	}
	if len(wf.Jobs) == 0 {
		return fmt.Errorf("workload %q: no job records", h.Name)
	}
	seen := make(map[scheduler.JobID]bool, len(wf.Jobs))
	for i := range wf.Jobs {
		j := &wf.Jobs[i]
		if j.ID <= 0 {
			return fmt.Errorf("workload %q: job %d has non-positive id %d", h.Name, i+1, j.ID)
		}
		if seen[j.ID] {
			return fmt.Errorf("workload %q: duplicate job id %d", h.Name, j.ID)
		}
		seen[j.ID] = true
		if j.At < 0 {
			return fmt.Errorf("workload %q: job %d arrives at negative time %v", h.Name, j.ID, j.At)
		}
		if j.File != f.Name {
			return fmt.Errorf("workload %q: job %d reads %q, not the workload's file %q", h.Name, j.ID, j.File, f.Name)
		}
		if j.Weight < 0 || j.ReduceWeight < 0 {
			return fmt.Errorf("workload %q: job %d has negative weight (%v/%v)", h.Name, j.ID, j.Weight, j.ReduceWeight)
		}
		if j.NumReduce < 0 {
			return fmt.Errorf("workload %q: job %d has negative reduce count %d", h.Name, j.ID, j.NumReduce)
		}
		if j.EmitFactor < 0 {
			return fmt.Errorf("workload %q: job %d has negative emit factor %d", h.Name, j.ID, j.EmitFactor)
		}
		switch j.Factory {
		case FactoryWordCount, FactoryHeavyWordCount:
			if f.Content != ContentText && f.Content != ContentMeta {
				return fmt.Errorf("workload %q: job %d (%s) needs %s content, file %q is %s", h.Name, j.ID, j.Factory, ContentText, f.Name, f.Content)
			}
			if j.EmitFactor > 0 && j.Factory != FactoryHeavyWordCount {
				return fmt.Errorf("workload %q: job %d sets emitFactor for factory %q (%s only)", h.Name, j.ID, j.Factory, FactoryHeavyWordCount)
			}
		case FactorySelection:
			if f.Content != ContentLineitem && f.Content != ContentMeta {
				return fmt.Errorf("workload %q: job %d (%s) needs %s content, file %q is %s", h.Name, j.ID, j.Factory, ContentLineitem, f.Name, f.Content)
			}
			if _, err := strconv.Atoi(j.Param); err != nil {
				return fmt.Errorf("workload %q: job %d: selection param must be an integer quantity, got %q", h.Name, j.ID, j.Param)
			}
			if j.EmitFactor > 0 {
				return fmt.Errorf("workload %q: job %d sets emitFactor for factory %q (%s only)", h.Name, j.ID, j.Factory, FactoryHeavyWordCount)
			}
		case FactoryAggregation:
			if f.Content != ContentLineitem && f.Content != ContentMeta {
				return fmt.Errorf("workload %q: job %d (%s) needs %s content, file %q is %s", h.Name, j.ID, j.Factory, ContentLineitem, f.Name, f.Content)
			}
			if j.EmitFactor > 0 {
				return fmt.Errorf("workload %q: job %d sets emitFactor for factory %q (%s only)", h.Name, j.ID, j.Factory, FactoryHeavyWordCount)
			}
		default:
			return fmt.Errorf("workload %q: job %d has unknown factory %q", h.Name, j.ID, j.Factory)
		}
	}
	return nil
}

// Serialize writes the canonical JSONL form: header, file records,
// then job records, one compact JSON object per line, fields in schema
// order. Parse∘Serialize is the identity on parsed workloads, so the
// serialized bytes (and Digest) are a stable fingerprint.
func (wf *File) Serialize(w io.Writer) error {
	writeRec := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("workload: serializing record: %w", err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
		return nil
	}
	if err := writeRec(&wf.Header); err != nil {
		return err
	}
	for i := range wf.Files {
		if err := writeRec(&wf.Files[i]); err != nil {
			return err
		}
	}
	for i := range wf.Jobs {
		if err := writeRec(&wf.Jobs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Digest returns the sha256 hex digest of the canonical serialization
// — the workload identity reports carry, so a report can never be
// diffed against a baseline produced from a different workload.
func (wf *File) Digest() string {
	h := sha256.New()
	if err := wf.Serialize(h); err != nil {
		panic(fmt.Sprintf("workload: digesting: %v", err)) // in-memory write cannot fail
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Meta returns the scheduler-visible description of the job.
func (j *FileJob) Meta() scheduler.JobMeta {
	name := j.Factory
	if j.Param != "" {
		name += "-" + j.Param
	}
	return scheduler.JobMeta{
		ID:           j.ID,
		Name:         fmt.Sprintf("%s-%d", name, j.ID),
		File:         j.File,
		Weight:       j.Weight,
		ReduceWeight: j.ReduceWeight,
		Priority:     j.Priority,
	}
}

// Entries returns the workload's arrivals in file order, ready for a
// trace source.
func (wf *File) Entries() []TraceEntry {
	out := make([]TraceEntry, len(wf.Jobs))
	for i := range wf.Jobs {
		out[i] = TraceEntry{Job: wf.Jobs[i].Meta(), At: vclock.Time(wf.Jobs[i].At)}
	}
	return out
}

// EngineSpec builds the executable mapreduce job for engine runs. The
// workload must have validated, so factory names and params are known
// good; the error covers meta-content workloads, which have no bytes
// to execute.
func (j *FileJob) EngineSpec(content string) (mapreduce.JobSpec, error) {
	if content == ContentMeta {
		return mapreduce.JobSpec{}, fmt.Errorf("workload: job %d reads a %s file; engine runs need real content", j.ID, ContentMeta)
	}
	numReduce := j.NumReduce
	if numReduce == 0 {
		numReduce = 1
	}
	spec := mapreduce.JobSpec{
		Name:      j.Meta().Name,
		File:      j.File,
		NumReduce: numReduce,
	}
	switch j.Factory {
	case FactoryWordCount:
		spec.Mapper = PatternCountMapper{Prefix: j.Param}
		spec.Reducer = SumReducer{}
		spec.Combiner = SumReducer{}
	case FactoryHeavyWordCount:
		// No combiner: shuffle and reduce see the multiplied output,
		// like the paper's heavy workload.
		spec.Mapper = PatternCountMapper{Prefix: j.Param, EmitFactor: j.EmitFactor}
		spec.Reducer = SumReducer{}
	case FactorySelection:
		max, err := strconv.Atoi(j.Param)
		if err != nil {
			return mapreduce.JobSpec{}, fmt.Errorf("workload: job %d: selection param %q: %w", j.ID, j.Param, err)
		}
		spec.Mapper = SelectionMapper{MaxQuantity: max} // map-only
	case FactoryAggregation:
		spec.Mapper = AggregationMapper{}
		spec.Reducer = SumReducer{}
		spec.Combiner = SumReducer{}
	default:
		return mapreduce.JobSpec{}, fmt.Errorf("workload: job %d has unknown factory %q", j.ID, j.Factory)
	}
	return spec, nil
}

// EngineSpecs builds the executable specs for every job, keyed by id —
// the map driver.NewEngineExecutor takes.
func (wf *File) EngineSpecs() (map[scheduler.JobID]mapreduce.JobSpec, error) {
	out := make(map[scheduler.JobID]mapreduce.JobSpec, len(wf.Jobs))
	for i := range wf.Jobs {
		spec, err := wf.Jobs[i].EngineSpec(wf.Files[0].Content)
		if err != nil {
			return nil, err
		}
		out[wf.Jobs[i].ID] = spec
	}
	return out, nil
}

// AddTo registers the generated file with the store.
func (f *FileSpec) AddTo(store *dfs.Store) (*dfs.File, error) {
	switch f.Content {
	case ContentText:
		if f.Vocab > 0 {
			return AddTextFileVocab(store, f.Name, f.Blocks, f.BlockBytes, f.Seed, f.Vocab)
		}
		return AddTextFile(store, f.Name, f.Blocks, f.BlockBytes, f.Seed)
	case ContentLineitem:
		return AddLineitemFile(store, f.Name, f.Blocks, f.BlockBytes, f.Seed)
	case ContentMeta:
		return store.AddMetaFile(f.Name, f.Blocks, f.BlockBytes)
	default:
		return nil, fmt.Errorf("workload: file %q has unknown content %q", f.Name, f.Content)
	}
}

// Summary renders a one-line human description ("canonical: 12 jobs
// over corpus (32×16KiB text blocks) on 4×2 nodes").
func (wf *File) Summary() string {
	f := &wf.Files[0]
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d jobs over %s (%d×%s %s blocks) on %d×%d slots",
		wf.Header.Name, len(wf.Jobs), f.Name, f.Blocks, byteSize(f.BlockBytes), f.Content,
		wf.Header.Nodes, wf.Header.SlotsPerNode)
	return b.String()
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
