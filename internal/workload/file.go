package workload

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/vclock"
)

// Versioned JSONL workload files are the benchmark harness's unit of
// reproducibility: one file pins everything a differential run depends
// on — cluster shape, input data (by generator seed), job arrivals,
// cost-model calibration, fault schedule and cache budget — so two
// runs of the same file are comparable byte for byte, across
// schedulers, machines and commits (the OS4M position: scheduler
// comparisons are only meaningful under a shared, reproducible
// workload description).
//
// The format is JSON Lines: every non-blank, non-'#' line is one JSON
// object tagged with a "kind" discriminator. The first record must be
// the header; "file" records describe generated inputs; "job" records
// are arrivals. Unknown fields are rejected so a typo'd knob cannot
// silently revert to a default and skew a benchmark.
//
//	{"kind":"workload","version":2,"name":"canonical","nodes":4,...}
//	{"kind":"file","name":"corpus","content":"text","blocks":32,...}
//	{"kind":"job","id":1,"at":0,"file":"corpus","factory":"wordcount","param":"t"}

// FileVersion is the newest workload schema version this package
// accepts; it also still reads every older version. v2 added the
// header's cachePolicy field (block-cache eviction policy for cache-on
// cells); v3 added multi-file workloads (several "file" records) and
// job DAGs (the job record's dependsOn field — a job may scan another
// job's materialized output). v1/v2 files parse, price and digest
// exactly as before.
const FileVersion = 3

// Record kinds (the "kind" discriminator values).
const (
	KindHeader = "workload"
	KindFile   = "file"
	KindJob    = "job"
)

// Content kinds for generated input files.
const (
	// ContentText is the Zipf English-like corpus (wordcount family).
	ContentText = "text"
	// ContentLineitem is the TPC-H lineitem table (selection family).
	ContentLineitem = "lineitem"
	// ContentMeta is a metadata-only file: block placement without
	// bytes. Sim-only workloads use it; engine cells cannot run it.
	ContentMeta = "meta"
	// ContentDerived is the content of a materialized job output —
	// "key\tvalue\n" lines, the framing mapreduce.StoreResult writes.
	// It is never declared in a file record; jobs reach it by naming
	// DerivedFileName(dep) as their input.
	ContentDerived = "derived"
)

// Factory names jobs may reference. They mirror
// remote.NewStandardRegistry plus the heavy-workload variant.
const (
	FactoryWordCount      = "wordcount"       // param = prefix to count
	FactoryHeavyWordCount = "heavy-wordcount" // param = prefix; EmitFactor multiplies map output
	FactorySelection      = "selection"       // param = max l_quantity (integer); map-only
	FactoryAggregation    = "aggregation"     // param unused (Q1-style group-by sum)
	FactoryTopK           = "topk"            // param = k; selects the k highest counts from a derived file
)

// DerivedFileName is the dfs name under which job id's reduce output
// materializes when downstream jobs depend on it. Stage outputs are
// first-class files: their consumers share circular scans exactly like
// jobs over declared inputs.
func DerivedFileName(id scheduler.JobID) string {
	return fmt.Sprintf("job-%d.out", id)
}

// ErrUnsupportedVersion reports a workload file written by a newer (or
// corrupted) schema. errors.Is-able so callers can distinguish "your
// tool is old" from "your file is broken".
var ErrUnsupportedVersion = errors.New("unsupported workload file version")

// LineError is the typed parse error: every malformed line is reported
// with its 1-based line number and the underlying cause.
type LineError struct {
	Line int
	Err  error
}

// Error implements error.
func (e *LineError) Error() string {
	return fmt.Sprintf("workload: file line %d: %v", e.Line, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *LineError) Unwrap() error { return e.Err }

// FileHeader is the workload file's first record: the environment
// every cell of the benchmark matrix shares.
type FileHeader struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Cluster shape.
	Nodes        int `json:"nodes"`
	SlotsPerNode int `json:"slotsPerNode"`
	Replicas     int `json:"replicas"`
	// Fault model for fault-enabled runs: per-block-read failure
	// probability and the deterministic seed. Zero rate disables
	// injection.
	FaultRate float64 `json:"faultRate,omitempty"`
	FaultSeed int64   `json:"faultSeed,omitempty"`
	// Cache budget for cache-on cells, per node. CacheFrac is the
	// fraction of scanned blocks the sim's warm-set model expects to
	// retain (sim.Executor.EnableCache's second knob).
	CacheMBPerNode int     `json:"cacheMBPerNode,omitempty"`
	CacheFrac      float64 `json:"cacheFrac,omitempty"`
	// CachePolicy picks the block-cache eviction policy for cache-on
	// cells (dfs.Policies: lru, 2q, cursor; empty = lru). Requires
	// schema v2 — a v1 file carrying it is rejected rather than
	// silently repriced.
	CachePolicy string `json:"cachePolicy,omitempty"`
	// Pipeline is the default stage-pipelining setting for consumers
	// that run a single configuration rather than the full matrix.
	Pipeline bool `json:"pipeline,omitempty"`
	// Cost pins the sim calibration the file's timings were produced
	// under; nil means the consumer's default (experiments.NormalModel).
	Cost *sim.CostModel `json:"cost,omitempty"`
}

// FileSpec describes one generated input file.
type FileSpec struct {
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Content string `json:"content"`
	// Blocks × BlockBytes is the file size; SegmentBlocks is the
	// scheduler's segment granularity (dfs.PlanSegments).
	Blocks        int   `json:"blocks"`
	BlockBytes    int64 `json:"blockBytes"`
	SegmentBlocks int   `json:"segmentBlocks"`
	// Seed drives the deterministic generator.
	Seed int64 `json:"seed,omitempty"`
	// Vocab selects a synthetic vocabulary of this many pseudo-words
	// for text content (0 = the built-in ~110-word list).
	Vocab int `json:"vocab,omitempty"`
}

// FileJob is one job arrival.
type FileJob struct {
	Kind string          `json:"kind"`
	ID   scheduler.JobID `json:"id"`
	// At is the submission time in virtual seconds.
	At      float64 `json:"at"`
	File    string  `json:"file"`
	Factory string  `json:"factory"`
	Param   string  `json:"param,omitempty"`
	// Weight/ReduceWeight scale the job's map/reduce cost (0 = 1.0).
	Weight       float64 `json:"weight,omitempty"`
	ReduceWeight float64 `json:"reduceWeight,omitempty"`
	Priority     int     `json:"priority,omitempty"`
	// NumReduce is the engine's reduce partition count (0 = 1).
	NumReduce int `json:"numReduce,omitempty"`
	// EmitFactor multiplies heavy-wordcount map output (0 = 1).
	EmitFactor int `json:"emitFactor,omitempty"`
	// DependsOn lists jobs that must complete before this one becomes
	// ready (schema v3). A job whose File is DerivedFileName(dep) scans
	// dep's materialized reduce output; deps whose outputs the job does
	// not read are pure ordering constraints. The job's At is a lower
	// bound: it is admitted at max(At, last dep's materialization).
	DependsOn []scheduler.JobID `json:"dependsOn,omitempty"`
}

// File is one parsed workload.
type File struct {
	Header FileHeader
	Files  []FileSpec
	Jobs   []FileJob
}

// ParseFile reads a JSONL workload, rejecting malformed lines with
// *LineError and semantic violations via Validate. It never panics on
// malformed input.
func ParseFile(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	wf := &File{}
	lines := &lineIndex{}
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 || raw[0] == '#' {
			continue
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, &LineError{Line: line, Err: err}
		}
		decode := func(dst any) error {
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(dst); err != nil {
				return &LineError{Line: line, Err: err}
			}
			if dec.More() {
				return &LineError{Line: line, Err: fmt.Errorf("trailing data after record")}
			}
			return nil
		}
		switch probe.Kind {
		case KindHeader:
			if sawHeader {
				return nil, &LineError{Line: line, Err: fmt.Errorf("duplicate %q record", KindHeader)}
			}
			if err := decode(&wf.Header); err != nil {
				return nil, err
			}
			lines.header = line
			sawHeader = true
		case KindFile:
			if !sawHeader {
				return nil, &LineError{Line: line, Err: fmt.Errorf("%q record before the %q header", KindFile, KindHeader)}
			}
			var fs FileSpec
			if err := decode(&fs); err != nil {
				return nil, err
			}
			wf.Files = append(wf.Files, fs)
			lines.files = append(lines.files, line)
		case KindJob:
			if !sawHeader {
				return nil, &LineError{Line: line, Err: fmt.Errorf("%q record before the %q header", KindJob, KindHeader)}
			}
			var j FileJob
			if err := decode(&j); err != nil {
				return nil, err
			}
			wf.Jobs = append(wf.Jobs, j)
			lines.jobs = append(lines.jobs, line)
		default:
			return nil, &LineError{Line: line, Err: fmt.Errorf("unknown record kind %q", probe.Kind)}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading file: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("workload: file has no %q header record", KindHeader)
	}
	if err := wf.validate(lines); err != nil {
		return nil, err
	}
	return wf, nil
}

// lineIndex maps parsed records back to their 1-based source lines so
// validation failures from ParseFile carry typed *LineError positions.
type lineIndex struct {
	header int
	files  []int
	jobs   []int
}

func (li *lineIndex) fileLine(i int) int {
	if li == nil || i >= len(li.files) {
		return 0
	}
	return li.files[i]
}

func (li *lineIndex) jobLine(i int) int {
	if li == nil || i >= len(li.jobs) {
		return 0
	}
	return li.jobs[i]
}

// Validate checks the workload's semantic invariants.
func (wf *File) Validate() error { return wf.validate(nil) }

// validate is Validate with an optional record→line map: with one, a
// record-level violation is wrapped in a *LineError pointing at the
// offending line (how ParseFile reports dangling or cyclic dependsOn,
// duplicate ids, and the rest of the job/file checks).
func (wf *File) validate(lines *lineIndex) error {
	at := func(line int, err error) error {
		if line > 0 {
			return &LineError{Line: line, Err: err}
		}
		return err
	}
	h := &wf.Header
	if h.Kind != KindHeader {
		return fmt.Errorf("workload: header kind is %q, want %q", h.Kind, KindHeader)
	}
	if h.Version < 1 || h.Version > FileVersion {
		return fmt.Errorf("workload: %w: got %d, this build supports 1..%d", ErrUnsupportedVersion, h.Version, FileVersion)
	}
	if h.Name == "" {
		return fmt.Errorf("workload: header has no name")
	}
	if h.Nodes <= 0 || h.SlotsPerNode <= 0 {
		return fmt.Errorf("workload %q: cluster must have positive nodes (%d) and slots per node (%d)", h.Name, h.Nodes, h.SlotsPerNode)
	}
	if h.Replicas < 1 || h.Replicas > h.Nodes {
		return fmt.Errorf("workload %q: replicas %d out of range [1, %d nodes]", h.Name, h.Replicas, h.Nodes)
	}
	if h.FaultRate < 0 || h.FaultRate >= 1 {
		return fmt.Errorf("workload %q: fault rate %v out of range [0, 1)", h.Name, h.FaultRate)
	}
	if h.CacheMBPerNode < 0 {
		return fmt.Errorf("workload %q: negative cache budget %d MB/node", h.Name, h.CacheMBPerNode)
	}
	if h.CacheFrac < 0 || h.CacheFrac > 1 {
		return fmt.Errorf("workload %q: cache fraction %v out of range [0, 1]", h.Name, h.CacheFrac)
	}
	if h.CachePolicy != "" {
		if h.Version < 2 {
			return fmt.Errorf("workload %q: cachePolicy needs schema v2, header says v%d", h.Name, h.Version)
		}
		if !dfs.ValidPolicy(h.CachePolicy) {
			return fmt.Errorf("workload %q: unknown cache policy %q (want one of %v)", h.Name, h.CachePolicy, dfs.Policies())
		}
	}
	if h.Cost != nil {
		if err := h.Cost.Validate(); err != nil {
			return fmt.Errorf("workload %q: %w", h.Name, err)
		}
	}
	// v1/v2 workloads carry a single input file — those schedulers'
	// constructors take one segment plan. v3 allows several (the
	// multi-plan constructors route jobs by file).
	if h.Version < 3 && len(wf.Files) != 1 {
		return fmt.Errorf("workload %q: v%d requires exactly one file record, got %d", h.Name, h.Version, len(wf.Files))
	}
	if len(wf.Files) == 0 {
		return fmt.Errorf("workload %q: no file records", h.Name)
	}
	fileIdx := make(map[string]int, len(wf.Files))
	for i := range wf.Files {
		f := &wf.Files[i]
		fl := lines.fileLine(i)
		if f.Name == "" {
			return at(fl, fmt.Errorf("workload %q: file has no name", h.Name))
		}
		if _, dup := fileIdx[f.Name]; dup {
			return at(fl, fmt.Errorf("workload %q: duplicate file %q", h.Name, f.Name))
		}
		fileIdx[f.Name] = i
		switch f.Content {
		case ContentText, ContentLineitem, ContentMeta:
		default:
			return at(fl, fmt.Errorf("workload %q: file %q has unknown content %q (want %s|%s|%s)",
				h.Name, f.Name, f.Content, ContentText, ContentLineitem, ContentMeta))
		}
		if f.Blocks <= 0 || f.BlockBytes <= 0 {
			return at(fl, fmt.Errorf("workload %q: file %q needs positive blocks (%d) and block bytes (%d)", h.Name, f.Name, f.Blocks, f.BlockBytes))
		}
		if f.SegmentBlocks < 1 || f.SegmentBlocks > f.Blocks {
			return at(fl, fmt.Errorf("workload %q: file %q segment size %d out of range [1, %d blocks]", h.Name, f.Name, f.SegmentBlocks, f.Blocks))
		}
		if f.Vocab < 0 {
			return at(fl, fmt.Errorf("workload %q: file %q has negative vocabulary %d", h.Name, f.Name, f.Vocab))
		}
		if f.Vocab > 0 && f.Content != ContentText {
			return at(fl, fmt.Errorf("workload %q: file %q sets vocab for %s content (text only)", h.Name, f.Name, f.Content))
		}
	}
	if len(wf.Jobs) == 0 {
		return fmt.Errorf("workload %q: no job records", h.Name)
	}
	jobIdx := make(map[scheduler.JobID]int, len(wf.Jobs))
	hasDAG := false
	for i := range wf.Jobs {
		j := &wf.Jobs[i]
		jl := lines.jobLine(i)
		if j.ID <= 0 {
			return at(jl, fmt.Errorf("workload %q: job %d has non-positive id %d", h.Name, i+1, j.ID))
		}
		if _, dup := jobIdx[j.ID]; dup {
			return at(jl, fmt.Errorf("workload %q: duplicate job id %d", h.Name, j.ID))
		}
		jobIdx[j.ID] = i
		if len(j.DependsOn) > 0 {
			hasDAG = true
		}
	}
	for i := range wf.Jobs {
		j := &wf.Jobs[i]
		jl := lines.jobLine(i)
		if j.At < 0 {
			return at(jl, fmt.Errorf("workload %q: job %d arrives at negative time %v", h.Name, j.ID, j.At))
		}
		if len(j.DependsOn) > 0 && h.Version < 3 {
			return at(jl, fmt.Errorf("workload %q: job %d: dependsOn needs schema v3, header says v%d", h.Name, j.ID, h.Version))
		}
		depSet := make(map[scheduler.JobID]bool, len(j.DependsOn))
		for _, dep := range j.DependsOn {
			if dep == j.ID {
				return at(jl, fmt.Errorf("workload %q: job %d depends on itself", h.Name, j.ID))
			}
			if _, ok := jobIdx[dep]; !ok {
				return at(jl, fmt.Errorf("workload %q: job %d depends on unknown job %d", h.Name, j.ID, dep))
			}
			if depSet[dep] {
				return at(jl, fmt.Errorf("workload %q: job %d lists dependency %d twice", h.Name, j.ID, dep))
			}
			depSet[dep] = true
		}
		// Resolve the input: a declared file, or the derived output of
		// one of this job's dependencies.
		content := ""
		if fi, ok := fileIdx[j.File]; ok {
			content = wf.Files[fi].Content
		} else {
			producer, derived := wf.derivedProducer(j.File)
			switch {
			case !derived:
				return at(jl, fmt.Errorf("workload %q: job %d reads unknown file %q", h.Name, j.ID, j.File))
			case !depSet[producer]:
				return at(jl, fmt.Errorf("workload %q: job %d reads derived file %q without depending on job %d", h.Name, j.ID, j.File, producer))
			}
			content = ContentDerived
		}
		if j.Weight < 0 || j.ReduceWeight < 0 {
			return at(jl, fmt.Errorf("workload %q: job %d has negative weight (%v/%v)", h.Name, j.ID, j.Weight, j.ReduceWeight))
		}
		if j.NumReduce < 0 {
			return at(jl, fmt.Errorf("workload %q: job %d has negative reduce count %d", h.Name, j.ID, j.NumReduce))
		}
		if j.EmitFactor < 0 {
			return at(jl, fmt.Errorf("workload %q: job %d has negative emit factor %d", h.Name, j.ID, j.EmitFactor))
		}
		if j.EmitFactor > 0 && j.Factory != FactoryHeavyWordCount {
			return at(jl, fmt.Errorf("workload %q: job %d sets emitFactor for factory %q (%s only)", h.Name, j.ID, j.Factory, FactoryHeavyWordCount))
		}
		switch j.Factory {
		case FactoryWordCount, FactoryHeavyWordCount:
			if content != ContentText && content != ContentMeta && content != ContentDerived {
				return at(jl, fmt.Errorf("workload %q: job %d (%s) needs %s content, file %q is %s", h.Name, j.ID, j.Factory, ContentText, j.File, content))
			}
		case FactorySelection:
			if content != ContentLineitem && content != ContentMeta {
				return at(jl, fmt.Errorf("workload %q: job %d (%s) needs %s content, file %q is %s", h.Name, j.ID, j.Factory, ContentLineitem, j.File, content))
			}
			if _, err := strconv.Atoi(j.Param); err != nil {
				return at(jl, fmt.Errorf("workload %q: job %d: selection param must be an integer quantity, got %q", h.Name, j.ID, j.Param))
			}
		case FactoryAggregation:
			if content != ContentLineitem && content != ContentMeta {
				return at(jl, fmt.Errorf("workload %q: job %d (%s) needs %s content, file %q is %s", h.Name, j.ID, j.Factory, ContentLineitem, j.File, content))
			}
		case FactoryTopK:
			if content != ContentDerived {
				return at(jl, fmt.Errorf("workload %q: job %d (%s) reads %q (%s); topk scans a dependency's derived output", h.Name, j.ID, j.Factory, j.File, content))
			}
			if k, err := strconv.Atoi(j.Param); err != nil || k < 1 {
				return at(jl, fmt.Errorf("workload %q: job %d: topk param must be a positive integer k, got %q", h.Name, j.ID, j.Param))
			}
		default:
			return at(jl, fmt.Errorf("workload %q: job %d has unknown factory %q", h.Name, j.ID, j.Factory))
		}
	}
	if hasDAG {
		// Derived-file geometry comes from actually executing the
		// producing stages, so a DAG workload cannot be metadata-only.
		for i := range wf.Files {
			if wf.Files[i].Content == ContentMeta {
				return at(lines.fileLine(i), fmt.Errorf("workload %q: file %q is %s content; DAG workloads need real bytes to materialize stage outputs", h.Name, wf.Files[i].Name, ContentMeta))
			}
		}
		if err := wf.checkAcyclic(jobIdx, lines); err != nil {
			return err
		}
	}
	return nil
}

// DerivedProducer reports whether name is some job's derived output
// file and, if so, which job produces it.
func (wf *File) DerivedProducer(name string) (scheduler.JobID, bool) {
	return wf.derivedProducer(name)
}

// derivedProducer reports whether name is some job's derived output
// file and, if so, which job produces it.
func (wf *File) derivedProducer(name string) (scheduler.JobID, bool) {
	for i := range wf.Jobs {
		if DerivedFileName(wf.Jobs[i].ID) == name {
			return wf.Jobs[i].ID, true
		}
	}
	return 0, false
}

// HasDAG reports whether any job declares dependencies — the workloads
// that need a pipeline coordinator and a plan-registering scheduler.
func (wf *File) HasDAG() bool {
	for i := range wf.Jobs {
		if len(wf.Jobs[i].DependsOn) > 0 {
			return true
		}
	}
	return false
}

// checkAcyclic rejects dependency cycles with a three-color DFS. The
// error is attributed to the job record the cycle was first entered
// through.
func (wf *File) checkAcyclic(jobIdx map[scheduler.JobID]int, lines *lineIndex) error {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // finished, known acyclic
	)
	color := make(map[scheduler.JobID]int, len(wf.Jobs))
	var visit func(id scheduler.JobID) error
	visit = func(id scheduler.JobID) error {
		color[id] = gray
		for _, dep := range wf.Jobs[jobIdx[id]].DependsOn {
			switch color[dep] {
			case gray:
				err := fmt.Errorf("workload %q: job %d is on a dependency cycle (via job %d)", wf.Header.Name, id, dep)
				if l := lines.jobLine(jobIdx[id]); l > 0 {
					return &LineError{Line: l, Err: err}
				}
				return err
			case white:
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		color[id] = black
		return nil
	}
	for i := range wf.Jobs {
		if color[wf.Jobs[i].ID] == white {
			if err := visit(wf.Jobs[i].ID); err != nil {
				return err
			}
		}
	}
	return nil
}

// Serialize writes the canonical JSONL form: header, file records,
// then job records, one compact JSON object per line, fields in schema
// order. Parse∘Serialize is the identity on parsed workloads, so the
// serialized bytes (and Digest) are a stable fingerprint.
func (wf *File) Serialize(w io.Writer) error {
	writeRec := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("workload: serializing record: %w", err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
		return nil
	}
	if err := writeRec(&wf.Header); err != nil {
		return err
	}
	for i := range wf.Files {
		if err := writeRec(&wf.Files[i]); err != nil {
			return err
		}
	}
	for i := range wf.Jobs {
		if err := writeRec(&wf.Jobs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Digest returns the sha256 hex digest of the canonical serialization
// — the workload identity reports carry, so a report can never be
// diffed against a baseline produced from a different workload.
func (wf *File) Digest() string {
	h := sha256.New()
	if err := wf.Serialize(h); err != nil {
		panic(fmt.Sprintf("workload: digesting: %v", err)) // in-memory write cannot fail
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Meta returns the scheduler-visible description of the job.
func (j *FileJob) Meta() scheduler.JobMeta {
	name := j.Factory
	if j.Param != "" {
		name += "-" + j.Param
	}
	return scheduler.JobMeta{
		ID:           j.ID,
		Name:         fmt.Sprintf("%s-%d", name, j.ID),
		File:         j.File,
		Weight:       j.Weight,
		ReduceWeight: j.ReduceWeight,
		Priority:     j.Priority,
	}
}

// Entries returns the workload's arrivals in file order, ready for a
// trace source.
func (wf *File) Entries() []TraceEntry {
	out := make([]TraceEntry, len(wf.Jobs))
	for i := range wf.Jobs {
		out[i] = TraceEntry{Job: wf.Jobs[i].Meta(), At: vclock.Time(wf.Jobs[i].At)}
	}
	return out
}

// EngineSpec builds the executable mapreduce job for engine runs. The
// workload must have validated, so factory names and params are known
// good; the error covers meta-content workloads, which have no bytes
// to execute.
func (j *FileJob) EngineSpec(content string) (mapreduce.JobSpec, error) {
	if content == ContentMeta {
		return mapreduce.JobSpec{}, fmt.Errorf("workload: job %d reads a %s file; engine runs need real content", j.ID, ContentMeta)
	}
	numReduce := j.NumReduce
	if numReduce == 0 {
		numReduce = 1
	}
	spec := mapreduce.JobSpec{
		Name:      j.Meta().Name,
		File:      j.File,
		NumReduce: numReduce,
	}
	switch j.Factory {
	case FactoryWordCount:
		spec.Mapper = PatternCountMapper{Prefix: j.Param}
		spec.Reducer = SumReducer{}
		spec.Combiner = SumReducer{}
	case FactoryHeavyWordCount:
		// No combiner: shuffle and reduce see the multiplied output,
		// like the paper's heavy workload.
		spec.Mapper = PatternCountMapper{Prefix: j.Param, EmitFactor: j.EmitFactor}
		spec.Reducer = SumReducer{}
	case FactorySelection:
		max, err := strconv.Atoi(j.Param)
		if err != nil {
			return mapreduce.JobSpec{}, fmt.Errorf("workload: job %d: selection param %q: %w", j.ID, j.Param, err)
		}
		spec.Mapper = SelectionMapper{MaxQuantity: max} // map-only
	case FactoryAggregation:
		spec.Mapper = AggregationMapper{}
		spec.Reducer = SumReducer{}
		spec.Combiner = SumReducer{}
	case FactoryTopK:
		k, err := strconv.Atoi(j.Param)
		if err != nil || k < 1 {
			return mapreduce.JobSpec{}, fmt.Errorf("workload: job %d: topk param %q is not a positive integer", j.ID, j.Param)
		}
		spec.Mapper = TopKMapper{}
		spec.Reducer = TopKReducer{K: k}
	default:
		return mapreduce.JobSpec{}, fmt.Errorf("workload: job %d has unknown factory %q", j.ID, j.Factory)
	}
	return spec, nil
}

// ContentOf resolves a job input name to its content kind: a declared
// file's content, or ContentDerived when the name is some job's
// materialized output.
func (wf *File) ContentOf(name string) (string, bool) {
	for i := range wf.Files {
		if wf.Files[i].Name == name {
			return wf.Files[i].Content, true
		}
	}
	if _, ok := wf.derivedProducer(name); ok {
		return ContentDerived, true
	}
	return "", false
}

// EngineSpecs builds the executable specs for every job, keyed by id —
// the map driver.NewEngineExecutor takes.
func (wf *File) EngineSpecs() (map[scheduler.JobID]mapreduce.JobSpec, error) {
	out := make(map[scheduler.JobID]mapreduce.JobSpec, len(wf.Jobs))
	for i := range wf.Jobs {
		content, ok := wf.ContentOf(wf.Jobs[i].File)
		if !ok {
			return nil, fmt.Errorf("workload: job %d reads unknown file %q", wf.Jobs[i].ID, wf.Jobs[i].File)
		}
		spec, err := wf.Jobs[i].EngineSpec(content)
		if err != nil {
			return nil, err
		}
		out[wf.Jobs[i].ID] = spec
	}
	return out, nil
}

// AddTo registers the generated file with the store.
func (f *FileSpec) AddTo(store *dfs.Store) (*dfs.File, error) {
	switch f.Content {
	case ContentText:
		if f.Vocab > 0 {
			return AddTextFileVocab(store, f.Name, f.Blocks, f.BlockBytes, f.Seed, f.Vocab)
		}
		return AddTextFile(store, f.Name, f.Blocks, f.BlockBytes, f.Seed)
	case ContentLineitem:
		return AddLineitemFile(store, f.Name, f.Blocks, f.BlockBytes, f.Seed)
	case ContentMeta:
		return store.AddMetaFile(f.Name, f.Blocks, f.BlockBytes)
	default:
		return nil, fmt.Errorf("workload: file %q has unknown content %q", f.Name, f.Content)
	}
}

// Summary renders a one-line human description ("canonical: 12 jobs
// over corpus (32×16KiB text blocks) on 4×2 nodes").
func (wf *File) Summary() string {
	var b strings.Builder
	if len(wf.Files) == 1 {
		f := &wf.Files[0]
		fmt.Fprintf(&b, "%s: %d jobs over %s (%d×%s %s blocks) on %d×%d slots",
			wf.Header.Name, len(wf.Jobs), f.Name, f.Blocks, byteSize(f.BlockBytes), f.Content,
			wf.Header.Nodes, wf.Header.SlotsPerNode)
	} else {
		names := make([]string, len(wf.Files))
		for i := range wf.Files {
			names[i] = wf.Files[i].Name
		}
		fmt.Fprintf(&b, "%s: %d jobs over %d files (%s) on %d×%d slots",
			wf.Header.Name, len(wf.Jobs), len(wf.Files), strings.Join(names, ", "),
			wf.Header.Nodes, wf.Header.SlotsPerNode)
	}
	if wf.HasDAG() {
		b.WriteString(", DAG")
	}
	return b.String()
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
