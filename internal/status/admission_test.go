package status

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
)

// fakeAdmission is a scripted Admission backend.
type fakeAdmission struct {
	nextID scheduler.JobID
	jobs   []runtime.JobStatus
	reject string
}

func (f *fakeAdmission) SubmitJob(req JobRequest) (scheduler.JobID, error) {
	if f.reject != "" {
		return 0, fmt.Errorf("%s", f.reject)
	}
	f.nextID++
	name := req.Name
	if name == "" {
		name = req.Factory
	}
	f.jobs = append(f.jobs, runtime.JobStatus{ID: f.nextID, Name: name, State: runtime.JobQueued})
	return f.nextID, nil
}

func (f *fakeAdmission) JobStatus(id scheduler.JobID) (runtime.JobStatus, bool) {
	for _, j := range f.jobs {
		if j.ID == id {
			return j, true
		}
	}
	return runtime.JobStatus{}, false
}

func (f *fakeAdmission) Jobs() []runtime.JobStatus { return f.jobs }

func adminServer(t *testing.T, adm Admission) *httptest.Server {
	t.Helper()
	srv := NewServer("s3")
	if adm != nil {
		srv.SetAdmission(adm)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestJobsEndpointsWithoutAdmission(t *testing.T) {
	ts := adminServer(t, nil)
	for _, path := range []string{"/jobs", "/jobs/1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without admission = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestSubmitAndQueryJobs(t *testing.T) {
	adm := &fakeAdmission{}
	ts := adminServer(t, adm)

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"factory":"wordcount","param":"th"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID    int    `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID != 1 || sub.State != "queued" {
		t.Fatalf("POST /jobs = %d %+v, want 202 id=1 queued", resp.StatusCode, sub)
	}

	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []runtime.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].Name != "wordcount" {
		t.Fatalf("GET /jobs = %+v, want one wordcount job", list)
	}

	resp, err = http.Get(ts.URL + "/jobs/1")
	if err != nil {
		t.Fatal(err)
	}
	var one runtime.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if one.ID != 1 || one.State != runtime.JobQueued {
		t.Fatalf("GET /jobs/1 = %+v", one)
	}
}

func TestSubmitErrors(t *testing.T) {
	adm := &fakeAdmission{}
	ts := adminServer(t, adm)

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		reject string
		want   int
	}{
		{"bad JSON", http.MethodPost, "/jobs", "{not json", "", http.StatusBadRequest},
		{"backend rejects", http.MethodPost, "/jobs", `{"factory":"bogus"}`, "unknown job factory", http.StatusBadRequest},
		{"unknown id", http.MethodGet, "/jobs/99", "", "", http.StatusNotFound},
		{"garbage id", http.MethodGet, "/jobs/banana", "", "", http.StatusBadRequest},
		{"delete list", http.MethodDelete, "/jobs", "", "", http.StatusMethodNotAllowed},
		{"post by id", http.MethodPost, "/jobs/1", "{}", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		adm.reject = tc.reject
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}
