package status

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

func TestStatusJSONAndHTML(t *testing.T) {
	s := NewServer("s3")
	s.Update(func(st *State) {
		st.Rounds = 7
		st.PendingJobs = 2
		st.DoneJobs = 1
		st.VirtualTime = 42.5
		st.LastRound = &RoundInfo{Segment: 3, Blocks: 4, BatchSize: 2, Jobs: []int{1, 2}}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/status.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 7 || st.Scheme != "s3" || st.LastRound == nil || st.LastRound.Segment != 3 {
		t.Errorf("state = %+v", st)
	}

	resp2, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	for _, want := range []string{"s3sched", "42.5", "segment 3", "status.json"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("dashboard missing %q:\n%s", want, body)
		}
	}

	resp3, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp3.StatusCode)
	}
}

func TestHooksPublishProgress(t *testing.T) {
	store := dfs.MustStore(2, 1)
	f, err := store.AddMetaFile("input", 4, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched := core.New(plan, nil)
	srv := NewServer(sched.Name())

	exec := driver.ExecutorFunc(func(scheduler.Round) (vclock.Duration, error) { return 10, nil })
	res, err := driver.RunWithHooks(sched, exec, []driver.Arrival{
		{Job: scheduler.JobMeta{ID: 1, File: "input"}, At: 0},
		{Job: scheduler.JobMeta{ID: 2, File: "input"}, At: 5},
	}, srv.Hooks(sched))
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Snapshot()
	if st.Rounds != res.Rounds {
		t.Errorf("published rounds = %d, driver says %d", st.Rounds, res.Rounds)
	}
	if st.DoneJobs != 2 || st.PendingJobs != 0 {
		t.Errorf("state = %+v", st)
	}
	if st.LastRound == nil || len(st.LastRound.Completed) == 0 {
		t.Errorf("last round = %+v, want a completing round", st.LastRound)
	}
}

func TestServeAndClose(t *testing.T) {
	s := NewServer("x")
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/status.json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Error("double close should be a no-op")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := NewServer("s3")
	reg := metrics.NewRegistry()
	rm := metrics.NewRunMetrics(reg)
	rm.JobResponse.Observe(12.5)
	rm.RoundDuration.Observe(3.25)
	rm.RoundsTotal.Inc()
	s.SetRegistry(reg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"s3_job_response_seconds_bucket",
		"s3_job_response_seconds_sum 12.5",
		"s3_round_seconds_bucket",
		"s3_rounds_total 1",
		"# TYPE s3_job_response_seconds histogram",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestMetricsEndpointWithoutRegistry(t *testing.T) {
	ts := httptest.NewServer(NewServer("s3").Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without registry status = %d, want 404", resp.StatusCode)
	}
}

func TestPprofEndpoint(t *testing.T) {
	ts := httptest.NewServer(NewServer("s3").Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index missing profile listing:\n%.200s", body)
	}
}

func TestSetCacheRendersDashboardRow(t *testing.T) {
	s := NewServer("s3")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Before SetCache: no cache row in HTML, null in JSON.
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "block cache") {
		t.Fatal("cache row rendered before SetCache")
	}

	s.SetCache(metrics.CacheStats{Hits: 30, Misses: 10, Evictions: 2})
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"block cache", "30 hits / 10 misses", "75.0% hit ratio", "2 evictions"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("dashboard missing %q\n%s", want, body)
		}
	}

	resp, err = http.Get(ts.URL + "/status.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache == nil || st.Cache.Hits != 30 || st.Cache.HitRatio != 0.75 {
		t.Errorf("json cache = %+v", st.Cache)
	}
}
