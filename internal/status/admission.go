package status

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
)

// JobRequest is the wire form of a live job submission (POST /jobs).
type JobRequest struct {
	// Name labels the job in traces and status output. Defaults to the
	// factory name when empty.
	Name string `json:"name"`
	// Factory selects the job's map/reduce program by registry name
	// (e.g. "wordcount"). The admission backend validates it.
	Factory string `json:"factory"`
	// Param configures the factory (e.g. the selection predicate).
	Param string `json:"param,omitempty"`
	// NumReduce is the job's reduce-partition count; backends apply
	// their default when zero.
	NumReduce int `json:"numReduce,omitempty"`
	// Weight and Priority feed the scheduler's JobMeta verbatim.
	Weight   float64 `json:"weight,omitempty"`
	Priority int     `json:"priority,omitempty"`
	// DependsOn names already-submitted jobs this one must wait for.
	// The job's input is the first dependency's materialized reduce
	// output; it is held in "waiting" state until every dependency
	// completes, then joins the live pass.
	DependsOn []scheduler.JobID `json:"dependsOn,omitempty"`
}

// Admission is the backend behind the live job-submission endpoints.
// Implementations validate the request, register the job's program
// with the execution layer, and enqueue it on a runtime arrival source
// — all while a pass may be in flight, so every method must be safe
// for concurrent use with the run loop.
type Admission interface {
	// SubmitJob accepts a job for scheduling and returns its id.
	SubmitJob(req JobRequest) (scheduler.JobID, error)
	// JobStatus reports one job's lifecycle state.
	JobStatus(id scheduler.JobID) (runtime.JobStatus, bool)
	// Jobs lists all live-submitted jobs in submission order.
	Jobs() []runtime.JobStatus
}

// SetAdmission enables the /jobs endpoints backed by adm. Call before
// Serve; nil disables the endpoints (requests get 404).
func (s *Server) SetAdmission(adm Admission) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.adm = adm
}

func (s *Server) admission() Admission {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.adm
}

// submitReply is the POST /jobs response body.
type submitReply struct {
	ID    int    `json:"id"`
	State string `json:"state"`
}

// handleJobs serves POST /jobs (submit) and GET /jobs (list).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	adm := s.admission()
	if adm == nil {
		http.Error(w, "no job admission configured", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodPost:
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		id, err := adm.SubmitJob(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(submitReply{ID: int(id), State: string(runtime.JobQueued)})
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		jobs := adm.Jobs()
		if jobs == nil {
			jobs = []runtime.JobStatus{}
		}
		_ = enc.Encode(jobs)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleJobByID serves GET /jobs/<id> and GET /jobs/<id>/output.
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	adm := s.admission()
	if adm == nil {
		http.Error(w, "no job admission configured", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/jobs/")
	rawID, sub, _ := strings.Cut(raw, "/")
	id, err := strconv.Atoi(rawID)
	if err != nil {
		http.Error(w, "bad job id "+strconv.Quote(rawID), http.StatusBadRequest)
		return
	}
	st, ok := adm.JobStatus(scheduler.JobID(id))
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	switch sub {
	case "":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	case "output":
		src := s.results.get()
		if src == nil {
			http.Error(w, "no result source configured", http.StatusNotFound)
			return
		}
		out, ok := src.JobOutput(scheduler.JobID(id))
		if !ok {
			http.Error(w, "job has no output (not complete?)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	default:
		http.NotFound(w, r)
	}
}
