package status

import (
	"sync"

	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
)

// RecoveryInfo summarizes the most recent journal recovery — published
// once at boot by a master that found a non-empty write-ahead journal,
// and absent otherwise.
type RecoveryInfo struct {
	// Recoveries counts recoveries over the journal's lifetime,
	// including this one.
	Recoveries int `json:"recoveries"`
	// JobsResumed were restored mid-pass from the latest scheduler
	// snapshot; JobsRestarted were admitted-but-unsnapshotted jobs
	// resubmitted from scratch under their original ids.
	JobsResumed   int `json:"jobsResumed"`
	JobsRestarted int `json:"jobsRestarted"`
	// JournalPath is the replayed journal file.
	JournalPath string `json:"journalPath,omitempty"`
}

// SetRecovery publishes a completed journal recovery (dashboard row,
// /status.json, and GET /cluster).
func (s *Server) SetRecovery(info RecoveryInfo) {
	s.Update(func(st *State) { st.Recovery = &info })
}

// ResultSource serves completed jobs' merged outputs. The remote
// master implements it; the endpoint polls it live so restored results
// are visible immediately after recovery.
type ResultSource interface {
	JobOutput(id scheduler.JobID) ([]mapreduce.KV, bool)
}

// resultState holds the server's result source behind its own lock.
type resultState struct {
	mu  sync.RWMutex
	src ResultSource
}

func (r *resultState) get() ResultSource {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.src
}

// SetResults exposes completed jobs' outputs at GET /jobs/<id>/output.
// Call before Serve; nil removes the endpoint.
func (s *Server) SetResults(src ResultSource) {
	s.results.mu.Lock()
	defer s.results.mu.Unlock()
	s.results.src = src
}
