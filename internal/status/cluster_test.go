package status

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"s3sched/internal/comms"
)

type fakeCluster struct {
	workers []comms.WorkerInfo
}

func (f *fakeCluster) ClusterSnapshot() []comms.WorkerInfo { return f.workers }

func TestClusterEndpoint(t *testing.T) {
	srv := NewServer("s3")
	h := srv.Handler()

	// Without a source the endpoint 404s.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/cluster", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unconfigured /cluster = %d, want 404", rec.Code)
	}

	src := &fakeCluster{workers: []comms.WorkerInfo{
		{ID: "w0", TaskAddr: "10.0.0.1:7001", State: comms.Joined.String(), HeartbeatMisses: 1},
		{ID: "w1", TaskAddr: "10.0.0.2:7001", State: comms.Suspect.String()},
		{ID: "w2", TaskAddr: "10.0.0.3:7001", State: comms.Dead.String(), Reconnects: 2},
	}}
	srv.SetCluster(src)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/cluster", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/cluster = %d, want 200", rec.Code)
	}
	var view struct {
		Live    int                `json:"live"`
		Workers []comms.WorkerInfo `json:"workers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	// Joined + suspect count as live; dead does not.
	if view.Live != 2 {
		t.Errorf("live = %d, want 2", view.Live)
	}
	if len(view.Workers) != 3 {
		t.Fatalf("workers = %d, want 3", len(view.Workers))
	}
	if view.Workers[0].ID != "w0" || view.Workers[0].HeartbeatMisses != 1 {
		t.Errorf("worker[0] = %+v", view.Workers[0])
	}
	if view.Workers[2].State != "dead" || view.Workers[2].Reconnects != 2 {
		t.Errorf("worker[2] = %+v", view.Workers[2])
	}

	// Mutations are rejected.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/cluster", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /cluster = %d, want 405", rec.Code)
	}
}
