// Package status exposes a run's live state over HTTP — the
// observability layer a production scheduler deployment needs. The
// driver's hooks publish state snapshots into a Server; the server
// renders them as JSON (/status.json) and a minimal HTML dashboard (/).
//
// Publication is push-based: the single-threaded driver loop owns the
// scheduler, so HTTP handlers never touch scheduler internals — they
// read an atomically swapped snapshot.
package status

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"s3sched/internal/metrics"
	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// RoundInfo describes the most recent round.
type RoundInfo struct {
	Segment   int   `json:"segment"`
	Blocks    int   `json:"blocks"`
	BatchSize int   `json:"batchSize"`
	Jobs      []int `json:"jobs"`
	Completed []int `json:"completed"`
}

// CacheInfo summarizes block-cache effectiveness for the dashboard.
type CacheInfo struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRatio  float64 `json:"hitRatio"`
}

// State is the published run snapshot.
type State struct {
	Scheme       string             `json:"scheme"`
	VirtualTime  float64            `json:"virtualTime"`
	Rounds       int                `json:"rounds"`
	PendingJobs  int                `json:"pendingJobs"`
	DoneJobs     int                `json:"doneJobs"`
	LastRound    *RoundInfo         `json:"lastRound,omitempty"`
	RunComplete  bool               `json:"runComplete"`
	FailureNote  string             `json:"failureNote,omitempty"`
	TETSeconds   float64            `json:"tetSeconds,omitempty"`
	ARTSeconds   float64            `json:"artSeconds,omitempty"`
	Cache        *CacheInfo         `json:"cache,omitempty"`
	Recovery     *RecoveryInfo      `json:"recovery,omitempty"`
	ExtraNumbers map[string]float64 `json:"extra,omitempty"`
}

// SetCache publishes block-cache counters (shown as a dashboard row).
func (s *Server) SetCache(cs metrics.CacheStats) {
	s.Update(func(st *State) {
		st.Cache = &CacheInfo{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			HitRatio:  cs.HitRatio(),
		}
	})
}

// Server publishes State over HTTP.
type Server struct {
	mu    sync.RWMutex
	state State
	ln    net.Listener
	// reg, when set, is rendered at /metrics in Prometheus text
	// exposition format.
	reg *metrics.Registry
	// adm, when set, backs the live job-submission endpoints under
	// /jobs (see admission.go).
	adm Admission
	// cluster, when set, backs GET /cluster (see cluster.go).
	cluster clusterState
	// results, when set, backs GET /jobs/<id>/output (see recovery.go).
	results resultState
}

// NewServer returns an empty status server.
func NewServer(scheme string) *Server {
	return &Server{state: State{Scheme: scheme}}
}

// SetRegistry exposes reg's metrics at /metrics (Prometheus text
// format). Call before Serve; nil removes the endpoint.
func (s *Server) SetRegistry(reg *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
}

// Update applies f to the published state under the server's lock.
func (s *Server) Update(f func(*State)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.state)
}

// Snapshot returns a copy of the current state.
func (s *Server) Snapshot() State {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.state
	if st.LastRound != nil {
		lr := *st.LastRound
		st.LastRound = &lr
	}
	if st.Recovery != nil {
		rc := *st.Recovery
		st.Recovery = &rc
	}
	return st
}

// Hooks returns run-loop hooks that publish round progress into the
// server. The type is shared between internal/runtime and the
// internal/driver compatibility wrappers, so the result plugs into
// either entry point.
func (s *Server) Hooks(sched scheduler.Scheduler) runtime.Hooks {
	return runtime.Hooks{
		OnRoundDone: func(r scheduler.Round, now vclock.Time, completed []scheduler.JobID) {
			s.Update(func(st *State) {
				st.Rounds++
				st.VirtualTime = float64(now)
				st.PendingJobs = sched.PendingJobs()
				st.DoneJobs += len(completed)
				info := &RoundInfo{
					Segment:   r.Segment,
					Blocks:    len(r.Blocks),
					BatchSize: len(r.Jobs),
				}
				for _, id := range r.JobIDs() {
					info.Jobs = append(info.Jobs, int(id))
				}
				for _, id := range completed {
					info.Completed = append(info.Completed, int(id))
				}
				st.LastRound = info
			})
		},
	}
}

var dashboard = template.Must(template.New("dash").Funcs(template.FuncMap{
	"mulf": func(a, b float64) float64 { return a * b },
}).Parse(`<!DOCTYPE html>
<html><head><title>s3sched status</title></head><body>
<h1>s3sched — {{.Scheme}}</h1>
<table border="1" cellpadding="4">
<tr><td>virtual time</td><td>{{printf "%.3f" .VirtualTime}}s</td></tr>
<tr><td>rounds</td><td>{{.Rounds}}</td></tr>
<tr><td>pending jobs</td><td>{{.PendingJobs}}</td></tr>
<tr><td>completed jobs</td><td>{{.DoneJobs}}</td></tr>
<tr><td>run complete</td><td>{{.RunComplete}}</td></tr>
{{if .LastRound}}<tr><td>last round</td><td>segment {{.LastRound.Segment}},
batch {{.LastRound.BatchSize}}, blocks {{.LastRound.Blocks}}</td></tr>{{end}}
{{if .TETSeconds}}<tr><td>TET</td><td>{{printf "%.3f" .TETSeconds}}s</td></tr>{{end}}
{{if .ARTSeconds}}<tr><td>ART</td><td>{{printf "%.3f" .ARTSeconds}}s</td></tr>{{end}}
{{if .Cache}}<tr><td>block cache</td><td>{{.Cache.Hits}} hits / {{.Cache.Misses}} misses
({{printf "%.1f" (mulf .Cache.HitRatio 100)}}% hit ratio), {{.Cache.Evictions}} evictions</td></tr>{{end}}
{{if .Recovery}}<tr><td>journal recovery</td><td>recovery #{{.Recovery.Recoveries}}:
{{.Recovery.JobsResumed}} job(s) resumed, {{.Recovery.JobsRestarted}} restarted
{{if .Recovery.JournalPath}}from {{.Recovery.JournalPath}}{{end}}</td></tr>{{end}}
{{if .FailureNote}}<tr><td>failure</td><td>{{.FailureNote}}</td></tr>{{end}}
</table>
<p><a href="/status.json">status.json</a></p>
</body></html>`))

// Handler returns the HTTP handler serving / and /status.json, plus
// /metrics when a registry is set, the live job-submission API under
// /jobs when an admission backend is set, and the Go profiler under
// /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.mu.RLock()
		reg := s.reg
		s.mu.RUnlock()
		if reg == nil {
			http.Error(w, "no metrics registry configured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	// net/http/pprof registers on http.DefaultServeMux; wire its
	// handlers into this mux explicitly so the server stays
	// self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/cluster", s.handleCluster)
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJobByID)
	mux.HandleFunc("/status.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := dashboard.Execute(w, s.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// Serve starts the HTTP server on addr ("127.0.0.1:0" for ephemeral)
// and returns the bound address. It serves until Close.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go func() {
		// http.Serve returns when the listener closes.
		_ = http.Serve(ln, s.Handler())
	}()
	return ln.Addr().String(), nil
}

// Close stops the HTTP listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	err := s.ln.Close()
	s.ln = nil
	if err != nil {
		return fmt.Errorf("status: closing listener: %w", err)
	}
	return nil
}
