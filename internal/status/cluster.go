package status

import (
	"encoding/json"
	"net/http"
	"sync"

	"s3sched/internal/comms"
)

// ClusterSource provides a point-in-time view of cluster membership.
// The remote master implements it; the status server polls it on each
// GET /cluster, so the endpoint always reflects the live table rather
// than a hook-time snapshot.
type ClusterSource interface {
	ClusterSnapshot() []comms.WorkerInfo
}

// clusterView is the GET /cluster response body.
type clusterView struct {
	// Live counts joined + suspect workers — the set receiving tasks.
	Live int `json:"live"`
	// Workers is the full membership table, dead members included (a
	// dead entry is a restart waiting to happen, and its task counters
	// survive the outage).
	Workers []comms.WorkerInfo `json:"workers"`
	// Recovery repeats the published journal-recovery summary, so a
	// cluster observer sees restart history next to membership.
	Recovery *RecoveryInfo `json:"recovery,omitempty"`
}

// clusterState holds the server's membership source behind its own
// lock so SetCluster is safe against concurrent /cluster requests.
type clusterState struct {
	mu  sync.RWMutex
	src ClusterSource
}

func (c *clusterState) get() ClusterSource {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.src
}

// SetCluster exposes src's membership table at GET /cluster. Call
// before Serve; nil removes the endpoint.
func (s *Server) SetCluster(src ClusterSource) {
	s.cluster.mu.Lock()
	defer s.cluster.mu.Unlock()
	s.cluster.src = src
}

// handleCluster serves GET /cluster.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	src := s.cluster.get()
	if src == nil {
		http.Error(w, "no cluster membership configured", http.StatusNotFound)
		return
	}
	workers := src.ClusterSnapshot()
	view := clusterView{Workers: workers, Recovery: s.Snapshot().Recovery}
	for _, wi := range workers {
		if wi.State != comms.Dead.String() {
			view.Live++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(view); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
