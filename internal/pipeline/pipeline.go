// Package pipeline turns independent jobs into DAG stages: a job may
// depend on other jobs, and when a producer finishes, its reduce
// output is materialized into the store as a new file whose consumers
// are released into the live circular pass — where they share segment
// scans with whatever else is running, exactly like jobs over declared
// inputs (the ROADMAP's S^3 twist on Fotakis et al.'s multi-round
// precedence model).
//
// Two coordinators cover the two execution modes:
//
//   - Coordinator is the batch-mode runtime.ArrivalSource +
//     runtime.JobTracker for trace-driven runs (s3compare cells). It is
//     engine-owned and single-goroutine, like TraceSource.
//   - LiveDAG wraps a runtime.LiveSource for daemon mode (s3cluster):
//     held jobs are visible to the admission API as "waiting" and are
//     released or cascade-failed as their dependencies settle.
//
// Materialization is delegated: the coordinator decides *when* a
// stage's output becomes a file, the installed Materializer decides
// *how* (sim cells register priced metadata, engine cells write real
// blocks, the cluster master replicates to workers) and reports how
// long it took, which delays the dependents' release.
package pipeline

import (
	"fmt"
	"sort"

	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// Stage is one DAG node: a job, its arrival lower bound, and its
// dependencies. A stage with no dependencies is a root and arrives
// like a plain trace entry.
type Stage struct {
	Job scheduler.JobMeta
	// At is the stage's submission time — a lower bound: a dependent
	// stage is released at max(At, last dependency's materialization).
	At        vclock.Time
	DependsOn []scheduler.JobID
}

// Materializer ingests a finished stage's output into the run's store
// and registers its segment plan with the scheduler, returning the
// virtual duration the write took (which defers the dependents'
// release). It is called at most once per stage, and only for stages
// with dependents. A Materializer that knows the stage's output is
// never read (pure ordering edges) returns (0, nil) without ingesting.
type Materializer func(id scheduler.JobID, at vclock.Time) (vclock.Duration, error)

// waiting is a stage whose dependencies have not all settled.
type waiting struct {
	stage     Stage
	remaining int
}

// Coordinator schedules a DAG of stages over the engine's arrival
// machinery. Roots are delivered by At like a trace; dependents are
// held until every dependency materializes, then released into the
// same run. The engine owns it (single goroutine), so there is no
// locking — daemon mode uses LiveDAG instead.
type Coordinator struct {
	mat Materializer

	// roots is the At-sorted arrival trace of dependency-free stages.
	roots []runtime.Arrival
	next  int
	// released holds dependency-satisfied stages not yet delivered,
	// sorted by (at, id).
	released []runtime.Arrival
	// waiting tracks held stages by id.
	waiting map[scheduler.JobID]*waiting
	// consumers maps a producer to the held stages depending on it.
	consumers map[scheduler.JobID][]scheduler.JobID
	done      map[scheduler.JobID]bool
	failed    []scheduler.JobID
	err       error
}

var (
	_ runtime.ArrivalSource = (*Coordinator)(nil)
	_ runtime.JobTracker    = (*Coordinator)(nil)
)

// NewCoordinator builds a coordinator over the DAG. Stages must have
// unique positive ids and acyclic dependencies naming other stages
// (workload.File.Validate enforces all of this for workload-derived
// DAGs; the checks here catch hand-built ones). mat may be nil only
// when no stage has dependents.
func NewCoordinator(stages []Stage, mat Materializer) (*Coordinator, error) {
	c := &Coordinator{
		mat:       mat,
		waiting:   make(map[scheduler.JobID]*waiting),
		consumers: make(map[scheduler.JobID][]scheduler.JobID),
		done:      make(map[scheduler.JobID]bool),
	}
	ids := make(map[scheduler.JobID]bool, len(stages))
	for _, st := range stages {
		if st.Job.ID <= 0 {
			return nil, fmt.Errorf("pipeline: stage %q has non-positive id %d", st.Job.Name, st.Job.ID)
		}
		if ids[st.Job.ID] {
			return nil, fmt.Errorf("pipeline: duplicate stage id %d", st.Job.ID)
		}
		ids[st.Job.ID] = true
	}
	hasDeps := false
	for _, st := range stages {
		if len(st.DependsOn) == 0 {
			c.roots = append(c.roots, runtime.Arrival{Job: st.Job, At: st.At})
			continue
		}
		hasDeps = true
		w := &waiting{stage: st, remaining: len(st.DependsOn)}
		for _, dep := range st.DependsOn {
			if !ids[dep] {
				return nil, fmt.Errorf("pipeline: stage %d depends on unknown stage %d", st.Job.ID, dep)
			}
			c.consumers[dep] = append(c.consumers[dep], st.Job.ID)
		}
		c.waiting[st.Job.ID] = w
	}
	if hasDeps && mat == nil {
		return nil, fmt.Errorf("pipeline: DAG has dependent stages but no materializer")
	}
	sortArrivals(c.roots)
	return c, nil
}

func sortArrivals(evs []runtime.Arrival) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Job.ID < evs[j].Job.ID
	})
}

// Pop implements runtime.ArrivalSource: every root and released stage
// due at or before now, merged in (at, id) order.
func (c *Coordinator) Pop(now vclock.Time) []runtime.Arrival {
	var out []runtime.Arrival
	for c.next < len(c.roots) && c.roots[c.next].At <= now {
		out = append(out, c.roots[c.next])
		c.next++
	}
	due := 0
	for due < len(c.released) && c.released[due].At <= now {
		due++
	}
	if due > 0 {
		out = append(out, c.released[:due]...)
		c.released = c.released[due:]
		sortArrivals(out)
	}
	return out
}

// Peek implements runtime.ArrivalSource.
func (c *Coordinator) Peek() (vclock.Time, bool) {
	var at vclock.Time
	have := false
	if c.next < len(c.roots) {
		at = c.roots[c.next].At
		have = true
	}
	if len(c.released) > 0 && (!have || c.released[0].At < at) {
		at = c.released[0].At
		have = true
	}
	return at, have
}

// Pending implements runtime.ArrivalSource. Held stages count: they
// are accepted work the engine has not yet seen.
func (c *Coordinator) Pending() int {
	return (len(c.roots) - c.next) + len(c.released) + len(c.waiting)
}

// Wait implements runtime.ArrivalSource. A coordinator never blocks:
// releases happen synchronously inside the engine's own JobFinished
// callback, so when nothing is queued *now*, nothing ever will be —
// a held stage whose producers all settled is either released or
// failed by the time the engine goes idle.
func (c *Coordinator) Wait() bool {
	return c.next < len(c.roots) || len(c.released) > 0
}

// JobAdmitted implements runtime.JobTracker.
func (c *Coordinator) JobAdmitted(scheduler.JobID, vclock.Time) {}

// JobFinished implements runtime.JobTracker: a finished producer
// materializes its output (once) and decrements its consumers'
// dependency counts, releasing the satisfied ones at
// max(stage.At, finish + materialization delay). A failed producer —
// or a failed materialization — cascade-fails every transitive
// dependent: a stage whose input can never exist must not wait
// forever.
func (c *Coordinator) JobFinished(id scheduler.JobID, at vclock.Time, failed bool) {
	if c.done[id] {
		return
	}
	c.done[id] = true
	if failed {
		c.cascadeFail(id)
		return
	}
	deps := c.consumers[id]
	if len(deps) == 0 {
		return
	}
	delay, err := c.mat(id, at)
	if err != nil {
		if c.err == nil {
			c.err = fmt.Errorf("pipeline: materializing stage %d output: %w", id, err)
		}
		c.cascadeFail(id)
		return
	}
	ready := at.Add(delay)
	for _, cid := range deps {
		w, ok := c.waiting[cid]
		if !ok {
			continue // already cascade-failed
		}
		w.remaining--
		if w.remaining > 0 {
			continue
		}
		delete(c.waiting, cid)
		relAt := w.stage.At
		if ready > relAt {
			relAt = ready
		}
		c.released = append(c.released, runtime.Arrival{Job: w.stage.Job, At: relAt})
	}
	sortArrivals(c.released)
}

// cascadeFail removes every transitive dependent of id from the
// waiting set and records it as failed.
func (c *Coordinator) cascadeFail(id scheduler.JobID) {
	for _, cid := range c.consumers[id] {
		if _, ok := c.waiting[cid]; !ok {
			continue
		}
		delete(c.waiting, cid)
		c.failed = append(c.failed, cid)
		c.cascadeFail(cid)
	}
}

// Err reports the first materialization failure, if any.
func (c *Coordinator) Err() error { return c.err }

// Failed returns the stages cascade-failed because a dependency failed
// or could not materialize, in ascending id order. They were never
// admitted to the scheduler, so run metrics do not include them.
func (c *Coordinator) Failed() []scheduler.JobID {
	out := make([]scheduler.JobID, len(c.failed))
	copy(out, c.failed)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Unfinished returns stages still held after a run — non-empty only
// when the run ended abnormally (a producer never completed). A clean
// run always drains the waiting set.
func (c *Coordinator) Unfinished() []scheduler.JobID {
	out := make([]scheduler.JobID, 0, len(c.waiting))
	for id := range c.waiting {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
