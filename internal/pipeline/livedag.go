package pipeline

import (
	"fmt"
	"sync"

	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// LiveDAG is the daemon-mode DAG coordinator: a thread-safe layer over
// runtime.LiveSource that holds dependent jobs in "waiting" state and
// releases (or cascade-fails) them as their dependencies settle. It is
// what an s3cluster daemon hands the engine as its arrival source, so
// chained POST /jobs submissions pipeline through the live circular
// pass.
//
// Unlike the batch Coordinator, the DAG here is not known up front:
// stages arrive one POST at a time, each depending only on
// already-submitted jobs (the admission layer validates that), so the
// dependency graph is acyclic by construction.
type LiveDAG struct {
	src *runtime.LiveSource
	mat Materializer

	mu sync.Mutex
	// remaining counts a held stage's unsettled dependencies.
	remaining map[scheduler.JobID]int
	// consumers maps a producer to held stages waiting on it.
	consumers map[scheduler.JobID][]scheduler.JobID
	done      map[scheduler.JobID]bool
	failed    map[scheduler.JobID]bool
	// materialized marks producers whose output file exists. A producer
	// that finishes with no waiting consumers is not materialized eagerly
	// — if a consumer arrives later, the producer lands on needMat and
	// Pop (engine goroutine, scheduler idle) materializes it before the
	// consumer's arrival reaches the scheduler.
	materialized map[scheduler.JobID]bool
	needMat      []scheduler.JobID
}

var (
	_ runtime.ArrivalSource = (*LiveDAG)(nil)
	_ runtime.JobTracker    = (*LiveDAG)(nil)
)

// NewLiveDAG wraps src. mat materializes a finished producer's output
// before its dependents are released; it runs on the engine goroutine.
func NewLiveDAG(src *runtime.LiveSource, mat Materializer) *LiveDAG {
	return &LiveDAG{
		src:          src,
		mat:          mat,
		remaining:    make(map[scheduler.JobID]int),
		consumers:    make(map[scheduler.JobID][]scheduler.JobID),
		done:         make(map[scheduler.JobID]bool),
		failed:       make(map[scheduler.JobID]bool),
		materialized: make(map[scheduler.JobID]bool),
	}
}

// Source exposes the wrapped admission queue (status API, Close).
func (d *LiveDAG) Source() *runtime.LiveSource { return d.src }

// SubmitStage accepts a job with dependencies. Dependencies must name
// already-accepted jobs. A stage whose dependencies are all already
// done is queued immediately; one with a failed dependency is refused
// (its input will never exist); otherwise it is held and the status
// API reports it "waiting". pre behaves as in LiveSource.SubmitWith.
func (d *LiveDAG) SubmitStage(meta scheduler.JobMeta, deps []scheduler.JobID, pre func(scheduler.JobID) error) (scheduler.JobID, error) {
	if len(deps) == 0 {
		return d.src.SubmitWith(meta, pre)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	pending := 0
	for _, dep := range deps {
		if _, ok := d.src.Status(dep); !ok {
			return 0, fmt.Errorf("pipeline: dependency %d was never submitted", dep)
		}
		if d.failed[dep] {
			return 0, fmt.Errorf("pipeline: dependency %d failed; its output will never exist", dep)
		}
		if !d.done[dep] {
			pending++
		}
	}
	if pending == 0 {
		// All dependencies are done, but a producer that finished before
		// any consumer existed never materialized its output. Queue the
		// stage immediately (Release wakes a parked engine) and defer the
		// materialization to Pop, which the engine runs — with the
		// scheduler idle — before this arrival can reach Submit.
		missing := d.unmaterializedLocked(deps)
		if len(missing) == 0 {
			id, err := d.src.SubmitWith(meta, pre)
			if err == nil {
				d.src.SetDependsOn(id, deps)
			}
			return id, err
		}
		id, err := d.src.SubmitHeldWith(meta, deps, pre)
		if err != nil {
			return 0, err
		}
		d.needMat = append(d.needMat, missing...)
		if err := d.src.Release(id); err != nil {
			return 0, err
		}
		return id, nil
	}
	id, err := d.src.SubmitHeldWith(meta, deps, pre)
	if err != nil {
		return 0, err
	}
	d.remaining[id] = pending
	for _, dep := range deps {
		if !d.done[dep] {
			d.consumers[dep] = append(d.consumers[dep], id)
		}
	}
	return id, nil
}

// AdoptDone seeds a journal-recovered terminal stage so later
// dependency checks (and releases) see it settled.
func (d *LiveDAG) AdoptDone(id scheduler.JobID, failed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if failed {
		d.failed[id] = true
	} else {
		d.done[id] = true
	}
}

// AdoptMaterialized marks a recovered producer's output as already on
// disk (the recovery path replays stage-materialized journal records
// and re-registers the derived file itself), so later consumers do not
// re-materialize it.
func (d *LiveDAG) AdoptMaterialized(id scheduler.JobID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.materialized[id] = true
}

// unmaterializedLocked returns the done dependencies whose output has
// not been materialized yet. Call with d.mu held.
func (d *LiveDAG) unmaterializedLocked(deps []scheduler.JobID) []scheduler.JobID {
	var missing []scheduler.JobID
	for _, dep := range deps {
		if d.done[dep] && !d.materialized[dep] {
			missing = append(missing, dep)
		}
	}
	return missing
}

// AdoptHeld re-installs a journal-recovered waiting stage: its
// dependency counts are recomputed against the recovered done set, so
// a stage whose producers all settled between the admission record and
// the crash is released immediately, and one with a failed producer is
// failed. at stamps the failure time in that case.
func (d *LiveDAG) AdoptHeld(meta scheduler.JobMeta, deps []scheduler.JobID, at vclock.Time) error {
	if err := d.src.AdoptHeld(meta, deps); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	pending := 0
	depFailed := false
	for _, dep := range deps {
		if d.failed[dep] {
			depFailed = true
		} else if !d.done[dep] {
			pending++
		}
	}
	if depFailed {
		return d.src.FailHeld(meta.ID, at)
	}
	if pending == 0 {
		d.needMat = append(d.needMat, d.unmaterializedLocked(deps)...)
		return d.src.Release(meta.ID)
	}
	d.remaining[meta.ID] = pending
	for _, dep := range deps {
		if !d.done[dep] {
			d.consumers[dep] = append(d.consumers[dep], meta.ID)
		}
	}
	return nil
}

// Pop implements runtime.ArrivalSource. Before delegating it drains
// deferred materializations: it runs on the engine goroutine with the
// scheduler idle (no round in flight), and before any queued arrival is
// submitted, so a late consumer's derived input file is registered by
// the time its Submit runs. A materialization failure here leaves the
// file unregistered and the consumer's Submit fails with a wrong-file
// error — an infrastructure fault that aborts the run, like a journal
// write failure would.
func (d *LiveDAG) Pop(now vclock.Time) []runtime.Arrival {
	d.mu.Lock()
	for len(d.needMat) > 0 {
		pid := d.needMat[0]
		d.needMat = d.needMat[1:]
		if d.materialized[pid] {
			continue
		}
		if _, err := d.mat(pid, now); err == nil {
			d.materialized[pid] = true
		}
	}
	d.mu.Unlock()
	return d.src.Pop(now)
}

// Peek implements runtime.ArrivalSource.
func (d *LiveDAG) Peek() (vclock.Time, bool) { return d.src.Peek() }

// Pending implements runtime.ArrivalSource.
func (d *LiveDAG) Pending() int { return d.src.Pending() }

// Wait implements runtime.ArrivalSource.
func (d *LiveDAG) Wait() bool { return d.src.Wait() }

// JobAdmitted implements runtime.JobTracker.
func (d *LiveDAG) JobAdmitted(id scheduler.JobID, at vclock.Time) { d.src.JobAdmitted(id, at) }

// JobFinished implements runtime.JobTracker: record the terminal state
// on the status API, then settle dependents — materialize the output
// if anyone waits on it, release satisfied stages, cascade-fail the
// dependents of a failed producer. Runs on the engine goroutine,
// synchronously inside round settlement, so releases are visible
// before the engine looks for its next arrival.
func (d *LiveDAG) JobFinished(id scheduler.JobID, at vclock.Time, failed bool) {
	d.src.JobFinished(id, at, failed)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.done[id] || d.failed[id] {
		return
	}
	if failed {
		d.failed[id] = true
		d.cascadeFailLocked(id, at)
		return
	}
	d.done[id] = true
	deps := d.consumers[id]
	if len(deps) == 0 {
		return
	}
	if _, err := d.mat(id, at); err != nil {
		// The producer succeeded but its output cannot become a file;
		// everything downstream is undeliverable.
		d.cascadeFailLocked(id, at)
		return
	}
	d.materialized[id] = true
	for _, cid := range deps {
		rem, held := d.remaining[cid]
		if !held {
			continue
		}
		rem--
		if rem > 0 {
			d.remaining[cid] = rem
			continue
		}
		delete(d.remaining, cid)
		_ = d.src.Release(cid)
	}
	delete(d.consumers, id)
}

// cascadeFailLocked fails every transitive held dependent of id.
func (d *LiveDAG) cascadeFailLocked(id scheduler.JobID, at vclock.Time) {
	for _, cid := range d.consumers[id] {
		if _, held := d.remaining[cid]; !held {
			continue
		}
		delete(d.remaining, cid)
		d.failed[cid] = true
		_ = d.src.FailHeld(cid, at)
		d.cascadeFailLocked(cid, at)
	}
	delete(d.consumers, id)
}
