package pipeline

import (
	"sync"
	"testing"

	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

func newTestDAG(m *countingMat) (*LiveDAG, *runtime.LiveSource) {
	src := runtime.NewLiveSource()
	return NewLiveDAG(src, m.mat), src
}

func mustState(t *testing.T, src *runtime.LiveSource, id scheduler.JobID, want runtime.JobState) {
	t.Helper()
	st, ok := src.Status(id)
	if !ok {
		t.Fatalf("job %d has no status", id)
	}
	if st.State != want {
		t.Fatalf("job %d state = %q, want %q", id, st.State, want)
	}
}

func TestLiveDAGHoldAndRelease(t *testing.T) {
	m := newCountingMat(0)
	d, src := newTestDAG(m)

	pid, err := d.SubmitStage(scheduler.JobMeta{Name: "wc", File: "corpus"}, nil, nil)
	if err != nil {
		t.Fatalf("submit producer: %v", err)
	}
	mustState(t, src, pid, runtime.JobQueued)
	if got := d.Pop(0); len(got) != 1 || got[0].Job.ID != pid {
		t.Fatalf("Pop = %+v, want producer %d", got, pid)
	}

	cid, err := d.SubmitStage(scheduler.JobMeta{Name: "topk", File: "job-1.out"}, []scheduler.JobID{pid}, nil)
	if err != nil {
		t.Fatalf("submit consumer: %v", err)
	}
	mustState(t, src, cid, runtime.JobWaiting)
	if st, _ := src.Status(cid); len(st.DependsOn) != 1 || st.DependsOn[0] != pid {
		t.Fatalf("consumer DependsOn = %v, want [%d]", st.DependsOn, pid)
	}

	d.JobAdmitted(pid, 1)
	d.JobFinished(pid, vclock.Time(9), false)
	if m.calls[pid] != 1 {
		t.Fatalf("materializer called %d times, want 1", m.calls[pid])
	}
	if m.at[pid] != vclock.Time(9) {
		t.Fatalf("materialized at %v, want 9", m.at[pid])
	}
	mustState(t, src, pid, runtime.JobDone)
	mustState(t, src, cid, runtime.JobQueued)

	got := d.Pop(vclock.Time(10))
	if len(got) != 1 || got[0].Job.ID != cid {
		t.Fatalf("Pop after release = %+v, want consumer %d", got, cid)
	}
	if m.calls[pid] != 1 {
		t.Fatalf("Pop re-materialized: %d calls", m.calls[pid])
	}
}

// A producer that finishes before any consumer exists must not
// materialize eagerly; the materialization is deferred to the first Pop
// after a consumer shows up, which runs before that consumer's arrival
// can reach the scheduler.
func TestLiveDAGLateConsumerDefersMaterialization(t *testing.T) {
	m := newCountingMat(0)
	d, src := newTestDAG(m)

	pid, err := d.SubmitStage(scheduler.JobMeta{Name: "wc", File: "corpus"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Pop(0)
	d.JobFinished(pid, vclock.Time(5), false)
	if m.calls[pid] != 0 {
		t.Fatalf("producer with no consumers was materialized (%d calls)", m.calls[pid])
	}

	cid, err := d.SubmitStage(scheduler.JobMeta{Name: "topk", File: "job-1.out"}, []scheduler.JobID{pid}, nil)
	if err != nil {
		t.Fatalf("late consumer refused: %v", err)
	}
	mustState(t, src, cid, runtime.JobQueued)
	if m.calls[pid] != 0 {
		t.Fatal("materialized at submit time; must wait for Pop")
	}

	got := d.Pop(vclock.Time(8))
	if m.calls[pid] != 1 {
		t.Fatalf("Pop drained needMat %d times, want 1", m.calls[pid])
	}
	if len(got) != 1 || got[0].Job.ID != cid {
		t.Fatalf("Pop = %+v, want consumer %d", got, cid)
	}

	// A second late consumer of the same producer must not re-materialize.
	cid2, err := d.SubmitStage(scheduler.JobMeta{Name: "topk2", File: "job-1.out"}, []scheduler.JobID{pid}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Pop(vclock.Time(9))
	if m.calls[pid] != 1 {
		t.Fatalf("second consumer re-materialized (%d calls)", m.calls[pid])
	}
	mustState(t, src, cid2, runtime.JobQueued)
}

func TestLiveDAGRefusesBadDependencies(t *testing.T) {
	m := newCountingMat(0)
	d, _ := newTestDAG(m)

	if _, err := d.SubmitStage(scheduler.JobMeta{Name: "c"}, []scheduler.JobID{7}, nil); err == nil {
		t.Fatal("accepted a dependency that was never submitted")
	}

	pid, err := d.SubmitStage(scheduler.JobMeta{Name: "p", File: "corpus"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Pop(0)
	d.JobFinished(pid, 1, true)
	if _, err := d.SubmitStage(scheduler.JobMeta{Name: "c"}, []scheduler.JobID{pid}, nil); err == nil {
		t.Fatal("accepted a dependency on a failed job")
	}
	if m.calls[pid] != 0 {
		t.Fatal("failed producer was materialized")
	}
}

func TestLiveDAGCascadeFail(t *testing.T) {
	m := newCountingMat(0)
	d, src := newTestDAG(m)

	pid, _ := d.SubmitStage(scheduler.JobMeta{Name: "p", File: "corpus"}, nil, nil)
	c1, err := d.SubmitStage(scheduler.JobMeta{Name: "c1"}, []scheduler.JobID{pid}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := d.SubmitStage(scheduler.JobMeta{Name: "c2"}, []scheduler.JobID{c1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Pop(0)
	d.JobFinished(pid, vclock.Time(4), true)

	mustState(t, src, pid, runtime.JobFailed)
	mustState(t, src, c1, runtime.JobFailed)
	mustState(t, src, c2, runtime.JobFailed)
	if got := d.Pop(vclock.Time(99)); len(got) != 0 {
		t.Fatalf("cascade-failed stages still delivered: %+v", got)
	}
}

func TestLiveDAGMaterializeErrorCascades(t *testing.T) {
	m := newCountingMat(0)
	d, src := newTestDAG(m)

	pid, _ := d.SubmitStage(scheduler.JobMeta{Name: "p", File: "corpus"}, nil, nil)
	m.fail[pid] = true
	cid, err := d.SubmitStage(scheduler.JobMeta{Name: "c"}, []scheduler.JobID{pid}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Pop(0)
	d.JobFinished(pid, vclock.Time(4), false)

	// The producer itself succeeded; only its dependents are undeliverable.
	mustState(t, src, pid, runtime.JobDone)
	mustState(t, src, cid, runtime.JobFailed)
}

func TestLiveDAGMultiDepReleasesAfterLast(t *testing.T) {
	m := newCountingMat(0)
	d, src := newTestDAG(m)

	p1, _ := d.SubmitStage(scheduler.JobMeta{Name: "p1", File: "a"}, nil, nil)
	p2, _ := d.SubmitStage(scheduler.JobMeta{Name: "p2", File: "b"}, nil, nil)
	cid, err := d.SubmitStage(scheduler.JobMeta{Name: "join"}, []scheduler.JobID{p1, p2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Pop(0)
	d.JobFinished(p1, 3, false)
	mustState(t, src, cid, runtime.JobWaiting)
	d.JobFinished(p2, 5, false)
	mustState(t, src, cid, runtime.JobQueued)
	if m.calls[p1] != 1 || m.calls[p2] != 1 {
		t.Fatalf("materializer calls = %v, want one per producer", m.calls)
	}
}

func TestLiveDAGAdoptPaths(t *testing.T) {
	m := newCountingMat(0)
	d, src := newTestDAG(m)

	// Recovered done + already-materialized producer: a new consumer is
	// queued immediately and Pop must not re-materialize. Adopted ids sit
	// high so auto-assigned consumer ids cannot collide.
	doneMeta := scheduler.JobMeta{ID: 100, Name: "done", File: "corpus"}
	if err := src.Adopt(doneMeta, runtime.JobDone, 0, 2); err != nil {
		t.Fatal(err)
	}
	d.AdoptDone(100, false)
	d.AdoptMaterialized(100)
	cid, err := d.SubmitStage(scheduler.JobMeta{Name: "c"}, []scheduler.JobID{100}, nil)
	if err != nil {
		t.Fatalf("consumer of recovered producer refused: %v", err)
	}
	mustState(t, src, cid, runtime.JobQueued)
	d.Pop(5)
	if m.calls[100] != 0 {
		t.Fatal("re-materialized a producer recovery already rebuilt")
	}

	// Recovered done but unmaterialized producer: AdoptHeld releases the
	// consumer and the next Pop materializes.
	done2 := scheduler.JobMeta{ID: 200, Name: "done2", File: "corpus"}
	if err := src.Adopt(done2, runtime.JobDone, 0, 3); err != nil {
		t.Fatal(err)
	}
	d.AdoptDone(200, false)
	heldMeta := scheduler.JobMeta{ID: 210, Name: "held", File: "job-200.out"}
	if err := d.AdoptHeld(heldMeta, []scheduler.JobID{200}, 0); err != nil {
		t.Fatal(err)
	}
	mustState(t, src, 210, runtime.JobQueued)
	d.Pop(6)
	if m.calls[200] != 1 {
		t.Fatalf("Pop materialized recovered producer %d times, want 1", m.calls[200])
	}

	// Recovered failed producer: AdoptHeld fails the consumer outright.
	failedMeta := scheduler.JobMeta{ID: 300, Name: "bad", File: "corpus"}
	if err := src.Adopt(failedMeta, runtime.JobFailed, 0, 4); err != nil {
		t.Fatal(err)
	}
	d.AdoptDone(300, true)
	orphan := scheduler.JobMeta{ID: 310, Name: "orphan", File: "job-300.out"}
	if err := d.AdoptHeld(orphan, []scheduler.JobID{300}, vclock.Time(7)); err != nil {
		t.Fatal(err)
	}
	mustState(t, src, 310, runtime.JobFailed)

	// Recovered pending producer: AdoptHeld keeps the consumer waiting,
	// then a live finish releases it.
	pendMeta := scheduler.JobMeta{ID: 400, Name: "pend", File: "corpus"}
	if err := src.Adopt(pendMeta, runtime.JobRunning, 0, 0); err != nil {
		t.Fatal(err)
	}
	waiter := scheduler.JobMeta{ID: 410, Name: "waiter", File: "job-400.out"}
	if err := d.AdoptHeld(waiter, []scheduler.JobID{400}, 0); err != nil {
		t.Fatal(err)
	}
	mustState(t, src, 410, runtime.JobWaiting)
	d.JobFinished(400, vclock.Time(8), false)
	mustState(t, src, 410, runtime.JobQueued)
	if m.calls[400] != 1 {
		t.Fatalf("materializer called %d times for resumed producer, want 1", m.calls[400])
	}
}

// Concurrent submissions racing a producer's finish must neither lose a
// release nor double-materialize (run under -race in CI).
func TestLiveDAGConcurrentSubmitAndFinish(t *testing.T) {
	m := newCountingMat(0)
	d, src := newTestDAG(m)

	pid, err := d.SubmitStage(scheduler.JobMeta{Name: "p", File: "corpus"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Pop(0)

	const consumers = 16
	ids := make([]scheduler.JobID, consumers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			id, err := d.SubmitStage(scheduler.JobMeta{Name: "c"}, []scheduler.JobID{pid}, nil)
			if err != nil {
				t.Errorf("consumer %d: %v", i, err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		d.JobFinished(pid, vclock.Time(3), false)
	}()
	close(start)
	wg.Wait()

	// Every consumer ends queued regardless of which side of the finish
	// its submission landed on; drain any deferred materializations.
	d.Pop(vclock.Time(4))
	for _, id := range ids {
		mustState(t, src, id, runtime.JobQueued)
	}
	if m.calls[pid] != 1 {
		t.Fatalf("materializer called %d times under contention, want 1", m.calls[pid])
	}
}
