package pipeline

import (
	"fmt"
	"testing"

	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

func meta(id scheduler.JobID, file string) scheduler.JobMeta {
	return scheduler.JobMeta{ID: id, Name: fmt.Sprintf("job-%d", id), File: file}
}

// countingMat records materialization calls and returns a fixed delay.
type countingMat struct {
	calls map[scheduler.JobID]int
	at    map[scheduler.JobID]vclock.Time
	delay vclock.Duration
	fail  map[scheduler.JobID]bool
}

func newCountingMat(delay vclock.Duration) *countingMat {
	return &countingMat{
		calls: make(map[scheduler.JobID]int),
		at:    make(map[scheduler.JobID]vclock.Time),
		delay: delay,
		fail:  make(map[scheduler.JobID]bool),
	}
}

func (m *countingMat) mat(id scheduler.JobID, at vclock.Time) (vclock.Duration, error) {
	m.calls[id]++
	m.at[id] = at
	if m.fail[id] {
		return 0, fmt.Errorf("injected materialization failure for %d", id)
	}
	return m.delay, nil
}

func TestCoordinatorValidation(t *testing.T) {
	cases := []struct {
		name   string
		stages []Stage
		mat    Materializer
		want   string
	}{
		{"non-positive id", []Stage{{Job: meta(0, "f")}}, nil, "non-positive id"},
		{"duplicate id", []Stage{{Job: meta(1, "f")}, {Job: meta(1, "f")}}, nil, "duplicate stage id"},
		{"unknown dep", []Stage{{Job: meta(1, "f"), DependsOn: []scheduler.JobID{9}}},
			func(scheduler.JobID, vclock.Time) (vclock.Duration, error) { return 0, nil },
			"unknown stage 9"},
		{"missing materializer", []Stage{{Job: meta(1, "f")}, {Job: meta(2, "g"), DependsOn: []scheduler.JobID{1}}}, nil, "no materializer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCoordinator(tc.stages, tc.mat)
			if err == nil {
				t.Fatalf("NewCoordinator accepted %+v", tc.stages)
			}
			if got := err.Error(); !contains(got, tc.want) {
				t.Fatalf("error %q does not mention %q", got, tc.want)
			}
		})
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCoordinatorReleasesAfterMaterialization(t *testing.T) {
	m := newCountingMat(vclock.Duration(2))
	c, err := NewCoordinator([]Stage{
		{Job: meta(1, "corpus"), At: 0},
		{Job: meta(2, "job-1.out"), At: 1, DependsOn: []scheduler.JobID{1}},
	}, m.mat)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if got := c.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2 (held stages count)", got)
	}
	roots := c.Pop(0)
	if len(roots) != 1 || roots[0].Job.ID != 1 {
		t.Fatalf("Pop(0) = %+v, want root job 1", roots)
	}
	if _, ok := c.Peek(); ok {
		t.Fatal("Peek reports an arrival while the consumer is held")
	}
	if c.Wait() {
		t.Fatal("Wait() = true with nothing queued")
	}
	c.JobFinished(1, vclock.Time(5), false)
	if m.calls[1] != 1 {
		t.Fatalf("materializer called %d times for job 1, want 1", m.calls[1])
	}
	at, ok := c.Peek()
	if !ok || at != vclock.Time(7) {
		t.Fatalf("Peek() = %v, %v; want release at finish+delay = 7", at, ok)
	}
	if got := c.Pop(vclock.Time(6)); len(got) != 0 {
		t.Fatalf("Pop(6) delivered %+v before the materialization settled", got)
	}
	got := c.Pop(vclock.Time(7))
	if len(got) != 1 || got[0].Job.ID != 2 || got[0].At != vclock.Time(7) {
		t.Fatalf("Pop(7) = %+v, want job 2 at 7", got)
	}
	// Duplicate finish notifications must not re-materialize.
	c.JobFinished(1, vclock.Time(9), false)
	if m.calls[1] != 1 {
		t.Fatalf("duplicate JobFinished re-ran the materializer (%d calls)", m.calls[1])
	}
	if len(c.Unfinished()) != 0 || len(c.Failed()) != 0 || c.Err() != nil {
		t.Fatalf("clean DAG left residue: unfinished %v failed %v err %v", c.Unfinished(), c.Failed(), c.Err())
	}
}

func TestCoordinatorDiamondWaitsForAllDeps(t *testing.T) {
	m := newCountingMat(0)
	c, err := NewCoordinator([]Stage{
		{Job: meta(1, "corpus")},
		{Job: meta(2, "corpus")},
		{Job: meta(3, "job-1.out"), DependsOn: []scheduler.JobID{1, 2}},
	}, m.mat)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	c.Pop(0)
	c.JobFinished(1, vclock.Time(3), false)
	if got := c.Pop(vclock.Time(10)); len(got) != 0 {
		t.Fatalf("consumer released after one of two deps: %+v", got)
	}
	c.JobFinished(2, vclock.Time(4), false)
	got := c.Pop(vclock.Time(10))
	if len(got) != 1 || got[0].Job.ID != 3 || got[0].At != vclock.Time(4) {
		t.Fatalf("Pop = %+v, want job 3 at 4 (last dep's finish)", got)
	}
	if m.calls[1] != 1 || m.calls[2] != 1 {
		t.Fatalf("materializer calls = %v, want one per producer", m.calls)
	}
}

func TestCoordinatorCascadeFail(t *testing.T) {
	m := newCountingMat(0)
	c, err := NewCoordinator([]Stage{
		{Job: meta(1, "corpus")},
		{Job: meta(2, "job-1.out"), DependsOn: []scheduler.JobID{1}},
		{Job: meta(3, "job-2.out"), DependsOn: []scheduler.JobID{2}},
	}, m.mat)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	c.Pop(0)
	c.JobFinished(1, vclock.Time(2), true)
	if got := c.Failed(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Failed() = %v, want [2 3]", got)
	}
	if m.calls[1] != 0 {
		t.Fatal("failed producer was materialized")
	}
	if len(c.Unfinished()) != 0 {
		t.Fatalf("Unfinished() = %v after cascade", c.Unfinished())
	}
}

func TestCoordinatorMaterializeErrorCascades(t *testing.T) {
	m := newCountingMat(0)
	m.fail[1] = true
	c, err := NewCoordinator([]Stage{
		{Job: meta(1, "corpus")},
		{Job: meta(2, "job-1.out"), DependsOn: []scheduler.JobID{1}},
	}, m.mat)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	c.Pop(0)
	c.JobFinished(1, vclock.Time(2), false)
	if c.Err() == nil || !contains(c.Err().Error(), "materializing stage 1") {
		t.Fatalf("Err() = %v, want materialization failure", c.Err())
	}
	if got := c.Failed(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Failed() = %v, want [2]", got)
	}
}

func TestCoordinatorUnfinished(t *testing.T) {
	m := newCountingMat(0)
	c, err := NewCoordinator([]Stage{
		{Job: meta(1, "corpus")},
		{Job: meta(2, "job-1.out"), DependsOn: []scheduler.JobID{1}},
	}, m.mat)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	c.Pop(0)
	// The producer never finishes (abnormal run): the consumer stays
	// held and is reported.
	if got := c.Unfinished(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Unfinished() = %v, want [2]", got)
	}
}
