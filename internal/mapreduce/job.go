package mapreduce

import (
	"fmt"
	"sync"

	"s3sched/internal/dfs"
)

// Mapper transforms one input block into intermediate records. A
// mapper must be safe for concurrent use: the engine invokes it from
// several map slots at once.
type Mapper interface {
	Map(block dfs.BlockID, data []byte, emit Emit) error
}

// Reducer merges all intermediate values sharing a key. Reducers (and
// combiners, which share the signature) must be safe for concurrent
// use across keys/partitions.
type Reducer interface {
	Reduce(key string, values []string, emit Emit) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(block dfs.BlockID, data []byte, emit Emit) error

// Map calls f.
func (f MapperFunc) Map(block dfs.BlockID, data []byte, emit Emit) error {
	return f(block, data, emit)
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key string, values []string, emit Emit) error

// Reduce calls f.
func (f ReducerFunc) Reduce(key string, values []string, emit Emit) error {
	return f(key, values, emit)
}

// JobSpec describes one MapReduce job.
type JobSpec struct {
	Name   string
	File   string // input file name in the dfs.Store
	Mapper Mapper
	// Reducer merges intermediate records. If nil the job is map-only
	// and the intermediate records are the output.
	Reducer Reducer
	// Combiner, if non-nil, is applied to each map task's output before
	// shuffle (classic wordcount local aggregation).
	Combiner Reducer
	// NumReduce is the number of reduce partitions (default 1).
	NumReduce int
}

// Validate reports whether the spec is executable.
func (s *JobSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("mapreduce: job has no name")
	}
	if s.File == "" {
		return fmt.Errorf("mapreduce: job %q has no input file", s.Name)
	}
	if s.Mapper == nil {
		return fmt.Errorf("mapreduce: job %q has no mapper", s.Name)
	}
	if s.NumReduce < 0 {
		return fmt.Errorf("mapreduce: job %q has negative NumReduce", s.Name)
	}
	return nil
}

func (s *JobSpec) reduceWidth() int {
	if s.NumReduce <= 0 {
		return 1
	}
	return s.NumReduce
}

// Running is the engine-side state of a job in flight: the shuffle
// space its map tasks fill and the counters they charge. One Running
// may receive map output across many rounds (S^3 sub-jobs) before
// Finish is called.
type Running struct {
	Spec     JobSpec
	Counters *Counters

	mu         sync.Mutex
	partitions [][]KV // intermediate records per reduce partition
	finished   bool
}

// NewRunning prepares engine-side state for a job.
func NewRunning(spec JobSpec) (*Running, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Running{
		Spec:       spec,
		Counters:   NewCounters(),
		partitions: make([][]KV, spec.reduceWidth()),
	}, nil
}

// addIntermediate appends shuffled records into the job's partitions.
// It fails if the job has already been finished: a scheduler that maps
// after reduce has violated the sub-job protocol, and the error is
// reported from the offending round rather than crashing worker
// goroutines.
func (r *Running) addIntermediate(byPartition [][]KV) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		return fmt.Errorf("mapreduce: job %q received map output after Finish", r.Spec.Name)
	}
	for p, kvs := range byPartition {
		r.partitions[p] = append(r.partitions[p], kvs...)
	}
	return nil
}

// Compact folds the job's accumulated intermediate records through a
// combiner, partition by partition, replacing many records per key
// with one partial aggregate. This is the §V-G output-collection
// optimization: a sub-job's partial results are aggregated as they
// are produced, so the state carried between rounds stays small and
// the final reduce starts from near-finished values. Compact preserves
// reduce semantics only for combiners that are associative and
// commutative over their value stream (e.g. sums, counts, min/max).
func (r *Running) Compact(combiner Reducer) error {
	if combiner == nil {
		return fmt.Errorf("mapreduce: Compact needs a combiner")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		return fmt.Errorf("mapreduce: job %q compacted after Finish", r.Spec.Name)
	}
	for p, records := range r.partitions {
		if len(records) == 0 {
			continue
		}
		compacted, err := combine(records, combiner)
		if err != nil {
			return fmt.Errorf("mapreduce: compacting job %q partition %d: %w", r.Spec.Name, p, err)
		}
		r.partitions[p] = compacted
	}
	return nil
}

// IntermediateRecords reports how many shuffle records the job is
// currently holding across all partitions.
func (r *Running) IntermediateRecords() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for _, p := range r.partitions {
		total += len(p)
	}
	return total
}

// DrainPartitions hands out the job's current shuffle records and
// resets the partitions, leaving the job runnable. This is the
// per-round reduce path (§IV-D3: each sub-job is a complete MapReduce
// job): the caller reduces the drained records into a partial result
// and later folds the partials into the job's final output.
func (r *Running) DrainPartitions() [][]KV {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		panic(fmt.Sprintf("mapreduce: job %q drained after Finish", r.Spec.Name))
	}
	parts := r.partitions
	r.partitions = make([][]KV, r.Spec.reduceWidth())
	return parts
}

// Seal marks the job finished and hands back its remaining shuffle
// records. This is the shuffle-commit of a job's *last* round under
// staged execution: no further map output may arrive, and the caller
// runs the final reduce over the sealed snapshot with
// Engine.FinishDrained — possibly concurrently with later rounds'
// maps for other jobs.
func (r *Running) Seal() [][]KV { return r.takePartitions() }

// takePartitions marks the job finished and hands the shuffle space to
// the reduce phase.
func (r *Running) takePartitions() [][]KV {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		panic(fmt.Sprintf("mapreduce: job %q finished twice", r.Spec.Name))
	}
	r.finished = true
	parts := r.partitions
	r.partitions = nil
	return parts
}

// Result is a completed job's output.
type Result struct {
	Name     string
	Output   []KV // sorted by key then value
	Counters *Counters
}

// OutputMap returns the output as a map. It panics if a key repeats,
// which cannot happen for single-emit-per-key reducers.
func (res *Result) OutputMap() map[string]string {
	out := make(map[string]string, len(res.Output))
	for _, kv := range res.Output {
		if _, dup := out[kv.Key]; dup {
			panic(fmt.Sprintf("mapreduce: duplicate output key %q in job %q", kv.Key, res.Name))
		}
		out[kv.Key] = kv.Value
	}
	return out
}
