package mapreduce

import (
	"fmt"
	"testing"

	"s3sched/internal/dfs"
)

func TestReduceRoundPartialsFoldToOneShot(t *testing.T) {
	blocks := textBlocks("a b a b", "b c b c", "c a c a", "a a b b")
	cluster, _ := testCluster(t, 2, blocks)
	e := NewEngine(cluster)
	if e.Cluster() != cluster {
		t.Fatal("Cluster accessor broken")
	}

	oneShot, err := e.RunJob(wordCountSpec("ref"))
	if err != nil {
		t.Fatal(err)
	}

	// Per-round reduce: two rounds, each reduced immediately; fold the
	// partials through the same reducer.
	job, err := NewRunning(wordCountSpec("rounds"))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := cluster.Store().File("input")
	all := f.Blocks()
	var partials []KV
	for _, half := range [][]dfs.BlockID{all[:2], all[2:]} {
		if _, err := e.MapRound(half, []*Running{job}); err != nil {
			t.Fatal(err)
		}
		partial, err := e.ReduceRound(job)
		if err != nil {
			t.Fatal(err)
		}
		if len(partial) == 0 {
			t.Fatal("empty partial")
		}
		partials = append(partials, partial...)
	}
	folded, err := ReducePartition(partials, job.Spec.Reducer)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(folded) != fmt.Sprint(oneShot.Output) {
		t.Errorf("folded partials %v != one-shot %v", folded, oneShot.Output)
	}
	// The job is still runnable (not finished) and now empty.
	if job.IntermediateRecords() != 0 {
		t.Errorf("shuffle space not drained: %d records", job.IntermediateRecords())
	}
	if _, err := e.Finish(job); err != nil {
		t.Fatalf("Finish after per-round reduces: %v", err)
	}
}

func TestReduceRoundCounters(t *testing.T) {
	cluster, _ := testCluster(t, 2, textBlocks("a a b"))
	e := NewEngine(cluster)
	job, err := NewRunning(wordCountSpec("c"))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := cluster.Store().File("input")
	if _, err := e.MapRound(f.Blocks(), []*Running{job}); err != nil {
		t.Fatal(err)
	}
	out, err := e.ReduceRound(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 { // a, b
		t.Fatalf("partial = %v", out)
	}
	if got := job.Counters.Get(CounterReduceTasks); got != 3 {
		t.Errorf("reduce tasks = %d, want 3 (NumReduce)", got)
	}
	if got := job.Counters.Get(CounterReduceOutRecords); got != 2 {
		t.Errorf("reduce out records = %d, want 2", got)
	}
}

func TestDrainAfterFinishPanics(t *testing.T) {
	cluster, _ := testCluster(t, 2, textBlocks("a"))
	e := NewEngine(cluster)
	job, err := NewRunning(wordCountSpec("x"))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := cluster.Store().File("input")
	if _, err := e.MapRound(f.Blocks(), []*Running{job}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Finish(job); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("DrainPartitions after Finish should panic")
		}
	}()
	job.DrainPartitions()
}

func TestTaskAPIInPackage(t *testing.T) {
	parts, err := MapBlockForJob(dfs.BlockID{File: "x"}, []byte("a b a"), wordCountMapper{}, sumReducer{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 2 { // combiner folded "a a" -> one record + "b"
		t.Errorf("records = %d, want 2", total)
	}
	merged := MergeSorted(parts)
	if len(merged) != 2 || merged[0].Key != "a" {
		t.Errorf("merged = %v", merged)
	}
	out, err := ReducePartition(merged, sumReducer{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out) != fmt.Sprint([]KV{{Key: "a", Value: "2"}, {Key: "b", Value: "1"}}) {
		t.Errorf("reduced = %v", out)
	}
	// Error paths.
	if _, err := MapBlockForJob(dfs.BlockID{}, nil, nil, nil, 1); err == nil {
		t.Error("nil mapper should fail")
	}
	if _, err := MapBlockForJob(dfs.BlockID{}, nil, wordCountMapper{}, nil, 0); err == nil {
		t.Error("zero width should fail")
	}
	bad := ReducerFunc(func(string, []string, Emit) error { return fmt.Errorf("boom") })
	if _, err := ReducePartition([]KV{{Key: "a", Value: "1"}}, bad); err == nil {
		t.Error("reducer error should propagate")
	}
	if _, err := MapBlockForJob(dfs.BlockID{}, []byte("a a"), wordCountMapper{}, bad, 1); err == nil {
		t.Error("combiner error should propagate")
	}
}
