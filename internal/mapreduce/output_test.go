package mapreduce

import (
	"fmt"
	"strconv"
	"testing"

	"s3sched/internal/dfs"
)

func TestStoreResultRoundTrip(t *testing.T) {
	cluster, store := testCluster(t, 2, textBlocks("a b a b b", "c a b c c"))
	e := NewEngine(cluster)
	res, err := e.RunJob(wordCountSpec("wc"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := StoreResult(store, "wc-out", 16, res)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks == 0 {
		t.Fatal("no blocks written")
	}
	// Read everything back through a KVLineMapper identity job.
	spec := JobSpec{
		Name: "readback",
		File: "wc-out",
		Mapper: KVLineMapper{Each: func(key, value string, emit Emit) error {
			emit(KV{Key: key, Value: value})
			return nil
		}},
	}
	back, err := e.RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(back.Output) != fmt.Sprint(res.Output) {
		t.Errorf("round trip mismatch:\n  wrote %v\n  read  %v", res.Output, back.Output)
	}
}

func TestJobChaining(t *testing.T) {
	// Stage 1: wordcount. Stage 2: keep only words counted >= 3 —
	// a job scanning the first job's stored output.
	cluster, store := testCluster(t, 2, textBlocks("a b a b b", "c a b c c"))
	e := NewEngine(cluster)
	res, err := e.RunJob(wordCountSpec("wc"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StoreResult(store, "counts", 32, res); err != nil {
		t.Fatal(err)
	}
	filter := JobSpec{
		Name: "frequent",
		File: "counts",
		Mapper: KVLineMapper{Each: func(key, value string, emit Emit) error {
			n, err := strconv.Atoi(value)
			if err != nil {
				return err
			}
			if n >= 3 {
				emit(KV{Key: key, Value: value})
			}
			return nil
		}},
	}
	out, err := e.RunJob(filter)
	if err != nil {
		t.Fatal(err)
	}
	// a=3, b=4, c=3 -> all three qualify; with threshold 4 only b.
	if len(out.Output) != 3 {
		t.Fatalf("frequent words = %v, want a,b,c", out.Output)
	}
}

func TestStoreResultValidation(t *testing.T) {
	store := testStore(t)
	if _, err := StoreResult(store, "x", 16, nil); err == nil {
		t.Error("nil result should fail")
	}
	if _, err := StoreResult(store, "x", 0, &Result{}); err == nil {
		t.Error("zero block size should fail")
	}
	bad := &Result{Output: []KV{{Key: "has\ttab", Value: "v"}}}
	if _, err := StoreResult(store, "x", 64, bad); err == nil {
		t.Error("tab in key should fail")
	}
	long := &Result{Output: []KV{{Key: "kkkkkkkkkkkkkkkkkkkk", Value: "v"}}}
	if _, err := StoreResult(store, "x", 8, long); err == nil {
		t.Error("record longer than block should fail")
	}
	// Empty result still materializes one block.
	f, err := StoreResult(store, "empty", 16, &Result{})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks != 1 {
		t.Errorf("empty result blocks = %d, want 1", f.NumBlocks)
	}
}

func testStore(t *testing.T) *dfs.Store {
	t.Helper()
	_, store := testCluster(t, 2, textBlocks("x"))
	return store
}

func TestKVLineMapperErrors(t *testing.T) {
	m := KVLineMapper{}
	if err := m.Map(dfs.BlockID{}, []byte("a\tb\n"), func(KV) {}); err == nil {
		t.Error("nil Each should fail")
	}
	m = KVLineMapper{Each: func(string, string, Emit) error { return nil }}
	if err := m.Map(dfs.BlockID{}, []byte("no-tab-here\n"), func(KV) {}); err == nil {
		t.Error("malformed line should fail")
	}
}
