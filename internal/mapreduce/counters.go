package mapreduce

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Standard counter names, mirroring the quantities Table I of the
// paper reports for the wordcount workload.
const (
	CounterMapInputRecords    = "map.input.records"
	CounterMapInputBytes      = "map.input.bytes"
	CounterMapOutputRecords   = "map.output.records"
	CounterMapOutputBytes     = "map.output.bytes"
	CounterCombineOutRecords  = "combine.output.records"
	CounterReduceInputRecords = "reduce.input.records"
	CounterReduceOutRecords   = "reduce.output.records"
	CounterReduceOutBytes     = "reduce.output.bytes"
	CounterMapTasks           = "tasks.map"
	CounterReduceTasks        = "tasks.reduce"
	CounterLocalTasks         = "tasks.map.local"
)

// Counters is a concurrency-safe set of named int64 counters.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Add increments counter name by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the current value of counter name (0 when unset).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Merge adds every counter from other into c.
func (c *Counters) Merge(other *Counters) {
	for k, v := range other.Snapshot() {
		c.Add(k, v)
	}
}

// String renders the counters sorted by name, one per line.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%-24s %d\n", k, snap[k])
	}
	return b.String()
}
