package mapreduce_test

import (
	"fmt"
	"strconv"
	"strings"

	"s3sched/internal/dfs"
	"s3sched/internal/mapreduce"
)

// ExampleEngine_RunMerged runs two different wordcount jobs as one
// merged batch: the input is scanned once and feeds both mappers.
func ExampleEngine_RunMerged() {
	store := dfs.MustStore(2, 1)
	blocks := [][]byte{
		[]byte("ant bee ant"),
		[]byte("bee cat bee"),
	}
	_, _ = store.AddFile("input", int64(len(blocks[0])), blocks)

	mapper := mapreduce.MapperFunc(func(_ dfs.BlockID, data []byte, emit mapreduce.Emit) error {
		for _, w := range strings.Fields(string(data)) {
			emit(mapreduce.KV{Key: w, Value: "1"})
		}
		return nil
	})
	sum := mapreduce.ReducerFunc(func(key string, values []string, emit mapreduce.Emit) error {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(v)
			if err != nil {
				return err
			}
			total += n
		}
		emit(mapreduce.KV{Key: key, Value: strconv.Itoa(total)})
		return nil
	})

	engine := mapreduce.NewEngine(mapreduce.MustCluster(store, 1))
	results, _ := engine.RunMerged([]mapreduce.JobSpec{
		{Name: "count-all", File: "input", Mapper: mapper, Reducer: sum},
		{Name: "count-all-again", File: "input", Mapper: mapper, Reducer: sum},
	})

	fmt.Println(results[0].Name, results[0].Output)
	fmt.Println("block scans:", store.Stats().BlockReads, "(one per block for the whole batch)")
	// Output:
	// count-all [{ant 2} {bee 3} {cat 1}]
	// block scans: 2 (one per block for the whole batch)
}
