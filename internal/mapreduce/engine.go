package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"s3sched/internal/dfs"
)

// InputRecordCounter is an optional interface a Mapper can implement
// to report how many logical records (lines, tuples, …) a block
// contains, so the engine can charge map.input.records the way Hadoop
// does. Without it only byte-level input accounting is available.
type InputRecordCounter interface {
	CountInputRecords(data []byte) int64
}

// RoundStats summarizes one map round's physical work.
type RoundStats struct {
	Blocks       int   // blocks scanned (each at least once)
	BytesScanned int64 // bytes read from the store
	MapTasks     int   // map task executions (blocks × jobs)
	LocalTasks   int   // block-scan tasks that ran on a replica holder
	// Speculative counts duplicate block attempts launched by
	// speculative execution (0 when speculation is off).
	Speculative int
	// Retries counts re-executions of block attempts after a failure
	// (0 when no faults occur or retries are disabled).
	Retries int
	// FailedAttempts counts block-read attempts that failed.
	FailedAttempts int
	// Blacklisted counts nodes marked down by this round after
	// RetryPolicy.BlacklistAfter consecutive failures.
	Blacklisted int
}

// RetryPolicy bounds how the engine retries failed block reads within
// a map round. The zero value is invalid; DefaultRetryPolicy (one
// attempt, no retries) matches the engine's historical behavior.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per block, counting
	// the first. 1 disables retries.
	MaxAttempts int
	// Backoff is the delay before the second attempt; it doubles on
	// each subsequent retry. 0 retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the exponential delay. 0 means no cap.
	MaxBackoff time.Duration
	// Jitter adds a deterministic per-(block,attempt) offset of up to
	// half the delay, de-synchronizing retry bursts without a global
	// random source.
	Jitter bool
	// BlacklistAfter marks a node down (Cluster.SetHealth) after this
	// many consecutive failed attempts on it, steering later
	// assignments and failovers away. 0 disables blacklisting.
	BlacklistAfter int
}

// DefaultRetryPolicy returns the engine's default: a single attempt
// per block, matching the pre-fault-tolerance behavior exactly.
func DefaultRetryPolicy() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

func (p RetryPolicy) validate() error {
	if p.MaxAttempts < 1 {
		return fmt.Errorf("mapreduce: retry policy needs at least 1 attempt, got %d", p.MaxAttempts)
	}
	if p.Backoff < 0 || p.MaxBackoff < 0 {
		return fmt.Errorf("mapreduce: retry backoff must be non-negative")
	}
	if p.BlacklistAfter < 0 {
		return fmt.Errorf("mapreduce: BlacklistAfter must be non-negative, got %d", p.BlacklistAfter)
	}
	return nil
}

// Fault event kinds reported to the engine's fault observer.
const (
	FaultAttemptFailed = "attempt-failed"
	FaultNodeDown      = "node-down"
)

// FaultEvent notifies the observer of one fault-handling action inside
// a map round, so callers can surface recovery in traces.
type FaultEvent struct {
	Kind    string // FaultAttemptFailed or FaultNodeDown
	Block   dfs.BlockID
	Node    dfs.NodeID
	Attempt int // 1-based attempt number (0 for node events)
	Err     error
}

// Task event kinds reported to the engine's task observer.
const (
	// TaskCommitted: a map attempt finished and won the commit — its
	// output is the one every job in the batch sees for the block.
	TaskCommitted = "task-committed"
	// TaskSpeculated: a straggler attempt was duplicated on another
	// node (speculative execution).
	TaskSpeculated = "task-speculated"
)

// TaskEvent notifies the observer of one map-task lifecycle action
// inside a round, so callers can surface per-attempt execution in
// traces. Dur is the committed attempt's measured wall duration (zero
// for TaskSpeculated).
type TaskEvent struct {
	Kind    string // TaskCommitted or TaskSpeculated
	Block   dfs.BlockID
	Node    dfs.NodeID
	Attempt int // 1-based attempt number that committed (1 for speculative duplicates)
	Local   bool
	Jobs    int // jobs sharing the committed scan
	Dur     time.Duration
}

// BlockLostError reports that a block could not be read by any allowed
// attempt: every retry and replica failover failed. The round carrying
// the block is lost and must be re-driven by the scheduling layer.
type BlockLostError struct {
	Block    dfs.BlockID
	Attempts int
	Err      error // last attempt's failure
}

func (e *BlockLostError) Error() string {
	return fmt.Sprintf("mapreduce: block %v lost after %d attempts: %v", e.Block, e.Attempts, e.Err)
}

func (e *BlockLostError) Unwrap() error { return e.Err }

// Engine executes map rounds and reduce phases on a cluster.
//
// The engine is deliberately round-oriented: FIFO runs a job as one
// round over all its blocks; MRShare runs a merged batch as one round
// over all blocks; S^3 runs one round per segment with whatever batch
// of sub-jobs the JQM aligned. In every case a block is read exactly
// once per round no matter how many jobs consume it.
type Engine struct {
	cluster *Cluster
	// speculation, when positive, enables Hadoop-style speculative
	// execution: once a round's tasks start finishing, a task running
	// longer than speculation x the median completed-task duration is
	// duplicated on another node and the first finisher wins. The
	// paper's experiments disable speculation (§V-A), which is also
	// this engine's default.
	speculation  float64
	retry        RetryPolicy
	observer     func(FaultEvent)
	taskObserver func(TaskEvent)
}

// NewEngine returns an engine over the cluster. Speculative execution
// is off and the retry policy is DefaultRetryPolicy (no retries),
// matching the paper's configuration.
func NewEngine(cluster *Cluster) *Engine {
	return &Engine{cluster: cluster, retry: DefaultRetryPolicy()}
}

// EnableSpeculation turns on speculative re-execution of straggler
// tasks: a task is duplicated when it has run longer than factor times
// the median duration of the round's completed tasks. factor must be
// at least 1.
func (e *Engine) EnableSpeculation(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("mapreduce: speculation factor %v < 1", factor))
	}
	e.speculation = factor
}

// SetRetryPolicy installs the per-block retry/failover policy used by
// subsequent map rounds.
func (e *Engine) SetRetryPolicy(p RetryPolicy) error {
	if err := p.validate(); err != nil {
		return err
	}
	e.retry = p
	return nil
}

// SetFaultObserver installs a callback invoked on fault-handling
// events (failed attempts, node blacklisting). The callback must be
// safe for concurrent use; nil clears it.
func (e *Engine) SetFaultObserver(fn func(FaultEvent)) { e.observer = fn }

func (e *Engine) notify(ev FaultEvent) {
	if e.observer != nil {
		e.observer(ev)
	}
}

// SetTaskObserver installs a callback invoked on task lifecycle events
// (attempt commits, speculative launches). The callback must be safe
// for concurrent use; nil clears it.
func (e *Engine) SetTaskObserver(fn func(TaskEvent)) { e.taskObserver = fn }

func (e *Engine) notifyTask(ev TaskEvent) {
	if e.taskObserver != nil {
		e.taskObserver(ev)
	}
}

// Cluster returns the engine's cluster.
func (e *Engine) Cluster() *Cluster { return e.cluster }

// MapRound scans each block once (twice if a speculative duplicate is
// launched) and feeds its contents to the mapper of every job in jobs,
// shuffling each job's output into its own reduce partitions. Tasks
// run concurrently, bounded by per-node map slots, preferring
// data-local placement. Exactly one attempt per block commits its
// output, so results are identical with or without speculation.
//
// MapRound keeps the historical single-error contract: the first
// per-job failure (or the round failure) is returned. Callers that
// need per-job fault isolation use MapRoundCtx.
func (e *Engine) MapRound(blocks []dfs.BlockID, jobs []*Running) (RoundStats, error) {
	stats, jobErrs, roundErr := e.MapRoundCtx(context.Background(), blocks, jobs)
	if roundErr != nil {
		return stats, roundErr
	}
	for _, err := range jobErrs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// MapRoundCtx is MapRound with cancellation and per-job fault
// isolation. It returns per-job errors (indexed like jobs) alongside a
// round-level error. A job whose mapper or commit fails is dropped
// from the rest of the round but does not disturb the other jobs; the
// round-level error is non-nil only when the round itself could not
// complete — a block was lost after exhausting every retry and replica
// (a *BlockLostError), or ctx was cancelled. Failed blocks cancel all
// in-flight work promptly.
func (e *Engine) MapRoundCtx(ctx context.Context, blocks []dfs.BlockID, jobs []*Running) (RoundStats, []error, error) {
	if len(jobs) == 0 {
		return RoundStats{}, nil, fmt.Errorf("mapreduce: MapRound with no jobs")
	}
	assignments := e.cluster.assignBlocks(blocks)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		roundErr error
		stats    RoundStats
	)
	stats.Blocks = len(blocks)
	jobErrs := make([]error, len(jobs))
	jobFailed := make([]bool, len(jobs))

	committed := make([]bool, len(assignments))  // block slot -> output committed
	speculated := make([]bool, len(assignments)) // duplicate already launched
	started := make([]time.Time, len(assignments))
	var durations []time.Duration // completed attempt durations
	remaining := len(assignments)
	consecFails := make(map[dfs.NodeID]int)

	failRound := func(err error) {
		mu.Lock()
		if roundErr == nil {
			roundErr = err
		}
		mu.Unlock()
		cancel()
	}

	// errLostRace marks an attempt that lost the commit race to a
	// duplicate — not a failure.
	errLostRace := errors.New("lost commit race")

	// tryOnce runs one execution of block slot i on node asg.node and
	// commits if it finishes first. Job-level failures are recorded in
	// jobErrs and absorbed; only read/infrastructure errors are
	// returned.
	tryOnce := func(i int, asg assignment, attempt int) error {
		if err := asg.node.acquireCtx(ctx); err != nil {
			return err
		}
		defer asg.node.release()
		begin := time.Now()

		data, err := e.cluster.store.ReadBlockAt(asg.block, asg.node.ID)
		if err != nil {
			mu.Lock()
			stats.FailedAttempts++
			consecFails[asg.node.ID]++
			fails := consecFails[asg.node.ID]
			mu.Unlock()
			e.notify(FaultEvent{Kind: FaultAttemptFailed, Block: asg.block, Node: asg.node.ID, Attempt: attempt, Err: err})
			if k := e.retry.BlacklistAfter; k > 0 && fails == k && e.cluster.Healthy(asg.node.ID) {
				e.cluster.SetHealth(asg.node.ID, false)
				mu.Lock()
				stats.Blacklisted++
				mu.Unlock()
				e.notify(FaultEvent{Kind: FaultNodeDown, Node: asg.node.ID, Err: err})
			}
			return err
		}
		mu.Lock()
		consecFails[asg.node.ID] = 0
		mu.Unlock()

		type jobOut struct {
			parts  [][]KV
			counts taskCounts
			ok     bool
		}
		outs := make([]jobOut, len(jobs))
		for j, job := range jobs {
			mu.Lock()
			skip := jobFailed[j]
			mu.Unlock()
			if skip {
				continue
			}
			parts, counts, err := e.computeMapTask(asg.block, data, job)
			if err != nil {
				mu.Lock()
				if !jobFailed[j] {
					jobFailed[j] = true
					jobErrs[j] = fmt.Errorf("job %q block %v: %w", job.Spec.Name, asg.block, err)
				}
				mu.Unlock()
				continue
			}
			outs[j] = jobOut{parts: parts, counts: counts, ok: true}
		}

		elapsed := time.Since(begin)
		mu.Lock()
		if committed[i] || roundErr != nil {
			mu.Unlock()
			return errLostRace // a duplicate won, or the round already failed
		}
		committed[i] = true
		remaining--
		durations = append(durations, elapsed)
		stats.BytesScanned += int64(len(data))
		stats.MapTasks += len(jobs)
		if asg.local {
			stats.LocalTasks++
		}
		mu.Unlock()
		e.notifyTask(TaskEvent{Kind: TaskCommitted, Block: asg.block, Node: asg.node.ID,
			Attempt: attempt, Local: asg.local, Jobs: len(jobs), Dur: elapsed})

		for j, job := range jobs {
			if !outs[j].ok {
				continue // job already failed; isolated from the batch
			}
			if err := e.commitMapTask(job, outs[j].parts, outs[j].counts); err != nil {
				mu.Lock()
				if !jobFailed[j] {
					jobFailed[j] = true
					jobErrs[j] = fmt.Errorf("job %q block %v: %w", job.Spec.Name, asg.block, err)
				}
				mu.Unlock()
			}
		}
		return nil
	}

	// runBlock drives block slot i's retry chain: attempts with
	// exponential backoff, failing over to a surviving replica holder
	// after each failure. The chain ends on commit, lost race, cancel,
	// or attempt exhaustion (which loses the round).
	runBlock := func(i int, asg assignment) {
		defer wg.Done()
		cur := asg
		tried := map[dfs.NodeID]bool{}
		for attempt := 1; ; attempt++ {
			err := tryOnce(i, cur, attempt)
			if err == nil || errors.Is(err, errLostRace) {
				return
			}
			if ctx.Err() != nil {
				return // round cancelled; its error is already set
			}
			tried[cur.node.ID] = true
			if attempt >= e.retry.MaxAttempts {
				failRound(&BlockLostError{Block: cur.block, Attempts: attempt, Err: err})
				return
			}
			mu.Lock()
			stats.Retries++
			mu.Unlock()
			if !e.sleepBackoff(ctx, cur.block, attempt) {
				return
			}
			next := e.failoverNode(cur.block, cur.node, tried)
			cur = assignment{block: cur.block, node: next, local: e.cluster.store.HasLocal(cur.block, next.ID)}
		}
	}

	now := time.Now()
	for i, asg := range assignments {
		started[i] = now
		wg.Add(1)
		go runBlock(i, asg)
	}

	// Speculation monitor: once half the blocks have finished, any
	// block running longer than factor x the median completed duration
	// gets a duplicate attempt on another node. The poll interval backs
	// off to a fraction of the median task duration, so fast rounds get
	// tight straggler detection while slow rounds don't busy-spin. The
	// monitor exits promptly when the round completes, fails, or is
	// cancelled.
	if e.speculation > 0 && len(assignments) > 1 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			poll := 200 * time.Microsecond
			timer := time.NewTimer(poll)
			defer timer.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-timer.C:
				}
				mu.Lock()
				if remaining == 0 || roundErr != nil {
					mu.Unlock()
					return
				}
				if len(durations)*2 < len(assignments) {
					mu.Unlock()
					timer.Reset(poll)
					continue
				}
				med := medianDuration(durations)
				threshold := time.Duration(e.speculation * float64(med))
				poll = med / 8
				if poll < 200*time.Microsecond {
					poll = 200 * time.Microsecond
				} else if poll > 10*time.Millisecond {
					poll = 10 * time.Millisecond
				}
				var specEvents []TaskEvent
				for i, asg := range assignments {
					if committed[i] || speculated[i] {
						continue
					}
					if time.Since(started[i]) > threshold {
						speculated[i] = true
						stats.Speculative++
						other := e.speculativeNode(asg.block, asg.node)
						dup := assignment{block: asg.block, node: other, local: e.cluster.store.HasLocal(asg.block, other.ID)}
						specEvents = append(specEvents, TaskEvent{Kind: TaskSpeculated, Block: asg.block,
							Node: other.ID, Attempt: 1, Local: dup.local, Jobs: len(jobs)})
						wg.Add(1)
						go func(i int, dup assignment) {
							defer wg.Done()
							// A failed duplicate is harmless: the
							// original attempt's retry chain still owns
							// the block.
							_ = tryOnce(i, dup, 1)
						}(i, dup)
					}
				}
				mu.Unlock()
				for _, ev := range specEvents {
					e.notifyTask(ev)
				}
				timer.Reset(poll)
			}
		}()
	}

	wg.Wait()
	if roundErr == nil && ctx.Err() != nil {
		roundErr = ctx.Err()
	}
	return stats, jobErrs, roundErr
}

// sleepBackoff waits out the exponential backoff before the next
// attempt of block b; attempt is the 1-based attempt that just failed.
// Returns false if ctx was cancelled during the wait.
func (e *Engine) sleepBackoff(ctx context.Context, b dfs.BlockID, attempt int) bool {
	d := e.retry.Backoff
	if d <= 0 {
		return ctx.Err() == nil
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if e.retry.MaxBackoff > 0 && d >= e.retry.MaxBackoff {
			d = e.retry.MaxBackoff
			break
		}
	}
	if e.retry.MaxBackoff > 0 && d > e.retry.MaxBackoff {
		d = e.retry.MaxBackoff
	}
	if e.retry.Jitter {
		// Deterministic per-(block, attempt) jitter in [0, d/2): spreads
		// synchronized retries without a global random source.
		h := uint64(14695981039346656037)
		for i := 0; i < len(b.File); i++ {
			h = (h ^ uint64(b.File[i])) * 1099511628211
		}
		h ^= uint64(b.Index)<<32 ^ uint64(attempt)
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		d += time.Duration(h % uint64(d/2+1))
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// failoverNode picks where the next attempt of block b runs after a
// failure on cur: an untried healthy replica holder (ring order from
// cur, so consecutive failovers walk the replica set), else any
// untried healthy node, else cur itself (retry in place — e.g. a
// transient fault on the only holder).
func (e *Engine) failoverNode(b dfs.BlockID, cur *Node, tried map[dfs.NodeID]bool) *Node {
	n := len(e.cluster.nodes)
	for off := 1; off < n; off++ {
		cand := e.cluster.nodes[(int(cur.ID)+off)%n]
		if !tried[cand.ID] && e.cluster.Healthy(cand.ID) && e.cluster.store.HasLocal(b, cand.ID) {
			return cand
		}
	}
	for off := 1; off < n; off++ {
		cand := e.cluster.nodes[(int(cur.ID)+off)%n]
		if !tried[cand.ID] && e.cluster.Healthy(cand.ID) {
			return cand
		}
	}
	return cur
}

// speculativeNode picks where a duplicate attempt of block b runs when
// its first attempt on cur looks like a straggler: another node holding
// a replica of the block, so the duplicate scans locally. Ring order
// from cur spreads duplicates when several replicas qualify; if no
// other node holds a replica, fall back to cur's ring successor.
func (e *Engine) speculativeNode(b dfs.BlockID, cur *Node) *Node {
	n := len(e.cluster.nodes)
	for off := 1; off < n; off++ {
		cand := e.cluster.nodes[(int(cur.ID)+off)%n]
		if e.cluster.store.HasLocal(b, cand.ID) {
			return cand
		}
	}
	return e.cluster.nodes[(int(cur.ID)+1)%n]
}

// medianDuration returns the median of ds (ds must be non-empty).
func medianDuration(ds []time.Duration) time.Duration {
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// taskCounts carries one map task's counter deltas; they are charged
// only by the attempt that commits, so speculative duplicates never
// distort the job's statistics.
type taskCounts struct {
	inputBytes      int64
	inputRecords    int64
	outputRecords   int64
	outputBytes     int64
	combineRecords  int64
	combinerApplied bool
}

// computeMapTask executes one job's mapper over one block without
// touching shared state.
func (e *Engine) computeMapTask(block dfs.BlockID, data []byte, job *Running) ([][]KV, taskCounts, error) {
	var raw []KV
	err := job.Spec.Mapper.Map(block, data, func(kv KV) {
		raw = append(raw, kv)
	})
	if err != nil {
		return nil, taskCounts{}, err
	}
	counts := taskCounts{
		inputBytes:    int64(len(data)),
		outputRecords: int64(len(raw)),
		outputBytes:   kvBytes(raw),
	}
	if rc, ok := job.Spec.Mapper.(InputRecordCounter); ok {
		counts.inputRecords = rc.CountInputRecords(data)
	}
	if job.Spec.Combiner != nil && len(raw) > 0 {
		combined, err := combine(raw, job.Spec.Combiner)
		if err != nil {
			return nil, taskCounts{}, fmt.Errorf("combiner: %w", err)
		}
		counts.combineRecords = int64(len(combined))
		counts.combinerApplied = true
		raw = combined
	}
	return partition(raw, job.Spec.reduceWidth()), counts, nil
}

// commitMapTask charges the task's counters and merges its output into
// the job's shuffle space.
func (e *Engine) commitMapTask(job *Running, parts [][]KV, counts taskCounts) error {
	c := job.Counters
	c.Add(CounterMapTasks, 1)
	c.Add(CounterMapInputBytes, counts.inputBytes)
	if counts.inputRecords > 0 {
		c.Add(CounterMapInputRecords, counts.inputRecords)
	}
	c.Add(CounterMapOutputRecords, counts.outputRecords)
	c.Add(CounterMapOutputBytes, counts.outputBytes)
	if counts.combinerApplied {
		c.Add(CounterCombineOutRecords, counts.combineRecords)
	}
	return job.addIntermediate(parts)
}

// ReduceRound drains the job's current shuffle space and runs its
// reduce phase over it, returning the sub-job's partial output (sorted
// by key). The job stays runnable for further map rounds — this is the
// §IV-D3 execution where every merged sub-job is a complete MapReduce
// job, and the caller collects the partial results (§V-G).
func (e *Engine) ReduceRound(job *Running) ([]KV, error) {
	return e.ReduceDrained(job, job.DrainPartitions())
}

// ReduceDrained runs a sub-job's reduce phase over an already-drained
// shuffle snapshot (see Running.DrainPartitions). Draining and reducing
// are separate so a staged runtime can commit the shuffle at the end of
// the scan stage and run the reduce concurrently with the next round's
// maps; the job's live shuffle space keeps accumulating new map output
// in the meantime.
func (e *Engine) ReduceDrained(job *Running, parts [][]KV) ([]KV, error) {
	return e.ReduceDrainedCtx(context.Background(), job, parts)
}

// ReduceDrainedCtx is ReduceDrained with cancellation: partitions not
// yet started when ctx is cancelled are skipped and the ctx error is
// returned, so a failed or aborted round doesn't run out its reduces.
func (e *Engine) ReduceDrainedCtx(ctx context.Context, job *Running, parts [][]KV) ([]KV, error) {
	outputs, err := e.reduceParts(ctx, job, parts, "sub-job partition")
	if err != nil {
		return nil, err
	}
	job.Counters.Add(CounterReduceTasks, int64(len(parts)))
	merged := MergeSorted(outputs)
	job.Counters.Add(CounterReduceOutRecords, int64(len(merged)))
	job.Counters.Add(CounterReduceOutBytes, kvBytes(merged))
	return merged, nil
}

// Finish runs the job's reduce phase over everything its map tasks
// produced and returns the completed result. A job must be finished
// exactly once, after its final map round.
func (e *Engine) Finish(job *Running) (*Result, error) {
	return e.FinishDrained(job, job.takePartitions())
}

// FinishDrained completes a job whose shuffle space was already sealed
// (see Running.Seal): it reduces the sealed snapshot and returns the
// final result. The staged runtime seals at the end of the job's last
// scan stage and runs this concurrently with later rounds' maps.
func (e *Engine) FinishDrained(job *Running, parts [][]KV) (*Result, error) {
	return e.FinishDrainedCtx(context.Background(), job, parts)
}

// FinishDrainedCtx is FinishDrained with cancellation (see
// ReduceDrainedCtx).
func (e *Engine) FinishDrainedCtx(ctx context.Context, job *Running, parts [][]KV) (*Result, error) {
	c := job.Counters
	outputs, err := e.reduceParts(ctx, job, parts, "partition")
	if err != nil {
		return nil, err
	}
	var all []KV
	for _, out := range outputs {
		all = append(all, out...)
	}
	sortKVs(all)
	c.Add(CounterReduceTasks, int64(len(parts)))
	c.Add(CounterReduceOutRecords, int64(len(all)))
	c.Add(CounterReduceOutBytes, kvBytes(all))
	return &Result{Name: job.Spec.Name, Output: all, Counters: c}, nil
}

// reduceParts runs one reduce task per partition concurrently,
// committing the first error (the same worker-pool/firstErr pattern
// every reduce phase shares). Partitions observe ctx: tasks not yet
// started when it is cancelled do no work.
func (e *Engine) reduceParts(ctx context.Context, job *Running, parts [][]KV, label string) ([][]KV, error) {
	outputs := make([][]KV, len(parts))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for p, records := range parts {
		wg.Add(1)
		go func(p int, records []KV) {
			defer wg.Done()
			if ctx.Err() != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = ctx.Err()
				}
				mu.Unlock()
				return
			}
			out, err := e.runReduceTask(records, job)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("job %q %s %d: %w", job.Spec.Name, label, p, err)
				return
			}
			outputs[p] = out
		}(p, records)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return outputs, nil
}

// runReduceTask sorts, groups and reduces one partition.
func (e *Engine) runReduceTask(records []KV, job *Running) ([]KV, error) {
	job.Counters.Add(CounterReduceInputRecords, int64(len(records)))
	sortKVs(records)
	if job.Spec.Reducer == nil {
		return records, nil
	}
	var out []KV
	err := groupByKey(records, func(key string, values []string) error {
		return job.Spec.Reducer.Reduce(key, values, func(kv KV) {
			out = append(out, kv)
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunJob executes a single job start to finish: one map round over all
// of its input blocks, then the reduce phase.
func (e *Engine) RunJob(spec JobSpec) (*Result, error) {
	results, err := e.RunMerged([]JobSpec{spec})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunMerged executes several jobs over the same input file as one
// merged batch: every block is scanned once and feeds all jobs
// (MRShare-style whole-file shared scan). Results are returned in spec
// order.
func (e *Engine) RunMerged(specs []JobSpec) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("mapreduce: RunMerged with no jobs")
	}
	file := specs[0].File
	jobs := make([]*Running, len(specs))
	for i, spec := range specs {
		if spec.File != file {
			return nil, fmt.Errorf("mapreduce: merged jobs must share an input file: %q vs %q", spec.File, file)
		}
		job, err := NewRunning(spec)
		if err != nil {
			return nil, err
		}
		jobs[i] = job
	}
	f, err := e.cluster.store.File(file)
	if err != nil {
		return nil, err
	}
	if _, err := e.MapRound(f.Blocks(), jobs); err != nil {
		return nil, err
	}
	results := make([]*Result, len(jobs))
	for i, job := range jobs {
		res, err := e.Finish(job)
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return results, nil
}

// kvBytes returns the payload size of records (keys + values).
func kvBytes(kvs []KV) int64 {
	var n int64
	for _, kv := range kvs {
		n += int64(len(kv.Key) + len(kv.Value))
	}
	return n
}
