package mapreduce

import (
	"fmt"
	"testing"
)

func TestCompactShrinksIntermediateState(t *testing.T) {
	blocks := textBlocks(
		"a a a a b b", "a a b b b b", "a b a b a b", "b b b a a a",
	)
	cluster, _ := testCluster(t, 2, blocks)
	e := NewEngine(cluster)

	// Reference without compaction.
	ref, err := e.RunJob(wordCountSpec("ref"))
	if err != nil {
		t.Fatal(err)
	}

	job, err := NewRunning(wordCountSpec("compacted"))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := cluster.Store().File("input")
	all := f.Blocks()
	// Two rounds with compaction after each (the §V-G pattern).
	if _, err := e.MapRound(all[:2], []*Running{job}); err != nil {
		t.Fatal(err)
	}
	before := job.IntermediateRecords()
	if err := job.Compact(sumReducer{}); err != nil {
		t.Fatal(err)
	}
	after := job.IntermediateRecords()
	if after >= before {
		t.Errorf("compaction did not shrink state: %d -> %d", before, after)
	}
	// Exactly the distinct words (2) remain after compaction.
	if after != 2 {
		t.Errorf("records after compaction = %d, want 2", after)
	}
	if _, err := e.MapRound(all[2:], []*Running{job}); err != nil {
		t.Fatal(err)
	}
	if err := job.Compact(sumReducer{}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Finish(job)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Output) != fmt.Sprint(ref.Output) {
		t.Errorf("compacted output %v != reference %v", res.Output, ref.Output)
	}
}

func TestCompactErrors(t *testing.T) {
	cluster, _ := testCluster(t, 2, textBlocks("a"))
	e := NewEngine(cluster)
	job, err := NewRunning(wordCountSpec("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Compact(nil); err == nil {
		t.Error("nil combiner should fail")
	}
	f, _ := cluster.Store().File("input")
	if _, err := e.MapRound(f.Blocks(), []*Running{job}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Finish(job); err != nil {
		t.Fatal(err)
	}
	if err := job.Compact(sumReducer{}); err == nil {
		t.Error("compact after finish should fail")
	}
}

func TestCompactEmptyJobIsNoop(t *testing.T) {
	job, err := NewRunning(wordCountSpec("empty"))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Compact(sumReducer{}); err != nil {
		t.Fatalf("compact on empty job: %v", err)
	}
	if job.IntermediateRecords() != 0 {
		t.Error("empty job should stay empty")
	}
}
