package mapreduce

import (
	"fmt"

	"s3sched/internal/dfs"
)

// Single-task primitives, exported so other execution substrates
// (internal/remote's distributed workers) run exactly the same task
// logic as the in-process engine.

// MapBlockForJob executes one map task: run mapper over the block's
// data, apply the optional combiner, and split the output into width
// reduce partitions.
func MapBlockForJob(block dfs.BlockID, data []byte, mapper Mapper, combiner Reducer, width int) ([][]KV, error) {
	if mapper == nil {
		return nil, fmt.Errorf("mapreduce: MapBlockForJob needs a mapper")
	}
	if width <= 0 {
		return nil, fmt.Errorf("mapreduce: partition width must be positive, got %d", width)
	}
	var raw []KV
	if err := mapper.Map(block, data, func(kv KV) { raw = append(raw, kv) }); err != nil {
		return nil, err
	}
	if combiner != nil && len(raw) > 0 {
		combined, err := combine(raw, combiner)
		if err != nil {
			return nil, fmt.Errorf("combiner: %w", err)
		}
		raw = combined
	}
	return partition(raw, width), nil
}

// ReducePartition executes one reduce task: sort the partition's
// records, group by key, and reduce. A nil reducer yields the sorted
// records unchanged (map-only jobs).
func ReducePartition(records []KV, reducer Reducer) ([]KV, error) {
	sorted := make([]KV, len(records))
	copy(sorted, records)
	sortKVs(sorted)
	if reducer == nil {
		return sorted, nil
	}
	var out []KV
	err := groupByKey(sorted, func(key string, values []string) error {
		return reducer.Reduce(key, values, func(kv KV) { out = append(out, kv) })
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MergeSorted merges per-partition reduce outputs into one sorted
// result slice.
func MergeSorted(partitions [][]KV) []KV {
	var all []KV
	for _, p := range partitions {
		all = append(all, p...)
	}
	sortKVs(all)
	return all
}
