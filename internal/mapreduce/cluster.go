package mapreduce

import (
	"fmt"

	"s3sched/internal/dfs"
)

// Node is one worker machine: a fixed number of map slots (the paper
// configures one per node) and a relative processing speed used by the
// slot checker and the simulator.
type Node struct {
	ID       dfs.NodeID
	MapSlots int
	// Speed is the node's relative processing speed (1.0 = nominal).
	// The real engine does not slow goroutines down; Speed feeds the
	// slot checker's completion-time estimates and the simulator.
	Speed float64

	sem chan struct{} // buffered to MapSlots; one token per running task
}

// acquire takes one map slot, blocking until available.
func (n *Node) acquire() { n.sem <- struct{}{} }

// release returns one map slot.
func (n *Node) release() { <-n.sem }

// Cluster is a set of nodes over a shared block store.
type Cluster struct {
	store *dfs.Store
	nodes []*Node
}

// NewCluster builds a cluster of n identical nodes with the given map
// slots each, matching the store's node count.
func NewCluster(store *dfs.Store, slotsPerNode int) *Cluster {
	if slotsPerNode <= 0 {
		panic("mapreduce: slotsPerNode must be positive")
	}
	nodes := make([]*Node, store.Nodes())
	for i := range nodes {
		nodes[i] = &Node{
			ID:       dfs.NodeID(i),
			MapSlots: slotsPerNode,
			Speed:    1.0,
			sem:      make(chan struct{}, slotsPerNode),
		}
	}
	return &Cluster{store: store, nodes: nodes}
}

// Store returns the block store the cluster computes over.
func (c *Cluster) Store() *dfs.Store { return c.store }

// Nodes returns the cluster's nodes. Callers must not mutate the slice.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns the node with the given id.
func (c *Cluster) Node(id dfs.NodeID) *Node {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		panic(fmt.Sprintf("mapreduce: node %d out of range [0,%d)", id, len(c.nodes)))
	}
	return c.nodes[id]
}

// TotalMapSlots returns the cluster-wide concurrent map task capacity —
// the paper's ideal blocks-per-segment (§IV-B).
func (c *Cluster) TotalMapSlots() int {
	total := 0
	for _, n := range c.nodes {
		total += n.MapSlots
	}
	return total
}

// assignment maps each block of a round to the node that will run its
// map task, plus whether the choice was data-local.
type assignment struct {
	block dfs.BlockID
	node  *Node
	local bool
}

// assignBlocks picks a node per block, preferring replica holders and
// balancing task counts across nodes. This mirrors Hadoop's locality-
// first task assignment closely enough for scheduling purposes: with
// the paper's replication factor 1 and one slot per node, every block
// lands on its holder.
func (c *Cluster) assignBlocks(blocks []dfs.BlockID) []assignment {
	load := make([]int, len(c.nodes))
	out := make([]assignment, 0, len(blocks))
	for _, b := range blocks {
		var best *Node
		local := false
		// Prefer the least-loaded replica holder.
		for _, nid := range c.store.Locations(b) {
			n := c.Node(nid)
			if best == nil || load[n.ID] < load[best.ID] {
				best = n
				local = true
			}
		}
		// Fall back to the globally least-loaded node.
		if best == nil {
			for _, n := range c.nodes {
				if best == nil || load[n.ID] < load[best.ID] {
					best = n
				}
			}
			local = false
		}
		load[best.ID]++
		out = append(out, assignment{block: b, node: best, local: local})
	}
	return out
}
