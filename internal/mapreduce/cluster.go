package mapreduce

import (
	"context"
	"fmt"
	"sync"

	"s3sched/internal/dfs"
)

// Node is one worker machine: a fixed number of map slots (the paper
// configures one per node) and a relative processing speed used by the
// slot checker and the simulator.
type Node struct {
	ID       dfs.NodeID
	MapSlots int
	// Speed is the node's relative processing speed (1.0 = nominal).
	// The real engine does not slow goroutines down; Speed feeds the
	// slot checker's completion-time estimates and the simulator.
	Speed float64

	sem chan struct{} // buffered to MapSlots; one token per running task
}

// acquire takes one map slot, blocking until available.
func (n *Node) acquire() { n.sem <- struct{}{} }

// acquireCtx takes one map slot unless ctx is cancelled first.
func (n *Node) acquireCtx(ctx context.Context) error {
	select {
	case n.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns one map slot.
func (n *Node) release() { <-n.sem }

// Cluster is a set of nodes over a shared block store.
type Cluster struct {
	store *dfs.Store
	nodes []*Node

	healthMu sync.RWMutex
	down     map[dfs.NodeID]bool
}

// NewCluster builds a cluster of n identical nodes with the given map
// slots each, matching the store's node count. An invalid slot count
// returns an error so flag-driven callers can report it.
func NewCluster(store *dfs.Store, slotsPerNode int) (*Cluster, error) {
	if slotsPerNode <= 0 {
		return nil, fmt.Errorf("mapreduce: slots per node must be positive, got %d", slotsPerNode)
	}
	nodes := make([]*Node, store.Nodes())
	for i := range nodes {
		nodes[i] = &Node{
			ID:       dfs.NodeID(i),
			MapSlots: slotsPerNode,
			Speed:    1.0,
			sem:      make(chan struct{}, slotsPerNode),
		}
	}
	return &Cluster{store: store, nodes: nodes}, nil
}

// MustCluster is NewCluster for static configurations known to be
// valid (tests, examples); it panics on error.
func MustCluster(store *dfs.Store, slotsPerNode int) *Cluster {
	c, err := NewCluster(store, slotsPerNode)
	if err != nil {
		panic(err)
	}
	return c
}

// Store returns the block store the cluster computes over.
func (c *Cluster) Store() *dfs.Store { return c.store }

// Nodes returns the cluster's nodes. Callers must not mutate the slice.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns the node with the given id.
func (c *Cluster) Node(id dfs.NodeID) *Node {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		panic(fmt.Sprintf("mapreduce: node %d out of range [0,%d)", id, len(c.nodes)))
	}
	return c.nodes[id]
}

// SetHealth marks a node up or down. Down nodes are skipped by block
// assignment and replica failover until marked up again; the engine's
// blacklist and fault injectors drive this.
func (c *Cluster) SetHealth(id dfs.NodeID, up bool) {
	c.Node(id) // range-check
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	if up {
		delete(c.down, id)
		return
	}
	if c.down == nil {
		c.down = make(map[dfs.NodeID]bool)
	}
	c.down[id] = true
}

// Healthy reports whether the node is currently marked up.
func (c *Cluster) Healthy(id dfs.NodeID) bool {
	c.healthMu.RLock()
	defer c.healthMu.RUnlock()
	return !c.down[id]
}

// HealthyCount returns how many nodes are currently up.
func (c *Cluster) HealthyCount() int {
	c.healthMu.RLock()
	defer c.healthMu.RUnlock()
	return len(c.nodes) - len(c.down)
}

// TotalMapSlots returns the cluster-wide concurrent map task capacity —
// the paper's ideal blocks-per-segment (§IV-B).
func (c *Cluster) TotalMapSlots() int {
	total := 0
	for _, n := range c.nodes {
		total += n.MapSlots
	}
	return total
}

// assignment maps each block of a round to the node that will run its
// map task, plus whether the choice was data-local.
type assignment struct {
	block dfs.BlockID
	node  *Node
	local bool
}

// assignBlocks picks a node per block, preferring replica holders and
// balancing task counts across nodes. This mirrors Hadoop's locality-
// first task assignment closely enough for scheduling purposes: with
// the paper's replication factor 1 and one slot per node, every block
// lands on its holder. Nodes marked down are skipped; if every node is
// down, assignment falls back to ignoring health so the round can fail
// with a read error rather than deadlock.
func (c *Cluster) assignBlocks(blocks []dfs.BlockID) []assignment {
	load := make([]int, len(c.nodes))
	out := make([]assignment, 0, len(blocks))
	anyUp := c.HealthyCount() > 0
	for _, b := range blocks {
		var best *Node
		local := false
		// Prefer the least-loaded healthy replica holder.
		for _, nid := range c.store.Locations(b) {
			n := c.Node(nid)
			if anyUp && !c.Healthy(n.ID) {
				continue
			}
			if best == nil || load[n.ID] < load[best.ID] {
				best = n
				local = true
			}
		}
		// Fall back to the globally least-loaded healthy node.
		if best == nil {
			for _, n := range c.nodes {
				if anyUp && !c.Healthy(n.ID) {
					continue
				}
				if best == nil || load[n.ID] < load[best.ID] {
					best = n
				}
			}
			local = false
		}
		load[best.ID]++
		out = append(out, assignment{block: b, node: best, local: local})
	}
	return out
}
