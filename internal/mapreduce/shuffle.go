package mapreduce

import "hash/fnv"

// partitionOf returns the reduce partition for a key, matching
// Hadoop's default hash partitioner.
func partitionOf(key string, width int) int {
	if width == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(width))
}

// partition splits records into width per-partition slices.
func partition(kvs []KV, width int) [][]KV {
	out := make([][]KV, width)
	for _, kv := range kvs {
		p := partitionOf(kv.Key, width)
		out[p] = append(out[p], kv)
	}
	return out
}

// combine applies a combiner to one map task's raw output: sort, group
// by key, re-emit. Returns the combined records and how many records
// the combiner emitted.
func combine(raw []KV, combiner Reducer) ([]KV, error) {
	sortKVs(raw)
	combined := make([]KV, 0, len(raw))
	err := groupByKey(raw, func(key string, values []string) error {
		return combiner.Reduce(key, values, func(kv KV) {
			combined = append(combined, kv)
		})
	})
	if err != nil {
		return nil, err
	}
	return combined, nil
}
