package mapreduce

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"s3sched/internal/dfs"
)

// testCluster builds a store with one file of text blocks and a
// cluster of nodes with one map slot each.
func testCluster(t *testing.T, nodes int, blocks [][]byte) (*Cluster, *dfs.Store) {
	t.Helper()
	store := dfs.MustStore(nodes, 1)
	if _, err := store.AddFile("input", int64(len(blocks[0])), blocks); err != nil {
		t.Fatalf("AddFile: %v", err)
	}
	return MustCluster(store, 1), store
}

func textBlocks(lines ...string) [][]byte {
	// Pad every block to the length of the longest so block sizes match.
	max := 0
	for _, l := range lines {
		if len(l) > max {
			max = len(l)
		}
	}
	out := make([][]byte, len(lines))
	for i, l := range lines {
		b := make([]byte, max)
		copy(b, l)
		for j := len(l); j < max; j++ {
			b[j] = ' '
		}
		out[i] = b
	}
	return out
}

// wordCountMapper emits (word, "1") for every whitespace-separated word.
type wordCountMapper struct{}

func (wordCountMapper) Map(_ dfs.BlockID, data []byte, emit Emit) error {
	for _, w := range strings.Fields(string(data)) {
		emit(KV{Key: w, Value: "1"})
	}
	return nil
}

func (wordCountMapper) CountInputRecords(data []byte) int64 {
	return int64(len(strings.Fields(string(data))))
}

// sumReducer sums integer values per key.
type sumReducer struct{}

func (sumReducer) Reduce(key string, values []string, emit Emit) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		total += n
	}
	emit(KV{Key: key, Value: strconv.Itoa(total)})
	return nil
}

func wordCountSpec(name string) JobSpec {
	return JobSpec{
		Name:      name,
		File:      "input",
		Mapper:    wordCountMapper{},
		Reducer:   sumReducer{},
		NumReduce: 3,
	}
}

func TestRunJobWordCount(t *testing.T) {
	cluster, _ := testCluster(t, 3, textBlocks(
		"a b a",
		"b c b",
		"c c a",
	))
	e := NewEngine(cluster)
	res, err := e.RunJob(wordCountSpec("wc"))
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	got := res.OutputMap()
	want := map[string]string{"a": "3", "b": "3", "c": "3"}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%q] = %q, want %q", k, got[k], v)
		}
	}
	if len(got) != len(want) {
		t.Errorf("output has %d keys, want %d: %v", len(got), len(want), got)
	}
	// Output must be sorted.
	for i := 1; i < len(res.Output); i++ {
		if res.Output[i].Key < res.Output[i-1].Key {
			t.Fatalf("output not sorted: %v", res.Output)
		}
	}
}

func TestRunJobCounters(t *testing.T) {
	cluster, _ := testCluster(t, 2, textBlocks("a b", "c d"))
	e := NewEngine(cluster)
	res, err := e.RunJob(wordCountSpec("wc"))
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	c := res.Counters
	if got := c.Get(CounterMapTasks); got != 2 {
		t.Errorf("map tasks = %d, want 2", got)
	}
	if got := c.Get(CounterMapInputRecords); got != 4 {
		t.Errorf("map input records = %d, want 4", got)
	}
	if got := c.Get(CounterMapOutputRecords); got != 4 {
		t.Errorf("map output records = %d, want 4", got)
	}
	if got := c.Get(CounterReduceOutRecords); got != 4 {
		t.Errorf("reduce output records = %d, want 4 distinct words", got)
	}
	if got := c.Get(CounterReduceTasks); got != 3 {
		t.Errorf("reduce tasks = %d, want 3", got)
	}
	if c.Get(CounterMapInputBytes) == 0 || c.Get(CounterMapOutputBytes) == 0 {
		t.Error("byte counters should be nonzero")
	}
}

func TestMergedJobsShareScan(t *testing.T) {
	cluster, store := testCluster(t, 4, textBlocks(
		"a b a", "b c b", "c c a", "a a a",
	))
	e := NewEngine(cluster)
	specs := []JobSpec{wordCountSpec("wc1"), wordCountSpec("wc2"), wordCountSpec("wc3")}
	results, err := e.RunMerged(specs)
	if err != nil {
		t.Fatalf("RunMerged: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	// All jobs see the same data, so outputs agree.
	for i := 1; i < 3; i++ {
		if fmt.Sprint(results[i].Output) != fmt.Sprint(results[0].Output) {
			t.Errorf("job %d output differs from job 0", i)
		}
	}
	// One scan per block despite three jobs: that is the shared scan.
	if st := store.Stats(); st.BlockReads != 4 {
		t.Errorf("block reads = %d, want 4 (one per block for the whole batch)", st.BlockReads)
	}
}

func TestUnmergedJobsScanRepeatedly(t *testing.T) {
	cluster, store := testCluster(t, 4, textBlocks("a", "b", "c", "d"))
	e := NewEngine(cluster)
	for i := 0; i < 3; i++ {
		if _, err := e.RunJob(wordCountSpec(fmt.Sprintf("wc%d", i))); err != nil {
			t.Fatalf("RunJob: %v", err)
		}
	}
	if st := store.Stats(); st.BlockReads != 12 {
		t.Errorf("block reads = %d, want 12 (no sharing)", st.BlockReads)
	}
}

func TestMultiRoundSubJobExecution(t *testing.T) {
	// S^3-style: run a job as two map rounds over segment halves, then
	// finish. The result must equal one-shot execution.
	cluster, _ := testCluster(t, 2, textBlocks("a b a", "b c b", "c c a", "a a a"))
	e := NewEngine(cluster)

	oneShot, err := e.RunJob(wordCountSpec("ref"))
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}

	job, err := NewRunning(wordCountSpec("split"))
	if err != nil {
		t.Fatalf("NewRunning: %v", err)
	}
	f, err := cluster.Store().File("input")
	if err != nil {
		t.Fatal(err)
	}
	all := f.Blocks()
	if _, err := e.MapRound(all[:2], []*Running{job}); err != nil {
		t.Fatalf("MapRound 1: %v", err)
	}
	if _, err := e.MapRound(all[2:], []*Running{job}); err != nil {
		t.Fatalf("MapRound 2: %v", err)
	}
	res, err := e.Finish(job)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if fmt.Sprint(res.Output) != fmt.Sprint(oneShot.Output) {
		t.Errorf("split execution output %v != one-shot %v", res.Output, oneShot.Output)
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	blocks := textBlocks("a a a a a a a a", "a a a a a a a a")
	cluster, _ := testCluster(t, 2, blocks)
	e := NewEngine(cluster)

	plain := wordCountSpec("plain")
	res1, err := e.RunJob(plain)
	if err != nil {
		t.Fatal(err)
	}
	withComb := wordCountSpec("comb")
	withComb.Combiner = sumReducer{}
	res2, err := e.RunJob(withComb)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res1.Output) != fmt.Sprint(res2.Output) {
		t.Errorf("combiner changed results: %v vs %v", res1.Output, res2.Output)
	}
	// Two blocks of one distinct word -> 2 combined records total.
	if got := res2.Counters.Get(CounterCombineOutRecords); got != 2 {
		t.Errorf("combine output records = %d, want 2", got)
	}
	r1 := res1.Counters.Get(CounterReduceInputRecords)
	r2 := res2.Counters.Get(CounterReduceInputRecords)
	if r2 >= r1 {
		t.Errorf("combiner did not shrink reduce input: %d vs %d", r2, r1)
	}
}

func TestMapOnlyJob(t *testing.T) {
	cluster, _ := testCluster(t, 2, textBlocks("b a", "d c"))
	e := NewEngine(cluster)
	spec := JobSpec{Name: "ident", File: "input", Mapper: wordCountMapper{}}
	res, err := e.RunJob(spec)
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if len(res.Output) != 4 {
		t.Fatalf("output = %v, want 4 records", res.Output)
	}
	for i := 1; i < len(res.Output); i++ {
		if res.Output[i].Key < res.Output[i-1].Key {
			t.Fatalf("map-only output not sorted: %v", res.Output)
		}
	}
}

func TestMapperErrorPropagates(t *testing.T) {
	cluster, _ := testCluster(t, 2, textBlocks("a", "b"))
	e := NewEngine(cluster)
	boom := errors.New("boom")
	spec := JobSpec{
		Name: "bad", File: "input",
		Mapper: MapperFunc(func(dfs.BlockID, []byte, Emit) error { return boom }),
	}
	if _, err := e.RunJob(spec); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestReducerErrorPropagates(t *testing.T) {
	cluster, _ := testCluster(t, 2, textBlocks("a", "b"))
	e := NewEngine(cluster)
	boom := errors.New("reduce-boom")
	spec := wordCountSpec("bad")
	spec.Reducer = ReducerFunc(func(string, []string, Emit) error { return boom })
	if _, err := e.RunJob(spec); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestCombinerErrorPropagates(t *testing.T) {
	cluster, _ := testCluster(t, 2, textBlocks("a", "b"))
	e := NewEngine(cluster)
	boom := errors.New("combine-boom")
	spec := wordCountSpec("bad")
	spec.Combiner = ReducerFunc(func(string, []string, Emit) error { return boom })
	if _, err := e.RunJob(spec); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []JobSpec{
		{},
		{Name: "x"},
		{Name: "x", File: "f"},
		{Name: "x", File: "f", Mapper: wordCountMapper{}, NumReduce: -1},
	}
	for i, spec := range cases {
		if _, err := NewRunning(spec); err == nil {
			t.Errorf("case %d: NewRunning(%+v) should fail", i, spec)
		}
	}
}

func TestRunMergedRejectsMixedFiles(t *testing.T) {
	store := dfs.MustStore(2, 1)
	if _, err := store.AddFile("a", 2, [][]byte{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.AddFile("b", 2, [][]byte{{3, 4}}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(MustCluster(store, 1))
	specs := []JobSpec{
		{Name: "ja", File: "a", Mapper: wordCountMapper{}},
		{Name: "jb", File: "b", Mapper: wordCountMapper{}},
	}
	if _, err := e.RunMerged(specs); err == nil {
		t.Fatal("RunMerged across files should fail")
	}
	if _, err := e.RunMerged(nil); err == nil {
		t.Fatal("RunMerged with no jobs should fail")
	}
}

func TestMapRoundRequiresJobs(t *testing.T) {
	cluster, _ := testCluster(t, 2, textBlocks("a"))
	e := NewEngine(cluster)
	if _, err := e.MapRound(nil, nil); err == nil {
		t.Fatal("MapRound with no jobs should fail")
	}
}

func TestLocalityAllLocalWithReplicationOne(t *testing.T) {
	cluster, _ := testCluster(t, 4, textBlocks("a", "b", "c", "d"))
	e := NewEngine(cluster)
	job, err := NewRunning(wordCountSpec("wc"))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := cluster.Store().File("input")
	stats, err := e.MapRound(f.Blocks(), []*Running{job})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LocalTasks != 4 || stats.Blocks != 4 || stats.MapTasks != 4 {
		t.Errorf("stats = %+v, want 4 local / 4 blocks / 4 tasks", stats)
	}
	if _, err := e.Finish(job); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFinishPanics(t *testing.T) {
	cluster, _ := testCluster(t, 2, textBlocks("a"))
	e := NewEngine(cluster)
	job, err := NewRunning(wordCountSpec("wc"))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := cluster.Store().File("input")
	if _, err := e.MapRound(f.Blocks(), []*Running{job}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Finish(job); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("second Finish should panic")
		}
	}()
	_, _ = e.Finish(job)
}

func TestMapAfterFinishFails(t *testing.T) {
	cluster, _ := testCluster(t, 2, textBlocks("a", "b"))
	e := NewEngine(cluster)
	job, err := NewRunning(wordCountSpec("wc"))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := cluster.Store().File("input")
	if _, err := e.MapRound(f.Blocks()[:1], []*Running{job}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Finish(job); err != nil {
		t.Fatal(err)
	}
	if _, err := e.MapRound(f.Blocks()[1:], []*Running{job}); err == nil {
		t.Error("MapRound after Finish should fail")
	}
}

func TestClusterSlotsAndNodes(t *testing.T) {
	store := dfs.MustStore(5, 1)
	c := MustCluster(store, 2)
	if got := c.TotalMapSlots(); got != 10 {
		t.Errorf("TotalMapSlots = %d, want 10", got)
	}
	if len(c.Nodes()) != 5 {
		t.Errorf("Nodes = %d, want 5", len(c.Nodes()))
	}
	if c.Node(3).ID != 3 {
		t.Errorf("Node(3).ID = %d", c.Node(3).ID)
	}
	defer func() {
		if recover() == nil {
			t.Error("Node out of range should panic")
		}
	}()
	c.Node(9)
}

func TestNewClusterValidation(t *testing.T) {
	store := dfs.MustStore(2, 1)
	if _, err := NewCluster(store, 0); err == nil {
		t.Error("NewCluster with zero slots should return an error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCluster with zero slots should panic")
		}
	}()
	MustCluster(store, 0)
}

func TestOutputMapDuplicatePanics(t *testing.T) {
	res := &Result{Name: "x", Output: []KV{{Key: "a", Value: "1"}, {Key: "a", Value: "2"}}}
	defer func() {
		if recover() == nil {
			t.Error("duplicate key should panic")
		}
	}()
	res.OutputMap()
}

func TestAssignBlocksBalances(t *testing.T) {
	store := dfs.MustStore(2, 2) // every block on both nodes
	if _, err := store.AddMetaFile("f", 6, 8); err != nil {
		t.Fatal(err)
	}
	c := MustCluster(store, 1)
	f, _ := store.File("f")
	asgs := c.assignBlocks(f.Blocks())
	count := map[dfs.NodeID]int{}
	for _, a := range asgs {
		if !a.local {
			t.Errorf("block %v assigned non-locally with full replication", a.block)
		}
		count[a.node.ID]++
	}
	if count[0] != 3 || count[1] != 3 {
		t.Errorf("assignment unbalanced: %v", count)
	}
}
