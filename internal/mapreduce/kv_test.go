package mapreduce

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestSortKVs(t *testing.T) {
	kvs := []KV{{"b", "2"}, {"a", "9"}, {"b", "1"}, {"a", "1"}}
	sortKVs(kvs)
	want := []KV{{"a", "1"}, {"a", "9"}, {"b", "1"}, {"b", "2"}}
	if fmt.Sprint(kvs) != fmt.Sprint(want) {
		t.Fatalf("sorted = %v, want %v", kvs, want)
	}
}

func TestGroupByKey(t *testing.T) {
	kvs := []KV{{"a", "1"}, {"a", "2"}, {"b", "3"}, {"c", "4"}, {"c", "5"}, {"c", "6"}}
	var groups []string
	err := groupByKey(kvs, func(key string, values []string) error {
		groups = append(groups, fmt.Sprintf("%s:%s", key, strings.Join(values, ",")))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a:1,2", "b:3", "c:4,5,6"}
	if fmt.Sprint(groups) != fmt.Sprint(want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
}

func TestGroupByKeyEmpty(t *testing.T) {
	called := false
	if err := groupByKey(nil, func(string, []string) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called on empty input")
	}
}

func TestGroupByKeyError(t *testing.T) {
	boom := errors.New("x")
	err := groupByKey([]KV{{"a", "1"}}, func(string, []string) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// Property: grouping a sorted record set preserves every value exactly
// once and yields strictly increasing keys.
func TestGroupByKeyProperty(t *testing.T) {
	prop := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8 % 64)
		kvs := make([]KV, n)
		for i := range kvs {
			kvs[i] = KV{
				Key:   fmt.Sprintf("k%d", rng.Intn(8)),
				Value: fmt.Sprintf("v%d", i),
			}
		}
		sortKVs(kvs)
		var keys []string
		total := 0
		err := groupByKey(kvs, func(key string, values []string) error {
			keys = append(keys, key)
			total += len(values)
			return nil
		})
		if err != nil || total != n {
			return false
		}
		return sort.StringsAreSorted(keys) && len(keys) == len(uniq(keys))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func uniq(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func TestPartitionOf(t *testing.T) {
	if partitionOf("anything", 1) != 0 {
		t.Error("width 1 must always map to partition 0")
	}
	// Deterministic.
	if partitionOf("key", 7) != partitionOf("key", 7) {
		t.Error("partitionOf not deterministic")
	}
}

// Property: partition splits records without loss and each record lands
// in the partition its key hashes to.
func TestPartitionProperty(t *testing.T) {
	prop := func(seed int64, width8 uint8) bool {
		width := int(width8%8) + 1
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100)
		kvs := make([]KV, n)
		for i := range kvs {
			kvs[i] = KV{Key: fmt.Sprintf("k%d", rng.Intn(20)), Value: fmt.Sprint(i)}
		}
		parts := partition(kvs, width)
		if len(parts) != width {
			return false
		}
		total := 0
		for p, part := range parts {
			for _, kv := range part {
				if partitionOf(kv.Key, width) != p {
					return false
				}
			}
			total += len(part)
		}
		return total == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCombineHelper(t *testing.T) {
	raw := []KV{{"a", "1"}, {"b", "1"}, {"a", "1"}, {"a", "1"}}
	out, err := combine(raw, sumReducer{})
	if err != nil {
		t.Fatal(err)
	}
	want := []KV{{"a", "3"}, {"b", "1"}}
	if fmt.Sprint(out) != fmt.Sprint(want) {
		t.Fatalf("combine = %v, want %v", out, want)
	}
}

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Add("x", 2)
	c.Add("x", 3)
	c.Add("y", 1)
	if c.Get("x") != 5 || c.Get("y") != 1 || c.Get("z") != 0 {
		t.Fatalf("counters = %v", c.Snapshot())
	}
	other := NewCounters()
	other.Add("x", 10)
	other.Add("w", 7)
	c.Merge(other)
	if c.Get("x") != 15 || c.Get("w") != 7 {
		t.Fatalf("after merge = %v", c.Snapshot())
	}
	s := c.String()
	for _, name := range []string{"w", "x", "y"} {
		if !strings.Contains(s, name) {
			t.Errorf("String() missing %q:\n%s", name, s)
		}
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 800 {
		t.Fatalf("n = %d, want 800", got)
	}
}

func TestKVBytes(t *testing.T) {
	if got := kvBytes([]KV{{"ab", "c"}, {"", "xyz"}}); got != 6 {
		t.Fatalf("kvBytes = %d, want 6", got)
	}
	if kvBytes(nil) != 0 {
		t.Fatal("kvBytes(nil) != 0")
	}
}
