// Package mapreduce is a from-scratch, in-process MapReduce framework:
// jobs made of map tasks over DFS blocks and reduce tasks over hash
// partitions, executed on a simulated cluster of nodes with bounded
// map slots. It is the execution substrate the paper's schedulers
// drive.
//
// The framework supports *merged* execution — one physical scan of a
// block feeding the mappers of several jobs — which is the mechanism
// both MRShare-style batching and S^3 sub-job batching rely on
// (paper §IV-D). Scan sharing is real here: a merged round issues one
// dfs.ReadBlock per block regardless of how many jobs consume it.
package mapreduce

import "sort"

// KV is one key/value record.
type KV struct {
	Key   string
	Value string
}

// Emit receives records produced by mappers, combiners and reducers.
type Emit func(kv KV)

// sortKVs orders records by key, then value, for deterministic reduce
// input and deterministic job output.
func sortKVs(kvs []KV) {
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].Key != kvs[j].Key {
			return kvs[i].Key < kvs[j].Key
		}
		return kvs[i].Value < kvs[j].Value
	})
}

// groupByKey walks sorted records and invokes fn once per distinct key
// with all its values. The values slice is reused across calls; fn must
// not retain it.
func groupByKey(sorted []KV, fn func(key string, values []string) error) error {
	var values []string
	for i := 0; i < len(sorted); {
		key := sorted[i].Key
		values = values[:0]
		for i < len(sorted) && sorted[i].Key == key {
			values = append(values, sorted[i].Value)
			i++
		}
		if err := fn(key, values); err != nil {
			return err
		}
	}
	return nil
}
