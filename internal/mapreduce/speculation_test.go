package mapreduce

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"s3sched/internal/dfs"
)

// stragglerMapper behaves like wordCountMapper but stalls the first
// attempt on block 0 — the signature of a slow node. A speculative
// duplicate of that task does not stall, so speculation wins.
type stragglerMapper struct {
	stallFirst *atomic.Bool
	stall      time.Duration
}

func (m stragglerMapper) Map(block dfs.BlockID, data []byte, emit Emit) error {
	if block.Index == 0 && m.stallFirst.CompareAndSwap(false, true) {
		time.Sleep(m.stall)
	}
	for _, w := range strings.Fields(string(data)) {
		emit(KV{Key: w, Value: "1"})
	}
	return nil
}

func TestSpeculationDuplicatesStraggler(t *testing.T) {
	blocks := textBlocks("a a", "b b", "c c", "d d", "e e", "f f", "g g", "h h")
	cluster, _ := testCluster(t, 8, blocks)
	e := NewEngine(cluster)
	e.EnableSpeculation(3)

	var stalled atomic.Bool
	spec := JobSpec{
		Name:    "spec",
		File:    "input",
		Mapper:  stragglerMapper{stallFirst: &stalled, stall: 300 * time.Millisecond},
		Reducer: sumReducer{},
	}
	job, err := NewRunning(spec)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := cluster.Store().File("input")

	start := time.Now()
	stats, err := e.MapRound(f.Blocks(), []*Running{job})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if stats.Speculative == 0 {
		t.Fatal("no speculative attempt launched for the straggler")
	}
	// The duplicate finishes immediately, so the round must complete
	// well before the 300ms stall expires... but the stalled goroutine
	// is still awaited; what must hold is correctness and that the
	// duplicate committed exactly once.
	res, err := e.Finish(job)
	if err != nil {
		t.Fatal(err)
	}
	// 8 blocks x 2 words, each word distinct per block -> 8 keys of
	// count 2 regardless of how many attempts ran.
	if len(res.Output) != 8 {
		t.Fatalf("output = %v", res.Output)
	}
	for _, kv := range res.Output {
		if kv.Value != "2" {
			t.Fatalf("speculation double-committed: %v", res.Output)
		}
	}
	if got := res.Counters.Get(CounterMapTasks); got != 8 {
		t.Fatalf("map tasks committed = %d, want 8 (one per block)", got)
	}
	_ = elapsed
}

func TestSpeculationOffByDefault(t *testing.T) {
	blocks := textBlocks("a", "b", "c", "d")
	cluster, _ := testCluster(t, 4, blocks)
	e := NewEngine(cluster)
	job, err := NewRunning(wordCountSpec("plain"))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := cluster.Store().File("input")
	stats, err := e.MapRound(f.Blocks(), []*Running{job})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Speculative != 0 {
		t.Fatalf("speculative = %d with speculation off", stats.Speculative)
	}
	if _, err := e.Finish(job); err != nil {
		t.Fatal(err)
	}
}

func TestEnableSpeculationValidation(t *testing.T) {
	e := NewEngine(MustCluster(dfsStore(t, 2), 1))
	defer func() {
		if recover() == nil {
			t.Error("factor < 1 should panic")
		}
	}()
	e.EnableSpeculation(0.5)
}

func dfsStore(t *testing.T, nodes int) *dfs.Store {
	t.Helper()
	return dfs.MustStore(nodes, 1)
}

func TestMedianDuration(t *testing.T) {
	ds := []time.Duration{5, 1, 9}
	if got := medianDuration(ds); got != 5 {
		t.Fatalf("median = %v, want 5", got)
	}
	if got := medianDuration([]time.Duration{4, 2}); got != 4 {
		t.Fatalf("median of 2 = %v, want upper middle 4", got)
	}
	// Input must not be mutated.
	if fmt.Sprint(ds) != fmt.Sprint([]time.Duration{5, 1, 9}) {
		t.Fatal("median mutated its input")
	}
}
