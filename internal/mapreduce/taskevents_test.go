package mapreduce

import (
	"sync"
	"testing"
)

// TestTaskObserverCommits asserts every block commits exactly one map
// attempt and reports it to the task observer with the batch width.
func TestTaskObserverCommits(t *testing.T) {
	cluster, _ := testCluster(t, 3, textBlocks("a b", "c d", "e f", "g h"))
	e := NewEngine(cluster)

	var mu sync.Mutex
	var events []TaskEvent
	e.SetTaskObserver(func(ev TaskEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})

	j1, err := NewRunning(wordCountSpec("wc1"))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := NewRunning(wordCountSpec("wc2"))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := cluster.Store().File("input")
	if _, err := e.MapRound(f.Blocks(), []*Running{j1, j2}); err != nil {
		t.Fatalf("MapRound: %v", err)
	}

	if len(events) != len(f.Blocks()) {
		t.Fatalf("events = %d, want %d (one commit per block)", len(events), len(f.Blocks()))
	}
	seen := map[string]bool{}
	for _, ev := range events {
		if ev.Kind != TaskCommitted {
			t.Errorf("event kind = %q, want %q", ev.Kind, TaskCommitted)
		}
		if ev.Jobs != 2 {
			t.Errorf("event jobs = %d, want 2", ev.Jobs)
		}
		if ev.Attempt != 1 {
			t.Errorf("event attempt = %d, want 1 (no faults injected)", ev.Attempt)
		}
		key := ev.Block.String()
		if seen[key] {
			t.Errorf("block %v committed twice", ev.Block)
		}
		seen[key] = true
	}

	// Clearing the observer stops delivery.
	e.SetTaskObserver(nil)
	j3, err := NewRunning(wordCountSpec("wc3"))
	if err != nil {
		t.Fatal(err)
	}
	before := len(events)
	if _, err := e.MapRound(f.Blocks(), []*Running{j3}); err != nil {
		t.Fatalf("MapRound: %v", err)
	}
	if len(events) != before {
		t.Errorf("events after clearing observer: %d, want %d", len(events), before)
	}
}
