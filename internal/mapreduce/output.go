package mapreduce

import (
	"bytes"
	"fmt"
	"strings"

	"s3sched/internal/dfs"
)

// Job output persistence: a completed Result can be written back into
// the block store as a new file — the way Hadoop jobs leave their
// reduce output in HDFS — so downstream jobs can scan it. Records are
// serialized one per line as "key\tvalue\n"; keys and values must not
// contain tabs or newlines.

// StoreResult writes res into store as a file named name with the
// given block size, and returns the new file. Every block except the
// last is exactly blockSize bytes; records never straddle blocks
// (blocks are padded with spaces), so any block can be mapped
// independently — the same framing the workload generators use.
func StoreResult(store *dfs.Store, name string, blockSize int64, res *Result) (*dfs.File, error) {
	if res == nil {
		return nil, fmt.Errorf("mapreduce: nil result")
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("mapreduce: block size must be positive, got %d", blockSize)
	}
	var blocks [][]byte
	cur := bytes.NewBuffer(make([]byte, 0, blockSize))
	flush := func() {
		for int64(cur.Len()) < blockSize {
			cur.WriteByte(' ')
		}
		b := make([]byte, cur.Len())
		copy(b, cur.Bytes())
		blocks = append(blocks, b)
		cur.Reset()
	}
	for _, kv := range res.Output {
		if strings.ContainsAny(kv.Key, "\t\n") || strings.ContainsAny(kv.Value, "\t\n") {
			return nil, fmt.Errorf("mapreduce: record %q/%q contains tab or newline", kv.Key, kv.Value)
		}
		line := kv.Key + "\t" + kv.Value + "\n"
		if int64(len(line)) > blockSize {
			return nil, fmt.Errorf("mapreduce: record %q longer than block size %d", kv.Key, blockSize)
		}
		if int64(cur.Len()+len(line)) > blockSize {
			flush()
		}
		cur.WriteString(line)
	}
	if cur.Len() > 0 || len(blocks) == 0 {
		if cur.Len() == 0 {
			cur.WriteByte('\n') // an empty result still needs one block
		}
		flush()
	}
	return store.AddFile(name, blockSize, blocks)
}

// KVLineMapper parses "key\tvalue" lines — the framing StoreResult
// writes — and hands each record to Each, which decides what to emit.
// It is the input adapter for jobs chained over another job's output.
type KVLineMapper struct {
	Each func(key, value string, emit Emit) error
}

var _ Mapper = KVLineMapper{}

// Map implements Mapper.
func (m KVLineMapper) Map(_ dfs.BlockID, data []byte, emit Emit) error {
	if m.Each == nil {
		return fmt.Errorf("mapreduce: KVLineMapper needs an Each function")
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		tab := bytes.IndexByte(line, '\t')
		if tab < 0 {
			return fmt.Errorf("mapreduce: malformed kv line %q", line)
		}
		if err := m.Each(string(line[:tab]), string(line[tab+1:]), emit); err != nil {
			return err
		}
	}
	return nil
}
