package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"s3sched/internal/dfs"
	"s3sched/internal/faults"
)

// replicatedCluster is testCluster with a replication factor.
func replicatedCluster(t *testing.T, nodes, replicas int, blocks [][]byte) (*Cluster, *dfs.Store) {
	t.Helper()
	store, err := dfs.NewStore(nodes, replicas)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	if _, err := store.AddFile("input", int64(len(blocks[0])), blocks); err != nil {
		t.Fatalf("AddFile: %v", err)
	}
	return MustCluster(store, 1), store
}

func allBlocks(t *testing.T, store *dfs.Store) []dfs.BlockID {
	t.Helper()
	f, err := store.File("input")
	if err != nil {
		t.Fatal(err)
	}
	return f.Blocks()
}

func fastRetries(maxAttempts, blacklistAfter int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    maxAttempts,
		Backoff:        time.Microsecond,
		MaxBackoff:     10 * time.Microsecond,
		BlacklistAfter: blacklistAfter,
	}
}

// TestReadErrorLosesRound: a block whose every read attempt fails
// exhausts the retry budget and surfaces as *BlockLostError.
func TestReadErrorLosesRound(t *testing.T) {
	cluster, store := replicatedCluster(t, 2, 1, textBlocks("a b", "c d"))
	boom := errors.New("disk gone")
	store.SetReadFault(func(id dfs.BlockID, node dfs.NodeID) error {
		if id.Index == 1 {
			return boom
		}
		return nil
	})
	e := NewEngine(cluster)
	if err := e.SetRetryPolicy(fastRetries(3, 0)); err != nil {
		t.Fatal(err)
	}
	job, err := NewRunning(wordCountSpec("wc"))
	if err != nil {
		t.Fatal(err)
	}
	stats, jobErrs, roundErr := e.MapRoundCtx(t.Context(), allBlocks(t, store), []*Running{job})
	if roundErr == nil {
		t.Fatal("MapRoundCtx succeeded despite unreadable block")
	}
	var lost *BlockLostError
	if !errors.As(roundErr, &lost) {
		t.Fatalf("round error %v, want *BlockLostError", roundErr)
	}
	if lost.Block.Index != 1 || lost.Attempts != 3 {
		t.Errorf("lost %v after %d attempts, want block 1 after 3", lost.Block, lost.Attempts)
	}
	if !errors.Is(roundErr, boom) {
		t.Errorf("round error %v does not wrap the read error", roundErr)
	}
	if jobErrs[0] != nil {
		t.Errorf("job error %v, want nil (the scan failed, not the job)", jobErrs[0])
	}
	if stats.FailedAttempts < 3 {
		t.Errorf("FailedAttempts = %d, want >= 3", stats.FailedAttempts)
	}
}

// TestFailoverToReplicaHolder: when the first holder's reads fail, the
// retry chain moves to a surviving node that also holds the block.
func TestFailoverToReplicaHolder(t *testing.T) {
	cluster, store := replicatedCluster(t, 4, 2, textBlocks("a b a b"))
	b := allBlocks(t, store)[0]

	var mu sync.Mutex
	var badNode dfs.NodeID = -1 // fail the first node that tries the block
	var succeeded dfs.NodeID = -1
	store.SetReadFault(func(id dfs.BlockID, node dfs.NodeID) error {
		mu.Lock()
		defer mu.Unlock()
		if badNode == -1 {
			badNode = node
		}
		if node == badNode {
			return errors.New("injected")
		}
		succeeded = node
		return nil
	})

	e := NewEngine(cluster)
	if err := e.SetRetryPolicy(fastRetries(4, 0)); err != nil {
		t.Fatal(err)
	}
	job, err := NewRunning(wordCountSpec("wc"))
	if err != nil {
		t.Fatal(err)
	}
	stats, jobErrs, roundErr := e.MapRoundCtx(t.Context(), []dfs.BlockID{b}, []*Running{job})
	if roundErr != nil || jobErrs[0] != nil {
		t.Fatalf("round failed: round=%v job=%v", roundErr, jobErrs[0])
	}
	mu.Lock()
	defer mu.Unlock()
	if succeeded == -1 || succeeded == badNode {
		t.Fatalf("no failover: first=%d succeeded=%d", badNode, succeeded)
	}
	// The first failover choice prefers an untried replica holder; with
	// 2 replicas the winning node must be the other holder.
	if !store.HasLocal(b, succeeded) {
		t.Errorf("failover landed on node %d which does not hold %v (holders %v)",
			succeeded, b, store.Locations(b))
	}
	if stats.Retries == 0 {
		t.Errorf("stats.Retries = 0, want > 0")
	}
}

// TestBlacklistAfterConsecutiveFailures: K consecutive read failures on
// one node mark it unhealthy and later work avoids it.
func TestBlacklistAfterConsecutiveFailures(t *testing.T) {
	cluster, store := replicatedCluster(t, 3, 2, textBlocks("a b", "c d", "e f", "g h"))
	store.SetReadFault(func(id dfs.BlockID, node dfs.NodeID) error {
		if node == 0 {
			return errors.New("node 0 is sick")
		}
		return nil
	})
	e := NewEngine(cluster)
	if err := e.SetRetryPolicy(fastRetries(6, 2)); err != nil {
		t.Fatal(err)
	}
	var events []FaultEvent
	var evMu sync.Mutex
	e.SetFaultObserver(func(ev FaultEvent) {
		evMu.Lock()
		events = append(events, ev)
		evMu.Unlock()
	})
	job, err := NewRunning(wordCountSpec("wc"))
	if err != nil {
		t.Fatal(err)
	}
	stats, jobErrs, roundErr := e.MapRoundCtx(t.Context(), allBlocks(t, store), []*Running{job})
	if roundErr != nil || jobErrs[0] != nil {
		t.Fatalf("round failed: round=%v job=%v", roundErr, jobErrs[0])
	}
	if cluster.Healthy(0) {
		t.Error("node 0 still healthy after repeated failures")
	}
	if stats.Blacklisted != 1 {
		t.Errorf("stats.Blacklisted = %d, want 1", stats.Blacklisted)
	}
	evMu.Lock()
	defer evMu.Unlock()
	var down, failed int
	for _, ev := range events {
		switch ev.Kind {
		case FaultNodeDown:
			down++
			if ev.Node != 0 {
				t.Errorf("blacklisted node %d, want 0", ev.Node)
			}
		case FaultAttemptFailed:
			failed++
		}
	}
	if down != 1 {
		t.Errorf("node-down events = %d, want 1", down)
	}
	if failed == 0 {
		t.Error("no attempt-failed events observed")
	}
}

// TestMapRoundIsolatesJobFailure: one job's mapper error must not
// disturb the co-batched job sharing the scan.
func TestMapRoundIsolatesJobFailure(t *testing.T) {
	cluster, store := replicatedCluster(t, 2, 1, textBlocks("a b a", "b c b"))
	e := NewEngine(cluster)
	good, err := NewRunning(wordCountSpec("good"))
	if err != nil {
		t.Fatal(err)
	}
	badSpec := wordCountSpec("bad")
	badSpec.Mapper = failingMapper{}
	bad, err := NewRunning(badSpec)
	if err != nil {
		t.Fatal(err)
	}
	_, jobErrs, roundErr := e.MapRoundCtx(t.Context(), allBlocks(t, store), []*Running{good, bad})
	if roundErr != nil {
		t.Fatalf("round error %v, want nil (job failure is isolated)", roundErr)
	}
	if jobErrs[0] != nil {
		t.Errorf("good job error %v, want nil", jobErrs[0])
	}
	if jobErrs[1] == nil {
		t.Error("bad job reported no error")
	}
	res, err := e.Finish(good)
	if err != nil {
		t.Fatalf("Finish(good): %v", err)
	}
	if got := res.OutputMap()["b"]; got != "3" {
		t.Errorf("good job count[b] = %q, want 3", got)
	}
}

type failingMapper struct{}

func (failingMapper) Map(_ dfs.BlockID, _ []byte, _ Emit) error {
	return errors.New("mapper exploded")
}

// TestFaultyRunMatchesCleanRun is the determinism property: with a
// deterministic injector forcing retries (but bounded so every block
// eventually reads), the job's output is byte-identical to a fault-free
// run.
func TestFaultyRunMatchesCleanRun(t *testing.T) {
	blocks := textBlocks(
		"a b a c", "b c b a", "c c a b", "a a a c",
		"b b c a", "c a b b", "a c c c", "b a a b",
	)

	run := func(inject bool) string {
		cluster, store := replicatedCluster(t, 4, 2, blocks)
		if inject {
			inj, err := faults.New(faults.Config{
				Seed:                7,
				ReadFailRate:        0.4,
				MaxInjectedPerBlock: 2, // every retry chain converges
			})
			if err != nil {
				t.Fatal(err)
			}
			store.SetReadFault(inj.FailRead)
		}
		e := NewEngine(cluster)
		if err := e.SetRetryPolicy(fastRetries(8, 0)); err != nil {
			t.Fatal(err)
		}
		job, err := NewRunning(wordCountSpec("wc"))
		if err != nil {
			t.Fatal(err)
		}
		all := allBlocks(t, store)
		// Two rounds, like an S^3 split execution.
		if _, jobErrs, roundErr := e.MapRoundCtx(t.Context(), all[:4], []*Running{job}); roundErr != nil || jobErrs[0] != nil {
			t.Fatalf("round 1 (inject=%v): round=%v job=%v", inject, roundErr, jobErrs[0])
		}
		if _, jobErrs, roundErr := e.MapRoundCtx(t.Context(), all[4:], []*Running{job}); roundErr != nil || jobErrs[0] != nil {
			t.Fatalf("round 2 (inject=%v): round=%v job=%v", inject, roundErr, jobErrs[0])
		}
		res, err := e.Finish(job)
		if err != nil {
			t.Fatalf("Finish (inject=%v): %v", inject, err)
		}
		return fmt.Sprint(res.Output)
	}

	clean := run(false)
	faulty := run(true)
	if clean != faulty {
		t.Errorf("faulty run diverged:\nclean:  %s\nfaulty: %s", clean, faulty)
	}
}

// TestMapRoundCtxCancellation: a cancelled context stops the round and
// surfaces as the round error without hanging.
func TestMapRoundCtxCancellation(t *testing.T) {
	cluster, store := replicatedCluster(t, 2, 1, textBlocks("a b", "c d"))
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	e := NewEngine(cluster)
	job, err := NewRunning(wordCountSpec("wc"))
	if err != nil {
		t.Fatal(err)
	}
	_, _, roundErr := e.MapRoundCtx(ctx, allBlocks(t, store), []*Running{job})
	if !errors.Is(roundErr, context.Canceled) {
		t.Fatalf("round error %v, want context.Canceled", roundErr)
	}
}
