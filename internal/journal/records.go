package journal

import (
	"encoding/json"
	"fmt"

	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// Record kinds, in rough lifecycle order. Unknown kinds are skipped on
// replay so an old binary can read a newer journal's prefix.
const (
	// KindJobAdmitted: a job was accepted by the admission layer. The
	// record is appended under the admission lock *before* POST /jobs
	// is acked, so an acked job is never lost.
	KindJobAdmitted = "job-admitted"
	// KindShuffleCommitted: the master merged one segment's map output
	// into a job's shuffle partitions. Appended at the per-(job,
	// segment) dedup commit point, so replay reconstructs exactly the
	// partitions the in-memory table held.
	KindShuffleCommitted = "shuffle-committed"
	// KindJobResult: a job's reduce phase completed and its merged
	// output is final.
	KindJobResult = "job-result"
	// KindRoundCommitted: the engine retired a round; carries the
	// scheduler snapshot taken at the round boundary.
	KindRoundCommitted = "round-committed"
	// KindJobDone / KindJobFailed: the engine settled a job's fate.
	KindJobDone   = "job-done"
	KindJobFailed = "job-failed"
	// KindStageMaterialized: a finished DAG stage's reduce output was
	// written into the cluster as a derived file and its segment plan
	// registered, making dependent stages runnable. Appended before the
	// dependents are released, so recovery knows which derived files
	// the crashed run's scheduler state may reference.
	KindStageMaterialized = "stage-materialized"
	// KindCheckpoint: a graceful shutdown (SIGTERM) wrote a final
	// scheduler snapshot before draining.
	KindCheckpoint = "checkpoint"
	// KindRecovered: a booting master finished replaying this journal
	// and resumed. Counting these yields recoveries-to-date.
	KindRecovered = "recovered"
)

// JobAdmittedRecord persists everything needed to re-register and, if
// necessary, resubmit a job: the scheduler meta and the executable
// JobRef fields (factory registry key, param, reduce width).
type JobAdmittedRecord struct {
	ID        scheduler.JobID   `json:"id"`
	Name      string            `json:"name"`
	Factory   string            `json:"factory"`
	Param     string            `json:"param,omitempty"`
	NumReduce int               `json:"numReduce"`
	Meta      scheduler.JobMeta `json:"meta"`
	// DependsOn records the job's DAG dependencies: recovery must hold
	// the job until they settle (or release it if they already have).
	DependsOn []scheduler.JobID `json:"dependsOn,omitempty"`
}

// ShuffleCommittedRecord persists one segment's merged map output for
// one job: Parts[p] is the slice appended to reduce partition p.
type ShuffleCommittedRecord struct {
	Job     scheduler.JobID  `json:"job"`
	Segment int              `json:"segment"`
	File    string           `json:"file,omitempty"`
	Parts   [][]mapreduce.KV `json:"parts"`
}

// JobResultRecord persists a completed job's final merged output.
type JobResultRecord struct {
	Job    scheduler.JobID `json:"job"`
	Output []mapreduce.KV  `json:"output"`
}

// StageMaterializedRecord marks a producer stage's output as installed
// cluster-wide under File. The bytes themselves are not journaled —
// they re-derive deterministically from the job-result record — only
// the geometry the derived file was cut into.
type StageMaterializedRecord struct {
	Job       scheduler.JobID `json:"job"`
	File      string          `json:"file"`
	BlockSize int64           `json:"blockSize"`
	Blocks    int             `json:"blocks"`
}

// RoundCommittedRecord marks a retired round and carries the
// scheduler state at the boundary. Snapshot may be nil when the
// scheduler could not snapshot (e.g. pipelined reduces still
// draining); recovery then falls back to the latest earlier snapshot
// or to resubmission.
type RoundCommittedRecord struct {
	Segment  int                 `json:"segment"`
	Jobs     []scheduler.JobID   `json:"jobs"`
	At       vclock.Time         `json:"at"`
	Requeues int                 `json:"requeues,omitempty"`
	Snapshot *scheduler.Snapshot `json:"snapshot,omitempty"`
}

// JobEndRecord is the payload of both job-done and job-failed.
type JobEndRecord struct {
	Job scheduler.JobID `json:"job"`
	At  vclock.Time     `json:"at"`
}

// CheckpointRecord is the graceful-shutdown snapshot.
type CheckpointRecord struct {
	At       vclock.Time         `json:"at"`
	Requeues int                 `json:"requeues,omitempty"`
	Snapshot *scheduler.Snapshot `json:"snapshot,omitempty"`
}

// RecoveredRecord notes one completed recovery.
type RecoveredRecord struct {
	Resumed   int `json:"resumed"`
	Restarted int `json:"restarted"`
}

// decode unmarshals an entry's payload into out with a kind-tagged
// error.
func decode(e Entry, out any) error {
	if err := json.Unmarshal(e.Data, out); err != nil {
		return fmt.Errorf("journal: decoding %s payload: %w", e.Kind, err)
	}
	return nil
}
