package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes — seeded with valid logs,
// truncations, bit flips and duplicated tails — through Replay and
// Open. The invariants: neither ever panics; Replay's only non-nil
// error on arbitrary input is a typed *CorruptError; and Open always
// repairs the file to a cleanly appendable state.
func FuzzJournalReplay(f *testing.F) {
	// Seed: a valid two-record journal and mutations of it.
	valid := func() []byte {
		dir, err := os.MkdirTemp("", "seed")
		if err != nil {
			f.Fatal(err)
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "j.wal")
		j, _, err := Open(path, Options{Sync: SyncNever})
		if err != nil {
			f.Fatal(err)
		}
		if err := j.AppendRecord(KindJobAdmitted, JobAdmittedRecord{ID: 1, Factory: "wordcount", NumReduce: 2}); err != nil {
			f.Fatal(err)
		}
		if err := j.AppendRecord(KindJobDone, JobEndRecord{Job: 1, At: 2}); err != nil {
			f.Fatal(err)
		}
		j.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                             // torn tail
	f.Add(append(append([]byte{}, valid...), valid[8:]...)) // duplicated tail
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(make([]byte, 64)) // zero-filled
	f.Add(magic[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := Replay(bytes.NewReader(data))
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Replay returned a non-CorruptError: %v", err)
			}
		}
		// Every surfaced entry decoded from an intact frame; folding
		// them must not panic either (unknown kinds are skipped, known
		// kinds decoded from checksummed JSON).
		_, _ = ReduceEntries(entries)

		// Open on the same bytes must repair to an appendable file.
		path := filepath.Join(t.TempDir(), "j.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, rep, err := Open(path, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("Open after repair path: %v", err)
		}
		if len(rep.Entries) != len(entries) {
			t.Fatalf("Open replayed %d entries, Replay %d", len(rep.Entries), len(entries))
		}
		if err := j.AppendRecord(KindRecovered, RecoveredRecord{}); err != nil {
			t.Fatalf("append to repaired journal: %v", err)
		}
		j.Close()
		j2, rep2, err := Open(path, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("reopen repaired journal: %v", err)
		}
		if rep2.Corruption != nil {
			t.Fatalf("repaired journal still corrupt: %v", rep2.Corruption)
		}
		if len(rep2.Entries) != len(entries)+1 {
			t.Fatalf("repaired journal replayed %d entries, want %d", len(rep2.Entries), len(entries)+1)
		}
		j2.Close()
	})
}
