package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
)

func openT(t *testing.T, path string, opts Options) (*Journal, *Replayed) {
	t.Helper()
	j, rep, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return j, rep
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, rep := openT(t, path, Options{})
	if len(rep.Entries) != 0 || rep.Corruption != nil {
		t.Fatalf("fresh journal replayed %v / %v", rep.Entries, rep.Corruption)
	}
	records := []JobAdmittedRecord{
		{ID: 1, Name: "wc-th", Factory: "wordcount", Param: "th", NumReduce: 2},
		{ID: 2, Name: "sel", Factory: "selection", Param: "42", NumReduce: 4},
	}
	for _, r := range records {
		if err := j.AppendRecord(KindJobAdmitted, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.AppendRecord(KindJobDone, JobEndRecord{Job: 1, At: 12.5}); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Appends != 3 || st.Bytes <= 8 {
		t.Fatalf("stats = %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{Kind: "x"}); err == nil {
		t.Fatal("append after close succeeded")
	}

	// Reopen: every record comes back in order, and appends continue.
	j2, rep2 := openT(t, path, Options{})
	defer j2.Close()
	if rep2.Corruption != nil {
		t.Fatalf("clean file reported corruption: %v", rep2.Corruption)
	}
	kinds := []string{KindJobAdmitted, KindJobAdmitted, KindJobDone}
	if len(rep2.Entries) != len(kinds) {
		t.Fatalf("replayed %d entries, want %d", len(rep2.Entries), len(kinds))
	}
	for i, e := range rep2.Entries {
		if e.Kind != kinds[i] {
			t.Fatalf("entry %d kind = %s, want %s", i, e.Kind, kinds[i])
		}
	}
	var rec JobAdmittedRecord
	if err := json.Unmarshal(rep2.Entries[1].Data, &rec); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, records[1]) {
		t.Fatalf("entry 1 = %+v, want %+v", rec, records[1])
	}
	if err := j2.AppendRecord(KindJobFailed, JobEndRecord{Job: 2, At: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRepairsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path, Options{})
	for i := 1; i <= 3; i++ {
		if err := j.AppendRecord(KindJobAdmitted, JobAdmittedRecord{ID: scheduler.JobID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Tear the last record: keep all but its final 3 bytes.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	j2, rep := openT(t, path, Options{})
	if len(rep.Entries) != 2 {
		t.Fatalf("replayed %d entries after tear, want 2", len(rep.Entries))
	}
	if rep.Corruption == nil {
		t.Fatal("torn tail not reported")
	}
	// The repaired file appends cleanly and replays 3 records next time.
	if err := j2.AppendRecord(KindJobAdmitted, JobAdmittedRecord{ID: 9}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, rep3 := openT(t, path, Options{})
	if len(rep3.Entries) != 3 || rep3.Corruption != nil {
		t.Fatalf("after repair+append: %d entries, corruption %v", len(rep3.Entries), rep3.Corruption)
	}
}

func TestReplayZeroFilledTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path, Options{})
	if err := j.AppendRecord(KindJobAdmitted, JobAdmittedRecord{ID: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	entries, rerr := Replay(bytes.NewReader(data))
	var ce *CorruptError
	if !errors.As(rerr, &ce) {
		t.Fatalf("zero tail error = %v, want *CorruptError", rerr)
	}
	if len(entries) != 1 {
		t.Fatalf("replayed %d entries, want 1", len(entries))
	}
}

func TestReplayChecksumMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path, Options{})
	if err := j.AppendRecord(KindJobDone, JobEndRecord{Job: 7}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0x40 // flip a payload bit
	_, rerr := Replay(bytes.NewReader(data))
	var ce *CorruptError
	if !errors.As(rerr, &ce) || ce.Reason != "checksum mismatch" {
		t.Fatalf("bit flip error = %v, want checksum mismatch", rerr)
	}
}

func TestReplayRejectsWrongHeader(t *testing.T) {
	_, err := Replay(bytes.NewReader([]byte("definitely not a journal")))
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Offset != 0 {
		t.Fatalf("wrong header error = %v", err)
	}
}

func TestReplayImplausibleLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], maxRecord+1)
	buf.Write(frame[:])
	_, err := Replay(&buf)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("oversized length error = %v", err)
	}
}

func TestOnAppendHook(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	var last Stats
	j, _ := openT(t, path, Options{Sync: SyncNever, OnAppend: func(s Stats) { last = s }})
	defer j.Close()
	for i := 0; i < 3; i++ {
		if err := j.AppendRecord(KindRecovered, RecoveredRecord{}); err != nil {
			t.Fatal(err)
		}
	}
	if last.Appends != 3 || last.Bytes != j.Stats().Bytes {
		t.Fatalf("hook saw %+v, stats %+v", last, j.Stats())
	}
}

func TestParseSyncPolicy(t *testing.T) {
	if p, err := ParseSyncPolicy("always"); err != nil || p != SyncAlways {
		t.Fatalf("always → %v, %v", p, err)
	}
	if p, err := ParseSyncPolicy("never"); err != nil || p != SyncNever {
		t.Fatalf("never → %v, %v", p, err)
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestReduceEntriesFold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path, Options{})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.AppendRecord(KindJobAdmitted, JobAdmittedRecord{ID: 1, Factory: "wordcount", NumReduce: 2, Meta: scheduler.JobMeta{ID: 1, File: "corpus"}}))
	must(j.AppendRecord(KindJobAdmitted, JobAdmittedRecord{ID: 2, Factory: "wordcount", NumReduce: 2, Meta: scheduler.JobMeta{ID: 2, File: "corpus"}}))
	must(j.AppendRecord(KindJobAdmitted, JobAdmittedRecord{ID: 3, Factory: "selection", NumReduce: 2, Meta: scheduler.JobMeta{ID: 3, File: "lineitem"}}))
	must(j.AppendRecord(KindShuffleCommitted, ShuffleCommittedRecord{
		Job: 1, Segment: 0, Parts: [][]mapreduce.KV{{{Key: "a", Value: "1"}}, nil},
	}))
	must(j.AppendRecord(KindShuffleCommitted, ShuffleCommittedRecord{
		Job: 2, Segment: 0, Parts: [][]mapreduce.KV{nil, {{Key: "b", Value: "2"}}},
	}))
	snap := &scheduler.Snapshot{
		Scheme: "s3-multifile",
		Queues: []scheduler.QueueSnapshot{{
			File: "corpus", Segments: 4, Cursor: 1,
			Jobs: []scheduler.JobSnapshot{{Meta: scheduler.JobMeta{ID: 2, File: "corpus"}, Remaining: 3}},
		}},
	}
	must(j.AppendRecord(KindRoundCommitted, RoundCommittedRecord{Segment: 0, Jobs: []scheduler.JobID{1, 2}, Snapshot: snap}))
	must(j.AppendRecord(KindJobResult, JobResultRecord{Job: 1, Output: []mapreduce.KV{{Key: "a", Value: "1"}}}))
	must(j.AppendRecord(KindJobDone, JobEndRecord{Job: 1, At: 3}))
	must(j.Append(Entry{Kind: "future-kind", Data: json.RawMessage(`{"x":1}`)}))
	must(j.AppendRecord(KindRecovered, RecoveredRecord{Resumed: 1}))
	j.Close()

	_, rep := openT(t, path, Options{})
	st, err := ReduceEntries(rep.Entries)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxID != 3 || st.Rounds != 1 || st.Recoveries != 1 {
		t.Fatalf("maxID %d rounds %d recoveries %d", st.MaxID, st.Rounds, st.Recoveries)
	}
	if len(st.Done) != 1 || len(st.Results[1]) != 1 {
		t.Fatalf("done %v results %v", st.Done, st.Results)
	}
	// Job 1 finished: its shuffle state must be gone. Job 2's segment-0
	// shuffle survives.
	if _, has := st.Shuffle[1]; has {
		t.Fatal("finished job kept shuffle state")
	}
	if got := st.Shuffle[2][0][1]; len(got) != 1 || got[0].Key != "b" {
		t.Fatalf("job 2 shuffle = %v", st.Shuffle[2])
	}
	pend := st.Pending()
	if len(pend) != 2 || pend[0].ID != 2 || pend[1].ID != 3 {
		t.Fatalf("pending = %+v", pend)
	}
	if !st.InSnapshot(2) || st.InSnapshot(3) || st.InSnapshot(1) {
		t.Fatalf("InSnapshot: 2=%v 3=%v 1=%v", st.InSnapshot(2), st.InSnapshot(3), st.InSnapshot(1))
	}
	if st.Snapshot == nil || st.Snapshot.Queues[0].Cursor != 1 {
		t.Fatalf("snapshot = %+v", st.Snapshot)
	}
}

func TestReduceEntriesCheckpointWins(t *testing.T) {
	mk := func(cursor int) *scheduler.Snapshot {
		return &scheduler.Snapshot{Scheme: "s3", Queues: []scheduler.QueueSnapshot{{File: "corpus", Segments: 4, Cursor: cursor}}}
	}
	e := func(kind string, payload any) Entry {
		data, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		return Entry{Kind: kind, Data: data}
	}
	st, err := ReduceEntries([]Entry{
		e(KindRoundCommitted, RoundCommittedRecord{Snapshot: mk(1)}),
		e(KindCheckpoint, CheckpointRecord{Snapshot: mk(2), Requeues: 5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshot.Queues[0].Cursor != 2 || st.Requeues != 5 {
		t.Fatalf("latest snapshot not kept: %+v requeues %d", st.Snapshot, st.Requeues)
	}
}

func TestReduceEntriesDAGRecords(t *testing.T) {
	e := func(kind string, payload any) Entry {
		data, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		return Entry{Kind: kind, Data: data}
	}
	st, err := ReduceEntries([]Entry{
		e(KindJobAdmitted, JobAdmittedRecord{ID: 1, Factory: "wordcount", Meta: scheduler.JobMeta{ID: 1, File: "corpus"}}),
		e(KindJobAdmitted, JobAdmittedRecord{ID: 2, Factory: "topk", Param: "3",
			Meta: scheduler.JobMeta{ID: 2, File: "job-1.out"}, DependsOn: []scheduler.JobID{1}}),
		// Re-journaled admission (recovery resubmits under the original
		// id): last writer wins, order keeps the first position.
		e(KindJobAdmitted, JobAdmittedRecord{ID: 1, Factory: "wordcount", Param: "th", Meta: scheduler.JobMeta{ID: 1, File: "corpus"}}),
		e(KindJobResult, JobResultRecord{Job: 1, Output: []mapreduce.KV{{Key: "the", Value: "4"}}}),
		e(KindJobDone, JobEndRecord{Job: 1, At: 9}),
		e(KindStageMaterialized, StageMaterializedRecord{Job: 1, File: "job-1.out", BlockSize: 64, Blocks: 1}),
		e(KindJobFailed, JobEndRecord{Job: 2, At: 11}),
		e(KindShuffleCommitted, ShuffleCommittedRecord{Job: 2, Segment: 0, Parts: [][]mapreduce.KV{{{Key: "x", Value: "1"}}}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Order) != 2 || st.Order[0] != 1 || st.Order[1] != 2 {
		t.Fatalf("Order = %v, want [1 2] (re-admission keeps first position)", st.Order)
	}
	if st.Admitted[1].Param != "th" {
		t.Fatalf("re-admission not last-writer-wins: %+v", st.Admitted[1])
	}
	if got := st.Admitted[2].DependsOn; len(got) != 1 || got[0] != 1 {
		t.Fatalf("DependsOn lost in fold: %+v", st.Admitted[2])
	}
	mat, ok := st.Materialized[1]
	if !ok || mat.File != "job-1.out" || mat.BlockSize != 64 || mat.Blocks != 1 {
		t.Fatalf("Materialized[1] = %+v, %v", mat, ok)
	}
	if _, failed := st.Failed[2]; !failed {
		t.Fatalf("Failed = %v", st.Failed)
	}
	// Failed jobs drop their shuffle state just like done ones.
	if _, has := st.Shuffle[2]; has {
		t.Fatal("failed job kept shuffle state")
	}
	if pend := st.Pending(); len(pend) != 0 {
		t.Fatalf("Pending = %+v, want none (both settled)", pend)
	}
	if st.InSnapshot(1) {
		t.Fatal("InSnapshot with no snapshot")
	}
}

func TestReduceEntriesRejectsCorruptKnownKind(t *testing.T) {
	bad := Entry{Kind: KindStageMaterialized, Data: json.RawMessage(`{"job":`)}
	if _, err := ReduceEntries([]Entry{bad}); err == nil {
		t.Fatal("undecodable known-kind payload accepted")
	}
	for _, kind := range []string{
		KindJobAdmitted, KindShuffleCommitted, KindJobResult,
		KindRoundCommitted, KindCheckpoint, KindJobDone, KindJobFailed,
	} {
		if _, err := ReduceEntries([]Entry{{Kind: kind, Data: json.RawMessage(`[`)}}); err == nil {
			t.Fatalf("undecodable %s payload accepted", kind)
		}
	}
}
