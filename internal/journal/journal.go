// Package journal is the master's write-ahead log: an append-only
// file of length-prefixed, checksummed records that makes the
// admission and execution state durable across crashes. Every
// state transition the daemon must not forget — a job acked over
// POST /jobs, a round's shuffle output committed, a job's final
// result — is appended *before* the in-memory effect is acknowledged,
// so a SIGKILLed master replays the log on the next boot and resumes
// the circular pass instead of silently dropping accepted work.
//
// Record framing is deliberately dumb:
//
//	[u32 little-endian payload length][u32 IEEE CRC32 of payload][payload]
//
// with a fixed 8-byte magic header at offset 0. Payloads are JSON
// (one Entry per record), not gob: gob encoders are stream-stateful,
// so a reopened file could not be appended to without replaying the
// encoder state, and JSON keeps the log greppable during an incident.
//
// Replay tolerates exactly the damage a crash can cause — a torn or
// zero-filled tail. Every intact prefix record is returned; the first
// bad frame surfaces as a typed *CorruptError and Open truncates the
// file there so the next append produces a clean log again. Corruption
// *before* intact records (a flipped bit in the middle of the file)
// also stops replay at the damage: everything after an unreadable
// frame is unreachable by construction, which is the honest semantics
// of a length-prefixed stream.
package journal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// magic is the journal file header. A wrong or truncated header on a
// non-empty file means "this is not a journal" and replay refuses to
// guess.
var magic = [8]byte{'s', '3', 'w', 'a', 'l', '0', '0', '1'}

// maxRecord bounds a single record's payload so a corrupt length
// prefix cannot demand an absurd allocation.
const maxRecord = 256 << 20

// SyncPolicy selects when appends reach the disk platter.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append — survives machine crashes
	// and power loss, at one disk flush per record. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS page cache — survives
	// process crashes (SIGKILL) but not machine crashes. An order of
	// magnitude faster on spinning disks.
	SyncNever
)

// Entry is one journal record: a kind tag and its JSON payload.
// Typed payloads live in records.go.
type Entry struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data,omitempty"`
}

// CorruptError reports the first undecodable frame in a journal. The
// records before Offset replayed fine; everything at and after it is
// unrecoverable.
type CorruptError struct {
	// Offset is the byte offset of the first bad frame.
	Offset int64
	// Reason says what failed (truncated frame, checksum mismatch,
	// implausible length, bad header).
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: corrupt record at offset %d: %s", e.Offset, e.Reason)
}

// Stats is the journal's append ledger.
type Stats struct {
	// Appends counts records written by this process.
	Appends int64
	// Bytes is the current file size, replayed prefix included.
	Bytes int64
}

// Options configures Open.
type Options struct {
	Sync SyncPolicy
	// OnAppend, when set, observes the stats after every append —
	// the hook the metrics layer uses. Called with the journal's lock
	// held; keep it cheap and do not call back into the journal.
	OnAppend func(Stats)
}

// Replayed is what Open found in an existing file.
type Replayed struct {
	// Entries are the intact records, in append order.
	Entries []Entry
	// Corruption, when non-nil, is the tail damage Open repaired by
	// truncation. The entries before it were kept.
	Corruption *CorruptError
}

// Journal is an open, appendable write-ahead log. Safe for concurrent
// use: appends from the admission goroutines interleave with appends
// from the run loop in file order.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	sync     SyncPolicy
	onAppend func(Stats)
	appends  int64
	bytes    int64
	closed   bool
}

// Open opens (creating if absent) the journal at path, replays every
// intact record, repairs a torn tail by truncating it, and positions
// the file for appending. The returned Replayed carries what was
// recovered; Replayed.Corruption reports repaired damage without
// failing the open — a crash mid-append is the expected case, not an
// error.
func Open(path string, opts Options) (*Journal, *Replayed, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: stat %s: %w", path, err)
	}
	rep := &Replayed{}
	var end int64
	if info.Size() == 0 {
		// Fresh file: stamp the header.
		if _, err := f.Write(magic[:]); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: writing header: %w", err)
		}
		end = int64(len(magic))
	} else {
		entries, n, rerr := replay(bufio.NewReaderSize(f, 1<<20))
		rep.Entries = entries
		end = n
		if rerr != nil {
			ce, ok := rerr.(*CorruptError)
			if !ok {
				f.Close()
				return nil, nil, rerr
			}
			rep.Corruption = ce
			// Repair: drop the torn tail so the next append starts a
			// clean frame.
			if err := f.Truncate(ce.Offset); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("journal: truncating corrupt tail: %w", err)
			}
			end = ce.Offset
			if end < int64(len(magic)) {
				// The header itself was damaged: re-stamp it so the
				// repaired file is a valid (empty) journal.
				if _, err := f.WriteAt(magic[:], 0); err != nil {
					f.Close()
					return nil, nil, fmt.Errorf("journal: rewriting header: %w", err)
				}
				end = int64(len(magic))
			}
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seeking to append position: %w", err)
	}
	j := &Journal{f: f, sync: opts.Sync, onAppend: opts.OnAppend, bytes: end}
	return j, rep, nil
}

// Replay decodes every intact record from r. On tail damage it returns
// the intact prefix together with a *CorruptError; it never panics on
// any input. The second return is the byte offset just past the last
// intact record.
func Replay(r io.Reader) ([]Entry, error) {
	entries, _, err := replay(bufio.NewReader(r))
	return entries, err
}

// byteReader is the subset of bufio.Reader replay needs.
type byteReader interface {
	io.Reader
	io.ByteReader
}

func replay(r byteReader) ([]Entry, int64, error) {
	var hdr [8]byte
	n, err := io.ReadFull(r, hdr[:])
	if err == io.EOF && n == 0 {
		return nil, 0, nil // empty stream: a never-written journal
	}
	if err != nil || hdr != magic {
		return nil, 0, &CorruptError{Offset: 0, Reason: "missing or damaged file header"}
	}
	var entries []Entry
	off := int64(len(magic))
	var frame [8]byte
	for {
		n, err := io.ReadFull(r, frame[:])
		if err == io.EOF && n == 0 {
			return entries, off, nil // clean end
		}
		if err != nil {
			return entries, off, &CorruptError{Offset: off, Reason: "truncated frame header"}
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		// A zero length is never written; accepting it would make a
		// zero-filled tail (a common crash artifact on ext4) replay as
		// an endless run of empty records.
		if length == 0 || length > maxRecord {
			return entries, off, &CorruptError{Offset: off, Reason: fmt.Sprintf("implausible record length %d", length)}
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return entries, off, &CorruptError{Offset: off, Reason: "truncated record payload"}
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return entries, off, &CorruptError{Offset: off, Reason: "checksum mismatch"}
		}
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return entries, off, &CorruptError{Offset: off, Reason: "undecodable payload: " + err.Error()}
		}
		entries = append(entries, e)
		off += int64(len(frame)) + int64(length)
	}
}

// Append durably writes one record. It returns only after the record
// is in the file (and, under SyncAlways, on disk) — the write-ahead
// contract callers rely on before acknowledging anything.
func (j *Journal) Append(e Entry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: encoding %s record: %w", e.Kind, err)
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("journal: %s record of %d bytes exceeds the %d-byte frame bound", e.Kind, len(payload), maxRecord)
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: append after close")
	}
	// One Write call per record: a torn write then damages at most
	// this frame, which replay repairs by truncation.
	buf := make([]byte, 0, len(frame)+len(payload))
	buf = append(buf, frame[:]...)
	buf = append(buf, payload...)
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: appending %s record: %w", e.Kind, err)
	}
	if j.sync == SyncAlways {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync after %s record: %w", e.Kind, err)
		}
	}
	j.appends++
	j.bytes += int64(len(buf))
	if j.onAppend != nil {
		j.onAppend(Stats{Appends: j.appends, Bytes: j.bytes})
	}
	return nil
}

// AppendRecord marshals payload and appends it under kind.
func (j *Journal) AppendRecord(kind string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("journal: encoding %s payload: %w", kind, err)
	}
	return j.Append(Entry{Kind: kind, Data: data})
}

// Stats reports the append ledger.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{Appends: j.appends, Bytes: j.bytes}
}

// Close syncs and closes the file. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return fmt.Errorf("journal: final sync: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("journal: close: %w", cerr)
	}
	return nil
}

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("journal: unknown fsync policy %q (want always or never)", s)
	}
}
