package journal

import (
	"s3sched/internal/mapreduce"
	"s3sched/internal/scheduler"
)

// MasterState is the fold of a journal's records: everything a booting
// master needs to resume. ReduceEntries builds it; the recovery glue
// in cmd/s3cluster turns it back into live scheduler/master/admission
// state.
type MasterState struct {
	// Admitted maps every admitted job to its admission record;
	// Order preserves admission order (resubmission re-admits in the
	// original order so ids and scheduling stay deterministic).
	Admitted map[scheduler.JobID]JobAdmittedRecord
	Order    []scheduler.JobID
	// Done and Failed are the settled jobs.
	Done   map[scheduler.JobID]JobEndRecord
	Failed map[scheduler.JobID]JobEndRecord
	// Results holds completed jobs' final outputs.
	Results map[scheduler.JobID][]mapreduce.KV
	// Materialized maps a producer stage to its derived-file record:
	// the crashed run installed this output cluster-wide, so recovery
	// must re-install it before resuming anything that scans it.
	Materialized map[scheduler.JobID]StageMaterializedRecord
	// Shuffle[job][segment] is the committed map output awaiting that
	// job's reduce — the partitions to restore before resuming.
	Shuffle map[scheduler.JobID]map[int][][]mapreduce.KV
	// Snapshot is the most recent scheduler snapshot (round commit or
	// checkpoint), nil when none was recorded.
	Snapshot *scheduler.Snapshot
	// Requeues is the consecutive-requeue count at the snapshot.
	Requeues int
	// Rounds counts committed rounds; Recoveries counts completed
	// recoveries recorded in the log.
	Rounds     int
	Recoveries int
	// MaxID is the highest job id ever admitted (id allocation resumes
	// past it).
	MaxID scheduler.JobID
}

// Pending returns the admitted-but-unsettled jobs in admission order —
// the set recovery must bring back.
func (s *MasterState) Pending() []JobAdmittedRecord {
	var out []JobAdmittedRecord
	for _, id := range s.Order {
		if _, done := s.Done[id]; done {
			continue
		}
		if _, failed := s.Failed[id]; failed {
			continue
		}
		out = append(out, s.Admitted[id])
	}
	return out
}

// InSnapshot reports whether the latest snapshot carries the job —
// i.e. the scheduler can resume it mid-pass instead of restarting it.
func (s *MasterState) InSnapshot(id scheduler.JobID) bool {
	if s.Snapshot == nil {
		return false
	}
	for _, js := range s.Snapshot.Jobs() {
		if js.Meta.ID == id {
			return true
		}
	}
	return false
}

// ReduceEntries folds replayed entries into a MasterState. Unknown
// kinds are ignored (forward compatibility); a known kind with an
// undecodable payload is an error — it passed the CRC, so it is a
// writer bug, not disk damage.
func ReduceEntries(entries []Entry) (*MasterState, error) {
	st := &MasterState{
		Admitted:     make(map[scheduler.JobID]JobAdmittedRecord),
		Done:         make(map[scheduler.JobID]JobEndRecord),
		Failed:       make(map[scheduler.JobID]JobEndRecord),
		Results:      make(map[scheduler.JobID][]mapreduce.KV),
		Shuffle:      make(map[scheduler.JobID]map[int][][]mapreduce.KV),
		Materialized: make(map[scheduler.JobID]StageMaterializedRecord),
	}
	for _, e := range entries {
		switch e.Kind {
		case KindJobAdmitted:
			var rec JobAdmittedRecord
			if err := decode(e, &rec); err != nil {
				return nil, err
			}
			if _, dup := st.Admitted[rec.ID]; !dup {
				st.Order = append(st.Order, rec.ID)
			}
			st.Admitted[rec.ID] = rec
			if rec.ID > st.MaxID {
				st.MaxID = rec.ID
			}
		case KindShuffleCommitted:
			var rec ShuffleCommittedRecord
			if err := decode(e, &rec); err != nil {
				return nil, err
			}
			segs := st.Shuffle[rec.Job]
			if segs == nil {
				segs = make(map[int][][]mapreduce.KV)
				st.Shuffle[rec.Job] = segs
			}
			segs[rec.Segment] = rec.Parts
		case KindJobResult:
			var rec JobResultRecord
			if err := decode(e, &rec); err != nil {
				return nil, err
			}
			st.Results[rec.Job] = rec.Output
			// The shuffle state was released when the result committed.
			delete(st.Shuffle, rec.Job)
		case KindStageMaterialized:
			var rec StageMaterializedRecord
			if err := decode(e, &rec); err != nil {
				return nil, err
			}
			st.Materialized[rec.Job] = rec
		case KindRoundCommitted:
			var rec RoundCommittedRecord
			if err := decode(e, &rec); err != nil {
				return nil, err
			}
			st.Rounds++
			if rec.Snapshot != nil {
				st.Snapshot = rec.Snapshot
				st.Requeues = rec.Requeues
			}
		case KindCheckpoint:
			var rec CheckpointRecord
			if err := decode(e, &rec); err != nil {
				return nil, err
			}
			if rec.Snapshot != nil {
				st.Snapshot = rec.Snapshot
				st.Requeues = rec.Requeues
			}
		case KindJobDone:
			var rec JobEndRecord
			if err := decode(e, &rec); err != nil {
				return nil, err
			}
			st.Done[rec.Job] = rec
		case KindJobFailed:
			var rec JobEndRecord
			if err := decode(e, &rec); err != nil {
				return nil, err
			}
			st.Failed[rec.Job] = rec
		case KindRecovered:
			st.Recoveries++
		}
	}
	// A settled job must not linger in the latest snapshot's queues:
	// the snapshot was taken at the same round boundary that settled
	// it, so the scheduler had already retired it. Nothing to fix here
	// — but shuffle state for settled jobs is dead weight; drop it.
	for id := range st.Shuffle {
		if _, done := st.Done[id]; done {
			delete(st.Shuffle, id)
		}
		if _, failed := st.Failed[id]; failed {
			delete(st.Shuffle, id)
		}
	}
	return st, nil
}
