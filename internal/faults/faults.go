// Package faults implements deterministic, seeded fault injection for
// the execution substrates: transient block-read failures, node
// crash/recover windows, and slow-node degradation. The same seed
// always produces the same fault schedule, independent of goroutine
// interleaving, so experiments under failure are as reproducible as
// the fault-free ones.
//
// Determinism comes from keying every decision on stable identities
// rather than on wall time or call order: a read attempt fails iff a
// hash of (seed, block, node, attempt-number) falls under the
// configured rate, where the attempt number counts that (block, node)
// pair's reads so far. Concurrent reads of *different* blocks or nodes
// never perturb each other's schedules.
//
// The injector plugs into both substrates: dfs.Store.SetReadFault
// accepts Injector.FailRead for the real engine, and the simulator's
// FaultModel uses the same Roll hash for its priced failures.
package faults

import (
	"fmt"
	"sync"
	"sync/atomic"

	"s3sched/internal/dfs"
	"s3sched/internal/vclock"
)

// Crash is one node-down window: the node is unavailable during
// [From, To) of the governing clock (virtual time in the simulator,
// wall-seconds-since-start under the real engine).
type Crash struct {
	Node dfs.NodeID
	From vclock.Time
	To   vclock.Time
}

// Config parameterizes an Injector.
type Config struct {
	// Seed selects the fault schedule. Two injectors with equal
	// configs produce identical schedules.
	Seed int64
	// ReadFailRate is the probability in [0,1) that an individual
	// block-read attempt fails with a transient error.
	ReadFailRate float64
	// MaxInjectedPerBlock bounds how many consecutive transient
	// failures are injected per (block, node) pair; after that many,
	// reads succeed regardless of the rate. 0 means unbounded. A bound
	// guarantees any retry policy with more attempts converges.
	MaxInjectedPerBlock int
	// Crashes schedules node-down windows. Overlapping windows are
	// allowed; a node is down when any window covers the current time.
	Crashes []Crash
	// Slowdowns maps nodes to a relative speed factor in (0,1]; the
	// simulator multiplies the node's speed by it. The real engine
	// does not slow goroutines down (matching how Node.Speed works).
	Slowdowns map[dfs.NodeID]float64
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	if c.ReadFailRate < 0 || c.ReadFailRate >= 1 {
		return fmt.Errorf("faults: read-fail rate %v outside [0,1)", c.ReadFailRate)
	}
	if c.MaxInjectedPerBlock < 0 {
		return fmt.Errorf("faults: MaxInjectedPerBlock %d negative", c.MaxInjectedPerBlock)
	}
	for i, cr := range c.Crashes {
		if cr.To <= cr.From {
			return fmt.Errorf("faults: crash %d window [%v,%v) is empty", i, cr.From, cr.To)
		}
		if cr.From < 0 {
			return fmt.Errorf("faults: crash %d starts at negative time %v", i, cr.From)
		}
	}
	for node, f := range c.Slowdowns {
		if f <= 0 || f > 1 {
			return fmt.Errorf("faults: slowdown %v for node %d outside (0,1]", f, node)
		}
	}
	return nil
}

// Stats counts what the injector actually did.
type Stats struct {
	// InjectedReadFailures is how many read attempts were failed.
	InjectedReadFailures int64
	// CrashRejections is how many reads were refused because the
	// serving node was inside a crash window.
	CrashRejections int64
}

// Injector is a deterministic fault source. It is safe for concurrent
// use. A nil *Injector injects nothing, so components can hold an
// optional injector without nil checks.
type Injector struct {
	cfg   Config
	clock vclock.Clock

	mu       sync.Mutex
	attempts map[attemptKey]int

	injectedReads   atomic.Int64
	crashRejections atomic.Int64
}

type attemptKey struct {
	block dfs.BlockID
	node  dfs.NodeID
}

// New builds an injector from the config.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, attempts: make(map[attemptKey]int)}, nil
}

// SetClock attaches the clock crash windows are evaluated against.
// Without a clock, crash windows never trigger (transient read faults
// still do). Call before execution starts.
func (in *Injector) SetClock(c vclock.Clock) {
	if in == nil {
		return
	}
	in.clock = c
}

// ErrInjected is the sentinel every injected transient read failure
// wraps, so callers can distinguish injected faults from real ones.
var ErrInjected = fmt.Errorf("faults: injected failure")

// FailRead implements the dfs.ReadFault hook: it decides whether this
// read attempt of block id by node fails. The decision is a pure
// function of (seed, block, node, attempt-count-so-far), plus the
// crash schedule when a clock is attached.
func (in *Injector) FailRead(id dfs.BlockID, node dfs.NodeID) error {
	if in == nil {
		return nil
	}
	if in.clock != nil && in.NodeDown(node, in.clock.Now()) {
		in.crashRejections.Add(1)
		return fmt.Errorf("%w: node %d is down (crash window)", ErrInjected, node)
	}
	if in.cfg.ReadFailRate <= 0 {
		return nil
	}
	in.mu.Lock()
	k := attemptKey{block: id, node: node}
	attempt := in.attempts[k]
	in.attempts[k] = attempt + 1
	in.mu.Unlock()
	if in.cfg.MaxInjectedPerBlock > 0 && attempt >= in.cfg.MaxInjectedPerBlock {
		return nil
	}
	if Roll(in.cfg.Seed, uint64(HashBlock(id)), uint64(node), uint64(attempt)) < in.cfg.ReadFailRate {
		in.injectedReads.Add(1)
		return fmt.Errorf("%w: transient read of %v on node %d (attempt %d)", ErrInjected, id, node, attempt+1)
	}
	return nil
}

// NodeDown reports whether node is inside a crash window at time now.
func (in *Injector) NodeDown(node dfs.NodeID, now vclock.Time) bool {
	if in == nil {
		return false
	}
	for _, cr := range in.cfg.Crashes {
		if cr.Node == node && now >= cr.From && now < cr.To {
			return true
		}
	}
	return false
}

// NextRecovery returns the earliest crash-window end at or after now
// among the given nodes, and ok=false when none of them is down.
func (in *Injector) NextRecovery(nodes []dfs.NodeID, now vclock.Time) (vclock.Time, bool) {
	if in == nil {
		return 0, false
	}
	var best vclock.Time
	found := false
	for _, n := range nodes {
		for _, cr := range in.cfg.Crashes {
			if cr.Node != n || now < cr.From || now >= cr.To {
				continue
			}
			if !found || cr.To < best {
				best = cr.To
				found = true
			}
		}
	}
	return best, found
}

// Healthy adapts the injector to the cluster health hook: a node is
// healthy unless a crash window covers the clock's current time.
// Without a clock every node is healthy.
func (in *Injector) Healthy(node dfs.NodeID) bool {
	if in == nil || in.clock == nil {
		return true
	}
	return !in.NodeDown(node, in.clock.Now())
}

// Slowdown returns the node's configured speed factor (1 = nominal).
func (in *Injector) Slowdown(node dfs.NodeID) float64 {
	if in == nil {
		return 1
	}
	if f, ok := in.cfg.Slowdowns[node]; ok {
		return f
	}
	return 1
}

// Stats returns a snapshot of what was injected so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		InjectedReadFailures: in.injectedReads.Load(),
		CrashRejections:      in.crashRejections.Load(),
	}
}

// Roll hashes the seed with the given parts into a uniform float64 in
// [0,1). It is the shared deterministic coin for every fault decision:
// the injector keys it on (block, node, attempt), the simulator on
// (round, block, attempt).
func Roll(seed int64, parts ...uint64) float64 {
	h := uint64(seed)
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	// 53 bits of the hash give a uniform double in [0,1).
	return float64(h>>11) / float64(1<<53)
}

// splitmix64 is the standard 64-bit finalizer (Steele et al.), chosen
// for its avalanche quality and zero allocation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashBlock folds a block id into a stable 64-bit value (FNV-1a over
// the file name, mixed with the index).
func HashBlock(id dfs.BlockID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id.File); i++ {
		h ^= uint64(id.File[i])
		h *= prime64
	}
	return splitmix64(h ^ uint64(id.Index))
}
