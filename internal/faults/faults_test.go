package faults

import (
	"errors"
	"testing"

	"s3sched/internal/dfs"
	"s3sched/internal/vclock"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"rate", Config{ReadFailRate: 0.5}, true},
		{"rate-high", Config{ReadFailRate: 1}, false},
		{"rate-neg", Config{ReadFailRate: -0.1}, false},
		{"bound-neg", Config{MaxInjectedPerBlock: -1}, false},
		{"crash", Config{Crashes: []Crash{{Node: 0, From: 10, To: 20}}}, true},
		{"crash-empty", Config{Crashes: []Crash{{Node: 0, From: 20, To: 20}}}, false},
		{"crash-neg", Config{Crashes: []Crash{{Node: 0, From: -1, To: 20}}}, false},
		{"slow", Config{Slowdowns: map[dfs.NodeID]float64{1: 0.5}}, true},
		{"slow-bad", Config{Slowdowns: map[dfs.NodeID]float64{1: 0}}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// Same seed must produce the same fault schedule; a different seed a
// different one (overwhelmingly likely at this sample size).
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		in, err := New(Config{Seed: seed, ReadFailRate: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		var out []bool
		for b := 0; b < 50; b++ {
			for n := 0; n < 4; n++ {
				for a := 0; a < 3; a++ {
					err := in.FailRead(dfs.BlockID{File: "f", Index: b}, dfs.NodeID(n))
					out = append(out, err != nil)
				}
			}
		}
		return out
	}
	a, b, c := schedule(7), schedule(7), schedule(8)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different schedules")
	}
	if !diff {
		t.Error("different seeds produced identical schedules")
	}
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("rate 0.3 injected %d/%d failures, want a nontrivial fraction", fails, len(a))
	}
}

// Interleaving across blocks/nodes must not perturb a pair's schedule:
// the decision depends only on the pair's own attempt count.
func TestScheduleIndependentOfInterleaving(t *testing.T) {
	read := func(in *Injector, b, n int) bool {
		return in.FailRead(dfs.BlockID{File: "f", Index: b}, dfs.NodeID(n)) != nil
	}
	in1, _ := New(Config{Seed: 3, ReadFailRate: 0.4})
	in2, _ := New(Config{Seed: 3, ReadFailRate: 0.4})
	// in1: block 0 three times, then block 1 three times.
	var a []bool
	for i := 0; i < 3; i++ {
		a = append(a, read(in1, 0, 0))
	}
	for i := 0; i < 3; i++ {
		a = append(a, read(in1, 1, 0))
	}
	// in2: interleaved.
	var b0, b1 []bool
	for i := 0; i < 3; i++ {
		b0 = append(b0, read(in2, 0, 0))
		b1 = append(b1, read(in2, 1, 0))
	}
	for i := 0; i < 3; i++ {
		if a[i] != b0[i] {
			t.Fatalf("block 0 attempt %d: sequential %v vs interleaved %v", i, a[i], b0[i])
		}
		if a[3+i] != b1[i] {
			t.Fatalf("block 1 attempt %d: sequential %v vs interleaved %v", i, a[3+i], b1[i])
		}
	}
}

func TestMaxInjectedPerBlock(t *testing.T) {
	// Rate just under 1 fails essentially every attempt, but the bound
	// forces success from the third attempt on.
	in, err := New(Config{Seed: 1, ReadFailRate: 0.999, MaxInjectedPerBlock: 2})
	if err != nil {
		t.Fatal(err)
	}
	id := dfs.BlockID{File: "f", Index: 0}
	fails := 0
	for i := 0; i < 5; i++ {
		if e := in.FailRead(id, 0); e != nil {
			if !errors.Is(e, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", e)
			}
			fails++
			if i >= 2 {
				t.Fatalf("attempt %d failed past the MaxInjectedPerBlock=2 bound", i+1)
			}
		}
	}
	if fails == 0 {
		t.Error("rate 0.999 injected no failures in the first two attempts")
	}
	if in.Stats().InjectedReadFailures != int64(fails) {
		t.Errorf("stats count %d, want %d", in.Stats().InjectedReadFailures, fails)
	}
}

func TestCrashWindows(t *testing.T) {
	in, err := New(Config{Crashes: []Crash{
		{Node: 2, From: 10, To: 20},
		{Node: 2, From: 30, To: 40},
		{Node: 5, From: 15, To: 25},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		node dfs.NodeID
		at   vclock.Time
		down bool
	}{
		{2, 9.99, false}, {2, 10, true}, {2, 19.99, true}, {2, 20, false},
		{2, 35, true}, {5, 15, true}, {5, 25, false}, {0, 15, false},
	}
	for _, c := range cases {
		if got := in.NodeDown(c.node, c.at); got != c.down {
			t.Errorf("NodeDown(%d, %v) = %v, want %v", c.node, c.at, got, c.down)
		}
	}

	if _, ok := in.NextRecovery([]dfs.NodeID{0, 1}, 15); ok {
		t.Error("NextRecovery reported a recovery for healthy nodes")
	}
	at, ok := in.NextRecovery([]dfs.NodeID{2, 5}, 16)
	if !ok || at != 20 {
		t.Errorf("NextRecovery = %v, %v; want 20, true", at, ok)
	}

	// Without a clock, crash windows do not reject reads.
	if e := in.FailRead(dfs.BlockID{File: "f"}, 2); e != nil {
		t.Errorf("clockless injector rejected a read: %v", e)
	}
	clock := vclock.NewVirtual()
	clock.AdvanceTo(15)
	in.SetClock(clock)
	if e := in.FailRead(dfs.BlockID{File: "f"}, 2); e == nil {
		t.Error("read served by a crashed node succeeded")
	} else if !errors.Is(e, ErrInjected) {
		t.Errorf("crash rejection does not wrap ErrInjected: %v", e)
	}
	if !in.NodeDown(2, clock.Now()) || in.Healthy(2) {
		t.Error("Healthy(2) inconsistent with the crash window")
	}
	if in.Stats().CrashRejections != 1 {
		t.Errorf("crash rejections = %d, want 1", in.Stats().CrashRejections)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.FailRead(dfs.BlockID{File: "f"}, 0); err != nil {
		t.Errorf("nil injector failed a read: %v", err)
	}
	if in.NodeDown(0, 5) || !in.Healthy(0) || in.Slowdown(0) != 1 {
		t.Error("nil injector reported non-default state")
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Errorf("nil injector stats = %+v", s)
	}
	in.SetClock(vclock.NewVirtual())
}

func TestRollUniformish(t *testing.T) {
	// Sanity: Roll stays in [0,1) and is not constant.
	lo, hi := 1.0, 0.0
	for i := uint64(0); i < 1000; i++ {
		v := Roll(42, i, i*3, i*7)
		if v < 0 || v >= 1 {
			t.Fatalf("Roll out of range: %v", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > 0.1 || hi < 0.9 {
		t.Errorf("Roll range [%v,%v] suspiciously narrow", lo, hi)
	}
}

func TestSlowdown(t *testing.T) {
	in, err := New(Config{Slowdowns: map[dfs.NodeID]float64{3: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Slowdown(3); got != 0.25 {
		t.Errorf("Slowdown(3) = %v, want 0.25", got)
	}
	if got := in.Slowdown(0); got != 1 {
		t.Errorf("Slowdown(0) = %v, want 1", got)
	}
}
