// Package runtime is the single round-loop engine behind every
// execution path in the repository. It drives a scheduler and an
// executor under a virtual clock through the paper's state machine —
//
//	admit due arrivals → form round → execute → drain failures →
//	requeue-or-retire → fold stats
//
// — and produces the per-job timings the paper's metrics are computed
// from. The serial and stage-pipelined paths are two stage policies
// over this one engine, so requeue bounds (MaxRequeues), per-job
// failure draining (FailureReporter), and end-of-run stats folding
// (FaultStatsSource/CacheStatsSource) are implemented exactly once and
// cannot drift between modes.
//
// Arrival delivery is pluggable (ArrivalSource): a pre-recorded trace
// slice (TraceSource) reproduces the batch experiments byte for byte,
// while a LiveSource accepts thread-safe submissions from other
// goroutines *while a pass is in flight* — the window S^3's sub-job
// alignment exploits — turning the same loop into a long-lived
// admission daemon.
//
// The historical entry points live in internal/driver as thin
// compatibility wrappers around this package.
package runtime

import (
	"s3sched/internal/comms"
	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// Executor runs one round of cluster work and reports how long it took.
type Executor interface {
	ExecRound(r scheduler.Round) (vclock.Duration, error)
}

// ExecutorFunc adapts a function to Executor.
type ExecutorFunc func(r scheduler.Round) (vclock.Duration, error)

// ExecRound calls f.
func (f ExecutorFunc) ExecRound(r scheduler.Round) (vclock.Duration, error) { return f(r) }

// TimedExecutor is implemented by executors whose failure behavior
// depends on the current virtual time (e.g. the simulator's crash
// windows). The serial policy calls ExecRoundAt with the round's
// launch time when available.
type TimedExecutor interface {
	ExecRoundAt(r scheduler.Round, now vclock.Time) (vclock.Duration, error)
}

// TimeSensitive refines TimedExecutor for executors whose ExecRoundAt
// only sometimes differs from ExecRound (the simulator is
// time-dependent only while a fault model is installed). When it
// reports false, the serial policy is free to use the telemetry
// stage-split path instead of ExecRoundAt.
type TimeSensitive interface {
	TimeDependent() bool
}

// FailureReporter is implemented by executors that isolate per-job
// failures: a round may succeed while individual jobs' map/reduce code
// failed. The engine drains the reports after each round, fails those
// jobs in the metrics, and aborts them in the scheduler. Both stage
// policies share the one drain implementation (engine.settleRound), so
// the semantics are identical by construction.
type FailureReporter interface {
	// TakeJobFailures returns and clears the failures recorded since
	// the previous call.
	TakeJobFailures() []scheduler.JobFailure
}

// FaultStatsSource is implemented by executors that count fault
// handling (retries, failed attempts, blacklists); the engine folds
// the counters into the run's metrics at the end.
type FaultStatsSource interface {
	FaultStats() metrics.FaultStats
}

// CacheStatsSource is implemented by executors whose reads go through
// a block cache (real or modeled); the engine folds the hit/miss/
// eviction counters into the run's metrics at the end.
type CacheStatsSource interface {
	CacheStats() metrics.CacheStats
}

// MembershipSource is implemented by executors backed by a dynamic
// cluster membership table (the remote master's control plane). The
// engine drains the membership deltas every loop iteration and renders
// them into the run's trace (worker-registered / worker-lost /
// worker-rejoined events) and metrics (s3_workers_connected,
// s3_heartbeat_misses_total, s3_worker_reconnects_total), so cluster
// churn shows up in the same observability stream as scheduling
// decisions.
type MembershipSource interface {
	// TakeMemberEvents returns and clears the membership transitions
	// recorded since the previous call, in order.
	TakeMemberEvents() []comms.MemberEvent
	// LiveWorkers reports the current number of usable (non-dead)
	// workers.
	LiveWorkers() int
}

// ReduceStage runs a committed round's reduce work and reports how
// long it took. The engine may invoke it on a worker goroutine,
// concurrently with later rounds' map stages; everything the stage
// touches must have been committed (snapshotted or locked) by
// ExecMapStage before it returned.
//
// ReduceStage is a type alias, not a defined type, so executors in
// other packages can satisfy StageExecutor without importing runtime.
type ReduceStage = func() (vclock.Duration, error)

// StageExecutor is implemented by executors that can split a round
// into its two stages: the scan/map stage (ending at shuffle-commit)
// and the reduce stage. Splitting lets the engine start round N+1's
// scan as soon as round N's map finishes, overlapping N's reduce with
// N+1's scan — the pipelining §V leaves on the table when every round
// blocks on its own reduce.
type StageExecutor interface {
	Executor
	// ExecMapStage runs the round's scan/map stage, commits the shuffle
	// (so later map output cannot bleed into this round's reduce input),
	// and returns the stage's duration plus the round's reduce stage.
	ExecMapStage(r scheduler.Round) (vclock.Duration, ReduceStage, error)
}

// Stalled is implemented by schedulers that can report a permanent
// stall (MRShare with an unfillable batch). The engine surfaces it as
// an error instead of spinning forever.
type Stalled interface {
	Stalled() bool
}

// Waker is implemented by time-driven schedulers (e.g. window-based
// batchers) that may have work at a future instant even with no
// arrivals left. The engine advances the clock to the wake time when
// the scheduler is otherwise idle.
type Waker interface {
	// NextWake returns the next time the scheduler should be polled
	// again, or ok=false when it has no timed work.
	NextWake(now vclock.Time) (vclock.Time, bool)
}

// CommitLog receives the engine's durable commit points — the
// write-ahead journal's view of the run loop. The engine calls it
// synchronously from its goroutine at exactly the places the
// scheduler's state is consistent: after a round is retired
// (RoundCommitted, with a scheduler snapshot when one could be taken)
// and when a job's fate settles (JobDone/JobFailed). Implementations
// that cannot write (disk full) should fail the run via their own
// executor path rather than silently dropping records; these callbacks
// return nothing so the loop's hot path stays infallible.
type CommitLog interface {
	// RoundCommitted fires after settleRound retires round r at
	// virtual time now. snap is the scheduler's post-round state, nil
	// when the scheduler is not Snapshottable or could not snapshot
	// (pipelined reduces still draining). requeues is the engine's
	// consecutive-requeue count (0 after a successful round).
	RoundCommitted(r scheduler.Round, now vclock.Time, snap *scheduler.Snapshot, requeues int)
	// JobDone fires when id completes; JobFailed when its own
	// map/reduce code terminally fails.
	JobDone(id scheduler.JobID, now vclock.Time)
	JobFailed(id scheduler.JobID, now vclock.Time)
}

// RestoredJob names a job already present in the scheduler when the
// run starts — restored from a journal snapshot rather than delivered
// by the arrival source. The engine seeds its metrics entry so the
// collector's submit→start→complete lifecycle holds.
type RestoredJob struct {
	ID scheduler.JobID
	// At is the admission time to record. Virtual clocks restart at
	// zero on every boot, so recovery passes 0: post-restart response
	// times measure from the restart, which is when this incarnation
	// first owed the job service.
	At vclock.Time
}

// DefaultMaxRequeues bounds consecutive requeues of one round before
// the engine gives up (a fault schedule that never lets the round
// complete would otherwise loop forever).
const DefaultMaxRequeues = 32

// DefaultReduceWorkers bounds concurrently draining reduce stages when
// Options.ReduceWorkers is unset.
const DefaultReduceWorkers = 2

// Arrival is one job submission event.
type Arrival struct {
	Job scheduler.JobMeta
	At  vclock.Time
}

// Result is the outcome of one engine run.
type Result struct {
	Metrics *metrics.Collector
	Rounds  int
	// End is the virtual time when the last job completed.
	End vclock.Time
	// Stopped reports that the run exited early at a round boundary
	// because Options.Stop fired — a graceful shutdown, not an error.
	// Jobs may remain pending; the caller is expected to checkpoint.
	Stopped bool
	// Requeues is the consecutive-requeue count at exit (nonzero only
	// when a stop landed mid-requeue-storm); a checkpoint persists it
	// so the restarted engine keeps the same requeue budget.
	Requeues int
}

// Hooks observe the run loop. Both callbacks are invoked from the
// engine's goroutine, so they may read scheduler state safely but must
// not call back into it.
type Hooks struct {
	// OnRoundStart fires after a round is formed, before it executes.
	OnRoundStart func(r scheduler.Round, now vclock.Time)
	// OnRoundDone fires after the round is retired, with the jobs that
	// completed in it.
	OnRoundDone func(r scheduler.Round, now vclock.Time, completed []scheduler.JobID)
}

// Options configures a run.
type Options struct {
	// Pipeline requests stage-pipelined execution. It engages only when
	// both the scheduler (scheduler.StageAware) and the executor
	// (StageExecutor) support it; otherwise the serial policy runs.
	Pipeline bool
	// ReduceWorkers bounds concurrently running reduce stages
	// (default DefaultReduceWorkers). Also the number of virtual reduce
	// slots the timing model charges reduces against.
	ReduceWorkers int
	// MaxRequeues bounds consecutive requeues of one lost round before
	// the engine gives up (default DefaultMaxRequeues).
	MaxRequeues int
	Hooks       Hooks
	// Spans, when set, receives the run's hierarchical span tree
	// (run → round → scan/reduce stage → per-job subjob) in vclock
	// time. Export it with trace.WriteChromeTrace.
	Spans *trace.Log
	// Metrics, when set, receives live counter/gauge/histogram updates
	// as the run progresses (see metrics.NewRunMetrics). With either
	// sink set, the serial policy splits stage-capable executors into
	// scan+reduce to attribute time per stage; the composition is
	// semantically identical to ExecRound.
	Metrics *metrics.RunMetrics
	// Commits, when set, receives the run's durable commit points (see
	// CommitLog) — how the write-ahead journal observes the loop.
	Commits CommitLog
	// Stop, when set, requests a graceful early exit: the engine
	// checks it at each round boundary and, once closed, finishes the
	// in-flight round and returns Result.Stopped=true with pending
	// jobs still in the scheduler. Close the arrival source alongside
	// so an idle-parked engine wakes up.
	Stop <-chan struct{}
	// Restored lists jobs already present in the scheduler at start —
	// journal-recovery state the arrival source will not deliver. The
	// engine seeds their metrics entries exactly once.
	Restored []RestoredJob
	// InitialRequeues seeds the consecutive-requeue counter — the
	// value a checkpoint carried, so a crash loop cannot reset its own
	// budget by restarting.
	InitialRequeues int
}

// Run drives arrivals from src through the scheduler, executing rounds
// until every admitted job completes and the source reports no more
// will ever come. The stage policy is chosen from opts.Pipeline and
// the capabilities of sched/exec, exactly like the legacy
// driver.RunOpts.
func Run(sched scheduler.Scheduler, exec Executor, src ArrivalSource, opts Options) (*Result, error) {
	e := newEngine(sched, exec, src, opts)
	return e.run()
}

// RunTrace is Run over a pre-recorded arrival slice. Arrivals may be
// given in any order; they are processed by time, ties by job id.
func RunTrace(sched scheduler.Scheduler, exec Executor, arrivals []Arrival, opts Options) (*Result, error) {
	src, err := NewTraceSource(arrivals)
	if err != nil {
		return nil, err
	}
	return Run(sched, exec, src, opts)
}
