package runtime

import (
	"fmt"
	"sort"
	"sync"

	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// ArrivalSource feeds job submissions into the engine. The engine is
// the only caller of these methods and calls them from its single
// goroutine; implementations that accept jobs from other goroutines
// (LiveSource) synchronize internally.
type ArrivalSource interface {
	// Pop removes and returns every arrival due at or before now, each
	// stamped with its admission time (<= now). Sources without
	// intrinsic timestamps (live queues) stamp jobs with now.
	Pop(now vclock.Time) []Arrival
	// Peek reports the time of the earliest queued arrival (ok=false
	// when nothing is queued right now). Live sources report 0 for a
	// queued job — "due immediately"; the engine clamps to now.
	Peek() (at vclock.Time, ok bool)
	// Pending reports how many accepted jobs await admission.
	Pending() int
	// Wait blocks until the source has a queued arrival or will never
	// produce one again, returning false in the latter case. The
	// engine calls it only when the scheduler is idle and no timer is
	// pending, so a live daemon parks here between submissions.
	Wait() bool
}

// JobTracker is optionally implemented by an ArrivalSource that wants
// lifecycle callbacks for the jobs it produced. The engine invokes it
// synchronously from the run loop: JobAdmitted when the job enters the
// scheduler, JobFinished when the job completes (failed=false) or its
// own map/reduce code terminally fails (failed=true).
type JobTracker interface {
	JobAdmitted(id scheduler.JobID, at vclock.Time)
	JobFinished(id scheduler.JobID, at vclock.Time, failed bool)
}

// TraceSource replays a pre-sorted arrival trace — the batch-mode
// source every experiment uses. It is not safe for concurrent use;
// the engine owns it.
type TraceSource struct {
	evs  []Arrival
	next int
}

// NewTraceSource validates arrivals and orders them by time, ties by
// job id.
func NewTraceSource(arrivals []Arrival) (*TraceSource, error) {
	evs := make([]Arrival, len(arrivals))
	copy(evs, arrivals)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Job.ID < evs[j].Job.ID
	})
	for i, a := range evs {
		if a.At < 0 {
			return nil, fmt.Errorf("runtime: arrival %d at negative time %v", i, a.At)
		}
	}
	return &TraceSource{evs: evs}, nil
}

// Pop returns the arrivals due at or before now.
func (s *TraceSource) Pop(now vclock.Time) []Arrival {
	start := s.next
	for s.next < len(s.evs) && s.evs[s.next].At <= now {
		s.next++
	}
	if s.next == start {
		return nil
	}
	return s.evs[start:s.next]
}

// Peek reports the next undelivered arrival's time.
func (s *TraceSource) Peek() (vclock.Time, bool) {
	if s.next >= len(s.evs) {
		return 0, false
	}
	return s.evs[s.next].At, true
}

// Pending reports how many arrivals remain undelivered.
func (s *TraceSource) Pending() int { return len(s.evs) - s.next }

// Wait reports whether any arrival remains. A trace never blocks: it
// is exhausted exactly when every recorded arrival was delivered.
func (s *TraceSource) Wait() bool { return s.next < len(s.evs) }

// JobState is a live-submitted job's lifecycle phase.
type JobState string

const (
	// JobWaiting: accepted, but held until its declared dependencies
	// complete and materialize (DAG stages).
	JobWaiting JobState = "waiting"
	// JobQueued: accepted by the admission layer, waiting for the
	// engine to hand it to the scheduler.
	JobQueued JobState = "queued"
	// JobRunning: admitted into the scheduler's current circular pass.
	JobRunning JobState = "running"
	// JobDone: completed; results are available from the executor.
	JobDone JobState = "done"
	// JobFailed: the job's own map/reduce code terminally failed and
	// the job was aborted. The rest of the workload continues.
	JobFailed JobState = "failed"
)

// JobStatus is the externally visible state of one live-submitted job.
// Times are virtual-clock seconds of the run the job was admitted to.
type JobStatus struct {
	ID         scheduler.JobID `json:"id"`
	Name       string          `json:"name"`
	State      JobState        `json:"state"`
	AdmittedAt vclock.Time     `json:"admittedAt"`
	DoneAt     vclock.Time     `json:"doneAt"`
	// DependsOn lists the job's declared dependencies (DAG stages);
	// empty for independent jobs.
	DependsOn []scheduler.JobID `json:"dependsOn,omitempty"`
}

// LiveSource is a thread-safe admission queue: any goroutine may
// Submit jobs while the engine runs a pass, and the engine merges them
// into the current circular scan at the next round boundary — the
// online behavior of the paper's Job Queue Manager (§IV, Algorithm 1).
// It implements ArrivalSource and JobTracker, so it also tracks each
// job's lifecycle for an admission API to report.
type LiveSource struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []scheduler.JobMeta
	status map[scheduler.JobID]*JobStatus
	order  []scheduler.JobID
	nextID scheduler.JobID
	closed bool
	// held are accepted-but-waiting jobs (DAG stages with unsettled
	// dependencies); Release moves one into queue.
	held map[scheduler.JobID]scheduler.JobMeta
}

// NewLiveSource returns an open admission queue.
func NewLiveSource() *LiveSource {
	s := &LiveSource{
		status: make(map[scheduler.JobID]*JobStatus),
		nextID: 1,
		held:   make(map[scheduler.JobID]scheduler.JobMeta),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Submit enqueues a job for admission. A zero meta.ID is assigned the
// next free id; a caller-chosen id must be unique across the source's
// lifetime. Safe for concurrent use.
func (s *LiveSource) Submit(meta scheduler.JobMeta) (scheduler.JobID, error) {
	return s.SubmitWith(meta, nil)
}

// SubmitWith is Submit with a pre-admission callback invoked — under
// the source's lock, before the job becomes visible to the engine —
// with the assigned id. Callers use it to register per-id execution
// state (e.g. a remote JobRef) without racing the scheduler: if pre
// fails, the job is not enqueued and its id is not consumed.
func (s *LiveSource) SubmitWith(meta scheduler.JobMeta, pre func(scheduler.JobID) error) (scheduler.JobID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("runtime: admission queue is closed")
	}
	if meta.ID == 0 {
		meta.ID = s.nextID
	} else if _, dup := s.status[meta.ID]; dup {
		return 0, fmt.Errorf("runtime: job id %d already submitted", meta.ID)
	}
	if pre != nil {
		if err := pre(meta.ID); err != nil {
			return 0, err
		}
	}
	if meta.ID >= s.nextID {
		s.nextID = meta.ID + 1
	}
	s.queue = append(s.queue, meta)
	s.status[meta.ID] = &JobStatus{ID: meta.ID, Name: meta.Name, State: JobQueued}
	s.order = append(s.order, meta.ID)
	s.cond.Broadcast()
	return meta.ID, nil
}

// SubmitHeldWith accepts a job without queueing it: the job is parked
// in "waiting" state until Release hands it to the engine (or FailHeld
// retires it). deps is recorded on the status for the admission API;
// the caller (a DAG coordinator) owns the release decision — the
// source does not interpret the dependency list. pre behaves as in
// SubmitWith.
func (s *LiveSource) SubmitHeldWith(meta scheduler.JobMeta, deps []scheduler.JobID, pre func(scheduler.JobID) error) (scheduler.JobID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("runtime: admission queue is closed")
	}
	if meta.ID == 0 {
		meta.ID = s.nextID
	} else if _, dup := s.status[meta.ID]; dup {
		return 0, fmt.Errorf("runtime: job id %d already submitted", meta.ID)
	}
	if pre != nil {
		if err := pre(meta.ID); err != nil {
			return 0, err
		}
	}
	if meta.ID >= s.nextID {
		s.nextID = meta.ID + 1
	}
	s.held[meta.ID] = meta
	st := &JobStatus{ID: meta.ID, Name: meta.Name, State: JobWaiting}
	st.DependsOn = append(st.DependsOn, deps...)
	s.status[meta.ID] = st
	s.order = append(s.order, meta.ID)
	return meta.ID, nil
}

// Release moves a held job into the admission queue, waking a parked
// engine. It works after Close — held jobs whose dependencies complete
// during drain still run; only *new* submissions are refused.
func (s *LiveSource) Release(id scheduler.JobID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, ok := s.held[id]
	if !ok {
		return fmt.Errorf("runtime: job %d is not held", id)
	}
	delete(s.held, id)
	s.queue = append(s.queue, meta)
	if st, ok := s.status[id]; ok {
		st.State = JobQueued
	}
	s.cond.Broadcast()
	return nil
}

// FailHeld retires a held job without admitting it — a dependency
// failed, so the job's input will never exist.
func (s *LiveSource) FailHeld(id scheduler.JobID, at vclock.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.held[id]; !ok {
		return fmt.Errorf("runtime: job %d is not held", id)
	}
	delete(s.held, id)
	if st, ok := s.status[id]; ok {
		st.State = JobFailed
		st.DoneAt = at
	}
	return nil
}

// Held reports how many accepted jobs are waiting on dependencies.
func (s *LiveSource) Held() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.held)
}

// Close marks the source finished: queued jobs still drain, new
// Submits fail, and the engine exits once everything admitted has
// completed. Safe to call more than once.
func (s *LiveSource) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

// Pop drains the queue, stamping every job with the engine's current
// virtual time — a live job "arrives" the moment the loop admits it.
func (s *LiveSource) Pop(now vclock.Time) []Arrival {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return nil
	}
	out := make([]Arrival, len(s.queue))
	for i, meta := range s.queue {
		out[i] = Arrival{Job: meta, At: now}
	}
	s.queue = s.queue[:0]
	return out
}

// Peek reports a queued job as due immediately.
func (s *LiveSource) Peek() (vclock.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return 0, len(s.queue) > 0
}

// Pending reports the admission-queue depth.
func (s *LiveSource) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Wait parks until a job is queued or the source is closed, returning
// false only when closed with nothing left to deliver.
func (s *LiveSource) Wait() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	return len(s.queue) > 0
}

// JobAdmitted implements JobTracker.
func (s *LiveSource) JobAdmitted(id scheduler.JobID, at vclock.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.status[id]; ok {
		st.State = JobRunning
		st.AdmittedAt = at
	}
}

// JobFinished implements JobTracker.
func (s *LiveSource) JobFinished(id scheduler.JobID, at vclock.Time, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.status[id]
	if !ok {
		return
	}
	st.DoneAt = at
	if failed {
		st.State = JobFailed
	} else {
		st.State = JobDone
	}
}

// Adopt installs a status entry for a journal-recovered job without
// queueing it for admission: resumed jobs are already inside the
// restored scheduler (the engine seeds them via Options.Restored), and
// settled jobs only need their terminal state visible to the admission
// API. The id is reserved so later Submits cannot collide with it.
func (s *LiveSource) Adopt(meta scheduler.JobMeta, state JobState, admittedAt, doneAt vclock.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("runtime: admission queue is closed")
	}
	if meta.ID == 0 {
		return fmt.Errorf("runtime: cannot adopt a job without an id")
	}
	if _, dup := s.status[meta.ID]; dup {
		return fmt.Errorf("runtime: job id %d already submitted", meta.ID)
	}
	if meta.ID >= s.nextID {
		s.nextID = meta.ID + 1
	}
	s.status[meta.ID] = &JobStatus{
		ID:         meta.ID,
		Name:       meta.Name,
		State:      state,
		AdmittedAt: admittedAt,
		DoneAt:     doneAt,
	}
	s.order = append(s.order, meta.ID)
	return nil
}

// AdoptHeld installs a journal-recovered job in waiting state: its
// dependencies had not settled when the previous master died, so it
// re-enters the held set and the recovered DAG coordinator releases or
// fails it as the resumed run settles the dependencies.
func (s *LiveSource) AdoptHeld(meta scheduler.JobMeta, deps []scheduler.JobID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("runtime: admission queue is closed")
	}
	if meta.ID == 0 {
		return fmt.Errorf("runtime: cannot adopt a job without an id")
	}
	if _, dup := s.status[meta.ID]; dup {
		return fmt.Errorf("runtime: job id %d already submitted", meta.ID)
	}
	if meta.ID >= s.nextID {
		s.nextID = meta.ID + 1
	}
	s.held[meta.ID] = meta
	st := &JobStatus{ID: meta.ID, Name: meta.Name, State: JobWaiting}
	st.DependsOn = append(st.DependsOn, deps...)
	s.status[meta.ID] = st
	s.order = append(s.order, meta.ID)
	return nil
}

// SetDependsOn records a job's dependency list on its status entry
// (admission-API surface only; scheduling is unaffected). Used when
// adopting settled DAG stages whose edges should stay visible.
func (s *LiveSource) SetDependsOn(id scheduler.JobID, deps []scheduler.JobID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.status[id]; ok {
		// A fresh slice, not in-place reuse: status copies returned by
		// Jobs/Status may still alias the old backing array.
		st.DependsOn = append([]scheduler.JobID(nil), deps...)
	}
}

// Status reports one job's lifecycle state.
func (s *LiveSource) Status(id scheduler.JobID) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.status[id]
	if !ok {
		return JobStatus{}, false
	}
	return *st, true
}

// Jobs returns every submitted job's status in submission order.
func (s *LiveSource) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.status[id])
	}
	return out
}
