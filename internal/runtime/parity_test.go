package runtime_test

import (
	"bytes"
	"fmt"
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/driver"
	"s3sched/internal/metrics"
	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/sim"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// parityModel prices every cost component so both stages are
// non-trivial and cache/fault effects show up in the metrics.
var parityModel = sim.CostModel{
	ScanMBps:       40,
	TaskOverhead:   0.5,
	RoundOverhead:  0.3,
	JobSetup:       0.2,
	SharePenalty:   0.01,
	ReducePerRound: 0.6,
	ReduceSetup:    0.2,
}

func parityMeta(id int) scheduler.JobMeta {
	return scheduler.JobMeta{ID: scheduler.JobID(id), File: "input", Weight: 1, ReduceWeight: 1}
}

func parityPlan(t *testing.T, segments int) *dfs.SegmentPlan {
	t.Helper()
	store := dfs.MustStore(segments, 1)
	f, err := store.AddMetaFile("input", segments, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := dfs.PlanSegments(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func parityExec(t *testing.T, segments int, fault, cache bool) *sim.Executor {
	t.Helper()
	store := dfs.MustStore(segments, 1)
	if _, err := store.AddMetaFile("input", segments, 64<<20); err != nil {
		t.Fatal(err)
	}
	exec := sim.NewExecutor(sim.NewCluster(segments, 1), store, parityModel)
	if fault {
		if err := exec.SetFaultModel(sim.FaultModel{
			Seed: 11, BlockFailRate: 0.25, MaxAttempts: 2, RetrySec: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if cache {
		if err := exec.EnableCache(3*64<<20, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	return exec
}

// render runs one seeded workload through the given entry point and
// returns its observable outputs: Prometheus text, Chrome trace JSON,
// and the Result.
func render(t *testing.T, legacy, pipeline, fault, cache bool) (string, string, *runtime.Result) {
	t.Helper()
	const segments, jobs = 6, 4
	arrivals := make([]runtime.Arrival, jobs)
	for i := range arrivals {
		arrivals[i] = runtime.Arrival{Job: parityMeta(i + 1), At: vclock.Time(i) * 3}
	}
	log := trace.MustNew(8192)
	reg := metrics.NewRegistry()
	opts := runtime.Options{Pipeline: pipeline, Spans: log, Metrics: metrics.NewRunMetrics(reg)}
	sched := core.New(parityPlan(t, segments), nil)
	exec := parityExec(t, segments, fault, cache)
	var res *runtime.Result
	var err error
	if legacy {
		res, err = driver.RunOpts(sched, exec, arrivals, opts)
	} else {
		res, err = runtime.RunTrace(sched, exec, arrivals, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	var prom, chrome bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if err := log.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	return prom.String(), chrome.String(), res
}

// TestLegacyEntryPointsMatchRuntime: the driver package's historical
// Run/RunOpts API and runtime.RunTrace produce byte-identical metric
// snapshots, span trees, and Result fields across the seed workload
// matrix — serial and pipelined, with fault injection and block
// caching on and off.
func TestLegacyEntryPointsMatchRuntime(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		for _, fault := range []bool{false, true} {
			for _, cache := range []bool{false, true} {
				name := fmt.Sprintf("pipeline=%v/fault=%v/cache=%v", pipeline, fault, cache)
				t.Run(name, func(t *testing.T) {
					promL, chromeL, resL := render(t, true, pipeline, fault, cache)
					promR, chromeR, resR := render(t, false, pipeline, fault, cache)
					if promL != promR {
						t.Errorf("metric snapshots diverge:\n%s\n----\n%s", promL, promR)
					}
					if chromeL != chromeR {
						t.Error("chrome traces diverge")
					}
					if resL.Rounds != resR.Rounds || resL.End != resR.End {
						t.Errorf("results diverge: legacy %d rounds end %v, runtime %d rounds end %v",
							resL.Rounds, resL.End, resR.Rounds, resR.End)
					}
				})
			}
		}
	}
}

// TestLiveSourceMatchesTraceAtTimeZero: a LiveSource pre-filled before
// the run and a TraceSource with every arrival at t=0 are
// indistinguishable in metrics and results — live admission costs
// nothing when jobs are already waiting at startup.
func TestLiveSourceMatchesTraceAtTimeZero(t *testing.T) {
	const segments, jobs = 6, 3
	for _, pipeline := range []bool{false, true} {
		runVia := func(live bool) (string, *runtime.Result) {
			reg := metrics.NewRegistry()
			opts := runtime.Options{Pipeline: pipeline, Metrics: metrics.NewRunMetrics(reg)}
			sched := core.New(parityPlan(t, segments), nil)
			exec := parityExec(t, segments, false, false)
			var res *runtime.Result
			var err error
			if live {
				src := runtime.NewLiveSource()
				for i := 0; i < jobs; i++ {
					if _, err := src.Submit(parityMeta(i + 1)); err != nil {
						t.Fatal(err)
					}
				}
				src.Close()
				res, err = runtime.Run(sched, exec, src, opts)
			} else {
				arrivals := make([]runtime.Arrival, jobs)
				for i := range arrivals {
					arrivals[i] = runtime.Arrival{Job: parityMeta(i + 1), At: 0}
				}
				res, err = runtime.RunTrace(sched, exec, arrivals, opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			var prom bytes.Buffer
			if err := reg.WritePrometheus(&prom); err != nil {
				t.Fatal(err)
			}
			return prom.String(), res
		}
		promTrace, resTrace := runVia(false)
		promLive, resLive := runVia(true)
		if promTrace != promLive {
			t.Errorf("pipeline=%v: live and trace sources diverge:\n%s\n----\n%s",
				pipeline, promTrace, promLive)
		}
		if resTrace.Rounds != resLive.Rounds || resTrace.End != resLive.End {
			t.Errorf("pipeline=%v: results diverge: trace %d/%v live %d/%v",
				pipeline, resTrace.Rounds, resTrace.End, resLive.Rounds, resLive.End)
		}
	}
}
