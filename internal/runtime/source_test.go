package runtime

import (
	"errors"
	"strings"
	"testing"

	"s3sched/internal/scheduler"
)

var errTest = errors.New("test error")

func meta(id int) scheduler.JobMeta {
	return scheduler.JobMeta{ID: scheduler.JobID(id), File: "input", Weight: 1, ReduceWeight: 1}
}

func TestTraceSourceOrdersAndDrains(t *testing.T) {
	src, err := NewTraceSource([]Arrival{
		{Job: meta(3), At: 5},
		{Job: meta(1), At: 0},
		{Job: meta(2), At: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if at, ok := src.Peek(); !ok || at != 0 {
		t.Fatalf("Peek = %v,%v, want 0,true", at, ok)
	}
	if got := src.Pop(0); len(got) != 1 || got[0].Job.ID != 1 {
		t.Fatalf("Pop(0) = %v, want job 1", got)
	}
	// Ties at t=5 break by job id.
	got := src.Pop(10)
	if len(got) != 2 || got[0].Job.ID != 2 || got[1].Job.ID != 3 {
		t.Fatalf("Pop(10) = %v, want jobs 2,3", got)
	}
	if src.Pending() != 0 {
		t.Errorf("Pending = %d after drain, want 0", src.Pending())
	}
	if src.Wait() {
		t.Error("Wait() = true on exhausted trace")
	}
}

func TestTraceSourceRejectsNegativeTime(t *testing.T) {
	_, err := NewTraceSource([]Arrival{{Job: meta(1), At: -1}})
	if err == nil || !strings.Contains(err.Error(), "negative time") {
		t.Fatalf("err = %v, want negative-time rejection", err)
	}
}

func TestLiveSourceAssignsAndTracksIDs(t *testing.T) {
	src := NewLiveSource()
	id1, err := src.Submit(scheduler.JobMeta{Name: "a", File: "input"})
	if err != nil || id1 != 1 {
		t.Fatalf("first Submit = %v,%v, want 1,nil", id1, err)
	}
	// A caller-chosen id advances the allocator past itself.
	id7, err := src.Submit(scheduler.JobMeta{ID: 7, Name: "b", File: "input"})
	if err != nil || id7 != 7 {
		t.Fatalf("explicit Submit = %v,%v, want 7,nil", id7, err)
	}
	if _, err := src.Submit(scheduler.JobMeta{ID: 7, File: "input"}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	id8, err := src.Submit(scheduler.JobMeta{Name: "c", File: "input"})
	if err != nil || id8 != 8 {
		t.Fatalf("post-explicit Submit = %v,%v, want 8,nil", id8, err)
	}
	jobs := src.Jobs()
	if len(jobs) != 3 || jobs[0].ID != 1 || jobs[1].ID != 7 || jobs[2].ID != 8 {
		t.Fatalf("Jobs() = %v, want submission order 1,7,8", jobs)
	}
	for _, j := range jobs {
		if j.State != JobQueued {
			t.Errorf("job %d state = %q, want queued", j.ID, j.State)
		}
	}
}

func TestLiveSourcePreHookFailureKeepsIDFree(t *testing.T) {
	src := NewLiveSource()
	boom := func(scheduler.JobID) error { return errTest }
	if _, err := src.SubmitWith(scheduler.JobMeta{File: "input"}, boom); err != errTest {
		t.Fatalf("SubmitWith err = %v, want errTest", err)
	}
	if src.Pending() != 0 {
		t.Fatalf("failed submission enqueued: pending = %d", src.Pending())
	}
	// The rejected submission's id is reused by the next success.
	id, err := src.Submit(scheduler.JobMeta{File: "input"})
	if err != nil || id != 1 {
		t.Fatalf("Submit after failed pre = %v,%v, want 1,nil", id, err)
	}
}

func TestLiveSourceLifecycle(t *testing.T) {
	src := NewLiveSource()
	id, err := src.Submit(scheduler.JobMeta{Name: "wc", File: "input"})
	if err != nil {
		t.Fatal(err)
	}
	got := src.Pop(12)
	if len(got) != 1 || got[0].At != 12 {
		t.Fatalf("Pop stamped %v, want admission at now=12", got)
	}
	src.JobAdmitted(id, 12)
	if st, _ := src.Status(id); st.State != JobRunning || st.AdmittedAt != 12 {
		t.Fatalf("after admit: %+v", st)
	}
	src.JobFinished(id, 30, false)
	if st, _ := src.Status(id); st.State != JobDone || st.DoneAt != 30 {
		t.Fatalf("after finish: %+v", st)
	}
	if _, ok := src.Status(99); ok {
		t.Error("Status(99) found a job that was never submitted")
	}
	src.Close()
	if _, err := src.Submit(scheduler.JobMeta{File: "input"}); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
	if src.Wait() {
		t.Error("Wait() = true on closed, drained source")
	}
}
