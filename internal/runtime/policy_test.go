package runtime_test

import (
	"errors"
	"strings"
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/metrics"
	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// lostExec loses every round, in whichever stage protocol the policy
// speaks — the worst case for requeue accounting.
type lostExec struct {
	calls int
}

func (l *lostExec) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	l.calls++
	return 0, &scheduler.RoundLostError{Round: r, Elapsed: 5, Err: errors.New("injected loss")}
}

func (l *lostExec) ExecMapStage(r scheduler.Round) (vclock.Duration, runtime.ReduceStage, error) {
	l.calls++
	return 0, nil, &scheduler.RoundLostError{Round: r, Elapsed: 5, Err: errors.New("injected loss")}
}

// TestPoliciesShareRequeueBound: the serial and pipelined stage
// policies run the same engine-owned requeue semantics — identical
// attempt counts and an identical giving-up error. This is the drift
// guard for the MaxRequeues bound the two legacy drivers used to
// duplicate.
func TestPoliciesShareRequeueBound(t *testing.T) {
	errs := make(map[bool]string)
	for _, pipeline := range []bool{false, true} {
		sched := core.New(parityPlan(t, 2), nil)
		exec := &lostExec{}
		_, err := runtime.RunTrace(sched, exec, []runtime.Arrival{{Job: parityMeta(1), At: 0}},
			runtime.Options{Pipeline: pipeline, MaxRequeues: 3})
		if err == nil {
			t.Fatalf("pipeline=%v: permanently lost round succeeded", pipeline)
		}
		if !strings.Contains(err.Error(), "giving up") {
			t.Errorf("pipeline=%v: error %q does not mention giving up", pipeline, err)
		}
		if exec.calls != 4 {
			t.Errorf("pipeline=%v: executor called %d times, want 4 (1 + 3 requeues)", pipeline, exec.calls)
		}
		errs[pipeline] = err.Error()
	}
	if errs[false] != errs[true] {
		t.Errorf("policies give different requeue errors:\nserial:    %s\npipelined: %s",
			errs[false], errs[true])
	}
}

// failDrainExec fails job 2's own code on its first round and reports
// it through the FailureReporter protocol, in both stage shapes.
type failDrainExec struct {
	reported bool
	failures []scheduler.JobFailure
	stats    metrics.FaultStats
}

func (f *failDrainExec) fail(r scheduler.Round) {
	for _, j := range r.Jobs {
		if j.ID == 2 && !f.reported {
			f.reported = true
			f.failures = append(f.failures, scheduler.JobFailure{ID: j.ID, Err: errors.New("mapper exploded")})
			f.stats.FailedAttempts++
		}
	}
}

func (f *failDrainExec) ExecRound(r scheduler.Round) (vclock.Duration, error) {
	f.fail(r)
	return 10, nil
}

func (f *failDrainExec) ExecMapStage(r scheduler.Round) (vclock.Duration, runtime.ReduceStage, error) {
	f.fail(r)
	return 6, func() (vclock.Duration, error) { return 4, nil }, nil
}

func (f *failDrainExec) TakeJobFailures() []scheduler.JobFailure {
	out := f.failures
	f.failures = nil
	return out
}

func (f *failDrainExec) FaultStats() metrics.FaultStats { return f.stats }

// TestPoliciesShareFailureDrain: per-job failures drain identically
// under both policies — same failed set, no incomplete survivors, same
// folded fault stats.
func TestPoliciesShareFailureDrain(t *testing.T) {
	type outcome struct {
		failed   []scheduler.JobID
		rounds   int
		failJobs int
		attempts int
	}
	outcomes := make(map[bool]outcome)
	for _, pipeline := range []bool{false, true} {
		sched := core.New(parityPlan(t, 2), nil)
		exec := &failDrainExec{}
		res, err := runtime.RunTrace(sched, exec, []runtime.Arrival{
			{Job: parityMeta(1), At: 0},
			{Job: parityMeta(2), At: 0},
		}, runtime.Options{Pipeline: pipeline})
		if err != nil {
			t.Fatalf("pipeline=%v: %v", pipeline, err)
		}
		if n := len(res.Metrics.Incomplete()); n != 0 {
			t.Fatalf("pipeline=%v: %d incomplete jobs, want 0", pipeline, n)
		}
		fs := res.Metrics.FaultStats()
		outcomes[pipeline] = outcome{
			failed:   res.Metrics.Failed(),
			rounds:   res.Rounds,
			failJobs: fs.FailedJobs,
			attempts: fs.FailedAttempts,
		}
	}
	s, p := outcomes[false], outcomes[true]
	if len(s.failed) != 1 || s.failed[0] != 2 {
		t.Fatalf("serial failed = %v, want [2]", s.failed)
	}
	if len(p.failed) != 1 || p.failed[0] != 2 || s.rounds != p.rounds ||
		s.failJobs != p.failJobs || s.attempts != p.attempts {
		t.Errorf("drain outcomes diverge: serial %+v, pipelined %+v", s, p)
	}
}
