package runtime_test

import (
	"fmt"
	"sync"
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/metrics"
	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// fixedExec prices every round at 10s, splitting 6s scan / 4s reduce
// for the pipelined protocol.
type fixedExec struct{}

func (fixedExec) ExecRound(scheduler.Round) (vclock.Duration, error) { return 10, nil }

func (fixedExec) ExecMapStage(scheduler.Round) (vclock.Duration, runtime.ReduceStage, error) {
	return 6, func() (vclock.Duration, error) { return 4, nil }, nil
}

// TestLiveAdmissionJoinsCurrentPass: jobs submitted while a pass is in
// flight are admitted at the next round boundary — the paper's online
// JQM behavior — and every one completes, with its lifecycle tracked
// and a job-admitted trace event recorded.
func TestLiveAdmissionJoinsCurrentPass(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		t.Run(fmt.Sprintf("pipeline=%v", pipeline), func(t *testing.T) {
			const lateJobs = 3
			src := runtime.NewLiveSource()
			if _, err := src.Submit(scheduler.JobMeta{Name: "initial", File: "input", Weight: 1, ReduceWeight: 1}); err != nil {
				t.Fatal(err)
			}
			// Submit one more job after each of the first rounds
			// settles, from a separate goroutine, so admission really
			// happens mid-pass.
			roundDone := make(chan struct{}, 64)
			hooks := runtime.Hooks{
				OnRoundDone: func(scheduler.Round, vclock.Time, []scheduler.JobID) {
					select {
					case roundDone <- struct{}{}:
					default:
					}
				},
			}
			go func() {
				for i := 0; i < lateJobs; i++ {
					<-roundDone
					name := fmt.Sprintf("late-%d", i)
					if _, err := src.Submit(scheduler.JobMeta{Name: name, File: "input", Weight: 1, ReduceWeight: 1}); err != nil {
						t.Errorf("late submit %d: %v", i, err)
					}
				}
				src.Close()
			}()

			log := trace.MustNew(4096)
			reg := metrics.NewRegistry()
			sched := core.New(parityPlan(t, 4), nil)
			res, err := runtime.Run(sched, fixedExec{}, src, runtime.Options{
				Pipeline: pipeline,
				Hooks:    hooks,
				Spans:    log,
				Metrics:  metrics.NewRunMetrics(reg),
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Metrics.Jobs(); got != 1+lateJobs {
				t.Fatalf("completed jobs = %d, want %d", got, 1+lateJobs)
			}
			for _, js := range src.Jobs() {
				if js.State != runtime.JobDone {
					t.Errorf("job %d (%s) state = %q, want done", js.ID, js.Name, js.State)
				}
				if js.ID > 1 && js.AdmittedAt <= 0 {
					t.Errorf("late job %d admitted at %v, want mid-pass (> 0)", js.ID, js.AdmittedAt)
				}
			}
			admitted := log.OfKind(trace.JobAdmitted)
			if len(admitted) != 1+lateJobs {
				t.Errorf("job-admitted events = %d, want %d", len(admitted), 1+lateJobs)
			}
		})
	}
}

// TestLiveAdmissionConcurrentSubmitters floods the admission queue
// from many goroutines while the engine runs. Run under -race, this is
// the proof the LiveSource/engine handshake is sound; functionally,
// every submission must complete exactly once.
func TestLiveAdmissionConcurrentSubmitters(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		t.Run(fmt.Sprintf("pipeline=%v", pipeline), func(t *testing.T) {
			const submitters, perSubmitter = 4, 3
			src := runtime.NewLiveSource()
			var wg sync.WaitGroup
			for g := 0; g < submitters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perSubmitter; i++ {
						meta := scheduler.JobMeta{
							Name: fmt.Sprintf("g%d-%d", g, i), File: "input",
							Weight: 1, ReduceWeight: 1,
						}
						if _, err := src.Submit(meta); err != nil {
							t.Errorf("submit g%d-%d: %v", g, i, err)
						}
					}
				}(g)
			}
			go func() {
				wg.Wait()
				src.Close()
			}()
			sched := core.New(parityPlan(t, 3), nil)
			res, err := runtime.Run(sched, fixedExec{}, src, runtime.Options{Pipeline: pipeline})
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Metrics.Jobs(); got != submitters*perSubmitter {
				t.Fatalf("completed jobs = %d, want %d", got, submitters*perSubmitter)
			}
			for _, js := range src.Jobs() {
				if js.State != runtime.JobDone {
					t.Errorf("job %d state = %q, want done", js.ID, js.State)
				}
			}
		})
	}
}

// TestLiveSourceEmptyCloseTerminates: closing an untouched queue ends
// the run immediately with zero rounds — the daemon shutdown path when
// nothing was ever submitted.
func TestLiveSourceEmptyCloseTerminates(t *testing.T) {
	src := runtime.NewLiveSource()
	src.Close()
	res, err := runtime.Run(core.New(parityPlan(t, 2), nil), fixedExec{}, src, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Errorf("rounds = %d, want 0", res.Rounds)
	}
}
