package runtime

import (
	"errors"
	"fmt"

	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// stagePolicy is the pluggable half of the engine: how a formed round
// turns into executed work and retired completions. The engine owns
// everything policy-independent — arrival admission, requeue
// accounting, failure draining, stats folding, idle timing — so those
// semantics are shared by construction.
type stagePolicy interface {
	// start spins up any background workers the policy needs.
	start()
	// launch runs round r from launch time now, advancing the engine
	// clock by the synchronous stage work. It either retires the round
	// inline (serial) or queues its reduce stage (pipelined). A
	// *scheduler.RoundLostError return is requeued by the engine; any
	// other error aborts the run.
	launch(r scheduler.Round, now vclock.Time) error
	// poll opportunistically retires rounds whose asynchronous work has
	// finished within virtual time now. No-op for the serial policy.
	poll(now vclock.Time) error
	// idle handles an idle scheduler given the earliest known external
	// event (target, when have). It reports handled=true when it made
	// progress (advanced the clock or retired a round) and the loop
	// should re-poll the scheduler.
	idle(now vclock.Time, target vclock.Time, have bool) (handled bool, err error)
	// drain blocks until every in-flight asynchronous stage has
	// reported, so error returns never leak goroutines mid-stage.
	drain()
	// shutdown releases the policy's background workers.
	shutdown()
}

// engine is one run of the unified round loop.
type engine struct {
	sched scheduler.Scheduler
	exec  Executor
	src   ArrivalSource
	// trk is src's lifecycle-callback side, when it has one.
	trk JobTracker
	// mem is exec's dynamic-membership side, when it has one; its
	// deltas are drained every loop iteration.
	mem         MembershipSource
	hooks       Hooks
	maxRequeues int
	pol         stagePolicy

	clock *vclock.Virtual
	coll  *metrics.Collector
	tele  *telemetry
	res   *Result
	// failed persists across rounds — under pipelining a failure
	// drained at an earlier round's retire must not be double-counted
	// when a later round reports the same job completed.
	failed map[scheduler.JobID]bool
	// requeues counts consecutive requeues of the current round.
	requeues int
	// commits is the write-ahead commit sink, nil when not journaling.
	commits CommitLog
	// stop requests a graceful exit at the next round boundary.
	stop <-chan struct{}
	// restored are journal-recovered jobs to seed into the collector.
	restored []RestoredJob
}

func newEngine(sched scheduler.Scheduler, exec Executor, src ArrivalSource, opts Options) *engine {
	maxRequeues := opts.MaxRequeues
	if maxRequeues <= 0 {
		maxRequeues = DefaultMaxRequeues
	}
	e := &engine{
		sched:       sched,
		exec:        exec,
		src:         src,
		hooks:       opts.Hooks,
		maxRequeues: maxRequeues,
		clock:       vclock.NewVirtual(),
		coll:        metrics.NewCollector(),
		tele:        newTelemetry(opts),
		failed:      make(map[scheduler.JobID]bool),
		commits:     opts.Commits,
		stop:        opts.Stop,
		restored:    opts.Restored,
		requeues:    opts.InitialRequeues,
	}
	if trk, ok := src.(JobTracker); ok {
		e.trk = trk
	}
	if mem, ok := exec.(MembershipSource); ok {
		e.mem = mem
	}
	e.res = &Result{Metrics: e.coll}
	e.pol = &serialPolicy{e: e}
	if WillPipeline(sched, exec, opts) {
		e.pol = newPipelinedPolicy(e, sched.(scheduler.StageAware), exec.(StageExecutor), opts)
	}
	return e
}

// WillPipeline reports whether a run with this scheduler, executor and
// options would use the stage-pipelined policy: pipelining must be
// requested AND both sides must be stage-capable. Callers that label
// results by execution mode (the benchmark harness's matrix cells) use
// it to record what actually engaged rather than what was asked —
// MRShare, for example, is never stage-aware, so its "pipelined" cell
// is really a serial run.
func WillPipeline(sched scheduler.Scheduler, exec Executor, opts Options) bool {
	if !opts.Pipeline {
		return false
	}
	_, okExec := exec.(StageExecutor)
	_, okSched := sched.(scheduler.StageAware)
	return okExec && okSched
}

// run is the state machine: admit due arrivals → form round → execute
// (policy) → drain failures → requeue-or-retire → fold stats.
func (e *engine) run() (*Result, error) {
	if e.src == nil {
		return nil, fmt.Errorf("runtime: nil arrival source")
	}
	e.pol.start()
	defer e.pol.shutdown()
	e.tele.beginRun(e.sched.Name(), e.clock.Now())
	// Journal-recovered jobs are already in the scheduler; give each a
	// collector entry so the submit→start→complete lifecycle holds.
	for _, rj := range e.restored {
		e.coll.Submit(rj.ID, rj.At)
		e.tele.jobSubmitted()
	}
	for {
		if e.stopRequested() {
			break
		}
		now := e.clock.Now()
		e.drainMembership(now)
		if err := e.deliverDue(now); err != nil {
			e.pol.drain()
			return nil, err
		}
		if err := e.pol.poll(now); err != nil {
			e.pol.drain()
			return nil, err
		}
		r, ok := e.sched.NextRound(now)
		if !ok {
			// Idle scheduler: the next event is whichever comes first —
			// the next arrival, the scheduler's own timer, or whatever
			// asynchronous work the policy still has draining.
			target, have := e.nextEvent(now)
			handled, err := e.pol.idle(now, target, have)
			if err != nil {
				e.pol.drain()
				return nil, err
			}
			if handled {
				continue
			}
			if have {
				if target < now {
					target = now
				}
				e.clock.AdvanceTo(target)
				continue
			}
			// No work, no timers, nothing draining. A live source may
			// still produce arrivals: park until it does or closes.
			if e.src.Wait() {
				continue
			}
			if e.stopRequested() {
				break
			}
			if e.sched.PendingJobs() > 0 {
				if st, isSt := e.sched.(Stalled); isSt && st.Stalled() {
					return nil, fmt.Errorf("runtime: scheduler %q stalled with %d pending job(s): %v",
						e.sched.Name(), e.sched.PendingJobs(), e.coll.Incomplete())
				}
				return nil, fmt.Errorf("runtime: scheduler %q idle but %d job(s) incomplete: %v",
					e.sched.Name(), e.sched.PendingJobs(), e.coll.Incomplete())
			}
			break
		}
		// The launch of a round is each included job's transition
		// from waiting to processing (§III-B decomposition).
		for _, id := range r.JobIDs() {
			if e.coll.Start(id, now) {
				e.tele.jobStarted(e.coll, id)
			}
		}
		if e.hooks.OnRoundStart != nil {
			e.hooks.OnRoundStart(r, now)
		}
		if err := e.pol.launch(r, now); err != nil {
			var lost *scheduler.RoundLostError
			if errors.As(err, &lost) {
				e.requeues++
				if lerr := e.requeueLost(r, lost); lerr != nil {
					e.pol.drain()
					return nil, lerr
				}
				e.tele.roundLost(r)
				// Arrivals during the failed attempt still join the
				// queue; the re-formed round aligns them too.
				continue
			}
			e.pol.drain()
			return nil, err
		}
	}
	e.drainMembership(e.clock.Now())
	e.finishStats()
	e.res.End = e.clock.Now()
	e.res.Requeues = e.requeues
	e.tele.endRun(e.coll, e.res.End, e.res.Rounds)
	return e.res, nil
}

// stopRequested reports whether Options.Stop has fired. The first
// observation drains the policy's asynchronous stages (so no reduce is
// mid-flight when the caller checkpoints) and marks the result
// stopped.
func (e *engine) stopRequested() bool {
	if e.stop == nil {
		return false
	}
	select {
	case <-e.stop:
		if !e.res.Stopped {
			e.pol.drain()
			e.res.Stopped = true
		}
		return true
	default:
		return false
	}
}

// drainMembership pulls the executor's pending membership transitions
// into the telemetry sinks. Cluster churn happens on the wall clock;
// events are stamped with the virtual time at which the run loop
// observed them — the instant the information could first influence a
// scheduling decision.
func (e *engine) drainMembership(now vclock.Time) {
	if e.mem == nil {
		return
	}
	evs := e.mem.TakeMemberEvents()
	if len(evs) == 0 {
		return
	}
	for _, ev := range evs {
		e.tele.memberEvent(now, ev)
	}
	e.tele.workersConnected(e.mem.LiveWorkers())
}

// deliverDue admits every arrival due at now into the scheduler. This
// runs at the top of each loop iteration and — in the serial policy —
// again right after a round's clock advance, so jobs that arrived
// while the round ran join the queue before the round is retired and
// the very next round can include them (S^3 dynamic sub-job
// adjustment, §IV-D2).
func (e *engine) deliverDue(now vclock.Time) error {
	arrivals := e.src.Pop(now)
	for _, a := range arrivals {
		if err := e.sched.Submit(a.Job, a.At); err != nil {
			return err
		}
		e.coll.Submit(a.Job.ID, a.At)
		e.tele.jobSubmitted()
		if e.trk != nil {
			e.trk.JobAdmitted(a.Job.ID, a.At)
			e.tele.jobAdmitted(a.Job.ID, a.At)
		}
	}
	if len(arrivals) > 0 {
		e.tele.admissionDepth(e.src.Pending())
	}
	return nil
}

// nextEvent reports the earliest pending external event: the next
// queued arrival or the scheduler's own timer (window batchers).
func (e *engine) nextEvent(now vclock.Time) (vclock.Time, bool) {
	var target vclock.Time
	have := false
	if at, ok := e.src.Peek(); ok {
		target = at
		have = true
	}
	if w, isWaker := e.sched.(Waker); isWaker {
		if wake, wok := w.NextWake(now); wok && wake > now && (!have || wake < target) {
			target = wake
			have = true
		}
	}
	return target, have
}

// requeueLost processes a round-loss error: advance the clock by the
// time the failed execution consumed, then return the round to a
// Recoverable scheduler. Returns an error when the scheduler cannot
// recover or the consecutive-requeue bound is exhausted. This is the
// single MaxRequeues implementation both stage policies run through.
func (e *engine) requeueLost(r scheduler.Round, lost *scheduler.RoundLostError) error {
	rec, ok := e.sched.(scheduler.Recoverable)
	if !ok {
		return fmt.Errorf("runtime: round over segment %d lost and scheduler %q cannot requeue: %w", r.Segment, e.sched.Name(), lost)
	}
	if e.requeues > e.maxRequeues {
		return fmt.Errorf("runtime: round over segment %d lost %d consecutive times, giving up: %w", r.Segment, e.requeues, lost)
	}
	if lost.Elapsed < 0 {
		return fmt.Errorf("runtime: executor returned negative lost-round elapsed %v", lost.Elapsed)
	}
	e.clock.Advance(lost.Elapsed)
	rec.RequeueRound(r, e.clock.Now())
	e.coll.AddFaultStats(metrics.FaultStats{RequeuedRounds: 1, RequeuedSubJobs: len(r.Jobs)})
	return nil
}

// settleRound records a retired round's completions and drains the
// executor's per-job failure reports: failed jobs are marked failed
// (not completed) and aborted in the scheduler so no future round
// includes them. This is the single FailureReporter drain both stage
// policies run through.
func (e *engine) settleRound(r scheduler.Round, now vclock.Time, completed []scheduler.JobID) error {
	var fresh []scheduler.JobID
	if fr, ok := e.exec.(FailureReporter); ok {
		for _, jf := range fr.TakeJobFailures() {
			if e.failed[jf.ID] {
				continue
			}
			e.failed[jf.ID] = true
			e.coll.Fail(jf.ID, now)
			e.tele.jobFailed()
			if e.trk != nil {
				e.trk.JobFinished(jf.ID, now, true)
			}
			fresh = append(fresh, jf.ID)
		}
	}
	done := make(map[scheduler.JobID]bool, len(completed))
	for _, id := range completed {
		done[id] = true
		if e.failed[id] {
			continue // recorded as failed, and already retired by the scheduler
		}
		e.coll.Complete(id, now)
		e.tele.jobCompleted(e.coll, id)
		if e.trk != nil {
			e.trk.JobFinished(id, now, false)
		}
	}
	var abort []scheduler.JobID
	for _, id := range fresh {
		if !done[id] {
			abort = append(abort, id)
		}
	}
	if len(abort) > 0 {
		rec, ok := e.sched.(scheduler.Recoverable)
		if !ok {
			return fmt.Errorf("runtime: job(s) %v failed and scheduler %q cannot abort them", abort, e.sched.Name())
		}
		rec.AbortJobs(abort, now)
	}
	if e.commits != nil {
		// Round-commit point: the scheduler just retired the round, so
		// its state is consistent and (serial mode) snapshottable. Under
		// pipelining a snapshot may legitimately fail while reduces
		// drain; the journal then records the round without one and
		// recovery falls back to resubmitting pending jobs.
		var snapPtr *scheduler.Snapshot
		if sn, ok := e.sched.(scheduler.Snapshottable); ok {
			if snap, err := sn.StateSnapshot(); err == nil {
				snapPtr = &snap
			}
		}
		e.commits.RoundCommitted(r, now, snapPtr, e.requeues)
		for _, id := range fresh {
			e.commits.JobFailed(id, now)
		}
		for _, id := range completed {
			if !e.failed[id] {
				e.commits.JobDone(id, now)
			}
		}
	}
	if e.hooks.OnRoundDone != nil {
		e.hooks.OnRoundDone(r, now, completed)
	}
	return nil
}

// finishStats folds the executor's fault and cache counters into the
// run's metrics once the loop ends.
func (e *engine) finishStats() {
	if src, ok := e.exec.(FaultStatsSource); ok {
		e.coll.AddFaultStats(src.FaultStats())
	}
	if src, ok := e.exec.(CacheStatsSource); ok {
		e.coll.AddCacheStats(src.CacheStats())
	}
}
