package runtime

import (
	"fmt"
	"sync"
	"testing"

	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// The admission races the DAG work exposes, exercised under -race (CI
// runs this package with -race -shuffle=on -count=2).

// Submissions racing Close and the engine's drain: every submission
// that returns success must be delivered by some Pop — a job accepted
// into a closing queue cannot be dropped — and submissions after the
// close must fail, never wedge.
func TestLiveSourceSubmitRacesCloseDrain(t *testing.T) {
	const submitters = 8
	const perSubmitter = 50

	src := NewLiveSource()
	accepted := make(chan scheduler.JobID, submitters*perSubmitter)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perSubmitter; j++ {
				id, err := src.Submit(scheduler.JobMeta{Name: fmt.Sprintf("s%d-%d", i, j), File: "corpus"})
				if err != nil {
					return // closed underneath us: everything later fails too
				}
				accepted <- id
			}
		}(i)
	}

	// The engine side: drain until Wait reports closed-and-empty.
	delivered := make(map[scheduler.JobID]bool)
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for src.Wait() {
			for _, a := range src.Pop(vclock.Time(1)) {
				delivered[a.Job.ID] = true
			}
		}
		for _, a := range src.Pop(vclock.Time(2)) {
			delivered[a.Job.ID] = true
		}
	}()

	src.Close()
	wg.Wait()
	close(accepted)
	// Post-close submissions must fail fast.
	if _, err := src.Submit(scheduler.JobMeta{Name: "late"}); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
	drainWG.Wait()

	for id := range accepted {
		if !delivered[id] {
			t.Fatalf("job %d was accepted but never delivered", id)
		}
	}
}

// Recovery's Adopt of settled producers racing held submissions of
// their dependents: ids must stay collision-free and every held job
// must stay waiting until explicitly released.
func TestLiveSourceAdoptRacesPendingDependents(t *testing.T) {
	const pairs = 24
	src := NewLiveSource()

	var wg sync.WaitGroup
	heldIDs := make([]scheduler.JobID, pairs)
	for i := 0; i < pairs; i++ {
		wg.Add(2)
		producer := scheduler.JobID(1000 + i)
		go func(p scheduler.JobID) {
			defer wg.Done()
			if err := src.Adopt(scheduler.JobMeta{ID: p, Name: "recovered"}, JobDone, 0, 5); err != nil {
				t.Errorf("Adopt %d: %v", p, err)
			}
		}(producer)
		go func(i int, p scheduler.JobID) {
			defer wg.Done()
			// Explicit ids in a disjoint range: auto-assignment could land
			// on a producer id whose Adopt has not run yet.
			id, err := src.SubmitHeldWith(scheduler.JobMeta{ID: scheduler.JobID(5000 + i), Name: "dependent"}, []scheduler.JobID{p}, nil)
			if err != nil {
				t.Errorf("SubmitHeldWith: %v", err)
				return
			}
			heldIDs[i] = id
		}(i, producer)
	}
	wg.Wait()

	if got := src.Held(); got != pairs {
		t.Fatalf("Held() = %d, want %d", got, pairs)
	}
	for _, id := range heldIDs {
		st, ok := src.Status(id)
		if !ok || st.State != JobWaiting {
			t.Fatalf("held job %d state = %v, want waiting", id, st.State)
		}
		if len(st.DependsOn) != 1 {
			t.Fatalf("held job %d DependsOn = %v", id, st.DependsOn)
		}
	}
	// Held jobs never show up in Pop until released.
	if got := src.Pop(1); len(got) != 0 {
		t.Fatalf("Pop delivered held jobs: %+v", got)
	}

	// Concurrent releases: everything lands in the queue exactly once.
	for _, id := range heldIDs {
		wg.Add(1)
		go func(id scheduler.JobID) {
			defer wg.Done()
			if err := src.Release(id); err != nil {
				t.Errorf("Release %d: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	if got := src.Pending(); got != pairs {
		t.Fatalf("Pending() = %d, want %d", got, pairs)
	}
	if got := src.Pop(2); len(got) != pairs {
		t.Fatalf("Pop delivered %d, want %d", len(got), pairs)
	}
}

func TestLiveSourceHeldLifecycle(t *testing.T) {
	src := NewLiveSource()
	pid, err := src.Submit(scheduler.JobMeta{Name: "producer", File: "corpus"})
	if err != nil {
		t.Fatal(err)
	}
	cid, err := src.SubmitHeldWith(scheduler.JobMeta{Name: "consumer"}, []scheduler.JobID{pid}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if src.Held() != 1 {
		t.Fatalf("Held() = %d, want 1", src.Held())
	}
	if err := src.Release(cid + 99); err == nil {
		t.Fatal("Release of unknown id succeeded")
	}
	if err := src.FailHeld(cid+99, 0); err == nil {
		t.Fatal("FailHeld of unknown id succeeded")
	}

	// A held job's pre-hook failure must not consume the id.
	if _, err := src.SubmitHeldWith(scheduler.JobMeta{Name: "bad"}, nil, func(scheduler.JobID) error {
		return fmt.Errorf("refused")
	}); err == nil {
		t.Fatal("pre-hook failure not propagated")
	}

	victim, err := src.SubmitHeldWith(scheduler.JobMeta{Name: "victim"}, []scheduler.JobID{pid}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.FailHeld(victim, vclock.Time(7)); err != nil {
		t.Fatal(err)
	}
	if st, _ := src.Status(victim); st.State != JobFailed || st.DoneAt != 7 {
		t.Fatalf("failed-held status = %+v", st)
	}

	// Release works after Close: held jobs whose dependencies settle
	// during drain still run.
	src.Close()
	if err := src.Release(cid); err != nil {
		t.Fatalf("Release after Close: %v", err)
	}
	if st, _ := src.Status(cid); st.State != JobQueued {
		t.Fatalf("released status = %+v", st)
	}
	if _, err := src.SubmitHeldWith(scheduler.JobMeta{Name: "late"}, nil, nil); err == nil {
		t.Fatal("SubmitHeldWith after Close succeeded")
	}
	if err := src.AdoptHeld(scheduler.JobMeta{ID: 500, Name: "late"}, nil); err == nil {
		t.Fatal("AdoptHeld after Close succeeded")
	}
}

func TestLiveSourceAdoptValidation(t *testing.T) {
	src := NewLiveSource()
	if err := src.Adopt(scheduler.JobMeta{Name: "anon"}, JobDone, 0, 0); err == nil {
		t.Fatal("Adopt without id succeeded")
	}
	if err := src.AdoptHeld(scheduler.JobMeta{Name: "anon"}, nil); err == nil {
		t.Fatal("AdoptHeld without id succeeded")
	}
	if err := src.Adopt(scheduler.JobMeta{ID: 3, Name: "done"}, JobDone, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := src.Adopt(scheduler.JobMeta{ID: 3, Name: "dup"}, JobDone, 0, 0); err == nil {
		t.Fatal("duplicate Adopt succeeded")
	}
	if err := src.AdoptHeld(scheduler.JobMeta{ID: 3, Name: "dup"}, nil); err == nil {
		t.Fatal("AdoptHeld over settled id succeeded")
	}
	// Adopted ids reserve the id space: the next auto-assigned id must
	// not collide.
	id, err := src.Submit(scheduler.JobMeta{Name: "next"})
	if err != nil {
		t.Fatal(err)
	}
	if id <= 3 {
		t.Fatalf("auto-assigned id %d collides with adopted id space", id)
	}
	src.SetDependsOn(id, []scheduler.JobID{3})
	if st, _ := src.Status(id); len(st.DependsOn) != 1 || st.DependsOn[0] != 3 {
		t.Fatalf("SetDependsOn not visible: %+v", st)
	}
	src.SetDependsOn(9999, []scheduler.JobID{1}) // unknown id: no-op, no panic
	if st, _ := src.Status(3); st.AdmittedAt != 1 || st.DoneAt != 2 {
		t.Fatalf("adopted timestamps lost: %+v", st)
	}
}
