package runtime

import (
	"errors"
	"fmt"

	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// isRoundLost reports whether err is (or wraps) a round-loss the
// engine should requeue rather than abort on.
func isRoundLost(err error) bool {
	var lost *scheduler.RoundLostError
	return errors.As(err, &lost)
}

type stageOutcome struct {
	dur vclock.Duration
	err error
}

// pendingRound is a round whose scan/map stage finished but which has
// not been retired yet: its reduce stage is queued, running, or done.
type pendingRound struct {
	r        scheduler.Round
	seq      int
	stage    ReduceStage
	mapStart vclock.Time
	mapEnd   vclock.Time
	mapDur   vclock.Duration
	outcome  chan stageOutcome
	// got/out stash a received outcome so non-blocking polls are not
	// lost when the round cannot retire yet.
	got bool
	out stageOutcome
}

// pipelinedPolicy is the stage-pipelined execution mode. The virtual
// clock is driven by map stages: as soon as round N's map finishes the
// scheduler is told (MapDone) and round N+1 may form, while N's reduce
// drains on one of ReduceWorkers workers. Reduce time is charged
// against virtual reduce slots — a round's reduce starts at
// max(its map end, earliest slot free) — and rounds retire strictly in
// launch order (retire = max(own reduce end, previous retire)), which
// preserves the paper's Algorithm-1 completion semantics: RoundDone is
// still called once per round, in round order, with the reduce-end
// time.
type pipelinedPolicy struct {
	e    *engine
	sa   scheduler.StageAware
	exec StageExecutor

	workers int
	// tasks feeds reduce stages to the worker pool in FIFO launch
	// order. The buffer only affects wall-clock batching, never virtual
	// timing: measured reduce durations come from inside the stages.
	tasks chan *pendingRound
	// slotFree are the virtual reduce slots; inflight is launch order,
	// head retires first; lastRetire is the retirement frontier.
	slotFree   []vclock.Time
	inflight   []*pendingRound
	lastRetire vclock.Time
	seq        int
	closed     bool
}

func newPipelinedPolicy(e *engine, sa scheduler.StageAware, exec StageExecutor, opts Options) *pipelinedPolicy {
	workers := opts.ReduceWorkers
	if workers <= 0 {
		workers = DefaultReduceWorkers
	}
	return &pipelinedPolicy{
		e:        e,
		sa:       sa,
		exec:     exec,
		workers:  workers,
		slotFree: make([]vclock.Time, workers),
	}
}

func (p *pipelinedPolicy) start() {
	p.tasks = make(chan *pendingRound, 4*p.workers)
	for w := 0; w < p.workers; w++ {
		go func() {
			for t := range p.tasks {
				d, err := t.stage()
				t.outcome <- stageOutcome{dur: d, err: err}
			}
		}()
	}
}

func (p *pipelinedPolicy) shutdown() {
	if p.closed || p.tasks == nil {
		return
	}
	p.closed = true
	close(p.tasks)
}

// await fetches h's outcome, blocking or polling.
func (p *pipelinedPolicy) await(h *pendingRound, block bool) bool {
	if h.got {
		return true
	}
	if block {
		h.out = <-h.outcome
		h.got = true
		return true
	}
	select {
	case h.out = <-h.outcome:
		h.got = true
		return true
	default:
		return false
	}
}

// drain blocks until every in-flight reduce stage has reported, so
// error returns never leak goroutines mid-stage.
func (p *pipelinedPolicy) drain() {
	for _, h := range p.inflight {
		p.await(h, true)
	}
}

// plan computes, without committing, where h's reduce runs and when
// the round would retire. Valid only for the head of inflight (the
// slot assignment assumes every earlier round has been planned).
func (p *pipelinedPolicy) plan(h *pendingRound) (slot int, start, end, retire vclock.Time) {
	slot = 0
	for i := range p.slotFree {
		if p.slotFree[i] < p.slotFree[slot] {
			slot = i
		}
	}
	start = h.mapEnd
	if p.slotFree[slot] > start {
		start = p.slotFree[slot]
	}
	end = start.Add(h.out.dur)
	retire = end
	if p.lastRetire > retire {
		retire = p.lastRetire
	}
	return
}

// retire commits the head round: charges its reduce to a slot, records
// the stage timeline, and reports RoundDone/completions at the
// retirement time.
func (p *pipelinedPolicy) retire() error {
	e := p.e
	h := p.inflight[0]
	if h.out.err != nil {
		return fmt.Errorf("runtime: reduce stage of round over segment %d failed: %w", h.r.Segment, h.out.err)
	}
	if h.out.dur < 0 {
		return fmt.Errorf("runtime: executor returned negative reduce duration %v", h.out.dur)
	}
	slot, start, end, ret := p.plan(h)
	p.slotFree[slot] = end
	p.lastRetire = ret
	e.coll.AddRoundStages(metrics.RoundStages{
		Seq:         h.seq,
		Segment:     h.r.Segment,
		MapStart:    h.mapStart,
		MapEnd:      h.mapEnd,
		ReduceStart: start,
		ReduceEnd:   end,
		Retired:     ret,
	})
	// Record before settling so rounds-per-job counts include the
	// round a job completes in.
	e.tele.recordRound(h.r, h.seq, h.mapStart, h.mapEnd, start, end, ret, h.mapDur, h.out.dur, true)
	completed := e.sched.RoundDone(h.r, ret)
	if err := e.settleRound(h.r, ret, completed); err != nil {
		return err
	}
	e.tele.queueDepth(e.sched.PendingJobs())
	p.inflight = p.inflight[1:]
	return nil
}

// poll opportunistically retires rounds whose reduce has both finished
// running and finished within the current virtual time, keeping
// completions (and hooks) as timely as in the serial policy.
func (p *pipelinedPolicy) poll(now vclock.Time) error {
	for len(p.inflight) > 0 && p.await(p.inflight[0], false) {
		h := p.inflight[0]
		if h.out.err == nil && h.out.dur >= 0 {
			if _, _, _, ret := p.plan(h); ret > now {
				break
			}
		}
		if err := p.retire(); err != nil {
			return err
		}
	}
	return nil
}

// idle drains the oldest in-flight reduce when the scheduler has
// nothing runnable. If an arrival or scheduler timer lands before the
// oldest reduce retires, the clock wakes for it instead, so the next
// round's scan starts under the draining reduce.
func (p *pipelinedPolicy) idle(now vclock.Time, target vclock.Time, have bool) (bool, error) {
	if len(p.inflight) == 0 {
		return false, nil
	}
	h := p.inflight[0]
	p.await(h, true)
	if h.out.err == nil && h.out.dur >= 0 {
		if _, _, _, ret := p.plan(h); have && target < ret {
			if target < now {
				target = now
			}
			p.e.clock.AdvanceTo(target)
			return true, nil
		}
	}
	if err := p.retire(); err != nil {
		return true, err
	}
	if p.lastRetire > p.e.clock.Now() {
		p.e.clock.AdvanceTo(p.lastRetire)
	}
	return true, nil
}

func (p *pipelinedPolicy) launch(r scheduler.Round, now vclock.Time) error {
	e := p.e
	mapDur, stage, err := p.exec.ExecMapStage(r)
	if err != nil {
		if isRoundLost(err) {
			// The scheduler has not been told MapDone, so its state
			// still holds the round; the engine returns it to the queue
			// and the next NextRound re-forms the same batch.
			return err
		}
		return fmt.Errorf("runtime: map stage of round over segment %d failed: %w", r.Segment, err)
	}
	if mapDur < 0 {
		return fmt.Errorf("runtime: executor returned negative map duration %v", mapDur)
	}
	if stage == nil {
		return fmt.Errorf("runtime: executor returned a nil reduce stage for segment %d", r.Segment)
	}
	e.requeues = 0
	e.res.Rounds++
	e.clock.Advance(mapDur)
	mapEnd := e.clock.Now()
	// The scheduler's state (cursor, active set) advances at map end:
	// the next round may be formed while this round's reduce drains.
	p.sa.MapDone(r, mapEnd)
	h := &pendingRound{
		r:        r,
		seq:      p.seq,
		stage:    stage,
		mapStart: now,
		mapEnd:   mapEnd,
		mapDur:   mapDur,
		outcome:  make(chan stageOutcome, 1),
	}
	p.seq++
	p.inflight = append(p.inflight, h)
	p.tasks <- h
	return nil
}
