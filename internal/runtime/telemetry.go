package runtime

import (
	"strconv"

	"s3sched/internal/comms"
	"s3sched/internal/metrics"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// telemetry is the engine's observability sink: a span log (hierarchy
// run → round → scan-stage/reduce-stage → per-job subjob) and a live
// metrics bundle. Both sinks are optional; a nil *telemetry (no sink
// configured) makes every method a no-op, so the run loop calls it
// unconditionally.
//
// Everything recorded here is a pure function of virtual-clock times
// and round compositions, so a deterministic executor (the simulator)
// yields byte-identical metric snapshots and identical span trees
// across runs — the property the telemetry tests pin down.
type telemetry struct {
	log *trace.Log
	rm  *metrics.RunMetrics
	run trace.SpanID
	// roundsOf counts rounds each job rode, observed into JobRounds at
	// completion.
	roundsOf map[scheduler.JobID]int
}

// newTelemetry returns nil when opts carries no sink.
func newTelemetry(opts Options) *telemetry {
	if opts.Spans == nil && opts.Metrics == nil {
		return nil
	}
	return &telemetry{
		log:      opts.Spans,
		rm:       opts.Metrics,
		roundsOf: make(map[scheduler.JobID]int),
	}
}

// active reports whether telemetry wants per-stage timings; the serial
// policy only splits rounds into stages when it does.
func (t *telemetry) active() bool { return t != nil }

func (t *telemetry) beginRun(scheme string, at vclock.Time) {
	if t == nil {
		return
	}
	t.run = t.log.StartSpan(at, "run", trace.SpanOpts{
		Cat: "driver", Job: -1, Segment: -1,
		Args: []trace.Arg{{Key: "scheme", Value: scheme}},
	})
}

func (t *telemetry) jobSubmitted() {
	if t == nil || t.rm == nil {
		return
	}
	t.rm.JobsSubmitted.Inc()
}

// jobAdmitted records a live-submitted job entering the scheduler's
// current pass. Only tracked (live) sources emit it, so batch trace
// replays stay byte-identical to the pre-admission-layer runs.
func (t *telemetry) jobAdmitted(id scheduler.JobID, at vclock.Time) {
	if t == nil || t.log == nil {
		return
	}
	t.log.Addf(at, trace.JobAdmitted, int(id), -1, "live admission into current pass")
}

// admissionDepth publishes the arrival source's queued-but-unadmitted
// job count after a delivery.
func (t *telemetry) admissionDepth(n int) {
	if t == nil || t.rm == nil {
		return
	}
	t.rm.AdmissionQueue.Set(float64(n))
}

// memberEvent renders one cluster-membership transition. Join, loss
// and rejoin land in the trace; heartbeat misses and reconnects bump
// their counters (a suspect transition is a liveness hiccup, not a
// scheduling decision, so it stays out of the event trace).
func (t *telemetry) memberEvent(at vclock.Time, ev comms.MemberEvent) {
	if t == nil {
		return
	}
	if t.log != nil {
		switch ev.Kind {
		case comms.MemberRegistered:
			t.log.Addf(at, trace.WorkerRegistered, -1, -1, "worker %s at %s", ev.Worker, ev.Detail)
		case comms.MemberRejoined:
			t.log.Addf(at, trace.WorkerRejoined, -1, -1, "worker %s at %s", ev.Worker, ev.Detail)
		case comms.MemberLost:
			t.log.Addf(at, trace.WorkerLost, -1, -1, "worker %s after %d missed heartbeat(s): %s", ev.Worker, ev.Misses, ev.Detail)
		}
	}
	if t.rm != nil {
		switch ev.Kind {
		case comms.MemberSuspect:
			t.rm.HeartbeatMisses.Inc()
		case comms.MemberRejoined:
			t.rm.WorkerReconnects.Inc()
		}
	}
}

// workersConnected publishes the live-worker gauge after a membership
// change.
func (t *telemetry) workersConnected(n int) {
	if t == nil || t.rm == nil {
		return
	}
	t.rm.WorkersConnected.Set(float64(n))
}

// jobStarted records a job's waiting interval the first time a round
// includes it.
func (t *telemetry) jobStarted(coll *metrics.Collector, id scheduler.JobID) {
	if t == nil || t.rm == nil {
		return
	}
	if w, err := coll.WaitingTime(id); err == nil {
		t.rm.JobWaiting.Observe(w.Seconds())
	}
}

// recordRound records one retired round: its span subtree and its
// duration/batch histograms. split reports whether the scan/reduce
// boundary is known; without it only the whole-round histogram is
// observed. The histograms observe the executor-reported stage
// durations (mapDur/redDur), not differences of absolute span times:
// durations are identical between serial and pipelined execution of
// the same priced workload down to the last bit, while absolute
// placement (and hence time differences) rounds differently.
func (t *telemetry) recordRound(r scheduler.Round, seq int,
	mapStart, mapEnd, redStart, redEnd, retired vclock.Time,
	mapDur, redDur vclock.Duration, split bool) {
	if t == nil {
		return
	}
	for _, id := range r.JobIDs() {
		t.roundsOf[id]++
	}
	if t.log != nil {
		round := t.log.StartSpan(mapStart, "round", trace.SpanOpts{
			Cat: "driver", Parent: t.run, Job: -1, Segment: r.Segment,
			Args: []trace.Arg{
				{Key: "seq", Value: strconv.Itoa(seq)},
				{Key: "batch", Value: strconv.Itoa(len(r.Jobs))},
				{Key: "blocks", Value: strconv.Itoa(len(r.Blocks))},
			},
		})
		if split {
			scan := t.log.StartSpan(mapStart, "scan-stage", trace.SpanOpts{
				Cat: "driver", Parent: round, Job: -1, Segment: r.Segment})
			t.log.EndSpan(scan, mapEnd)
			red := t.log.StartSpan(redStart, "reduce-stage", trace.SpanOpts{
				Cat: "driver", Parent: round, Job: -1, Segment: r.Segment})
			t.log.EndSpan(red, redEnd)
		}
		for _, sj := range r.Jobs {
			sub := t.log.StartSpan(mapStart, "subjob", trace.SpanOpts{
				Cat: "driver", Parent: round, Job: int(sj.ID), Segment: r.Segment})
			t.log.EndSpan(sub, redEnd)
		}
		t.log.EndSpan(round, retired)
	}
	if t.rm != nil {
		t.rm.RoundsTotal.Inc()
		t.rm.BatchWidth.Observe(float64(len(r.Jobs)))
		t.rm.RoundDuration.Observe((mapDur + redDur).Seconds())
		if split {
			t.rm.RoundScan.Observe(mapDur.Seconds())
			t.rm.RoundReduce.Observe(redDur.Seconds())
		}
	}
}

func (t *telemetry) roundLost(r scheduler.Round) {
	if t == nil || t.rm == nil {
		return
	}
	t.rm.RequeuedRounds.Inc()
	t.rm.RequeuedSubJobs.Add(float64(len(r.Jobs)))
}

func (t *telemetry) jobCompleted(coll *metrics.Collector, id scheduler.JobID) {
	if t == nil || t.rm == nil {
		return
	}
	t.rm.JobsCompleted.Inc()
	if rt, err := coll.ResponseTime(id); err == nil {
		t.rm.JobResponse.Observe(rt.Seconds())
	}
	t.rm.JobRounds.Observe(float64(t.roundsOf[id]))
}

func (t *telemetry) jobFailed() {
	if t == nil || t.rm == nil {
		return
	}
	t.rm.JobsFailed.Inc()
}

func (t *telemetry) queueDepth(n int) {
	if t == nil || t.rm == nil {
		return
	}
	t.rm.QueueDepth.Set(float64(n))
}

// endRun closes the run span and folds the collector's end-of-run
// fault counters into the registry. FailedJobs is excluded — jobFailed
// already counted each failure as it was drained.
func (t *telemetry) endRun(coll *metrics.Collector, at vclock.Time, rounds int) {
	if t == nil {
		return
	}
	t.log.EndSpan(t.run, at, trace.Arg{Key: "rounds", Value: strconv.Itoa(rounds)})
	if t.rm != nil {
		t.rm.VirtualTime.Set(float64(at))
		fs := coll.FaultStats()
		t.rm.RetriesTotal.Add(float64(fs.Retries))
		t.rm.FailedAttemptsTotal.Add(float64(fs.FailedAttempts))
		t.rm.BlacklistedNodes.Add(float64(fs.BlacklistedNodes))
		cs := coll.CacheStats()
		t.rm.CacheHits.Add(float64(cs.Hits))
		t.rm.CacheMisses.Add(float64(cs.Misses))
		t.rm.CacheEvictions.Add(float64(cs.Evictions))
		t.rm.CachePrefetches.Add(float64(cs.Prefetches))
		t.rm.CachePrefetchFailed.Add(float64(cs.PrefetchFailed))
		t.rm.CacheHitRatio.Set(cs.HitRatio())
		t.rm.CacheBytes.Set(float64(cs.Bytes))
		t.rm.CachePinnedBytes.Set(float64(cs.PinnedBytes))
	}
}
