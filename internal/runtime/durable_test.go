package runtime_test

import (
	"testing"

	"s3sched/internal/core"
	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// captureLog records every CommitLog callback. The engine invokes the
// log synchronously from the run-loop goroutine (which is the test
// goroutine), so no locking is needed.
type captureLog struct {
	rounds []capturedRound
	done   []scheduler.JobID
	failed []scheduler.JobID
}

type capturedRound struct {
	segment  int
	snap     *scheduler.Snapshot
	requeues int
}

func (c *captureLog) RoundCommitted(r scheduler.Round, _ vclock.Time, snap *scheduler.Snapshot, requeues int) {
	c.rounds = append(c.rounds, capturedRound{segment: r.Segment, snap: snap, requeues: requeues})
}

func (c *captureLog) JobDone(id scheduler.JobID, _ vclock.Time)   { c.done = append(c.done, id) }
func (c *captureLog) JobFailed(id scheduler.JobID, _ vclock.Time) { c.failed = append(c.failed, id) }

// TestEngineCommitLog: the engine fires RoundCommitted once per
// retired round (with a usable scheduler snapshot in serial mode),
// JobDone once per completion, and JobFailed for jobs whose own code
// failed — the exact stream the write-ahead journal persists.
func TestEngineCommitLog(t *testing.T) {
	sched := core.New(parityPlan(t, 3), nil)
	log := &captureLog{}
	exec := &failDrainExec{} // fails job 2's code on its first round
	res, err := runtime.RunTrace(sched, exec, []runtime.Arrival{
		{Job: parityMeta(1), At: 0},
		{Job: parityMeta(2), At: 0},
	}, runtime.Options{Commits: log})
	if err != nil {
		t.Fatal(err)
	}
	if len(log.rounds) != res.Rounds {
		t.Fatalf("RoundCommitted fired %d times over %d rounds", len(log.rounds), res.Rounds)
	}
	for i, r := range log.rounds {
		if r.snap == nil {
			t.Fatalf("round %d committed without a snapshot (serial mode should always snapshot)", i)
		}
		if r.requeues != 0 {
			t.Errorf("round %d committed with requeues=%d, want 0", i, r.requeues)
		}
	}
	// The final snapshot shows an empty scheduler.
	last := log.rounds[len(log.rounds)-1].snap
	if n := len(last.Jobs()); n != 0 {
		t.Errorf("final snapshot holds %d jobs, want 0", n)
	}
	if len(log.done) != 1 || log.done[0] != 1 {
		t.Errorf("JobDone stream = %v, want [1]", log.done)
	}
	if len(log.failed) != 1 || log.failed[0] != 2 {
		t.Errorf("JobFailed stream = %v, want [2]", log.failed)
	}
}

// TestEngineGracefulStop: closing Options.Stop makes the engine exit
// at the next round boundary with Stopped=true and no error, leaving
// undone jobs pending in the scheduler for a checkpoint to persist.
func TestEngineGracefulStop(t *testing.T) {
	sched := core.New(parityPlan(t, 4), nil)
	src := runtime.NewLiveSource()
	for i := 0; i < 2; i++ {
		if _, err := src.Submit(parityMeta(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	stopped := false
	hooks := runtime.Hooks{
		OnRoundDone: func(scheduler.Round, vclock.Time, []scheduler.JobID) {
			if !stopped {
				stopped = true
				close(stop)
				src.Close()
			}
		},
	}
	res, err := runtime.Run(sched, fixedExec{}, src, runtime.Options{Stop: stop, Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("engine did not report Stopped after stop channel closed")
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1 (stop fires after the first round)", res.Rounds)
	}
	if sched.PendingJobs() == 0 {
		t.Error("no pending jobs left; stop should have interrupted the pass")
	}
	// The interrupted scheduler is checkpointable right where it stopped.
	if _, err := sched.StateSnapshot(); err != nil {
		t.Errorf("post-stop snapshot: %v", err)
	}
}

// TestEngineRestoredJobs: jobs pre-loaded into the scheduler (journal
// recovery) and declared via Options.Restored complete normally and
// are counted in the run's metrics even though no arrival source ever
// delivered them.
func TestEngineRestoredJobs(t *testing.T) {
	sched := core.New(parityPlan(t, 3), nil)
	if err := sched.Submit(parityMeta(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := sched.Submit(parityMeta(2), 0); err != nil {
		t.Fatal(err)
	}
	res, err := runtime.RunTrace(sched, fixedExec{}, nil, runtime.Options{
		Restored: []runtime.RestoredJob{{ID: 1}, {ID: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics.Jobs(); got != 2 {
		t.Fatalf("completed jobs = %d, want 2", got)
	}
	if res.Stopped {
		t.Error("run reported Stopped without a stop channel")
	}
}

// TestEngineInitialRequeues: a checkpoint-carried requeue count eats
// into the budget, so a crash loop cannot reset it by restarting.
func TestEngineInitialRequeues(t *testing.T) {
	sched := core.New(parityPlan(t, 2), nil)
	exec := &lostExec{}
	_, err := runtime.RunTrace(sched, exec, []runtime.Arrival{{Job: parityMeta(1), At: 0}},
		runtime.Options{MaxRequeues: 5, InitialRequeues: 3})
	if err == nil {
		t.Fatal("permanently lost round succeeded")
	}
	if exec.calls != 3 {
		t.Errorf("executor called %d times, want 3 (budget 5, 3 already spent)", exec.calls)
	}
}

// TestLiveSourceAdopt: adopted jobs surface in the status API with
// their restored state, reserve their ids, and never enter the
// admission queue.
func TestLiveSourceAdopt(t *testing.T) {
	src := runtime.NewLiveSource()
	meta := parityMeta(7)
	if err := src.Adopt(meta, runtime.JobDone, 0, 42); err != nil {
		t.Fatal(err)
	}
	if err := src.Adopt(meta, runtime.JobDone, 0, 42); err == nil {
		t.Fatal("duplicate adopt succeeded")
	}
	if err := src.Adopt(scheduler.JobMeta{Name: "anon"}, runtime.JobRunning, 0, 0); err == nil {
		t.Fatal("adopt without an id succeeded")
	}
	st, ok := src.Status(7)
	if !ok || st.State != runtime.JobDone || st.DoneAt != 42 {
		t.Fatalf("adopted status = %+v ok=%v", st, ok)
	}
	if n := src.Pending(); n != 0 {
		t.Fatalf("adopt queued %d jobs for admission", n)
	}
	// The adopted id is reserved: the next auto-assigned id skips past.
	id, err := src.Submit(parityMeta(0))
	if err != nil {
		t.Fatal(err)
	}
	if id != 8 {
		t.Errorf("next assigned id = %d, want 8", id)
	}
}
