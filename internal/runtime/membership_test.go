package runtime_test

import (
	"strings"
	"testing"

	"s3sched/internal/comms"
	"s3sched/internal/core"
	"s3sched/internal/metrics"
	"s3sched/internal/runtime"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// memberExec is an executor with a scripted membership stream: the
// queued events are surfaced to the engine on its next drain.
type memberExec struct {
	pending []comms.MemberEvent
	live    int
	drains  int
}

func (m *memberExec) ExecRound(r scheduler.Round) (vclock.Duration, error) { return 10, nil }

func (m *memberExec) TakeMemberEvents() []comms.MemberEvent {
	m.drains++
	ev := m.pending
	m.pending = nil
	return ev
}

func (m *memberExec) LiveWorkers() int { return m.live }

// TestEngineDrainsMembershipIntoTelemetry: a MembershipSource
// executor's events must land in the run's trace and metrics — the
// contract the remote master's control plane relies on.
func TestEngineDrainsMembershipIntoTelemetry(t *testing.T) {
	exec := &memberExec{
		live: 2,
		pending: []comms.MemberEvent{
			{Worker: "w0", Kind: comms.MemberRegistered, Detail: "127.0.0.1:7001"},
			{Worker: "w1", Kind: comms.MemberRegistered, Detail: "127.0.0.1:7002"},
			{Worker: "w1", Kind: comms.MemberSuspect, Misses: 1},
			{Worker: "w1", Kind: comms.MemberSuspect, Misses: 2},
			{Worker: "w1", Kind: comms.MemberLost, Misses: 2, Detail: "no heartbeat"},
			{Worker: "w1", Kind: comms.MemberRejoined, Detail: "127.0.0.1:7003"},
		},
	}
	spans := trace.MustNew(1 << 10)
	reg := metrics.NewRegistry()
	rm := metrics.NewRunMetrics(reg)
	sched := core.New(parityPlan(t, 1), nil)
	if _, err := runtime.RunTrace(sched, exec, []runtime.Arrival{{Job: parityMeta(1), At: 0}},
		runtime.Options{Spans: spans, Metrics: rm}); err != nil {
		t.Fatal(err)
	}
	if exec.drains == 0 {
		t.Fatal("engine never drained the membership source")
	}

	if got := len(spans.OfKind(trace.WorkerRegistered)); got != 2 {
		t.Errorf("worker-registered events = %d, want 2", got)
	}
	lost := spans.OfKind(trace.WorkerLost)
	if len(lost) != 1 || !strings.Contains(lost[0].Detail, "w1") {
		t.Errorf("worker-lost events = %v, want one naming w1", lost)
	}
	if got := len(spans.OfKind(trace.WorkerRejoined)); got != 1 {
		t.Errorf("worker-rejoined events = %d, want 1", got)
	}
	// Suspect transitions count misses but stay out of the event trace.
	if rm.HeartbeatMisses.Value() != 2 {
		t.Errorf("heartbeat misses = %v, want 2", rm.HeartbeatMisses.Value())
	}
	if rm.WorkerReconnects.Value() != 1 {
		t.Errorf("worker reconnects = %v, want 1", rm.WorkerReconnects.Value())
	}
	if rm.WorkersConnected.Value() != 2 {
		t.Errorf("workers connected gauge = %v, want 2", rm.WorkersConnected.Value())
	}
}
