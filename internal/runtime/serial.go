package runtime

import (
	"fmt"

	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// serialPolicy executes each round to completion — scan and reduce —
// before the next round forms: the paper's Algorithm-1 loop as
// written. It retires the round inline, so poll and idle never have
// asynchronous work to surface.
type serialPolicy struct {
	e *engine
}

func (p *serialPolicy) start()    {}
func (p *serialPolicy) shutdown() {}
func (p *serialPolicy) drain()    {}

func (p *serialPolicy) poll(vclock.Time) error { return nil }

func (p *serialPolicy) idle(vclock.Time, vclock.Time, bool) (bool, error) { return false, nil }

func (p *serialPolicy) launch(r scheduler.Round, launch vclock.Time) error {
	e := p.e
	var dur, mapDur, redDur vclock.Duration
	var err error
	split := false
	te, timed := e.exec.(TimedExecutor)
	if timed && e.tele.active() {
		// An executor that knows it is currently time-independent
		// frees the telemetry path to split stages.
		if ts, ok := e.exec.(TimeSensitive); ok && !ts.TimeDependent() {
			if _, staged := e.exec.(StageExecutor); staged {
				timed = false
			}
		}
	}
	if timed {
		dur, err = te.ExecRoundAt(r, launch)
	} else if se, staged := e.exec.(StageExecutor); staged && e.tele.active() {
		// Telemetry wants per-stage timings. ExecMapStage + stage()
		// is the same computation ExecRound performs (the
		// StageExecutor contract), just with the boundary visible.
		var stage ReduceStage
		mapDur, stage, err = se.ExecMapStage(r)
		if err == nil {
			if stage == nil {
				return fmt.Errorf("runtime: executor returned a nil reduce stage for segment %d", r.Segment)
			}
			redDur, err = stage()
			if err == nil {
				dur = mapDur + redDur
				split = true
			}
		}
	} else {
		dur, err = e.exec.ExecRound(r)
	}
	if err != nil {
		if isRoundLost(err) {
			return err
		}
		return fmt.Errorf("runtime: round over segment %d failed: %w", r.Segment, err)
	}
	if dur < 0 {
		return fmt.Errorf("runtime: executor returned negative duration %v", dur)
	}
	e.requeues = 0
	e.res.Rounds++
	e.clock.Advance(dur)
	now := e.clock.Now()
	// Jobs that arrived while the round ran join the queue before
	// the round is retired, so the very next round can include
	// them (S^3 dynamic sub-job adjustment, §IV-D2).
	if err := e.deliverDue(now); err != nil {
		return err
	}
	// Record the round before settling so rounds-per-job counts
	// include the round a job completes in.
	mapEnd := launch.Add(mapDur)
	if !split {
		mapEnd, mapDur, redDur = now, dur, 0
	}
	e.tele.recordRound(r, e.res.Rounds-1, launch, mapEnd, mapEnd, now, now, mapDur, redDur, split)
	completed := e.sched.RoundDone(r, now)
	if err := e.settleRound(r, now, completed); err != nil {
		return err
	}
	e.tele.queueDepth(e.sched.PendingJobs())
	return nil
}
