// Package core implements S^3, the shared scan scheduler that is the
// paper's contribution (§IV). A job over a k-segment file is split
// into k sub-jobs, one per segment, processed in circular order
// starting from whichever segment the scheduler reaches next after the
// job arrives. Sub-jobs of different jobs that target the same segment
// are aligned and launched as one batch sharing a single scan of that
// segment.
//
// The package provides:
//
//   - S3: the Job Queue Manager (Algorithm 1) as a scheduler.Scheduler,
//     with Snapshot/Restore persistence for master recovery.
//   - SlotChecker + DynamicS3: §IV-D1 periodic slot checking and the
//     dynamically sized segments of §IV-B/§IV-D2.
//   - Estimator: §IV-D1's completion-time estimation as an online
//     least-squares fit over observed rounds.
//   - MultiFile: per-file S^3 queues with priority arbitration (the
//     §VI scheduling-policy extensions).
//   - StaticS3 and NoCircular: ablation variants that disable dynamic
//     sub-job adjustment and the circular scan, respectively.
package core

import (
	"fmt"
	"sort"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// JobState tracks one active job inside the Job Queue Manager.
type JobState struct {
	Meta scheduler.JobMeta
	// StartSegment is the segment the job was admitted at — ss_i in
	// Algorithm 1's JobQueue notation J_i(ss_i).
	StartSegment int
	// Remaining is how many of the job's k sub-jobs have not yet run.
	Remaining int
	// SubmittedAt is when the job arrived.
	SubmittedAt vclock.Time
}

// S3 is the Shared Scan Scheduler's Job Queue Manager. It implements
// scheduler.Scheduler.
//
// Invariant (tested property): every active job still needs the cursor
// segment. This is what makes Algorithm 1 sound: jobs are admitted at
// the cursor, consume segments in the same circular order the cursor
// moves, and complete exactly when the cursor returns to the segment
// before their start — so batching "all active jobs" for the cursor
// segment never scans a segment for a job that does not want it.
type S3 struct {
	plan   *dfs.SegmentPlan
	log    *trace.Log
	cursor int // next segment to be scheduled
	active []*JobState
	seen   map[scheduler.JobID]bool

	inFlight bool
	// launchedFor records which jobs are in the in-flight round, so a
	// job submitted mid-round is not credited for a scan it missed.
	launchedFor map[scheduler.JobID]bool
	// jobSpans holds each active job's lifetime span (submission to
	// completion/abort) in the trace log. Telemetry only — not part of
	// Snapshot/Restore state; jobs restored into a fresh scheduler
	// simply have no open span.
	jobSpans map[scheduler.JobID]trace.SpanID
	// pendingDone queues, per pipelined round whose scan finished
	// (MapDone) but whose reduce is still draining, the jobs that round
	// completed. RoundDone pops in round order.
	pendingDone [][]scheduler.JobID
	// hinter, when set, receives the cache guidance derived from each
	// cursor advance (SetScanHinter).
	hinter ScanHinter
}

// ScanHinter consumes the JQM's cache guidance. dfs.Store.HandleScanHint
// and the sim executor's HandleScanHint both satisfy it.
type ScanHinter func(dfs.ScanHint)

var (
	_ scheduler.Scheduler   = (*S3)(nil)
	_ scheduler.StageAware  = (*S3)(nil)
	_ scheduler.Recoverable = (*S3)(nil)
)

// New returns an S^3 scheduler over the segment plan. log may be nil.
func New(plan *dfs.SegmentPlan, log *trace.Log) *S3 {
	return &S3{
		plan: plan,
		log:  log,
		seen: make(map[scheduler.JobID]bool),
	}
}

// Name implements Scheduler.
func (s *S3) Name() string { return "s3" }

// Plan returns the segment plan the scheduler runs over.
func (s *S3) Plan() *dfs.SegmentPlan { return s.plan }

// Cursor returns the next segment to be scheduled.
func (s *S3) Cursor() int { return s.cursor }

// SetScanHinter installs the consumer of the JQM's cache guidance. On
// every cursor advance the scheduler emits one dfs.ScanHint: the new
// cursor segment (and, when the file has more than two segments, the
// one after it) pinned, the just-scanned segment demoted, and — when
// some active job is guaranteed to scan it — the segment after the new
// cursor as the prefetch target, so its readahead overlaps the current
// round's work. Not part of Snapshot state; re-wire after Restore.
func (s *S3) SetScanHinter(h ScanHinter) { s.hinter = h }

// Active returns a snapshot of the active job states, ordered by
// submission.
func (s *S3) Active() []JobState {
	out := make([]JobState, len(s.active))
	for i, js := range s.active {
		out[i] = *js
	}
	return out
}

// Submit implements Scheduler. The job is split into k sub-jobs and
// aligned with the waiting queue: its first sub-job targets the
// cursor segment (the next to be scheduled), so the job starts
// processing in the very next round (paper §IV-C).
func (s *S3) Submit(job scheduler.JobMeta, at vclock.Time) error {
	if s.seen[job.ID] {
		return fmt.Errorf("%w: %d", scheduler.ErrDuplicateJob, job.ID)
	}
	if job.File != s.plan.File().Name {
		return fmt.Errorf("%w: job %d reads %q, plan is for %q", scheduler.ErrWrongFile, job.ID, job.File, s.plan.File().Name)
	}
	s.seen[job.ID] = true
	job = normalize(job)
	start := s.cursor
	if s.inFlight {
		// The cursor segment is being scanned right now without this
		// job, so its first sub-job targets the following segment.
		start = s.plan.Next(s.cursor)
	}
	js := &JobState{
		Meta:         job,
		StartSegment: start,
		Remaining:    s.plan.NumSegments(),
		SubmittedAt:  at,
	}
	s.active = append(s.active, js)
	s.log.Addf(at, trace.JobSubmitted, int(job.ID), start, "s3 split into %d sub-jobs from segment %d", js.Remaining, start)
	s.log.Addf(at, trace.SubJobAligned, int(job.ID), start, "aligned with %d waiting job(s)", len(s.active)-1)
	if span := s.log.StartSpan(at, "job", trace.SpanOpts{
		Cat: "jqm", Job: int(job.ID), Segment: start,
		Args: []trace.Arg{{Key: "subjobs", Value: fmt.Sprint(js.Remaining)}},
	}); span != 0 {
		if s.jobSpans == nil {
			s.jobSpans = make(map[scheduler.JobID]trace.SpanID)
		}
		s.jobSpans[job.ID] = span
	}
	return nil
}

// NextRound implements Scheduler: it is Algorithm 1's
// batchSubJobs(JobQueue, Segment) followed by processNextSubJob — all
// active jobs' sub-jobs for the cursor segment are merged into one
// batch.
func (s *S3) NextRound(now vclock.Time) (scheduler.Round, bool) {
	if s.inFlight {
		panic("core: S3.NextRound called with a round in flight")
	}
	if len(s.active) == 0 {
		return scheduler.Round{}, false
	}
	jobs := make([]scheduler.JobMeta, len(s.active))
	var completes []scheduler.JobID
	launched := make(map[scheduler.JobID]bool, len(s.active))
	for i, js := range s.active {
		jobs[i] = js.Meta
		launched[js.Meta.ID] = true
		if js.Remaining == 1 {
			completes = append(completes, js.Meta.ID)
		}
	}
	r := scheduler.Round{
		Segment:   s.cursor,
		Blocks:    s.plan.Blocks(s.cursor),
		Jobs:      jobs,
		Completes: completes,
		// Every S^3 round is a freshly initialized merged sub-job
		// (§IV-D3 runtime sub-job initialization), and every sub-job
		// is a complete MapReduce job with its own reduce phase.
		FreshJobs:    1,
		SubJobReduce: true,
	}
	s.inFlight = true
	s.launchedFor = launched
	s.log.Addf(now, trace.RoundLaunched, -1, s.cursor, "s3 merged sub-job of %d job(s)", len(jobs))
	return r, true
}

// MapDone implements scheduler.StageAware: the round's scan finished,
// so Algorithm 1's state advances now — the scan is what consumes the
// segment — and the next round may be formed while the reduce stage
// drains. The completed-job list is queued for the later RoundDone.
func (s *S3) MapDone(r scheduler.Round, now vclock.Time) {
	if !s.inFlight {
		panic("core: S3.MapDone without a round in flight")
	}
	s.inFlight = false
	s.log.Addf(now, trace.MapStageFinished, -1, r.Segment, "s3")
	s.pendingDone = append(s.pendingDone, s.retireScan(r, now))
}

// RoundDone implements Scheduler: lines 5–13 of Algorithm 1 — retire
// completed jobs and advance the segment cursor circularly. Under the
// pipelined protocol the state already advanced at MapDone and this
// only reports the queued completion list at the reduce-end time.
func (s *S3) RoundDone(r scheduler.Round, now vclock.Time) []scheduler.JobID {
	if len(s.pendingDone) > 0 {
		done := s.pendingDone[0]
		s.pendingDone = s.pendingDone[1:]
		s.log.Addf(now, trace.RoundFinished, -1, r.Segment, "s3")
		return done
	}
	if !s.inFlight {
		panic("core: S3.RoundDone without a round in flight")
	}
	s.inFlight = false
	s.log.Addf(now, trace.RoundFinished, -1, r.Segment, "s3")
	return s.retireScan(r, now)
}

// retireScan applies the post-scan half of Algorithm 1: decrement every
// launched job's remaining sub-jobs, drop the finished ones from the
// active queue, and advance the segment cursor circularly.
func (s *S3) retireScan(r scheduler.Round, now vclock.Time) []scheduler.JobID {
	var done []scheduler.JobID
	remaining := s.active[:0]
	for _, js := range s.active {
		if !s.launchedFor[js.Meta.ID] {
			// Submitted mid-round; it did not share this scan.
			remaining = append(remaining, js)
			continue
		}
		js.Remaining--
		if js.Remaining == 0 {
			done = append(done, js.Meta.ID)
			s.log.Addf(now, trace.JobCompleted, int(js.Meta.ID), r.Segment, "s3 started at segment %d", js.StartSegment)
			s.log.EndSpan(s.jobSpans[js.Meta.ID], now, trace.Arg{Key: "result", Value: "completed"})
			delete(s.jobSpans, js.Meta.ID)
			continue
		}
		remaining = append(remaining, js)
	}
	// Zero the tail so retired *JobState values do not linger.
	for i := len(remaining); i < len(s.active); i++ {
		s.active[i] = nil
	}
	s.active = remaining
	s.launchedFor = nil

	s.cursor = s.plan.Next(s.cursor)
	s.log.Addf(now, trace.SegmentAdvanced, -1, s.cursor, "")
	s.emitHint(r.Segment)
	sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
	return done
}

// emitHint derives one cursor advance's cache guidance. scanned is the
// segment the finished round consumed; s.cursor already points at the
// next one. Prefetch names the segment *after* the new cursor — the
// cursor segment itself is being formed into the next round, so only
// s+2 gives the readahead a full round of lookahead — and only when
// some still-active job has at least two sub-jobs left, which (by the
// active-jobs-need-the-cursor invariant) guarantees that segment will
// be scanned: a speculative read of a never-scanned segment would
// charge a physical scan that cache transparency forbids.
func (s *S3) emitHint(scanned int) {
	if s.hinter == nil {
		return
	}
	k := s.plan.NumSegments()
	next := s.plan.Next(s.cursor)
	h := dfs.ScanHint{
		File: s.plan.File().Name,
		Pin:  [][]dfs.BlockID{s.plan.Blocks(s.cursor)},
	}
	if k > 2 {
		h.Pin = append(h.Pin, s.plan.Blocks(next))
	}
	if k > 1 {
		h.Demote = s.plan.Blocks(scanned)
	}
	if k > 2 {
		for _, js := range s.active {
			if js.Remaining >= 2 {
				h.Prefetch = s.plan.Blocks(next)
				break
			}
		}
	}
	s.hinter(h)
}

// RequeueRound implements scheduler.Recoverable — the paper's dynamic
// sub-job adjustment extended to failure. The lost round's merged
// sub-jobs return to the queue: the cursor stays on the segment (it
// was never consumed), every job's Remaining is untouched, and the
// next NextRound re-forms the batch over the same segment — including
// any jobs that aligned while the lost round was in flight — so the
// round-robin segment order is preserved exactly.
func (s *S3) RequeueRound(r scheduler.Round, now vclock.Time) {
	if !s.inFlight {
		panic("core: S3.RequeueRound without a round in flight")
	}
	s.inFlight = false
	s.launchedFor = nil
	for _, id := range r.JobIDs() {
		s.log.Addf(now, trace.SubJobRequeued, int(id), r.Segment, "s3 round lost; cursor stays at %d", s.cursor)
	}
}

// AbortJobs implements scheduler.Recoverable: failed jobs leave the
// active queue and never align into another round. Their ids stay
// registered (a reused id is still a duplicate).
func (s *S3) AbortJobs(ids []scheduler.JobID, now vclock.Time) {
	if len(ids) == 0 {
		return
	}
	drop := make(map[scheduler.JobID]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	remaining := s.active[:0]
	for _, js := range s.active {
		if drop[js.Meta.ID] {
			s.log.Addf(now, trace.JobAborted, int(js.Meta.ID), -1, "s3 %d sub-job(s) unfinished", js.Remaining)
			s.log.EndSpan(s.jobSpans[js.Meta.ID], now, trace.Arg{Key: "result", Value: "aborted"})
			delete(s.jobSpans, js.Meta.ID)
			continue
		}
		remaining = append(remaining, js)
	}
	for i := len(remaining); i < len(s.active); i++ {
		s.active[i] = nil
	}
	s.active = remaining
}

// PendingJobs implements Scheduler.
func (s *S3) PendingJobs() int { return len(s.active) }

func normalize(m scheduler.JobMeta) scheduler.JobMeta {
	if m.Weight == 0 {
		m.Weight = 1
	}
	if m.ReduceWeight == 0 {
		m.ReduceWeight = 1
	}
	return m
}
