package core

import (
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// DynamicS3 is the adaptive variant of the Shared Scan Scheduler: it
// schedules at block granularity and computes each round's segment
// size from the currently available map slots (§IV-B "dynamically
// computing the segment size according to the available resources",
// §IV-D2 "the corresponding segment size will be shrunk or extended").
// A SlotChecker supplies the available-node list; without one, every
// node is always available and DynamicS3 degenerates to S3 with the
// ideal one-block-per-slot segments.
//
// Rounds are clipped so no job ever scans a block twice: a round never
// extends past the file end nor past the completion boundary of any
// active job. All other S^3 semantics (circular scan, sub-job
// alignment, per-round merged sub-jobs) are unchanged.
type DynamicS3 struct {
	file         *dfs.File
	nodes        []dfs.NodeID
	slotsPerNode int
	checker      *SlotChecker
	log          *trace.Log

	cursor int // next block index to schedule
	active []*dynJob
	seen   map[scheduler.JobID]bool

	inFlight    bool
	inFlightLen int // blocks in the in-flight round
	launchedFor map[scheduler.JobID]bool
}

type dynJob struct {
	meta       scheduler.JobMeta
	startBlock int
	remaining  int // blocks left to process
}

var _ scheduler.Scheduler = (*DynamicS3)(nil)

// NewDynamic builds a DynamicS3 over file for a cluster of the given
// nodes with slotsPerNode map slots each. checker and log may be nil.
func NewDynamic(file *dfs.File, nodes []dfs.NodeID, slotsPerNode int, checker *SlotChecker, log *trace.Log) (*DynamicS3, error) {
	if file == nil || file.NumBlocks == 0 {
		return nil, fmt.Errorf("core: DynamicS3 needs a non-empty file")
	}
	if len(nodes) == 0 || slotsPerNode <= 0 {
		return nil, fmt.Errorf("core: DynamicS3 needs nodes (%d) and positive slots per node (%d)", len(nodes), slotsPerNode)
	}
	ns := make([]dfs.NodeID, len(nodes))
	copy(ns, nodes)
	return &DynamicS3{
		file:         file,
		nodes:        ns,
		slotsPerNode: slotsPerNode,
		checker:      checker,
		log:          log,
		seen:         make(map[scheduler.JobID]bool),
	}, nil
}

// Name implements Scheduler.
func (d *DynamicS3) Name() string { return "s3-dynamic" }

// Cursor returns the next block index to be scheduled.
func (d *DynamicS3) Cursor() int { return d.cursor }

// Submit implements Scheduler.
func (d *DynamicS3) Submit(job scheduler.JobMeta, at vclock.Time) error {
	if d.seen[job.ID] {
		return fmt.Errorf("%w: %d", scheduler.ErrDuplicateJob, job.ID)
	}
	if job.File != d.file.Name {
		return fmt.Errorf("%w: job %d reads %q, scheduler is for %q", scheduler.ErrWrongFile, job.ID, job.File, d.file.Name)
	}
	d.seen[job.ID] = true
	start := d.cursor
	if d.inFlight {
		start = (d.cursor + d.inFlightLen) % d.file.NumBlocks
	}
	d.active = append(d.active, &dynJob{
		meta:       normalize(job),
		startBlock: start,
		remaining:  d.file.NumBlocks,
	})
	d.log.Addf(at, trace.JobSubmitted, int(job.ID), -1, "s3-dynamic from block %d of %d", start, d.file.NumBlocks)
	return nil
}

// NextRound implements Scheduler. The round's segment is sized to the
// available slots at this instant.
func (d *DynamicS3) NextRound(now vclock.Time) (scheduler.Round, bool) {
	if d.inFlight {
		panic("core: DynamicS3.NextRound called with a round in flight")
	}
	if len(d.active) == 0 {
		return scheduler.Round{}, false
	}
	avail := d.nodes
	if d.checker != nil {
		avail = d.checker.Available(d.nodes, now)
	}
	size := len(avail) * d.slotsPerNode
	// Clip: never past file end (a round is a contiguous block run)…
	if rest := d.file.NumBlocks - d.cursor; size > rest {
		size = rest
	}
	// …and never past any active job's completion boundary, so no job
	// scans a block twice.
	for _, j := range d.active {
		if j.remaining < size {
			size = j.remaining
		}
	}

	blocks := make([]dfs.BlockID, size)
	for i := range blocks {
		blocks[i] = dfs.BlockID{File: d.file.Name, Index: d.cursor + i}
	}
	jobs := make([]scheduler.JobMeta, len(d.active))
	var completes []scheduler.JobID
	launched := make(map[scheduler.JobID]bool, len(d.active))
	for i, j := range d.active {
		jobs[i] = j.meta
		launched[j.meta.ID] = true
		if j.remaining == size {
			completes = append(completes, j.meta.ID)
		}
	}
	nodesCopy := make([]dfs.NodeID, len(avail))
	copy(nodesCopy, avail)

	d.inFlight = true
	d.inFlightLen = size
	d.launchedFor = launched
	d.log.Addf(now, trace.RoundLaunched, -1, -1,
		"s3-dynamic blocks [%d,%d) on %d node(s), %d job(s)", d.cursor, d.cursor+size, len(avail), len(jobs))
	return scheduler.Round{
		Segment:      -1,
		Blocks:       blocks,
		Jobs:         jobs,
		Completes:    completes,
		FreshJobs:    1,
		SubJobReduce: true,
		Nodes:        nodesCopy,
	}, true
}

// RoundDone implements Scheduler.
func (d *DynamicS3) RoundDone(r scheduler.Round, now vclock.Time) []scheduler.JobID {
	if !d.inFlight {
		panic("core: DynamicS3.RoundDone without a round in flight")
	}
	d.inFlight = false
	d.log.Addf(now, trace.RoundFinished, -1, -1, "s3-dynamic %d blocks", len(r.Blocks))

	var done []scheduler.JobID
	remaining := d.active[:0]
	for _, j := range d.active {
		if !d.launchedFor[j.meta.ID] {
			remaining = append(remaining, j)
			continue
		}
		j.remaining -= len(r.Blocks)
		if j.remaining < 0 {
			panic(fmt.Sprintf("core: job %d overshot its block budget", j.meta.ID))
		}
		if j.remaining == 0 {
			done = append(done, j.meta.ID)
			d.log.Addf(now, trace.JobCompleted, int(j.meta.ID), -1, "s3-dynamic started at block %d", j.startBlock)
			continue
		}
		remaining = append(remaining, j)
	}
	for i := len(remaining); i < len(d.active); i++ {
		d.active[i] = nil
	}
	d.active = remaining
	d.launchedFor = nil
	d.cursor = (d.cursor + len(r.Blocks)) % d.file.NumBlocks
	return done
}

// PendingJobs implements Scheduler.
func (d *DynamicS3) PendingJobs() int { return len(d.active) }
