package core

import (
	"testing"

	"s3sched/internal/dfs"
	"s3sched/internal/trace"
)

func ids(ns ...int) []dfs.NodeID {
	out := make([]dfs.NodeID, len(ns))
	for i, n := range ns {
		out[i] = dfs.NodeID(n)
	}
	return out
}

func TestSlotCheckerExcludesSlowNode(t *testing.T) {
	log := trace.MustNew(32)
	sc := NewSlotChecker(0.5, 1.0, log)
	all := ids(0, 1, 2, 3)
	sc.Observe(0, 1.0, 0)
	sc.Observe(1, 1.0, 0)
	sc.Observe(2, 0.2, 0) // straggler
	sc.Observe(3, 0.9, 0)
	avail := sc.Available(all, 1)
	if len(avail) != 3 {
		t.Fatalf("available = %v, want 3 nodes", avail)
	}
	for _, n := range avail {
		if n == 2 {
			t.Fatal("straggler node 2 should be excluded")
		}
	}
	if exc := sc.Excluded(); len(exc) != 1 || exc[0] != 2 {
		t.Fatalf("Excluded = %v", exc)
	}
	if evs := log.OfKind(trace.NodeExcluded); len(evs) != 1 {
		t.Fatalf("exclusion events = %d, want 1", len(evs))
	}
}

func TestSlotCheckerRestoresRecoveredNode(t *testing.T) {
	log := trace.MustNew(32)
	sc := NewSlotChecker(0.5, 1.0, log)
	all := ids(0, 1)
	sc.Observe(0, 1.0, 0)
	sc.Observe(1, 0.1, 0)
	if avail := sc.Available(all, 1); len(avail) != 1 {
		t.Fatalf("available = %v", avail)
	}
	// Node 1 recovers.
	sc.Observe(1, 1.0, 2)
	if avail := sc.Available(all, 3); len(avail) != 2 {
		t.Fatalf("after recovery available = %v, want both", avail)
	}
	if len(sc.Excluded()) != 0 {
		t.Fatalf("Excluded = %v, want empty", sc.Excluded())
	}
	if evs := log.OfKind(trace.NodeRestored); len(evs) != 1 {
		t.Fatalf("restore events = %d, want 1", len(evs))
	}
}

func TestSlotCheckerUnobservedAssumedNominal(t *testing.T) {
	sc := NewSlotChecker(0.5, 1.0, nil)
	all := ids(0, 1, 2)
	sc.Observe(1, 0.2, 0)
	avail := sc.Available(all, 1)
	// 0 and 2 unobserved -> nominal; 1 excluded.
	if len(avail) != 2 || avail[0] != 0 || avail[1] != 2 {
		t.Fatalf("available = %v, want [0 2]", avail)
	}
}

func TestSlotCheckerAllSlowKeepsAll(t *testing.T) {
	sc := NewSlotChecker(0.9, 1.0, nil)
	all := ids(0, 1)
	sc.Observe(0, 0.5, 0)
	sc.Observe(1, 0.5, 0)
	// Uniform slowness is the new nominal; nobody is a straggler.
	if avail := sc.Available(all, 1); len(avail) != 2 {
		t.Fatalf("available = %v, want both", avail)
	}
}

func TestSlotCheckerEWMA(t *testing.T) {
	sc := NewSlotChecker(0.5, 0.5, nil)
	sc.Observe(0, 1.0, 0)
	sc.Observe(0, 0.5, 1)
	if got := sc.Estimate(0); got != 0.75 {
		t.Fatalf("Estimate = %v, want 0.75 (EWMA alpha=0.5)", got)
	}
	if got := sc.Estimate(9); got != 0 {
		t.Fatalf("unobserved Estimate = %v, want 0", got)
	}
}

func TestSlotCheckerValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSlotChecker(0, 1, nil) },
		func() { NewSlotChecker(1.5, 1, nil) },
		func() { NewSlotChecker(0.5, 0, nil) },
		func() { NewSlotChecker(0.5, 1.5, nil) },
		func() { NewSlotChecker(0.5, 1, nil).Observe(0, 0, 0) },
		func() { NewSlotChecker(0.5, 1, nil).Observe(0, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
