package core

import (
	"fmt"
	"sync"

	"s3sched/internal/scheduler"
	"s3sched/internal/vclock"
)

// Estimator learns the cluster's round-duration behaviour online and
// predicts job completion times — the "estimates the completion time"
// part of §IV-D1's periodic slot checking. It fits, by ordinary least
// squares over the observed rounds,
//
//	duration ≈ α + β·batchSize + γ·blocks
//
// which matches the executor cost structure: a fixed per-round part, a
// per-job part (map + dispatch + reduce), and a per-block part (scan +
// task launch). With the fitted model and the JQM's current state, the
// remaining schedule can be rolled forward to a predicted completion
// time per job.
type Estimator struct {
	mu sync.Mutex
	// Normal-equation accumulators for X^T X and X^T y with feature
	// vector (1, batch, blocks).
	n                   float64
	sumB, sumK          float64
	sumBB, sumKK, sumBK float64
	sumY, sumYB, sumYK  float64
	alpha, beta, gamma  float64
	fitted              bool
}

// NewEstimator returns an empty estimator.
func NewEstimator() *Estimator { return &Estimator{} }

// Observe records one completed round.
func (e *Estimator) Observe(batch, blocks int, d vclock.Duration) {
	if batch <= 0 || blocks <= 0 || d < 0 {
		panic(fmt.Sprintf("core: invalid observation batch=%d blocks=%d d=%v", batch, blocks, d))
	}
	b, k, y := float64(batch), float64(blocks), d.Seconds()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
	e.sumB += b
	e.sumK += k
	e.sumBB += b * b
	e.sumKK += k * k
	e.sumBK += b * k
	e.sumY += y
	e.sumYB += y * b
	e.sumYK += y * k
	e.fitted = false
}

// Samples reports how many rounds have been observed.
func (e *Estimator) Samples() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return int(e.n)
}

// fit solves the 3x3 normal equations by Gaussian elimination. When
// the system is singular (e.g. every observed round had the same batch
// and block count), degenerate coefficients fall back to the sample
// mean as a pure intercept.
func (e *Estimator) fitLocked() {
	if e.fitted {
		return
	}
	// Matrix [n sumB sumK; sumB sumBB sumBK; sumK sumBK sumKK],
	// right-hand side [sumY sumYB sumYK].
	a := [3][4]float64{
		{e.n, e.sumB, e.sumK, e.sumY},
		{e.sumB, e.sumBB, e.sumBK, e.sumYB},
		{e.sumK, e.sumBK, e.sumKK, e.sumYK},
	}
	const eps = 1e-9
	singular := false
	for col := 0; col < 3; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < 3; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if abs(a[col][col]) < eps {
			singular = true
			break
		}
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	if singular || e.n < 3 {
		// Fall back to the mean duration as a constant model.
		e.alpha = 0
		if e.n > 0 {
			e.alpha = e.sumY / e.n
		}
		e.beta, e.gamma = 0, 0
	} else {
		var coef [3]float64
		for i := 0; i < 3; i++ {
			coef[i] = a[i][3] / a[i][i]
		}
		e.alpha, e.beta, e.gamma = coef[0], coef[1], coef[2]
	}
	e.fitted = true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// PredictRound estimates the duration of a round with the given batch
// size and block count. It fails with fewer than two observations.
func (e *Estimator) PredictRound(batch, blocks int) (vclock.Duration, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n < 2 {
		return 0, fmt.Errorf("core: estimator has %d sample(s); need at least 2", int(e.n))
	}
	e.fitLocked()
	d := e.alpha + e.beta*float64(batch) + e.gamma*float64(blocks)
	if d < 0 {
		d = 0
	}
	return vclock.Duration(d), nil
}

// PredictCompletions rolls the JQM's current schedule forward under
// the fitted model: each future round batches every still-active job,
// jobs retire as their remaining sub-jobs run out, and the returned
// map gives each active job's predicted time-to-completion from now.
// The scheduler must not have a round in flight.
func (e *Estimator) PredictCompletions(s *S3) (map[scheduler.JobID]vclock.Duration, error) {
	if s.inFlight {
		return nil, fmt.Errorf("core: cannot predict with a round in flight")
	}
	type futureJob struct {
		id        scheduler.JobID
		remaining int
	}
	var jobs []futureJob
	for _, js := range s.Active() {
		jobs = append(jobs, futureJob{id: js.Meta.ID, remaining: js.Remaining})
	}
	out := make(map[scheduler.JobID]vclock.Duration, len(jobs))
	var elapsed vclock.Duration
	cursor := s.Cursor()
	for len(jobs) > 0 {
		blocks := len(s.Plan().Blocks(cursor))
		d, err := e.PredictRound(len(jobs), blocks)
		if err != nil {
			return nil, err
		}
		elapsed += d
		var still []futureJob
		for _, j := range jobs {
			j.remaining--
			if j.remaining == 0 {
				out[j.id] = elapsed
				continue
			}
			still = append(still, j)
		}
		jobs = still
		cursor = s.Plan().Next(cursor)
	}
	return out, nil
}
