package core

import (
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// This file holds ablation variants of S^3 that disable one design
// choice at a time, so benchmarks can quantify what each mechanism
// contributes (DESIGN.md §5). They are not part of the paper's system;
// they are the controls its design discussion argues against.

// NoCircular is S^3 without the round-robin data scan (§IV-B): jobs
// must scan the file from its beginning, like FIFO and MRShare. A job
// arriving while a pass is underway cannot align with it — it waits
// until the current pass completes and a new pass starts from segment
// 0. Jobs that arrive while waiting do share the next pass, so this
// variant still batches; it only loses the start-anywhere property.
type NoCircular struct {
	plan *dfs.SegmentPlan
	log  *trace.Log

	seen     map[scheduler.JobID]bool
	waiting  []scheduler.JobMeta
	running  []scheduler.JobMeta
	next     int // next segment of the current pass
	inFlight bool
	pending  int
}

var _ scheduler.Scheduler = (*NoCircular)(nil)

// NewNoCircular builds the restart-at-beginning ablation over plan.
func NewNoCircular(plan *dfs.SegmentPlan, log *trace.Log) *NoCircular {
	return &NoCircular{plan: plan, log: log, seen: make(map[scheduler.JobID]bool)}
}

// Name implements Scheduler.
func (n *NoCircular) Name() string { return "s3-nocircular" }

// Submit implements Scheduler.
func (n *NoCircular) Submit(job scheduler.JobMeta, at vclock.Time) error {
	if n.seen[job.ID] {
		return fmt.Errorf("%w: %d", scheduler.ErrDuplicateJob, job.ID)
	}
	if job.File != n.plan.File().Name {
		return fmt.Errorf("%w: job %d reads %q, plan is for %q", scheduler.ErrWrongFile, job.ID, job.File, n.plan.File().Name)
	}
	n.seen[job.ID] = true
	n.pending++
	n.waiting = append(n.waiting, normalize(job))
	n.log.Addf(at, trace.JobSubmitted, int(job.ID), 0, "nocircular waiting for next pass (%d waiting)", len(n.waiting))
	return nil
}

// NextRound implements Scheduler.
func (n *NoCircular) NextRound(now vclock.Time) (scheduler.Round, bool) {
	if n.inFlight {
		panic("core: NoCircular.NextRound called with a round in flight")
	}
	if len(n.running) == 0 {
		if len(n.waiting) == 0 {
			return scheduler.Round{}, false
		}
		n.running = n.waiting
		n.waiting = nil
		n.next = 0
	}
	r := scheduler.Round{
		Segment:      n.next,
		Blocks:       n.plan.Blocks(n.next),
		Jobs:         n.running,
		FreshJobs:    1,
		SubJobReduce: true,
	}
	if n.next == n.plan.NumSegments()-1 {
		r.Completes = r.JobIDs()
	}
	n.inFlight = true
	n.log.Addf(now, trace.RoundLaunched, -1, n.next, "nocircular pass batch of %d", len(n.running))
	return r, true
}

// RoundDone implements Scheduler.
func (n *NoCircular) RoundDone(r scheduler.Round, now vclock.Time) []scheduler.JobID {
	if !n.inFlight {
		panic("core: NoCircular.RoundDone without a round in flight")
	}
	n.inFlight = false
	n.next++
	if n.next < n.plan.NumSegments() {
		return nil
	}
	done := make([]scheduler.JobID, len(n.running))
	for i, j := range n.running {
		done[i] = j.ID
		n.log.Addf(now, trace.JobCompleted, int(j.ID), -1, "nocircular")
	}
	n.pending -= len(done)
	n.running = nil
	return done
}

// PendingJobs implements Scheduler.
func (n *NoCircular) PendingJobs() int { return n.pending }

// StaticS3 is S^3 without dynamic sub-job adjustment (§IV-D2): a job
// that arrives while the queue manager has active work is parked and
// only admitted once every current job has completed. Sub-jobs of
// parked jobs are never re-batched into waiting rounds. Jobs parked
// together still share their scan with each other once admitted.
type StaticS3 struct {
	inner  *S3
	log    *trace.Log
	parked []parkedJob
}

type parkedJob struct {
	meta scheduler.JobMeta
	at   vclock.Time
}

var _ scheduler.Scheduler = (*StaticS3)(nil)

// NewStatic builds the no-dynamic-adjustment ablation over plan.
func NewStatic(plan *dfs.SegmentPlan, log *trace.Log) *StaticS3 {
	return &StaticS3{inner: New(plan, log), log: log}
}

// Name implements Scheduler.
func (s *StaticS3) Name() string { return "s3-static" }

// Submit implements Scheduler.
func (s *StaticS3) Submit(job scheduler.JobMeta, at vclock.Time) error {
	if s.inner.PendingJobs() > 0 || s.inner.inFlight {
		for _, p := range s.parked {
			if p.meta.ID == job.ID {
				return fmt.Errorf("%w: %d", scheduler.ErrDuplicateJob, job.ID)
			}
		}
		if s.inner.seen[job.ID] {
			return fmt.Errorf("%w: %d", scheduler.ErrDuplicateJob, job.ID)
		}
		if job.File != s.inner.plan.File().Name {
			return fmt.Errorf("%w: job %d reads %q, plan is for %q", scheduler.ErrWrongFile, job.ID, job.File, s.inner.plan.File().Name)
		}
		s.parked = append(s.parked, parkedJob{meta: job, at: at})
		s.log.Addf(at, trace.JobSubmitted, int(job.ID), -1, "s3-static parked (%d parked)", len(s.parked))
		return nil
	}
	return s.inner.Submit(job, at)
}

// NextRound implements Scheduler.
func (s *StaticS3) NextRound(now vclock.Time) (scheduler.Round, bool) {
	if s.inner.PendingJobs() == 0 && len(s.parked) > 0 {
		for _, p := range s.parked {
			if err := s.inner.Submit(p.meta, p.at); err != nil {
				panic(fmt.Sprintf("core: StaticS3 readmitting parked job %d: %v", p.meta.ID, err))
			}
		}
		s.log.Addf(now, trace.BatchAdjusted, -1, -1, "s3-static admitted %d parked job(s)", len(s.parked))
		s.parked = nil
	}
	return s.inner.NextRound(now)
}

// RoundDone implements Scheduler.
func (s *StaticS3) RoundDone(r scheduler.Round, now vclock.Time) []scheduler.JobID {
	return s.inner.RoundDone(r, now)
}

// PendingJobs implements Scheduler.
func (s *StaticS3) PendingJobs() int { return s.inner.PendingJobs() + len(s.parked) }
