package core

import (
	"testing"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
)

func dynFile(t *testing.T, blocks int) *dfs.File {
	t.Helper()
	store := dfs.MustStore(4, 1)
	f, err := store.AddMetaFile("input", blocks, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDynamicMatchesIdealSegmentsWhenHomogeneous(t *testing.T) {
	f := dynFile(t, 12)
	d, err := NewDynamic(f, ids(0, 1, 2, 3), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for {
		r, ok := d.NextRound(0)
		if !ok {
			break
		}
		sizes = append(sizes, len(r.Blocks))
		if len(r.Nodes) != 4 {
			t.Fatalf("round nodes = %v, want all 4", r.Nodes)
		}
		d.RoundDone(r, 0)
	}
	// 12 blocks / 4 slots -> three rounds of 4 blocks: identical to
	// the fixed segment plan the paper's ideal case uses.
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 4 {
		t.Fatalf("round sizes = %v, want [4 4 4]", sizes)
	}
}

func TestDynamicShrinksWithSlotChecker(t *testing.T) {
	f := dynFile(t, 8)
	sc := NewSlotChecker(0.5, 1.0, nil)
	sc.Observe(0, 1, 0)
	sc.Observe(1, 1, 0)
	sc.Observe(2, 0.1, 0) // straggler
	sc.Observe(3, 1, 0)
	d, err := NewDynamic(f, ids(0, 1, 2, 3), 1, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r, ok := d.NextRound(0)
	if !ok {
		t.Fatal("expected a round")
	}
	// Segment shrinks to 3 blocks on the 3 healthy nodes.
	if len(r.Blocks) != 3 || len(r.Nodes) != 3 {
		t.Fatalf("round = %d blocks on %v, want 3 on 3 healthy nodes", len(r.Blocks), r.Nodes)
	}
	for _, n := range r.Nodes {
		if n == 2 {
			t.Fatal("straggler included in round")
		}
	}
	d.RoundDone(r, 1)
	// Straggler recovers: segment extends back to 4.
	sc.Observe(2, 1.0, 1)
	r2, _ := d.NextRound(1)
	if len(r2.Blocks) != 4 {
		t.Fatalf("after recovery round = %d blocks, want 4", len(r2.Blocks))
	}
	d.RoundDone(r2, 2)
}

func TestDynamicNeverScansTwice(t *testing.T) {
	// Job 2 joins mid-stream; rounds must clip at its completion
	// boundary so it processes each block exactly once.
	f := dynFile(t, 10)
	d, err := NewDynamic(f, ids(0, 1, 2, 3), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	// Run one round (blocks 0-3).
	r, _ := d.NextRound(0)
	d.RoundDone(r, 0)
	// Job 2 joins at block 4.
	if err := d.Submit(job(2), 1); err != nil {
		t.Fatal(err)
	}
	blockCount := map[scheduler.JobID]map[int]int{1: {}, 2: {}}
	for _, b := range r.Blocks {
		blockCount[1][b.Index]++
	}
	for {
		r, ok := d.NextRound(0)
		if !ok {
			break
		}
		for _, j := range r.Jobs {
			for _, b := range r.Blocks {
				blockCount[j.ID][b.Index]++
			}
		}
		d.RoundDone(r, 0)
	}
	for id, counts := range blockCount {
		if len(counts) != 10 {
			t.Errorf("job %d scanned %d distinct blocks, want 10", id, len(counts))
		}
		for blk, c := range counts {
			if c != 1 {
				t.Errorf("job %d scanned block %d %d times", id, blk, c)
			}
		}
	}
}

func TestDynamicMidRoundSubmit(t *testing.T) {
	f := dynFile(t, 8)
	d, err := NewDynamic(f, ids(0, 1, 2, 3), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := d.NextRound(0) // blocks 0-3 in flight
	if err := d.Submit(job(2), 1); err != nil {
		t.Fatal(err)
	}
	done := d.RoundDone(r, 2)
	if len(done) != 0 {
		t.Fatalf("done = %v", done)
	}
	// Job 2 must not have been credited for blocks 0-3.
	total2 := 0
	for {
		r, ok := d.NextRound(0)
		if !ok {
			break
		}
		for _, j := range r.Jobs {
			if j.ID == 2 {
				total2 += len(r.Blocks)
			}
		}
		d.RoundDone(r, 0)
	}
	if total2 != 8 {
		t.Fatalf("job 2 scanned %d blocks, want all 8", total2)
	}
	if d.PendingJobs() != 0 {
		t.Fatalf("pending = %d", d.PendingJobs())
	}
}

func TestDynamicErrors(t *testing.T) {
	f := dynFile(t, 4)
	if _, err := NewDynamic(nil, ids(0), 1, nil, nil); err == nil {
		t.Error("nil file should fail")
	}
	if _, err := NewDynamic(f, nil, 1, nil, nil); err == nil {
		t.Error("no nodes should fail")
	}
	if _, err := NewDynamic(f, ids(0), 0, nil, nil); err == nil {
		t.Error("zero slots should fail")
	}
	d, err := NewDynamic(f, ids(0, 1), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(job(1), 0); err == nil {
		t.Error("duplicate should fail")
	}
	bad := job(2)
	bad.File = "other"
	if err := d.Submit(bad, 0); err == nil {
		t.Error("wrong file should fail")
	}
	if d.Name() != "s3-dynamic" {
		t.Errorf("Name = %q", d.Name())
	}
	if d.Cursor() != 0 {
		t.Errorf("Cursor = %d", d.Cursor())
	}
}

func TestDynamicProtocolPanics(t *testing.T) {
	f := dynFile(t, 4)
	d, err := NewDynamic(f, ids(0, 1), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := d.NextRound(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double NextRound should panic")
			}
		}()
		d.NextRound(0)
	}()
	d.RoundDone(r, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("stray RoundDone should panic")
			}
		}()
		d.RoundDone(r, 1)
	}()
}
