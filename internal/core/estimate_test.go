package core

import (
	"math"
	"testing"

	"s3sched/internal/vclock"
)

func almostf(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// synth generates duration = 2 + 0.5*batch + 0.1*blocks.
func synth(batch, blocks int) vclock.Duration {
	return vclock.Duration(2 + 0.5*float64(batch) + 0.1*float64(blocks))
}

func TestEstimatorRecoversLinearModel(t *testing.T) {
	e := NewEstimator()
	for batch := 1; batch <= 5; batch++ {
		for _, blocks := range []int{10, 20, 40} {
			e.Observe(batch, blocks, synth(batch, blocks))
		}
	}
	if e.Samples() != 15 {
		t.Fatalf("samples = %d", e.Samples())
	}
	for _, tc := range []struct{ batch, blocks int }{{2, 10}, {7, 40}, {10, 80}} {
		got, err := e.PredictRound(tc.batch, tc.blocks)
		if err != nil {
			t.Fatal(err)
		}
		almostf(t, "prediction", got.Seconds(), synth(tc.batch, tc.blocks).Seconds(), 1e-6)
	}
}

func TestEstimatorDegenerateFallsBackToMean(t *testing.T) {
	e := NewEstimator()
	// Identical feature vectors: singular system.
	e.Observe(3, 10, 6)
	e.Observe(3, 10, 8)
	e.Observe(3, 10, 10)
	got, err := e.PredictRound(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	almostf(t, "fallback", got.Seconds(), 8, 1e-9)
}

func TestEstimatorNeedsSamples(t *testing.T) {
	e := NewEstimator()
	if _, err := e.PredictRound(1, 1); err == nil {
		t.Error("no samples should fail")
	}
	e.Observe(1, 1, 1)
	if _, err := e.PredictRound(1, 1); err == nil {
		t.Error("one sample should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid observation should panic")
		}
	}()
	e.Observe(0, 1, 1)
}

func TestPredictCompletionsMatchesSchedule(t *testing.T) {
	// Plan: 4 segments of 2 blocks. Job 1 has 2 segments left, job 2
	// has 4. Feed the estimator the exact synthetic model, then check
	// the rolled-forward predictions against hand computation.
	p := makePlan(t, 8, 2)
	s := New(p, nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	// Run two rounds so job 1 has 2 segments remaining.
	for i := 0; i < 2; i++ {
		r, _ := s.NextRound(0)
		s.RoundDone(r, 0)
	}
	if err := s.Submit(job(2), 10); err != nil {
		t.Fatal(err)
	}

	e := NewEstimator()
	for batch := 1; batch <= 4; batch++ {
		for _, blocks := range []int{1, 2, 4} {
			e.Observe(batch, blocks, synth(batch, blocks))
		}
	}
	preds, err := e.PredictCompletions(s)
	if err != nil {
		t.Fatal(err)
	}
	// Future: 2 rounds of batch 2 (jobs 1+2, 2 blocks each), then 2
	// rounds of batch 1 for job 2.
	round2 := synth(2, 2).Seconds() // 3.2
	round1 := synth(1, 2).Seconds() // 2.7
	almostf(t, "job 1 completion", preds[1].Seconds(), 2*round2, 1e-9)
	almostf(t, "job 2 completion", preds[2].Seconds(), 2*round2+2*round1, 1e-9)
}

func TestPredictCompletionsInFlight(t *testing.T) {
	p := makePlan(t, 4, 2)
	s := New(p, nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	s.NextRound(0)
	e := NewEstimator()
	e.Observe(1, 2, 5)
	e.Observe(2, 2, 6)
	if _, err := e.PredictCompletions(s); err == nil {
		t.Error("prediction mid-round should fail")
	}
}
