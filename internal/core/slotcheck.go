package core

import (
	"fmt"
	"sort"
	"sync"

	"s3sched/internal/dfs"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// SlotChecker implements §IV-D1 periodic slot checking: it collects
// per-node progress observations, estimates each node's processing
// speed with an exponentially weighted moving average, and excludes
// nodes whose estimated speed has fallen below a fraction of the
// cluster's best from the next round of computation. An excluded node
// that recovers (its observed speed rises back above the floor) is
// restored to the available list.
//
// Observations arrive from whatever is executing tasks — the real
// engine's task timings or the simulator's ground truth — on a
// user-chosen check interval; the checker itself is pull-based and
// holds no timers.
type SlotChecker struct {
	mu sync.Mutex
	// floor is the fraction of the fastest node's estimated speed
	// below which a node is excluded.
	floor float64
	// alpha is the EWMA weight given to each new observation.
	alpha float64
	est   map[dfs.NodeID]float64
	log   *trace.Log
	// excluded tracks the current exclusion set for trace/restore
	// reporting.
	excluded map[dfs.NodeID]bool
}

// NewSlotChecker builds a checker excluding nodes slower than
// floor x the fastest estimate. alpha in (0,1] weights new
// observations (1 = trust the latest sample entirely). log may be nil.
func NewSlotChecker(floor, alpha float64, log *trace.Log) *SlotChecker {
	if floor <= 0 || floor > 1 {
		panic(fmt.Sprintf("core: slot-check floor %v outside (0,1]", floor))
	}
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("core: slot-check alpha %v outside (0,1]", alpha))
	}
	return &SlotChecker{
		floor:    floor,
		alpha:    alpha,
		est:      make(map[dfs.NodeID]float64),
		excluded: make(map[dfs.NodeID]bool),
		log:      log,
	}
}

// Observe records one progress measurement: node completed work at
// the given relative speed (1.0 = nominal; below 1 is slower). This is
// the "information of job type, start time and current process on each
// slave node" feedback of §IV-D1.
func (sc *SlotChecker) Observe(node dfs.NodeID, speed float64, at vclock.Time) {
	if speed <= 0 {
		panic(fmt.Sprintf("core: observed speed %v must be positive", speed))
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if prev, ok := sc.est[node]; ok {
		sc.est[node] = sc.alpha*speed + (1-sc.alpha)*prev
	} else {
		sc.est[node] = speed
	}
	_ = at
}

// Estimate returns the current speed estimate for a node (0 when the
// node has never been observed).
func (sc *SlotChecker) Estimate(node dfs.NodeID) float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.est[node]
}

// Available returns the nodes currently considered usable, sorted by
// id, given the full node list. Unobserved nodes are assumed nominal.
// If exclusion would empty the list, every node stays available — a
// cluster where everything is "slow" has no stragglers, only a new
// normal.
func (sc *SlotChecker) Available(all []dfs.NodeID, at vclock.Time) []dfs.NodeID {
	sc.mu.Lock()
	defer sc.mu.Unlock()

	fastest := 0.0
	for _, n := range all {
		s, ok := sc.est[n]
		if !ok {
			s = 1.0
		}
		if s > fastest {
			fastest = s
		}
	}
	var avail []dfs.NodeID
	for _, n := range all {
		s, ok := sc.est[n]
		if !ok {
			s = 1.0
		}
		if s >= sc.floor*fastest {
			avail = append(avail, n)
			if sc.excluded[n] {
				delete(sc.excluded, n)
				sc.log.Addf(at, trace.NodeRestored, -1, -1, "node %d speed %.2f back above floor", n, s)
			}
		} else if !sc.excluded[n] {
			sc.excluded[n] = true
			sc.log.Addf(at, trace.NodeExcluded, -1, -1, "node %d speed %.2f below %.2f x fastest %.2f", n, s, sc.floor, fastest)
		}
	}
	if len(avail) == 0 {
		avail = append(avail, all...)
	}
	sort.Slice(avail, func(i, j int) bool { return avail[i] < avail[j] })
	return avail
}

// Excluded returns the ids currently excluded, sorted.
func (sc *SlotChecker) Excluded() []dfs.NodeID {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]dfs.NodeID, 0, len(sc.excluded))
	for n := range sc.excluded {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
