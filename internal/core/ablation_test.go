package core

import (
	"testing"

	"s3sched/internal/scheduler"
)

func TestNoCircularWaitsForNextPass(t *testing.T) {
	p := makePlan(t, 6, 2) // 3 segments
	n := NewNoCircular(p, nil)
	if err := n.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	// Pass 1, segment 0 running; job 2 arrives.
	r0, _ := n.NextRound(0)
	if r0.Segment != 0 || len(r0.Jobs) != 1 {
		t.Fatalf("r0 = %+v", r0)
	}
	n.RoundDone(r0, 1)
	if err := n.Submit(job(2), 1); err != nil {
		t.Fatal(err)
	}
	// Job 2 must NOT join the running pass: segments 1 and 2 stay
	// single-job.
	for want := 1; want <= 2; want++ {
		r, _ := n.NextRound(0)
		if r.Segment != want || len(r.Jobs) != 1 {
			t.Fatalf("segment %d round = %+v, want job 1 alone", want, r)
		}
		n.RoundDone(r, 0)
	}
	// New pass: job 2 from segment 0.
	r, _ := n.NextRound(0)
	if r.Segment != 0 || len(r.Jobs) != 1 || r.Jobs[0].ID != 2 {
		t.Fatalf("new pass round = %+v", r)
	}
	n.RoundDone(r, 0)
	for i := 0; i < 2; i++ {
		r, _ := n.NextRound(0)
		n.RoundDone(r, 0)
	}
	if n.PendingJobs() != 0 {
		t.Fatalf("pending = %d", n.PendingJobs())
	}
}

func TestNoCircularBatchesWaiters(t *testing.T) {
	p := makePlan(t, 4, 2) // 2 segments
	n := NewNoCircular(p, nil)
	if err := n.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Submit(job(2), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := n.NextRound(0)
	if len(r.Jobs) != 2 {
		t.Fatalf("jobs waiting together should share the pass, got %v", r.JobIDs())
	}
	n.RoundDone(r, 0)
	r, _ = n.NextRound(0)
	done := n.RoundDone(r, 0)
	if len(done) != 2 {
		t.Fatalf("done = %v", done)
	}
}

func TestNoCircularErrorsAndName(t *testing.T) {
	p := makePlan(t, 4, 2)
	n := NewNoCircular(p, nil)
	if n.Name() != "s3-nocircular" {
		t.Errorf("Name = %q", n.Name())
	}
	if err := n.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Submit(job(1), 0); err == nil {
		t.Error("duplicate should fail")
	}
	bad := job(2)
	bad.File = "x"
	if err := n.Submit(bad, 0); err == nil {
		t.Error("wrong file should fail")
	}
	if _, ok := NewNoCircular(p, nil).NextRound(0); ok {
		t.Error("empty scheduler should be idle")
	}
}

func TestStaticS3ParksLateArrivals(t *testing.T) {
	p := makePlan(t, 6, 2) // 3 segments
	s := NewStatic(p, nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := s.NextRound(0)
	// Job 2 arrives mid-flight: with dynamic adjustment disabled it
	// must be parked, not aligned.
	if err := s.Submit(job(2), 1); err != nil {
		t.Fatal(err)
	}
	if s.PendingJobs() != 2 {
		t.Fatalf("pending = %d, want 2 (1 active + 1 parked)", s.PendingJobs())
	}
	s.RoundDone(r, 1)
	// Job 1's remaining rounds run alone.
	for i := 0; i < 2; i++ {
		r, _ := s.NextRound(0)
		if len(r.Jobs) != 1 || r.Jobs[0].ID != 1 {
			t.Fatalf("round %d = %v, want job 1 alone", i, r.JobIDs())
		}
		s.RoundDone(r, 0)
	}
	// Now job 2 is admitted and runs its own 3 rounds.
	rounds := 0
	for {
		r, ok := s.NextRound(0)
		if !ok {
			break
		}
		if len(r.Jobs) != 1 || r.Jobs[0].ID != 2 {
			t.Fatalf("parked job round = %v", r.JobIDs())
		}
		rounds++
		s.RoundDone(r, 0)
	}
	if rounds != 3 {
		t.Fatalf("job 2 ran %d rounds, want 3", rounds)
	}
	if s.PendingJobs() != 0 {
		t.Fatalf("pending = %d", s.PendingJobs())
	}
}

func TestStaticS3SharesWhenIdleAtSubmit(t *testing.T) {
	p := makePlan(t, 4, 2)
	s := NewStatic(p, nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	// Queue manager has active work but nothing in flight: job 2 still
	// parks (the batch for the next segment is already formed).
	if err := s.Submit(job(2), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := s.NextRound(0)
	if len(r.Jobs) != 1 {
		t.Fatalf("static S3 must not re-batch: %v", r.JobIDs())
	}
	s.RoundDone(r, 0)
}

func TestStaticS3DuplicateDetection(t *testing.T) {
	p := makePlan(t, 4, 2)
	s := NewStatic(p, nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(1), 0); err == nil {
		t.Error("duplicate of active job should fail")
	}
	if err := s.Submit(job(2), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(2), 0); err == nil {
		t.Error("duplicate of parked job should fail")
	}
	bad := job(3)
	bad.File = "zzz"
	if err := s.Submit(bad, 0); err == nil {
		t.Error("wrong file should fail even when parking")
	}
	if s.Name() != "s3-static" {
		t.Errorf("Name = %q", s.Name())
	}
}

// Under a dense two-job arrival, plain S3 shares three of four rounds
// while StaticS3 runs 2x the rounds — the measurable value of dynamic
// sub-job adjustment.
func TestStaticVsDynamicRoundCount(t *testing.T) {
	count := func(s scheduler.Scheduler) int {
		if err := s.Submit(job(1), 0); err != nil {
			t.Fatal(err)
		}
		r, _ := s.NextRound(0)
		if err := s.Submit(job(2), 1); err != nil {
			t.Fatal(err)
		}
		s.RoundDone(r, 1)
		rounds := 1
		for {
			r, ok := s.NextRound(0)
			if !ok {
				break
			}
			rounds++
			s.RoundDone(r, 0)
		}
		return rounds
	}
	dynamic := count(New(makePlan(t, 8, 2), nil))
	static := count(NewStatic(makePlan(t, 8, 2), nil))
	if dynamic != 5 {
		t.Errorf("dynamic rounds = %d, want 5 (1 alone + 3 shared + 1 tail)", dynamic)
	}
	if static != 8 {
		t.Errorf("static rounds = %d, want 8 (two full passes)", static)
	}
}
