package core

import (
	"testing"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
)

// multiPlans builds two files ("alpha": 2 segments, "beta": 3
// segments) in one store.
func multiPlans(t *testing.T) []*dfs.SegmentPlan {
	t.Helper()
	store := dfs.MustStore(2, 1)
	fa, err := store.AddMetaFile("alpha", 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := store.AddMetaFile("beta", 6, 64)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := dfs.PlanSegments(fa, 2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := dfs.PlanSegments(fb, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []*dfs.SegmentPlan{pa, pb}
}

func fileJob(id int, file string, prio int) scheduler.JobMeta {
	return scheduler.JobMeta{ID: scheduler.JobID(id), File: file, Priority: prio}
}

func TestMultiFileRoutesByFile(t *testing.T) {
	m, err := NewMultiFile(multiPlans(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Files(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Files = %v", got)
	}
	if err := m.Submit(fileJob(1, "alpha", 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(fileJob(2, "beta", 0), 0); err != nil {
		t.Fatal(err)
	}
	// Rounds alternate between the two files (round-robin at equal
	// priority), and every round's blocks belong to one file only.
	filesSeen := map[string]int{}
	for {
		r, ok := m.NextRound(0)
		if !ok {
			break
		}
		file := r.Blocks[0].File
		for _, b := range r.Blocks {
			if b.File != file {
				t.Fatalf("round mixes files: %v", r.Blocks)
			}
		}
		filesSeen[file]++
		m.RoundDone(r, 0)
	}
	if filesSeen["alpha"] != 2 || filesSeen["beta"] != 3 {
		t.Fatalf("rounds per file = %v, want alpha:2 beta:3", filesSeen)
	}
	if m.PendingJobs() != 0 {
		t.Fatalf("pending = %d", m.PendingJobs())
	}
}

func TestMultiFileRoundRobinFairness(t *testing.T) {
	m, err := NewMultiFile(multiPlans(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(fileJob(1, "alpha", 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(fileJob(2, "beta", 0), 0); err != nil {
		t.Fatal(err)
	}
	var order []string
	for i := 0; i < 4; i++ {
		r, ok := m.NextRound(0)
		if !ok {
			break
		}
		order = append(order, r.Blocks[0].File)
		m.RoundDone(r, 0)
	}
	// alpha, beta, alpha, beta (equal priority alternation).
	want := []string{"alpha", "beta", "alpha", "beta"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMultiFilePriorityWins(t *testing.T) {
	m, err := NewMultiFile(multiPlans(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(fileJob(1, "alpha", 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(fileJob(2, "beta", 5), 0); err != nil {
		t.Fatal(err)
	}
	// beta holds the high-priority job: it gets every round until its
	// job completes (3 segments), then alpha runs.
	var order []string
	for {
		r, ok := m.NextRound(0)
		if !ok {
			break
		}
		order = append(order, r.Blocks[0].File)
		m.RoundDone(r, 0)
	}
	want := []string{"beta", "beta", "beta", "alpha", "alpha"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMultiFileSharingWithinFile(t *testing.T) {
	m, err := NewMultiFile(multiPlans(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(fileJob(1, "alpha", 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(fileJob(2, "alpha", 0), 0); err != nil {
		t.Fatal(err)
	}
	r, ok := m.NextRound(0)
	if !ok || len(r.Jobs) != 2 {
		t.Fatalf("same-file jobs should share the round: %v", r.JobIDs())
	}
	m.RoundDone(r, 0)
}

func TestMultiFileErrors(t *testing.T) {
	if _, err := NewMultiFile(nil, nil); err == nil {
		t.Error("no plans should fail")
	}
	plans := multiPlans(t)
	if _, err := NewMultiFile([]*dfs.SegmentPlan{plans[0], plans[0]}, nil); err == nil {
		t.Error("duplicate file plans should fail")
	}
	m, err := NewMultiFile(plans, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "s3-multifile" {
		t.Errorf("Name = %q", m.Name())
	}
	if err := m.Submit(fileJob(1, "gamma", 0), 0); err == nil {
		t.Error("unregistered file should fail")
	}
	if err := m.Submit(fileJob(1, "alpha", 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(fileJob(1, "beta", 0), 0); err == nil {
		t.Error("duplicate id across files should fail")
	}
	if _, ok := m.NextRound(0); !ok {
		t.Fatal("expected a round")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double NextRound should panic")
			}
		}()
		m.NextRound(0)
	}()
}

func TestMultiFileIdle(t *testing.T) {
	m, err := NewMultiFile(multiPlans(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.NextRound(0); ok {
		t.Error("empty scheduler should be idle")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("stray RoundDone should panic")
			}
		}()
		m.RoundDone(scheduler.Round{}, 0)
	}()
}

func TestMultiFileCacheAdvisorBreaksTies(t *testing.T) {
	m, err := NewMultiFile(multiPlans(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Equal priority: round-robin alone would serve alpha first. The
	// advisor reports beta's candidate segment as warmer, so beta wins
	// every tie until its jobs finish.
	m.SetCacheAdvisor(func(blocks []dfs.BlockID) int64 {
		if len(blocks) > 0 && blocks[0].File == "beta" {
			return 128
		}
		return 0
	})
	if err := m.Submit(fileJob(1, "alpha", 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(fileJob(2, "beta", 0), 0); err != nil {
		t.Fatal(err)
	}
	var order []string
	for {
		r, ok := m.NextRound(0)
		if !ok {
			break
		}
		order = append(order, r.Blocks[0].File)
		m.RoundDone(r, 0)
	}
	want := []string{"beta", "beta", "beta", "alpha", "alpha"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMultiFileCacheAdvisorNeverOverridesPriority(t *testing.T) {
	m, err := NewMultiFile(multiPlans(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	// alpha's segments are reported as maximally warm, but beta holds
	// the higher-priority job — priority must still win.
	m.SetCacheAdvisor(func(blocks []dfs.BlockID) int64 {
		if len(blocks) > 0 && blocks[0].File == "alpha" {
			return 1 << 30
		}
		return 0
	})
	if err := m.Submit(fileJob(1, "alpha", 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(fileJob(2, "beta", 5), 0); err != nil {
		t.Fatal(err)
	}
	r, ok := m.NextRound(0)
	if !ok {
		t.Fatal("no round")
	}
	if r.Blocks[0].File != "beta" {
		t.Fatalf("first round served %s, want beta (priority beats warmth)", r.Blocks[0].File)
	}
	m.RoundDone(r, 0)
}

func TestMultiFileScanHinterCarriesFileNames(t *testing.T) {
	m, err := NewMultiFile(multiPlans(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	hinted := map[string]int{}
	m.SetScanHinter(func(h dfs.ScanHint) { hinted[h.File]++ })
	if err := m.Submit(fileJob(1, "alpha", 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(fileJob(2, "beta", 0), 0); err != nil {
		t.Fatal(err)
	}
	for {
		r, ok := m.NextRound(0)
		if !ok {
			break
		}
		m.RoundDone(r, 0)
	}
	// Each file's queue hints independently as its own cursor advances,
	// naming its file so one cache can track every pin window at once.
	if hinted["alpha"] == 0 || hinted["beta"] == 0 {
		t.Fatalf("hints per file = %v, want both files hinted", hinted)
	}
	for f := range hinted {
		if f != "alpha" && f != "beta" {
			t.Fatalf("hint for unknown file %q", f)
		}
	}
}
