package core_test

import (
	"fmt"

	"s3sched/internal/core"
	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
)

// ExampleS3 walks Algorithm 1 by hand: job 1 starts alone, job 2
// arrives two segments later, and the Job Queue Manager batches their
// aligned sub-jobs for every shared segment.
func ExampleS3() {
	store := dfs.MustStore(2, 1)
	f, _ := store.AddMetaFile("input", 8, 64<<20)
	plan, _ := dfs.PlanSegments(f, 2) // 4 segments of 2 blocks

	s3 := core.New(plan, nil)
	_ = s3.Submit(scheduler.JobMeta{ID: 1, File: "input"}, 0)

	for step := 0; ; step++ {
		if step == 2 {
			// Job 2 arrives after two rounds: it is admitted at the
			// cursor and aligned with job 1's waiting sub-jobs.
			_ = s3.Submit(scheduler.JobMeta{ID: 2, File: "input"}, 20)
		}
		r, ok := s3.NextRound(0)
		if !ok {
			break
		}
		done := s3.RoundDone(r, 0)
		fmt.Printf("segment %d: batch %v, completed %v\n", r.Segment, r.JobIDs(), done)
	}
	// Output:
	// segment 0: batch [1], completed []
	// segment 1: batch [1], completed []
	// segment 2: batch [1 2], completed []
	// segment 3: batch [1 2], completed [1]
	// segment 0: batch [2], completed []
	// segment 1: batch [2], completed [2]
}

// ExampleSlotChecker shows §IV-D1 slot checking: a straggler is
// excluded after a slow observation and restored after recovering.
func ExampleSlotChecker() {
	sc := core.NewSlotChecker(0.5, 1.0, nil)
	all := []dfs.NodeID{0, 1, 2}
	sc.Observe(1, 0.2, 0) // node 1 reports 5x slow
	fmt.Println("available:", sc.Available(all, 1))
	sc.Observe(1, 1.0, 2) // node 1 recovers
	fmt.Println("available:", sc.Available(all, 3))
	// Output:
	// available: [0 2]
	// available: [0 1 2]
}
