package core

import (
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// MultiFile generalizes S^3 beyond the paper's single-input-file
// context (§III-A) — one of the §VI extension directions. It keeps an
// independent S^3 Job Queue Manager per registered file and arbitrates
// the cluster among files one round at a time:
//
//  1. files whose queues hold the highest-priority waiting job go
//     first (the §VI "job priorities" policy);
//  2. ties rotate round-robin, so no file starves.
//
// Within a file's queue, full S^3 semantics apply: every active job on
// that file shares every scheduled segment scan.
type MultiFile struct {
	log    *trace.Log
	queues map[string]*S3
	// rotation holds registered file names in registration order; the
	// round-robin pointer walks it.
	rotation []string
	next     int // rotation index to consider first on the next pick
	seen     map[scheduler.JobID]bool

	inFlight     bool
	inFlightFile string

	// cachedBytes, when set, reports how many bytes of a candidate
	// segment's blocks are already cached (see SetCacheAdvisor).
	cachedBytes func(blocks []dfs.BlockID) int64
	// hinter is remembered so files registered mid-run (AddPlan) hint
	// the same cache as the construction-time plans.
	hinter ScanHinter
}

var _ scheduler.Scheduler = (*MultiFile)(nil)

// NewMultiFile builds a multi-file scheduler over the given segment
// plans (one per file). log may be nil and is shared by all queues.
func NewMultiFile(plans []*dfs.SegmentPlan, log *trace.Log) (*MultiFile, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("core: MultiFile needs at least one segment plan")
	}
	m := &MultiFile{
		log:    log,
		queues: make(map[string]*S3, len(plans)),
		seen:   make(map[scheduler.JobID]bool),
	}
	for _, p := range plans {
		name := p.File().Name
		if _, dup := m.queues[name]; dup {
			return nil, fmt.Errorf("core: MultiFile has two plans for file %q", name)
		}
		m.queues[name] = New(p, log)
		m.rotation = append(m.rotation, name)
	}
	return m, nil
}

// Name implements Scheduler.
func (m *MultiFile) Name() string { return "s3-multifile" }

// AddPlan registers a new file's segment plan mid-run — how a DAG
// stage's materialized output joins the rotation so its consumers can
// share circular scans like any other jobs. The new queue inherits the
// installed scan hinter. expectJobs is the number of jobs expected to
// read the file; S^3 admits jobs continuously, so it is advisory here
// (batch-oriented schedulers size a batch with it). It must not be
// called with a round in flight: the runtime invokes it from job-done
// hooks, which the round protocol runs after RoundDone.
func (m *MultiFile) AddPlan(p *dfs.SegmentPlan, expectJobs int) error {
	if m.inFlight {
		return fmt.Errorf("core: MultiFile.AddPlan with a round in flight")
	}
	name := p.File().Name
	if _, dup := m.queues[name]; dup {
		return fmt.Errorf("core: MultiFile already has a plan for file %q", name)
	}
	q := New(p, m.log)
	if m.hinter != nil {
		q.SetScanHinter(m.hinter)
	}
	m.queues[name] = q
	m.rotation = append(m.rotation, name)
	return nil
}

// Files returns the registered file names in registration order.
func (m *MultiFile) Files() []string {
	out := make([]string, len(m.rotation))
	copy(out, m.rotation)
	return out
}

// Submit implements Scheduler: the job is routed to its file's queue.
func (m *MultiFile) Submit(job scheduler.JobMeta, at vclock.Time) error {
	q, ok := m.queues[job.File]
	if !ok {
		return fmt.Errorf("%w: job %d reads %q, no such file registered", scheduler.ErrWrongFile, job.ID, job.File)
	}
	if m.seen[job.ID] {
		return fmt.Errorf("%w: %d", scheduler.ErrDuplicateJob, job.ID)
	}
	if err := q.Submit(job, at); err != nil {
		return err
	}
	m.seen[job.ID] = true
	return nil
}

// SetCacheAdvisor makes file arbitration cache-aware: when two files'
// candidate segments tie on job priority under the circular-scan rule,
// the one with the most cached bytes is served first, so a warm segment
// is scanned before the cache evicts it. advisor reports the cached
// byte count for a candidate segment's blocks. dfs.Store.CachedBytes
// and sim.Executor.CachedBytes both fit; dfs.Store.AdvisedBytes is the
// strictly stronger signal — it also counts bytes committed to
// in-flight prefetches of pinned segments, so a file whose readahead
// is mid-flight competes as if already warm instead of losing the tie
// and letting the prefetched bytes go cold. Within each file the
// cursor order and Algorithm 1 merge semantics are untouched — the
// advisor only arbitrates *between* files. Pass nil to restore pure
// round-robin tie-breaking.
func (m *MultiFile) SetCacheAdvisor(advisor func(blocks []dfs.BlockID) int64) {
	m.cachedBytes = advisor
}

// SetScanHinter forwards cache guidance from every file's queue to h:
// each queue hints independently as its own cursor advances, and the
// hints carry the file name, so one cache can track the pin windows of
// all registered files at once.
func (m *MultiFile) SetScanHinter(h ScanHinter) {
	m.hinter = h
	for _, q := range m.queues {
		q.SetScanHinter(h)
	}
}

// maxPriority returns the highest priority among a queue's active
// jobs.
func maxPriority(q *S3) int {
	best := 0
	first := true
	for _, js := range q.Active() {
		if first || js.Meta.Priority > best {
			best = js.Meta.Priority
			first = false
		}
	}
	return best
}

// pick chooses the file to serve next: highest waiting priority, then
// (with a cache advisor installed) most cached bytes in the candidate
// segment, remaining ties broken round-robin from m.next.
func (m *MultiFile) pick() (string, bool) {
	bestIdx := -1
	bestPrio := 0
	var bestCached int64
	for off := 0; off < len(m.rotation); off++ {
		i := (m.next + off) % len(m.rotation)
		q := m.queues[m.rotation[i]]
		if q.PendingJobs() == 0 {
			continue
		}
		p := maxPriority(q)
		var cached int64
		if m.cachedBytes != nil {
			// The candidate segment is the queue's cursor segment — the
			// exact blocks its NextRound would schedule.
			cached = m.cachedBytes(q.Plan().Blocks(q.Cursor()))
		}
		if bestIdx == -1 || p > bestPrio || (p == bestPrio && cached > bestCached) {
			bestIdx = i
			bestPrio = p
			bestCached = cached
		}
	}
	if bestIdx == -1 {
		return "", false
	}
	m.next = (bestIdx + 1) % len(m.rotation)
	return m.rotation[bestIdx], true
}

// NextRound implements Scheduler.
func (m *MultiFile) NextRound(now vclock.Time) (scheduler.Round, bool) {
	if m.inFlight {
		panic("core: MultiFile.NextRound called with a round in flight")
	}
	file, ok := m.pick()
	if !ok {
		return scheduler.Round{}, false
	}
	r, ok := m.queues[file].NextRound(now)
	if !ok {
		// A queue with pending jobs always has a round; this is a bug.
		panic(fmt.Sprintf("core: MultiFile queue %q pending but idle", file))
	}
	m.inFlight = true
	m.inFlightFile = file
	return r, true
}

// RoundDone implements Scheduler.
func (m *MultiFile) RoundDone(r scheduler.Round, now vclock.Time) []scheduler.JobID {
	if !m.inFlight {
		panic("core: MultiFile.RoundDone without a round in flight")
	}
	m.inFlight = false
	return m.queues[m.inFlightFile].RoundDone(r, now)
}

// PendingJobs implements Scheduler.
func (m *MultiFile) PendingJobs() int {
	total := 0
	for _, q := range m.queues {
		total += q.PendingJobs()
	}
	return total
}
