package core

import (
	"testing"

	"s3sched/internal/scheduler"
)

// TestS3RequeueReformsSameSegment: a lost round must be re-formed over
// the same segment — the cursor did not advance and no sub-job was
// consumed — so the circular order is preserved exactly.
func TestS3RequeueReformsSameSegment(t *testing.T) {
	p := makePlan(t, 8, 2) // 4 segments
	s := New(p, nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r1, ok := s.NextRound(0)
	if !ok {
		t.Fatal("no round")
	}
	s.RequeueRound(r1, 1)

	r2, ok := s.NextRound(2)
	if !ok {
		t.Fatal("no round after requeue")
	}
	if r2.Segment != r1.Segment {
		t.Fatalf("requeued round segment = %d, want %d", r2.Segment, r1.Segment)
	}
	if len(r2.Jobs) != 1 || r2.Jobs[0].ID != 1 {
		t.Fatalf("requeued round jobs = %v, want [1]", r2.JobIDs())
	}

	// The job still needs all 4 segments: the lost scan counted for
	// nothing.
	var segs []int
	segs = append(segs, r2.Segment)
	s.RoundDone(r2, 3)
	for {
		r, ok := s.NextRound(0)
		if !ok {
			break
		}
		segs = append(segs, r.Segment)
		s.RoundDone(r, 0)
	}
	if len(segs) != 4 {
		t.Fatalf("segments after requeue = %v, want 4 distinct scans", segs)
	}
}

// TestS3RequeuedRoundPicksUpLateArrivals: the paper's dynamic sub-job
// adjustment — a job submitted while the lost round was in flight
// aligns into the re-formed round over the same segment.
func TestS3RequeuedRoundPicksUpLateArrivals(t *testing.T) {
	p := makePlan(t, 8, 2)
	s := New(p, nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r1, _ := s.NextRound(0)
	// Job 2 arrives while round 1 is (about to be declared) lost.
	if err := s.Submit(job(2), 1); err != nil {
		t.Fatal(err)
	}
	s.RequeueRound(r1, 2)

	r2, ok := s.NextRound(3)
	if !ok {
		t.Fatal("no round after requeue")
	}
	if r2.Segment != r1.Segment {
		t.Fatalf("requeued segment = %d, want %d", r2.Segment, r1.Segment)
	}
	ids := r2.JobIDs()
	if len(ids) != 2 {
		t.Fatalf("requeued round jobs = %v, want both jobs sharing the scan", ids)
	}
}

// TestS3AbortRemovesFromFutureRounds: an aborted job never aligns into
// another round, and its id stays registered.
func TestS3AbortRemovesFromFutureRounds(t *testing.T) {
	p := makePlan(t, 8, 2)
	s := New(p, nil)
	for i := 1; i <= 2; i++ {
		if err := s.Submit(job(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	r1, _ := s.NextRound(0)
	s.RoundDone(r1, 1)
	s.AbortJobs([]scheduler.JobID{2}, 1)
	if got := s.PendingJobs(); got != 1 {
		t.Fatalf("PendingJobs = %d after abort, want 1", got)
	}
	for {
		r, ok := s.NextRound(0)
		if !ok {
			break
		}
		for _, id := range r.JobIDs() {
			if id == 2 {
				t.Fatal("aborted job 2 reappeared in a round")
			}
		}
		s.RoundDone(r, 0)
	}
	if err := s.Submit(job(2), 5); err == nil {
		t.Error("resubmitting an aborted id succeeded, want duplicate error")
	}
}

// TestS3RequeueWithoutRoundPanics guards the serial-round protocol.
func TestS3RequeueWithoutRoundPanics(t *testing.T) {
	p := makePlan(t, 8, 2)
	s := New(p, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("RequeueRound without a round in flight did not panic")
		}
	}()
	s.RequeueRound(scheduler.Round{}, 0)
}
