package core

import (
	"testing"

	"s3sched/internal/scheduler"
)

func TestSnapshotRestoreContinuesIdentically(t *testing.T) {
	// Reference: uninterrupted run.
	ref := New(makePlan(t, 12, 3), nil) // 4 segments
	if err := ref.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	var refTrace []string
	step := func(s scheduler.Scheduler, submitAt int, traceOut *[]string) bool {
		r, ok := s.NextRound(0)
		if !ok {
			return false
		}
		done := s.RoundDone(r, 0)
		*traceOut = append(*traceOut, roundKey(r, done))
		return true
	}
	// Run 2 rounds, then submit job 2 and run to completion.
	for i := 0; i < 2; i++ {
		step(ref, 0, &refTrace)
	}
	if err := ref.Submit(job(2), 20); err != nil {
		t.Fatal(err)
	}
	for step(ref, 0, &refTrace) {
	}

	// Interrupted run: same 2 rounds, snapshot, "crash", restore.
	orig := New(makePlan(t, 12, 3), nil)
	if err := orig.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	var gotTrace []string
	for i := 0; i < 2; i++ {
		step(orig, 0, &gotTrace)
	}
	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(makePlan(t, 12, 3), decoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Submit(job(2), 20); err != nil {
		t.Fatal(err)
	}
	for step(restored, 0, &gotTrace) {
	}

	if len(gotTrace) != len(refTrace) {
		t.Fatalf("round counts differ: %v vs %v", gotTrace, refTrace)
	}
	for i := range refTrace {
		if gotTrace[i] != refTrace[i] {
			t.Fatalf("round %d differs: %q vs %q", i, gotTrace[i], refTrace[i])
		}
	}
}

func roundKey(r scheduler.Round, done []scheduler.JobID) string {
	return string(rune('A'+r.Segment)) + ":" + itoa(len(r.Jobs)) + ":" + itoa(len(done))
}

func itoa(n int) string { return string(rune('0' + n)) }

func TestSnapshotRejectsInFlight(t *testing.T) {
	s := New(makePlan(t, 4, 2), nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := s.NextRound(0)
	if _, err := s.Snapshot(); err == nil {
		t.Error("snapshot mid-round should fail")
	}
	s.RoundDone(r, 1)
	if _, err := s.Snapshot(); err != nil {
		t.Errorf("snapshot after RoundDone: %v", err)
	}
}

func TestRestoreValidation(t *testing.T) {
	plan := makePlan(t, 12, 3) // file "input", 4 segments
	good := Snapshot{File: "input", Segments: 4, Cursor: 1, Jobs: []JobSnapshot{
		{Meta: job(1), StartSegment: 0, Remaining: 2},
	}}
	if _, err := Restore(plan, good, nil); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	cases := []Snapshot{
		{File: "other", Segments: 4, Cursor: 0},
		{File: "input", Segments: 5, Cursor: 0},
		{File: "input", Segments: 4, Cursor: 9},
		{File: "input", Segments: 4, Cursor: 0, Jobs: []JobSnapshot{{Meta: job(1), Remaining: 0}}},
		{File: "input", Segments: 4, Cursor: 0, Jobs: []JobSnapshot{{Meta: job(1), Remaining: 9}}},
		{File: "input", Segments: 4, Cursor: 0, Jobs: []JobSnapshot{{Meta: job(1), StartSegment: -1, Remaining: 1}}},
		{File: "input", Segments: 4, Cursor: 0, Jobs: []JobSnapshot{
			{Meta: job(1), Remaining: 1}, {Meta: job(1), Remaining: 1},
		}},
	}
	for i, snap := range cases {
		if _, err := Restore(plan, snap, nil); err == nil {
			t.Errorf("case %d: invalid snapshot accepted: %+v", i, snap)
		}
	}
	if _, err := DecodeSnapshot([]byte("{nope")); err == nil {
		t.Error("bad JSON should fail")
	}
}
