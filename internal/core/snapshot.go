package core

import (
	"encoding/json"
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
)

// Job Queue Manager snapshot/restore. The JQM's entire state is a
// cursor plus per-job (start segment, remaining sub-jobs) — small
// enough to persist after every round, so a restarted master resumes
// scheduling exactly where the old one stopped. Sub-jobs are
// idempotent units: re-running the round that was in flight during a
// crash re-scans one segment, nothing more.
//
// The snapshot types are aliases of the scheduler package's shared
// surface (scheduler.Snapshottable), so the journal and the runtime
// engine persist scheduler state without importing a concrete scheme.

// JobSnapshot is one active job's persisted state.
type JobSnapshot = scheduler.JobSnapshot

// Snapshot is the JQM's full persisted state.
type Snapshot = scheduler.QueueSnapshot

var (
	_ scheduler.Snapshottable = (*S3)(nil)
	_ scheduler.Snapshottable = (*MultiFile)(nil)
)

// Snapshot captures the scheduler's state. It fails while a round is
// in flight: snapshot after RoundDone, when the state is consistent.
func (s *S3) Snapshot() (Snapshot, error) {
	if s.inFlight {
		return Snapshot{}, fmt.Errorf("core: cannot snapshot with a round in flight")
	}
	if len(s.pendingDone) > 0 {
		return Snapshot{}, fmt.Errorf("core: cannot snapshot with %d pipelined reduce(s) draining", len(s.pendingDone))
	}
	snap := Snapshot{
		File:     s.plan.File().Name,
		Segments: s.plan.NumSegments(),
		Cursor:   s.cursor,
	}
	for _, js := range s.active {
		snap.Jobs = append(snap.Jobs, JobSnapshot{
			Meta:         js.Meta,
			StartSegment: js.StartSegment,
			Remaining:    js.Remaining,
			SubmittedAt:  js.SubmittedAt,
		})
	}
	return snap, nil
}

// MarshalJSON-friendly helpers for persisting to disk.

// EncodeSnapshot serializes a snapshot.
func EncodeSnapshot(snap Snapshot) ([]byte, error) {
	return json.MarshalIndent(snap, "", "  ")
}

// DecodeSnapshot parses a serialized snapshot.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return Snapshot{}, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return snap, nil
}

// Restore rebuilds an S^3 scheduler from a snapshot over the given
// plan, which must match the snapshot's file and segment count.
func Restore(plan *dfs.SegmentPlan, snap Snapshot, log *trace.Log) (*S3, error) {
	s := New(plan, log)
	if err := s.restoreQueue(snap); err != nil {
		return nil, err
	}
	return s, nil
}

// restoreQueue loads a queue snapshot into a fresh scheduler.
func (s *S3) restoreQueue(snap Snapshot) error {
	plan := s.plan
	if plan.File().Name != snap.File {
		return fmt.Errorf("core: snapshot is for file %q, plan is for %q", snap.File, plan.File().Name)
	}
	if plan.NumSegments() != snap.Segments {
		return fmt.Errorf("core: snapshot has %d segments, plan has %d", snap.Segments, plan.NumSegments())
	}
	if snap.Cursor < 0 || snap.Cursor >= plan.NumSegments() {
		return fmt.Errorf("core: snapshot cursor %d out of range [0,%d)", snap.Cursor, plan.NumSegments())
	}
	s.cursor = snap.Cursor
	for _, js := range snap.Jobs {
		if js.Remaining < 1 || js.Remaining > plan.NumSegments() {
			return fmt.Errorf("core: job %d remaining %d out of range [1,%d]", js.Meta.ID, js.Remaining, plan.NumSegments())
		}
		if js.StartSegment < 0 || js.StartSegment >= plan.NumSegments() {
			return fmt.Errorf("core: job %d start segment %d out of range", js.Meta.ID, js.StartSegment)
		}
		if s.seen[js.Meta.ID] {
			return fmt.Errorf("core: snapshot repeats job %d", js.Meta.ID)
		}
		s.seen[js.Meta.ID] = true
		s.active = append(s.active, &JobState{
			Meta:         normalize(js.Meta),
			StartSegment: js.StartSegment,
			Remaining:    js.Remaining,
			SubmittedAt:  js.SubmittedAt,
		})
	}
	s.log.Addf(0, trace.BatchAdjusted, -1, snap.Cursor, "restored %d job(s) at cursor %d", len(snap.Jobs), snap.Cursor)
	return nil
}

// StateSnapshot implements scheduler.Snapshottable.
func (s *S3) StateSnapshot() (scheduler.Snapshot, error) {
	q, err := s.Snapshot()
	if err != nil {
		return scheduler.Snapshot{}, err
	}
	return scheduler.Snapshot{Scheme: s.Name(), Queues: []scheduler.QueueSnapshot{q}}, nil
}

// RestoreState implements scheduler.Snapshottable. The scheduler must
// be freshly constructed: restore replaces state, it does not merge.
func (s *S3) RestoreState(snap scheduler.Snapshot) error {
	if snap.Scheme != s.Name() {
		return fmt.Errorf("core: snapshot from scheme %q, scheduler is %q", snap.Scheme, s.Name())
	}
	if len(snap.Queues) != 1 {
		return fmt.Errorf("core: s3 snapshot must have exactly one queue, got %d", len(snap.Queues))
	}
	if s.inFlight || len(s.active) > 0 || len(s.seen) > 0 {
		return fmt.Errorf("core: RestoreState on a used scheduler")
	}
	return s.restoreQueue(snap.Queues[0])
}

// StateSnapshot implements scheduler.Snapshottable for the multi-file
// arbitrator: one queue snapshot per registered file plus the
// round-robin rotation pointer.
func (m *MultiFile) StateSnapshot() (scheduler.Snapshot, error) {
	if m.inFlight {
		return scheduler.Snapshot{}, fmt.Errorf("core: cannot snapshot with a round in flight")
	}
	snap := scheduler.Snapshot{Scheme: m.Name(), Rotation: m.next}
	for _, name := range m.rotation {
		q, err := m.queues[name].Snapshot()
		if err != nil {
			return scheduler.Snapshot{}, fmt.Errorf("core: snapshotting queue %q: %w", name, err)
		}
		snap.Queues = append(snap.Queues, q)
	}
	return snap, nil
}

// RestoreState implements scheduler.Snapshottable. Every snapshot
// queue must match a registered plan; files registered but absent from
// the snapshot restore empty (they had no active jobs).
func (m *MultiFile) RestoreState(snap scheduler.Snapshot) error {
	if snap.Scheme != m.Name() {
		return fmt.Errorf("core: snapshot from scheme %q, scheduler is %q", snap.Scheme, m.Name())
	}
	if m.inFlight || len(m.seen) > 0 {
		return fmt.Errorf("core: RestoreState on a used scheduler")
	}
	if snap.Rotation < 0 || snap.Rotation >= len(m.rotation) {
		return fmt.Errorf("core: snapshot rotation %d out of range [0,%d)", snap.Rotation, len(m.rotation))
	}
	restored := make(map[string]bool, len(snap.Queues))
	for _, qs := range snap.Queues {
		q, ok := m.queues[qs.File]
		if !ok {
			return fmt.Errorf("core: snapshot queue for unregistered file %q", qs.File)
		}
		if restored[qs.File] {
			return fmt.Errorf("core: snapshot repeats queue for file %q", qs.File)
		}
		restored[qs.File] = true
		if err := q.restoreQueue(qs); err != nil {
			return err
		}
		for _, js := range qs.Jobs {
			if m.seen[js.Meta.ID] {
				return fmt.Errorf("core: snapshot repeats job %d across files", js.Meta.ID)
			}
			m.seen[js.Meta.ID] = true
		}
	}
	m.next = snap.Rotation
	return nil
}
