package core

import (
	"encoding/json"
	"fmt"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
	"s3sched/internal/vclock"
)

// Job Queue Manager snapshot/restore. The JQM's entire state is a
// cursor plus per-job (start segment, remaining sub-jobs) — small
// enough to persist after every round, so a restarted master resumes
// scheduling exactly where the old one stopped. Sub-jobs are
// idempotent units: re-running the round that was in flight during a
// crash re-scans one segment, nothing more.

// JobSnapshot is one active job's persisted state.
type JobSnapshot struct {
	Meta         scheduler.JobMeta `json:"meta"`
	StartSegment int               `json:"startSegment"`
	Remaining    int               `json:"remaining"`
	SubmittedAt  vclock.Time       `json:"submittedAt"`
}

// Snapshot is the JQM's full persisted state.
type Snapshot struct {
	File     string        `json:"file"`
	Segments int           `json:"segments"`
	Cursor   int           `json:"cursor"`
	Jobs     []JobSnapshot `json:"jobs"`
}

// Snapshot captures the scheduler's state. It fails while a round is
// in flight: snapshot after RoundDone, when the state is consistent.
func (s *S3) Snapshot() (Snapshot, error) {
	if s.inFlight {
		return Snapshot{}, fmt.Errorf("core: cannot snapshot with a round in flight")
	}
	snap := Snapshot{
		File:     s.plan.File().Name,
		Segments: s.plan.NumSegments(),
		Cursor:   s.cursor,
	}
	for _, js := range s.active {
		snap.Jobs = append(snap.Jobs, JobSnapshot{
			Meta:         js.Meta,
			StartSegment: js.StartSegment,
			Remaining:    js.Remaining,
			SubmittedAt:  js.SubmittedAt,
		})
	}
	return snap, nil
}

// MarshalJSON-friendly helpers for persisting to disk.

// EncodeSnapshot serializes a snapshot.
func EncodeSnapshot(snap Snapshot) ([]byte, error) {
	return json.MarshalIndent(snap, "", "  ")
}

// DecodeSnapshot parses a serialized snapshot.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return Snapshot{}, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	return snap, nil
}

// Restore rebuilds an S^3 scheduler from a snapshot over the given
// plan, which must match the snapshot's file and segment count.
func Restore(plan *dfs.SegmentPlan, snap Snapshot, log *trace.Log) (*S3, error) {
	if plan.File().Name != snap.File {
		return nil, fmt.Errorf("core: snapshot is for file %q, plan is for %q", snap.File, plan.File().Name)
	}
	if plan.NumSegments() != snap.Segments {
		return nil, fmt.Errorf("core: snapshot has %d segments, plan has %d", snap.Segments, plan.NumSegments())
	}
	if snap.Cursor < 0 || snap.Cursor >= plan.NumSegments() {
		return nil, fmt.Errorf("core: snapshot cursor %d out of range [0,%d)", snap.Cursor, plan.NumSegments())
	}
	s := New(plan, log)
	s.cursor = snap.Cursor
	for _, js := range snap.Jobs {
		if js.Remaining < 1 || js.Remaining > plan.NumSegments() {
			return nil, fmt.Errorf("core: job %d remaining %d out of range [1,%d]", js.Meta.ID, js.Remaining, plan.NumSegments())
		}
		if js.StartSegment < 0 || js.StartSegment >= plan.NumSegments() {
			return nil, fmt.Errorf("core: job %d start segment %d out of range", js.Meta.ID, js.StartSegment)
		}
		if s.seen[js.Meta.ID] {
			return nil, fmt.Errorf("core: snapshot repeats job %d", js.Meta.ID)
		}
		s.seen[js.Meta.ID] = true
		s.active = append(s.active, &JobState{
			Meta:         normalize(js.Meta),
			StartSegment: js.StartSegment,
			Remaining:    js.Remaining,
			SubmittedAt:  js.SubmittedAt,
		})
	}
	s.log.Addf(0, trace.BatchAdjusted, -1, snap.Cursor, "restored %d job(s) at cursor %d", len(snap.Jobs), snap.Cursor)
	return s, nil
}
