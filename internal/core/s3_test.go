package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"s3sched/internal/dfs"
	"s3sched/internal/scheduler"
	"s3sched/internal/trace"
)

func makePlan(t *testing.T, numBlocks, perSegment int) *dfs.SegmentPlan {
	t.Helper()
	store := dfs.MustStore(4, 1)
	f, err := store.AddMetaFile("input", numBlocks, 64<<20)
	if err != nil {
		t.Fatalf("AddMetaFile: %v", err)
	}
	p, err := dfs.PlanSegments(f, perSegment)
	if err != nil {
		t.Fatalf("PlanSegments: %v", err)
	}
	return p
}

func job(id int) scheduler.JobMeta {
	return scheduler.JobMeta{ID: scheduler.JobID(id), Name: "j", File: "input", Weight: 1, ReduceWeight: 1}
}

func TestS3SingleJobCircular(t *testing.T) {
	p := makePlan(t, 12, 3) // 4 segments
	s := New(p, nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	var segs []int
	var done []scheduler.JobID
	for {
		r, ok := s.NextRound(0)
		if !ok {
			break
		}
		segs = append(segs, r.Segment)
		done = append(done, s.RoundDone(r, 0)...)
	}
	want := []int{0, 1, 2, 3}
	if len(segs) != 4 {
		t.Fatalf("segments = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segments = %v, want %v", segs, want)
		}
	}
	if len(done) != 1 || done[0] != 1 {
		t.Fatalf("done = %v", done)
	}
}

func TestS3LateJobJoinsNextSegment(t *testing.T) {
	p := makePlan(t, 8, 2) // 4 segments
	log := trace.MustNew(128)
	s := New(p, log)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	// Run two rounds (segments 0 and 1) with job 1 alone.
	for i := 0; i < 2; i++ {
		r, _ := s.NextRound(0)
		if len(r.Jobs) != 1 {
			t.Fatalf("round %d batch = %v, want just job 1", i, r.JobIDs())
		}
		s.RoundDone(r, 0)
	}
	// Job 2 arrives; cursor is at segment 2.
	if err := s.Submit(job(2), 20); err != nil {
		t.Fatal(err)
	}
	if got := s.Active()[1].StartSegment; got != 2 {
		t.Fatalf("job 2 start segment = %d, want 2", got)
	}
	// Next rounds batch both jobs: segments 2, 3 then wrap to 0, 1
	// where job 1 has completed.
	type roundInfo struct {
		seg  int
		jobs int
		done []scheduler.JobID
	}
	var seen []roundInfo
	for {
		r, ok := s.NextRound(0)
		if !ok {
			break
		}
		done := s.RoundDone(r, 0)
		seen = append(seen, roundInfo{seg: r.Segment, jobs: len(r.Jobs), done: done})
	}
	want := []roundInfo{
		{seg: 2, jobs: 2}, {seg: 3, jobs: 2, done: []scheduler.JobID{1}},
		{seg: 0, jobs: 1}, {seg: 1, jobs: 1, done: []scheduler.JobID{2}},
	}
	if len(seen) != len(want) {
		t.Fatalf("rounds = %+v, want %+v", seen, want)
	}
	for i := range want {
		if seen[i].seg != want[i].seg || seen[i].jobs != want[i].jobs || len(seen[i].done) != len(want[i].done) {
			t.Fatalf("round %d = %+v, want %+v", i, seen[i], want[i])
		}
	}
	// Job 1 ran 4 rounds total and shared two scans with job 2.
	if aligned := log.OfKind(trace.SubJobAligned); len(aligned) != 2 {
		t.Errorf("aligned events = %d, want 2 (one per submit)", len(aligned))
	}
}

func TestS3MidRoundSubmitMissesInFlightScan(t *testing.T) {
	p := makePlan(t, 6, 2) // 3 segments
	s := New(p, nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := s.NextRound(0) // segment 0 in flight
	if err := s.Submit(job(2), 1); err != nil {
		t.Fatal(err)
	}
	// Job 2 must start at segment 1: segment 0 is being scanned
	// without it.
	if got := s.Active()[1].StartSegment; got != 1 {
		t.Fatalf("mid-round submit start segment = %d, want 1", got)
	}
	done := s.RoundDone(r, 2)
	if len(done) != 0 {
		t.Fatalf("done = %v, want none", done)
	}
	// Job 2's Remaining must still be 3 — it did not share segment 0.
	for _, js := range s.Active() {
		switch js.Meta.ID {
		case 1:
			if js.Remaining != 2 {
				t.Errorf("job 1 remaining = %d, want 2", js.Remaining)
			}
		case 2:
			if js.Remaining != 3 {
				t.Errorf("job 2 remaining = %d, want 3", js.Remaining)
			}
		}
	}
	// Drain: job 2 completes exactly after segments 1,2,0.
	var lastSeg int
	var lastDone []scheduler.JobID
	for {
		r, ok := s.NextRound(0)
		if !ok {
			break
		}
		lastSeg = r.Segment
		lastDone = s.RoundDone(r, 0)
	}
	if lastSeg != 0 || len(lastDone) != 1 || lastDone[0] != 2 {
		t.Fatalf("job 2 finished at segment %d with done=%v, want segment 0", lastSeg, lastDone)
	}
}

func TestS3SubmitErrors(t *testing.T) {
	p := makePlan(t, 4, 2)
	s := New(p, nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(1), 0); !errors.Is(err, scheduler.ErrDuplicateJob) {
		t.Errorf("err = %v, want ErrDuplicateJob", err)
	}
	bad := job(2)
	bad.File = "other"
	if err := s.Submit(bad, 0); !errors.Is(err, scheduler.ErrWrongFile) {
		t.Errorf("err = %v, want ErrWrongFile", err)
	}
}

func TestS3ProtocolViolationsPanic(t *testing.T) {
	p := makePlan(t, 4, 2)
	s := New(p, nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := s.NextRound(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NextRound in flight should panic")
			}
		}()
		s.NextRound(0)
	}()
	s.RoundDone(r, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RoundDone without flight should panic")
			}
		}()
		s.RoundDone(r, 1)
	}()
}

func TestS3IdleAndAccessors(t *testing.T) {
	p := makePlan(t, 4, 2)
	s := New(p, nil)
	if _, ok := s.NextRound(0); ok {
		t.Error("empty scheduler should be idle")
	}
	if s.Name() != "s3" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Cursor() != 0 || s.PendingJobs() != 0 || s.Plan() != p {
		t.Error("accessor defaults wrong")
	}
}

func TestS3CursorHoldsWhileIdle(t *testing.T) {
	p := makePlan(t, 6, 2) // 3 segments
	s := New(p, nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	// Drain job 1 fully; cursor ends back at 0.
	for {
		r, ok := s.NextRound(0)
		if !ok {
			break
		}
		s.RoundDone(r, 0)
	}
	if s.Cursor() != 0 {
		t.Fatalf("cursor = %d, want 0 after full wrap", s.Cursor())
	}
	// A job arriving later starts at the held cursor.
	if err := s.Submit(job(2), 50); err != nil {
		t.Fatal(err)
	}
	r, _ := s.NextRound(50)
	if r.Segment != 0 {
		t.Fatalf("restart segment = %d, want 0", r.Segment)
	}
	s.RoundDone(r, 51)
}

// Property: under any arrival pattern, (a) every job participates in
// exactly k rounds, (b) the segments a job sees are k consecutive
// circular segments starting at its start segment, and (c) every
// round batches every active job (the all-active-share invariant).
func TestS3ScheduleProperty(t *testing.T) {
	prop := func(seed int64, k8, n8 uint8) bool {
		k := int(k8%9) + 2 // 2..10 segments
		n := int(n8%6) + 1 // 1..6 jobs
		rng := rand.New(rand.NewSource(seed))

		store := dfs.MustStore(2, 1)
		f, err := store.AddMetaFile("input", k, 64)
		if err != nil {
			return false
		}
		p, err := dfs.PlanSegments(f, 1)
		if err != nil {
			return false
		}
		s := New(p, nil)

		segsByJob := make(map[scheduler.JobID][]int)
		completed := make(map[scheduler.JobID]bool)
		submitted := 0
		// Interleave submissions and rounds randomly.
		for submitted < n || s.PendingJobs() > 0 {
			if submitted < n && (rng.Intn(2) == 0 || s.PendingJobs() == 0) {
				id := scheduler.JobID(submitted + 1)
				if err := s.Submit(scheduler.JobMeta{ID: id, File: "input"}, 0); err != nil {
					return false
				}
				submitted++
				continue
			}
			r, ok := s.NextRound(0)
			if !ok {
				return false // pending jobs but no round: invariant broken
			}
			// (c) every active job is in the batch.
			if len(r.Jobs) != s.PendingJobs() {
				return false
			}
			for _, j := range r.Jobs {
				segsByJob[j.ID] = append(segsByJob[j.ID], r.Segment)
			}
			for _, id := range s.RoundDone(r, 0) {
				if completed[id] {
					return false
				}
				completed[id] = true
			}
		}
		if len(completed) != n {
			return false
		}
		// (a) + (b): per-job segment sequences are circularly
		// consecutive and cover all k segments exactly once.
		for _, segs := range segsByJob {
			if len(segs) != k {
				return false
			}
			for i := 1; i < len(segs); i++ {
				if segs[i] != (segs[i-1]+1)%k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestS3JobLifetimeSpans(t *testing.T) {
	p := makePlan(t, 8, 2) // 4 segments
	log := trace.MustNew(128)
	s := New(p, log)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(job(2), 0); err != nil {
		t.Fatal(err)
	}
	// Run one round, abort job 2, then drain job 1.
	r, _ := s.NextRound(0)
	s.RoundDone(r, 5)
	s.AbortJobs([]scheduler.JobID{2}, 6)
	for {
		r, ok := s.NextRound(0)
		if !ok {
			break
		}
		s.RoundDone(r, 10)
	}
	byJob := map[int]trace.Span{}
	for _, sp := range log.Spans() {
		if sp.Name != "job" {
			continue
		}
		if sp.Cat != "jqm" {
			t.Errorf("job span cat = %q, want jqm", sp.Cat)
		}
		byJob[sp.Job] = sp
	}
	if len(byJob) != 2 {
		t.Fatalf("job spans = %d, want 2", len(byJob))
	}
	wantResult := map[int]string{1: "completed", 2: "aborted"}
	for id, want := range wantResult {
		sp, ok := byJob[id]
		if !ok {
			t.Fatalf("no span for job %d", id)
		}
		if !sp.Ended {
			t.Errorf("job %d span not ended", id)
		}
		var got string
		for _, a := range sp.Args {
			if a.Key == "result" {
				got = a.Value
			}
		}
		if got != want {
			t.Errorf("job %d result arg = %q, want %q", id, got, want)
		}
	}
	if byJob[1].End != 10 {
		t.Errorf("job 1 span end = %v, want 10", byJob[1].End)
	}
	if byJob[2].End != 6 {
		t.Errorf("job 2 span end = %v, want 6", byJob[2].End)
	}
}

func TestS3NilLogSpansSafe(t *testing.T) {
	p := makePlan(t, 4, 2)
	s := New(p, nil)
	if err := s.Submit(job(1), 0); err != nil {
		t.Fatal(err)
	}
	for {
		r, ok := s.NextRound(0)
		if !ok {
			break
		}
		s.RoundDone(r, 0)
	}
	if s.jobSpans != nil {
		t.Errorf("jobSpans allocated with nil log")
	}
}
